// Figure 11: CN generation time vs number of query keywords (K = 1..10),
// random K-term queries per dataset; CNGen's failures at high K are
// reported as FAIL (the budgeted stand-in for the paper's crashes).

#include "baseline/cngen.h"
#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "core/matcngen.h"
#include "datasets/workload.h"

int main(int argc, char** argv) {
  using namespace matcn;
  const bench::BenchFlags bench_flags(argc, argv);
  bench::PrintHeader(
      "Figure 11: generation time vs number of keywords (K = 1..10)");

  // The paper uses 100 random queries per K; default to 20 at bench scale
  // (override with MATCN_FIG11_QUERIES).
  const size_t queries_per_k = bench::EnvCount("MATCN_FIG11_QUERIES", 15);
  const int t_max = static_cast<int>(bench::EnvCount("MATCN_TMAX", 5));

  auto datasets = bench::BuildBenchDatasets(false, bench_flags.seed);

  TablePrinter table({"Dataset", "K", "MatCNGen-Mem ms", "MCG-Par ms",
                      "CNGen ms", "CNGen fail%", "MCG matches (avg)"});
  for (const auto& ds : datasets) {
    WorkloadGenerator wgen(&ds->db, &ds->schema_graph, &ds->index);
    MatCnGenOptions mat_options;
    mat_options.t_max = t_max;
    mat_options.max_matches = 1000;  // resource guard at extreme K
    MatCnGen gen(&ds->schema_graph, mat_options);
    // Same pipeline with --cn-threads MatchCN workers: the high-K rows
    // are exactly where matches (and thus the parallel payoff) pile up.
    MatCnGenOptions par_options = mat_options;
    par_options.num_threads = bench_flags.cn_threads;
    MatCnGen par_gen(&ds->schema_graph, par_options);

    for (size_t k = 1; k <= 10; ++k) {
      std::vector<KeywordQuery> queries =
          wgen.RandomQueries(queries_per_k, k, 500 + k + bench_flags.seed);
      if (queries.empty()) continue;
      double mat_ms = 0, par_ms = 0, base_ms = 0, matches = 0;
      size_t failures = 0, base_runs = 0;
      for (const KeywordQuery& q : queries) {
        Stopwatch watch;
        GenerationResult mat = gen.Generate(q, ds->index);
        mat_ms += watch.ElapsedMillis();
        matches += static_cast<double>(mat.matches.size());
        watch.Reset();
        par_gen.Generate(q, ds->index);
        par_ms += watch.ElapsedMillis();

        TupleSetGraph ts_graph(&ds->schema_graph, &mat.tuple_sets);
        CnGenOptions base_options;
        base_options.t_max = t_max;
        base_options.max_partial_trees = 15'000;
        watch.Reset();
        CnGenResult base = CnGen(q, ts_graph, base_options);
        if (base.failed) {
          ++failures;
        } else {
          base_ms += watch.ElapsedMillis();
          ++base_runs;
        }
      }
      const double n = static_cast<double>(queries.size());
      table.AddRow(
          {ds->name, TablePrinter::Int(static_cast<int64_t>(k)),
           TablePrinter::Num(mat_ms / n, 3),
           TablePrinter::Num(par_ms / n, 3),
           base_runs > 0
               ? TablePrinter::Num(base_ms / static_cast<double>(base_runs),
                                   3)
               : std::string("FAIL"),
           TablePrinter::Num(100.0 * static_cast<double>(failures) / n, 1),
           TablePrinter::Num(matches / n, 1)});
    }
  }
  table.Print(std::cout);
  std::cout
      << "\nPaper: CNGen degrades sharply and cannot process any query "
         "beyond 7 keywords (crashes);\nabout half the 5-keyword queries "
         "already fail. MatCNGen completes every query at every K.\nShape "
         "to check: CNGen fail% grows with K while MatCNGen-Mem stays "
         "flat and fast.\n";
  return 0;
}
