// Figure 7: MAP across systems and datasets for Coffman-Weaver queries.
// Figure 8: MRR for the CW queries with exactly one relevant answer.

#include <unordered_map>

#include "bench/quality_util.h"
#include "common/table_printer.h"

int main(int argc, char** argv) {
  using namespace matcn;
  const bench::BenchFlags bench_flags(argc, argv);
  bench::PrintHeader(
      "Figures 7 & 8: MAP / MRR on Coffman-Weaver-style queries");

  auto datasets = bench::BuildBenchDatasets(true, bench_flags.seed);
  auto systems = bench::MakeQualitySystems(datasets, /*t_max=*/5);

  std::vector<std::string> header = {"Dataset", "Metric"};
  for (const auto& s : systems) header.push_back(s.name);
  TablePrinter table(header);

  for (const auto& ds : datasets) {
    // Locate the CW query set.
    const std::vector<WorkloadQuery>* queries = nullptr;
    for (size_t s = 0; s < ds->set_names.size(); ++s) {
      if (ds->set_names[s] == "CW") queries = &ds->query_sets[s];
    }
    if (queries == nullptr) continue;

    std::vector<std::string> map_row = {ds->name, "MAP"};
    std::vector<std::string> mrr_row = {ds->name, "MRR(1-rel)"};
    size_t single_answer = 0;
    for (const auto& system : systems) {
      std::vector<double> ap;
      std::vector<double> rr;
      for (const WorkloadQuery& wq : *queries) {
        std::vector<Jnt> ranking = system.run(*ds, wq);
        ap.push_back(AveragePrecision(ranking, wq.golden, 1000));
        if (wq.num_relevant == 1) {
          rr.push_back(ReciprocalRank(ranking, wq.golden));
        }
      }
      single_answer = rr.size();
      map_row.push_back(TablePrinter::Num(Mean(ap), 3));
      mrr_row.push_back(TablePrinter::Num(Mean(rr), 3));
    }
    table.AddRow(map_row);
    table.AddRow(mrr_row);
    std::cout << ds->name << ": " << queries->size() << " CW queries, "
              << single_answer << " with a single relevant answer\n";
  }
  std::cout << "\n";
  table.Print(std::cout);
  std::cout
      << "\nPaper: the MatCNGen configurations (MCG+H / MCG+SS) score best "
         "on every dataset, with a\nslight edge for MCG+SS; gains are "
         "largest on Mondial and Wikipedia, smallest on IMDb\n(where DPBF "
         "is the best third-party system). Shape to check: MCG columns >= "
         "CNGen columns,\nCN-based systems >= data-graph systems.\n";
  return 0;
}
