#ifndef MATCN_BENCH_BENCH_UTIL_H_
#define MATCN_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/flags.h"
#include "datasets/generators.h"
#include "datasets/workload.h"
#include "graph/schema_graph.h"
#include "indexing/term_index.h"

namespace matcn::bench {

/// Scale factor for synthetic datasets. The paper ran against multi-GB
/// dumps; the default here keeps the whole bench suite in the minutes
/// range while preserving every relative trend. Override with
/// MATCN_BENCH_SCALE (e.g. =1.0 for a heavier run).
inline double BenchScale() {
  const char* env = std::getenv("MATCN_BENCH_SCALE");
  if (env != nullptr) {
    const double v = std::atof(env);
    if (v > 0) return v;
  }
  return 0.1;
}

inline size_t EnvCount(const char* name, size_t fallback) {
  const char* env = std::getenv(name);
  if (env != nullptr) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return fallback;
}

/// A dataset plus its derived per-query-set workloads, mirroring the
/// paper's experimental setup (Table 3): which query sets target which
/// dataset, and with how many queries.
struct BenchDataset {
  std::string name;
  Database db;
  SchemaGraph schema_graph;
  TermIndex index;
  // Parallel vectors: style name ("CW", "SPARK", "INEX") and queries.
  std::vector<std::string> set_names;
  std::vector<std::vector<WorkloadQuery>> query_sets;
};

/// Default base seed: with `base_seed = kDefaultBenchSeed` the per-dataset
/// seeds are the historical 42..46 and the workload seeds 1042..1046, so
/// default runs reproduce the numbers every prior report was built on.
inline constexpr uint64_t kDefaultBenchSeed = 42;

/// Builds the five datasets with the paper's query-set assignment:
///   IMDb: CW 42, SPARK 22, INEX 14;  Mondial: CW 42, SPARK 35;
///   Wikipedia: CW 45;  DBLP: SPARK 18;  TPC-H: (scalability only).
/// Pass `with_workloads = false` to skip workload generation (cheaper for
/// benches that only need the data). Every RNG in the build derives from
/// `base_seed` (the benches' `--seed` flag): dataset i uses
/// `base_seed + i`, its workloads `1000 + base_seed + i`, so one flag
/// reseeds the whole experiment deterministically.
inline std::vector<std::unique_ptr<BenchDataset>> BuildBenchDatasets(
    bool with_workloads = true, uint64_t base_seed = kDefaultBenchSeed) {
  struct Spec {
    const char* name;
    Database (*make)(uint64_t, double);
    std::vector<std::pair<const char*, std::pair<QueryStyle, size_t>>> sets;
  };
  const std::vector<Spec> specs = {
      {"IMDb", MakeImdb,
       {{"CW", {QueryStyle::kCoffmanWeaver, 42}},
        {"SPARK", {QueryStyle::kSpark, 22}},
        {"INEX", {QueryStyle::kInex, 14}}}},
      {"Mondial", MakeMondial,
       {{"CW", {QueryStyle::kCoffmanWeaver, 42}},
        {"SPARK", {QueryStyle::kSpark, 35}}}},
      {"Wikipedia", MakeWikipedia,
       {{"CW", {QueryStyle::kCoffmanWeaver, 45}}}},
      {"DBLP", MakeDblp, {{"SPARK", {QueryStyle::kSpark, 18}}}},
      {"TPC-H", MakeTpch, {}},
  };

  const double scale = BenchScale();
  std::vector<std::unique_ptr<BenchDataset>> out;
  for (size_t i = 0; i < specs.size(); ++i) {
    const Spec& spec = specs[i];
    const uint64_t dataset_seed = base_seed + i;
    auto ds = std::make_unique<BenchDataset>(BenchDataset{
        spec.name, spec.make(dataset_seed, scale), SchemaGraph(),
        TermIndex(), {}, {}});
    ds->schema_graph = SchemaGraph::Build(ds->db.schema());
    ds->index = TermIndex::Build(ds->db);
    if (with_workloads) {
      WorkloadGenerator gen(&ds->db, &ds->schema_graph, &ds->index);
      uint64_t seed = 1000 + dataset_seed;
      for (const auto& [set_name, cfg] : spec.sets) {
        WorkloadOptions options;
        options.style = cfg.first;
        options.num_queries = cfg.second;
        options.seed = seed++;
        ds->set_names.emplace_back(set_name);
        ds->query_sets.push_back(gen.Generate(options));
      }
    }
    out.push_back(std::move(ds));
  }
  return out;
}

/// Parses the flags every bench accepts. Exits on malformed or unknown
/// flags so a typo'd experiment never silently runs with defaults.
struct BenchFlags {
  uint64_t seed = kDefaultBenchSeed;
  unsigned cn_threads = 8;  // parallel-sweep thread count
  FlagSet flags;

  BenchFlags(int argc, char** argv) : flags(argc, argv) {
    seed = static_cast<uint64_t>(
        flags.GetInt("seed", static_cast<int64_t>(kDefaultBenchSeed)));
    cn_threads = static_cast<unsigned>(flags.GetInt("cn-threads", 8));
    for (const std::string& error : flags.errors()) {
      std::cerr << "flag error: " << error << "\n";
      std::exit(2);
    }
    for (const std::string& unknown : flags.UnknownFlags()) {
      std::cerr << "unknown flag --" << unknown
                << " (have --seed --cn-threads)\n";
      std::exit(2);
    }
  }
};

inline void PrintHeader(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n"
            << "(synthetic datasets at scale " << BenchScale()
            << "; see EXPERIMENTS.md for the paper-vs-measured discussion)\n\n";
}

}  // namespace matcn::bench

#endif  // MATCN_BENCH_BENCH_UTIL_H_
