#ifndef MATCN_BENCH_BENCH_UTIL_H_
#define MATCN_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "datasets/generators.h"
#include "datasets/workload.h"
#include "graph/schema_graph.h"
#include "indexing/term_index.h"

namespace matcn::bench {

/// Scale factor for synthetic datasets. The paper ran against multi-GB
/// dumps; the default here keeps the whole bench suite in the minutes
/// range while preserving every relative trend. Override with
/// MATCN_BENCH_SCALE (e.g. =1.0 for a heavier run).
inline double BenchScale() {
  const char* env = std::getenv("MATCN_BENCH_SCALE");
  if (env != nullptr) {
    const double v = std::atof(env);
    if (v > 0) return v;
  }
  return 0.1;
}

inline size_t EnvCount(const char* name, size_t fallback) {
  const char* env = std::getenv(name);
  if (env != nullptr) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return fallback;
}

/// A dataset plus its derived per-query-set workloads, mirroring the
/// paper's experimental setup (Table 3): which query sets target which
/// dataset, and with how many queries.
struct BenchDataset {
  std::string name;
  Database db;
  SchemaGraph schema_graph;
  TermIndex index;
  // Parallel vectors: style name ("CW", "SPARK", "INEX") and queries.
  std::vector<std::string> set_names;
  std::vector<std::vector<WorkloadQuery>> query_sets;
};

/// Builds the five datasets with the paper's query-set assignment:
///   IMDb: CW 42, SPARK 22, INEX 14;  Mondial: CW 42, SPARK 35;
///   Wikipedia: CW 45;  DBLP: SPARK 18;  TPC-H: (scalability only).
/// Pass `with_workloads = false` to skip workload generation (cheaper for
/// benches that only need the data).
inline std::vector<std::unique_ptr<BenchDataset>> BuildBenchDatasets(
    bool with_workloads = true) {
  struct Spec {
    const char* name;
    Database (*make)(uint64_t, double);
    uint64_t seed;
    std::vector<std::pair<const char*, std::pair<QueryStyle, size_t>>> sets;
  };
  const std::vector<Spec> specs = {
      {"IMDb", MakeImdb, 42,
       {{"CW", {QueryStyle::kCoffmanWeaver, 42}},
        {"SPARK", {QueryStyle::kSpark, 22}},
        {"INEX", {QueryStyle::kInex, 14}}}},
      {"Mondial", MakeMondial, 43,
       {{"CW", {QueryStyle::kCoffmanWeaver, 42}},
        {"SPARK", {QueryStyle::kSpark, 35}}}},
      {"Wikipedia", MakeWikipedia, 44,
       {{"CW", {QueryStyle::kCoffmanWeaver, 45}}}},
      {"DBLP", MakeDblp, 45, {{"SPARK", {QueryStyle::kSpark, 18}}}},
      {"TPC-H", MakeTpch, 46, {}},
  };

  const double scale = BenchScale();
  std::vector<std::unique_ptr<BenchDataset>> out;
  for (const Spec& spec : specs) {
    auto ds = std::make_unique<BenchDataset>(BenchDataset{
        spec.name, spec.make(spec.seed, scale), SchemaGraph(), TermIndex(),
        {}, {}});
    ds->schema_graph = SchemaGraph::Build(ds->db.schema());
    ds->index = TermIndex::Build(ds->db);
    if (with_workloads) {
      WorkloadGenerator gen(&ds->db, &ds->schema_graph, &ds->index);
      uint64_t seed = 1000 + spec.seed;
      for (const auto& [set_name, cfg] : spec.sets) {
        WorkloadOptions options;
        options.style = cfg.first;
        options.num_queries = cfg.second;
        options.seed = seed++;
        ds->set_names.emplace_back(set_name);
        ds->query_sets.push_back(gen.Generate(options));
      }
    }
    out.push_back(std::move(ds));
  }
  return out;
}

inline void PrintHeader(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n"
            << "(synthetic datasets at scale " << BenchScale()
            << "; see EXPERIMENTS.md for the paper-vs-measured discussion)\n\n";
}

}  // namespace matcn::bench

#endif  // MATCN_BENCH_BENCH_UTIL_H_
