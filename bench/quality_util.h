#ifndef MATCN_BENCH_QUALITY_UTIL_H_
#define MATCN_BENCH_QUALITY_UTIL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baseline/cngen.h"
#include "bench/bench_util.h"
#include "core/matcngen.h"
#include "datagraph/banks.h"
#include "datagraph/data_graph.h"
#include "datagraph/dpbf.h"
#include "eval/hybrid_ranker.h"
#include "eval/skyline_ranker.h"
#include "metrics/metrics.h"

namespace matcn::bench {

/// A keyword-search system under quality evaluation: name + a function
/// producing a ranking for one workload query.
struct QualitySystem {
  std::string name;
  std::function<std::vector<Jnt>(const BenchDataset&, const WorkloadQuery&)>
      run;
};

/// The seven reimplemented configurations of the paper's Figures 7-9:
/// three data-graph systems and four CN-pipeline configurations
/// ({CNGen, MatCNGen} x {Hybrid, SkylineSweep}). The data graph is built
/// once per dataset and cached inside the closures.
inline std::vector<QualitySystem> MakeQualitySystems(
    const std::vector<std::unique_ptr<BenchDataset>>& datasets, int t_max) {
  // Per-dataset data graphs, built lazily and shared by the three
  // data-graph systems.
  auto graphs = std::make_shared<
      std::unordered_map<const BenchDataset*, std::shared_ptr<DataGraph>>>();
  auto graph_of = [graphs](const BenchDataset& ds) {
    auto it = graphs->find(&ds);
    if (it == graphs->end()) {
      it = graphs
               ->emplace(&ds, std::make_shared<DataGraph>(DataGraph::Build(
                                  ds.db, ds.schema_graph)))
               .first;
    }
    return it->second;
  };
  (void)datasets;

  DataGraphSearchOptions dg_options;
  dg_options.top_k = 1000;

  auto run_cn_pipeline = [t_max](const BenchDataset& ds,
                                 const WorkloadQuery& wq, bool use_matcngen,
                                 bool use_skyline) {
    std::vector<TupleSet> tuple_sets =
        TupleSetFinder::FindMem(ds.index, wq.query);
    std::vector<CandidateNetwork> cns;
    GenerationResult mat;  // keeps tuple_sets alive uniformly
    if (use_matcngen) {
      MatCnGenOptions options;
      options.t_max = t_max;
      MatCnGen gen(&ds.schema_graph, options);
      mat = gen.GenerateFromTupleSets(wq.query, std::move(tuple_sets), 0);
      cns = mat.cns;
      tuple_sets = mat.tuple_sets;
    } else {
      TupleSetGraph ts_graph(&ds.schema_graph, &tuple_sets);
      CnGenOptions options;
      options.t_max = t_max;
      cns = CnGen(wq.query, ts_graph, options).cns;
    }
    EvalContext context;
    context.db = &ds.db;
    context.schema_graph = &ds.schema_graph;
    context.index = &ds.index;
    context.query = &wq.query;
    context.tuple_sets = &tuple_sets;
    context.cns = &cns;
    RankerOptions options;
    options.top_k = 1000;
    options.per_cn_limit = 20'000;
    if (use_skyline) {
      SkylineSweepRanker ranker;
      return ranker.TopK(context, options);
    }
    HybridRanker ranker;
    return ranker.TopK(context, options);
  };

  std::vector<QualitySystem> systems;
  systems.push_back(
      {"BANKS", [graph_of, dg_options](const BenchDataset& ds,
                                       const WorkloadQuery& wq) {
         return BanksSearch(*graph_of(ds), ds.index, wq.query, dg_options);
       }});
  systems.push_back(
      {"Bidirect", [graph_of, dg_options](const BenchDataset& ds,
                                          const WorkloadQuery& wq) {
         return BidirectionalSearch(*graph_of(ds), ds.index, wq.query,
                                    dg_options);
       }});
  systems.push_back(
      {"DPBF", [graph_of, dg_options](const BenchDataset& ds,
                                      const WorkloadQuery& wq) {
         return DpbfSearch(*graph_of(ds), ds.index, wq.query, dg_options);
       }});
  systems.push_back({"CNGen+H", [run_cn_pipeline](const BenchDataset& ds,
                                                  const WorkloadQuery& wq) {
                       return run_cn_pipeline(ds, wq, false, false);
                     }});
  systems.push_back({"CNGen+SS", [run_cn_pipeline](const BenchDataset& ds,
                                                   const WorkloadQuery& wq) {
                       return run_cn_pipeline(ds, wq, false, true);
                     }});
  systems.push_back({"MCG+H", [run_cn_pipeline](const BenchDataset& ds,
                                                const WorkloadQuery& wq) {
                       return run_cn_pipeline(ds, wq, true, false);
                     }});
  systems.push_back({"MCG+SS", [run_cn_pipeline](const BenchDataset& ds,
                                                 const WorkloadQuery& wq) {
                       return run_cn_pipeline(ds, wq, true, true);
                     }});
  return systems;
}

}  // namespace matcn::bench

#endif  // MATCN_BENCH_QUALITY_UTIL_H_
