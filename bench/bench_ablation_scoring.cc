// Ablation: how the JNT size-normalization choice (Efficient's linear vs
// SPARK-flavored sqrt vs none) affects answer quality on a sampled
// workload — the design choice behind the scorer's default.

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "core/matcngen.h"
#include "eval/naive_ranker.h"
#include "eval/scorer.h"
#include "exec/executor.h"
#include "metrics/metrics.h"

int main(int argc, char** argv) {
  using namespace matcn;
  const bench::BenchFlags bench_flags(argc, argv);
  bench::PrintHeader(
      "Ablation: JNT size normalization (MAP with MatCNGen CNs)");

  const std::vector<std::pair<const char*, SizeNormalization>> variants = {
      {"linear", SizeNormalization::kLinear},
      {"sqrt", SizeNormalization::kSqrt},
      {"none", SizeNormalization::kNone},
  };

  TablePrinter table({"Dataset", "Set", "linear", "sqrt", "none"});
  for (const auto& ds : bench::BuildBenchDatasets(true, bench_flags.seed)) {
    MatCnGen gen(&ds->schema_graph);
    for (size_t s = 0; s < ds->set_names.size(); ++s) {
      if (ds->set_names[s] != "CW") continue;
      std::vector<std::string> row = {ds->name, ds->set_names[s]};
      for (const auto& [vname, normalization] : variants) {
        std::vector<double> ap;
        for (const WorkloadQuery& wq : ds->query_sets[s]) {
          GenerationResult result = gen.Generate(wq.query, ds->index);
          ScorerOptions scorer_options;
          scorer_options.normalization = normalization;
          Scorer scorer(&ds->db, &ds->index, &wq.query, scorer_options);
          CnExecutor executor(&ds->db, &ds->schema_graph);
          executor.SetQueryContext(&result.tuple_sets);
          std::vector<Jnt> all;
          for (size_t c = 0; c < result.cns.size(); ++c) {
            for (Jnt& jnt : executor.Execute(result.cns[c],
                                             static_cast<int>(c), 20'000)) {
              jnt.score = scorer.JntScore(jnt);
              all.push_back(std::move(jnt));
            }
          }
          SortJnts(&all);
          if (all.size() > 1000) all.resize(1000);
          ap.push_back(AveragePrecision(all, wq.golden, 1000));
        }
        row.push_back(TablePrinter::Num(Mean(ap), 3));
      }
      table.AddRow(row);
    }
  }
  table.Print(std::cout);
  std::cout << "\nExpectation: linear (the Efficient/paper default) "
               "dominates — without size damping, sprawling\njoin trees "
               "outrank the compact intended answers.\n";
  return 0;
}
