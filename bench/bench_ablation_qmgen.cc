// Ablation: the paper's Algorithm 1 (naive subset enumeration) vs the
// equivalent cover-product QMGen, plus TSFind strategies — microbenchmarks
// via google-benchmark.

#include <benchmark/benchmark.h>

#include "core/qmgen.h"
#include "core/tsfind.h"
#include "datasets/generators.h"
#include "indexing/term_index.h"

namespace matcn {
namespace {

struct Fixture {
  Fixture() : db(MakeImdb(42, 0.05)), index(TermIndex::Build(db)) {
    auto parsed = KeywordQuery::Parse("denzel washington gangster");
    query = *parsed;
    tuple_sets = TupleSetFinder::FindMem(index, query);
  }
  Database db;
  TermIndex index;
  KeywordQuery query;
  std::vector<TupleSet> tuple_sets;
};

Fixture& Shared() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

void BM_QmGenNaive(benchmark::State& state) {
  Fixture& f = Shared();
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenerateMatchesNaive(f.query, f.tuple_sets));
  }
  state.counters["tuple_sets"] =
      static_cast<double>(f.tuple_sets.size());
}
BENCHMARK(BM_QmGenNaive);

void BM_QmGenCoverProduct(benchmark::State& state) {
  Fixture& f = Shared();
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenerateMatches(f.query, f.tuple_sets));
  }
}
BENCHMARK(BM_QmGenCoverProduct);

void BM_TsFindMem(benchmark::State& state) {
  Fixture& f = Shared();
  for (auto _ : state) {
    benchmark::DoNotOptimize(TupleSetFinder::FindMem(f.index, f.query));
  }
}
BENCHMARK(BM_TsFindMem);

void BM_TsFindScan(benchmark::State& state) {
  Fixture& f = Shared();
  for (auto _ : state) {
    benchmark::DoNotOptimize(TupleSetFinder::FindScan(f.db, f.query));
  }
}
BENCHMARK(BM_TsFindScan);

void BM_TermIndexBuild(benchmark::State& state) {
  Fixture& f = Shared();
  for (auto _ : state) {
    benchmark::DoNotOptimize(TermIndex::Build(f.db));
  }
}
BENCHMARK(BM_TermIndexBuild);

}  // namespace
}  // namespace matcn

BENCHMARK_MAIN();
