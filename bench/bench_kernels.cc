// Hot-path kernel microbenchmark (DESIGN.md §12): varbyte block decode,
// sorted posting intersection, and QMGen minimal-cover search, each
// measured against the legacy code path it replaced. Posting lists are
// imdb-derived (the real df skew, not synthetic uniform gaps). Emits
// BENCH_kernels.json for regression tracking; the JSON is schema-checked
// before it is written, so a malformed report fails the run instead of
// poisoning the tracking data.
//
//   $ ./bench_kernels [--out BENCH_kernels.json] [--smoke] [--check]
//
// Flags:
//   --out PATH   output JSON path             (default BENCH_kernels.json)
//   --smoke      CI-sized run: tiny rep counts, same code paths
//   --check      exit nonzero unless the SIMD tiers hit the 2x
//                acceptance bar over the legacy decode/intersect paths
//
// Env knobs: MATCN_BENCH_SCALE (default 0.1).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/flags.h"
#include "common/timer.h"
#include "core/keyword_query.h"
#include "core/minimal_cover.h"
#include "datasets/generators.h"
#include "indexing/postings.h"
#include "indexing/term_index.h"
#include "simd/dispatch.h"
#include "simd/kernels.h"
#include "storage/database.h"

namespace matcn::bench {
namespace {

struct Cell {
  std::string section;  // "decode" | "intersect" | "covers"
  std::string impl;
  double wall_seconds = 0;
  double throughput = 0;   // unit depends on the section
  std::string unit;        // "MB/s" | "elems/s" | "probes/s"
  uint64_t checksum = 0;   // keeps the optimizer honest; must agree
};

// --------------------------------------------------------------------------
// Decode: encoded posting bytes -> absolute ids, MB/s over encoded bytes.

struct EncodedList {
  std::vector<uint8_t> bytes;
  size_t count = 0;
};

// Every sampled term's posting list, varbyte-delta encoded exactly like
// PostingList::Build(ids, /*compress=*/true) stores it.
std::vector<EncodedList> EncodePostings(
    const std::vector<std::vector<TupleId>>& lists) {
  std::vector<EncodedList> encoded;
  encoded.reserve(lists.size());
  for (const std::vector<TupleId>& ids : lists) {
    EncodedList e;
    e.count = ids.size();
    uint64_t prev = 0;
    for (const TupleId& id : ids) {
      VarbyteEncode(id.packed() - prev, &e.bytes);
      prev = id.packed();
    }
    encoded.push_back(std::move(e));
  }
  return encoded;
}

template <typename DecodeFn>
Cell RunDecode(const std::string& impl,
               const std::vector<EncodedList>& encoded, size_t reps,
               const DecodeFn& decode) {
  size_t max_count = 0, total_bytes = 0;
  for (const EncodedList& e : encoded) {
    max_count = std::max(max_count, e.count);
    total_bytes += e.bytes.size();
  }
  std::vector<uint64_t> out(max_count + 1);

  Cell cell;
  cell.section = "decode";
  cell.impl = impl;
  cell.unit = "MB/s";
  Stopwatch watch;
  for (size_t r = 0; r < reps; ++r) {
    for (const EncodedList& e : encoded) {
      decode(e, out.data());
      cell.checksum += out[e.count / 2] + out[e.count == 0 ? 0 : e.count - 1];
    }
  }
  cell.wall_seconds = watch.ElapsedSeconds();
  if (cell.wall_seconds > 0) {
    cell.throughput = static_cast<double>(total_bytes * reps) / 1e6 /
                      cell.wall_seconds;
  }
  return cell;
}

// --------------------------------------------------------------------------
// Intersect: pairs of posting lists as packed u64, elems/s over na+nb.

struct U64Pair {
  const std::vector<uint64_t>* a;
  const std::vector<uint64_t>* b;
};

template <typename IntersectFn>
Cell RunIntersect(const std::string& impl, const std::vector<U64Pair>& pairs,
                  size_t reps, const IntersectFn& intersect) {
  size_t max_out = 0, total_elems = 0;
  for (const U64Pair& p : pairs) {
    max_out = std::max(max_out, std::min(p.a->size(), p.b->size()));
    total_elems += p.a->size() + p.b->size();
  }
  std::vector<uint64_t> out(max_out + 1);

  Cell cell;
  cell.section = "intersect";
  cell.impl = impl;
  cell.unit = "elems/s";
  Stopwatch watch;
  for (size_t r = 0; r < reps; ++r) {
    for (const U64Pair& p : pairs) {
      cell.checksum += intersect(*p.a, *p.b, out.data());
    }
  }
  cell.wall_seconds = watch.ElapsedSeconds();
  if (cell.wall_seconds > 0) {
    cell.throughput = static_cast<double>(total_elems * reps) /
                      cell.wall_seconds;
  }
  return cell;
}

// --------------------------------------------------------------------------
// Covers: QMGen minimal-cover search, probes/s. The unpruned reference is
// the pre-optimization shape: no suffix-OR reachability bound, O(k^2)
// IsMinimalCover at every leaf.

struct UnprunedSearch {
  const std::vector<Termset>* available;
  Termset full;
  std::vector<Termset> current;
  std::vector<std::vector<Termset>>* out;
  uint64_t probes = 0;

  void Recurse(size_t start, Termset covered) {
    ++probes;
    if (covered == full) {
      if (IsMinimalCover(current, full)) out->push_back(current);
      return;
    }
    if (current.size() >= static_cast<size_t>(TermsetSize(full))) return;
    for (size_t i = start; i < available->size(); ++i) {
      const Termset t = (*available)[i];
      if ((t & ~covered) == 0) continue;
      current.push_back(t);
      Recurse(i + 1, covered | t);
      current.pop_back();
    }
  }
};

// Deterministic cover workloads: for k keywords, every termset whose
// popcount divides the round index unevenly — a mix of singletons, pairs
// and wide sets, like real R_Q termset distributions.
std::vector<std::vector<Termset>> MakeCoverCases(int keywords, size_t cases) {
  std::vector<std::vector<Termset>> out;
  const Termset full = (Termset{1} << keywords) - 1;
  for (size_t c = 0; c < cases; ++c) {
    std::vector<Termset> available;
    for (Termset t = 1; t <= full; ++t) {
      // A deterministic thinning keyed on the case index keeps the cases
      // distinct while staying reproducible without an RNG.
      if (((t * 2654435761u) >> 7) % (c + 3) == 0 ||
          TermsetSize(t) == 1) {
        available.push_back(t);
      }
      if (available.size() >= 18) break;  // bound the naive reference
    }
    out.push_back(std::move(available));
  }
  return out;
}

Cell RunCoversPruned(const std::vector<std::vector<Termset>>& cases,
                     Termset full, size_t reps) {
  Cell cell;
  cell.section = "covers";
  cell.impl = "pruned";
  cell.unit = "probes/s";
  uint64_t probes = 0;
  Stopwatch watch;
  for (size_t r = 0; r < reps; ++r) {
    for (const std::vector<Termset>& available : cases) {
      CoverSearchStats stats;
      const auto covers = EnumerateMinimalCovers(available, full, 0, &stats);
      probes += stats.probes;
      cell.checksum += covers.size();
    }
  }
  cell.wall_seconds = watch.ElapsedSeconds();
  if (cell.wall_seconds > 0) {
    cell.throughput = static_cast<double>(probes) / cell.wall_seconds;
  }
  return cell;
}

Cell RunCoversUnpruned(const std::vector<std::vector<Termset>>& cases,
                       Termset full, size_t reps) {
  Cell cell;
  cell.section = "covers";
  cell.impl = "unpruned";
  cell.unit = "probes/s";
  uint64_t probes = 0;
  Stopwatch watch;
  for (size_t r = 0; r < reps; ++r) {
    for (const std::vector<Termset>& available : cases) {
      // Same canonicalization EnumerateMinimalCovers applies, so both
      // searches walk the same candidate space.
      std::vector<Termset> sorted = available;
      std::sort(sorted.begin(), sorted.end());
      sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
      std::vector<std::vector<Termset>> covers;
      UnprunedSearch search{&sorted, full, {}, &covers, 0};
      search.Recurse(0, 0);
      std::sort(covers.begin(), covers.end());
      probes += search.probes;
      cell.checksum += covers.size();
    }
  }
  cell.wall_seconds = watch.ElapsedSeconds();
  if (cell.wall_seconds > 0) {
    cell.throughput = static_cast<double>(probes) / cell.wall_seconds;
  }
  return cell;
}

// --------------------------------------------------------------------------

void AppendJson(std::string* out, const Cell& cell, bool last) {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "    {\"section\": \"%s\", \"impl\": \"%s\", "
                "\"wall_seconds\": %.4f, \"throughput\": %.1f, "
                "\"unit\": \"%s\", \"checksum\": %llu}%s\n",
                cell.section.c_str(), cell.impl.c_str(), cell.wall_seconds,
                cell.throughput, cell.unit.c_str(),
                static_cast<unsigned long long>(cell.checksum),
                last ? "" : ",");
  *out += buf;
}

// Minimal structural check of the report before it hits disk: every
// required top-level key, every cell key, and nonempty sections. Keeps a
// refactor of the emitter from silently breaking the tracked schema.
bool SchemaCheck(const std::string& json, size_t expected_cells) {
  for (const char* key :
       {"\"bench\"", "\"dataset\"", "\"scale\"", "\"simd_level\"",
        "\"smoke\"", "\"cells\""}) {
    if (json.find(key) == std::string::npos) {
      std::cerr << "schema check: missing top-level key " << key << "\n";
      return false;
    }
  }
  size_t cells = 0;
  for (size_t pos = json.find("{\"section\""); pos != std::string::npos;
       pos = json.find("{\"section\"", pos + 1)) {
    ++cells;
  }
  if (cells != expected_cells) {
    std::cerr << "schema check: " << cells << " cells serialized, expected "
              << expected_cells << "\n";
    return false;
  }
  for (const char* key : {"\"impl\"", "\"wall_seconds\"", "\"throughput\"",
                          "\"unit\"", "\"checksum\""}) {
    size_t count = 0;
    for (size_t pos = json.find(key); pos != std::string::npos;
         pos = json.find(key, pos + 1)) {
      ++count;
    }
    if (count != expected_cells) {
      std::cerr << "schema check: key " << key << " appears " << count
                << " times, expected " << expected_cells << "\n";
      return false;
    }
  }
  return true;
}

// Best-of-N trials: on a shared machine a single trial's wall time swings
// by 2x with scheduler noise; the fastest trial is the least-perturbed
// measurement of the same deterministic work.
template <typename MakeCell>
Cell Best(size_t trials, const MakeCell& make) {
  Cell best = make();
  for (size_t t = 1; t < trials; ++t) {
    const Cell c = make();
    if (c.throughput > best.throughput) best = c;
  }
  return best;
}

double Throughput(const std::vector<Cell>& cells, const std::string& section,
                  const std::string& impl) {
  for (const Cell& c : cells) {
    if (c.section == section && c.impl == impl) return c.throughput;
  }
  return 0;
}

}  // namespace
}  // namespace matcn::bench

int main(int argc, char** argv) {
  using namespace matcn;
  using namespace matcn::bench;

  FlagSet flags(argc, argv);
  const std::string out_path = flags.GetString("out", "BENCH_kernels.json");
  const bool smoke = flags.Has("smoke");
  const bool check = flags.Has("check");
  for (const std::string& unknown : flags.UnknownFlags()) {
    std::cerr << "unknown flag --" << unknown
              << " (have --out --smoke --check)\n";
    return 2;
  }

  const size_t decode_reps = smoke ? 2 : 200;
  const size_t intersect_reps = smoke ? 2 : 50;
  const size_t cover_reps = smoke ? 1 : 20;
  const size_t trials = smoke ? 1 : 3;

  // imdb-derived posting lists: every sampled term's real tuple list, so
  // the gap distribution (dense CAST rows, sparse rare terms) is the one
  // the serving path decodes. The corpus scale is floored at 8: at the
  // suite's default 0.1 the synthetic imdb vocabulary yields median
  // 4-element lists, which measure per-call overhead instead of the
  // kernels (generation takes ~0.1 s, so the floor is free).
  const double scale = std::max(BenchScale(), 8.0);
  Database db = MakeImdb(42, scale);
  const TermIndex index = TermIndex::Build(db);
  std::vector<std::vector<TupleId>> lists;
  {
    const std::vector<std::string> terms = index.AllTerms();
    const size_t step = std::max<size_t>(1, terms.size() / 512);
    for (size_t i = 0; i < terms.size(); i += step) {
      std::vector<TupleId> ids = index.TuplesFor(terms[i]);
      if (!ids.empty()) lists.push_back(std::move(ids));
    }
  }
  if (lists.empty()) {
    std::cerr << "no posting lists sampled\n";
    return 1;
  }
  const std::vector<EncodedList> encoded = EncodePostings(lists);

  std::vector<Cell> cells;

  // Decode. "legacy" is the pre-kernel per-value loop PostingList::Decode
  // used; "scalar" the block kernel with SIMD pinned off; "simd" the
  // dispatched kernel.
  cells.push_back(Best(trials, [&] {
    return RunDecode("legacy", encoded, decode_reps,
                     [](const EncodedList& e, uint64_t* out) {
                       size_t pos = 0;
                       uint64_t prev = 0;
                       for (size_t i = 0; i < e.count; ++i) {
                         prev += VarbyteDecode(e.bytes, &pos);
                         out[i] = prev;
                       }
                     });
  }));
  cells.push_back(Best(trials, [&] {
    return RunDecode("scalar", encoded, decode_reps,
                     [](const EncodedList& e, uint64_t* out) {
                       simd::DecodeDeltaBlockScalar(e.bytes.data(),
                                                    e.bytes.size(), e.count,
                                                    out);
                     });
  }));
  cells.push_back(Best(trials, [&] {
    return RunDecode("simd", encoded, decode_reps,
                     [](const EncodedList& e, uint64_t* out) {
                       simd::DecodeDeltaBlock(e.bytes.data(), e.bytes.size(),
                                              e.count, out);
                     });
  }));

  // Intersect. Pairs: consecutive similar-size lists plus rare x common
  // skew pairs (each list against the largest), the TSFind pattern that
  // triggers galloping.
  std::vector<std::vector<uint64_t>> packed;
  packed.reserve(lists.size());
  for (const std::vector<TupleId>& ids : lists) {
    std::vector<uint64_t> u;
    u.reserve(ids.size());
    for (const TupleId& id : ids) u.push_back(id.packed());
    packed.push_back(std::move(u));
  }
  size_t largest = 0;
  for (size_t i = 1; i < packed.size(); ++i) {
    if (packed[i].size() > packed[largest].size()) largest = i;
  }
  std::vector<U64Pair> pairs;
  for (size_t i = 0; i + 1 < packed.size(); i += 2) {
    pairs.push_back({&packed[i], &packed[i + 1]});
  }
  for (size_t i = 0; i < packed.size(); i += 4) {
    if (i != largest) pairs.push_back({&packed[i], &packed[largest]});
  }

  cells.push_back(Best(trials, [&] {
    return RunIntersect(
        "set_intersection", pairs, intersect_reps,
        [](const std::vector<uint64_t>& a, const std::vector<uint64_t>& b,
           uint64_t* out) {
          return static_cast<size_t>(
              std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                                    out) -
              out);
        });
  }));
  cells.push_back(Best(trials, [&] {
    return RunIntersect(
        "scalar", pairs, intersect_reps,
        [](const std::vector<uint64_t>& a, const std::vector<uint64_t>& b,
           uint64_t* out) {
          return simd::IntersectSortedU64Scalar(a.data(), a.size(), b.data(),
                                                b.size(), out);
        });
  }));
  cells.push_back(Best(trials, [&] {
    return RunIntersect(
        "simd", pairs, intersect_reps,
        [](const std::vector<uint64_t>& a, const std::vector<uint64_t>& b,
           uint64_t* out) {
          return simd::IntersectSortedU64(a.data(), a.size(), b.data(),
                                          b.size(), out);
        });
  }));

  // Covers.
  const int cover_keywords = smoke ? 6 : 8;
  const Termset cover_full = (Termset{1} << cover_keywords) - 1;
  const std::vector<std::vector<Termset>> cover_cases =
      MakeCoverCases(cover_keywords, smoke ? 4 : 16);
  cells.push_back(Best(trials, [&] {
    return RunCoversUnpruned(cover_cases, cover_full, cover_reps);
  }));
  cells.push_back(Best(trials, [&] {
    return RunCoversPruned(cover_cases, cover_full, cover_reps);
  }));

  // The pruned and unpruned searches must agree on the cover sets they
  // emit (the checksum counts them) — a bench that measures a wrong
  // answer fast is worse than useless.
  if (cells[cells.size() - 1].checksum != cells[cells.size() - 2].checksum) {
    std::cerr << "cover searches disagree: pruned checksum "
              << cells.back().checksum << " vs unpruned "
              << cells[cells.size() - 2].checksum << "\n";
    return 1;
  }
  // Same for the three decoders and the three intersectors.
  if (cells[0].checksum != cells[1].checksum ||
      cells[1].checksum != cells[2].checksum) {
    std::cerr << "decoders disagree\n";
    return 1;
  }
  if (cells[3].checksum != cells[4].checksum ||
      cells[4].checksum != cells[5].checksum) {
    std::cerr << "intersectors disagree\n";
    return 1;
  }

  for (const Cell& c : cells) {
    std::printf("%-10s %-17s %12.1f %s\n", c.section.c_str(), c.impl.c_str(),
                c.throughput, c.unit.c_str());
  }

  std::string json;
  json += "{\n";
  json += "  \"bench\": \"kernels\",\n";
  json += "  \"dataset\": \"imdb\",\n";
  json += "  \"scale\": " + std::to_string(scale) + ",\n";
  json += std::string("  \"simd_level\": \"") +
          simd::LevelName(simd::ActiveLevel()) + "\",\n";
  json += std::string("  \"smoke\": ") + (smoke ? "true" : "false") + ",\n";
  json += "  \"cells\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    AppendJson(&json, cells[i], i + 1 == cells.size());
  }
  json += "  ]\n}\n";

  if (!SchemaCheck(json, cells.size())) return 1;

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << json;
  std::cout << "wrote " << out_path << " (" << cells.size() << " cells)\n";

  if (check) {
    const double decode_speedup =
        Throughput(cells, "decode", "simd") /
        std::max(1e-9, Throughput(cells, "decode", "legacy"));
    const double intersect_speedup =
        Throughput(cells, "intersect", "simd") /
        std::max(1e-9, Throughput(cells, "intersect", "set_intersection"));
    std::printf("check: decode simd/legacy %.2fx, intersect simd/std %.2fx\n",
                decode_speedup, intersect_speedup);
    if (decode_speedup < 2.0 || intersect_speedup < 2.0) {
      std::cerr << "check FAILED: below the 2x acceptance bar\n";
      return 1;
    }
  }
  return 0;
}
