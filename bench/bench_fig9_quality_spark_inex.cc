// Figure 9: MAP (all queries) and MRR (single-answer queries) for the
// SPARK and INEX query sets — MatCNGen vs CNGen, each coupled with the
// Hybrid and Skyline-Sweeping evaluators.

#include "bench/quality_util.h"
#include "common/table_printer.h"

int main(int argc, char** argv) {
  using namespace matcn;
  const bench::BenchFlags bench_flags(argc, argv);
  bench::PrintHeader("Figure 9: MAP / MRR on SPARK and INEX query sets");

  auto datasets = bench::BuildBenchDatasets(true, bench_flags.seed);
  auto all_systems = bench::MakeQualitySystems(datasets, /*t_max=*/5);
  // Figure 9 compares only the four CN-pipeline configurations.
  std::vector<bench::QualitySystem> systems;
  for (auto& s : all_systems) {
    if (s.name.find("CNGen") != std::string::npos ||
        s.name.find("MCG") != std::string::npos) {
      systems.push_back(std::move(s));
    }
  }

  std::vector<std::string> header = {"Dataset", "Set", "Metric"};
  for (const auto& s : systems) header.push_back(s.name);
  TablePrinter table(header);

  for (const auto& ds : datasets) {
    for (size_t qs = 0; qs < ds->set_names.size(); ++qs) {
      if (ds->set_names[qs] == "CW") continue;  // Figure 7's workload
      const std::vector<WorkloadQuery>& queries = ds->query_sets[qs];
      if (queries.empty()) continue;
      std::vector<std::string> map_row = {ds->name, ds->set_names[qs],
                                          "MAP"};
      std::vector<std::string> mrr_row = {ds->name, ds->set_names[qs],
                                          "MRR(1-rel)"};
      for (const auto& system : systems) {
        std::vector<double> ap, rr;
        for (const WorkloadQuery& wq : queries) {
          std::vector<Jnt> ranking = system.run(*ds, wq);
          ap.push_back(AveragePrecision(ranking, wq.golden, 1000));
          if (wq.num_relevant == 1) {
            rr.push_back(ReciprocalRank(ranking, wq.golden));
          }
        }
        map_row.push_back(TablePrinter::Num(Mean(ap), 3));
        mrr_row.push_back(TablePrinter::Num(Mean(rr), 3));
      }
      table.AddRow(map_row);
      table.AddRow(mrr_row);
    }
  }
  table.Print(std::cout);
  std::cout
      << "\nPaper: MatCNGen-based configurations beat the CNGen-based ones "
         "on both query sets, with a\nslight advantage for MCG+SS (except "
         "IMDb/SPARK where MCG+H edges it on MAP). Shape to check:\nMCG "
         "columns >= CNGen columns on every row.\n";
  return 0;
}
