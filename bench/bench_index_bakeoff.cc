// Live-index bakeoff: optimistic-lock-coupling ConcurrentTermIndex vs a
// shared_mutex-guarded legacy TermIndex, swept over read/write mixes and
// reader counts. Emits BENCH_index.json (read-only and mixed-workload
// columns) for regression tracking.
//
//   $ ./bench_index_bakeoff [--out BENCH_index.json]
//
// Env knobs (same convention as the rest of the bench suite):
//   MATCN_BENCH_SCALE    dataset scale            (default 0.1)
//   MATCN_BENCH_READS    lookups per reader       (default 20000)

#include <cstdint>
#include <fstream>
#include <iostream>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/flags.h"
#include "common/timer.h"
#include "datasets/generators.h"
#include "indexing/term_index.h"
#include "liveindex/concurrent_term_index.h"
#include "liveindex/index_writer.h"
#include "storage/database.h"

namespace matcn::bench {
namespace {

// The locked baseline every reader contends on: what serving the legacy
// TermIndex under concurrent maintenance would look like.
class LockedTermIndex {
 public:
  LockedTermIndex(Database* db, TermIndex index)
      : db_(db), index_(std::move(index)) {}

  size_t Read(const std::string& term) {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return index_.TuplesFor(term).size();
  }

  void Insert(RelationId relation, Tuple tuple) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    if (!db_->Insert(relation, std::move(tuple)).ok()) return;
    index_.ApplyInsert(
        *db_, TupleId(relation, db_->relation(relation).num_tuples() - 1));
  }

 private:
  Database* db_;
  TermIndex index_;
  std::shared_mutex mu_;
};

struct Cell {
  std::string impl;      // "locked" | "olc"
  std::string workload;  // "read_only" | "mixed_95_5" | "mixed_50_50"
  int readers = 0;
  uint64_t read_ops = 0;
  uint64_t write_ops = 0;
  double wall_seconds = 0;
  double read_ops_per_sec = 0;
  double write_ops_per_sec = 0;
};

Tuple StreamTuple(int64_t i) {
  return {Value(int64_t{1000000} + i),
          Value("fresh" + std::to_string(i) + " hot" + std::to_string(i % 8))};
}

// Every k-th indexed term: deterministic, mixes hot and rare postings.
std::vector<std::string> SampleTerms(const TermIndex& index, size_t want) {
  const std::vector<std::string> all = index.AllTerms();
  std::vector<std::string> sample;
  if (all.empty()) return sample;
  const size_t step = std::max<size_t>(1, all.size() / want);
  for (size_t i = 0; i < all.size() && sample.size() < want; i += step) {
    sample.push_back(all[i]);
  }
  return sample;
}

// One bakeoff cell. `read` runs on each reader thread; `write` (if any
// writes are requested) runs on one dedicated writer thread.
template <typename ReadFn, typename WriteFn>
Cell RunCell(const std::string& impl, const std::string& workload,
             int readers, uint64_t reads_per_reader, uint64_t writes,
             const ReadFn& read, const WriteFn& write) {
  Cell cell;
  cell.impl = impl;
  cell.workload = workload;
  cell.readers = readers;
  cell.read_ops = reads_per_reader * static_cast<uint64_t>(readers);
  cell.write_ops = writes;

  Stopwatch watch;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(readers) + 1);
  for (int t = 0; t < readers; ++t) {
    threads.emplace_back([&read, reads_per_reader, t] {
      for (uint64_t i = 0; i < reads_per_reader; ++i) read(t, i);
    });
  }
  if (writes > 0) {
    threads.emplace_back([&write, writes] {
      for (uint64_t i = 0; i < writes; ++i) write(static_cast<int64_t>(i));
    });
  }
  for (std::thread& t : threads) t.join();
  cell.wall_seconds = watch.ElapsedSeconds();
  if (cell.wall_seconds > 0) {
    cell.read_ops_per_sec =
        static_cast<double>(cell.read_ops) / cell.wall_seconds;
    cell.write_ops_per_sec =
        static_cast<double>(cell.write_ops) / cell.wall_seconds;
  }
  return cell;
}

void AppendJson(std::string* out, const Cell& cell, bool last) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "    {\"impl\": \"%s\", \"workload\": \"%s\", \"readers\": %d, "
      "\"read_ops\": %llu, \"write_ops\": %llu, \"wall_seconds\": %.4f, "
      "\"read_ops_per_sec\": %.1f, \"write_ops_per_sec\": %.1f}%s\n",
      cell.impl.c_str(), cell.workload.c_str(), cell.readers,
      static_cast<unsigned long long>(cell.read_ops),
      static_cast<unsigned long long>(cell.write_ops), cell.wall_seconds,
      cell.read_ops_per_sec, cell.write_ops_per_sec, last ? "" : ",");
  *out += buf;
}

}  // namespace
}  // namespace matcn::bench

int main(int argc, char** argv) {
  using namespace matcn;
  using namespace matcn::bench;

  FlagSet flags(argc, argv);
  const std::string out_path = flags.GetString("out", "BENCH_index.json");
  for (const std::string& unknown : flags.UnknownFlags()) {
    std::cerr << "unknown flag --" << unknown << " (have --out)\n";
    return 2;
  }

  const double scale = BenchScale();
  const uint64_t reads_per_reader = EnvCount("MATCN_BENCH_READS", 20'000);
  const TermIndexOptions index_options{.skip_stopwords = true,
                                       .compress_postings = true};

  struct Workload {
    std::string name;
    double write_ratio;  // writes as a fraction of total reads
  };
  const std::vector<Workload> workloads = {
      {"read_only", 0.0}, {"mixed_95_5", 0.05}, {"mixed_50_50", 0.5}};
  const std::vector<int> reader_counts = {1, 2, 4};

  std::vector<Cell> cells;
  for (const Workload& workload : workloads) {
    for (int readers : reader_counts) {
      const uint64_t writes = static_cast<uint64_t>(
          static_cast<double>(reads_per_reader * readers) *
          workload.write_ratio);

      // Locked baseline. Fresh dataset per cell so growth never leaks
      // across measurements.
      {
        Database db = MakeImdb(42, scale);
        TermIndex seed = TermIndex::Build(db, index_options);
        const std::vector<std::string> terms = SampleTerms(seed, 256);
        const RelationId per = *db.schema().RelationIdByName("PER");
        LockedTermIndex locked(&db, std::move(seed));
        cells.push_back(RunCell(
            "locked", workload.name, readers, reads_per_reader, writes,
            [&locked, &terms](int t, uint64_t i) {
              locked.Read(terms[(i + static_cast<uint64_t>(t) * 37) %
                                terms.size()]);
            },
            [&locked, per](int64_t i) {
              locked.Insert(per, StreamTuple(i));
            }));
      }

      // OLC live index: epoch-pinned snapshot per lookup, IndexWriter
      // with background compaction as in the serving stack.
      {
        Database db = MakeImdb(42, scale);
        liveindex::LiveIndexOptions live_options;
        live_options.index = index_options;
        const TermIndex seed = TermIndex::Build(db, index_options);
        const std::vector<std::string> terms = SampleTerms(seed, 256);
        liveindex::ConcurrentTermIndex live(seed, live_options);
        liveindex::IndexWriter writer(&db, &live);
        const RelationId per = *db.schema().RelationIdByName("PER");
        cells.push_back(RunCell(
            "olc", workload.name, readers, reads_per_reader, writes,
            [&live, &terms](int t, uint64_t i) {
              const liveindex::IndexSnapshot snapshot = live.Snapshot();
              (void)snapshot
                  .TuplesFor(terms[(i + static_cast<uint64_t>(t) * 37) %
                                   terms.size()])
                  .size();
            },
            [&writer, per](int64_t i) {
              (void)writer.Insert(per, StreamTuple(i));
            }));
        writer.Flush();
      }

      const Cell& locked = cells[cells.size() - 2];
      const Cell& olc = cells.back();
      std::cout << workload.name << " readers=" << readers << ": locked "
                << static_cast<uint64_t>(locked.read_ops_per_sec)
                << " reads/s, olc "
                << static_cast<uint64_t>(olc.read_ops_per_sec)
                << " reads/s\n";
    }
  }

  std::string json;
  json += "{\n";
  json += "  \"bench\": \"index_bakeoff\",\n";
  json += "  \"dataset\": \"imdb\",\n";
  json += "  \"scale\": " + std::to_string(scale) + ",\n";
  json += "  \"reads_per_reader\": " + std::to_string(reads_per_reader) +
          ",\n";
  json += "  \"hardware_threads\": " +
          std::to_string(std::thread::hardware_concurrency()) + ",\n";
  json += "  \"cells\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    AppendJson(&json, cells[i], i + 1 == cells.size());
  }
  json += "  ]\n}\n";

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << json;
  std::cout << "wrote " << out_path << " (" << cells.size() << " cells)\n";
  return 0;
}
