// Ablation: Term Index posting-list compression (the paper's suggested
// memory mitigation) — build time, lookup time and posting memory, raw vs
// varbyte — plus CN canonicalization cost.

#include <benchmark/benchmark.h>

#include "core/candidate_network.h"
#include "datasets/generators.h"
#include "indexing/term_index.h"

namespace matcn {
namespace {

Database& SharedDb() {
  static Database* db = new Database(MakeDblp(45, 0.2));
  return *db;
}

void BM_IndexBuildRaw(benchmark::State& state) {
  Database& db = SharedDb();
  size_t bytes = 0;
  for (auto _ : state) {
    TermIndex index = TermIndex::Build(db);
    bytes = index.PostingMemoryBytes();
    benchmark::DoNotOptimize(index);
  }
  state.counters["posting_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_IndexBuildRaw);

void BM_IndexBuildCompressed(benchmark::State& state) {
  Database& db = SharedDb();
  TermIndexOptions options;
  options.compress_postings = true;
  size_t bytes = 0;
  for (auto _ : state) {
    TermIndex index = TermIndex::Build(db, options);
    bytes = index.PostingMemoryBytes();
    benchmark::DoNotOptimize(index);
  }
  state.counters["posting_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_IndexBuildCompressed);

void BM_LookupRaw(benchmark::State& state) {
  static TermIndex* index = new TermIndex(TermIndex::Build(SharedDb()));
  const std::vector<std::string> terms = index->AllTerms();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index->TuplesFor(terms[i++ % terms.size()]));
  }
}
BENCHMARK(BM_LookupRaw);

void BM_LookupCompressed(benchmark::State& state) {
  static TermIndex* index = [] {
    TermIndexOptions options;
    options.compress_postings = true;
    return new TermIndex(TermIndex::Build(SharedDb(), options));
  }();
  const std::vector<std::string> terms = index->AllTerms();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index->TuplesFor(terms[i++ % terms.size()]));
  }
}
BENCHMARK(BM_LookupCompressed);

void BM_CnCanonicalForm(benchmark::State& state) {
  // A representative 7-node CN path.
  CandidateNetwork cn = CandidateNetwork::SingleNode(CnNode{0, 1, 0});
  for (int i = 1; i < 7; ++i) {
    cn = cn.Extend(i - 1, CnNode{static_cast<RelationId>(i % 4),
                                 static_cast<Termset>(i % 3), -1});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cn.CanonicalForm());
  }
}
BENCHMARK(BM_CnCanonicalForm);

}  // namespace
}  // namespace matcn

BENCHMARK_MAIN();
