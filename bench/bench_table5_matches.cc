// Table 5: max and average number of query matches generated per
// query set / dataset, plus Figure 6's companion statistic in counts.

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "core/matcngen.h"

int main(int argc, char** argv) {
  using namespace matcn;
  const bench::BenchFlags bench_flags(argc, argv);
  bench::PrintHeader("Table 5: Number of query matches generated");

  TablePrinter table({"Dataset", "Set", "Max", "Avg"});
  double overall_avg = 0;
  size_t overall_sets = 0;
  for (const auto& ds : bench::BuildBenchDatasets(true, bench_flags.seed)) {
    MatCnGen gen(&ds->schema_graph);
    for (size_t s = 0; s < ds->set_names.size(); ++s) {
      size_t max_matches = 0;
      double avg = 0;
      for (const WorkloadQuery& wq : ds->query_sets[s]) {
        GenerationResult result = gen.Generate(wq.query, ds->index);
        max_matches = std::max(max_matches, result.matches.size());
        avg += static_cast<double>(result.matches.size());
      }
      if (!ds->query_sets[s].empty()) {
        avg /= static_cast<double>(ds->query_sets[s].size());
      }
      overall_avg += avg;
      ++overall_sets;
      table.AddRow({ds->name, ds->set_names[s],
                    TablePrinter::Int(static_cast<int64_t>(max_matches)),
                    TablePrinter::Num(avg, 2)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nOverall average matches per query-set: "
            << TablePrinter::Num(
                   overall_sets ? overall_avg / overall_sets : 0, 2)
            << "\nPaper: e.g. IMDb/CW max 69 avg 9.1; Mondial/SPARK max 208 "
               "avg 23.2; DBLP/SPARK max 6 avg 2.0;\noverall average below "
               "17. Shape to check: Mondial/SPARK the largest (dense "
               "schema), DBLP the smallest.\n";
  return 0;
}
