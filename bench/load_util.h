#ifndef MATCN_BENCH_LOAD_UTIL_H_
#define MATCN_BENCH_LOAD_UTIL_H_

// Shared plumbing for the load drivers (matcn_serve, matcn_net_bench,
// matcn_loadgen): the dataset factory, outcome classification, the
// count-vs-duration run window, and the common throughput/percentile
// report block. Latency recording itself lives in workload::LoadRecorder
// so it is unit-tested; this header is presentation + glue.

#include <cstdint>
#include <iostream>
#include <string>

#include "common/flags.h"
#include "common/status.h"
#include "common/timer.h"
#include "datasets/generators.h"
#include "metrics/latency_histogram.h"
#include "workload/recorder.h"

namespace matcn::bench {

/// The named synthetic datasets every serving driver accepts.
inline Database MakeNamedDataset(const std::string& name, double scale,
                                 bool* ok) {
  *ok = true;
  if (name == "imdb") return MakeImdb(42, scale);
  if (name == "mondial") return MakeMondial(43, scale);
  if (name == "wikipedia") return MakeWikipedia(44, scale);
  if (name == "dblp") return MakeDblp(45, scale);
  if (name == "tpch" || name == "tpc-h") return MakeTpch(46, scale);
  *ok = false;
  return Database{};
}

inline const char* DatasetNames() { return "imdb|mondial|wikipedia|dblp|tpch"; }

/// Maps a failed request status onto the recorder outcome taxonomy:
/// admission-control rejections and deadline expiries are expected
/// behavior under load, everything else is a hard error.
inline workload::OpOutcome ClassifyFailure(StatusCode code) {
  switch (code) {
    case StatusCode::kResourceExhausted:
      return workload::OpOutcome::kRejected;
    case StatusCode::kDeadlineExceeded:
      return workload::OpOutcome::kDeadline;
    default:
      return workload::OpOutcome::kError;
  }
}

/// How long a load run lasts: a fixed request count (`requests` > 0) or a
/// wall-clock window (`duration_s` > 0) whose first `warmup_s` seconds
/// are excluded from recorded statistics. Resolved from --requests /
/// --duration-s / --warmup-s; --duration-s wins when both are given.
struct RunWindow {
  size_t requests = 0;
  double duration_s = 0;
  double warmup_s = 0;

  bool duration_based() const { return duration_s > 0; }
  int64_t warmup_us() const { return static_cast<int64_t>(warmup_s * 1e6); }
  int64_t end_us() const {
    return static_cast<int64_t>((warmup_s + duration_s) * 1e6);
  }
};

/// Parses the shared run-window flags. `default_requests` keeps each
/// driver's historical count-based default.
inline RunWindow ParseRunWindow(FlagSet& flags, size_t default_requests) {
  RunWindow window;
  window.requests = static_cast<size_t>(
      flags.GetInt("requests", static_cast<int64_t>(default_requests)));
  window.duration_s = flags.GetDouble("duration-s", 0.0);
  window.warmup_s = flags.GetDouble("warmup-s", 0.0);
  if (!window.duration_based()) window.warmup_s = 0;
  return window;
}

/// The standard report block: achieved throughput over the measured
/// window plus the recorder's outcome counts and intended-start latency
/// percentiles.
inline void PrintLoadReport(std::ostream& os,
                            const workload::LoadSnapshot& snap,
                            double measured_seconds) {
  const double qps = measured_seconds > 0
                         ? static_cast<double>(snap.queries()) /
                               measured_seconds
                         : 0;
  os << "  time        " << measured_seconds << " s (measured window";
  if (snap.warmup_skipped > 0) {
    os << ", " << snap.warmup_skipped << " warmup ops excluded";
  }
  os << ")\n  throughput  " << static_cast<uint64_t>(qps)
     << " qps\n  latency     p50="
     << LatencyHistogram::FormatMicros(
            static_cast<int64_t>(snap.p50_ms * 1000))
     << " p95="
     << LatencyHistogram::FormatMicros(
            static_cast<int64_t>(snap.p95_ms * 1000))
     << " p99="
     << LatencyHistogram::FormatMicros(
            static_cast<int64_t>(snap.p99_ms * 1000))
     << " p99.9="
     << LatencyHistogram::FormatMicros(
            static_cast<int64_t>(snap.p999_ms * 1000))
     << " max="
     << LatencyHistogram::FormatMicros(
            static_cast<int64_t>(snap.max_ms * 1000))
     << " (from intended start)\n  ok          " << snap.ok << " ("
     << snap.cache_hits << " cache hits, " << snap.degraded
     << " degraded)\n  rejected    " << snap.rejected
     << " (RESOURCE_EXHAUSTED backpressure)\n  deadline    " << snap.deadline
     << " (DEADLINE_EXCEEDED)\n  errors      " << snap.errors << "\n";
  if (snap.inserts_ok + snap.insert_errors > 0) {
    os << "  inserts     " << snap.inserts_ok << " ok, "
       << snap.insert_errors << " failed, p99="
       << LatencyHistogram::FormatMicros(
              static_cast<int64_t>(snap.insert_p99_ms * 1000))
       << "\n";
  }
}

}  // namespace matcn::bench

#endif  // MATCN_BENCH_LOAD_UTIL_H_
