// Table 3: overview of the experimental query sets (query counts).
// Table 4: max and average number of keywords per query set.

#include "bench/bench_util.h"
#include "common/table_printer.h"

int main(int argc, char** argv) {
  using namespace matcn;
  const bench::BenchFlags bench_flags(argc, argv);
  bench::PrintHeader("Tables 3 & 4: Query sets and keyword statistics");

  TablePrinter t3({"Dataset", "CW", "SPARK", "INEX", "Total"});
  TablePrinter t4({"Dataset", "Set", "Max kw", "Avg kw"});
  size_t grand_total = 0;
  for (const auto& ds : bench::BuildBenchDatasets(true, bench_flags.seed)) {
    if (ds->set_names.empty()) continue;
    size_t cw = 0, spark = 0, inex = 0;
    for (size_t s = 0; s < ds->set_names.size(); ++s) {
      const auto& queries = ds->query_sets[s];
      if (ds->set_names[s] == "CW") cw = queries.size();
      if (ds->set_names[s] == "SPARK") spark = queries.size();
      if (ds->set_names[s] == "INEX") inex = queries.size();

      size_t max_kw = 0;
      double avg_kw = 0;
      for (const WorkloadQuery& wq : queries) {
        max_kw = std::max(max_kw, wq.query.size());
        avg_kw += static_cast<double>(wq.query.size());
      }
      if (!queries.empty()) avg_kw /= static_cast<double>(queries.size());
      t4.AddRow({ds->name, ds->set_names[s],
                 TablePrinter::Int(static_cast<int64_t>(max_kw)),
                 TablePrinter::Num(avg_kw, 2)});
    }
    grand_total += cw + spark + inex;
    t3.AddRow({ds->name, TablePrinter::Int(static_cast<int64_t>(cw)),
               TablePrinter::Int(static_cast<int64_t>(spark)),
               TablePrinter::Int(static_cast<int64_t>(inex)),
               TablePrinter::Int(static_cast<int64_t>(cw + spark + inex))});
  }
  t3.AddRow({"TOTAL", "", "", "",
             TablePrinter::Int(static_cast<int64_t>(grand_total))});
  t3.Print(std::cout);
  std::cout << "\nPaper totals: IMDb 78, Mondial 77, Wikipedia 45, DBLP 18 — "
               "218 queries overall.\n\n";
  t4.Print(std::cout);
  std::cout << "\nPaper: avg 2.1 keywords overall, max 4 — typical short "
               "keyword queries.\n";
  return 0;
}
