// Table 2: characteristics of the datasets used — size, relations,
// tuples, referential integrity constraints.

#include "bench/bench_util.h"
#include "common/table_printer.h"

int main(int argc, char** argv) {
  using namespace matcn;
  const bench::BenchFlags bench_flags(argc, argv);
  bench::PrintHeader("Table 2: Characteristics of the datasets used");

  TablePrinter table(
      {"Dataset", "Size (MB)", "Relations", "Tuples", "RIC", "G_u edges"});
  for (const auto& ds : bench::BuildBenchDatasets(false, bench_flags.seed)) {
    table.AddRow({
        ds->name,
        TablePrinter::Num(
            static_cast<double>(ds->db.ApproximateSizeBytes()) / 1e6, 2),
        TablePrinter::Int(static_cast<int64_t>(ds->db.num_relations())),
        TablePrinter::Int(static_cast<int64_t>(ds->db.TotalTuples())),
        TablePrinter::Int(
            static_cast<int64_t>(ds->db.schema().foreign_keys().size())),
        TablePrinter::Int(static_cast<int64_t>(ds->schema_graph.num_edges())),
    });
  }
  table.Print(std::cout);
  std::cout << "\nPaper (full-size dumps): Mondial 9MB/28rel/17k tuples/104 "
               "RIC; IMDb 516MB/5/1.67M/4;\nWikipedia 550MB/6/206k/5; DBLP "
               "40MB/6/878k/6; TPC-H 876MB/8/2.39M/11.\nShape to check: same "
               "relation/RIC structure; tuple counts scale with "
               "MATCN_BENCH_SCALE.\n";
  return 0;
}
