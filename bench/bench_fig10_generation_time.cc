// Figure 10: time to generate CNs, split into tuple-set finding (TS) and
// CN construction (CN), for CNGen, MatCNGen-Disk and MatCNGen-Mem.

#include "baseline/cngen.h"
#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "core/matcngen.h"
#include "metrics/latency_histogram.h"
#include <fstream>
#include <thread>

#include "storage/disk.h"

int main(int argc, char** argv) {
  using namespace matcn;
  const bench::BenchFlags bench_flags(argc, argv);
  bench::PrintHeader(
      "Figure 10: CN generation time (ms/query), TS vs CN split");

  const int t_max = static_cast<int>(bench::EnvCount("MATCN_TMAX", 5));
  const std::string disk_root = "/tmp/matcn_bench_disk";

  TablePrinter table({"Dataset", "Set", "CNGen TS", "CNGen CN",
                      "MCG-Disk TS", "MCG-Disk CN", "MCG-Mem TS",
                      "MCG-Mem CN"});
  // Per-query latency distributions across every dataset/query set; the
  // table reports means, these expose the tails.
  LatencyHistogram cngen_hist, disk_hist, mem_hist;
  auto datasets = bench::BuildBenchDatasets(true, bench_flags.seed);
  for (const auto& ds : datasets) {
    if (ds->set_names.empty()) continue;
    const std::string dir = disk_root + "/" + ds->name;
    Status saved = DiskStorage::Save(ds->db, dir);
    if (!saved.ok()) {
      std::cerr << "disk save failed: " << saved.ToString() << "\n";
      return 1;
    }
    MatCnGenOptions mat_options;
    mat_options.t_max = t_max;
    MatCnGen gen(&ds->schema_graph, mat_options);

    for (size_t s = 0; s < ds->set_names.size(); ++s) {
      const auto& queries = ds->query_sets[s];
      if (queries.empty()) continue;
      double cngen_ts = 0, cngen_cn = 0;
      double disk_ts = 0, disk_cn = 0;
      double mem_ts = 0, mem_cn = 0;
      for (const WorkloadQuery& wq : queries) {
        // CNGen baseline tuple-set step, emulating DISCOVER's Tuple Set
        // Post-Processor: per-query relation-file scans (the SQL ILIKE
        // probes) plus materialization of every tuple-set as a temporary
        // table (the INTERSECT step writes results back to the database).
        Stopwatch watch;
        Result<std::vector<TupleSet>> scanned =
            TupleSetFinder::FindDisk(dir, ds->db.schema(), wq.query);
        std::vector<TupleSet> sets =
            scanned.ok() ? std::move(scanned).value()
                         : TupleSetFinder::FindScan(ds->db, wq.query);
        {
          // Materialize tuple-sets to disk and read them back, like
          // DISCOVER's temporary relations.
          const std::string tmp = dir + "/tupleset.tmp";
          std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
          for (const TupleSet& ts : sets) {
            for (const TupleId& id : ts.tuples) {
              const uint64_t packed = id.packed();
              out.write(reinterpret_cast<const char*>(&packed),
                        sizeof(packed));
            }
          }
          out.flush();
          out.close();
          std::ifstream in(tmp, std::ios::binary);
          uint64_t packed = 0;
          while (in.read(reinterpret_cast<char*>(&packed), sizeof(packed))) {
          }
        }
        const double q_cngen_ts = watch.ElapsedMillis();
        cngen_ts += q_cngen_ts;
        watch.Reset();
        TupleSetGraph ts_graph(&ds->schema_graph, &sets);
        CnGenOptions base_options;
        base_options.t_max = t_max;
        CnGen(wq.query, ts_graph, base_options);
        const double q_cngen_cn = watch.ElapsedMillis();
        cngen_cn += q_cngen_cn;
        cngen_hist.Record(
            static_cast<int64_t>((q_cngen_ts + q_cngen_cn) * 1000.0));

        Result<GenerationResult> disk =
            gen.GenerateDisk(wq.query, dir, ds->db.schema());
        if (disk.ok()) {
          disk_ts += disk->stats.ts_millis;
          disk_cn += disk->stats.match_millis + disk->stats.cn_millis;
          disk_hist.Record(static_cast<int64_t>(
              (disk->stats.ts_millis + disk->stats.match_millis +
               disk->stats.cn_millis) *
              1000.0));
        }

        GenerationResult mem = gen.Generate(wq.query, ds->index);
        mem_ts += mem.stats.ts_millis;
        mem_cn += mem.stats.match_millis + mem.stats.cn_millis;
        mem_hist.Record(static_cast<int64_t>(
            (mem.stats.ts_millis + mem.stats.match_millis +
             mem.stats.cn_millis) *
            1000.0));
      }
      const double n = static_cast<double>(queries.size());
      table.AddRow({ds->name, ds->set_names[s],
                    TablePrinter::Num(cngen_ts / n, 3),
                    TablePrinter::Num(cngen_cn / n, 3),
                    TablePrinter::Num(disk_ts / n, 3),
                    TablePrinter::Num(disk_cn / n, 3),
                    TablePrinter::Num(mem_ts / n, 3),
                    TablePrinter::Num(mem_cn / n, 3)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nEnd-to-end per-query latency (TS + QM + CN, all rows):\n"
            << "  CNGen    " << cngen_hist.Summary() << "\n"
            << "  MCG-Disk " << disk_hist.Summary() << "\n"
            << "  MCG-Mem  " << mem_hist.Summary() << "\n";

  // Parallel MatchCN sweep: the per-match CN stage on multi-match queries
  // with --cn-threads workers vs the sequential path. High-K random
  // queries generate the hundreds of matches where intra-query
  // parallelism pays, and the sweep runs them at a deeper T_max
  // (MATCN_SWEEP_TMAX, default 7): at the paper's T_max = 5 and bench
  // scale, one match costs ~1 µs and thread startup would drown the
  // signal, while T_max = 8 explodes the BFS into minutes per dataset.
  // The sequential MCG-Mem rows above are untouched — the sweep re-runs
  // its own queries, it does not replace them.
  const int sweep_t_max =
      static_cast<int>(bench::EnvCount("MATCN_SWEEP_TMAX", 7));
  std::cout << "\nParallel MatchCN sweep (multi-match queries, CN stage "
               "only, T_max="
            << sweep_t_max
            << ", --cn-threads=" << bench_flags.cn_threads << ", "
            << std::thread::hardware_concurrency()
            << " hardware threads):\n\n";
  TablePrinter par_table({"Dataset", "Queries", "Matches (avg)", "CN x1 ms",
                          "CN xN ms", "Speedup", "Efficiency"});
  for (const auto& ds : datasets) {
    WorkloadGenerator wgen(&ds->db, &ds->schema_graph, &ds->index);
    // 8-keyword queries maximize the match count per query; keep only the
    // genuinely multi-match ones so the table measures the partition, not
    // single-match overhead.
    std::vector<KeywordQuery> queries =
        wgen.RandomQueries(12, 8, 7000 + bench_flags.seed);
    MatCnGenOptions seq_options;
    seq_options.t_max = sweep_t_max;
    seq_options.max_matches = 2000;
    MatCnGen seq_gen(&ds->schema_graph, seq_options);
    MatCnGenOptions par_options = seq_options;
    par_options.num_threads = bench_flags.cn_threads;
    MatCnGen par_gen(&ds->schema_graph, par_options);

    double seq_cn = 0, par_cn = 0, matches = 0, efficiency = 0;
    size_t used = 0;
    for (const KeywordQuery& q : queries) {
      GenerationResult warm = seq_gen.Generate(q, ds->index);
      if (warm.matches.size() < 16) continue;
      GenerationResult a = seq_gen.Generate(q, ds->index);
      GenerationResult b = par_gen.Generate(q, ds->index);
      seq_cn += a.stats.cn_millis;
      par_cn += b.stats.cn_millis;
      matches += static_cast<double>(a.matches.size());
      efficiency += b.stats.cn_parallel_efficiency;
      ++used;
    }
    if (used == 0) continue;
    const double n = static_cast<double>(used);
    par_table.AddRow(
        {ds->name, TablePrinter::Int(static_cast<int64_t>(used)),
         TablePrinter::Num(matches / n, 1), TablePrinter::Num(seq_cn / n, 3),
         TablePrinter::Num(par_cn / n, 3),
         TablePrinter::Num(par_cn > 0 ? seq_cn / par_cn : 0, 2),
         TablePrinter::Num(efficiency / n, 2)});
  }
  par_table.Print(std::cout);
  std::cout << "\nShape to check: Speedup >= 2x at 8 threads on every "
               "multi-match row when the host\nhas >= 8 hardware threads "
               "(a 1-core host can only show ~1x); output is identical\n"
               "either way (see core_differential_test), so the sweep is "
               "pure wall-clock.\n";
  std::cout
      << "\nPaper: both MatCNGen variants beat CNGen everywhere; "
         "MatCNGen-Mem's TS time is near zero\n(Term Index lookup); the CN "
         "phase is faster because one CN is built per match. Shape to\n"
         "check: MCG-Mem TS << MCG-Disk TS < CNGen TS, and MCG CN < CNGen "
         "CN on every row.\n";
  return 0;
}
