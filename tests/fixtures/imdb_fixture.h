#ifndef MATCN_TESTS_FIXTURES_IMDB_FIXTURE_H_
#define MATCN_TESTS_FIXTURES_IMDB_FIXTURE_H_

#include "storage/database.h"

namespace matcn::testing {

/// Builds the miniature IMDb instance used throughout the unit tests. It
/// reproduces the paper's running example (Examples 2-5) *exactly*: for
/// Q = {denzel, washington, gangster} there are 10 non-empty non-free
/// tuple-sets and 19 query matches; for Q' = {denzel, washington} there
/// are 6 tuple-sets and 5 matches; and the match {MOV^{g}, PER^{d,w}}
/// yields the CN MOV^{g} ⋈ CAST^{} ⋈ PER^{d,w}.
///
/// Schema (Figure 3): CHAR, MOV, CAST, PER, ROLE with CAST referencing
/// MOV, PER, CHAR and ROLE (4 RICs).
///
/// Keyword placement (d = denzel, w = washington, g = gangster):
///   R(d)  = {PER, CHAR}            R(w)   = {PER}
///   R(g)  = {CHAR, MOV, CAST, ROLE}
///   R(dw) = {PER, CAST}            R(dg)  = {CAST}
Database MakeMiniImdb();

}  // namespace matcn::testing

#endif  // MATCN_TESTS_FIXTURES_IMDB_FIXTURE_H_
