#include "fixtures/imdb_fixture.h"

#include <cassert>

namespace matcn::testing {

Database MakeMiniImdb() {
  Database db;

  auto check = [](const Status& s) { assert(s.ok()); (void)s; };
  auto check_id = [](const Result<RelationId>& r) {
    assert(r.ok());
    (void)r;
  };

  // Relation ids follow creation order: CHAR=0, MOV=1, CAST=2, PER=3,
  // ROLE=4 (matching Figure 3's drawing order).
  check_id(db.CreateRelation(RelationSchema(
      "CHAR", {{"id", ValueType::kInt, /*is_primary_key=*/true,
                /*searchable=*/false},
               {"name", ValueType::kText, false, true}})));
  check_id(db.CreateRelation(RelationSchema(
      "MOV", {{"id", ValueType::kInt, true, false},
              {"title", ValueType::kText, false, true},
              {"year", ValueType::kInt, false, false}})));
  check_id(db.CreateRelation(RelationSchema(
      "CAST", {{"id", ValueType::kInt, true, false},
               {"mid", ValueType::kInt, false, false},
               {"pid", ValueType::kInt, false, false},
               {"chid", ValueType::kInt, false, false},
               {"rid", ValueType::kInt, false, false},
               {"note", ValueType::kText, false, true}})));
  check_id(db.CreateRelation(RelationSchema(
      "PER", {{"id", ValueType::kInt, true, false},
              {"name", ValueType::kText, false, true}})));
  check_id(db.CreateRelation(RelationSchema(
      "ROLE", {{"id", ValueType::kInt, true, false},
               {"name", ValueType::kText, false, true}})));

  check(db.AddForeignKey({"CAST", "mid", "MOV", "id"}));
  check(db.AddForeignKey({"CAST", "pid", "PER", "id"}));
  check(db.AddForeignKey({"CAST", "chid", "CHAR", "id"}));
  check(db.AddForeignKey({"CAST", "rid", "ROLE", "id"}));

  // CHAR: gangster alone; denzel alone.
  check(db.Insert("CHAR", {Value(int64_t{1}), Value("Gangster Boss")}));
  check(db.Insert("CHAR", {Value(int64_t{2}), Value("Denzel Impersonator")}));
  check(db.Insert("CHAR", {Value(int64_t{3}), Value("Detective Quinn")}));

  // MOV: gangster alone.
  check(db.Insert("MOV", {Value(int64_t{1}), Value("American Gangster"),
                          Value(int64_t{2007})}));
  check(db.Insert("MOV", {Value(int64_t{2}), Value("Flight Plan"),
                          Value(int64_t{2012})}));
  check(db.Insert("MOV", {Value(int64_t{3}), Value("Inside Job"),
                          Value(int64_t{2006})}));

  // PER: denzel+washington; denzel alone; washington alone.
  check(db.Insert("PER", {Value(int64_t{1}), Value("Denzel Washington")}));
  check(db.Insert("PER", {Value(int64_t{2}), Value("Denzel Smith")}));
  check(db.Insert("PER", {Value(int64_t{3}), Value("Mary Washington")}));
  check(db.Insert("PER", {Value(int64_t{4}), Value("Russell Crowe")}));

  // ROLE: gangster alone.
  check(db.Insert("ROLE", {Value(int64_t{1}), Value("gangster extra")}));
  check(db.Insert("ROLE", {Value(int64_t{2}), Value("lead hero")}));

  // CAST: denzel+washington; denzel+gangster; gangster alone; plain.
  // Columns: id, mid, pid, chid, rid, note.
  check(db.Insert("CAST",
                  {Value(int64_t{1}), Value(int64_t{1}), Value(int64_t{1}),
                   Value(int64_t{1}), Value(int64_t{2}),
                   Value("denzel washington lead credit")}));
  check(db.Insert("CAST",
                  {Value(int64_t{2}), Value(int64_t{1}), Value(int64_t{2}),
                   Value(int64_t{2}), Value(int64_t{2}),
                   Value("denzel stunt double gangster sequence")}));
  check(db.Insert("CAST",
                  {Value(int64_t{3}), Value(int64_t{2}), Value(int64_t{3}),
                   Value(int64_t{3}), Value(int64_t{1}),
                   Value("gangster crowd extra")}));
  check(db.Insert("CAST",
                  {Value(int64_t{4}), Value(int64_t{3}), Value(int64_t{4}),
                   Value(int64_t{3}), Value(int64_t{2}),
                   Value("uncredited cameo in the finale")}));
  return db;
}

}  // namespace matcn::testing
