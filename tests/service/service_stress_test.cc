// Multi-producer stress over QueryService: many client threads submit
// overlapping queries against the in-memory TermIndex while the cache is
// kept small enough to churn (concurrent Get/Put/evict on every shard).
// The assertions are about counter consistency; the real payoff is a
// clean run under -DMATCN_SANITIZE=thread.

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/matcngen.h"
#include "fixtures/imdb_fixture.h"
#include "graph/schema_graph.h"
#include "service/query_service.h"

namespace matcn {
namespace {

class ServiceStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = testing::MakeMiniImdb();
    schema_graph_ = SchemaGraph::Build(db_.schema());
    index_ = TermIndex::Build(db_);
  }

  std::vector<KeywordQuery> OverlappingQueries() {
    // Shared keyword pool so concurrent clients collide on cache keys.
    const std::vector<std::string> texts = {
        "denzel",          "gangster",        "denzel gangster",
        "washington",      "denzel washington", "gangster washington",
        "lisbon",          "economy",         "lisbon economy",
        "denzel economy",
    };
    std::vector<KeywordQuery> queries;
    for (const std::string& text : texts) {
      auto query = KeywordQuery::Parse(text);
      EXPECT_TRUE(query.ok()) << text;
      queries.push_back(*query);
    }
    return queries;
  }

  Database db_;
  SchemaGraph schema_graph_;
  TermIndex index_;
};

TEST_F(ServiceStressTest, ManyProducersCountersStayConsistent) {
  QueryServiceOptions options;
  options.num_threads = 4;
  options.max_queue = 1024;  // large enough that nothing is rejected
  // Small cache with few shards: concurrent hits, inserts, and evictions
  // all race on the same handful of mutexes.
  options.cache_bytes = 16 * 1024;
  options.cache_shards = 2;
  QueryService service(&schema_graph_, &index_, options);

  const std::vector<KeywordQuery> queries = OverlappingQueries();
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 50;

  std::atomic<uint64_t> ok{0}, failed{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        Result<QueryResponse> response =
            service.Query(queries[(p * 13 + i) % queries.size()]);
        if (response.ok()) {
          ok.fetch_add(1);
          // Touch the shared result so TSAN sees cross-thread reads of
          // cached GenerationResult objects.
          EXPECT_GE(response->result->cns.size(), 0u);
        } else {
          failed.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();

  constexpr uint64_t kTotal = uint64_t{kProducers} * kPerProducer;
  EXPECT_EQ(ok.load() + failed.load(), kTotal);
  EXPECT_EQ(failed.load(), 0u) << "queue is oversized; nothing should fail";

  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.submitted, kTotal);
  EXPECT_EQ(stats.completed, kTotal);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.timed_out, 0u);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, kTotal);
  EXPECT_GT(stats.cache_hits, 0u) << "overlapping workload must hit";
  EXPECT_LE(stats.cache_bytes, options.cache_bytes);
}

TEST_F(ServiceStressTest, ProducersRacingAdmissionControl) {
  QueryServiceOptions options;
  options.num_threads = 2;
  options.max_queue = 2;     // deliberately tiny: force rejections
  options.cache_bytes = 0;   // every request takes the slow path
  QueryService service(&schema_graph_, &index_, options);

  const std::vector<KeywordQuery> queries = OverlappingQueries();
  constexpr int kProducers = 6;
  constexpr int kPerProducer = 30;

  std::atomic<uint64_t> ok{0}, rejected{0}, other{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        Result<QueryResponse> response =
            service.Query(queries[(p + i) % queries.size()]);
        if (response.ok()) {
          ok.fetch_add(1);
        } else if (response.status().code() ==
                   StatusCode::kResourceExhausted) {
          rejected.fetch_add(1);
        } else {
          other.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();

  constexpr uint64_t kTotal = uint64_t{kProducers} * kPerProducer;
  EXPECT_EQ(ok.load() + rejected.load() + other.load(), kTotal);
  EXPECT_EQ(other.load(), 0u);
  EXPECT_GT(ok.load(), 0u);

  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.submitted, kTotal);
  EXPECT_EQ(stats.completed, ok.load());
  EXPECT_EQ(stats.rejected, rejected.load());
}

TEST_F(ServiceStressTest, ConcurrentShutdownDeliversEveryAdmittedFuture) {
  std::vector<std::future<Result<QueryResponse>>> futures;
  {
    QueryServiceOptions options;
    options.num_threads = 2;
    options.max_queue = 256;
    QueryService service(&schema_graph_, &index_, options);
    const std::vector<KeywordQuery> queries = OverlappingQueries();
    for (int i = 0; i < 40; ++i) {
      futures.push_back(service.Submit(queries[i % queries.size()]));
    }
    // Service destructor runs here with work still in flight.
  }
  for (auto& f : futures) {
    Result<QueryResponse> r = f.get();  // must not hang or drop a promise
    EXPECT_TRUE(r.ok() ||
                r.status().code() == StatusCode::kResourceExhausted);
  }
}

}  // namespace
}  // namespace matcn
