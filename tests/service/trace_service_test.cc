// End-to-end tracing through the service: span-tree correctness (right
// parents, no lost or duplicated spans) including under parallel MatchCN
// workers, deterministic head sampling, the zero-overhead untraced path,
// and the slow-query log.

#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "fixtures/imdb_fixture.h"
#include "graph/schema_graph.h"
#include "indexing/term_index.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "service/query_service.h"

namespace matcn {
namespace {

class TraceServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = testing::MakeMiniImdb();
    schema_graph_ = SchemaGraph::Build(db_.schema());
    index_ = TermIndex::Build(db_);
  }

  KeywordQuery Parse(const std::string& text) {
    auto query = KeywordQuery::Parse(text);
    EXPECT_TRUE(query.ok()) << text;
    return *query;
  }

  // Structural validity: ids unique, every parent id refers to a span in
  // the same snapshot, children start no earlier than their parents.
  static void CheckSpanTree(const obs::TraceSnapshot& snap) {
    std::set<uint32_t> ids;
    for (const obs::SpanView& s : snap.spans) {
      EXPECT_TRUE(ids.insert(s.id).second) << "duplicate span id " << s.id;
    }
    for (const obs::SpanView& s : snap.spans) {
      if (s.parent == 0) continue;
      EXPECT_TRUE(ids.count(s.parent))
          << "span '" << s.name << "' has unknown parent " << s.parent;
    }
  }

  static const obs::SpanView* Find(const obs::TraceSnapshot& snap,
                                   const std::string& name) {
    for (const obs::SpanView& s : snap.spans) {
      if (s.name == name) return &s;
    }
    return nullptr;
  }

  Database db_;
  SchemaGraph schema_graph_;
  TermIndex index_;
};

TEST_F(TraceServiceTest, UntracedQueryCarriesNoTrace) {
  QueryServiceOptions options;
  options.num_threads = 2;
  QueryService service(&schema_graph_, &index_, options);
  Result<QueryResponse> response =
      service.Query(Parse("denzel washington gangster"));
  ASSERT_TRUE(response.ok());
  // The zero-overhead contract: with no request flag, no sampling and no
  // slow-query log, the pipeline never allocates a trace.
  EXPECT_EQ(response->trace, nullptr);
  EXPECT_EQ(response->trace_root, 0u);
}

TEST_F(TraceServiceTest, TracedQueryHasExpectedSpanTree) {
  QueryServiceOptions options;
  options.num_threads = 2;
  QueryService service(&schema_graph_, &index_, options);
  QueryRequestOptions request_options;
  request_options.trace = true;
  Result<QueryResponse> response =
      service.Query(Parse("denzel washington gangster"), request_options);
  ASSERT_TRUE(response.ok());
  ASSERT_NE(response->trace, nullptr);

  const obs::TraceSnapshot snap = response->trace->Snapshot();
  CheckSpanTree(snap);

  const obs::SpanView* root = Find(snap, "request");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->parent, 0u);
  EXPECT_EQ(root->id, response->trace_root);

  for (const char* stage :
       {"cache_lookup", "admission_wait", "tsfind", "qmgen", "matchcn"}) {
    const obs::SpanView* span = Find(snap, stage);
    ASSERT_NE(span, nullptr) << stage;
    EXPECT_EQ(span->parent, root->id) << stage << " not under request";
    EXPECT_GE(span->duration_us, 0) << stage;
  }
  // The pipeline annotated its spans with result cardinalities.
  EXPECT_GT(Find(snap, "tsfind")->value, 0u);
  EXPECT_GT(Find(snap, "qmgen")->value, 0u);
  EXPECT_GT(Find(snap, "matchcn")->value, 0u);
}

TEST_F(TraceServiceTest, ParallelMatchCnWorkersNestUnderMatchcnSpan) {
  QueryServiceOptions options;
  options.num_threads = 2;
  options.gen.num_threads = 4;
  QueryService service(&schema_graph_, &index_, options);
  QueryRequestOptions request_options;
  request_options.trace = true;
  Result<QueryResponse> response =
      service.Query(Parse("denzel washington gangster"), request_options);
  ASSERT_TRUE(response.ok());
  ASSERT_NE(response->trace, nullptr);

  // Straggling helper workers may close their spans (publishing their
  // solved-count values) a moment after the response is delivered — the
  // trace is a shared_ptr for exactly this reason. Poll until the
  // per-worker tallies partition the match set.
  ASSERT_TRUE(response->result != nullptr);
  const uint64_t total_matches = response->result->matches.size();
  obs::TraceSnapshot snap;
  uint64_t solved = 0;
  for (int attempt = 0; attempt < 2000; ++attempt) {
    snap = response->trace->Snapshot();
    solved = 0;
    for (const obs::SpanView& s : snap.spans) {
      if (s.name == "worker") solved += s.value;
    }
    if (solved == total_matches) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  CheckSpanTree(snap);
  const obs::SpanView* matchcn = Find(snap, "matchcn");
  ASSERT_NE(matchcn, nullptr);

  size_t workers = 0;
  for (const obs::SpanView& s : snap.spans) {
    if (s.name != "worker") continue;
    ++workers;
    EXPECT_EQ(s.parent, matchcn->id) << "worker span not under matchcn";
  }
  ASSERT_GE(workers, 1u);
  EXPECT_LE(workers, 4u);
  // Every match is solved by exactly one worker: the per-worker tallies
  // partition the match set (no lost, no duplicated work).
  EXPECT_EQ(solved, total_matches);
}

TEST_F(TraceServiceTest, CacheHitTraceSkipsPipelineSpans) {
  QueryServiceOptions options;
  options.num_threads = 2;
  QueryService service(&schema_graph_, &index_, options);
  QueryRequestOptions request_options;
  request_options.trace = true;
  ASSERT_TRUE(
      service.Query(Parse("denzel gangster"), request_options).ok());
  Result<QueryResponse> hit =
      service.Query(Parse("denzel gangster"), request_options);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->cache_hit);
  ASSERT_NE(hit->trace, nullptr);
  const obs::TraceSnapshot snap = hit->trace->Snapshot();
  CheckSpanTree(snap);
  const obs::SpanView* lookup = Find(snap, "cache_lookup");
  ASSERT_NE(lookup, nullptr);
  EXPECT_EQ(lookup->value, 1u);  // hit flag
  EXPECT_EQ(Find(snap, "matchcn"), nullptr);
  EXPECT_EQ(Find(snap, "tsfind"), nullptr);
}

TEST_F(TraceServiceTest, SamplingIsDeterministicFromSeed) {
  constexpr double kRate = 0.5;
  constexpr uint64_t kSeed = 42;
  QueryServiceOptions options;
  options.num_threads = 1;
  options.cache_bytes = 0;  // keep every execution on the same path
  options.trace_sample_rate = kRate;
  options.trace_sample_seed = kSeed;
  QueryService service(&schema_graph_, &index_, options);

  for (uint64_t i = 0; i < 32; ++i) {
    Result<QueryResponse> response = service.Query(Parse("denzel gangster"));
    ASSERT_TRUE(response.ok());
    const bool expect_traced = obs::TraceSampler::Decide(kRate, kSeed, i);
    EXPECT_EQ(response->trace != nullptr, expect_traced)
        << "submission " << i;
  }
}

TEST_F(TraceServiceTest, ExplicitTraceWinsOverSamplerSayingNo) {
  QueryServiceOptions options;
  options.num_threads = 1;
  options.trace_sample_rate = 0.0;  // sampler never fires
  QueryService service(&schema_graph_, &index_, options);
  QueryRequestOptions request_options;
  request_options.trace = true;
  Result<QueryResponse> response =
      service.Query(Parse("denzel gangster"), request_options);
  ASSERT_TRUE(response.ok());
  EXPECT_NE(response->trace, nullptr);
}

TEST_F(TraceServiceTest, DeadlineExpiryLeavesTracingConsistent) {
  QueryServiceOptions options;
  options.num_threads = 1;
  options.cache_bytes = 0;
  options.pre_execute_hook = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  };
  QueryService service(&schema_graph_, &index_, options);
  QueryRequestOptions request_options;
  request_options.trace = true;

  // Expires while waiting/executing: the response is a typed error (no
  // trace attached), and the trace machinery must not corrupt state.
  Result<QueryResponse> expired =
      service
          .Submit(Parse("denzel washington gangster"),
                  Deadline::AfterMillis(1), request_options)
          .get();
  EXPECT_FALSE(expired.ok());

  // A following traced query still produces a clean span tree.
  Result<QueryResponse> next =
      service
          .Submit(Parse("denzel gangster"), Deadline::AfterMillis(5'000),
                  request_options)
          .get();
  ASSERT_TRUE(next.ok());
  ASSERT_NE(next->trace, nullptr);
  CheckSpanTree(next->trace->Snapshot());
  EXPECT_NE(Find(next->trace->Snapshot(), "request"), nullptr);
}

TEST_F(TraceServiceTest, SlowQueryLogEmitsSpanBreakdown) {
  std::vector<std::string> lines;
  obs::Logger::Global().SetSinkForTest(
      [&lines](obs::LogLevel level, const std::string& line) {
        if (level == obs::LogLevel::kWarn) lines.push_back(line);
      });

  QueryServiceOptions options;
  options.num_threads = 1;
  options.slow_query_ms = 1;
  options.pre_execute_hook = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  };
  QueryService service(&schema_graph_, &index_, options);
  Result<QueryResponse> response = service.Query(Parse("denzel gangster"));
  obs::Logger::Global().SetSinkForTest(nullptr);

  ASSERT_TRUE(response.ok());
  // slow_query_ms arms tracing even without request/sampler flags.
  EXPECT_NE(response->trace, nullptr);
  ASSERT_FALSE(lines.empty());
  const std::string& line = lines.back();
  EXPECT_NE(line.find("slow query"), std::string::npos);
  EXPECT_NE(line.find("latency_ms"), std::string::npos);
  EXPECT_NE(line.find("spans"), std::string::npos);
  EXPECT_NE(line.find("request="), std::string::npos);
}

}  // namespace
}  // namespace matcn
