#include "service/sharded_lru_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace matcn {
namespace {

using IntCache = ShardedLruCache<int>;

std::shared_ptr<const int> Val(int v) { return std::make_shared<int>(v); }

TEST(ShardedLruCacheTest, GetMissThenHit) {
  IntCache cache(/*capacity_bytes=*/4096, /*num_shards=*/1);
  EXPECT_EQ(cache.Get("a"), nullptr);
  cache.Put("a", Val(1), 10);
  std::shared_ptr<const int> hit = cache.Get("a");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 1);
  CacheCounters c = cache.Counters();
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.insertions, 1u);
  EXPECT_EQ(c.entries, 1u);
}

TEST(ShardedLruCacheTest, PutReplacesExistingKey) {
  IntCache cache(4096, 1);
  cache.Put("a", Val(1), 10);
  cache.Put("a", Val(2), 10);
  std::shared_ptr<const int> hit = cache.Get("a");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 2);
  EXPECT_EQ(cache.Counters().entries, 1u);
}

TEST(ShardedLruCacheTest, EvictsLeastRecentlyUsedWhenOverBudget) {
  // One shard; per-entry cost = cost_bytes + key(1) + 64 overhead = 165.
  // Capacity 400 holds two entries; the third insert evicts the LRU tail.
  IntCache cache(400, 1);
  cache.Put("a", Val(1), 100);
  cache.Put("b", Val(2), 100);
  ASSERT_NE(cache.Get("a"), nullptr);  // touch: "b" is now the LRU entry
  cache.Put("c", Val(3), 100);
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.Get("b"), nullptr) << "LRU entry should have been evicted";
  EXPECT_NE(cache.Get("c"), nullptr);
  EXPECT_EQ(cache.Counters().evictions, 1u);
}

TEST(ShardedLruCacheTest, OversizedEntryIsNotCached) {
  IntCache cache(256, 1);
  cache.Put("huge", Val(1), 10'000);
  EXPECT_EQ(cache.Get("huge"), nullptr);
  EXPECT_EQ(cache.Counters().insertions, 0u);
}

TEST(ShardedLruCacheTest, ZeroCapacityDisablesCaching) {
  IntCache cache(0, 4);
  cache.Put("a", Val(1), 1);
  EXPECT_EQ(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.Counters().entries, 0u);
}

TEST(ShardedLruCacheTest, ShardCountRoundsUpToPowerOfTwo) {
  EXPECT_EQ(IntCache(1024, 1).num_shards(), 1u);
  EXPECT_EQ(IntCache(1024, 3).num_shards(), 4u);
  EXPECT_EQ(IntCache(1024, 8).num_shards(), 8u);
  EXPECT_EQ(IntCache(1024, 9).num_shards(), 16u);
}

TEST(ShardedLruCacheTest, BudgetIsPerShardSoOneHotShardCannotStarveAll) {
  // 4 shards, 200 bytes each. Keys land on shards by hash; inserting many
  // distinct keys must never push total cost above capacity.
  IntCache cache(800, 4);
  for (int i = 0; i < 100; ++i) {
    cache.Put("key" + std::to_string(i), Val(i), 50);
  }
  const CacheCounters c = cache.Counters();
  EXPECT_LE(c.cost_bytes, cache.capacity_bytes());
  EXPECT_GT(c.evictions, 0u);
}

TEST(ShardedLruCacheTest, ValueSurvivesEviction) {
  IntCache cache(300, 1);
  cache.Put("a", Val(7), 100);
  std::shared_ptr<const int> pinned = cache.Get("a");
  cache.Put("b", Val(8), 100);
  cache.Put("c", Val(9), 100);  // evicts "a"
  EXPECT_EQ(cache.Get("a"), nullptr);
  ASSERT_NE(pinned, nullptr);
  EXPECT_EQ(*pinned, 7) << "shared_ptr handed out must outlive eviction";
}

TEST(ShardedLruCacheTest, ClearEmptiesEveryShard) {
  IntCache cache(1 << 20, 4);
  for (int i = 0; i < 32; ++i) {
    cache.Put("k" + std::to_string(i), Val(i), 10);
  }
  cache.Clear();
  const CacheCounters c = cache.Counters();
  EXPECT_EQ(c.entries, 0u);
  EXPECT_EQ(c.cost_bytes, 0u);
  EXPECT_EQ(cache.Get("k0"), nullptr);
}

TEST(ShardedLruCacheTest, PutIfSkipsInsertionWhenValidateFails) {
  IntCache cache(4096, 1);
  EXPECT_FALSE(cache.PutIf("a", Val(1), 10, [] { return false; }));
  EXPECT_EQ(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.Counters().insertions, 0u);
  EXPECT_TRUE(cache.PutIf("a", Val(2), 10, [] { return true; }));
  std::shared_ptr<const int> hit = cache.Get("a");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 2);
}

TEST(ShardedLruCacheTest, PutIfValidateRunsUnderShardMutexVsEraseIf) {
  // The conditional-put contract: a PutIf whose validate checks an
  // invalidation sequence can never resurrect an entry past its EraseIf.
  // Hammer one key from a putter thread (validate = "seq unchanged")
  // against an invalidator thread (bump seq, then EraseIf); after every
  // round the entry must be gone.
  IntCache cache(1 << 14, 2);
  std::atomic<uint64_t> seq{0};
  for (int round = 0; round < 200; ++round) {
    const uint64_t observed = seq.load(std::memory_order_acquire);
    std::thread putter([&] {
      cache.PutIf("key", Val(round), 32, [&] {
        return seq.load(std::memory_order_acquire) == observed;
      });
    });
    std::thread invalidator([&] {
      seq.fetch_add(1, std::memory_order_acq_rel);
      cache.EraseIf([](const std::string& key) { return key == "key"; });
    });
    putter.join();
    invalidator.join();
    EXPECT_EQ(cache.Get("key"), nullptr)
        << "stale entry resurrected after invalidation, round " << round;
  }
}

TEST(ShardedLruCacheTest, ConcurrentMixedOperationsStayConsistent) {
  IntCache cache(1 << 14, 8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 500; ++i) {
        const std::string key = "k" + std::to_string((t * 7 + i) % 40);
        if (std::shared_ptr<const int> hit = cache.Get(key)) {
          EXPECT_EQ(*hit % 40, (t * 7 + i) % 40 % 40);
        } else {
          cache.Put(key, Val((t * 7 + i) % 40), 64);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const CacheCounters c = cache.Counters();
  EXPECT_LE(c.cost_bytes, cache.capacity_bytes());
  EXPECT_EQ(c.hits + c.misses, 4u * 500u);
}

}  // namespace
}  // namespace matcn
