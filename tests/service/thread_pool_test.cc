#include "service/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>

namespace matcn {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2, 64);
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(pool.TrySubmit([&ran] { ran.fetch_add(1); }));
    }
  }  // destructor drains
  EXPECT_EQ(ran.load(), 20);
}

TEST(ThreadPoolTest, RejectsWhenQueueFull) {
  ThreadPool pool(1, 2);
  // Block the single worker so queued tasks cannot drain.
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::promise<void> started;
  ASSERT_TRUE(pool.TrySubmit([gate, &started] {
    started.set_value();
    gate.wait();
  }));
  started.get_future().wait();  // worker is now busy, queue is empty

  EXPECT_TRUE(pool.TrySubmit([] {}));   // queue slot 1
  EXPECT_TRUE(pool.TrySubmit([] {}));   // queue slot 2
  EXPECT_FALSE(pool.TrySubmit([] {}))
      << "third waiting task must be rejected by admission control";
  EXPECT_EQ(pool.QueueDepth(), 2u);
  release.set_value();
}

TEST(ThreadPoolTest, DrainsAdmittedTasksOnShutdown) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1, 64);
    std::promise<void> release;
    std::shared_future<void> gate = release.get_future().share();
    ASSERT_TRUE(pool.TrySubmit([gate] { gate.wait(); }));
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(pool.TrySubmit([&ran] { ran.fetch_add(1); }));
    }
    release.set_value();
  }
  EXPECT_EQ(ran.load(), 10) << "destructor must run every admitted task";
}

TEST(ThreadPoolTest, ClampsToAtLeastOneWorker) {
  ThreadPool pool(0, 4);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::promise<void> done;
  ASSERT_TRUE(pool.TrySubmit([&done] { done.set_value(); }));
  done.get_future().wait();
}

}  // namespace
}  // namespace matcn
