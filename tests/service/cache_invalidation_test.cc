// Selective result-cache invalidation: an insert touching term X must
// evict exactly the cached entries whose normalized termset contains X —
// disjoint entries survive and keep hitting.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fixtures/imdb_fixture.h"
#include "graph/schema_graph.h"
#include "indexing/term_index.h"
#include "liveindex/concurrent_term_index.h"
#include "liveindex/index_writer.h"
#include "service/query_service.h"

namespace matcn {
namespace {

class CacheInvalidationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = testing::MakeMiniImdb();
    schema_graph_ = SchemaGraph::Build(db_.schema());
    live_index_ = std::make_unique<liveindex::ConcurrentTermIndex>(
        TermIndex::Build(db_));
    liveindex::IndexWriterOptions writer_options;
    writer_options.background_compaction = false;
    writer_ = std::make_unique<liveindex::IndexWriter>(
        &db_, live_index_.get(), writer_options);
  }

  std::unique_ptr<QueryService> MakeService() {
    QueryServiceOptions options;
    options.num_threads = 1;
    auto service = std::make_unique<QueryService>(
        &schema_graph_, live_index_.get(), options);
    service->ConnectWriter(writer_.get());
    return service;
  }

  KeywordQuery Parse(const std::string& text) {
    auto query = KeywordQuery::Parse(text);
    EXPECT_TRUE(query.ok()) << text;
    return *query;
  }

  Result<liveindex::IndexWriter::InsertOutcome> InsertPerson(
      const std::string& name) {
    static int64_t next_id = 100;
    return writer_->Insert(*db_.schema().RelationIdByName("PER"),
                           {Value(next_id++), Value(name)});
  }

  Database db_;
  SchemaGraph schema_graph_;
  std::unique_ptr<liveindex::ConcurrentTermIndex> live_index_;
  std::unique_ptr<liveindex::IndexWriter> writer_;
};

TEST_F(CacheInvalidationTest, InsertEvictsOnlyOverlappingEntries) {
  std::unique_ptr<QueryService> service = MakeService();
  // Warm two disjoint cache entries.
  ASSERT_TRUE(service->Query(Parse("denzel")).ok());
  ASSERT_TRUE(service->Query(Parse("gangster")).ok());
  ASSERT_TRUE(service->Query(Parse("denzel")).value().cache_hit);
  ASSERT_TRUE(service->Query(Parse("gangster")).value().cache_hit);

  // Insert touches "denzel" (and "whitaker") but not "gangster".
  ASSERT_TRUE(InsertPerson("Denzel Whitaker").ok());

  // The overlapping entry was evicted: the next query recomputes...
  Result<QueryResponse> denzel = service->Query(Parse("denzel"));
  ASSERT_TRUE(denzel.ok());
  EXPECT_FALSE(denzel->cache_hit);
  // ...and reflects the new tuple (df over the live snapshot).
  EXPECT_GE(denzel->index_version, 1u);

  // The disjoint entry survived and still hits.
  Result<QueryResponse> gangster = service->Query(Parse("gangster"));
  ASSERT_TRUE(gangster.ok());
  EXPECT_TRUE(gangster->cache_hit);

  const ServiceStatsSnapshot stats = service->Stats();
  EXPECT_EQ(stats.cache_invalidations, 1u);
}

TEST_F(CacheInvalidationTest, MultiKeywordEntryEvictedOnAnyMemberTerm) {
  std::unique_ptr<QueryService> service = MakeService();
  ASSERT_TRUE(service->Query(Parse("denzel gangster")).ok());
  ASSERT_TRUE(service->Query(Parse("washington")).ok());

  ASSERT_TRUE(InsertPerson("Gangster Gabriel").ok());

  // {denzel, gangster} contains "gangster" → evicted.
  Result<QueryResponse> both = service->Query(Parse("denzel gangster"));
  ASSERT_TRUE(both.ok());
  EXPECT_FALSE(both->cache_hit);
  // {washington} is disjoint from {gangster, gabriel} → survives.
  Result<QueryResponse> washington = service->Query(Parse("washington"));
  ASSERT_TRUE(washington.ok());
  EXPECT_TRUE(washington->cache_hit);
}

TEST_F(CacheInvalidationTest, SubstringTermsDoNotFalselyEvict) {
  std::unique_ptr<QueryService> service = MakeService();
  // "gang" is a prefix of "gangster": inserting a tuple with "gang" must
  // not evict the "gangster" entry (whole-keyword matching).
  ASSERT_TRUE(service->Query(Parse("gangster")).ok());
  ASSERT_TRUE(InsertPerson("Gang Leader").ok());
  Result<QueryResponse> response = service->Query(Parse("gangster"));
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->cache_hit);
}

TEST_F(CacheInvalidationTest, CacheKeyTouchesTermsMatchesWholeKeywords) {
  const std::string key = std::string("denzel") + '\x1f' + "gangster" +
                          "|t=5;m=0;q=0";
  EXPECT_TRUE(QueryService::CacheKeyTouchesTerms(key, {"denzel"}));
  EXPECT_TRUE(QueryService::CacheKeyTouchesTerms(key, {"gangster"}));
  EXPECT_TRUE(
      QueryService::CacheKeyTouchesTerms(key, {"other", "gangster"}));
  EXPECT_FALSE(QueryService::CacheKeyTouchesTerms(key, {"gang"}));
  EXPECT_FALSE(QueryService::CacheKeyTouchesTerms(key, {"ster"}));
  EXPECT_FALSE(QueryService::CacheKeyTouchesTerms(key, {"denz"}));
  EXPECT_FALSE(QueryService::CacheKeyTouchesTerms(key, {"washington"}));
  EXPECT_FALSE(QueryService::CacheKeyTouchesTerms(key, {}));
}

TEST_F(CacheInvalidationTest, LiveBackendReportsIndexVersionAndStats) {
  std::unique_ptr<QueryService> service = MakeService();
  Result<QueryResponse> before = service->Query(Parse("denzel"));
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->index_version, 0u);

  ASSERT_TRUE(InsertPerson("Quincy Jones").ok());
  Result<QueryResponse> after = service->Query(Parse("quincy"));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->index_version, 1u);
  EXPECT_FALSE(after->result->tuple_sets.empty());

  const ServiceStatsSnapshot stats = service->Stats();
  EXPECT_EQ(stats.index_version, 1u);
}

TEST_F(CacheInvalidationTest, DirectInvalidateTermsReportsEvictionCount) {
  std::unique_ptr<QueryService> service = MakeService();
  ASSERT_TRUE(service->Query(Parse("denzel")).ok());
  ASSERT_TRUE(service->Query(Parse("gangster")).ok());
  EXPECT_EQ(service->InvalidateTerms({"denzel"}), 1u);
  EXPECT_EQ(service->InvalidateTerms({"denzel"}), 0u);  // already gone
  EXPECT_EQ(service->InvalidateTerms({"nothing"}), 0u);
  EXPECT_EQ(service->InvalidateTerms({}), 0u);
}

}  // namespace
}  // namespace matcn
