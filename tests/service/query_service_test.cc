// QueryService behavior: answers match the direct pipeline, the cache
// serves repeats, admission control rejects when the queue is full, and
// normalization folds keyword permutations / stopwords into one signature.

#include "service/query_service.h"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "core/matcngen.h"
#include "fixtures/imdb_fixture.h"
#include "graph/schema_graph.h"

namespace matcn {
namespace {

class QueryServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = testing::MakeMiniImdb();
    schema_graph_ = SchemaGraph::Build(db_.schema());
    index_ = TermIndex::Build(db_);
  }

  KeywordQuery Parse(const std::string& text) {
    auto query = KeywordQuery::Parse(text);
    EXPECT_TRUE(query.ok()) << text;
    return *query;
  }

  Database db_;
  SchemaGraph schema_graph_;
  TermIndex index_;
};

TEST_F(QueryServiceTest, AnswersMatchDirectPipeline) {
  QueryServiceOptions options;
  options.num_threads = 2;
  QueryService service(&schema_graph_, &index_, options);

  const KeywordQuery query = Parse("denzel washington gangster");
  Result<QueryResponse> response = service.Query(query);
  ASSERT_TRUE(response.ok());

  // The service executes the normalized (sorted) query; compare against a
  // direct run of the same normalization.
  MatCnGen direct(&schema_graph_);
  GenerationResult expected = direct.Generate(response->query, index_);
  ASSERT_EQ(response->result->cns.size(), expected.cns.size());
  for (size_t i = 0; i < expected.cns.size(); ++i) {
    EXPECT_EQ(response->result->cns[i].CanonicalForm(),
              expected.cns[i].CanonicalForm());
  }
  EXPECT_EQ(response->result->matches, expected.matches);
}

TEST_F(QueryServiceTest, SecondIdenticalQueryHitsCache) {
  QueryServiceOptions options;
  options.num_threads = 1;
  QueryService service(&schema_graph_, &index_, options);

  const KeywordQuery query = Parse("denzel gangster");
  Result<QueryResponse> first = service.Query(query);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->cache_hit);

  Result<QueryResponse> second = service.Query(query);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cache_hit);
  EXPECT_EQ(second->result.get(), first->result.get())
      << "cache hit must share the stored result object";

  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST_F(QueryServiceTest, KeywordPermutationsShareOneCacheEntry) {
  QueryServiceOptions options;
  options.num_threads = 1;
  QueryService service(&schema_graph_, &index_, options);

  ASSERT_TRUE(service.Query(Parse("denzel gangster")).ok());
  Result<QueryResponse> permuted = service.Query(Parse("gangster denzel"));
  ASSERT_TRUE(permuted.ok());
  EXPECT_TRUE(permuted->cache_hit)
      << "normalization must fold keyword order into one signature";
}

TEST_F(QueryServiceTest, StopwordsAreDroppedFromTheSignature) {
  QueryServiceOptions options;
  options.num_threads = 1;
  QueryService service(&schema_graph_, &index_, options);

  ASSERT_TRUE(service.Query(Parse("gangster")).ok());
  Result<QueryResponse> with_stopword = service.Query(Parse("the gangster"));
  ASSERT_TRUE(with_stopword.ok());
  EXPECT_TRUE(with_stopword->cache_hit)
      << "a stopword keyword cannot match against the default index, so it "
         "must not fragment the cache";
  EXPECT_EQ(with_stopword->query.size(), 1u);
  EXPECT_EQ(with_stopword->query.keyword(0), "gangster");
}

TEST_F(QueryServiceTest, AllStopwordQueryKeepsItsKeywords) {
  QueryServiceOptions options;
  options.num_threads = 1;
  QueryService service(&schema_graph_, &index_, options);
  Result<QueryResponse> response = service.Query(Parse("the of"));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->query.size(), 2u);
  EXPECT_TRUE(response->result->cns.empty());
}

TEST_F(QueryServiceTest, DisabledCacheNeverHits) {
  QueryServiceOptions options;
  options.num_threads = 1;
  options.cache_bytes = 0;
  QueryService service(&schema_graph_, &index_, options);
  const KeywordQuery query = Parse("denzel");
  ASSERT_TRUE(service.Query(query).ok());
  Result<QueryResponse> second = service.Query(query);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->cache_hit);
  EXPECT_EQ(service.Stats().cache_hits, 0u);
}

TEST_F(QueryServiceTest, AdmissionControlRejectsWhenQueueFull) {
  QueryServiceOptions options;
  options.num_threads = 1;
  options.max_queue = 1;
  options.cache_bytes = 0;  // force every submission through the queue
  // Hold the worker until released so the queue backs up deterministically.
  auto gate = std::make_shared<std::promise<void>>();
  std::shared_future<void> release = gate->get_future().share();
  options.pre_execute_hook = [release] { release.wait(); };
  QueryService service(&schema_graph_, &index_, options);

  const KeywordQuery query = Parse("denzel");
  std::vector<std::future<Result<QueryResponse>>> futures;
  // The first submission ends up on the (blocked) worker or in the queue;
  // the queue then holds at most one more. Of three rapid submissions at
  // least one must be rejected — exactly how many depends on whether the
  // worker had already popped the first task.
  for (int i = 0; i < 3; ++i) futures.push_back(service.Submit(query));
  gate->set_value();

  int ok = 0, rejected = 0;
  for (auto& f : futures) {
    Result<QueryResponse> r = f.get();
    if (r.ok()) {
      ++ok;
    } else {
      EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
      ++rejected;
    }
  }
  EXPECT_EQ(ok + rejected, 3);
  EXPECT_GE(rejected, 1);
  EXPECT_GE(ok, 1);
  EXPECT_EQ(service.Stats().rejected, static_cast<uint64_t>(rejected));
}

TEST_F(QueryServiceTest, TruncatedGenerationIsReportedDegradedAndUncached) {
  QueryServiceOptions options;
  options.num_threads = 1;
  options.gen.max_matches = 1;  // force truncation on multi-match queries
  QueryService service(&schema_graph_, &index_, options);

  const KeywordQuery query = Parse("denzel washington gangster");
  Result<QueryResponse> response = service.Query(query);
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response->result->stats.truncated);
  EXPECT_TRUE(response->degraded);
  EXPECT_NE(response->degraded_reason.find("truncated"), std::string::npos);

  Result<QueryResponse> again = service.Query(query);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->cache_hit) << "degraded results must not be cached";
  EXPECT_EQ(service.Stats().degraded, 2u);
}

TEST_F(QueryServiceTest, StatsCountersAddUp) {
  QueryServiceOptions options;
  options.num_threads = 2;
  QueryService service(&schema_graph_, &index_, options);
  const std::vector<std::string> texts = {"denzel", "gangster", "denzel",
                                          "washington", "gangster"};
  for (const std::string& text : texts) {
    ASSERT_TRUE(service.Query(Parse(text)).ok());
  }
  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.submitted, texts.size());
  EXPECT_EQ(stats.completed, texts.size());
  EXPECT_EQ(stats.cache_hits, 2u);
  EXPECT_EQ(stats.cache_misses, 3u);
  EXPECT_EQ(stats.rejected + stats.timed_out + stats.failed, 0u);
  EXPECT_GE(stats.max_ms, 0.0);
}

TEST_F(QueryServiceTest, CacheKeyIncludesGenerationOptions) {
  const KeywordQuery query = Parse("denzel gangster");
  MatCnGenOptions a, b;
  b.t_max = 3;
  EXPECT_NE(QueryService::CacheKey(query, a), QueryService::CacheKey(query, b));
  MatCnGenOptions c = a;
  c.num_threads = 8;  // must NOT change the key: output is identical
  EXPECT_EQ(QueryService::CacheKey(query, a), QueryService::CacheKey(query, c));
}

}  // namespace
}  // namespace matcn
