// Deadline/CancelToken semantics plus their cooperative hooks in the
// generation pipeline and the service's expired-on-arrival fast path.

#include "common/deadline.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/matcngen.h"
#include "fixtures/imdb_fixture.h"
#include "graph/schema_graph.h"
#include "service/query_service.h"

namespace matcn {
namespace {

TEST(DeadlineTest, DefaultIsInfinite) {
  Deadline d;
  EXPECT_TRUE(d.IsInfinite());
  EXPECT_FALSE(d.Expired());
  EXPECT_GT(d.RemainingMillis(), int64_t{1} << 40);
}

TEST(DeadlineTest, NonPositiveBudgetIsAlreadyExpired) {
  EXPECT_TRUE(Deadline::AfterMillis(0).Expired());
  EXPECT_TRUE(Deadline::AfterMillis(-5).Expired());
}

TEST(DeadlineTest, FutureDeadlineNotYetExpired) {
  Deadline d = Deadline::AfterMillis(60'000);
  EXPECT_FALSE(d.IsInfinite());
  EXPECT_FALSE(d.Expired());
  EXPECT_GT(d.RemainingMillis(), 59'000);
  EXPECT_LE(d.RemainingMillis(), 60'000);
}

TEST(CancelTokenTest, CancelFlagFiresWithoutDeadline) {
  CancelToken token;
  EXPECT_FALSE(token.Expired());
  token.Cancel();
  EXPECT_TRUE(token.CancelRequested());
  EXPECT_TRUE(token.Expired());
}

TEST(CancelTokenTest, ExpiredDeadlineFiresWithoutCancel) {
  CancelToken token(Deadline::AfterMillis(0));
  EXPECT_FALSE(token.CancelRequested());
  EXPECT_TRUE(token.Expired());
}

TEST(PipelineCancelTest, ExpiredTokenInterruptsGeneration) {
  Database db = testing::MakeMiniImdb();
  SchemaGraph schema_graph = SchemaGraph::Build(db.schema());
  TermIndex index = TermIndex::Build(db);
  auto query = KeywordQuery::Parse("denzel washington gangster");
  ASSERT_TRUE(query.ok());

  CancelToken token(Deadline::AfterMillis(0));
  MatCnGenOptions options;
  options.cancel = &token;
  MatCnGen generator(&schema_graph, options);
  GenerationResult result = generator.Generate(*query, index);
  EXPECT_TRUE(result.stats.interrupted);
  EXPECT_TRUE(result.cns.empty())
      << "already-expired token must stop the pipeline at the first stage "
         "boundary";
}

TEST(PipelineCancelTest, MidRunCancelKeepsPartialResultDeterministic) {
  Database db = testing::MakeMiniImdb();
  SchemaGraph schema_graph = SchemaGraph::Build(db.schema());
  TermIndex index = TermIndex::Build(db);
  auto query = KeywordQuery::Parse("denzel washington gangster");
  ASSERT_TRUE(query.ok());

  // Uncancelled run for reference.
  MatCnGen plain(&schema_graph);
  GenerationResult full = plain.Generate(*query, index);

  // A token cancelled after QMGen: matches are produced, CNs are not.
  CancelToken token;
  MatCnGenOptions options;
  options.cancel = &token;
  MatCnGen generator(&schema_graph, options);
  std::vector<TupleSet> tuple_sets = full.tuple_sets;
  GenerationResult partial;
  {
    // Cancel before the CN stage by cancelling now: QMGen checks at the
    // stage boundary after producing matches.
    token.Cancel();
    partial = generator.GenerateFromTupleSets(*query, std::move(tuple_sets),
                                              0.0);
  }
  EXPECT_TRUE(partial.stats.interrupted);
  EXPECT_LE(partial.cns.size(), full.cns.size());
}

TEST(ServiceDeadlineTest, ExpiredDeadlineReturnsTimeoutWithoutPipeline) {
  Database db = testing::MakeMiniImdb();
  SchemaGraph schema_graph = SchemaGraph::Build(db.schema());
  TermIndex index = TermIndex::Build(db);
  auto query = KeywordQuery::Parse("denzel");
  ASSERT_TRUE(query.ok());

  QueryServiceOptions options;
  options.num_threads = 1;
  QueryService service(&schema_graph, &index, options);
  Result<QueryResponse> response =
      service.Query(*query, Deadline::AfterMillis(0));
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);

  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.timed_out, 1u);
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, 0u)
      << "expired submissions must not even touch the cache";
}

TEST(ServiceDeadlineTest, DeadlineExpiringInQueueTimesOut) {
  Database db = testing::MakeMiniImdb();
  SchemaGraph schema_graph = SchemaGraph::Build(db.schema());
  TermIndex index = TermIndex::Build(db);
  auto query = KeywordQuery::Parse("denzel");
  ASSERT_TRUE(query.ok());

  QueryServiceOptions options;
  options.num_threads = 1;
  // Every execution waits until the 5ms deadline has passed, simulating a
  // queue backed up behind slow queries.
  options.pre_execute_hook = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  };
  QueryService service(&schema_graph, &index, options);
  Result<QueryResponse> response =
      service.Query(*query, Deadline::AfterMillis(5));
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(service.Stats().timed_out, 1u);
}

TEST(ServiceDeadlineTest, GenerousDeadlineCompletesNormally) {
  Database db = testing::MakeMiniImdb();
  SchemaGraph schema_graph = SchemaGraph::Build(db.schema());
  TermIndex index = TermIndex::Build(db);
  auto query = KeywordQuery::Parse("denzel gangster");
  ASSERT_TRUE(query.ok());

  QueryServiceOptions options;
  options.num_threads = 1;
  QueryService service(&schema_graph, &index, options);
  Result<QueryResponse> response =
      service.Query(*query, Deadline::AfterMillis(60'000));
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response->degraded);
  EXPECT_FALSE(response->result->stats.interrupted);
}

}  // namespace
}  // namespace matcn
