// Structured logger: level gating (before argument evaluation), logfmt
// and JSON rendering, field quoting/escaping, and sink capture.

#include "obs/log.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace matcn::obs {
namespace {

// Captures rendered lines and restores the logger's prior state on exit,
// so tests don't leak level/format/sink changes into each other.
class LogCapture {
 public:
  LogCapture() {
    prior_level_ = Logger::Global().min_level();
    prior_json_ = Logger::Global().json();
    Logger::Global().SetSinkForTest(
        [this](LogLevel level, const std::string& line) {
          levels_.push_back(level);
          lines_.push_back(line);
        });
  }
  ~LogCapture() {
    Logger::Global().SetSinkForTest(nullptr);
    Logger::Global().set_min_level(prior_level_);
    Logger::Global().set_json(prior_json_);
  }

  const std::vector<std::string>& lines() const { return lines_; }
  const std::vector<LogLevel>& levels() const { return levels_; }

 private:
  LogLevel prior_level_;
  bool prior_json_;
  std::vector<LogLevel> levels_;
  std::vector<std::string> lines_;
};

TEST(LogLevelTest, ParseRoundTrips) {
  LogLevel level = LogLevel::kOff;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("info", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("warn", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(ParseLogLevel("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_TRUE(ParseLogLevel("off", &level));
  EXPECT_EQ(level, LogLevel::kOff);
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_EQ(level, LogLevel::kOff);  // untouched on failure
  EXPECT_EQ(LogLevelName(LogLevel::kWarn), "warn");
}

TEST(LogTest, LevelGateSuppressesBelowMinimum) {
  LogCapture capture;
  Logger::Global().set_min_level(LogLevel::kWarn);
  MATCN_LOG(Debug) << "hidden";
  MATCN_LOG(Info) << "hidden";
  MATCN_LOG(Warn) << "shown";
  MATCN_LOG(Error) << "shown";
  ASSERT_EQ(capture.lines().size(), 2u);
  EXPECT_EQ(capture.levels()[0], LogLevel::kWarn);
  EXPECT_EQ(capture.levels()[1], LogLevel::kError);
}

TEST(LogTest, DisabledLevelDoesNotEvaluateArguments) {
  LogCapture capture;
  Logger::Global().set_min_level(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return std::string("payload");
  };
  MATCN_LOG(Debug).Field("k", expensive()) << expensive();
  EXPECT_EQ(evaluations, 0);
  MATCN_LOG(Error) << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST(LogTest, LogfmtLineCarriesFieldsAndMessage) {
  LogCapture capture;
  Logger::Global().set_min_level(LogLevel::kInfo);
  Logger::Global().set_json(false);
  MATCN_LOG(Info).Field("port", 7433).Field("host", "127.0.0.1")
      << "server listening";
  ASSERT_EQ(capture.lines().size(), 1u);
  const std::string& line = capture.lines()[0];
  EXPECT_NE(line.find("level=info"), std::string::npos);
  EXPECT_NE(line.find("msg=\"server listening\""), std::string::npos);
  EXPECT_NE(line.find("port=7433"), std::string::npos);
  EXPECT_NE(line.find("host=127.0.0.1"), std::string::npos);
  EXPECT_NE(line.find("ts="), std::string::npos);
}

TEST(LogTest, LogfmtQuotesValuesWithSpacesAndEscapes) {
  LogCapture capture;
  Logger::Global().set_min_level(LogLevel::kInfo);
  Logger::Global().set_json(false);
  MATCN_LOG(Info).Field("query", "denzel gangster")
          .Field("path", "a\"b")
      << "slow query";
  ASSERT_EQ(capture.lines().size(), 1u);
  const std::string& line = capture.lines()[0];
  EXPECT_NE(line.find("query=\"denzel gangster\""), std::string::npos);
  EXPECT_NE(line.find("path=\"a\\\"b\""), std::string::npos);
}

TEST(LogTest, JsonModeRendersParseableObject) {
  LogCapture capture;
  Logger::Global().set_min_level(LogLevel::kInfo);
  Logger::Global().set_json(true);
  MATCN_LOG(Warn).Field("latency_ms", 12).Field("q", "a\"b\\c")
      << "slow query";
  ASSERT_EQ(capture.lines().size(), 1u);
  const std::string& line = capture.lines()[0];
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_NE(line.find("\"level\":\"warn\""), std::string::npos);
  EXPECT_NE(line.find("\"msg\":\"slow query\""), std::string::npos);
  EXPECT_NE(line.find("\"latency_ms\":\"12\""), std::string::npos);
  // Quote and backslash escaped per JSON rules.
  EXPECT_NE(line.find("a\\\"b\\\\c"), std::string::npos);
}

TEST(LogTest, SinkRemovalRestoresStderrPathWithoutCrashing) {
  {
    LogCapture capture;
    Logger::Global().set_min_level(LogLevel::kInfo);
    MATCN_LOG(Info) << "captured";
    EXPECT_EQ(capture.lines().size(), 1u);
  }
  // After the capture is gone this must not crash (writes to stderr);
  // keep it below the default level so test output stays clean.
  MATCN_LOG(Debug) << "uncaptured";
}

}  // namespace
}  // namespace matcn::obs
