// Prometheus exposition writer + validator: these two are each other's
// oracle (everything the writer emits must validate; hand-broken pages
// must not), plus the bucket coarsening the exporter applies to the
// 432-bucket latency histogram.

#include "obs/prometheus.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace matcn::obs {
namespace {

TEST(PrometheusWriterTest, CounterAndGaugeFormat) {
  PrometheusWriter w;
  w.Counter("matcn_queries_total", "Total queries", 42);
  w.Gauge("matcn_queue_depth", "Current queue depth", 3);
  const std::string text = w.text();
  EXPECT_NE(text.find("# HELP matcn_queries_total Total queries\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE matcn_queries_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("\nmatcn_queries_total 42\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE matcn_queue_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("\nmatcn_queue_depth 3\n"), std::string::npos);
  EXPECT_EQ(ValidateExposition(text), "");
}

TEST(PrometheusWriterTest, IntegersRenderExactlyDoublesRoundTrip) {
  PrometheusWriter w;
  w.Counter("big", "h", 1234567890123.0);
  w.Gauge("frac", "h", 0.0625);
  EXPECT_NE(w.text().find("big 1234567890123\n"), std::string::npos);
  EXPECT_NE(w.text().find("frac 0.0625\n"), std::string::npos);
}

TEST(PrometheusWriterTest, LabeledSamplesEscapeValues) {
  PrometheusWriter w;
  w.Gauge("matcn_build_info", "Build info", 1);
  w.Sample("matcn_build_info", {{"version", "a\"b\\c"}}, 1);
  EXPECT_NE(w.text().find("matcn_build_info{version=\"a\\\"b\\\\c\"} 1\n"),
            std::string::npos);
}

TEST(PrometheusWriterTest, HistogramEmitsBucketsSumCountAndInf) {
  PrometheusWriter w;
  w.Histogram("lat_seconds", "Latency",
              {{0.001, 2}, {0.01, 5}, {0.1, 9}}, /*count=*/9, /*sum=*/0.25);
  const std::string text = w.text();
  EXPECT_NE(text.find("# TYPE lat_seconds histogram\n"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"0.001\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"0.01\"} 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"+Inf\"} 9\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_sum 0.25\n"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_count 9\n"), std::string::npos);
  EXPECT_EQ(ValidateExposition(text), "");
}

TEST(ValidateTest, RejectsEmptyAndSampleless) {
  EXPECT_NE(ValidateExposition(""), "");
  EXPECT_NE(ValidateExposition("# HELP x y\n# TYPE x counter\n"), "");
}

TEST(ValidateTest, RejectsBadMetricName) {
  EXPECT_NE(ValidateExposition("# TYPE 1bad counter\n1bad 1\n"), "");
}

TEST(ValidateTest, RejectsSampleWithoutType) {
  EXPECT_NE(ValidateExposition("orphan_metric 1\n"), "");
}

TEST(ValidateTest, RejectsSplitFamily) {
  const std::string page =
      "# TYPE a counter\na 1\n"
      "# TYPE b counter\nb 1\n"
      "a 2\n";  // family `a` reopened after `b` — not contiguous
  EXPECT_NE(ValidateExposition(page), "");
}

TEST(ValidateTest, RejectsNonCumulativeHistogram) {
  const std::string page =
      "# TYPE h histogram\n"
      "h_bucket{le=\"0.1\"} 5\n"
      "h_bucket{le=\"1\"} 3\n"  // decreasing: invalid
      "h_bucket{le=\"+Inf\"} 5\n"
      "h_sum 1\n"
      "h_count 5\n";
  EXPECT_NE(ValidateExposition(page), "");
}

TEST(ValidateTest, RejectsInfCountMismatch) {
  const std::string page =
      "# TYPE h histogram\n"
      "h_bucket{le=\"0.1\"} 5\n"
      "h_bucket{le=\"+Inf\"} 5\n"
      "h_sum 1\n"
      "h_count 6\n";  // +Inf != _count
  EXPECT_NE(ValidateExposition(page), "");
}

TEST(ValidateTest, RejectsUnparseableValue) {
  EXPECT_NE(ValidateExposition("# TYPE a gauge\na one\n"), "");
}

TEST(ValidateTest, AcceptsHistogramMissingNothing) {
  const std::string page =
      "# TYPE h histogram\n"
      "h_bucket{le=\"0.1\"} 5\n"
      "h_bucket{le=\"+Inf\"} 6\n"
      "h_sum 1.5\n"
      "h_count 6\n";
  EXPECT_EQ(ValidateExposition(page), "");
}

TEST(CoarsenTest, KeepsLastEdgeAndConvertsToSeconds) {
  std::vector<std::pair<int64_t, uint64_t>> micros;
  for (int i = 1; i <= 100; ++i) {
    micros.emplace_back(i * 1000, static_cast<uint64_t>(i));
  }
  const auto out = CoarsenBucketsToSeconds(micros, 10);
  ASSERT_FALSE(out.empty());
  EXPECT_LE(out.size(), 10u);
  // The largest edge always survives thinning (100ms = 0.1s, count 100).
  EXPECT_DOUBLE_EQ(out.back().first, 0.1);
  EXPECT_EQ(out.back().second, 100u);
  // Edges ascend and counts stay cumulative.
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_GT(out[i].first, out[i - 1].first);
    EXPECT_GE(out[i].second, out[i - 1].second);
  }
}

TEST(CoarsenTest, StableLayoutAcrossScrapes) {
  std::vector<std::pair<int64_t, uint64_t>> first, second;
  for (int i = 1; i <= 432; ++i) {
    first.emplace_back(i * 10, static_cast<uint64_t>(i));
    second.emplace_back(i * 10, static_cast<uint64_t>(i * 2));  // counts grew
  }
  const auto a = CoarsenBucketsToSeconds(first, 32);
  const auto b = CoarsenBucketsToSeconds(second, 32);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].first, b[i].first) << "edge " << i << " moved";
  }
}

TEST(CoarsenTest, EmptyAndDegenerateInputs) {
  EXPECT_TRUE(CoarsenBucketsToSeconds({}, 10).empty());
  EXPECT_TRUE(CoarsenBucketsToSeconds({{1000, 1}}, 0).empty());
  const auto one = CoarsenBucketsToSeconds({{1000, 1}}, 10);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one[0].first, 0.001);
}

}  // namespace
}  // namespace matcn::obs
