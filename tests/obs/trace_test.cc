// Trace/span buffer semantics: lock-free claiming, parent links,
// overflow accounting, open-span clamping, concurrent writers, and the
// deterministic head sampler the service's trace decision rides on.

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

namespace matcn::obs {
namespace {

const SpanView* FindSpan(const TraceSnapshot& snap, const std::string& name) {
  for (const SpanView& s : snap.spans) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

TEST(TraceTest, SpansRecordParentDurationAndValue) {
  Trace trace;
  const uint32_t root = trace.BeginSpan("request");
  const uint32_t child = trace.BeginSpan("stage", root);
  trace.EndSpan(child, /*value=*/7);
  trace.EndSpan(root);

  const TraceSnapshot snap = trace.Snapshot();
  ASSERT_EQ(snap.spans.size(), 2u);
  const SpanView* request = FindSpan(snap, "request");
  const SpanView* stage = FindSpan(snap, "stage");
  ASSERT_NE(request, nullptr);
  ASSERT_NE(stage, nullptr);
  EXPECT_EQ(request->parent, 0u);
  EXPECT_EQ(stage->parent, request->id);
  EXPECT_EQ(stage->value, 7u);
  EXPECT_GE(request->duration_us, 0);
  EXPECT_GE(stage->start_us, request->start_us);
  EXPECT_EQ(snap.dropped, 0u);
}

TEST(TraceTest, EndAndSetValueIgnoreInvalidIds) {
  Trace trace;
  trace.EndSpan(0);
  trace.EndSpan(Trace::kMaxSpans + 5);
  trace.SetValue(0, 1);
  trace.SetValue(99, 1);  // never begun: must not crash or publish
  EXPECT_TRUE(trace.Snapshot().spans.empty());
}

TEST(TraceTest, OverflowCountsDroppedSpans) {
  Trace trace;
  for (uint32_t i = 0; i < Trace::kMaxSpans; ++i) {
    EXPECT_NE(trace.BeginSpan("s"), 0u);
  }
  EXPECT_EQ(trace.BeginSpan("overflow"), 0u);
  EXPECT_EQ(trace.BeginSpan("overflow"), 0u);
  EXPECT_EQ(trace.dropped(), 2u);
  const TraceSnapshot snap = trace.Snapshot();
  EXPECT_EQ(snap.spans.size(), Trace::kMaxSpans);
  EXPECT_EQ(snap.dropped, 2u);
}

TEST(TraceTest, OpenSpansAreClampedNotLost) {
  Trace trace;
  const uint32_t open = trace.BeginSpan("still_running");
  const TraceSnapshot snap = trace.Snapshot();
  ASSERT_EQ(snap.spans.size(), 1u);
  EXPECT_EQ(snap.spans[0].id, open);
  EXPECT_GE(snap.spans[0].duration_us, 0);
  EXPECT_LE(snap.spans[0].start_us + snap.spans[0].duration_us,
            snap.total_us);
}

// The MatchCN-pool shape: many threads open/close spans on one trace
// while another thread snapshots. Every published span must be complete
// (no torn name/parent) and ids must be unique.
TEST(TraceTest, ConcurrentWritersProduceNoLostOrDuplicateSpans) {
  Trace trace;
  const uint32_t root = trace.BeginSpan("request");
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 6;  // 1 + 48 < kMaxSpans: nothing drops
  std::vector<std::thread> workers;
  std::atomic<bool> go{false};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&trace, &go, root] {
      while (!go.load()) {
      }
      for (int i = 0; i < kSpansPerThread; ++i) {
        const uint32_t id = trace.BeginSpan("worker", root);
        trace.EndSpan(id, static_cast<uint64_t>(i));
      }
    });
  }
  go.store(true);
  // Snapshot concurrently with the writers; every result must be
  // internally consistent even if taken mid-flight.
  for (int i = 0; i < 50; ++i) {
    const TraceSnapshot snap = trace.Snapshot();
    std::set<uint32_t> ids;
    for (const SpanView& s : snap.spans) {
      EXPECT_TRUE(ids.insert(s.id).second) << "duplicate span id " << s.id;
      EXPECT_TRUE(s.name == "request" || s.name == "worker");
      if (s.name == "worker") EXPECT_EQ(s.parent, root);
    }
  }
  for (std::thread& w : workers) w.join();
  trace.EndSpan(root);

  const TraceSnapshot snap = trace.Snapshot();
  EXPECT_EQ(snap.spans.size(), 1u + kThreads * kSpansPerThread);
  EXPECT_EQ(snap.dropped, 0u);
  size_t workers_seen = 0;
  for (const SpanView& s : snap.spans) {
    if (s.name == "worker") {
      ++workers_seen;
      EXPECT_EQ(s.parent, root);
      EXPECT_GE(s.duration_us, 0);
    }
  }
  EXPECT_EQ(workers_seen, static_cast<size_t>(kThreads * kSpansPerThread));
}

TEST(TraceSamplerTest, RateZeroNeverSamplesRateOneAlways) {
  TraceSampler never(0.0, 123);
  TraceSampler always(1.0, 123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(never.Sample());
    EXPECT_TRUE(always.Sample());
  }
}

TEST(TraceSamplerTest, SampleMatchesPureDecisionFunction) {
  constexpr double kRate = 0.3;
  constexpr uint64_t kSeed = 42;
  TraceSampler sampler(kRate, kSeed);
  for (uint64_t i = 0; i < 500; ++i) {
    EXPECT_EQ(sampler.Sample(), TraceSampler::Decide(kRate, kSeed, i))
        << "sequence " << i;
  }
}

TEST(TraceSamplerTest, SampledFractionTracksRate) {
  constexpr int kN = 10'000;
  int hits = 0;
  for (uint64_t i = 0; i < kN; ++i) {
    if (TraceSampler::Decide(0.25, 7, i)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.25, 0.03);
}

TEST(TraceSamplerTest, DifferentSeedsDifferentPatterns) {
  int differing = 0;
  for (uint64_t i = 0; i < 256; ++i) {
    if (TraceSampler::Decide(0.5, 1, i) != TraceSampler::Decide(0.5, 2, i)) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(RenderTest, WaterfallShowsTreeStructureAndValues) {
  Trace trace;
  const uint32_t root = trace.BeginSpan("request");
  const uint32_t cn = trace.BeginSpan("matchcn", root);
  const uint32_t worker = trace.BeginSpan("worker", cn);
  trace.EndSpan(worker, 14);
  trace.EndSpan(cn);
  trace.EndSpan(root);

  const std::string text = RenderWaterfall(trace.Snapshot());
  EXPECT_NE(text.find("request"), std::string::npos);
  EXPECT_NE(text.find("matchcn"), std::string::npos);
  EXPECT_NE(text.find("worker"), std::string::npos);
  EXPECT_NE(text.find("value=14"), std::string::npos);
  // Tree connectors: the worker is nested two levels deep.
  EXPECT_NE(text.find("`- worker"), std::string::npos);
  // Children render after (and indented under) their parents.
  EXPECT_LT(text.find("request"), text.find("matchcn"));
  EXPECT_LT(text.find("matchcn"), text.find("worker"));
}

TEST(RenderTest, WaterfallReportsDroppedSpans) {
  Trace trace;
  for (uint32_t i = 0; i < Trace::kMaxSpans + 3; ++i) trace.BeginSpan("s");
  const std::string text = RenderWaterfall(trace.Snapshot());
  EXPECT_NE(text.find("3 spans dropped"), std::string::npos);
}

// Snapshots decoded from the wire carry whatever ids the peer sent —
// renderers must tolerate ids of 0 or far beyond kMaxSpans without
// out-of-bounds writes (a hostile TRACE frame must not crash a client).
TEST(RenderTest, WaterfallToleratesOutOfRangeWireIds) {
  TraceSnapshot snap;
  snap.total_us = 100;
  SpanView huge;
  huge.id = 70'000;  // way past kMaxSpans
  huge.parent = 0;
  huge.name = "huge_id";
  huge.duration_us = 10;
  SpanView zero;
  zero.id = 0;  // never a valid claimed id
  zero.parent = 0;
  zero.name = "zero_id";
  zero.duration_us = 5;
  SpanView orphan;
  orphan.id = 3;
  orphan.parent = 70'000;  // parent exists but is unaddressable
  orphan.name = "orphan";
  orphan.duration_us = 1;
  snap.spans = {huge, zero, orphan};

  const std::string text = RenderWaterfall(snap);
  // Every span still renders (out-of-range parents fall back to root).
  EXPECT_NE(text.find("huge_id"), std::string::npos);
  EXPECT_NE(text.find("zero_id"), std::string::npos);
  EXPECT_NE(text.find("orphan"), std::string::npos);
}

TEST(RenderTest, CompactFormIsOneLine) {
  Trace trace;
  trace.EndSpan(trace.BeginSpan("request"));
  trace.EndSpan(trace.BeginSpan("tsfind"));
  const std::string text = RenderCompact(trace.Snapshot());
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 0);
  EXPECT_NE(text.find("request="), std::string::npos);
  EXPECT_NE(text.find("tsfind="), std::string::npos);
}

}  // namespace
}  // namespace matcn::obs
