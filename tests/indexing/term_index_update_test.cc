// Incremental Term Index maintenance (the paper's future-work item).

#include <gtest/gtest.h>

#include "fixtures/imdb_fixture.h"
#include "indexing/term_index.h"

namespace matcn {
namespace {

class TermIndexUpdateTest : public ::testing::Test {
 protected:
  TermIndexUpdateTest() : db_(testing::MakeMiniImdb()) {}

  /// Appends a tuple and returns its id.
  TupleId Append(const std::string& relation, Tuple tuple) {
    const RelationId r = *db_.schema().RelationIdByName(relation);
    EXPECT_TRUE(db_.Insert(r, std::move(tuple)).ok());
    return TupleId(r, db_.relation(r).num_tuples() - 1);
  }

  Database db_;
};

TEST_F(TermIndexUpdateTest, InsertEqualsRebuild) {
  TermIndex incremental = TermIndex::Build(db_);
  const TupleId added =
      Append("PER", {Value(int64_t{5}), Value("Viola Davis")});
  incremental.ApplyInsert(db_, added);

  TermIndex rebuilt = TermIndex::Build(db_);
  ASSERT_EQ(incremental.num_terms(), rebuilt.num_terms());
  for (const std::string& term : rebuilt.AllTerms()) {
    EXPECT_EQ(incremental.TuplesFor(term), rebuilt.TuplesFor(term)) << term;
    EXPECT_EQ(incremental.DocumentFrequency(term),
              rebuilt.DocumentFrequency(term))
        << term;
  }
  EXPECT_EQ(incremental.total_tuples(), rebuilt.total_tuples());
}

TEST_F(TermIndexUpdateTest, NewTermBecomesSearchable) {
  TermIndex index = TermIndex::Build(db_);
  EXPECT_EQ(index.DocumentFrequency("viola"), 0u);
  const TupleId added =
      Append("PER", {Value(int64_t{5}), Value("Viola Davis")});
  index.ApplyInsert(db_, added);
  EXPECT_EQ(index.DocumentFrequency("viola"), 1u);
  EXPECT_EQ(index.TuplesFor("viola"), std::vector<TupleId>{added});
}

TEST_F(TermIndexUpdateTest, ExistingTermGrows) {
  TermIndex index = TermIndex::Build(db_);
  const uint64_t before = index.DocumentFrequency("denzel");
  const TupleId added =
      Append("PER", {Value(int64_t{5}), Value("Denzel Whitaker")});
  index.ApplyInsert(db_, added);
  EXPECT_EQ(index.DocumentFrequency("denzel"), before + 1);
}

TEST_F(TermIndexUpdateTest, RepeatedTokenBumpsDfOnceButFrequencyFully) {
  TermIndex before = TermIndex::Build(db_);
  const TupleId added = Append(
      "MOV", {Value(int64_t{4}), Value("gangster gangster gangster"),
              Value(int64_t{2020})});
  TermIndex after = before;  // pre-insert snapshot, updated incrementally
  after.ApplyInsert(db_, added);

  // One new tuple: df grows by exactly 1...
  EXPECT_EQ(after.DocumentFrequency("gangster"),
            before.DocumentFrequency("gangster") + 1);
  // ...while the occurrence frequency grows by all 3 occurrences.
  auto total_freq = [](const TermIndex& index) {
    uint64_t sum = 0;
    for (const auto& o : *index.Lookup("gangster")) sum += o.frequency;
    return sum;
  };
  EXPECT_EQ(total_freq(after), total_freq(before) + 3);
}

TEST_F(TermIndexUpdateTest, StopwordsRespectBuildOptions) {
  TermIndex index = TermIndex::Build(db_);
  const TupleId added =
      Append("PER", {Value(int64_t{5}), Value("the nameless one")});
  index.ApplyInsert(db_, added);
  EXPECT_EQ(index.DocumentFrequency("the"), 0u);
  EXPECT_EQ(index.DocumentFrequency("nameless"), 1u);
}

TEST_F(TermIndexUpdateTest, CompressedIndexStaysCompressed) {
  TermIndexOptions options;
  options.compress_postings = true;
  TermIndex index = TermIndex::Build(db_, options);
  const TupleId added =
      Append("PER", {Value(int64_t{5}), Value("Denzel Whitaker")});
  index.ApplyInsert(db_, added);
  const auto* occ = index.Lookup("denzel");
  ASSERT_NE(occ, nullptr);
  for (const auto& o : *occ) EXPECT_TRUE(o.tuples.compressed());
}

}  // namespace
}  // namespace matcn
