// Tokenizer, stopwords, varbyte postings and the Term Index.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "fixtures/imdb_fixture.h"
#include "indexing/postings.h"
#include "indexing/stopwords.h"
#include "indexing/term_index.h"
#include "indexing/tokenizer.h"

namespace matcn {
namespace {

TEST(TokenizerTest, SplitsOnNonAlnumAndLowercases) {
  EXPECT_EQ(Tokenizer::Tokenize("Denzel Washington, 2007!"),
            (std::vector<std::string>{"denzel", "washington", "2007"}));
}

TEST(TokenizerTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(Tokenizer::Tokenize("").empty());
  EXPECT_TRUE(Tokenizer::Tokenize("... --- !!!").empty());
}

TEST(TokenizerTest, UniqueTokensPreservesFirstOccurrenceOrder) {
  EXPECT_EQ(Tokenizer::UniqueTokens("b a b c a"),
            (std::vector<std::string>{"b", "a", "c"}));
}

TEST(StopwordsTest, CommonWordsAreStopwords) {
  EXPECT_TRUE(IsStopword("the"));
  EXPECT_TRUE(IsStopword("and"));
  EXPECT_TRUE(IsStopword("of"));
  EXPECT_FALSE(IsStopword("gangster"));
  EXPECT_FALSE(IsStopword("washington"));
}

TEST(StopwordsTest, ListIsSortedForBinarySearch) {
  EXPECT_GT(StopwordCount(), 20u);
}

TEST(VarbyteTest, RoundTripSmallAndLarge) {
  std::vector<uint8_t> buf;
  const std::vector<uint64_t> values = {0, 1, 127, 128, 300, 1u << 20,
                                        (uint64_t{1} << 62) + 5};
  for (uint64_t v : values) VarbyteEncode(v, &buf);
  size_t pos = 0;
  for (uint64_t v : values) EXPECT_EQ(VarbyteDecode(buf, &pos), v);
  EXPECT_EQ(pos, buf.size());
}

TEST(VarbyteTest, SmallValuesUseOneByte) {
  std::vector<uint8_t> buf;
  VarbyteEncode(100, &buf);
  EXPECT_EQ(buf.size(), 1u);
}

TEST(PostingListTest, RawRoundTrip) {
  std::vector<TupleId> ids = {TupleId(0, 1), TupleId(0, 5), TupleId(2, 0)};
  PostingList list = PostingList::Build(ids, /*compress=*/false);
  EXPECT_EQ(list.Decode(), ids);
  EXPECT_EQ(list.size(), 3u);
  EXPECT_FALSE(list.compressed());
}

TEST(PostingListTest, CompressedRoundTrip) {
  std::vector<TupleId> ids;
  for (uint64_t i = 0; i < 1000; i += 3) ids.emplace_back(1, i);
  PostingList list = PostingList::Build(ids, /*compress=*/true);
  EXPECT_TRUE(list.compressed());
  EXPECT_EQ(list.Decode(), ids);
}

TEST(PostingListTest, CompressionSavesSpaceOnDenseLists) {
  std::vector<TupleId> ids;
  for (uint64_t i = 0; i < 10'000; ++i) ids.emplace_back(0, i);
  PostingList raw = PostingList::Build(ids, false);
  PostingList packed = PostingList::Build(ids, true);
  EXPECT_LT(packed.MemoryBytes(), raw.MemoryBytes() / 4);
}

TEST(PostingListTest, EmptyList) {
  PostingList list = PostingList::Build({}, true);
  EXPECT_EQ(list.size(), 0u);
  EXPECT_TRUE(list.Decode().empty());
}

class TermIndexTest : public ::testing::Test {
 protected:
  TermIndexTest() : db_(testing::MakeMiniImdb()) {}
  Database db_;
};

TEST_F(TermIndexTest, FindsTermAcrossRelations) {
  TermIndex index = TermIndex::Build(db_);
  // "gangster" occurs in CHAR, MOV, CAST and ROLE.
  std::vector<TupleId> tuples = index.TuplesFor("gangster");
  std::set<RelationId> relations;
  for (const TupleId& id : tuples) relations.insert(id.relation());
  EXPECT_EQ(relations.size(), 4u);
}

TEST_F(TermIndexTest, AttributeOccurrencesCarryFrequencies) {
  TermIndex index = TermIndex::Build(db_);
  const std::vector<AttributeOccurrence>* occ = index.Lookup("denzel");
  ASSERT_NE(occ, nullptr);
  uint64_t total_freq = 0;
  for (const AttributeOccurrence& o : *occ) total_freq += o.frequency;
  // denzel: PER x2, CHAR x1, CAST x2 = 5 occurrences.
  EXPECT_EQ(total_freq, 5u);
}

TEST_F(TermIndexTest, DocumentFrequencyCountsDistinctTuples) {
  TermIndex index = TermIndex::Build(db_);
  EXPECT_EQ(index.DocumentFrequency("denzel"), 5u);
  EXPECT_EQ(index.DocumentFrequency("washington"), 3u);
  EXPECT_EQ(index.DocumentFrequency("absent"), 0u);
}

TEST_F(TermIndexTest, PrimaryKeysAndIntsAreNotIndexed) {
  TermIndex index = TermIndex::Build(db_);
  // Movie years are int attributes; they must not be searchable.
  EXPECT_EQ(index.Lookup("2007"), nullptr);
}

TEST_F(TermIndexTest, StopwordsSkippedByDefault) {
  TermIndex index = TermIndex::Build(db_);
  EXPECT_EQ(index.Lookup("the"), nullptr);

  TermIndexOptions keep;
  keep.skip_stopwords = false;
  TermIndex full = TermIndex::Build(db_, keep);
  EXPECT_NE(full.Lookup("the"), nullptr);  // CAST note "... in the finale"
}

TEST_F(TermIndexTest, CompressedIndexReturnsSameTuples) {
  TermIndex raw = TermIndex::Build(db_);
  TermIndexOptions opts;
  opts.compress_postings = true;
  TermIndex packed = TermIndex::Build(db_, opts);
  for (const std::string& term : raw.AllTerms()) {
    EXPECT_EQ(raw.TuplesFor(term), packed.TuplesFor(term)) << term;
  }
  EXPECT_EQ(raw.num_terms(), packed.num_terms());
}

TEST_F(TermIndexTest, TotalTuplesMatchesDatabase) {
  TermIndex index = TermIndex::Build(db_);
  EXPECT_EQ(index.total_tuples(), db_.TotalTuples());
}

TEST_F(TermIndexTest, AllTermsSortedAndComplete) {
  TermIndex index = TermIndex::Build(db_);
  std::vector<std::string> terms = index.AllTerms();
  EXPECT_TRUE(std::is_sorted(terms.begin(), terms.end()));
  EXPECT_EQ(terms.size(), index.num_terms());
  EXPECT_TRUE(std::binary_search(terms.begin(), terms.end(), "gangster"));
}

}  // namespace
}  // namespace matcn
