// Differential tests for the SIMD posting kernels: every decode and
// intersection case is run through the dispatched kernel, the scalar
// fallback, and an independent reference (the per-value VarbyteDecode
// loop / std::set_intersection), and all three must agree byte-for-byte.
// The adversarial cases target the kernels' block boundaries: the 8-wide
// single-byte fast path, multi-byte deltas landing mid-window, tails
// shorter than one probe, and maximum-width varbyte values.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "indexing/postings.h"
#include "simd/dispatch.h"
#include "simd/kernels.h"

namespace matcn {
namespace {

// Restores the dispatch level after a test that pins the scalar tier.
class ScopedForceScalar {
 public:
  explicit ScopedForceScalar(bool force) { simd::ForceScalar(force); }
  ~ScopedForceScalar() { simd::ForceScalar(false); }
};

std::vector<uint8_t> EncodeDeltas(const std::vector<uint64_t>& deltas) {
  std::vector<uint8_t> buf;
  for (uint64_t d : deltas) VarbyteEncode(d, &buf);
  return buf;
}

// Reference decode: the pre-kernel per-value loop.
std::vector<uint64_t> ReferenceDecode(const std::vector<uint8_t>& buf,
                                      size_t count) {
  std::vector<uint64_t> out;
  out.reserve(count);
  size_t pos = 0;
  uint64_t prev = 0;
  for (size_t i = 0; i < count; ++i) {
    prev += VarbyteDecode(buf, &pos);
    out.push_back(prev);
  }
  EXPECT_EQ(pos, buf.size());
  return out;
}

void ExpectDecodeAgrees(const std::vector<uint64_t>& deltas) {
  const std::vector<uint8_t> buf = EncodeDeltas(deltas);
  const std::vector<uint64_t> expected = ReferenceDecode(buf, deltas.size());

  std::vector<uint64_t> scalar(deltas.size() + 1, 0xDEADBEEFull);
  const size_t scalar_bytes = simd::DecodeDeltaBlockScalar(
      buf.data(), buf.size(), deltas.size(), scalar.data());
  EXPECT_EQ(scalar_bytes, buf.size());
  ASSERT_EQ(std::vector<uint64_t>(scalar.begin(),
                                  scalar.begin() + deltas.size()),
            expected);
  EXPECT_EQ(scalar[deltas.size()], 0xDEADBEEFull) << "scalar overwrote tail";

  std::vector<uint64_t> dispatched(deltas.size() + 1, 0xDEADBEEFull);
  const size_t simd_bytes = simd::DecodeDeltaBlock(
      buf.data(), buf.size(), deltas.size(), dispatched.data());
  EXPECT_EQ(simd_bytes, buf.size());
  ASSERT_EQ(std::vector<uint64_t>(dispatched.begin(),
                                  dispatched.begin() + deltas.size()),
            expected);
  EXPECT_EQ(dispatched[deltas.size()], 0xDEADBEEFull)
      << "kernel overwrote tail";
}

TEST(SimdKernels, DecodeEmpty) { ExpectDecodeAgrees({}); }

TEST(SimdKernels, DecodeSingleton) {
  ExpectDecodeAgrees({0});
  ExpectDecodeAgrees({1});
  ExpectDecodeAgrees({127});
  ExpectDecodeAgrees({128});
  ExpectDecodeAgrees({~uint64_t{0}});
}

TEST(SimdKernels, DecodeAllGapsOne) {
  // Pure single-byte fast path, at every count that straddles the 8-wide
  // probe: below, at, and past one and two full blocks.
  for (size_t count : {1u, 7u, 8u, 9u, 15u, 16u, 17u, 63u, 64u, 65u, 1000u}) {
    ExpectDecodeAgrees(std::vector<uint64_t>(count, 1));
  }
}

TEST(SimdKernels, DecodeMaxWidthValues) {
  // 10-byte varbyte encodings: the widest the format produces.
  ExpectDecodeAgrees({~uint64_t{0}});
  ExpectDecodeAgrees({uint64_t{1} << 63});
  ExpectDecodeAgrees({(uint64_t{1} << 63) - 1, 1, 1, 1, 1, 1, 1, 1, 1});
  // A wide delta in every window position of an otherwise dense run.
  for (size_t wide_at = 0; wide_at < 20; ++wide_at) {
    std::vector<uint64_t> deltas(20, 1);
    deltas[wide_at] = uint64_t{1} << 62;
    ExpectDecodeAgrees(deltas);
  }
}

TEST(SimdKernels, DecodeTwoByteBoundary) {
  // Deltas straddling the 127/128 single-byte boundary and sums crossing
  // 2^16, where the packed-TupleId row id rolls through a full low word.
  std::vector<uint64_t> deltas;
  for (uint64_t d = 120; d < 140; ++d) deltas.push_back(d);
  ExpectDecodeAgrees(deltas);

  deltas.assign(1 << 10, 127);  // sum crosses 2^16 mid-run
  ExpectDecodeAgrees(deltas);
}

TEST(SimdKernels, DecodeMisalignedTails) {
  // Mixed-width deltas with every tail length mod 8, so the scalar tail
  // after the last full probe window is exercised at each offset.
  for (size_t count = 1; count <= 40; ++count) {
    std::vector<uint64_t> deltas;
    for (size_t i = 0; i < count; ++i) {
      deltas.push_back(i % 3 == 0 ? 300 + i : 1 + i % 7);
    }
    ExpectDecodeAgrees(deltas);
  }
}

TEST(SimdKernels, DecodeRandomFuzz) {
  Rng rng(0xC0FFEEull);
  for (int round = 0; round < 200; ++round) {
    const size_t count = static_cast<size_t>(rng.Uniform(0, 300));
    std::vector<uint64_t> deltas;
    deltas.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      // Mostly small gaps (the posting-list distribution), salted with
      // occasional wide jumps to break the fast path mid-run.
      const uint64_t roll = rng.Uniform(0, 100);
      if (roll < 80) {
        deltas.push_back(rng.Uniform(1, 127));
      } else if (roll < 95) {
        deltas.push_back(rng.Uniform(128, 1 << 20));
      } else {
        deltas.push_back(rng.Uniform(1, int64_t{1} << 40));
      }
    }
    ExpectDecodeAgrees(deltas);
  }
}

// ---------------------------------------------------------------------------
// Intersection

std::vector<uint64_t> ReferenceIntersect(const std::vector<uint64_t>& a,
                                         const std::vector<uint64_t>& b) {
  std::vector<uint64_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

void ExpectIntersectAgrees(const std::vector<uint64_t>& a,
                           const std::vector<uint64_t>& b) {
  const std::vector<uint64_t> expected = ReferenceIntersect(a, b);

  std::vector<uint64_t> scalar(std::min(a.size(), b.size()) + 1);
  const size_t ns = simd::IntersectSortedU64Scalar(a.data(), a.size(),
                                                   b.data(), b.size(),
                                                   scalar.data());
  scalar.resize(ns);
  ASSERT_EQ(scalar, expected);

  std::vector<uint64_t> dispatched(std::min(a.size(), b.size()) + 1);
  const size_t nd = simd::IntersectSortedU64(a.data(), a.size(), b.data(),
                                             b.size(), dispatched.data());
  dispatched.resize(nd);
  ASSERT_EQ(dispatched, expected);

  // The dispatcher swaps so the shorter list leads: both argument orders
  // must give the same result.
  std::vector<uint64_t> swapped(std::min(a.size(), b.size()) + 1);
  const size_t nw = simd::IntersectSortedU64(b.data(), b.size(), a.data(),
                                             a.size(), swapped.data());
  swapped.resize(nw);
  ASSERT_EQ(swapped, expected);
}

std::vector<uint64_t> SortedUnique(std::vector<uint64_t> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

TEST(SimdKernels, IntersectEdgeCases) {
  ExpectIntersectAgrees({}, {});
  ExpectIntersectAgrees({}, {1, 2, 3});
  ExpectIntersectAgrees({5}, {1, 2, 3});
  ExpectIntersectAgrees({2}, {1, 2, 3});
  ExpectIntersectAgrees({1, 2, 3}, {1, 2, 3});
  ExpectIntersectAgrees({1, 3, 5, 7}, {2, 4, 6, 8});
  ExpectIntersectAgrees({~uint64_t{0}}, {0, ~uint64_t{0}});
}

TEST(SimdKernels, IntersectBlockBoundaries) {
  // Sizes around the 4-wide probe block of the SIMD merge.
  for (size_t nb : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 16u, 17u}) {
    std::vector<uint64_t> b;
    for (size_t i = 0; i < nb; ++i) b.push_back(2 * i);
    for (size_t na = 1; na <= nb; ++na) {
      std::vector<uint64_t> a;
      for (size_t i = 0; i < na; ++i) a.push_back(3 * i);
      ExpectIntersectAgrees(SortedUnique(a), SortedUnique(b));
    }
  }
}

TEST(SimdKernels, IntersectGallopingSkew) {
  // 32x+ size asymmetry takes the galloping path: a rare term against a
  // common one, matches scattered through the long list including both
  // endpoints.
  std::vector<uint64_t> common;
  for (uint64_t i = 0; i < 5000; ++i) common.push_back(i * 3);
  const std::vector<uint64_t> rare = {0, 2999 * 3, 4999 * 3, 4999 * 3 + 1};
  ExpectIntersectAgrees(SortedUnique(rare), common);
  ExpectIntersectAgrees({common.back()}, common);
  ExpectIntersectAgrees({common.back() + 1}, common);
}

TEST(SimdKernels, IntersectRandomFuzz) {
  Rng rng(0xBEEFull);
  for (int round = 0; round < 200; ++round) {
    const size_t na = static_cast<size_t>(rng.Uniform(0, 200));
    const size_t nb = static_cast<size_t>(rng.Uniform(0, 2000));
    const uint64_t range = rng.Uniform(10, 4000);
    std::vector<uint64_t> a, b;
    for (size_t i = 0; i < na; ++i)
      a.push_back(rng.Uniform(0, static_cast<int64_t>(range)));
    for (size_t i = 0; i < nb; ++i)
      b.push_back(rng.Uniform(0, static_cast<int64_t>(range)));
    ExpectIntersectAgrees(SortedUnique(a), SortedUnique(b));
  }
}

// ---------------------------------------------------------------------------
// Dispatch control

TEST(SimdKernels, ForceScalarPinsDispatch) {
  {
    ScopedForceScalar pin(true);
    EXPECT_EQ(simd::ActiveLevel(), simd::Level::kScalar);
    EXPECT_STREQ(simd::LevelName(simd::ActiveLevel()), "scalar");
    // Kernels still answer correctly while pinned.
    ExpectDecodeAgrees({1, 1, 1, 1, 1, 1, 1, 1, 300, 1});
    ExpectIntersectAgrees({1, 5, 9}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  }
  // Unpinned: whatever the CPU supports, decode must still agree (if this
  // machine has AVX2/SSE this re-runs the wide tiers).
  ExpectDecodeAgrees({1, 1, 1, 1, 1, 1, 1, 1, 300, 1});
}

TEST(SimdKernels, LevelNamesAreStable) {
  EXPECT_STREQ(simd::LevelName(simd::Level::kScalar), "scalar");
  EXPECT_STREQ(simd::LevelName(simd::Level::kSse42), "sse4.2");
  EXPECT_STREQ(simd::LevelName(simd::Level::kAvx2), "avx2");
}

// End-to-end through PostingList: compressed DecodeInto (which feeds the
// kernels) must equal the uncompressed path for identical inputs.
TEST(SimdKernels, PostingListDecodeIntoMatchesUncompressed) {
  Rng rng(0x5EEDull);
  for (int round = 0; round < 50; ++round) {
    std::vector<TupleId> ids;
    const size_t n = static_cast<size_t>(rng.Uniform(0, 500));
    uint64_t raw = 0;
    for (size_t i = 0; i < n; ++i) {
      raw += rng.Uniform(1, 200);
      ids.push_back(TupleId::FromPacked(raw));
    }
    const PostingList compressed = PostingList::Build(ids, true);
    const PostingList plain = PostingList::Build(ids, false);
    std::vector<TupleId> from_compressed(3);  // stale contents overwritten
    std::vector<TupleId> from_plain;
    compressed.DecodeInto(&from_compressed);
    plain.DecodeInto(&from_plain);
    EXPECT_EQ(from_compressed, ids);
    EXPECT_EQ(from_plain, ids);
  }
}

}  // namespace
}  // namespace matcn
