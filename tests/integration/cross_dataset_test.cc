// Cross-dataset integration properties: for every generated dataset and a
// sampled workload, the full MatCNGen pipeline must uphold the paper's
// structural guarantees against the exhaustive CNGen baseline.

#include <gtest/gtest.h>

#include <set>

#include "baseline/cngen.h"
#include "core/matcngen.h"
#include "datasets/generators.h"
#include "datasets/workload.h"
#include "graph/schema_graph.h"

namespace matcn {
namespace {

struct Case {
  const char* name;
  Database (*make)(uint64_t, double);
  uint64_t seed;
};

class CrossDataset : public ::testing::TestWithParam<Case> {};

TEST_P(CrossDataset, PipelineInvariantsHoldOnSampledWorkload) {
  const Case& c = GetParam();
  Database db = c.make(c.seed, 0.05);
  SchemaGraph schema_graph = SchemaGraph::Build(db.schema());
  TermIndex index = TermIndex::Build(db);
  WorkloadGenerator wgen(&db, &schema_graph, &index);

  WorkloadOptions options;
  options.num_queries = 6;
  options.seed = 99;
  const std::vector<WorkloadQuery> queries = wgen.Generate(options);
  ASSERT_FALSE(queries.empty());

  MatCnGenOptions mat_options;
  mat_options.t_max = 5;
  MatCnGen gen(&schema_graph, mat_options);
  for (const WorkloadQuery& wq : queries) {
    GenerationResult mat = gen.Generate(wq.query, index);

    // Invariant 1: at most one CN per match, all valid and distinct.
    EXPECT_LE(mat.cns.size(), mat.matches.size());
    std::set<std::string> canon;
    for (const CandidateNetwork& cn : mat.cns) {
      EXPECT_TRUE(cn.IsSound(schema_graph));
      EXPECT_EQ(cn.CoveredTermset(), wq.query.FullTermset());
      for (int leaf : cn.Leaves()) EXPECT_FALSE(cn.node(leaf).is_free());
      EXPECT_TRUE(canon.insert(cn.CanonicalForm()).second);
      EXPECT_LE(cn.size(), 5u);
    }

    // Invariant 2: MatCNGen's CN set is a subset of CNGen's (Figure 6's
    // "compact set" claim), and never larger.
    TupleSetGraph ts_graph(&schema_graph, &mat.tuple_sets);
    CnGenOptions base_options;
    base_options.t_max = 5;
    CnGenResult base = CnGen(wq.query, ts_graph, base_options);
    if (!base.failed) {
      std::set<std::string> base_canon;
      for (const CandidateNetwork& cn : base.cns) {
        base_canon.insert(cn.CanonicalForm());
      }
      EXPECT_LE(mat.cns.size(), base.cns.size()) << wq.id;
      for (const CandidateNetwork& cn : mat.cns) {
        EXPECT_TRUE(base_canon.contains(cn.CanonicalForm()))
            << c.name << "/" << wq.id;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, CrossDataset,
    ::testing::Values(Case{"IMDb", MakeImdb, 42},
                      Case{"Mondial", MakeMondial, 43},
                      Case{"Wikipedia", MakeWikipedia, 44},
                      Case{"DBLP", MakeDblp, 45},
                      Case{"TPCH", MakeTpch, 46}),
    [](const ::testing::TestParamInfo<Case>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace matcn
