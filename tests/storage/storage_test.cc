// Unit tests for values, tuple ids, schemas, relations and the Database.

#include <gtest/gtest.h>

#include "storage/database.h"
#include "storage/tuple_id.h"
#include "storage/value.h"

namespace matcn {
namespace {

TEST(ValueTest, IntAndTextTypes) {
  Value i(int64_t{7});
  Value t("gangster");
  EXPECT_TRUE(i.is_int());
  EXPECT_TRUE(t.is_text());
  EXPECT_EQ(i.AsInt(), 7);
  EXPECT_EQ(t.AsText(), "gangster");
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(int64_t{-3}).ToString(), "-3");
  EXPECT_EQ(Value("abc").ToString(), "abc");
}

TEST(ValueTest, EqualityDistinguishesTypes) {
  EXPECT_NE(Value(int64_t{1}), Value("1"));
  EXPECT_EQ(Value(int64_t{1}), Value(int64_t{1}));
  EXPECT_EQ(Value("x"), Value("x"));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value("same").Hash(), Value("same").Hash());
  EXPECT_EQ(Value(int64_t{5}).Hash(), Value(int64_t{5}).Hash());
}

TEST(ValueTest, DefaultIsIntZero) {
  Value v;
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.AsInt(), 0);
}

TEST(TupleIdTest, PackAndUnpack) {
  TupleId id(17, 123456789);
  EXPECT_EQ(id.relation(), 17u);
  EXPECT_EQ(id.row(), 123456789u);
}

TEST(TupleIdTest, FromPackedRoundTrip) {
  TupleId id(3, 99);
  EXPECT_EQ(TupleId::FromPacked(id.packed()), id);
}

TEST(TupleIdTest, OrderingIsByRelationThenRow) {
  EXPECT_LT(TupleId(0, 999), TupleId(1, 0));
  EXPECT_LT(TupleId(1, 5), TupleId(1, 6));
}

TEST(TupleIdTest, LargeRowIndexes) {
  const uint64_t big = (uint64_t{1} << 40) - 1;
  TupleId id(5, big);
  EXPECT_EQ(id.row(), big);
  EXPECT_EQ(id.relation(), 5u);
}

TEST(RelationSchemaTest, AttributeIndexLookup) {
  RelationSchema s("R", {{"id", ValueType::kInt, true, false},
                         {"name", ValueType::kText, false, true}});
  EXPECT_EQ(*s.AttributeIndex("name"), 1u);
  EXPECT_FALSE(s.AttributeIndex("missing").has_value());
}

TEST(DatabaseSchemaTest, RejectsDuplicateRelation) {
  DatabaseSchema s;
  ASSERT_TRUE(s.AddRelation(RelationSchema("R", {})).ok());
  EXPECT_EQ(s.AddRelation(RelationSchema("R", {})).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(DatabaseSchemaTest, RejectsEmptyRelationName) {
  DatabaseSchema s;
  EXPECT_EQ(s.AddRelation(RelationSchema("", {})).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DatabaseSchemaTest, ForeignKeyValidation) {
  DatabaseSchema s;
  ASSERT_TRUE(
      s.AddRelation(RelationSchema("A", {{"id", ValueType::kInt, true, false},
                                         {"b_id", ValueType::kInt, false,
                                          false}}))
          .ok());
  ASSERT_TRUE(
      s.AddRelation(RelationSchema("B", {{"id", ValueType::kInt, true, false},
                                         {"label", ValueType::kText, false,
                                          true}}))
          .ok());
  EXPECT_TRUE(s.AddForeignKey({"A", "b_id", "B", "id"}).ok());
  EXPECT_EQ(s.AddForeignKey({"X", "b_id", "B", "id"}).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(s.AddForeignKey({"A", "nope", "B", "id"}).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(s.AddForeignKey({"A", "b_id", "B", "label"}).code(),
            StatusCode::kInvalidArgument);  // int vs text
}

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.CreateRelation(
                       RelationSchema("R", {{"id", ValueType::kInt, true,
                                             false},
                                            {"name", ValueType::kText, false,
                                             true}}))
                    .ok());
  }
  Database db_;
};

TEST_F(DatabaseTest, InsertAndFetch) {
  ASSERT_TRUE(db_.Insert("R", {Value(int64_t{1}), Value("abc")}).ok());
  EXPECT_EQ(db_.relation(0).num_tuples(), 1u);
  EXPECT_EQ(db_.tuple(TupleId(0, 0))[1].AsText(), "abc");
}

TEST_F(DatabaseTest, InsertArityMismatchFails) {
  EXPECT_EQ(db_.Insert("R", {Value(int64_t{1})}).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(DatabaseTest, InsertTypeMismatchFails) {
  EXPECT_EQ(db_.Insert("R", {Value("oops"), Value("abc")}).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(DatabaseTest, InsertIntoUnknownRelationFails) {
  EXPECT_EQ(db_.Insert("missing", {}).code(), StatusCode::kNotFound);
}

TEST_F(DatabaseTest, InsertOutOfRangeIdFails) {
  EXPECT_EQ(db_.Insert(RelationId{9}, {}).code(), StatusCode::kOutOfRange);
}

TEST_F(DatabaseTest, TotalTuplesAndSize) {
  ASSERT_TRUE(db_.Insert("R", {Value(int64_t{1}), Value("abcd")}).ok());
  ASSERT_TRUE(db_.Insert("R", {Value(int64_t{2}), Value("xy")}).ok());
  EXPECT_EQ(db_.TotalTuples(), 2u);
  EXPECT_EQ(db_.ApproximateSizeBytes(), 8u + 4u + 8u + 2u);
}

TEST_F(DatabaseTest, SchemaStableAfterManyCreates) {
  // Relation objects own schema copies, so growing the catalog must not
  // invalidate previously returned schema references.
  const RelationSchema* first = &db_.relation(0).schema();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        db_.CreateRelation(RelationSchema("R" + std::to_string(i), {})).ok());
  }
  EXPECT_EQ(first->name(), "R");
  EXPECT_EQ(&db_.relation(0).schema(), first);
}

}  // namespace
}  // namespace matcn
