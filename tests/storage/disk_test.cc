#include "storage/disk.h"

#include <gtest/gtest.h>

#include "fixtures/imdb_fixture.h"

namespace matcn {
namespace {

class DiskTest : public ::testing::Test {
 protected:
  DiskTest() : db_(testing::MakeMiniImdb()) {
    dir_ = ::testing::TempDir() + "/matcn_disk_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
  }
  Database db_;
  std::string dir_;
};

TEST_F(DiskTest, SaveLoadRoundTripsSchema) {
  ASSERT_TRUE(DiskStorage::Save(db_, dir_).ok());
  Result<Database> loaded = DiskStorage::Load(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_relations(), db_.num_relations());
  EXPECT_EQ(loaded->schema().foreign_keys().size(),
            db_.schema().foreign_keys().size());
  for (RelationId r = 0; r < db_.num_relations(); ++r) {
    EXPECT_EQ(loaded->relation(r).schema().name(),
              db_.relation(r).schema().name());
    EXPECT_EQ(loaded->relation(r).schema().num_attributes(),
              db_.relation(r).schema().num_attributes());
  }
}

TEST_F(DiskTest, SaveLoadRoundTripsData) {
  ASSERT_TRUE(DiskStorage::Save(db_, dir_).ok());
  Result<Database> loaded = DiskStorage::Load(dir_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->TotalTuples(), db_.TotalTuples());
  for (RelationId r = 0; r < db_.num_relations(); ++r) {
    ASSERT_EQ(loaded->relation(r).num_tuples(), db_.relation(r).num_tuples());
    for (uint64_t row = 0; row < db_.relation(r).num_tuples(); ++row) {
      EXPECT_EQ(loaded->relation(r).tuple(row), db_.relation(r).tuple(row));
    }
  }
}

TEST_F(DiskTest, ScanForKeywordFindsTokenMatches) {
  ASSERT_TRUE(DiskStorage::Save(db_, dir_).ok());
  const RelationId per = *db_.schema().RelationIdByName("PER");
  Result<std::vector<uint64_t>> rows = DiskStorage::ScanForKeyword(
      dir_, db_.relation(per).schema(), "washington");
  ASSERT_TRUE(rows.ok());
  // "Denzel Washington" and "Mary Washington".
  EXPECT_EQ(rows->size(), 2u);
}

TEST_F(DiskTest, ScanIsCaseInsensitive) {
  ASSERT_TRUE(DiskStorage::Save(db_, dir_).ok());
  const RelationId mov = *db_.schema().RelationIdByName("MOV");
  Result<std::vector<uint64_t>> rows = DiskStorage::ScanForKeyword(
      dir_, db_.relation(mov).schema(), "GANGSTER");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
}

TEST_F(DiskTest, ScanMissingKeywordReturnsEmpty) {
  ASSERT_TRUE(DiskStorage::Save(db_, dir_).ok());
  const RelationId per = *db_.schema().RelationIdByName("PER");
  Result<std::vector<uint64_t>> rows = DiskStorage::ScanForKeyword(
      dir_, db_.relation(per).schema(), "zzzzz");
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST_F(DiskTest, LoadMissingDirectoryFails) {
  Result<Database> loaded = DiskStorage::Load(dir_ + "_nonexistent");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST_F(DiskTest, ScanMissingFileFails) {
  const RelationSchema schema("GHOST", {});
  Result<std::vector<uint64_t>> rows =
      DiskStorage::ScanForKeyword(dir_, schema, "x");
  EXPECT_FALSE(rows.ok());
}

TEST_F(DiskTest, SaveIsIdempotent) {
  ASSERT_TRUE(DiskStorage::Save(db_, dir_).ok());
  ASSERT_TRUE(DiskStorage::Save(db_, dir_).ok());  // overwrite in place
  Result<Database> loaded = DiskStorage::Load(dir_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->TotalTuples(), db_.TotalTuples());
}

}  // namespace
}  // namespace matcn
