#include "workload/recorder.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace matcn::workload {
namespace {

TEST(LoadRecorderTest, EmptySnapshotIsAllZero) {
  LoadRecorder recorder;
  const LoadSnapshot snap = recorder.Snapshot();
  EXPECT_EQ(snap.issued(), 0u);
  EXPECT_EQ(snap.queries(), 0u);
  EXPECT_EQ(snap.p99_ms, 0.0);
  EXPECT_EQ(snap.warmup_skipped, 0u);
}

TEST(LoadRecorderTest, CountsOutcomesSeparately) {
  LoadRecorder recorder;
  recorder.RecordQuery(OpOutcome::kOk, 0, 100, /*cache_hit=*/true,
                       /*degraded=*/false);
  recorder.RecordQuery(OpOutcome::kOk, 0, 200, false, true);
  recorder.RecordQuery(OpOutcome::kRejected, 0, 50, false, false);
  recorder.RecordQuery(OpOutcome::kDeadline, 0, 5000, false, false);
  recorder.RecordQuery(OpOutcome::kError, 0, 10, false, false);
  recorder.RecordInsert(true, 0, 300);
  recorder.RecordInsert(false, 0, 400);

  const LoadSnapshot snap = recorder.Snapshot();
  EXPECT_EQ(snap.ok, 2u);
  EXPECT_EQ(snap.cache_hits, 1u);
  EXPECT_EQ(snap.degraded, 1u);
  EXPECT_EQ(snap.rejected, 1u);
  EXPECT_EQ(snap.deadline, 1u);
  EXPECT_EQ(snap.errors, 1u);
  EXPECT_EQ(snap.inserts_ok, 1u);
  EXPECT_EQ(snap.insert_errors, 1u);
  EXPECT_EQ(snap.queries(), 5u);
  EXPECT_EQ(snap.issued(), 7u);
}

TEST(LoadRecorderTest, LatencyIsEndMinusIntendedStart) {
  // The coordinated-omission contract: a request *intended* at t=0 that
  // completed at t=10000 took 10ms, even if the client only managed to
  // put it on the wire at t=9000.
  LoadRecorder recorder;
  for (int i = 0; i < 1000; ++i) {
    recorder.RecordQuery(OpOutcome::kOk, 0, 10'000, false, false);
  }
  const LoadSnapshot snap = recorder.Snapshot();
  EXPECT_NEAR(snap.p50_ms, 10.0, 1.0);
  EXPECT_NEAR(snap.max_ms, 10.0, 1.0);
  EXPECT_NEAR(snap.mean_ms, 10.0, 1.0);
}

TEST(LoadRecorderTest, RejectionsContributeLatencySamples) {
  // A rejection the caller waited 5ms for is 5ms of user-visible delay;
  // it must not vanish from the latency distribution.
  LoadRecorder recorder;
  for (int i = 0; i < 100; ++i) {
    recorder.RecordQuery(OpOutcome::kRejected, 0, 5'000, false, false);
  }
  const LoadSnapshot snap = recorder.Snapshot();
  EXPECT_EQ(snap.rejected, 100u);
  EXPECT_NEAR(snap.p50_ms, 5.0, 0.5);
}

TEST(LoadRecorderTest, WarmupSamplesAreExcludedEverywhere) {
  LoadRecorder recorder;
  recorder.SetMeasureStartUs(1'000'000);
  // Intended before the measure start: excluded, whatever the end time.
  recorder.RecordQuery(OpOutcome::kOk, 999'999, 2'000'000, true, false);
  recorder.RecordInsert(true, 500'000, 1'500'000);
  // Intended exactly at / after the start: measured.
  recorder.RecordQuery(OpOutcome::kOk, 1'000'000, 1'002'000, false, false);

  const LoadSnapshot snap = recorder.Snapshot();
  EXPECT_EQ(snap.warmup_skipped, 2u);
  EXPECT_EQ(snap.ok, 1u);
  EXPECT_EQ(snap.cache_hits, 0u);  // the warmup hit did not leak in
  EXPECT_EQ(snap.inserts_ok, 0u);
  EXPECT_NEAR(snap.p50_ms, 2.0, 0.3);
  EXPECT_LT(snap.max_ms, 3.0);  // the 1s warmup sample is not the max
}

TEST(LoadRecorderTest, InsertLatencyTrackedSeparately) {
  LoadRecorder recorder;
  for (int i = 0; i < 500; ++i) {
    recorder.RecordQuery(OpOutcome::kOk, 0, 1'000, false, false);
    recorder.RecordInsert(true, 0, 20'000);
  }
  const LoadSnapshot snap = recorder.Snapshot();
  EXPECT_NEAR(snap.p99_ms, 1.0, 0.2);
  EXPECT_NEAR(snap.insert_p99_ms, 20.0, 2.0);
  EXPECT_NEAR(snap.insert_p50_ms, 20.0, 2.0);
}

TEST(LoadRecorderTest, SnapshotToStringMentionsCounts) {
  LoadRecorder recorder;
  recorder.RecordQuery(OpOutcome::kOk, 0, 100, false, false);
  const std::string s = recorder.Snapshot().ToString();
  EXPECT_NE(s.find("ok=1"), std::string::npos) << s;
}

TEST(LoadRecorderTest, ConcurrentRecordingLosesNothing) {
  // Exercised under TSAN in CI: many workers record while a reporter
  // thread snapshots mid-flight.
  LoadRecorder recorder;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&recorder, t] {
      for (int i = 0; i < kPerThread; ++i) {
        recorder.RecordQuery(OpOutcome::kOk, 0, 100 + t, (i & 1) != 0,
                             false);
        if ((i & 7) == 0) recorder.RecordInsert(true, 0, 50);
      }
    });
  }
  std::thread reporter([&recorder] {
    for (int i = 0; i < 100; ++i) {
      const LoadSnapshot snap = recorder.Snapshot();
      ASSERT_LE(snap.cache_hits, snap.ok);
    }
  });
  for (std::thread& w : workers) w.join();
  reporter.join();

  const LoadSnapshot snap = recorder.Snapshot();
  EXPECT_EQ(snap.ok, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snap.cache_hits, snap.ok / 2);
  EXPECT_EQ(snap.inserts_ok,
            static_cast<uint64_t>(kThreads) * (kPerThread / 8));
}

}  // namespace
}  // namespace matcn::workload
