#include "workload/workload_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "fixtures/imdb_fixture.h"
#include "indexing/term_index.h"
#include "storage/database.h"

namespace matcn::workload {
namespace {

struct EngineFixture {
  EngineFixture()
      : db(matcn::testing::MakeMiniImdb()), index(TermIndex::Build(db)) {}

  Result<WorkloadEngine> Build(WorkloadSpec spec) const {
    return WorkloadEngine::Build(db.schema(), index, spec);
  }

  Database db;
  TermIndex index;
};

TEST(WorkloadEngineTest, RejectsInvalidSpecs) {
  EngineFixture fx;
  WorkloadSpec spec;
  spec.zipf_theta = 1.0;
  EXPECT_FALSE(fx.Build(spec).ok());
  spec = WorkloadSpec{};
  spec.read_fraction = 1.5;
  EXPECT_FALSE(fx.Build(spec).ok());
  spec = WorkloadSpec{};
  spec.value_fraction = 0.8;
  spec.schema_fraction = 0.3;  // sums past 1
  EXPECT_FALSE(fx.Build(spec).ok());
  spec = WorkloadSpec{};
  spec.tenants = 0;
  EXPECT_FALSE(fx.Build(spec).ok());
  spec = WorkloadSpec{};
  spec.min_keywords = 3;
  spec.max_keywords = 2;
  EXPECT_FALSE(fx.Build(spec).ok());
  spec = WorkloadSpec{};
  spec.insert_relation = "NOPE";
  EXPECT_FALSE(fx.Build(spec).ok());
}

TEST(WorkloadEngineTest, SameSeedProducesByteIdenticalStream) {
  EngineFixture fx;
  WorkloadSpec spec;
  spec.seed = 1234;
  spec.read_fraction = 0.9;
  spec.tenants = 2;
  Result<WorkloadEngine> a = fx.Build(spec);
  Result<WorkloadEngine> b = fx.Build(spec);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok());
  const std::vector<Op> ops_a = a->Generate(500);
  const std::vector<Op> ops_b = b->Generate(500);
  ASSERT_EQ(ops_a.size(), ops_b.size());
  for (size_t i = 0; i < ops_a.size(); ++i) {
    EXPECT_EQ(SerializeOp(ops_a[i]), SerializeOp(ops_b[i])) << "op " << i;
  }
  EXPECT_EQ(HashOps(ops_a), HashOps(ops_b));
}

TEST(WorkloadEngineTest, DifferentSeedsProduceDifferentStreams) {
  EngineFixture fx;
  WorkloadSpec spec;
  spec.seed = 1;
  Result<WorkloadEngine> a = fx.Build(spec);
  spec.seed = 2;
  Result<WorkloadEngine> b = fx.Build(spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(HashOps(a->Generate(200)), HashOps(b->Generate(200)));
}

TEST(WorkloadEngineTest, ReadInsertRatioConverges) {
  EngineFixture fx;
  WorkloadSpec spec;
  spec.read_fraction = 0.8;
  spec.seed = 99;
  Result<WorkloadEngine> engine = fx.Build(spec);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  const size_t n = 5000;
  size_t queries = 0;
  for (const Op& op : engine->Generate(n)) {
    if (op.kind == Op::Kind::kQuery) ++queries;
  }
  EXPECT_NEAR(static_cast<double>(queries) / n, 0.8, 0.02);
}

TEST(WorkloadEngineTest, ReadFractionOneNeverInserts) {
  EngineFixture fx;
  WorkloadSpec spec;
  spec.read_fraction = 1.0;
  Result<WorkloadEngine> engine = fx.Build(spec);
  ASSERT_TRUE(engine.ok());
  for (const Op& op : engine->Generate(500)) {
    EXPECT_EQ(op.kind, Op::Kind::kQuery);
  }
}

TEST(WorkloadEngineTest, KeywordCountsRespectBoundsAndAreDistinct) {
  EngineFixture fx;
  WorkloadSpec spec;
  spec.min_keywords = 2;
  spec.max_keywords = 4;
  spec.read_fraction = 1.0;
  spec.seed = 5;
  Result<WorkloadEngine> engine = fx.Build(spec);
  ASSERT_TRUE(engine.ok());
  for (const Op& op : engine->Generate(1000)) {
    ASSERT_GE(op.keywords.size(), 2u);
    ASSERT_LE(op.keywords.size(), 4u);
    std::set<std::string> uniq(op.keywords.begin(), op.keywords.end());
    EXPECT_EQ(uniq.size(), op.keywords.size())
        << "duplicate keyword in " << SerializeOp(op);
    for (const std::string& kw : op.keywords) EXPECT_FALSE(kw.empty());
  }
}

TEST(WorkloadEngineTest, PureValueMixDrawsOnlyCatalogTerms) {
  EngineFixture fx;
  WorkloadSpec spec;
  spec.value_fraction = 1.0;
  spec.schema_fraction = 0.0;
  spec.read_fraction = 1.0;
  Result<WorkloadEngine> engine = fx.Build(spec);
  ASSERT_TRUE(engine.ok());
  std::set<std::string> catalog;
  for (size_t r = 0; r < engine->num_value_terms(0); ++r) {
    catalog.insert(engine->ValueTerm(0, r));
  }
  for (const Op& op : engine->Generate(500)) {
    for (const std::string& kw : op.keywords) {
      EXPECT_TRUE(catalog.count(kw)) << kw << " not a catalog term";
    }
  }
}

TEST(WorkloadEngineTest, PureSchemaMixDrawsOnlySchemaTerms) {
  EngineFixture fx;
  WorkloadSpec spec;
  spec.value_fraction = 0.0;
  spec.schema_fraction = 1.0;
  spec.read_fraction = 1.0;
  Result<WorkloadEngine> engine = fx.Build(spec);
  ASSERT_TRUE(engine.ok());
  // The schema pool is lowercased relation + attribute names.
  std::set<std::string> pool;
  const DatabaseSchema& schema = fx.db.schema();
  auto lower = [](std::string s) {
    for (char& c : s) c = static_cast<char>(std::tolower(c));
    return s;
  };
  for (size_t r = 0; r < schema.num_relations(); ++r) {
    const RelationSchema& rel = schema.relation(static_cast<RelationId>(r));
    pool.insert(lower(rel.name()));
    for (const Attribute& attr : rel.attributes()) pool.insert(lower(attr.name));
  }
  EXPECT_EQ(engine->num_schema_terms(), pool.size());
  for (const Op& op : engine->Generate(500)) {
    for (const std::string& kw : op.keywords) {
      EXPECT_TRUE(pool.count(kw)) << kw << " not a schema term";
    }
  }
}

TEST(WorkloadEngineTest, TenantsAreCoveredAndInsertIdSpacesDisjoint) {
  EngineFixture fx;
  WorkloadSpec spec;
  spec.tenants = 3;
  spec.read_fraction = 0.5;  // plenty of inserts
  spec.seed = 17;
  Result<WorkloadEngine> engine = fx.Build(spec);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  std::set<uint32_t> tenants_seen;
  std::set<int64_t> insert_ids;
  std::vector<std::set<int64_t>> per_tenant_ids(3);
  size_t inserts = 0;
  for (const Op& op : engine->Generate(3000)) {
    ASSERT_LT(op.tenant, 3u);
    tenants_seen.insert(op.tenant);
    if (op.kind != Op::Kind::kInsert) continue;
    ++inserts;
    // Every insert carries exactly one synthesized unique int id.
    int64_t id = -1;
    for (const OpValue& v : op.values) {
      if (v.is_int) id = v.int_value;
    }
    ASSERT_GE(id, 1'000'000'000);
    EXPECT_TRUE(insert_ids.insert(id).second) << "duplicate insert id " << id;
    per_tenant_ids[op.tenant].insert(id);
  }
  EXPECT_EQ(tenants_seen.size(), 3u);
  EXPECT_GT(inserts, 1000u);
  // Id ranges are disjoint by construction (1e9 + tenant * 1e7 + n).
  for (uint32_t t = 0; t < 3; ++t) {
    for (int64_t id : per_tenant_ids[t]) {
      EXPECT_EQ((id - 1'000'000'000) / 10'000'000, t);
    }
  }
  // Tenant catalogs are disjoint deals of the df-ordered term list.
  std::set<std::string> t0, t1;
  for (size_t r = 0; r < engine->num_value_terms(0); ++r) {
    t0.insert(engine->ValueTerm(0, r));
  }
  for (size_t r = 0; r < engine->num_value_terms(1); ++r) {
    t1.insert(engine->ValueTerm(1, r));
  }
  for (const std::string& term : t1) EXPECT_FALSE(t0.count(term));
}

TEST(WorkloadEngineTest, InsertsMatchRelationArityAndTypes) {
  EngineFixture fx;
  WorkloadSpec spec;
  spec.read_fraction = 0.0;  // all inserts
  spec.seed = 23;
  Result<WorkloadEngine> engine = fx.Build(spec);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  const DatabaseSchema& schema = fx.db.schema();
  for (const Op& op : engine->Generate(200)) {
    ASSERT_EQ(op.kind, Op::Kind::kInsert);
    ASSERT_FALSE(op.relation.empty());
    const auto rel_id = schema.RelationIdByName(op.relation);
    ASSERT_TRUE(rel_id.has_value());
    const std::vector<Attribute>& attrs = schema.relation(*rel_id).attributes();
    ASSERT_EQ(op.values.size(), attrs.size());
    for (size_t i = 0; i < attrs.size(); ++i) {
      EXPECT_EQ(op.values[i].is_int, attrs[i].type == ValueType::kInt);
      if (!op.values[i].is_int) EXPECT_FALSE(op.values[i].text.empty());
    }
  }
}

TEST(WorkloadEngineTest, UnscrambledSkewFavorsHighDfHead) {
  EngineFixture fx;
  WorkloadSpec spec;
  spec.scramble = false;
  spec.zipf_theta = 0.99;
  spec.read_fraction = 1.0;
  spec.value_fraction = 1.0;
  spec.schema_fraction = 0.0;
  spec.min_keywords = 1;
  spec.max_keywords = 1;
  spec.seed = 29;
  Result<WorkloadEngine> engine = fx.Build(spec);
  ASSERT_TRUE(engine.ok());
  const std::string head = engine->ValueTerm(0, 0);  // highest-df term
  size_t head_hits = 0;
  const size_t n = 2000;
  for (const Op& op : engine->Generate(n)) {
    if (op.keywords.size() == 1 && op.keywords[0] == head) ++head_hits;
  }
  // Under theta=0.99 without scrambling, rank 0 carries by far the most
  // mass — far above the uniform share.
  EXPECT_GT(head_hits, n / engine->num_value_terms(0));
  EXPECT_GT(head_hits, n / 10);
}

TEST(WorkloadEngineTest, SerializeOpIsCanonical) {
  Op q;
  q.kind = Op::Kind::kQuery;
  q.tenant = 2;
  q.keywords = {"denzel", "gangster"};
  EXPECT_EQ(SerializeOp(q), "Q t=2 kw=denzel,gangster");
  Op ins;
  ins.kind = Op::Kind::kInsert;
  ins.tenant = 0;
  ins.relation = "PER";
  OpValue id;
  id.is_int = true;
  id.int_value = 1000000001;
  OpValue name;
  name.text = "ld0x1 denzel";
  ins.values = {id, name};
  EXPECT_EQ(SerializeOp(ins), "I t=0 rel=PER vals=i:1000000001|t:ld0x1 denzel");
  EXPECT_NE(HashOps({q}), HashOps({ins}));
  EXPECT_NE(HashOps({q, ins}), HashOps({ins, q}));
}

TEST(WorkloadEngineTest, MaxCatalogTermsBoundsTheCatalog) {
  EngineFixture fx;
  WorkloadSpec spec;
  spec.max_catalog_terms = 5;
  spec.read_fraction = 1.0;
  Result<WorkloadEngine> engine = fx.Build(spec);
  ASSERT_TRUE(engine.ok());
  EXPECT_LE(engine->num_value_terms(0), 5u);
}

}  // namespace
}  // namespace matcn::workload
