#include "workload/serve_report.h"

#include <gtest/gtest.h>

#include <string>

namespace matcn::workload {
namespace {

ServeBenchReport MakeReport() {
  ServeBenchReport report;
  report.dataset = "imdb";
  report.scale = 0.25;
  report.seed = 11;
  report.connections = 4;
  report.server_threads = 2;
  report.read_fraction = 0.95;
  report.zipf_theta = 0.99;
  report.scramble = true;
  report.tenants = 2;
  report.saturation_qps = 300;

  PhaseResult phase;
  phase.offered_qps = 300;
  phase.achieved_qps = 297.5;
  phase.duration_s = 5.0;
  phase.arrival = "poisson";
  phase.completed = 1400;
  phase.rejected = 3;
  phase.deadline = 1;
  phase.errors = 0;
  phase.p50_ms = 1.2;
  phase.p95_ms = 4.5;
  phase.p99_ms = 9.1;
  phase.p999_ms = 20.7;
  phase.max_ms = 31.0;
  phase.cache_hit_rate = 0.4;
  phase.degraded_fraction = 0.01;
  phase.reject_rate = 0.002;
  phase.inserts = 70;
  phase.insert_qps = 14;
  phase.insert_p99_ms = 2.2;
  phase.index_version_start = 10;
  phase.index_version_end = 80;
  phase.ops_hash = 0xdeadbeefcafef00dull;
  phase.saturated = false;
  report.phases.push_back(phase);
  phase.offered_qps = 600;
  phase.achieved_qps = 430;
  phase.saturated = true;
  report.phases.push_back(phase);
  return report;
}

TEST(ServeReportTest, ToJsonRoundTripsThroughValidator) {
  const std::string json = MakeReport().ToJson();
  std::string error;
  EXPECT_TRUE(ValidateBenchServeJson(json, &error)) << error;
  // Spot-check load-bearing fields made it into the text.
  EXPECT_NE(json.find("\"bench\": \"serve\""), std::string::npos);
  EXPECT_NE(json.find("\"saturation_qps\": 300"), std::string::npos);
  EXPECT_NE(json.find("\"arrival\": \"poisson\""), std::string::npos);
  EXPECT_NE(json.find("\"ops_hash\": 16045690984503111693"),
            std::string::npos);
  EXPECT_NE(json.find("\"saturated\": true"), std::string::npos);
}

TEST(ServeReportTest, RejectsTruncatedJson) {
  const std::string json = MakeReport().ToJson();
  std::string error;
  EXPECT_FALSE(
      ValidateBenchServeJson(json.substr(0, json.size() / 2), &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(ValidateBenchServeJson("", &error));
  EXPECT_FALSE(ValidateBenchServeJson("not json at all", &error));
  EXPECT_FALSE(ValidateBenchServeJson("[1, 2, 3]", &error));
}

TEST(ServeReportTest, RejectsWrongBenchTag) {
  std::string json = MakeReport().ToJson();
  const size_t pos = json.find("\"serve\"");
  ASSERT_NE(pos, std::string::npos);
  json.replace(pos, 7, "\"index\"");
  std::string error;
  EXPECT_FALSE(ValidateBenchServeJson(json, &error));
}

TEST(ServeReportTest, RejectsMissingHeaderField) {
  std::string json = MakeReport().ToJson();
  const size_t pos = json.find("\"read_fraction\"");
  ASSERT_NE(pos, std::string::npos);
  json.replace(pos, 15, "\"read_fractixn\"");
  std::string error;
  EXPECT_FALSE(ValidateBenchServeJson(json, &error));
  EXPECT_NE(error.find("read_fraction"), std::string::npos) << error;
}

TEST(ServeReportTest, RejectsMissingPhaseField) {
  std::string json = MakeReport().ToJson();
  // Break p999_ms in the *second* phase: the validator must check every
  // phase, not just the first.
  const size_t first = json.find("\"p999_ms\"");
  ASSERT_NE(first, std::string::npos);
  const size_t second = json.find("\"p999_ms\"", first + 1);
  ASSERT_NE(second, std::string::npos);
  json.replace(second, 9, "\"p999_xx\"");
  std::string error;
  EXPECT_FALSE(ValidateBenchServeJson(json, &error));
  EXPECT_NE(error.find("p999_ms"), std::string::npos) << error;
}

TEST(ServeReportTest, RejectsNonNumericField) {
  std::string json = MakeReport().ToJson();
  const size_t pos = json.find("\"scale\": 0.25");
  ASSERT_NE(pos, std::string::npos);
  json.replace(pos, 13, "\"scale\": \"xl\"");
  std::string error;
  EXPECT_FALSE(ValidateBenchServeJson(json, &error));
}

TEST(ServeReportTest, RejectsEmptyPhases) {
  ServeBenchReport report = MakeReport();
  report.phases.clear();
  std::string error;
  EXPECT_FALSE(ValidateBenchServeJson(report.ToJson(), &error));
  EXPECT_NE(error.find("phase"), std::string::npos) << error;
}

TEST(ServeReportTest, RejectsZeroCompletedQueries) {
  ServeBenchReport report = MakeReport();
  for (PhaseResult& phase : report.phases) phase.completed = 0;
  std::string error;
  EXPECT_FALSE(ValidateBenchServeJson(report.ToJson(), &error));
  EXPECT_NE(error.find("completed"), std::string::npos) << error;
}

TEST(ServeReportTest, LargeOpsHashSurvivesRoundTrip) {
  // ops_hash uses the full uint64 range; the emitter must not clip it
  // through a double.
  ServeBenchReport report = MakeReport();
  report.phases[0].ops_hash = 18446744073709551615ull;  // UINT64_MAX
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("18446744073709551615"), std::string::npos);
  std::string error;
  EXPECT_TRUE(ValidateBenchServeJson(json, &error)) << error;
}

}  // namespace
}  // namespace matcn::workload
