#include "workload/arrival.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace matcn::workload {
namespace {

TEST(ArrivalTest, ParseAndNameRoundTrip) {
  ArrivalKind kind;
  ASSERT_TRUE(ParseArrivalKind("closed", &kind));
  EXPECT_EQ(kind, ArrivalKind::kClosed);
  ASSERT_TRUE(ParseArrivalKind("poisson", &kind));
  EXPECT_EQ(kind, ArrivalKind::kOpenPoisson);
  ASSERT_TRUE(ParseArrivalKind("uniform", &kind));
  EXPECT_EQ(kind, ArrivalKind::kOpenUniform);
  EXPECT_FALSE(ParseArrivalKind("bursty", &kind));
  EXPECT_FALSE(ParseArrivalKind("", &kind));
  EXPECT_STREQ(ArrivalKindName(ArrivalKind::kClosed), "closed");
  EXPECT_STREQ(ArrivalKindName(ArrivalKind::kOpenPoisson), "poisson");
  EXPECT_STREQ(ArrivalKindName(ArrivalKind::kOpenUniform), "uniform");
}

TEST(ArrivalTest, ClosedScheduleIsAllZeros) {
  const std::vector<int64_t> offsets =
      ArrivalOffsetsUs(ArrivalKind::kClosed, 0, 100, 1);
  ASSERT_EQ(offsets.size(), 100u);
  for (int64_t off : offsets) EXPECT_EQ(off, 0);
}

TEST(ArrivalTest, UniformScheduleIsExactMetronome) {
  const std::vector<int64_t> offsets =
      ArrivalOffsetsUs(ArrivalKind::kOpenUniform, 1000.0, 50, 1);
  ASSERT_EQ(offsets.size(), 50u);
  for (size_t i = 0; i < offsets.size(); ++i) {
    EXPECT_EQ(offsets[i], static_cast<int64_t>(i * 1000)) << "op " << i;
  }
}

TEST(ArrivalTest, PoissonMeanGapMatchesTargetRate) {
  const double qps = 500.0;
  const size_t count = 20000;
  const std::vector<int64_t> offsets =
      ArrivalOffsetsUs(ArrivalKind::kOpenPoisson, qps, count, 7);
  ASSERT_EQ(offsets.size(), count);
  // Nondecreasing, starting at/after zero.
  EXPECT_GE(offsets.front(), 0);
  for (size_t i = 1; i < count; ++i) ASSERT_GE(offsets[i], offsets[i - 1]);
  // Mean inter-arrival gap over 20k exponential draws converges to
  // 1/qps within a few percent for a fixed seed.
  const double mean_gap_us =
      static_cast<double>(offsets.back() - offsets.front()) / (count - 1);
  EXPECT_NEAR(mean_gap_us, 1e6 / qps, 0.05 * 1e6 / qps);
}

TEST(ArrivalTest, PoissonGapsAreActuallyVariable) {
  const std::vector<int64_t> offsets =
      ArrivalOffsetsUs(ArrivalKind::kOpenPoisson, 100.0, 1000, 7);
  int64_t min_gap = INT64_MAX, max_gap = 0;
  for (size_t i = 1; i < offsets.size(); ++i) {
    const int64_t gap = offsets[i] - offsets[i - 1];
    min_gap = std::min(min_gap, gap);
    max_gap = std::max(max_gap, gap);
  }
  // An exponential stream at 100 qps (mean gap 10ms) has both sub-ms
  // bursts and multi-mean gaps; a metronome would have min == max.
  EXPECT_LT(min_gap, 2000);
  EXPECT_GT(max_gap, 20000);
}

TEST(ArrivalTest, PoissonScheduleIsSeedDeterministic) {
  const std::vector<int64_t> a =
      ArrivalOffsetsUs(ArrivalKind::kOpenPoisson, 250.0, 500, 42);
  const std::vector<int64_t> b =
      ArrivalOffsetsUs(ArrivalKind::kOpenPoisson, 250.0, 500, 42);
  const std::vector<int64_t> c =
      ArrivalOffsetsUs(ArrivalKind::kOpenPoisson, 250.0, 500, 43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(ArrivalTest, EmptyCountYieldsEmptySchedule) {
  EXPECT_TRUE(ArrivalOffsetsUs(ArrivalKind::kOpenPoisson, 100.0, 0, 1).empty());
  EXPECT_TRUE(ArrivalOffsetsUs(ArrivalKind::kClosed, 0, 0, 1).empty());
}

}  // namespace
}  // namespace matcn::workload
