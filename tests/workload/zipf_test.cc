#include "workload/zipf.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

namespace matcn::workload {
namespace {

TEST(Rng64Test, SameSeedSameStream) {
  Rng64 a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng64Test, DifferentSeedsDiverge) {
  Rng64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng64Test, NextDoubleInUnitInterval) {
  Rng64 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng64Test, NextBoundedStaysInRangeAndCoversIt) {
  Rng64 rng(9);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.NextBounded(10);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  for (int c : counts) EXPECT_GT(c, 0);
}

TEST(Rng64Test, BernoulliConvergesToP) {
  Rng64 rng(11);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(ZipfianGeneratorTest, ThetaZeroIsUniform) {
  const size_t n = 50;
  ZipfianGenerator gen(n, 0.0);
  Rng64 rng(21);
  std::vector<int> counts(n, 0);
  const int samples = 100000;
  for (int i = 0; i < samples; ++i) ++counts[gen.Sample(rng)];
  const double expected = static_cast<double>(samples) / n;
  for (size_t i = 0; i < n; ++i) {
    // 5-sigma band around the binomial expectation.
    EXPECT_NEAR(counts[i], expected, 5 * std::sqrt(expected))
        << "item " << i;
  }
}

TEST(ZipfianGeneratorTest, RankFrequenciesMatchRankProbability) {
  // Observed rank counts against the analytic 1/(r+1)^theta / zeta(n)
  // probabilities the generator reports. The Gray et al. sampler is an
  // approximation: ranks 0 and 1 are sampled exactly, the tail via the
  // continuous power-law inverse CDF, which deviates from the exact pmf
  // by up to ~15% at rank 2 and shrinks down the tail — so the test uses
  // per-rank relative tolerances, not a strict chi-square.
  const size_t n = 100;
  const double theta = 0.99;
  ZipfianGenerator gen(n, theta, /*scramble=*/false);
  Rng64 rng(31);
  std::vector<uint64_t> counts(n, 0);
  const uint64_t samples = 400000;
  for (uint64_t i = 0; i < samples; ++i) ++counts[gen.Sample(rng)];

  double total_p = 0;
  for (size_t r = 0; r < n; ++r) {
    const double p = gen.RankProbability(r);
    EXPECT_GT(p, 0.0);
    total_p += p;
    const double expected = p * static_cast<double>(samples);
    const double observed = static_cast<double>(counts[r]);
    // Exact branch for the two hottest ranks, approximation band below.
    const double tolerance = r < 2 ? 0.04 : 0.20;
    EXPECT_NEAR(observed, expected, expected * tolerance + 30)
        << "rank " << r;
  }
  // The reported probabilities are a distribution.
  EXPECT_NEAR(total_p, 1.0, 1e-9);
  // Head dominance: rank 0 beats rank 10 beats rank 50.
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[50]);
}

TEST(ZipfianGeneratorTest, UnscrambledItemIsRank) {
  ZipfianGenerator gen(64, 0.9, /*scramble=*/false);
  for (size_t r = 0; r < 64; ++r) EXPECT_EQ(gen.ItemForRank(r), r);
}

TEST(ZipfianGeneratorTest, ScrambleDecorrelatesItemIdFromPopularity) {
  // With scrambling, hot items should be spread across the id space, so
  // the sample-weighted mean item id sits near n/2; unscrambled, the
  // mass clusters at the low ids.
  const size_t n = 1000;
  const int samples = 200000;
  auto weighted_mean_id = [&](bool scramble, uint64_t seed) {
    ZipfianGenerator gen(n, 0.99, scramble);
    Rng64 rng(seed);
    double sum = 0;
    for (int i = 0; i < samples; ++i) sum += static_cast<double>(gen.Sample(rng));
    return sum / samples;
  };
  const double plain = weighted_mean_id(false, 41);
  const double scrambled = weighted_mean_id(true, 41);
  EXPECT_LT(plain, 0.25 * n);             // head-heavy
  EXPECT_GT(scrambled, 0.35 * n);         // spread out
  EXPECT_LT(scrambled, 0.65 * n);
}

TEST(ZipfianGeneratorTest, ScrambledSamplesStayInRange) {
  const size_t n = 37;  // not a power of two: exercises the mod
  ZipfianGenerator gen(n, 0.8, /*scramble=*/true);
  Rng64 rng(55);
  for (int i = 0; i < 10000; ++i) ASSERT_LT(gen.Sample(rng), n);
}

TEST(ZipfianGeneratorTest, SameSeedSameSamples) {
  ZipfianGenerator gen(128, 0.95, /*scramble=*/true);
  Rng64 a(77), b(77);
  for (int i = 0; i < 5000; ++i) EXPECT_EQ(gen.Sample(a), gen.Sample(b));
}

TEST(ZipfianGeneratorTest, SingleItemAlwaysSampled) {
  ZipfianGenerator gen(1, 0.99, /*scramble=*/true);
  Rng64 rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(gen.Sample(rng), 0u);
}

TEST(FnvHash64Test, IsDeterministicAndSpreads) {
  EXPECT_EQ(FnvHash64(42), FnvHash64(42));
  EXPECT_NE(FnvHash64(1), FnvHash64(2));
  EXPECT_NE(FnvHash64(0), 0u);
}

}  // namespace
}  // namespace matcn::workload
