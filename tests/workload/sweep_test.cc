// Auto-sweep termination predicate: saturation by throughput shortfall,
// by reject rate, and — the bug class EvaluateKnee exists to prevent —
// never on degenerate, closed-loop, or window-mismatched phases.

#include "workload/sweep.h"

#include <gtest/gtest.h>

namespace matcn::workload {
namespace {

KneeInputs HealthyPhase() {
  KneeInputs inputs;
  inputs.open_loop = true;
  inputs.issued = 1000;
  inputs.completed_ok = 990;
  inputs.queries = 950;
  inputs.rejected = 0;
  inputs.wall_seconds = 10.0;
  inputs.schedule_seconds = 10.0;
  return inputs;
}

TEST(EvaluateKneeTest, HealthyPhaseIsNotSaturated) {
  const KneeVerdict verdict = EvaluateKnee(HealthyPhase(), {});
  EXPECT_FALSE(verdict.saturated);
  EXPECT_DOUBLE_EQ(verdict.achieved_qps, 99.0);
  EXPECT_DOUBLE_EQ(verdict.realized_offered_qps, 100.0);
  EXPECT_DOUBLE_EQ(verdict.reject_rate, 0.0);
}

TEST(EvaluateKneeTest, ThroughputShortfallSaturates) {
  KneeInputs inputs = HealthyPhase();
  inputs.completed_ok = 900;  // 90 qps vs 100 offered, below 0.95
  const KneeVerdict verdict = EvaluateKnee(inputs, {});
  EXPECT_TRUE(verdict.saturated);
}

TEST(EvaluateKneeTest, KneeFractionBoundaryIsExclusive) {
  // achieved == fraction * offered exactly: not saturated (strict <).
  KneeInputs inputs = HealthyPhase();
  inputs.completed_ok = 950;
  KneeConfig config;
  config.knee_fraction = 0.95;
  EXPECT_FALSE(EvaluateKnee(inputs, config).saturated);
}

TEST(EvaluateKneeTest, RejectRateSaturatesEvenAtFullThroughput) {
  KneeInputs inputs = HealthyPhase();
  inputs.rejected = 95;  // 10% of 950 queries
  inputs.queries = 950;
  const KneeVerdict verdict = EvaluateKnee(inputs, {});
  EXPECT_TRUE(verdict.saturated);
  EXPECT_DOUBLE_EQ(verdict.reject_rate, 0.1);
}

TEST(EvaluateKneeTest, RejectKneeBoundaryIsExclusive) {
  KneeInputs inputs = HealthyPhase();
  inputs.queries = 1000;
  inputs.rejected = 50;  // exactly 5%
  KneeConfig config;
  config.knee_reject = 0.05;
  EXPECT_FALSE(EvaluateKnee(inputs, config).saturated);
}

TEST(EvaluateKneeTest, ClosedLoopNeverSaturates) {
  KneeInputs inputs = HealthyPhase();
  inputs.open_loop = false;
  inputs.completed_ok = 1;  // catastrophic throughput, still not saturated
  inputs.rejected = 900;
  EXPECT_FALSE(EvaluateKnee(inputs, {}).saturated);
}

TEST(EvaluateKneeTest, DegeneratePhasesNeverSaturate) {
  {
    KneeInputs inputs = HealthyPhase();
    inputs.issued = 0;
    inputs.completed_ok = 0;
    inputs.queries = 0;
    EXPECT_FALSE(EvaluateKnee(inputs, {}).saturated);
  }
  {
    KneeInputs inputs = HealthyPhase();
    inputs.wall_seconds = 0;
    EXPECT_FALSE(EvaluateKnee(inputs, {}).saturated);
  }
  {
    KneeInputs inputs = HealthyPhase();
    inputs.schedule_seconds = 0;
    EXPECT_FALSE(EvaluateKnee(inputs, {}).saturated);
  }
}

TEST(EvaluateKneeTest, ScheduleSpanIsClampedToWall) {
  // The per-phase inconsistency the refactor fixed: a schedule span
  // longer than the wall window dilutes the offered rate and can hide a
  // saturated phase. 900 completions over 10 s against 1000 issued —
  // judged over the true 10 s window that is 90 vs 100 qps (saturated);
  // judged over a stale 20 s schedule span it would be 90 vs 50 qps and
  // the knee would never fire.
  KneeInputs inputs = HealthyPhase();
  inputs.completed_ok = 900;
  inputs.schedule_seconds = 20.0;
  const KneeVerdict verdict = EvaluateKnee(inputs, {});
  EXPECT_DOUBLE_EQ(verdict.realized_offered_qps, 100.0);
  EXPECT_TRUE(verdict.saturated);
}

TEST(EvaluateKneeTest, ShortScheduleRaisesOfferedRate) {
  // A Poisson draw that packed all arrivals into the first 8 s offered
  // 125 qps, not 100 — the predicate must judge against the realized
  // rate, not the nominal one.
  KneeInputs inputs = HealthyPhase();
  inputs.schedule_seconds = 8.0;
  const KneeVerdict verdict = EvaluateKnee(inputs, {});
  EXPECT_DOUBLE_EQ(verdict.realized_offered_qps, 125.0);
  EXPECT_TRUE(verdict.saturated);  // 99 < 0.95 * 125
}

}  // namespace
}  // namespace matcn::workload
