// Data graph construction, BANKS, Bidirectional, and DPBF.

#include <gtest/gtest.h>

#include <set>

#include "datagraph/banks.h"
#include "datagraph/data_graph.h"
#include "datagraph/dpbf.h"
#include "fixtures/imdb_fixture.h"
#include "indexing/term_index.h"

namespace matcn {
namespace {

class DataGraphTest : public ::testing::Test {
 protected:
  DataGraphTest()
      : db_(testing::MakeMiniImdb()),
        schema_graph_(SchemaGraph::Build(db_.schema())),
        graph_(DataGraph::Build(db_, schema_graph_)),
        index_(TermIndex::Build(db_)) {}

  KeywordQuery Query(const std::string& text) {
    auto q = KeywordQuery::Parse(text);
    EXPECT_TRUE(q.ok());
    return *q;
  }

  Database db_;
  SchemaGraph schema_graph_;
  DataGraph graph_;
  TermIndex index_;
};

TEST_F(DataGraphTest, OneNodePerTuple) {
  EXPECT_EQ(graph_.num_nodes(), db_.TotalTuples());
}

TEST_F(DataGraphTest, NodeTupleRoundTrip) {
  for (RelationId r = 0; r < db_.num_relations(); ++r) {
    for (uint64_t row = 0; row < db_.relation(r).num_tuples(); ++row) {
      const TupleId id(r, row);
      EXPECT_EQ(graph_.TupleOf(graph_.NodeOf(id)), id);
    }
  }
}

TEST_F(DataGraphTest, EdgesFollowForeignKeyValues) {
  // CAST row 0 references MOV 1, PER 1, CHAR 1, ROLE 2 -> degree 4.
  const RelationId cast = *db_.schema().RelationIdByName("CAST");
  EXPECT_EQ(graph_.Degree(graph_.NodeOf(TupleId(cast, 0))), 4u);
  // Each edge endpoint reciprocates.
  for (uint32_t v = 0; v < graph_.num_nodes(); ++v) {
    for (uint32_t u : graph_.Neighbors(v)) {
      const auto& back = graph_.Neighbors(u);
      EXPECT_TRUE(std::find(back.begin(), back.end(), v) != back.end());
    }
  }
}

TEST_F(DataGraphTest, DanglingForeignKeysProduceNoEdge) {
  Database db;
  ASSERT_TRUE(db.CreateRelation(RelationSchema(
                                    "A", {{"id", ValueType::kInt, true, false},
                                          {"b_id", ValueType::kInt, false,
                                           false}}))
                  .ok());
  ASSERT_TRUE(db.CreateRelation(
                    RelationSchema("B", {{"id", ValueType::kInt, true, false}}))
                  .ok());
  ASSERT_TRUE(db.AddForeignKey({"A", "b_id", "B", "id"}).ok());
  ASSERT_TRUE(db.Insert("A", {Value(int64_t{1}), Value(int64_t{77})}).ok());
  ASSERT_TRUE(db.Insert("B", {Value(int64_t{1})}).ok());
  SchemaGraph sg = SchemaGraph::Build(db.schema());
  DataGraph g = DataGraph::Build(db, sg);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST_F(DataGraphTest, BanksFindsTheIntendedConnection) {
  std::vector<Jnt> results =
      BanksSearch(graph_, index_, Query("denzel washington gangster"));
  ASSERT_FALSE(results.empty());
  // Answers sorted by score; the best should be small (tight tree).
  EXPECT_LE(results[0].tuples.size(), 3u);
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i - 1].score, results[i].score);
  }
}

TEST_F(DataGraphTest, BanksAnswersContainAllKeywords) {
  const KeywordQuery q = Query("denzel gangster");
  for (const Jnt& jnt : BanksSearch(graph_, index_, q)) {
    // Union of tuple texts must hold every keyword: verify via tuple sets
    // of the index.
    for (size_t k = 0; k < q.size(); ++k) {
      bool covered = false;
      std::vector<TupleId> holders = index_.TuplesFor(q.keyword(k));
      for (const TupleId& id : jnt.tuples) {
        if (std::find(holders.begin(), holders.end(), id) != holders.end()) {
          covered = true;
        }
      }
      EXPECT_TRUE(covered) << q.keyword(k);
    }
  }
}

TEST_F(DataGraphTest, BanksMissingKeywordYieldsNothing) {
  EXPECT_TRUE(BanksSearch(graph_, index_, Query("gangster zzz")).empty());
}

TEST_F(DataGraphTest, BidirectionalPenalizesHubs) {
  const KeywordQuery q = Query("denzel gangster");
  std::vector<Jnt> banks = BanksSearch(graph_, index_, q);
  std::vector<Jnt> bidir = BidirectionalSearch(graph_, index_, q);
  ASSERT_FALSE(banks.empty());
  ASSERT_FALSE(bidir.empty());
  // Same answer space, possibly different order.
  std::set<std::string> banks_keys, bidir_keys;
  for (const Jnt& j : banks) banks_keys.insert(JntKey(j));
  for (const Jnt& j : bidir) bidir_keys.insert(JntKey(j));
  EXPECT_FALSE(bidir_keys.empty());
}

TEST_F(DataGraphTest, DpbfTopAnswerIsMinimal) {
  const KeywordQuery q = Query("denzel washington gangster");
  std::vector<Jnt> results = DpbfSearch(graph_, index_, q);
  ASSERT_FALSE(results.empty());
  // There is a single tuple covering {d,w}+... the best tree: CAST note
  // "denzel stunt double gangster sequence" covers d+g but not w; minimum
  // group Steiner tree weight here is small. Just assert minimality vs
  // BANKS: DPBF's top answer is never larger than BANKS's.
  std::vector<Jnt> banks = BanksSearch(graph_, index_, q);
  ASSERT_FALSE(banks.empty());
  EXPECT_LE(results[0].tuples.size(), banks[0].tuples.size());
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i - 1].score, results[i].score);
  }
}

TEST_F(DataGraphTest, DpbfSingleKeyword) {
  std::vector<Jnt> results = DpbfSearch(graph_, index_, Query("gangster"));
  ASSERT_FALSE(results.empty());
  // Single-keyword answers are single tuples with cost 0 -> score 1.
  EXPECT_EQ(results[0].tuples.size(), 1u);
  EXPECT_DOUBLE_EQ(results[0].score, 1.0);
}

TEST_F(DataGraphTest, DpbfMissingKeywordYieldsNothing) {
  EXPECT_TRUE(DpbfSearch(graph_, index_, Query("qqq gangster")).empty());
}

TEST_F(DataGraphTest, TopKRespected) {
  DataGraphSearchOptions options;
  options.top_k = 2;
  EXPECT_LE(BanksSearch(graph_, index_, Query("gangster"), options).size(),
            2u);
  EXPECT_LE(DpbfSearch(graph_, index_, Query("gangster"), options).size(),
            2u);
}

}  // namespace
}  // namespace matcn
