// Workload generation and golden standards.

#include "datasets/workload.h"

#include <gtest/gtest.h>

#include "datasets/generators.h"
#include "graph/schema_graph.h"

namespace matcn {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  WorkloadTest()
      : db_(MakeImdb(42, 0.05)),
        schema_graph_(SchemaGraph::Build(db_.schema())),
        index_(TermIndex::Build(db_)),
        gen_(&db_, &schema_graph_, &index_) {}

  Database db_;
  SchemaGraph schema_graph_;
  TermIndex index_;
  WorkloadGenerator gen_;
};

TEST_F(WorkloadTest, GeneratesRequestedCount) {
  WorkloadOptions options;
  options.num_queries = 10;
  std::vector<WorkloadQuery> queries = gen_.Generate(options);
  EXPECT_EQ(queries.size(), 10u);
}

TEST_F(WorkloadTest, EveryQueryHasANonEmptyGolden) {
  WorkloadOptions options;
  options.num_queries = 8;
  for (const WorkloadQuery& wq : gen_.Generate(options)) {
    EXPECT_FALSE(wq.golden.empty()) << wq.id;
    EXPECT_EQ(wq.num_relevant, wq.golden.size());
    EXPECT_GE(wq.query.size(), 1u);
    EXPECT_LE(wq.query.size(), 4u);
  }
}

TEST_F(WorkloadTest, DeterministicForSameSeed) {
  WorkloadOptions options;
  options.num_queries = 6;
  std::vector<WorkloadQuery> a = gen_.Generate(options);
  std::vector<WorkloadQuery> b = gen_.Generate(options);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].query.keywords(), b[i].query.keywords());
    EXPECT_EQ(a[i].golden, b[i].golden);
  }
}

TEST_F(WorkloadTest, StylesShapeKeywordCounts) {
  WorkloadOptions cw;
  cw.style = QueryStyle::kCoffmanWeaver;
  cw.num_queries = 15;
  WorkloadOptions inex;
  inex.style = QueryStyle::kInex;
  inex.num_queries = 15;
  inex.seed = 8;
  double cw_avg = 0, inex_avg = 0;
  for (const WorkloadQuery& wq : gen_.Generate(cw)) {
    cw_avg += static_cast<double>(wq.query.size());
  }
  for (const WorkloadQuery& wq : gen_.Generate(inex)) {
    inex_avg += static_cast<double>(wq.query.size());
  }
  cw_avg /= 15;
  inex_avg /= 15;
  EXPECT_GE(cw_avg, 1.0);
  EXPECT_LE(cw_avg, 3.0);
  // INEX requests 2-4 keywords; a few queries fall short when the
  // sampled tuple has little text, so the average sits near 2.
  EXPECT_GE(inex_avg, 1.5);
}

TEST_F(WorkloadTest, GoldenIsTheMinimumSizeAnswerSet) {
  // For the planted pair, golden contains a 2-tuple answer, never larger.
  auto q = KeywordQuery::Parse("denzel gangster");
  ASSERT_TRUE(q.ok());
  size_t num_relevant = 0;
  GoldenStandard golden = gen_.ComputeGolden(*q, 3, &num_relevant);
  EXPECT_FALSE(golden.empty());
  EXPECT_EQ(num_relevant, golden.size());
}

TEST_F(WorkloadTest, UnanswerableQueryHasEmptyGolden) {
  auto q = KeywordQuery::Parse("zzz111 yyy222");
  ASSERT_TRUE(q.ok());
  size_t num_relevant = 7;
  GoldenStandard golden = gen_.ComputeGolden(*q, 3, &num_relevant);
  EXPECT_TRUE(golden.empty());
  EXPECT_EQ(num_relevant, 0u);
}

TEST_F(WorkloadTest, RandomQueriesHaveExactKeywordCount) {
  for (size_t k : {1u, 3u, 7u}) {
    std::vector<KeywordQuery> queries = gen_.RandomQueries(12, k, 99);
    EXPECT_EQ(queries.size(), 12u);
    for (const KeywordQuery& q : queries) EXPECT_EQ(q.size(), k);
  }
}

TEST_F(WorkloadTest, RandomQueriesUseIndexedTerms) {
  for (const KeywordQuery& q : gen_.RandomQueries(5, 2, 3)) {
    for (const std::string& kw : q.keywords()) {
      EXPECT_GE(index_.DocumentFrequency(kw), 1u) << kw;
    }
  }
}

}  // namespace
}  // namespace matcn
