// Synthetic dataset generators: schema shapes, determinism, integrity.

#include "datasets/generators.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "datasets/vocab.h"
#include "graph/schema_graph.h"
#include "indexing/term_index.h"

namespace matcn {
namespace {

constexpr double kTinyScale = 0.05;

TEST(VocabTest, PoolsAreNonEmptyAndDeterministic) {
  EXPECT_GE(Vocab::FirstNames().size(), 40u);
  EXPECT_GE(Vocab::LastNames().size(), 40u);
  Rng a(5), b(5);
  EXPECT_EQ(Vocab::PersonName(a), Vocab::PersonName(b));
}

TEST(VocabTest, ZipfTextHasRequestedWordCount) {
  Rng rng(9);
  const std::string text = Vocab::ZipfText(rng, 6);
  EXPECT_EQ(std::count(text.begin(), text.end(), ' '), 5);
}

struct DatasetCase {
  const char* name;
  Database (*make)(uint64_t, double);
  size_t relations;
  size_t rics;
};

class GeneratorSweep : public ::testing::TestWithParam<DatasetCase> {};

TEST_P(GeneratorSweep, SchemaShapeMatchesTable2) {
  const DatasetCase& c = GetParam();
  Database db = c.make(1, kTinyScale);
  EXPECT_EQ(db.num_relations(), c.relations) << c.name;
  EXPECT_EQ(db.schema().foreign_keys().size(), c.rics) << c.name;
  EXPECT_GT(db.TotalTuples(), 0u);
}

TEST_P(GeneratorSweep, DeterministicForSameSeed) {
  const DatasetCase& c = GetParam();
  Database a = c.make(77, kTinyScale);
  Database b = c.make(77, kTinyScale);
  ASSERT_EQ(a.TotalTuples(), b.TotalTuples());
  for (RelationId r = 0; r < a.num_relations(); ++r) {
    ASSERT_EQ(a.relation(r).num_tuples(), b.relation(r).num_tuples());
    for (uint64_t row = 0; row < a.relation(r).num_tuples(); ++row) {
      ASSERT_EQ(a.relation(r).tuple(row), b.relation(r).tuple(row));
    }
  }
}

TEST_P(GeneratorSweep, ScaleGrowsData) {
  const DatasetCase& c = GetParam();
  Database small = c.make(1, kTinyScale);
  Database large = c.make(1, kTinyScale * 4);
  EXPECT_GT(large.TotalTuples(), small.TotalTuples());
}

TEST_P(GeneratorSweep, ReferentialIntegrityHolds) {
  const DatasetCase& c = GetParam();
  Database db = c.make(1, kTinyScale);
  for (const ForeignKey& fk : db.schema().foreign_keys()) {
    const RelationId from = *db.schema().RelationIdByName(fk.from_relation);
    const RelationId to = *db.schema().RelationIdByName(fk.to_relation);
    const size_t from_attr =
        *db.relation(from).schema().AttributeIndex(fk.from_attribute);
    const size_t to_attr =
        *db.relation(to).schema().AttributeIndex(fk.to_attribute);
    std::unordered_set<int64_t> keys;
    for (const Tuple& t : db.relation(to).rows()) {
      keys.insert(t[to_attr].AsInt());
    }
    for (const Tuple& t : db.relation(from).rows()) {
      EXPECT_TRUE(keys.contains(t[from_attr].AsInt()))
          << c.name << ": dangling " << fk.from_relation << "."
          << fk.from_attribute;
    }
  }
}

TEST_P(GeneratorSweep, HasSearchableText) {
  const DatasetCase& c = GetParam();
  Database db = c.make(1, kTinyScale);
  TermIndex index = TermIndex::Build(db);
  EXPECT_GT(index.num_terms(), 20u) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, GeneratorSweep,
    ::testing::Values(DatasetCase{"IMDb", MakeImdb, 5, 4},
                      DatasetCase{"Mondial", MakeMondial, 28, 40},
                      DatasetCase{"Wikipedia", MakeWikipedia, 6, 5},
                      DatasetCase{"DBLP", MakeDblp, 6, 6},
                      DatasetCase{"TPC-H", MakeTpch, 8, 10}),
    [](const ::testing::TestParamInfo<DatasetCase>& info) {
      std::string name = info.param.name;
      for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name;
    });

TEST(ImdbGeneratorTest, PlantsRunningExampleEntities) {
  Database db = MakeImdb(42, kTinyScale);
  TermIndex index = TermIndex::Build(db);
  EXPECT_GE(index.DocumentFrequency("denzel"), 1u);
  EXPECT_GE(index.DocumentFrequency("gangster"), 1u);
  EXPECT_GE(index.DocumentFrequency("washington"), 1u);
}

TEST(MondialGeneratorTest, DensestSchemaGraph) {
  Database mondial = MakeMondial(43, kTinyScale);
  Database imdb = MakeImdb(42, kTinyScale);
  SchemaGraph mg = SchemaGraph::Build(mondial.schema());
  SchemaGraph ig = SchemaGraph::Build(imdb.schema());
  EXPECT_GT(mg.num_edges(), ig.num_edges());
}

TEST(MakeAllDatasetsTest, FiveInPaperOrder) {
  std::vector<NamedDataset> all = MakeAllDatasets(kTinyScale);
  ASSERT_EQ(all.size(), 5u);
  EXPECT_EQ(all[0].name, "Mondial");
  EXPECT_EQ(all[1].name, "IMDb");
  EXPECT_EQ(all[4].name, "TPC-H");
  // Relative sizes follow Table 2: TPC-H largest, Mondial smallest.
  EXPECT_GT(all[4].db.TotalTuples(), all[0].db.TotalTuples());
}

}  // namespace
}  // namespace matcn
