#include "datasets/workload_io.h"

#include <gtest/gtest.h>

#include <fstream>

#include "datasets/generators.h"
#include "graph/schema_graph.h"

namespace matcn {
namespace {

class WorkloadIoTest : public ::testing::Test {
 protected:
  WorkloadIoTest()
      : db_(MakeImdb(42, 0.05)),
        schema_graph_(SchemaGraph::Build(db_.schema())),
        index_(TermIndex::Build(db_)),
        gen_(&db_, &schema_graph_, &index_) {
    path_ = ::testing::TempDir() + "/matcn_workload_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".txt";
  }

  Database db_;
  SchemaGraph schema_graph_;
  TermIndex index_;
  WorkloadGenerator gen_;
  std::string path_;
};

TEST_F(WorkloadIoTest, RoundTrip) {
  WorkloadOptions options;
  options.num_queries = 6;
  std::vector<WorkloadQuery> workload = gen_.Generate(options);
  ASSERT_TRUE(SaveWorkload(workload, path_).ok());
  Result<std::vector<WorkloadQuery>> loaded = LoadWorkload(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    EXPECT_EQ((*loaded)[i].id, workload[i].id);
    EXPECT_EQ((*loaded)[i].query.keywords(), workload[i].query.keywords());
    EXPECT_EQ((*loaded)[i].golden, workload[i].golden);
    EXPECT_EQ((*loaded)[i].num_relevant, workload[i].num_relevant);
  }
}

TEST_F(WorkloadIoTest, EmptyWorkloadRoundTrips) {
  ASSERT_TRUE(SaveWorkload({}, path_).ok());
  Result<std::vector<WorkloadQuery>> loaded = LoadWorkload(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
}

TEST_F(WorkloadIoTest, MissingFileFails) {
  EXPECT_FALSE(LoadWorkload(path_ + ".nope").ok());
}

TEST_F(WorkloadIoTest, BadHeaderFails) {
  {
    std::ofstream os(path_);
    os << "something else\n";
  }
  Result<std::vector<WorkloadQuery>> loaded = LoadWorkload(path_);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST_F(WorkloadIoTest, GoldenBeforeQueryFails) {
  {
    std::ofstream os(path_);
    os << "matcn-workload v1\ngolden 1,2,\n";
  }
  EXPECT_FALSE(LoadWorkload(path_).ok());
}

}  // namespace
}  // namespace matcn
