// Tests for the per-request bump arena: alignment guarantees, chunk
// growth and retention across Reset(), peak accounting, and integration
// with std::pmr containers (the way the SingleCn hot path consumes it).

#include "common/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory_resource>
#include <string>
#include <unordered_set>
#include <vector>

namespace matcn {
namespace {

bool IsAligned(const void* p, size_t alignment) {
  return reinterpret_cast<uintptr_t>(p) % alignment == 0;
}

TEST(Arena, AllocationsAreAligned) {
  Arena arena(128);
  for (size_t alignment : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    for (size_t bytes : {1u, 3u, 8u, 17u, 64u}) {
      void* p = arena.allocate(bytes, alignment);
      ASSERT_NE(p, nullptr);
      EXPECT_TRUE(IsAligned(p, alignment))
          << bytes << " bytes at alignment " << alignment;
      std::memset(p, 0xAB, bytes);  // must be writable
    }
  }
}

TEST(Arena, ZeroByteAllocationsAreDistinct) {
  Arena arena;
  void* a = arena.allocate(0, 1);
  void* b = arena.allocate(0, 1);
  EXPECT_NE(a, b);
}

TEST(Arena, GrowsBeyondInitialChunk) {
  Arena arena(64);
  EXPECT_EQ(arena.num_chunks(), 0u);
  (void)arena.allocate(32, 8);
  EXPECT_EQ(arena.num_chunks(), 1u);
  // A request larger than any retained chunk forces a new, bigger chunk.
  (void)arena.allocate(1024, 8);
  EXPECT_GE(arena.num_chunks(), 2u);
  EXPECT_GE(arena.bytes_reserved(), 1024u + 32u);
}

TEST(Arena, ResetRetainsChunksAndReusesThem) {
  Arena arena(256);
  for (int i = 0; i < 64; ++i) (void)arena.allocate(64, 8);
  const size_t reserved = arena.bytes_reserved();
  const size_t chunks = arena.num_chunks();
  ASSERT_GT(chunks, 0u);

  arena.Reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  EXPECT_EQ(arena.num_chunks(), chunks);

  // The same workload replayed after Reset must fit in the retained
  // chunks: no new reservation.
  for (int i = 0; i < 64; ++i) (void)arena.allocate(64, 8);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  EXPECT_EQ(arena.num_chunks(), chunks);
}

TEST(Arena, PeakSurvivesReset) {
  Arena arena(128);
  (void)arena.allocate(500, 8);
  const size_t peak = arena.bytes_peak();
  EXPECT_GE(peak, 500u);
  arena.Reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.bytes_peak(), peak);
  (void)arena.allocate(8, 8);
  EXPECT_EQ(arena.bytes_peak(), peak) << "smaller round must not move peak";
  (void)arena.allocate(1000, 8);
  EXPECT_GT(arena.bytes_peak(), peak) << "bigger round must raise peak";
}

TEST(Arena, TinyInitialChunkIsClamped) {
  Arena arena(1);  // ctor clamps below the internal minimum
  void* p = arena.allocate(48, 8);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0, 48);
}

TEST(Arena, PmrContainersUseTheArena) {
  Arena arena(1024);
  {
    std::pmr::vector<uint64_t> v(&arena);
    for (uint64_t i = 0; i < 100; ++i) v.push_back(i);
    for (uint64_t i = 0; i < 100; ++i) ASSERT_EQ(v[i], i);
    EXPECT_GT(arena.bytes_used(), 0u);

    std::pmr::unordered_set<std::pmr::string> seen(&arena);
    for (int i = 0; i < 50; ++i) {
      seen.insert(std::pmr::string(
          "key-with-enough-length-to-defeat-sso-" + std::to_string(i),
          &arena));
    }
    EXPECT_EQ(seen.size(), 50u);
    EXPECT_TRUE(seen.count(std::pmr::string(
        "key-with-enough-length-to-defeat-sso-7", &arena)));
  }  // pmr containers destruct before the arena rewinds
  const size_t used = arena.bytes_used();
  EXPECT_GT(used, 100 * sizeof(uint64_t));
  arena.Reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
}

TEST(Arena, IsEqualIsIdentity) {
  Arena a, b;
  EXPECT_TRUE(a.is_equal(a));
  EXPECT_FALSE(a.is_equal(b));
  EXPECT_FALSE(a.is_equal(*std::pmr::get_default_resource()));
}

TEST(Arena, DeallocateIsANoOp) {
  Arena arena(256);
  void* p = arena.allocate(64, 8);
  const size_t used = arena.bytes_used();
  arena.deallocate(p, 64, 8);
  EXPECT_EQ(arena.bytes_used(), used);
  // Storage is still valid to hand out after the no-op deallocate.
  void* q = arena.allocate(64, 8);
  EXPECT_NE(q, nullptr);
}

// The steady-state contract the zero-alloc test depends on: after one
// warming round, replaying rounds of the same shape never consults the
// heap (reservation and chunk count are frozen).
TEST(Arena, SteadyStateNeedsNoNewChunks) {
  Arena arena(64);
  auto round = [&arena] {
    arena.Reset();
    std::pmr::vector<uint64_t> v(&arena);
    for (uint64_t i = 0; i < 300; ++i) v.push_back(i);
    std::pmr::vector<std::pmr::string> labels(&arena);
    for (int i = 0; i < 20; ++i) {
      labels.emplace_back("relation#termset-label-" + std::to_string(i));
    }
  };
  round();
  const size_t reserved = arena.bytes_reserved();
  const size_t chunks = arena.num_chunks();
  for (int i = 0; i < 10; ++i) {
    round();
    EXPECT_EQ(arena.bytes_reserved(), reserved) << "round " << i;
    EXPECT_EQ(arena.num_chunks(), chunks) << "round " << i;
  }
}

}  // namespace
}  // namespace matcn
