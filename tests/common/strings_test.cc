#include "common/strings.h"

#include <gtest/gtest.h>

namespace matcn {
namespace {

TEST(StringsTest, ToLower) {
  EXPECT_EQ(ToLower("Denzel WASHINGTON 42"), "denzel washington 42");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StringsTest, SplitDropsEmptyPieces) {
  EXPECT_EQ(Split("a,b,,c", ","), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split(",,", ","), std::vector<std::string>{});
  EXPECT_EQ(Split("one two", " "),
            (std::vector<std::string>{"one", "two"}));
}

TEST(StringsTest, SplitMultipleDelimiters) {
  EXPECT_EQ(Split("a,b;c", ",;"), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StringsTest, JoinRoundTrip) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim("\t\n"), "");
  EXPECT_EQ(Trim("none"), "none");
}

TEST(ContainsWordTest, MatchesWholeTokensOnly) {
  EXPECT_TRUE(ContainsWordCaseInsensitive("American Gangster", "gangster"));
  EXPECT_TRUE(ContainsWordCaseInsensitive("American Gangster", "AMERICAN"));
  // Substring of a token is not a word match (differs from raw SQL LIKE,
  // but matches the Term Index's tokenizer semantics).
  EXPECT_FALSE(ContainsWordCaseInsensitive("Gangsters", "gangster"));
  EXPECT_FALSE(ContainsWordCaseInsensitive("gang", "gangster"));
}

TEST(ContainsWordTest, PunctuationSeparatesTokens) {
  EXPECT_TRUE(ContainsWordCaseInsensitive("washington,denzel", "denzel"));
  EXPECT_TRUE(ContainsWordCaseInsensitive("(gangster)", "gangster"));
}

TEST(ContainsWordTest, EmptyNeedleNeverMatches) {
  EXPECT_FALSE(ContainsWordCaseInsensitive("anything", ""));
}

TEST(ContainsWordTest, NumbersAreTokens) {
  EXPECT_TRUE(ContainsWordCaseInsensitive("year 2007 release", "2007"));
  EXPECT_FALSE(ContainsWordCaseInsensitive("year 2007 release", "200"));
}

}  // namespace
}  // namespace matcn
