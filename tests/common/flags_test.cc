#include "common/flags.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace matcn {
namespace {

// Builds a FlagSet from a literal argv (argv[0] is the program name).
FlagSet Make(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  storage.insert(storage.begin(), "prog");
  std::vector<char*> argv;
  for (std::string& s : storage) argv.push_back(s.data());
  return FlagSet(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagSetTest, SpaceAndEqualsFormsBothParse) {
  FlagSet flags = Make({"--threads", "4", "--tmax=7"});
  EXPECT_EQ(flags.GetInt("threads", 0), 4);
  EXPECT_EQ(flags.GetInt("tmax", 0), 7);
}

TEST(FlagSetTest, MissingFlagReturnsDefault) {
  FlagSet flags = Make({"--threads", "4"});
  EXPECT_EQ(flags.GetInt("cache-mb", 64), 64);
  EXPECT_EQ(flags.GetString("mode", "fast"), "fast");
  EXPECT_DOUBLE_EQ(flags.GetDouble("scale", 0.5), 0.5);
}

TEST(FlagSetTest, BareFlagIsBooleanTrue) {
  FlagSet flags = Make({"--verbose", "--threads", "2"});
  EXPECT_TRUE(flags.Has("verbose"));
  EXPECT_EQ(flags.GetString("verbose", ""), "1");
  EXPECT_EQ(flags.GetInt("threads", 0), 2);
}

TEST(FlagSetTest, PositionalsKeepTheirOrderAroundFlags) {
  FlagSet flags = Make({"query", "--threads", "2", "some_dir", "denzel"});
  ASSERT_EQ(flags.positional().size(), 3u);
  EXPECT_EQ(flags.positional()[0], "query");
  EXPECT_EQ(flags.positional()[1], "some_dir");
  EXPECT_EQ(flags.positional()[2], "denzel");
}

TEST(FlagSetTest, DoubleDashEndsFlagParsing) {
  FlagSet flags = Make({"--threads", "2", "--", "--not-a-flag"});
  EXPECT_EQ(flags.GetInt("threads", 0), 2);
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "--not-a-flag");
}

TEST(FlagSetTest, UnknownFlagsReportsOnlyUnqueriedNames) {
  FlagSet flags = Make({"--threads", "2", "--thraeds", "3"});
  EXPECT_EQ(flags.GetInt("threads", 0), 2);
  const std::vector<std::string> unknown = flags.UnknownFlags();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "thraeds");
}

TEST(FlagSetTest, GetDoubleParsesFractions) {
  FlagSet flags = Make({"--scale", "0.25"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("scale", 1.0), 0.25);
}

TEST(FlagSetTest, CommaListsPassThroughAsStrings) {
  FlagSet flags = Make({"--threads", "1,2,8"});
  EXPECT_EQ(flags.GetString("threads", ""), "1,2,8");
}

TEST(FlagSetTest, EqualsFormHandlesEdgeValues) {
  FlagSet flags = Make({"--label=", "--path=/a=b/c", "--mode=fast"});
  EXPECT_TRUE(flags.Has("label"));
  EXPECT_EQ(flags.GetString("label", "x"), "");
  // Only the first '=' splits; the value keeps the rest.
  EXPECT_EQ(flags.GetString("path", ""), "/a=b/c");
  EXPECT_EQ(flags.GetString("mode", ""), "fast");
}

TEST(FlagSetTest, NegativeNumbersWorkInBothForms) {
  FlagSet flags = Make({"--offset", "-5", "--delta=-7", "--scale", "-0.25"});
  EXPECT_EQ(flags.GetInt("offset", 0), -5);
  EXPECT_EQ(flags.GetInt("delta", 0), -7);
  EXPECT_DOUBLE_EQ(flags.GetDouble("scale", 0), -0.25);
  EXPECT_TRUE(flags.errors().empty());
}

TEST(FlagSetTest, NegativeValueIsNotMistakenForAFlag) {
  // "-5" must be consumed as the value of --offset, not parsed as a flag
  // or positional.
  FlagSet flags = Make({"--offset", "-5", "pos"});
  EXPECT_EQ(flags.GetInt("offset", 0), -5);
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "pos");
}

TEST(FlagSetTest, DuplicateFlagIsAnError) {
  FlagSet flags = Make({"--threads", "2", "--threads=4"});
  ASSERT_EQ(flags.errors().size(), 1u);
  EXPECT_NE(flags.errors()[0].find("duplicate flag --threads"),
            std::string::npos)
      << flags.errors()[0];
  EXPECT_NE(flags.errors()[0].find("'2'"), std::string::npos)
      << flags.errors()[0];
  // The first value wins; the duplicate does not overwrite it.
  EXPECT_EQ(flags.GetInt("threads", 0), 2);
}

TEST(FlagSetTest, DistinctFlagsAreNotDuplicates) {
  FlagSet flags = Make({"--a", "1", "--b=2", "--c"});
  EXPECT_TRUE(flags.errors().empty());
}

}  // namespace
}  // namespace matcn
