#include "common/rng.h"

#include <gtest/gtest.h>

namespace matcn {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000), b.Uniform(0, 1000));
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.Uniform(0, 1'000'000) != b.Uniform(0, 1'000'000)) ++differences;
  }
  EXPECT_GT(differences, 40);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.Uniform(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(RngTest, UniformRealInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.UniformReal();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, IndexCoversRange) {
  Rng rng(7);
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 500; ++i) ++seen[rng.Index(5)];
  for (int count : seen) EXPECT_GT(count, 0);
}

TEST(ZipfSamplerTest, RanksWithinBounds) {
  Rng rng(11);
  ZipfSampler sampler(100, 1.0);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(sampler.Sample(rng), 100u);
}

TEST(ZipfSamplerTest, HeadIsHeavierThanTail) {
  Rng rng(11);
  ZipfSampler sampler(1000, 1.0);
  int head = 0, tail = 0;
  for (int i = 0; i < 20'000; ++i) {
    const size_t r = sampler.Sample(rng);
    if (r < 10) ++head;
    if (r >= 990) ++tail;
  }
  EXPECT_GT(head, tail * 5);
}

TEST(ZipfSamplerTest, ZeroExponentIsNearUniform) {
  Rng rng(11);
  ZipfSampler sampler(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50'000; ++i) ++counts[sampler.Sample(rng)];
  for (int c : counts) {
    EXPECT_GT(c, 3500);
    EXPECT_LT(c, 6500);
  }
}

TEST(ZipfSamplerTest, SingleElement) {
  Rng rng(1);
  ZipfSampler sampler(1, 1.0);
  EXPECT_EQ(sampler.Sample(rng), 0u);
}

}  // namespace
}  // namespace matcn
