#include "common/status.h"

#include <gtest/gtest.h>

namespace matcn {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::NotFound("missing relation").message(),
            "missing relation");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  EXPECT_EQ(Status::NotFound("movie").ToString(), "NotFound: movie");
  EXPECT_EQ(Status::Internal("").ToString(), "Internal");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIOError), "IOError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "Unimplemented");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

Status FailInner() { return Status::IOError("disk"); }
Status Outer() {
  MATCN_RETURN_IF_ERROR(FailInner());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(Outer().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace matcn
