#include "common/table_printer.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace matcn {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"Dataset", "Tuples"});
  t.AddRow({"Mondial", "17115"});
  t.AddRow({"IMDb", "1673074"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("| Dataset |"), std::string::npos);
  EXPECT_NE(out.find("| Mondial | 17115"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|--"), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsArePadded) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"only"});
  const std::string out = t.ToString();
  // Three header cells and a complete data row with empty cells.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
}

TEST(TablePrinterTest, NumFormatsPrecision) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Num(2.0, 0), "2");
  EXPECT_EQ(TablePrinter::Num(0.5, 3), "0.500");
}

TEST(TablePrinterTest, IntFormats) {
  EXPECT_EQ(TablePrinter::Int(42), "42");
  EXPECT_EQ(TablePrinter::Int(-7), "-7");
}

TEST(TablePrinterTest, EmptyTableStillPrintsHeader) {
  TablePrinter t({"x"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("| x |"), std::string::npos);
}

}  // namespace
}  // namespace matcn
