#include "common/epoch.h"

#include <atomic>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace matcn {
namespace {

TEST(EpochManagerTest, PinBumpsActiveGuards) {
  EpochManager epochs;
  EXPECT_EQ(epochs.active_guards(), 0u);
  {
    EpochManager::Guard guard = epochs.Pin();
    EXPECT_EQ(epochs.active_guards(), 1u);
    EpochManager::Guard guard2 = epochs.Pin();
    EXPECT_EQ(epochs.active_guards(), 2u);
  }
  EXPECT_EQ(epochs.active_guards(), 0u);
}

TEST(EpochManagerTest, GuardIsMovable) {
  EpochManager epochs;
  EpochManager::Guard a = epochs.Pin();
  EpochManager::Guard b = std::move(a);
  EXPECT_EQ(epochs.active_guards(), 1u);
  EpochManager::Guard c = epochs.Pin();
  c = std::move(b);
  EXPECT_EQ(epochs.active_guards(), 1u);
}

TEST(EpochManagerTest, RetireRunsDeleterOnlyAfterGuardsRelease) {
  EpochManager epochs;
  std::atomic<int> freed{0};
  {
    EpochManager::Guard guard = epochs.Pin();
    epochs.Retire([&freed] { freed.fetch_add(1); });
    // The guard pins the current epoch: no amount of bumping + collecting
    // may free the object while it is held.
    for (int i = 0; i < 4; ++i) {
      epochs.BumpEpoch();
      epochs.Collect();
    }
    EXPECT_EQ(freed.load(), 0);
  }
  epochs.BumpEpoch();
  epochs.BumpEpoch();
  epochs.Collect();
  EXPECT_EQ(freed.load(), 1);
  EXPECT_EQ(epochs.retired_count(), 0u);
}

TEST(EpochManagerTest, RetireWithoutGuardsFreesAfterTwoBumps) {
  EpochManager epochs;
  std::atomic<int> freed{0};
  epochs.Retire([&freed] { freed.fetch_add(1); });
  epochs.Collect();
  EXPECT_EQ(freed.load(), 0);  // same epoch still too fresh
  epochs.BumpEpoch();
  epochs.BumpEpoch();
  epochs.Collect();
  EXPECT_EQ(freed.load(), 1);
}

TEST(EpochManagerTest, RetireObjectDeletesTypedPointer) {
  EpochManager epochs;
  epochs.RetireObject(new std::vector<int>(100, 7));
  EXPECT_EQ(epochs.retired_count(), 1u);
  epochs.BumpEpoch();
  epochs.BumpEpoch();
  epochs.Collect();
  EXPECT_EQ(epochs.retired_count(), 0u);
}

TEST(EpochManagerTest, DestructorFreesOutstandingGarbage) {
  std::atomic<int> freed{0};
  {
    EpochManager epochs;
    epochs.Retire([&freed] { freed.fetch_add(1); });
    epochs.Retire([&freed] { freed.fetch_add(1); });
  }
  EXPECT_EQ(freed.load(), 2);
}

TEST(EpochManagerTest, ManyThreadsPinAndRetireConcurrently) {
  EpochManager epochs;
  constexpr int kThreads = 8;
  constexpr int kIterations = 500;
  std::atomic<int> freed{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&epochs, &freed] {
      for (int i = 0; i < kIterations; ++i) {
        EpochManager::Guard guard = epochs.Pin();
        if (i % 16 == 0) {
          epochs.Retire([&freed] { freed.fetch_add(1); });
        }
        if (i % 64 == 0) {
          epochs.BumpEpoch();
          epochs.Collect();
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  epochs.BumpEpoch();
  epochs.BumpEpoch();
  epochs.Collect();
  // Multiples of 16 in [0, kIterations): 0, 16, ..., 496 — 32 per thread.
  EXPECT_EQ(freed.load(), kThreads * 32);
  EXPECT_EQ(epochs.active_guards(), 0u);
  EXPECT_EQ(epochs.retired_count(), 0u);
}

}  // namespace
}  // namespace matcn
