// CN execution: JNT enumeration, free-tuple-set semantics, join indexes.

#include "exec/executor.h"

#include <gtest/gtest.h>

#include <set>

#include "core/matcngen.h"
#include "exec/join_index.h"
#include "fixtures/imdb_fixture.h"
#include "indexing/term_index.h"

namespace matcn {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest()
      : db_(testing::MakeMiniImdb()),
        schema_graph_(SchemaGraph::Build(db_.schema())),
        index_(TermIndex::Build(db_)) {}

  GenerationResult Generate(const std::string& text) {
    auto q = KeywordQuery::Parse(text);
    EXPECT_TRUE(q.ok());
    query_ = *q;
    MatCnGen gen(&schema_graph_);
    return gen.Generate(*q, index_);
  }

  Database db_;
  SchemaGraph schema_graph_;
  TermIndex index_;
  KeywordQuery query_;
};

TEST(JoinIndexTest, RowsByValue) {
  Database db = testing::MakeMiniImdb();
  JoinIndex ji(&db);
  const RelationId cast = *db.schema().RelationIdByName("CAST");
  const uint32_t mid = static_cast<uint32_t>(
      *db.relation(cast).schema().AttributeIndex("mid"));
  // Movie 1 has two cast entries (rows 0, 1).
  EXPECT_EQ(ji.Rows(cast, mid, Value(int64_t{1})).size(), 2u);
  EXPECT_EQ(ji.Rows(cast, mid, Value(int64_t{999})).size(), 0u);
}

TEST_F(ExecutorTest, RunningExampleProducesTheExpectedJnt) {
  GenerationResult gen = Generate("denzel washington gangster");
  CnExecutor executor(&db_, &schema_graph_);
  executor.SetQueryContext(&gen.tuple_sets);

  const RelationId mov = *db_.schema().RelationIdByName("MOV");
  const RelationId cast = *db_.schema().RelationIdByName("CAST");
  const RelationId per = *db_.schema().RelationIdByName("PER");

  // The intended answer in this instance is MOV^{g} ⋈ CAST^{d,w}:
  // "American Gangster" joined with the cast entry whose note holds
  // "denzel washington". Find that CN and check it yields exactly it.
  bool found_pair = false;
  for (size_t c = 0; c < gen.cns.size(); ++c) {
    const CandidateNetwork& cn = gen.cns[c];
    if (cn.size() != 2) continue;
    int movs = 0, casts = 0;
    for (const CnNode& n : cn.nodes()) {
      if (n.relation == mov && TermsetSize(n.termset) == 1) ++movs;
      if (n.relation == cast && TermsetSize(n.termset) == 2) ++casts;
    }
    if (movs != 1 || casts != 1) continue;
    found_pair = true;
    std::vector<Jnt> jnts = executor.Execute(cn, static_cast<int>(c));
    ASSERT_EQ(jnts.size(), 1u);
    EXPECT_EQ(jnts[0].tuples.size(), 2u);
  }
  EXPECT_TRUE(found_pair);

  // The CN MOV^{g} - CAST^{} - PER^{d,w} exists but yields nothing: the
  // only connecting CAST tuple contains query keywords, and Definition 4
  // bars keyword tuples from free tuple-sets.
  for (size_t c = 0; c < gen.cns.size(); ++c) {
    const CandidateNetwork& cn = gen.cns[c];
    if (cn.size() != 3) continue;
    int movs = 0, pers = 0, frees = 0;
    for (const CnNode& n : cn.nodes()) {
      if (n.relation == mov && TermsetSize(n.termset) == 1) ++movs;
      if (n.relation == per && TermsetSize(n.termset) == 2) ++pers;
      if (n.is_free()) ++frees;
    }
    if (movs != 1 || pers != 1 || frees != 1) continue;
    EXPECT_TRUE(executor.Execute(cn, static_cast<int>(c)).empty());
  }
}

TEST_F(ExecutorTest, FreeNodesExcludeKeywordTuples) {
  GenerationResult gen = Generate("denzel washington gangster");
  CnExecutor executor(&db_, &schema_graph_);
  executor.SetQueryContext(&gen.tuple_sets);
  for (size_t c = 0; c < gen.cns.size(); ++c) {
    for (const Jnt& jnt :
         executor.Execute(gen.cns[c], static_cast<int>(c))) {
      for (size_t i = 0; i < jnt.tuples.size(); ++i) {
        if (!gen.cns[c].node(static_cast<int>(i)).is_free()) continue;
        // A free-node tuple must not be in any tuple-set (Definition 4).
        for (const TupleSet& ts : gen.tuple_sets) {
          for (const TupleId& id : ts.tuples) {
            EXPECT_NE(id, jnt.tuples[i]);
          }
        }
      }
    }
  }
}

TEST_F(ExecutorTest, JntTuplesAreDistinct) {
  GenerationResult gen = Generate("denzel gangster");
  CnExecutor executor(&db_, &schema_graph_);
  executor.SetQueryContext(&gen.tuple_sets);
  for (size_t c = 0; c < gen.cns.size(); ++c) {
    for (const Jnt& jnt :
         executor.Execute(gen.cns[c], static_cast<int>(c))) {
      std::set<uint64_t> ids;
      for (const TupleId& id : jnt.tuples) {
        EXPECT_TRUE(ids.insert(id.packed()).second);
      }
    }
  }
}

TEST_F(ExecutorTest, JntTuplesJoinAlongEveryEdge) {
  GenerationResult gen = Generate("denzel washington gangster");
  CnExecutor executor(&db_, &schema_graph_);
  executor.SetQueryContext(&gen.tuple_sets);
  for (size_t c = 0; c < gen.cns.size(); ++c) {
    const CandidateNetwork& cn = gen.cns[c];
    for (const Jnt& jnt : executor.Execute(cn, static_cast<int>(c))) {
      for (size_t i = 1; i < cn.size(); ++i) {
        const int p = cn.parent(static_cast<int>(i));
        const SchemaEdge* edge = schema_graph_.Edge(
            cn.node(static_cast<int>(i)).relation, cn.node(p).relation);
        ASSERT_NE(edge, nullptr);
        const Tuple& holder =
            db_.tuple(cn.node(static_cast<int>(i)).relation == edge->holder
                          ? jnt.tuples[i]
                          : jnt.tuples[p]);
        const Tuple& referenced =
            db_.tuple(cn.node(static_cast<int>(i)).relation == edge->holder
                          ? jnt.tuples[p]
                          : jnt.tuples[i]);
        EXPECT_EQ(holder[edge->holder_attribute],
                  referenced[edge->referenced_attribute]);
      }
    }
  }
}

TEST_F(ExecutorTest, MaxResultsLimitsOutput) {
  GenerationResult gen = Generate("gangster");
  CnExecutor executor(&db_, &schema_graph_);
  executor.SetQueryContext(&gen.tuple_sets);
  size_t total_unlimited = 0;
  for (size_t c = 0; c < gen.cns.size(); ++c) {
    total_unlimited += executor.Execute(gen.cns[c], static_cast<int>(c)).size();
  }
  ASSERT_GE(total_unlimited, 2u);
  EXPECT_EQ(executor.Execute(gen.cns[0], 0, 1).size(), 1u);
}

TEST_F(ExecutorTest, ExecuteWithFixedPinsTuples) {
  GenerationResult gen = Generate("gangster");
  CnExecutor executor(&db_, &schema_graph_);
  executor.SetQueryContext(&gen.tuple_sets);
  // Single-node CNs: pinning the node to one tuple yields exactly it.
  for (size_t c = 0; c < gen.cns.size(); ++c) {
    const CandidateNetwork& cn = gen.cns[c];
    ASSERT_EQ(cn.size(), 1u);
    const TupleSet& ts = gen.tuple_sets[cn.node(0).tuple_set_index];
    std::vector<Jnt> pinned = executor.ExecuteWithFixed(
        cn, static_cast<int>(c), {{0, ts.tuples[0]}});
    ASSERT_EQ(pinned.size(), 1u);
    EXPECT_EQ(pinned[0].tuples[0], ts.tuples[0]);
  }
}

TEST(JntTest, KeyIsOrderInvariant) {
  Jnt a, b;
  a.tuples = {TupleId(0, 1), TupleId(1, 2)};
  b.tuples = {TupleId(1, 2), TupleId(0, 1)};
  EXPECT_EQ(JntKey(a), JntKey(b));
  b.tuples.push_back(TupleId(2, 0));
  EXPECT_NE(JntKey(a), JntKey(b));
}

}  // namespace
}  // namespace matcn
