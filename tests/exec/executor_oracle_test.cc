// Property test: the backtracking CN executor against a brute-force
// oracle on randomized small databases. The oracle enumerates every
// assignment of tuples to CN nodes directly from the cross product and
// checks the join/containment/distinctness conditions — exponential but
// exact on tiny instances.

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "core/matcngen.h"
#include "exec/executor.h"
#include "graph/schema_graph.h"
#include "indexing/term_index.h"

namespace matcn {
namespace {

/// Builds a random 3-relation chain schema A -> B -> C (A references B,
/// B references C) with small random data and two keyword families.
Database RandomChainDb(Rng& rng) {
  Database db;
  auto must = [](const Status& s) { ASSERT_TRUE(s.ok()) << s.ToString(); };
  (void)must;
  EXPECT_TRUE(db.CreateRelation(
                    RelationSchema("C", {{"id", ValueType::kInt, true, false},
                                         {"text", ValueType::kText, false,
                                          true}}))
                  .ok());
  EXPECT_TRUE(db.CreateRelation(
                    RelationSchema("B", {{"id", ValueType::kInt, true, false},
                                         {"c_id", ValueType::kInt, false,
                                          false},
                                         {"text", ValueType::kText, false,
                                          true}}))
                  .ok());
  EXPECT_TRUE(db.CreateRelation(
                    RelationSchema("A", {{"id", ValueType::kInt, true, false},
                                         {"b_id", ValueType::kInt, false,
                                          false},
                                         {"text", ValueType::kText, false,
                                          true}}))
                  .ok());
  EXPECT_TRUE(db.AddForeignKey({"B", "c_id", "C", "id"}).ok());
  EXPECT_TRUE(db.AddForeignKey({"A", "b_id", "B", "id"}).ok());

  const std::vector<std::string> words = {"alpha", "beta",  "gamma",
                                          "delta", "omega", "noise"};
  auto text = [&]() {
    std::string t;
    const int n = static_cast<int>(rng.Uniform(0, 2));
    for (int i = 0; i < n; ++i) {
      if (i > 0) t += " ";
      t += words[rng.Index(words.size())];
    }
    return t;
  };
  const int64_t nc = 4, nb = 6, na = 8;
  for (int64_t i = 1; i <= nc; ++i) {
    EXPECT_TRUE(db.Insert("C", {Value(i), Value(text())}).ok());
  }
  for (int64_t i = 1; i <= nb; ++i) {
    EXPECT_TRUE(db.Insert("B", {Value(i),
                                Value(static_cast<int64_t>(
                                    rng.Uniform(1, nc))),
                                Value(text())})
                    .ok());
  }
  for (int64_t i = 1; i <= na; ++i) {
    EXPECT_TRUE(db.Insert("A", {Value(i),
                                Value(static_cast<int64_t>(
                                    rng.Uniform(1, nb))),
                                Value(text())})
                    .ok());
  }
  return db;
}

/// Oracle: enumerate all node-tuple assignments by cross product and keep
/// the valid ones.
std::set<std::string> OracleExecute(const Database& db,
                                    const SchemaGraph& schema_graph,
                                    const std::vector<TupleSet>& tuple_sets,
                                    const CandidateNetwork& cn) {
  // Candidates per node.
  std::set<uint64_t> contaminated;
  for (const TupleSet& ts : tuple_sets) {
    for (const TupleId& id : ts.tuples) contaminated.insert(id.packed());
  }
  std::vector<std::vector<TupleId>> candidates(cn.size());
  for (size_t i = 0; i < cn.size(); ++i) {
    const CnNode& node = cn.node(static_cast<int>(i));
    if (node.is_free()) {
      const Relation& rel = db.relation(node.relation);
      for (uint64_t row = 0; row < rel.num_tuples(); ++row) {
        TupleId id(node.relation, row);
        if (!contaminated.contains(id.packed())) candidates[i].push_back(id);
      }
    } else {
      candidates[i] = tuple_sets[node.tuple_set_index].tuples;
    }
  }

  std::set<std::string> results;
  std::vector<size_t> pick(cn.size(), 0);
  while (true) {
    // Validate this assignment.
    bool ok = true;
    for (size_t i = 0; ok && i < cn.size(); ++i) {
      for (size_t j = i + 1; ok && j < cn.size(); ++j) {
        if (candidates[i].empty() || candidates[j].empty()) {
          ok = false;
          break;
        }
        if (candidates[i][pick[i]] == candidates[j][pick[j]]) ok = false;
      }
    }
    for (size_t i = 1; ok && i < cn.size(); ++i) {
      const int p = cn.parent(static_cast<int>(i));
      const CnNode& child = cn.node(static_cast<int>(i));
      const CnNode& parent = cn.node(p);
      const SchemaEdge* edge =
          schema_graph.Edge(child.relation, parent.relation);
      if (edge == nullptr) {
        ok = false;
        break;
      }
      const TupleId holder_id = child.relation == edge->holder
                                    ? candidates[i][pick[i]]
                                    : candidates[p][pick[p]];
      const TupleId ref_id = child.relation == edge->holder
                                 ? candidates[p][pick[p]]
                                 : candidates[i][pick[i]];
      if (db.tuple(holder_id)[edge->holder_attribute] !=
          db.tuple(ref_id)[edge->referenced_attribute]) {
        ok = false;
      }
    }
    if (ok) {
      Jnt jnt;
      for (size_t i = 0; i < cn.size(); ++i) {
        jnt.tuples.push_back(candidates[i][pick[i]]);
      }
      results.insert(JntKey(jnt));
    }
    // Advance the mixed-radix counter.
    size_t pos = 0;
    while (pos < pick.size()) {
      if (candidates[pos].empty()) return results;
      if (++pick[pos] < candidates[pos].size()) break;
      pick[pos] = 0;
      ++pos;
    }
    if (pos == pick.size()) break;
  }
  return results;
}

class ExecutorOracle : public ::testing::TestWithParam<int> {};

TEST_P(ExecutorOracle, MatchesBruteForceOnRandomDatabases) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  Database db = RandomChainDb(rng);
  SchemaGraph schema_graph = SchemaGraph::Build(db.schema());
  TermIndex index = TermIndex::Build(db);

  for (const char* text : {"alpha", "alpha beta", "gamma delta"}) {
    auto query = KeywordQuery::Parse(text);
    ASSERT_TRUE(query.ok());
    MatCnGenOptions options;
    options.t_max = 4;
    MatCnGen gen(&schema_graph, options);
    GenerationResult result = gen.Generate(*query, index);

    CnExecutor executor(&db, &schema_graph);
    executor.SetQueryContext(&result.tuple_sets);
    for (size_t c = 0; c < result.cns.size(); ++c) {
      std::set<std::string> got;
      for (const Jnt& jnt :
           executor.Execute(result.cns[c], static_cast<int>(c))) {
        EXPECT_TRUE(got.insert(JntKey(jnt)).second)
            << "executor produced a duplicate JNT";
      }
      const std::set<std::string> expected = OracleExecute(
          db, schema_graph, result.tuple_sets, result.cns[c]);
      EXPECT_EQ(got, expected)
          << "query \"" << text << "\" CN "
          << result.cns[c].ToString(db.schema(), *query);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorOracle, ::testing::Range(0, 15));

}  // namespace
}  // namespace matcn
