// Schema graph construction and AHU tree canonicalization.

#include <gtest/gtest.h>

#include "fixtures/imdb_fixture.h"
#include "graph/schema_graph.h"
#include "graph/tree_canonical.h"

namespace matcn {
namespace {

class SchemaGraphTest : public ::testing::Test {
 protected:
  SchemaGraphTest()
      : db_(testing::MakeMiniImdb()),
        graph_(SchemaGraph::Build(db_.schema())) {}
  RelationId Id(const std::string& name) {
    return *db_.schema().RelationIdByName(name);
  }
  Database db_;
  SchemaGraph graph_;
};

TEST_F(SchemaGraphTest, ImdbShape) {
  EXPECT_EQ(graph_.num_relations(), 5u);
  EXPECT_EQ(graph_.num_edges(), 4u);
  EXPECT_EQ(graph_.num_collapsed_edges(), 0u);
  // CAST is the hub adjacent to all four others.
  EXPECT_EQ(graph_.Neighbors(Id("CAST")).size(), 4u);
  EXPECT_EQ(graph_.Neighbors(Id("MOV")).size(), 1u);
}

TEST_F(SchemaGraphTest, EdgeDirectionFollowsForeignKey) {
  // CAST holds the FKs, so CAST references the others, never vice versa.
  EXPECT_TRUE(graph_.References(Id("CAST"), Id("MOV")));
  EXPECT_FALSE(graph_.References(Id("MOV"), Id("CAST")));
  EXPECT_TRUE(graph_.References(Id("CAST"), Id("PER")));
}

TEST_F(SchemaGraphTest, EdgeMetadataResolvesAttributes) {
  const SchemaEdge* edge = graph_.Edge(Id("CAST"), Id("PER"));
  ASSERT_NE(edge, nullptr);
  EXPECT_EQ(edge->holder, Id("CAST"));
  EXPECT_EQ(db_.relation(edge->holder).schema()
                .attribute(edge->holder_attribute).name,
            "pid");
  EXPECT_EQ(db_.relation(edge->referenced).schema()
                .attribute(edge->referenced_attribute).name,
            "id");
}

TEST_F(SchemaGraphTest, NoEdgeBetweenUnrelatedRelations) {
  EXPECT_FALSE(graph_.HasEdge(Id("MOV"), Id("PER")));
  EXPECT_EQ(graph_.Edge(Id("MOV"), Id("PER")), nullptr);
}

TEST(SchemaGraphCollapseTest, ParallelAndSelfEdgesCollapse) {
  Database db;
  ASSERT_TRUE(db.CreateRelation(RelationSchema(
                                    "A", {{"id", ValueType::kInt, true, false},
                                          {"b1", ValueType::kInt, false, false},
                                          {"b2", ValueType::kInt, false, false},
                                          {"self", ValueType::kInt, false,
                                           false}}))
                  .ok());
  ASSERT_TRUE(db.CreateRelation(
                    RelationSchema("B", {{"id", ValueType::kInt, true, false}}))
                  .ok());
  ASSERT_TRUE(db.AddForeignKey({"A", "b1", "B", "id"}).ok());
  ASSERT_TRUE(db.AddForeignKey({"A", "b2", "B", "id"}).ok());   // parallel
  ASSERT_TRUE(db.AddForeignKey({"A", "self", "A", "id"}).ok()); // self-loop
  SchemaGraph g = SchemaGraph::Build(db.schema());
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.num_collapsed_edges(), 2u);
  EXPECT_EQ(g.Neighbors(0).size(), 1u);
}

TEST(TreeCentersTest, PathHasMiddleCenters) {
  // 0-1-2-3: two centers (1, 2).
  std::vector<std::vector<int>> path = {{1}, {0, 2}, {1, 3}, {2}};
  EXPECT_EQ(TreeCenters(path), (std::vector<int>{1, 2}));
  // 0-1-2: single center.
  std::vector<std::vector<int>> odd = {{1}, {0, 2}, {1}};
  EXPECT_EQ(TreeCenters(odd), (std::vector<int>{1}));
}

TEST(TreeCentersTest, SingleNodeAndEdge) {
  EXPECT_EQ(TreeCenters({{}}), (std::vector<int>{0}));
  EXPECT_EQ(TreeCenters({{1}, {0}}), (std::vector<int>{0, 1}));
}

TEST(TreeCanonicalTest, IsomorphicTreesShareEncoding) {
  // Same labeled star written with different node numbering.
  std::vector<std::vector<int>> star1 = {{1, 2, 3}, {0}, {0}, {0}};
  std::vector<std::string> labels1 = {"hub", "a", "b", "c"};
  std::vector<std::vector<int>> star2 = {{3}, {3}, {3}, {0, 1, 2}};
  std::vector<std::string> labels2 = {"c", "b", "a", "hub"};
  EXPECT_EQ(CanonicalTreeEncoding(star1, labels1),
            CanonicalTreeEncoding(star2, labels2));
}

TEST(TreeCanonicalTest, DifferentLabelsDiffer) {
  std::vector<std::vector<int>> edge = {{1}, {0}};
  EXPECT_NE(CanonicalTreeEncoding(edge, {"a", "b"}),
            CanonicalTreeEncoding(edge, {"a", "c"}));
}

TEST(TreeCanonicalTest, DifferentTopologiesDiffer) {
  // Path a-b-c-d vs star b(a,c,d): same label multiset, different shape.
  std::vector<std::vector<int>> path = {{1}, {0, 2}, {1, 3}, {2}};
  std::vector<std::vector<int>> star = {{1, 2, 3}, {0}, {0}, {0}};
  EXPECT_NE(CanonicalTreeEncoding(path, {"a", "b", "c", "d"}),
            CanonicalTreeEncoding(star, {"b", "a", "c", "d"}));
}

TEST(TreeCanonicalTest, PathReversalIsIsomorphic) {
  std::vector<std::vector<int>> p1 = {{1}, {0, 2}, {1, 3}, {2}};
  std::vector<std::vector<int>> p2 = {{1}, {0, 2}, {1, 3}, {2}};
  EXPECT_EQ(CanonicalTreeEncoding(p1, {"a", "b", "c", "d"}),
            CanonicalTreeEncoding(p2, {"d", "c", "b", "a"}));
}

TEST(TreeCanonicalTest, EmptyAndSingleton) {
  EXPECT_EQ(CanonicalTreeEncoding({}, {}), "");
  EXPECT_EQ(CanonicalTreeEncoding({{}}, {"x"}), "x()");
}

TEST(TreeCanonicalTest, DeepPathDoesNotOverflowStack) {
  // 20k-node path exercises the iterative encoder.
  const int n = 20'000;
  std::vector<std::vector<int>> adj(n);
  std::vector<std::string> labels(n, "v");
  for (int i = 0; i + 1 < n; ++i) {
    adj[i].push_back(i + 1);
    adj[i + 1].push_back(i);
  }
  EXPECT_FALSE(CanonicalTreeEncoding(adj, labels).empty());
}

}  // namespace
}  // namespace matcn
