// Observability over the wire: the Prometheus metrics endpoint on the
// admin port (scraped over a raw socket — exposition validity, counter
// monotonicity across queries and live inserts, HTTP error paths) and
// the protocol-v4 TRACE frame (span breakdown consistent with the
// reported latency).

#include <gtest/gtest.h>
#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fixtures/imdb_fixture.h"
#include "graph/schema_graph.h"
#include "indexing/term_index.h"
#include "liveindex/concurrent_term_index.h"
#include "liveindex/index_writer.h"
#include "net/client.h"
#include "net/server.h"
#include "net/socket.h"
#include "obs/log.h"
#include "obs/prometheus.h"
#include "obs/trace.h"
#include "service/query_service.h"

namespace matcn::net {
namespace {

// Minimal HTTP/1.0 GET over a raw socket: send the request, read to EOF
// (the server closes after every response), return the raw bytes.
std::string HttpGet(uint16_t port, const std::string& path,
                    const std::string& method = "GET") {
  Result<ScopedFd> fd = ConnectTcp("127.0.0.1", port, /*timeout_ms=*/5000);
  if (!fd.ok()) return "";
  const std::string request =
      method + " " + path + " HTTP/1.0\r\nHost: localhost\r\n\r\n";
  if (!WriteAll(fd->get(), request).ok()) return "";
  std::string out;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd->get(), buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  return out;
}

// Splits an HTTP response into (status line, body).
void SplitResponse(const std::string& raw, std::string* status_line,
                   std::string* body) {
  const size_t eol = raw.find("\r\n");
  *status_line = eol == std::string::npos ? raw : raw.substr(0, eol);
  const size_t sep = raw.find("\r\n\r\n");
  *body = sep == std::string::npos ? "" : raw.substr(sep + 4);
}

// Value of an unlabeled sample, or -1 if the metric is absent.
double MetricValue(const std::string& body, const std::string& name) {
  std::istringstream in(body);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(name + " ", 0) == 0) {
      return std::stod(line.substr(name.size() + 1));
    }
  }
  return -1;
}

WireValue IntValue(int64_t v) {
  WireValue value;
  value.tag = 0;
  value.int_value = v;
  return value;
}

WireValue TextValue(std::string v) {
  WireValue value;
  value.tag = 1;
  value.text_value = std::move(v);
  return value;
}

class ObservabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Keep the servers' startup/drain Info lines out of test output.
    prior_log_level_ = obs::Logger::Global().min_level();
    obs::Logger::Global().set_min_level(obs::LogLevel::kWarn);
    db_ = testing::MakeMiniImdb();
    schema_graph_ = SchemaGraph::Build(db_.schema());
    index_ = TermIndex::Build(db_);
  }

  void TearDown() override {
    obs::Logger::Global().set_min_level(prior_log_level_);
  }

  // Static-index server with the metrics endpoint on an ephemeral port.
  void StartServer(QueryServiceOptions service_options = {},
                   ServerOptions server_options = {}) {
    service_ = std::make_unique<QueryService>(&schema_graph_, &index_,
                                              std::move(service_options));
    server_options.port = 0;
    server_options.metrics_port = 0;
    server_ = std::make_unique<Server>(service_.get(), &db_.schema(),
                                       std::move(server_options));
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_NE(server_->metrics_port(), 0);
  }

  // Live-backed server with a writer: inserts move liveindex gauges.
  void StartLiveServer() {
    live_index_ = std::make_unique<liveindex::ConcurrentTermIndex>(
        TermIndex::Build(db_));
    writer_ =
        std::make_unique<liveindex::IndexWriter>(&db_, live_index_.get());
    QueryServiceOptions service_options;
    service_options.num_threads = 1;
    service_ = std::make_unique<QueryService>(
        &schema_graph_, live_index_.get(), service_options);
    service_->ConnectWriter(writer_.get());
    ServerOptions server_options;
    server_options.port = 0;
    server_options.metrics_port = 0;
    server_ = std::make_unique<Server>(service_.get(), &db_.schema(),
                                       writer_.get(), server_options);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_NE(server_->metrics_port(), 0);
  }

  Client MustConnect() {
    Result<Client> client = Client::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  std::string Scrape() {
    std::string status, body;
    SplitResponse(HttpGet(server_->metrics_port(), "/metrics"), &status,
                  &body);
    EXPECT_NE(status.find("200"), std::string::npos) << status;
    return body;
  }

  obs::LogLevel prior_log_level_ = obs::LogLevel::kInfo;
  Database db_;
  SchemaGraph schema_graph_;
  TermIndex index_;
  std::unique_ptr<liveindex::ConcurrentTermIndex> live_index_;
  std::unique_ptr<liveindex::IndexWriter> writer_;
  std::unique_ptr<QueryService> service_;
  std::unique_ptr<Server> server_;
};

TEST_F(ObservabilityTest, MetricsScrapeIsValidExposition) {
  StartServer();
  const std::string body = Scrape();
  EXPECT_EQ(obs::ValidateExposition(body), "") << body.substr(0, 512);
  // The page carries the full latency histogram and both stats families.
  EXPECT_NE(body.find("matcn_service_latency_seconds_bucket{le=\""),
            std::string::npos);
  EXPECT_NE(body.find("matcn_service_latency_seconds_count"),
            std::string::npos);
  EXPECT_NE(body.find("matcn_server_connections_accepted"),
            std::string::npos);
  EXPECT_GE(MetricValue(body, "matcn_protocol_version"), 4.0);
}

TEST_F(ObservabilityTest, CountersAreMonotonicAcrossQueries) {
  StartServer();
  const std::string before = Scrape();
  const double completed0 = MetricValue(before, "matcn_service_completed");
  const double received0 = MetricValue(before, "matcn_server_queries_received");
  ASSERT_GE(completed0, 0.0);
  ASSERT_GE(received0, 0.0);

  Client client = MustConnect();
  ASSERT_TRUE(client.Query({"denzel", "gangster"}).ok());
  ASSERT_TRUE(client.Query({"denzel", "gangster"}).ok());  // cache hit

  const std::string after = Scrape();
  EXPECT_EQ(MetricValue(after, "matcn_service_completed"), completed0 + 2);
  EXPECT_EQ(MetricValue(after, "matcn_server_queries_received"),
            received0 + 2);
  EXPECT_GE(MetricValue(after, "matcn_service_cache_hits"), 1.0);
  EXPECT_EQ(MetricValue(after, "matcn_service_latency_seconds_count"),
            completed0 + 2);
  EXPECT_EQ(obs::ValidateExposition(after), "");
}

TEST_F(ObservabilityTest, LiveInsertsMoveIndexVersionGauge) {
  StartLiveServer();
  const double version0 =
      MetricValue(Scrape(), "matcn_service_index_version");
  ASSERT_GE(version0, 0.0);

  Client client = MustConnect();
  ASSERT_TRUE(
      client.Insert("PER", {IntValue(100), TextValue("Viola Davis")}).ok());
  ASSERT_TRUE(
      client.Insert("PER", {IntValue(101), TextValue("Regina King")}).ok());

  const std::string after = Scrape();
  EXPECT_EQ(MetricValue(after, "matcn_service_index_version"), version0 + 2);
  EXPECT_EQ(obs::ValidateExposition(after), "");
}

TEST_F(ObservabilityTest, NonMetricsRequestsGetHttpErrors) {
  StartServer();
  std::string status, body;
  SplitResponse(HttpGet(server_->metrics_port(), "/nope"), &status, &body);
  EXPECT_NE(status.find("404"), std::string::npos) << status;
  SplitResponse(HttpGet(server_->metrics_port(), "/metrics", "POST"),
                &status, &body);
  EXPECT_NE(status.find("405"), std::string::npos) << status;
  // The query port still works after bad admin requests.
  Client client = MustConnect();
  EXPECT_TRUE(client.Query({"denzel"}).ok());
}

TEST_F(ObservabilityTest, RenderMetricsTextMatchesScrapedBody) {
  StartServer();
  // The in-process renderer (what the CI smoke uses) and the HTTP body
  // agree on shape: both validate and expose the same families.
  const std::string direct = server_->RenderMetricsText();
  EXPECT_EQ(obs::ValidateExposition(direct), "");
  EXPECT_NE(direct.find("matcn_service_latency_seconds_bucket"),
            std::string::npos);
}

TEST_F(ObservabilityTest, TracedQueryReturnsConsistentSpanBreakdown) {
  QueryServiceOptions service_options;
  service_options.num_threads = 2;
  service_options.gen.num_threads = 2;
  StartServer(std::move(service_options));
  Client client = MustConnect();

  Client::QueryParams params;
  params.trace = true;
  Result<Client::QueryResult> response =
      client.Query({"denzel", "washington", "gangster"}, params);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(response->trace.has_value()) << "TRACE frame missing";

  const TracePayload& tp = *response->trace;
  EXPECT_EQ(tp.dropped, 0u);
  ASSERT_GE(tp.spans.size(), 5u);

  // Rehydrate and walk the tree: exactly one root ("request"), every
  // other span parented to a known id, every span inside [0, total_us].
  const obs::TraceSnapshot snap = ToTraceSnapshot(tp);
  const obs::SpanView* root = nullptr;
  for (const obs::SpanView& s : snap.spans) {
    if (s.parent == 0) {
      EXPECT_EQ(root, nullptr) << "second root: " << s.name;
      root = &s;
    }
  }
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->name, "request");
  for (const obs::SpanView& s : snap.spans) {
    EXPECT_LE(s.start_us + s.duration_us, tp.total_us) << s.name;
    if (s.parent != 0) {
      bool found = false;
      for (const obs::SpanView& p : snap.spans) found |= (p.id == s.parent);
      EXPECT_TRUE(found) << s.name << " has unknown parent " << s.parent;
    }
  }

  // Server-side post-processing spans came back too.
  bool saw_sql = false, saw_flush = false, saw_pipeline = false;
  for (const obs::SpanView& s : snap.spans) {
    saw_sql |= s.name == "sql_emit";
    saw_flush |= s.name == "wire_flush";
    saw_pipeline |= s.name == "matchcn";
  }
  EXPECT_TRUE(saw_sql);
  EXPECT_TRUE(saw_flush);
  EXPECT_TRUE(saw_pipeline);

  // Sum consistency: the root span covers the pipeline, and the trace's
  // total covers the root plus the server's post-processing. The client's
  // measured latency may exceed total_us (wire time) but the breakdown
  // must never exceed what the server reported — with slack for the
  // snapshot being taken a hair after wire_flush closes.
  uint64_t child_end_max = 0;
  for (const obs::SpanView& s : snap.spans) {
    child_end_max = std::max<uint64_t>(child_end_max,
                                       s.start_us + s.duration_us);
  }
  EXPECT_LE(child_end_max, tp.total_us);
  EXPECT_GE(root->duration_us, 0);

  // Untraced queries on the same connection carry no TRACE frame.
  Result<Client::QueryResult> plain = client.Query({"denzel", "gangster"});
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain->trace.has_value());
}

// Silent scrapers (connect, send nothing) must not pin the capped admin
// slots forever: the idle sweep reclaims them so /metrics keeps serving.
TEST_F(ObservabilityTest, SilentScrapersAreSweptAndSlotsRecovered) {
  ServerOptions server_options;
  server_options.metrics_idle_timeout_ms = 100;
  StartServer({}, server_options);

  // Fill every admin-connection slot with connections that never speak.
  std::vector<ScopedFd> silent;
  for (int i = 0; i < 64; ++i) {
    Result<ScopedFd> fd =
        ConnectTcp("127.0.0.1", server_->metrics_port(), /*timeout_ms=*/5000);
    ASSERT_TRUE(fd.ok()) << fd.status().ToString();
    silent.push_back(std::move(fd).value());
  }

  // The sweep (ticking at half the 100ms idle limit) must close the
  // stale scrapes and free slots for a real one.
  bool recovered = false;
  for (int attempt = 0; attempt < 100 && !recovered; ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    std::string status, body;
    SplitResponse(HttpGet(server_->metrics_port(), "/metrics"), &status,
                  &body);
    recovered = status.find("200") != std::string::npos;
  }
  EXPECT_TRUE(recovered) << "metrics endpoint never recovered from "
                            "silent-scraper exhaustion";
  if (recovered) {
    // The server actively closed the parked connections (EOF, not a
    // still-open socket) — the slots were reclaimed, not just bypassed.
    char b;
    EXPECT_EQ(::recv(silent[0].get(), &b, 1, 0), 0);
  }
}

TEST_F(ObservabilityTest, MetricsEndpointSurvivesJunkAndEarlyClose) {
  StartServer();
  // Junk request: not a parseable request line — the server answers 405
  // or closes; either way it must keep serving afterwards.
  {
    Result<ScopedFd> fd =
        ConnectTcp("127.0.0.1", server_->metrics_port(), 5000);
    ASSERT_TRUE(fd.ok());
    (void)WriteAll(fd->get(), "\r\n\r\n");
  }
  // Early close: connect and immediately drop.
  { auto fd = ConnectTcp("127.0.0.1", server_->metrics_port(), 5000); }
  const std::string body = Scrape();
  EXPECT_EQ(obs::ValidateExposition(body), "");
}

}  // namespace
}  // namespace matcn::net
