// Protocol-v3 INSERT over loopback: a live-index-backed server accepts
// client inserts, echoes the new index version + tuple location, makes
// the new terms immediately searchable, and selectively invalidates the
// result cache. Servers without a writer answer UNIMPLEMENTED.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "fixtures/imdb_fixture.h"
#include "graph/schema_graph.h"
#include "indexing/term_index.h"
#include "liveindex/concurrent_term_index.h"
#include "liveindex/index_writer.h"
#include "net/client.h"
#include "net/server.h"
#include "service/query_service.h"

namespace matcn::net {
namespace {

WireValue IntValue(int64_t v) {
  WireValue value;
  value.tag = 0;
  value.int_value = v;
  return value;
}

WireValue TextValue(std::string v) {
  WireValue value;
  value.tag = 1;
  value.text_value = std::move(v);
  return value;
}

class LiveInsertTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = testing::MakeMiniImdb();
    schema_graph_ = SchemaGraph::Build(db_.schema());
    live_index_ = std::make_unique<liveindex::ConcurrentTermIndex>(
        TermIndex::Build(db_));
    writer_ =
        std::make_unique<liveindex::IndexWriter>(&db_, live_index_.get());
  }

  // Live-backed service + server with the writer wired in.
  void StartServer() {
    QueryServiceOptions service_options;
    service_options.num_threads = 1;
    service_ = std::make_unique<QueryService>(
        &schema_graph_, live_index_.get(), service_options);
    service_->ConnectWriter(writer_.get());
    ServerOptions server_options;
    server_options.port = 0;
    server_ = std::make_unique<Server>(service_.get(), &db_.schema(),
                                       writer_.get(), server_options);
    ASSERT_TRUE(server_->Start().ok());
  }

  // Read-only server: no writer, INSERT must be rejected.
  void StartServerWithoutWriter() {
    QueryServiceOptions service_options;
    service_options.num_threads = 1;
    service_ = std::make_unique<QueryService>(
        &schema_graph_, live_index_.get(), service_options);
    ServerOptions server_options;
    server_options.port = 0;
    server_ = std::make_unique<Server>(service_.get(), &db_.schema(),
                                       std::move(server_options));
    ASSERT_TRUE(server_->Start().ok());
  }

  Client MustConnect() {
    Result<Client> client = Client::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  Database db_;
  SchemaGraph schema_graph_;
  std::unique_ptr<liveindex::ConcurrentTermIndex> live_index_;
  std::unique_ptr<liveindex::IndexWriter> writer_;
  std::unique_ptr<QueryService> service_;
  std::unique_ptr<Server> server_;
};

TEST_F(LiveInsertTest, InsertEchoesVersionAndLocation) {
  StartServer();
  Client client = MustConnect();

  Result<InsertResult> result = client.Insert(
      "PER", {IntValue(100), TextValue("Viola Davis")});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->index_version, 1u);
  EXPECT_EQ(result->relation, *db_.schema().RelationIdByName("PER"));
  EXPECT_EQ(result->row, db_.relation(result->relation).num_tuples() - 1);

  Result<InsertResult> second = client.Insert(
      "PER", {IntValue(101), TextValue("Forest Whitaker")});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->index_version, 2u);
  EXPECT_EQ(second->row, result->row + 1);
}

TEST_F(LiveInsertTest, InsertedTermIsImmediatelySearchable) {
  StartServer();
  Client client = MustConnect();

  Result<Client::QueryResult> before = client.Query({"viola"});
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->num_tuple_sets, 0u);

  ASSERT_TRUE(
      client.Insert("PER", {IntValue(100), TextValue("Viola Davis")}).ok());

  Result<Client::QueryResult> after = client.Query({"viola"});
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->cache_hit);
  EXPECT_GE(after->num_tuple_sets, 1u);
}

TEST_F(LiveInsertTest, InsertInvalidatesOverlappingCacheEntryOnly) {
  StartServer();
  Client client = MustConnect();

  ASSERT_TRUE(client.Query({"denzel"}).ok());
  ASSERT_TRUE(client.Query({"gangster"}).ok());
  ASSERT_TRUE(client.Query({"denzel"})->cache_hit);
  ASSERT_TRUE(client.Query({"gangster"})->cache_hit);

  ASSERT_TRUE(
      client.Insert("PER", {IntValue(100), TextValue("Denzel Whitaker")})
          .ok());

  EXPECT_FALSE(client.Query({"denzel"})->cache_hit);    // evicted
  EXPECT_TRUE(client.Query({"gangster"})->cache_hit);   // survived
}

TEST_F(LiveInsertTest, StatsReportIndexCounters) {
  StartServer();
  Client client = MustConnect();
  ASSERT_TRUE(client.Query({"denzel"}).ok());
  ASSERT_TRUE(
      client.Insert("PER", {IntValue(100), TextValue("Denzel Whitaker")})
          .ok());
  Result<StatsPayload> stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->index_version, 1u);
  EXPECT_EQ(stats->cache_invalidations, 1u);
  EXPECT_GT(stats->index_delta_bytes, 0u);
}

TEST_F(LiveInsertTest, UnknownRelationIsNotFound) {
  StartServer();
  Client client = MustConnect();
  Result<InsertResult> result =
      client.Insert("NOPE", {IntValue(1), TextValue("x")});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(LiveInsertTest, ArityMismatchIsTypedError) {
  StartServer();
  Client client = MustConnect();
  Result<InsertResult> result =
      client.Insert("PER", {TextValue("only one value")});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  // The connection survives a typed error: the next call works.
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(LiveInsertTest, ServerWithoutWriterAnswersUnimplemented) {
  StartServerWithoutWriter();
  Client client = MustConnect();
  Result<InsertResult> result =
      client.Insert("PER", {IntValue(100), TextValue("Viola Davis")});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
  EXPECT_TRUE(client.Ping().ok());
}

}  // namespace
}  // namespace matcn::net
