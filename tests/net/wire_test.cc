// Wire-format unit tests: header layout, payload round-trips, truncation
// and garbage resistance. Everything here is pure byte manipulation — no
// sockets.

#include "net/wire.h"

#include <gtest/gtest.h>

#include <string>

namespace matcn::net {
namespace {

TEST(FrameHeaderTest, LayoutIsExactlySixteenLittleEndianBytes) {
  std::string out;
  AppendFrame(&out, FrameType::kQuery, 0x1122334455667788ull, "abc");
  ASSERT_EQ(out.size(), kFrameHeaderBytes + 3);
  // payload_len = 3, little-endian.
  EXPECT_EQ(static_cast<uint8_t>(out[0]), 3);
  EXPECT_EQ(static_cast<uint8_t>(out[1]), 0);
  EXPECT_EQ(static_cast<uint8_t>(out[2]), 0);
  EXPECT_EQ(static_cast<uint8_t>(out[3]), 0);
  EXPECT_EQ(static_cast<uint8_t>(out[4]), 'M');
  EXPECT_EQ(static_cast<uint8_t>(out[5]), 'C');
  EXPECT_EQ(static_cast<uint8_t>(out[6]), kProtocolVersion);
  EXPECT_EQ(static_cast<uint8_t>(out[7]),
            static_cast<uint8_t>(FrameType::kQuery));
  // request id, little-endian.
  EXPECT_EQ(static_cast<uint8_t>(out[8]), 0x88);
  EXPECT_EQ(static_cast<uint8_t>(out[15]), 0x11);
  EXPECT_EQ(out.substr(kFrameHeaderBytes), "abc");
}

TEST(FrameHeaderTest, RoundTrip) {
  std::string out;
  AppendFrame(&out, FrameType::kCnRecord, 42, "payload");
  FrameHeader header;
  ASSERT_EQ(ParseFrameHeader(out, &header), HeaderParse::kOk);
  EXPECT_EQ(header.payload_len, 7u);
  EXPECT_EQ(header.type, FrameType::kCnRecord);
  EXPECT_EQ(header.request_id, 42u);
  EXPECT_EQ(header.version, kProtocolVersion);
}

TEST(FrameHeaderTest, IncrementalParseReportsNeedMore) {
  std::string out;
  AppendFrame(&out, FrameType::kPing, 7, "");
  FrameHeader header;
  for (size_t n = 0; n < kFrameHeaderBytes; ++n) {
    EXPECT_EQ(ParseFrameHeader(std::string_view(out).substr(0, n), &header),
              HeaderParse::kNeedMore)
        << n;
  }
  EXPECT_EQ(ParseFrameHeader(out, &header), HeaderParse::kOk);
}

TEST(FrameHeaderTest, BadMagicAndBadVersionAreDistinguished) {
  std::string out;
  AppendFrame(&out, FrameType::kPing, 7, "");
  std::string bad_magic = out;
  bad_magic[4] = 'X';
  FrameHeader header;
  EXPECT_EQ(ParseFrameHeader(bad_magic, &header), HeaderParse::kBadMagic);

  std::string bad_version = out;
  bad_version[6] = kProtocolVersion + 1;
  EXPECT_EQ(ParseFrameHeader(bad_version, &header), HeaderParse::kBadVersion);
}

TEST(WireWriterReaderTest, PrimitivesRoundTrip) {
  WireWriter w;
  w.U8(0xAB);
  w.U16(0xBEEF);
  w.U32(0xDEADBEEF);
  w.U64(0x0123456789ABCDEFull);
  w.Str("hello");
  w.Str("");  // empty strings are legal

  WireReader r(w.buffer());
  uint8_t u8 = 0;
  uint16_t u16 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  std::string s1, s2;
  EXPECT_TRUE(r.U8(&u8));
  EXPECT_TRUE(r.U16(&u16));
  EXPECT_TRUE(r.U32(&u32));
  EXPECT_TRUE(r.U64(&u64));
  EXPECT_TRUE(r.Str(&s1));
  EXPECT_TRUE(r.Str(&s2));
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u16, 0xBEEF);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(s1, "hello");
  EXPECT_EQ(s2, "");
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireWriterReaderTest, UnderflowPoisonsTheReader) {
  WireWriter w;
  w.U16(7);
  WireReader r(w.buffer());
  uint32_t v = 0;
  EXPECT_FALSE(r.U32(&v));  // only 2 bytes available
  EXPECT_FALSE(r.ok());
  uint8_t b = 0;
  EXPECT_FALSE(r.U8(&b));  // poisoned: everything after fails too
}

TEST(WireWriterReaderTest, StringLengthBeyondPayloadFails) {
  WireWriter w;
  w.U32(1000);  // claims a 1000-byte string follows
  w.Str("");    // but only 4 more bytes exist
  WireReader r(w.buffer());
  std::string s;
  EXPECT_FALSE(r.Str(&s));
  EXPECT_FALSE(r.ok());
}

TEST(PayloadTest, QueryRequestRoundTrip) {
  QueryRequest in;
  in.deadline_ms = 1500;
  in.t_max = 7;
  in.max_cns = 32;
  in.include_sql = true;
  in.keywords = {"denzel", "washington", "gangster"};
  WireWriter w;
  Encode(in, &w);

  QueryRequest out;
  ASSERT_TRUE(Decode(w.buffer(), &out));
  EXPECT_EQ(out.deadline_ms, in.deadline_ms);
  EXPECT_EQ(out.t_max, in.t_max);
  EXPECT_EQ(out.max_cns, in.max_cns);
  EXPECT_EQ(out.include_sql, in.include_sql);
  EXPECT_EQ(out.keywords, in.keywords);
}

TEST(PayloadTest, QueryRequestTruncationFailsCleanly) {
  QueryRequest in;
  in.keywords = {"a", "b"};
  WireWriter w;
  Encode(in, &w);
  const std::string full = w.Take();
  for (size_t n = 0; n < full.size(); ++n) {
    QueryRequest out;
    EXPECT_FALSE(Decode(std::string_view(full).substr(0, n), &out)) << n;
  }
}

TEST(PayloadTest, ResultHeaderAndTrailerRoundTrip) {
  ResultHeader h;
  h.cache_hit = true;
  h.degraded = true;
  h.degraded_reason = "cn limit reached";
  h.num_tuple_sets = 10;
  h.num_matches = 19;
  h.num_cns = 5;
  WireWriter w;
  Encode(h, &w);
  ResultHeader h2;
  ASSERT_TRUE(Decode(w.buffer(), &h2));
  EXPECT_EQ(h2.cache_hit, h.cache_hit);
  EXPECT_EQ(h2.degraded, h.degraded);
  EXPECT_EQ(h2.degraded_reason, h.degraded_reason);
  EXPECT_EQ(h2.num_tuple_sets, h.num_tuple_sets);
  EXPECT_EQ(h2.num_matches, h.num_matches);
  EXPECT_EQ(h2.num_cns, h.num_cns);

  ResultTrailer t;
  t.server_latency_us = 12345;
  t.cns_sent = 3;
  t.cns_total = 5;
  WireWriter w2;
  Encode(t, &w2);
  ResultTrailer t2;
  ASSERT_TRUE(Decode(w2.buffer(), &t2));
  EXPECT_EQ(t2.server_latency_us, t.server_latency_us);
  EXPECT_EQ(t2.cns_sent, t.cns_sent);
  EXPECT_EQ(t2.cns_total, t.cns_total);
}

TEST(PayloadTest, CnRecordRoundTripWithUnicodeText) {
  CnRecord in;
  in.index = 2;
  in.num_nodes = 3;
  in.num_non_free = 2;
  in.text = "MOV^{gangster} ⋈ CAST^{} ⋈ PER^{denzel}";
  in.sql = "SELECT t0.*\nFROM MOV t0;";
  WireWriter w;
  Encode(in, &w);
  CnRecord out;
  ASSERT_TRUE(Decode(w.buffer(), &out));
  EXPECT_EQ(out.index, in.index);
  EXPECT_EQ(out.num_nodes, in.num_nodes);
  EXPECT_EQ(out.num_non_free, in.num_non_free);
  EXPECT_EQ(out.text, in.text);
  EXPECT_EQ(out.sql, in.sql);
}

TEST(PayloadTest, ErrorPayloadRoundTrip) {
  ErrorPayload in;
  in.code = WireCode::kResourceExhausted;
  in.message = "queue full";
  WireWriter w;
  Encode(in, &w);
  ErrorPayload out;
  ASSERT_TRUE(Decode(w.buffer(), &out));
  EXPECT_EQ(out.code, in.code);
  EXPECT_EQ(out.message, in.message);
}

TEST(PayloadTest, StatsPayloadRoundTrip) {
  StatsPayload in;
  in.submitted = 1;
  in.completed = 2;
  in.rejected = 3;
  in.cache_hits = 4;
  in.p99_us = 99;
  in.connections_accepted = 5;
  in.frames_sent = 6;
  in.queries_in_flight = 7;
  WireWriter w;
  Encode(in, &w);
  StatsPayload out;
  ASSERT_TRUE(Decode(w.buffer(), &out));
  EXPECT_EQ(out.submitted, 1u);
  EXPECT_EQ(out.completed, 2u);
  EXPECT_EQ(out.rejected, 3u);
  EXPECT_EQ(out.cache_hits, 4u);
  EXPECT_EQ(out.p99_us, 99u);
  EXPECT_EQ(out.connections_accepted, 5u);
  EXPECT_EQ(out.frames_sent, 6u);
  EXPECT_EQ(out.queries_in_flight, 7u);
}

TEST(PayloadTest, TrailingGarbageIsRejected) {
  ResultTrailer t;
  WireWriter w;
  Encode(t, &w);
  std::string bytes = w.Take();
  bytes += "junk";
  ResultTrailer out;
  EXPECT_FALSE(Decode(bytes, &out));
}

TEST(WireCodeTest, StatusCodesMapOneToOneAndBack) {
  // The wire freeze: the first ten WireCode values must mirror StatusCode
  // exactly — a reordered enum would silently change the protocol.
  const Status statuses[] = {
      Status::InvalidArgument("x"), Status::NotFound("x"),
      Status::AlreadyExists("x"),   Status::OutOfRange("x"),
      Status::ResourceExhausted("x"), Status::DeadlineExceeded("x"),
      Status::Internal("x"),        Status::IOError("x"),
      Status::Unimplemented("x")};
  for (const Status& s : statuses) {
    const WireCode code = StatusToWireCode(s);
    EXPECT_EQ(static_cast<uint16_t>(code), static_cast<uint16_t>(s.code()))
        << s.ToString();
    const Status back = WireCodeToStatus(code, "m");
    EXPECT_EQ(back.code(), s.code());
  }
  EXPECT_EQ(StatusToWireCode(Status::OK()), WireCode::kOk);
}

TEST(WireCodeTest, ProtocolOnlyCodesMapToClosestStatus) {
  EXPECT_EQ(WireCodeToStatus(WireCode::kUnavailable, "m").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(WireCodeToStatus(WireCode::kFrameTooLarge, "m").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(WireCodeToStatus(WireCode::kProtocolError, "m").code(),
            StatusCode::kInvalidArgument);
}

TEST(WireCodeTest, NamesAreStable) {
  EXPECT_STREQ(WireCodeName(WireCode::kOk), "OK");
  EXPECT_STREQ(WireCodeName(WireCode::kResourceExhausted),
               "RESOURCE_EXHAUSTED");
  EXPECT_STREQ(WireCodeName(WireCode::kDeadlineExceeded),
               "DEADLINE_EXCEEDED");
  EXPECT_STREQ(WireCodeName(WireCode::kFrameTooLarge), "FRAME_TOO_LARGE");
}

// ------------------------- v5 sharding frames -------------------------

TEST(V5PayloadTest, TsFindRequestRoundTrip) {
  TsFindRequest request;
  request.deadline_ms = 2500;
  request.keywords = {"denzel", "washington", "gangster"};
  WireWriter w;
  Encode(request, &w);
  TsFindRequest decoded;
  ASSERT_TRUE(Decode(w.buffer(), &decoded));
  EXPECT_EQ(decoded.deadline_ms, 2500u);
  EXPECT_EQ(decoded.keywords, request.keywords);
}

TEST(V5PayloadTest, TsFindResultRoundTrip) {
  TsFindResult result;
  result.index_version = 7;
  result.ts_micros = 1234;
  result.degraded = true;
  result.degraded_reason = "deadline during ts stage";
  WireTupleSet a;
  a.relation = 2;
  a.termset = 0b101;
  a.tuples = {1, 5, 0xFFFFFFFFFFull};
  WireTupleSet b;
  b.relation = 4;
  b.termset = 0;  // free tuple-set
  result.tuple_sets = {a, b};

  WireWriter w;
  Encode(result, &w);
  TsFindResult decoded;
  ASSERT_TRUE(Decode(w.buffer(), &decoded));
  EXPECT_EQ(decoded.index_version, 7u);
  EXPECT_EQ(decoded.ts_micros, 1234u);
  EXPECT_TRUE(decoded.degraded);
  EXPECT_EQ(decoded.degraded_reason, "deadline during ts stage");
  ASSERT_EQ(decoded.tuple_sets.size(), 2u);
  EXPECT_EQ(decoded.tuple_sets[0].relation, 2u);
  EXPECT_EQ(decoded.tuple_sets[0].termset, 0b101u);
  EXPECT_EQ(decoded.tuple_sets[0].tuples, a.tuples);
  EXPECT_EQ(decoded.tuple_sets[1].relation, 4u);
  EXPECT_TRUE(decoded.tuple_sets[1].tuples.empty());
}

TEST(V5PayloadTest, TsFindResultTruncationFails) {
  TsFindResult result;
  WireTupleSet ts;
  ts.relation = 1;
  ts.tuples = {10, 20, 30};
  result.tuple_sets = {ts};
  WireWriter w;
  Encode(result, &w);
  const std::string& full = w.buffer();
  TsFindResult decoded;
  for (size_t n = 0; n < full.size(); ++n) {
    EXPECT_FALSE(Decode(std::string_view(full).substr(0, n), &decoded)) << n;
  }
  EXPECT_TRUE(Decode(full, &decoded));
}

TEST(V5PayloadTest, HeartbeatRoundTrip) {
  Heartbeat probe;
  probe.send_us = 0x1122334455ull;
  WireWriter w;
  Encode(probe, &w);
  Heartbeat decoded;
  ASSERT_TRUE(Decode(w.buffer(), &decoded));
  EXPECT_EQ(decoded.send_us, probe.send_us);
}

TEST(V5PayloadTest, HeartbeatAckRoundTrip) {
  HeartbeatAck ack;
  ack.send_us = 99;
  ack.index_version = 12;
  ack.queries_in_flight = 3;
  ack.shard_id = 2;
  WireWriter w;
  Encode(ack, &w);
  HeartbeatAck decoded;
  ASSERT_TRUE(Decode(w.buffer(), &decoded));
  EXPECT_EQ(decoded.send_us, 99u);
  EXPECT_EQ(decoded.index_version, 12u);
  EXPECT_EQ(decoded.queries_in_flight, 3u);
  EXPECT_EQ(decoded.shard_id, 2u);
}

TEST(V5PayloadTest, StatsPayloadCarriesShardAggregates) {
  StatsPayload stats;
  stats.completed = 10;
  stats.shards_total = 4;
  stats.shards_healthy = 3;
  stats.shard_scatters = 100;
  stats.shard_scatter_errors = 2;
  stats.shard_degraded_batches = 1;
  stats.shard_merge_us_mean = 42;
  stats.shard_heartbeats = 500;
  stats.shard_reconnects = 1;
  stats.shard_inserts_routed = 7;
  WireWriter w;
  Encode(stats, &w);
  StatsPayload decoded;
  ASSERT_TRUE(Decode(w.buffer(), &decoded));
  EXPECT_EQ(decoded.completed, 10u);
  EXPECT_EQ(decoded.shards_total, 4u);
  EXPECT_EQ(decoded.shards_healthy, 3u);
  EXPECT_EQ(decoded.shard_scatters, 100u);
  EXPECT_EQ(decoded.shard_scatter_errors, 2u);
  EXPECT_EQ(decoded.shard_degraded_batches, 1u);
  EXPECT_EQ(decoded.shard_merge_us_mean, 42u);
  EXPECT_EQ(decoded.shard_heartbeats, 500u);
  EXPECT_EQ(decoded.shard_reconnects, 1u);
  EXPECT_EQ(decoded.shard_inserts_routed, 7u);
}

}  // namespace
}  // namespace matcn::net
