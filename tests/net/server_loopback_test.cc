// End-to-end loopback tests: a real Server on an ephemeral port, real
// net::Clients over TCP, and a QueryService over the paper's mini-IMDb
// fixture. Covers result correctness against the direct pipeline,
// concurrent clients, typed backpressure (RESOURCE_EXHAUSTED,
// DEADLINE_EXCEEDED), graceful and forced drain, idle timeout, and
// frame-size enforcement.

#include "net/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/matcngen.h"
#include "fixtures/imdb_fixture.h"
#include "graph/schema_graph.h"
#include "net/client.h"

namespace matcn::net {
namespace {

// A gate the pre_execute_hook blocks on until the test opens it. Once
// open it stays open, so later pipeline runs pass straight through.
class Gate {
 public:
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }
  void WaitUntilOpen() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return open_; });
  }
  void Arrive() { arrivals_.fetch_add(1); }
  int arrivals() const { return arrivals_.load(); }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
  std::atomic<int> arrivals_{0};
};

class ServerLoopbackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = testing::MakeMiniImdb();
    schema_graph_ = SchemaGraph::Build(db_.schema());
    index_ = TermIndex::Build(db_);
  }

  // Starts a service + server pair; server_ listens on an ephemeral port.
  void StartServer(QueryServiceOptions service_options = {},
                   ServerOptions server_options = {}) {
    service_ = std::make_unique<QueryService>(&schema_graph_, &index_,
                                              std::move(service_options));
    server_options.port = 0;
    server_ = std::make_unique<Server>(service_.get(), &db_.schema(),
                                       std::move(server_options));
    ASSERT_TRUE(server_->Start().ok());
  }

  Client MustConnect() {
    Result<Client> client = Client::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  Database db_;
  SchemaGraph schema_graph_;
  TermIndex index_;
  std::unique_ptr<QueryService> service_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerLoopbackTest, QueryOverTcpMatchesDirectPipeline) {
  StartServer();
  Client client = MustConnect();

  Result<Client::QueryResult> response =
      client.Query({"denzel", "washington", "gangster"});
  ASSERT_TRUE(response.ok()) << response.status().ToString();

  // The paper's running example: 10 tuple-sets, 19 matches.
  EXPECT_EQ(response->num_tuple_sets, 10u);
  EXPECT_EQ(response->num_matches, 19u);
  EXPECT_FALSE(response->cache_hit);
  EXPECT_FALSE(response->degraded);
  ASSERT_EQ(response->cns.size(), response->cns_total);

  // Rendered CN text must match a direct pipeline run over the same
  // normalized query, record for record.
  const KeywordQuery normalized = service_->Normalize(
      *KeywordQuery::Parse("denzel washington gangster"));
  MatCnGen direct(&schema_graph_);
  GenerationResult expected = direct.Generate(normalized, index_);
  ASSERT_EQ(response->cns.size(), expected.cns.size());
  for (size_t i = 0; i < expected.cns.size(); ++i) {
    EXPECT_EQ(response->cns[i].text,
              expected.cns[i].ToString(db_.schema(), normalized))
        << i;
    EXPECT_EQ(response->cns[i].num_nodes, expected.cns[i].size());
  }
}

TEST_F(ServerLoopbackTest, IncludeSqlStreamsRenderedSql) {
  StartServer();
  Client client = MustConnect();
  Client::QueryParams params;
  params.include_sql = true;
  Result<Client::QueryResult> response =
      client.Query({"denzel", "gangster"}, params);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_FALSE(response->cns.empty());
  for (const CnRecord& record : response->cns) {
    EXPECT_NE(record.sql.find("SELECT"), std::string::npos);
    EXPECT_NE(record.sql.find("ILIKE"), std::string::npos);
  }
  // Without the flag the SQL field stays empty (and off the wire).
  Result<Client::QueryResult> plain = client.Query({"denzel", "gangster"});
  ASSERT_TRUE(plain.ok());
  for (const CnRecord& record : plain->cns) EXPECT_TRUE(record.sql.empty());
}

TEST_F(ServerLoopbackTest, SecondQueryIsACacheHit) {
  StartServer();
  Client client = MustConnect();
  ASSERT_TRUE(client.Query({"denzel", "gangster"}).ok());
  Result<Client::QueryResult> second = client.Query({"denzel", "gangster"});
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cache_hit);
}

TEST_F(ServerLoopbackTest, MaxCnsCapsStreamedRecordsNotTheTotal) {
  StartServer();
  Client client = MustConnect();
  Result<Client::QueryResult> full =
      client.Query({"denzel", "washington", "gangster"});
  ASSERT_TRUE(full.ok());
  ASSERT_GT(full->cns_total, 1u);

  Client::QueryParams params;
  params.max_cns = 1;
  Result<Client::QueryResult> capped =
      client.Query({"denzel", "washington", "gangster"}, params);
  ASSERT_TRUE(capped.ok());
  EXPECT_EQ(capped->cns.size(), 1u);
  EXPECT_EQ(capped->cns_total, full->cns_total);
  EXPECT_EQ(capped->cns[0].text, full->cns[0].text);
}

TEST_F(ServerLoopbackTest, PerRequestTmaxOverrideChangesTheAnswer) {
  StartServer();
  Client client = MustConnect();

  Client::QueryParams tight;
  tight.t_max = 1;  // only single-node CNs fit
  Result<Client::QueryResult> small =
      client.Query({"denzel", "washington", "gangster"}, tight);
  ASSERT_TRUE(small.ok()) << small.status().ToString();

  Result<Client::QueryResult> full =
      client.Query({"denzel", "washington", "gangster"});
  ASSERT_TRUE(full.ok());

  // denzel+washington+gangster needs a join (PER and MOV), so T_max=1
  // generates strictly fewer CNs — and the two must not share a cache
  // entry (the override participates in the key).
  EXPECT_LT(small->cns_total, full->cns_total);
  EXPECT_FALSE(full->cache_hit);

  // Repeating each variant hits its own cache entry.
  Result<Client::QueryResult> small_again =
      client.Query({"denzel", "washington", "gangster"}, tight);
  ASSERT_TRUE(small_again.ok());
  EXPECT_TRUE(small_again->cache_hit);
  EXPECT_EQ(small_again->cns_total, small->cns_total);
}

TEST_F(ServerLoopbackTest, ConcurrentClientsAllGetCorrectAnswers) {
  QueryServiceOptions service_options;
  service_options.num_threads = 4;
  StartServer(service_options);

  const KeywordQuery normalized =
      service_->Normalize(*KeywordQuery::Parse("denzel washington gangster"));
  MatCnGen direct(&schema_graph_);
  const GenerationResult expected = direct.Generate(normalized, index_);

  constexpr int kClients = 8;
  constexpr int kQueriesPerClient = 5;
  std::atomic<int> correct{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&] {
      Result<Client> client = Client::Connect("127.0.0.1", server_->port());
      if (!client.ok()) return;
      for (int i = 0; i < kQueriesPerClient; ++i) {
        Result<Client::QueryResult> response =
            client->Query({"denzel", "washington", "gangster"});
        if (!response.ok()) continue;
        if (response->cns.size() == expected.cns.size() &&
            response->num_matches == expected.matches.size()) {
          correct.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(correct.load(), kClients * kQueriesPerClient);

  const ServerStatsSnapshot stats = server_->NetStats();
  EXPECT_EQ(stats.connections_accepted, static_cast<uint64_t>(kClients));
  EXPECT_EQ(stats.queries_received,
            static_cast<uint64_t>(kClients * kQueriesPerClient));
  EXPECT_EQ(stats.queries_in_flight, 0u);
}

TEST_F(ServerLoopbackTest, OverloadYieldsTypedResourceExhausted) {
  auto gate = std::make_shared<Gate>();
  QueryServiceOptions service_options;
  service_options.num_threads = 1;
  service_options.max_queue = 1;
  service_options.cache_bytes = 0;  // every query must reach the pool
  service_options.pre_execute_hook = [gate] {
    gate->Arrive();
    gate->WaitUntilOpen();
  };
  StartServer(service_options);

  // Query A occupies the single worker (blocked at the gate); B fills the
  // queue. Distinct keywords avoid any cache interplay.
  std::thread a([&] {
    Client client = MustConnect();
    (void)client.Query({"denzel"});
  });
  while (gate->arrivals() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::thread b([&] {
    Client client = MustConnect();
    (void)client.Query({"gangster"});
  });
  while (service_->Stats().queue_depth < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // C must be rejected — as a typed RESOURCE_EXHAUSTED response on a live
  // connection, not a dropped socket.
  Client client = MustConnect();
  Result<Client::QueryResult> rejected = client.Query({"washington"});
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted)
      << rejected.status().ToString();
  EXPECT_TRUE(client.connected()) << "rejection must not drop the connection";

  gate->Open();
  a.join();
  b.join();
  // The connection survived the rejection: a retry now succeeds.
  Result<Client::QueryResult> retry = client.Query({"washington"});
  EXPECT_TRUE(retry.ok()) << retry.status().ToString();
}

TEST_F(ServerLoopbackTest, QueuedDeadlineExpiryYieldsTypedDeadlineExceeded) {
  auto gate = std::make_shared<Gate>();
  QueryServiceOptions service_options;
  service_options.num_threads = 1;
  service_options.cache_bytes = 0;
  service_options.pre_execute_hook = [gate] {
    gate->Arrive();
    gate->WaitUntilOpen();
  };
  StartServer(service_options);

  std::thread blocker([&] {
    Client client = MustConnect();
    (void)client.Query({"denzel"});
  });
  while (gate->arrivals() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // B's deadline expires while it waits behind the blocked worker.
  std::atomic<bool> got_deadline{false};
  std::thread waiter([&] {
    Client client = MustConnect();
    Client::QueryParams params;
    params.deadline_ms = 50;
    Result<Client::QueryResult> response =
        client.Query({"gangster"}, params);
    got_deadline = !response.ok() &&
                   response.status().code() == StatusCode::kDeadlineExceeded;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  gate->Open();
  blocker.join();
  waiter.join();
  EXPECT_TRUE(got_deadline);
}

TEST_F(ServerLoopbackTest, GracefulDrainFinishesInFlightQueries) {
  auto gate = std::make_shared<Gate>();
  QueryServiceOptions service_options;
  service_options.num_threads = 1;
  service_options.cache_bytes = 0;
  service_options.pre_execute_hook = [gate] {
    gate->Arrive();
    gate->WaitUntilOpen();
  };
  ServerOptions server_options;
  server_options.drain_deadline_ms = 10'000;  // plenty: drain should finish
  StartServer(service_options, server_options);

  std::atomic<bool> query_ok{false};
  std::thread in_flight([&] {
    Client client = MustConnect();
    Result<Client::QueryResult> response = client.Query({"denzel"});
    query_ok = response.ok();
  });
  while (gate->arrivals() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  server_->NotifyShutdown();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // Draining: new connections are refused (the listen socket is gone).
  Result<Client> late = Client::Connect("127.0.0.1", server_->port());
  EXPECT_FALSE(late.ok());

  gate->Open();
  server_->Wait();  // must return: the in-flight query completes the drain
  in_flight.join();
  EXPECT_TRUE(query_ok) << "in-flight query must finish during drain";
  EXPECT_EQ(server_->NetStats().drain_cancelled, 0u);
  EXPECT_EQ(server_->NetStats().connections_active, 0u);
}

TEST_F(ServerLoopbackTest, DrainDeadlineCancelsStuckQueries) {
  auto gate = std::make_shared<Gate>();
  QueryServiceOptions service_options;
  service_options.num_threads = 1;
  service_options.cache_bytes = 0;
  service_options.pre_execute_hook = [gate] {
    gate->Arrive();
    gate->WaitUntilOpen();
  };
  ServerOptions server_options;
  server_options.drain_deadline_ms = 100;
  StartServer(service_options, server_options);

  std::atomic<bool> query_failed{false};
  std::thread stuck([&] {
    Client client = MustConnect();
    Result<Client::QueryResult> response = client.Query({"denzel"});
    query_failed = !response.ok();
  });
  while (gate->arrivals() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const auto drain_start = std::chrono::steady_clock::now();
  server_->NotifyShutdown();
  server_->Wait();  // must return within ~drain_deadline_ms, not hang
  const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now() - drain_start)
                          .count();
  EXPECT_LT(waited, 5000) << "forced drain must not wait for the worker";
  EXPECT_GE(server_->NetStats().drain_cancelled, 1u);

  gate->Open();  // unblock the worker so the service can shut down
  stuck.join();
  EXPECT_TRUE(query_failed) << "cancelled query's connection was closed";
}

TEST_F(ServerLoopbackTest, IdleConnectionsAreSweptAndCounted) {
  ServerOptions server_options;
  server_options.idle_timeout_ms = 50;
  StartServer({}, server_options);

  Client idle = MustConnect();
  ASSERT_TRUE(idle.Ping().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  // The sweep closed us with GOING_AWAY "idle timeout"; the next call
  // surfaces it (or the close, depending on buffering) as a failure.
  EXPECT_FALSE(idle.Ping().ok());

  Client fresh = MustConnect();
  Result<StatsPayload> stats = fresh.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(stats->idle_closed, 1u);
}

TEST_F(ServerLoopbackTest, OversizedFrameGetsTypedErrorAndClose) {
  ServerOptions server_options;
  server_options.max_frame_bytes = 256;
  StartServer({}, server_options);

  Client client = MustConnect();
  Result<Client::QueryResult> response =
      client.Query({std::string(1024, 'x')});
  ASSERT_FALSE(response.ok());
  // FRAME_TOO_LARGE maps to InvalidArgument client-side.
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument)
      << response.status().ToString();
  EXPECT_GE(server_->NetStats().protocol_errors, 1u);
}

TEST_F(ServerLoopbackTest, PingAndStatsRoundTrip) {
  StartServer();
  Client client = MustConnect();
  EXPECT_TRUE(client.Ping().ok());
  ASSERT_TRUE(client.Query({"denzel", "gangster"}).ok());

  Result<StatsPayload> stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->submitted, 1u);
  EXPECT_EQ(stats->completed, 1u);
  EXPECT_EQ(stats->connections_accepted, 1u);
  EXPECT_EQ(stats->connections_active, 1u);
  EXPECT_EQ(stats->queries_in_flight, 0u);
  EXPECT_GE(stats->frames_received, 3u);  // ping + query + stats
  EXPECT_GE(stats->frames_sent, 4u);      // pong + header/record/trailer
  EXPECT_GT(stats->bytes_sent, 0u);
}

TEST_F(ServerLoopbackTest, ServerDestructorWithLiveClientsDoesNotHang) {
  StartServer();
  Client client = MustConnect();
  ASSERT_TRUE(client.Query({"denzel"}).ok());
  server_.reset();  // Shutdown + drain with a connected idle client
  EXPECT_FALSE(client.Ping().ok());
}

}  // namespace
}  // namespace matcn::net
