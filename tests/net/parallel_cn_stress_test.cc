// Concurrency stress for parallel per-match CN generation under the full
// serving stack, designed to run under TSAN: many clients, intra-query
// MatchCN helpers stealing work from the same pool that runs the queries,
// and random mid-flight cancels plus tight deadlines. Two invariants:
//
//   1. No lost callbacks — every submission resolves exactly once, as a
//      response or a typed error, no matter when its cancel landed.
//   2. No partial-result mislabels — a response not flagged `degraded` is
//      the complete answer (identical to a sequential reference run), and
//      an interrupted or truncated pipeline result is always flagged.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/matcngen.h"
#include "fixtures/imdb_fixture.h"
#include "graph/schema_graph.h"
#include "net/client.h"
#include "net/server.h"
#include "service/query_service.h"

namespace matcn {
namespace {

// The fixture's interesting keyword combinations — multi-match queries so
// the parallel MatchCN partition actually has work to split.
const std::vector<std::string>& QueryTexts() {
  static const std::vector<std::string> kTexts = {
      "denzel",
      "gangster",
      "washington",
      "denzel gangster",
      "denzel washington",
      "washington gangster",
      "denzel washington gangster",
  };
  return kTexts;
}

class ParallelCnStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = testing::MakeMiniImdb();
    schema_graph_ = SchemaGraph::Build(db_.schema());
    index_ = TermIndex::Build(db_);
  }

  // Complete answer for `text` from a sequential single-threaded run —
  // the reference a non-degraded response must equal.
  GenerationResult Reference(const QueryService& service,
                             const std::string& text) const {
    const KeywordQuery normalized =
        service.Normalize(*KeywordQuery::Parse(text));
    MatCnGen direct(&schema_graph_);
    return direct.Generate(normalized, index_);
  }

  Database db_;
  SchemaGraph schema_graph_;
  TermIndex index_;
};

// Service-level: SubmitAsync with random Cancel() calls racing the
// pipeline. Counts callbacks and checks the degraded flag against the
// pipeline stats on every response.
TEST_F(ParallelCnStressTest, AsyncSubmitWithRandomCancels) {
  QueryServiceOptions options;
  options.num_threads = 4;
  options.gen.num_threads = 4;  // helpers share the same 4-worker pool
  options.cache_bytes = 0;      // every submission runs the pipeline
  options.pre_execute_hook = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  };
  QueryService service(&schema_graph_, &index_, options);

  std::vector<GenerationResult> references;
  for (const std::string& text : QueryTexts()) {
    references.push_back(Reference(service, text));
  }

  constexpr int kSubmissions = 200;
  std::atomic<int> callbacks{0};
  std::atomic<int> mislabels{0};
  std::atomic<int> complete_ok{0};
  std::mutex mu;
  std::condition_variable cv;

  std::mt19937 rng(1234);
  std::uniform_int_distribution<size_t> pick_query(0, QueryTexts().size() - 1);
  std::uniform_int_distribution<int> pick_deadline(0, 3);
  std::uniform_int_distribution<int> pick_cancel_us(0, 3000);

  std::vector<std::shared_ptr<CancelToken>> tokens;
  std::vector<int> cancel_after_us;
  tokens.reserve(kSubmissions);
  for (int i = 0; i < kSubmissions; ++i) {
    const size_t q = pick_query(rng);
    // Mix of no deadline, generous, and already-tight deadlines.
    const int choice = pick_deadline(rng);
    Deadline deadline;  // infinite
    if (choice == 1) deadline = Deadline::AfterMillis(1);
    if (choice == 2) deadline = Deadline::AfterMillis(5);
    const GenerationResult* expected = &references[q];
    auto query = KeywordQuery::Parse(QueryTexts()[q]);
    ASSERT_TRUE(query.ok());
    auto token = service.SubmitAsync(
        *query, deadline, {},
        [&, expected](Result<QueryResponse> response) {
          if (response.ok()) {
            const GenerationStats& stats = response->result->stats;
            const bool partial = stats.interrupted || stats.truncated;
            if (partial && !response->degraded) mislabels.fetch_add(1);
            if (!response->degraded) {
              // Complete answers must be the complete answer.
              if (response->result->cns.size() != expected->cns.size() ||
                  response->result->matches != expected->matches) {
                mislabels.fetch_add(1);
              } else {
                complete_ok.fetch_add(1);
              }
            }
          }
          if (callbacks.fetch_add(1) + 1 == kSubmissions) {
            std::lock_guard<std::mutex> lock(mu);
            cv.notify_all();
          }
        });
    tokens.push_back(std::move(token));
    cancel_after_us.push_back(pick_cancel_us(rng));
  }

  // Cancel roughly half the submissions at random points — some before
  // they are scheduled, some mid-pipeline, some after completion.
  std::vector<std::thread> cancellers;
  for (size_t i = 0; i < tokens.size(); i += 2) {
    cancellers.emplace_back([&, i] {
      std::this_thread::sleep_for(std::chrono::microseconds(cancel_after_us[i]));
      tokens[i]->Cancel();
    });
  }
  for (std::thread& t : cancellers) t.join();

  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return callbacks.load() == kSubmissions; });
  }
  EXPECT_EQ(callbacks.load(), kSubmissions) << "lost or duplicated callbacks";
  EXPECT_EQ(mislabels.load(), 0);
  // Uncancelled, undeadlined submissions exist in the mix, so some
  // complete answers must have come through — otherwise the mislabel
  // check was vacuous.
  EXPECT_GT(complete_ok.load(), 0);
}

// Net-level: 16 clients over TCP against an in-process server with
// parallel CN generation on, random per-request deadlines racing the
// pipeline. Every request must resolve (response or typed error) and
// non-degraded responses must match the sequential reference
// record-for-record.
TEST_F(ParallelCnStressTest, SixteenClientsWithRandomDeadlines) {
  QueryServiceOptions service_options;
  service_options.num_threads = 4;
  service_options.gen.num_threads = 4;
  service_options.cache_bytes = size_t{8} << 20;  // exercise hits too
  service_options.pre_execute_hook = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  };
  QueryService service(&schema_graph_, &index_, service_options);
  net::ServerOptions server_options;
  server_options.port = 0;
  net::Server server(&service, &db_.schema(), server_options);
  ASSERT_TRUE(server.Start().ok());

  struct Expected {
    std::vector<std::string> keywords;
    size_t cns = 0;
    size_t matches = 0;
  };
  std::vector<Expected> expected;
  for (const std::string& text : QueryTexts()) {
    const GenerationResult reference = Reference(service, text);
    Expected e;
    e.keywords = KeywordQuery::Parse(text)->keywords();
    e.cns = reference.cns.size();
    e.matches = reference.matches.size();
    expected.push_back(std::move(e));
  }

  constexpr int kClients = 16;
  constexpr int kRequestsPerClient = 20;
  std::atomic<int> resolved{0};
  std::atomic<int> ok_complete{0};
  std::atomic<int> ok_degraded{0};
  std::atomic<int> typed_errors{0};
  std::atomic<int> transport_errors{0};
  std::atomic<int> mislabels{0};

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::mt19937 rng(static_cast<unsigned>(c) * 7919u + 17u);
      std::uniform_int_distribution<size_t> pick_query(0, expected.size() - 1);
      std::uniform_int_distribution<int> pick_deadline(0, 3);
      Result<net::Client> client =
          net::Client::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        transport_errors.fetch_add(kRequestsPerClient);
        resolved.fetch_add(kRequestsPerClient);
        return;
      }
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const Expected& e = expected[pick_query(rng)];
        net::Client::QueryParams params;
        const int choice = pick_deadline(rng);
        if (choice == 1) params.deadline_ms = 1;
        if (choice == 2) params.deadline_ms = 5;
        Result<net::Client::QueryResult> response =
            client->Query(e.keywords, params);
        resolved.fetch_add(1);
        if (response.ok()) {
          if (response->degraded) {
            ok_degraded.fetch_add(1);
          } else if (response->cns_total != e.cns ||
                     response->num_matches != e.matches) {
            // A response not flagged degraded claimed completeness but
            // was not the complete answer.
            mislabels.fetch_add(1);
          } else {
            ok_complete.fetch_add(1);
          }
        } else if (response.status().code() ==
                       StatusCode::kDeadlineExceeded ||
                   response.status().code() ==
                       StatusCode::kResourceExhausted) {
          typed_errors.fetch_add(1);
        } else {
          transport_errors.fetch_add(1);
        }
        if (!client->connected()) {
          Result<net::Client> again =
              net::Client::Connect("127.0.0.1", server.port());
          if (!again.ok()) {
            const int remaining = kRequestsPerClient - i - 1;
            transport_errors.fetch_add(remaining);
            resolved.fetch_add(remaining);
            return;
          }
          *client = std::move(again).value();
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  server.Shutdown();

  EXPECT_EQ(resolved.load(), kClients * kRequestsPerClient)
      << "every request must resolve exactly once";
  EXPECT_EQ(mislabels.load(), 0);
  EXPECT_EQ(transport_errors.load(), 0);
  EXPECT_GT(ok_complete.load(), 0) << "no complete answers — checks vacuous";
}

}  // namespace
}  // namespace matcn
