// EventLoop unit tests: cross-thread task posting, timers, fd dispatch
// and wakeup semantics, each against a real epoll instance.

#include "net/event_loop.h"

#include <sys/socket.h>
#include <sys/epoll.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

namespace matcn::net {
namespace {

class EventLoopTest : public ::testing::Test {
 protected:
  void StartLoop() {
    ASSERT_TRUE(loop_.ok());
    thread_ = std::thread([this] { loop_.Run(); });
  }
  void StopLoop() {
    loop_.Stop();
    if (thread_.joinable()) thread_.join();
  }
  void TearDown() override { StopLoop(); }

  EventLoop loop_;
  std::thread thread_;
};

TEST_F(EventLoopTest, PostTaskRunsOnLoopThread) {
  StartLoop();
  std::atomic<bool> ran{false};
  std::atomic<bool> on_loop_thread{false};
  loop_.PostTask([&] {
    on_loop_thread = loop_.InLoopThread();
    ran = true;
  });
  for (int i = 0; i < 1000 && !ran; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(ran);
  EXPECT_TRUE(on_loop_thread);
  EXPECT_FALSE(loop_.InLoopThread());  // we are not the loop thread
}

TEST_F(EventLoopTest, PostedTasksPreserveOrder) {
  StartLoop();
  std::vector<int> order;
  std::atomic<int> done{0};
  for (int i = 0; i < 16; ++i) {
    loop_.PostTask([&, i] {
      order.push_back(i);  // loop thread only: no lock needed
      done.fetch_add(1);
    });
  }
  for (int i = 0; i < 1000 && done < 16; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
}

TEST_F(EventLoopTest, RunAfterFiresOnceAfterTheDelay) {
  StartLoop();
  std::atomic<int> fired{0};
  const auto start = std::chrono::steady_clock::now();
  std::atomic<int64_t> elapsed_ms{-1};
  loop_.RunAfter(30, [&] {
    elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
    fired.fetch_add(1);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_EQ(fired, 1);
  EXPECT_GE(elapsed_ms, 30);
}

TEST_F(EventLoopTest, CancelledTimerNeverFires) {
  StartLoop();
  std::atomic<bool> fired{false};
  const uint64_t id = loop_.RunAfter(50, [&] { fired = true; });
  loop_.CancelTimer(id);
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_FALSE(fired);
}

TEST_F(EventLoopTest, TimersFireInDeadlineOrder) {
  StartLoop();
  std::vector<int> order;
  std::atomic<int> done{0};
  loop_.RunAfter(60, [&] { order.push_back(3); done.fetch_add(1); });
  loop_.RunAfter(20, [&] { order.push_back(1); done.fetch_add(1); });
  loop_.RunAfter(40, [&] { order.push_back(2); done.fetch_add(1); });
  for (int i = 0; i < 2000 && done < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 3);
}

TEST_F(EventLoopTest, FdCallbackSeesReadableSocket) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ScopedFd reader(fds[0]);
  ScopedFd writer(fds[1]);

  std::atomic<int> reads{0};
  ASSERT_TRUE(loop_
                  .AddFd(reader.get(), EPOLLIN,
                         [&](uint32_t events) {
                           if ((events & EPOLLIN) == 0) return;
                           char buf[16];
                           const ssize_t n =
                               ::read(reader.get(), buf, sizeof(buf));
                           if (n > 0) reads.fetch_add(1);
                         })
                  .ok());
  StartLoop();
  ASSERT_EQ(::write(writer.get(), "x", 1), 1);
  for (int i = 0; i < 1000 && reads < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(reads, 1);

  // A removed fd no longer dispatches. The promise both sequences the
  // write after the removal and puts the loop thread's last touch of
  // `reader` before the ScopedFd destructors (happens-before, not sleep).
  std::promise<void> removed;
  loop_.PostTask([&] {
    loop_.RemoveFd(reader.get());
    removed.set_value();
  });
  removed.get_future().get();
  ASSERT_EQ(::write(writer.get(), "y", 1), 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(reads, 1);
}

TEST_F(EventLoopTest, WakeupRunsWakeupCallback) {
  std::atomic<int> wakeups{0};
  loop_.SetWakeupCallback([&] { wakeups.fetch_add(1); });
  StartLoop();
  loop_.Wakeup();
  for (int i = 0; i < 1000 && wakeups < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(wakeups, 1);
  // Stop() itself wakes the loop, and that final wake still dispatches the
  // callback — join before `wakeups` goes out of scope.
  StopLoop();
}

TEST_F(EventLoopTest, StopDrainsAlreadyPostedTasks) {
  StartLoop();
  std::atomic<bool> ran{false};
  loop_.PostTask([&] { ran = true; });
  StopLoop();
  EXPECT_TRUE(ran);
}

}  // namespace
}  // namespace matcn::net
