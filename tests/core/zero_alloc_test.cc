// Proves the hot-path memory claim of DESIGN.md §12: after one warming
// round per worker, repeated SingleCnInto calls — across matches and
// across queries (MatchGraph Rebind) — perform zero heap allocations.
// Global operator new/delete replacements count every heap round-trip;
// the counter is armed only around the measured steady-state region.
//
// This binary must not be built under ASan/TSan (those runtimes own the
// allocator); the sanitizer CI jobs exclude it, and the test also skips
// itself defensively if a sanitizer is detected.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "core/single_cn.h"
#include "core/tsfind.h"
#include "fixtures/imdb_fixture.h"
#include "graph/schema_graph.h"
#include "indexing/term_index.h"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define MATCN_SANITIZED 1
#else
#define MATCN_SANITIZED 0
#endif

#if !MATCN_SANITIZED

namespace {
std::atomic<bool> g_armed{false};
std::atomic<size_t> g_allocs{0};

void* CountedAlloc(size_t size) {
  if (g_armed.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(size_t size) { return CountedAlloc(size); }
void* operator new[](size_t size) { return CountedAlloc(size); }
void* operator new(size_t size, std::align_val_t align) {
  if (g_armed.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::aligned_alloc(static_cast<size_t>(align),
                               (size + static_cast<size_t>(align) - 1) &
                                   ~(static_cast<size_t>(align) - 1));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](size_t size, std::align_val_t align) {
  return operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, size_t, std::align_val_t) noexcept {
  std::free(p);
}

#endif  // !MATCN_SANITIZED

namespace matcn {
namespace {

#if !MATCN_SANITIZED

class ScopedCount {
 public:
  ScopedCount() {
    g_allocs.store(0, std::memory_order_relaxed);
    g_armed.store(true, std::memory_order_relaxed);
  }
  ~ScopedCount() { g_armed.store(false, std::memory_order_relaxed); }
  size_t count() const { return g_allocs.load(std::memory_order_relaxed); }
};

int TsIndex(const Database& db, const std::vector<TupleSet>& sets,
            const std::string& rel, Termset termset) {
  const RelationId id = *db.schema().RelationIdByName(rel);
  for (size_t i = 0; i < sets.size(); ++i) {
    if (sets[i].relation == id && sets[i].termset == termset) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

TEST(ZeroAllocTest, CountingHooksAreLive) {
  // Guard against the whole suite passing vacuously because the
  // replacement operators stopped being linked in.
  ScopedCount count;
  std::vector<int>* v = new std::vector<int>();
  v->resize(100);
  delete v;
  EXPECT_GE(count.count(), 2u);
}

TEST(ZeroAllocTest, SingleCnSteadyStateIsHeapFree) {
  Database db = testing::MakeMiniImdb();
  const SchemaGraph schema_graph = SchemaGraph::Build(db.schema());
  const TermIndex index = TermIndex::Build(db);

  auto q = KeywordQuery::Parse("denzel washington gangster");
  ASSERT_TRUE(q.ok());
  std::vector<TupleSet> sets = TupleSetFinder::FindMem(index, *q);
  TupleSetGraph g(&schema_graph, &sets);

  // Two match shapes: a directly adjacent pair, and one that needs a free
  // connector (so the BFS genuinely expands and dedups).
  const int mov_g = TsIndex(db, sets, "MOV", 0b100);
  const int cast_dw = TsIndex(db, sets, "CAST", 0b011);
  const int per_dw = TsIndex(db, sets, "PER", 0b011);
  ASSERT_GE(mov_g, 0);
  ASSERT_GE(cast_dw, 0);
  ASSERT_GE(per_dw, 0);
  std::vector<std::vector<int>> matches = {
      {g.NonFreeNode(mov_g), g.NonFreeNode(cast_dw)},
      {g.NonFreeNode(mov_g), g.NonFreeNode(per_dw)},
  };

  SingleCnScratch scratch;
  MatchGraph mg(&g);
  CandidateNetwork cn;
  SingleCnOptions opts;

  // Warming round: arena chunks, vector capacities, and the output CN all
  // reach their high-water mark here.
  std::vector<size_t> expected_sizes;
  for (const std::vector<int>& match : matches) {
    mg.Reset(match);
    ASSERT_TRUE(SingleCnInto(mg, opts, &scratch, &cn));
    expected_sizes.push_back(cn.size());
  }
  ASSERT_GT(scratch.arena_bytes_peak(), 0u);
  const size_t warmed_peak = scratch.arena_bytes_peak();

  // Steady state: replay both matches many times; not one heap call.
  size_t allocs;
  {
    ScopedCount count;
    for (int round = 0; round < 25; ++round) {
      for (size_t m = 0; m < matches.size(); ++m) {
        mg.Reset(matches[m]);
        if (!SingleCnInto(mg, opts, &scratch, &cn)) std::abort();
        if (cn.size() != expected_sizes[m]) std::abort();
      }
    }
    allocs = count.count();
  }
  EXPECT_EQ(allocs, 0u)
      << "heap allocations leaked into the warmed SingleCn hot path";
  EXPECT_EQ(scratch.arena_bytes_peak(), warmed_peak)
      << "replayed rounds should not grow the arena";
}

TEST(ZeroAllocTest, RebindAcrossQueriesStaysHeapFree) {
  Database db = testing::MakeMiniImdb();
  const SchemaGraph schema_graph = SchemaGraph::Build(db.schema());
  const TermIndex index = TermIndex::Build(db);

  // Two different queries = two tuple-set graphs; the per-worker scratch
  // and MatchGraph overlay must survive the switch without fresh heap.
  auto q1 = KeywordQuery::Parse("denzel washington gangster");
  auto q2 = KeywordQuery::Parse("denzel gangster");
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  std::vector<TupleSet> sets1 = TupleSetFinder::FindMem(index, *q1);
  std::vector<TupleSet> sets2 = TupleSetFinder::FindMem(index, *q2);
  TupleSetGraph g1(&schema_graph, &sets1);
  TupleSetGraph g2(&schema_graph, &sets2);

  const int m1a = TsIndex(db, sets1, "MOV", 0b100);
  const int m1b = TsIndex(db, sets1, "PER", 0b011);
  const int m2a = TsIndex(db, sets2, "MOV", 0b010);
  const int m2b = TsIndex(db, sets2, "PER", 0b001);
  ASSERT_GE(m1a, 0);
  ASSERT_GE(m1b, 0);
  ASSERT_GE(m2a, 0);
  ASSERT_GE(m2b, 0);
  const std::vector<int> match1 = {g1.NonFreeNode(m1a), g1.NonFreeNode(m1b)};
  const std::vector<int> match2 = {g2.NonFreeNode(m2a), g2.NonFreeNode(m2b)};

  SingleCnScratch scratch;
  MatchGraph mg(&g1);
  CandidateNetwork cn;
  SingleCnOptions opts;

  // Warm both query shapes once.
  mg.Reset(match1);
  ASSERT_TRUE(SingleCnInto(mg, opts, &scratch, &cn));
  mg.Rebind(&g2);
  mg.Reset(match2);
  ASSERT_TRUE(SingleCnInto(mg, opts, &scratch, &cn));

  size_t allocs;
  {
    ScopedCount count;
    for (int round = 0; round < 25; ++round) {
      mg.Rebind(&g1);
      mg.Reset(match1);
      if (!SingleCnInto(mg, opts, &scratch, &cn)) std::abort();
      mg.Rebind(&g2);
      mg.Reset(match2);
      if (!SingleCnInto(mg, opts, &scratch, &cn)) std::abort();
    }
    allocs = count.count();
  }
  EXPECT_EQ(allocs, 0u)
      << "query switch (Rebind) re-entered the heap after warmup";
}

#else  // MATCN_SANITIZED

TEST(ZeroAllocTest, SkippedUnderSanitizers) {
  GTEST_SKIP() << "allocation counting is meaningless under sanitizers";
}

#endif

}  // namespace
}  // namespace matcn
