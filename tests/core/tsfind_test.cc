// TSInter (Algorithm 5) and the three TSFind front-ends.

#include "core/tsfind.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.h"

#include "fixtures/imdb_fixture.h"
#include "indexing/term_index.h"

namespace matcn {
namespace {

std::map<Termset, std::vector<TupleId>> AsMap(
    const std::vector<TermsetTuples>& pairs) {
  std::map<Termset, std::vector<TupleId>> m;
  for (const TermsetTuples& p : pairs) m[p.termset] = p.tuples;
  return m;
}

TEST(TsInterTest, PaperFigure5Example) {
  // P = {<{d},{C3,P1,P3}>, <{w},{C3,C4,P2,P3}>} — relations C(=0), P(=1).
  const TupleId c3(0, 3), c4(0, 4), p1(1, 1), p2(1, 2), p3(1, 3);
  std::vector<TermsetTuples> input = {
      {0b01, {c3, p1, p3}},
      {0b10, {c3, c4, p2, p3}},
  };
  auto out = AsMap(TsInter(std::move(input)));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0b01], (std::vector<TupleId>{p1}));
  EXPECT_EQ(out[0b10], (std::vector<TupleId>{c4, p2}));
  EXPECT_EQ(out[0b11], (std::vector<TupleId>{c3, p3}));
}

TEST(TsInterTest, ThreeWayIntersection) {
  // One tuple holds all three keywords; it must end up only in {d,w,g}.
  const TupleId t(0, 0), u(0, 1);
  std::vector<TermsetTuples> input = {
      {0b001, {t, u}},
      {0b010, {t}},
      {0b100, {t}},
  };
  auto out = AsMap(TsInter(std::move(input)));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0b001], (std::vector<TupleId>{u}));
  EXPECT_EQ(out[0b111], (std::vector<TupleId>{t}));
}

TEST(TsInterTest, DisjointListsPassThrough) {
  const TupleId a(0, 0), b(1, 0);
  std::vector<TermsetTuples> input = {{0b01, {a}}, {0b10, {b}}};
  auto out = AsMap(TsInter(std::move(input)));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0b01], (std::vector<TupleId>{a}));
  EXPECT_EQ(out[0b10], (std::vector<TupleId>{b}));
}

TEST(TsInterTest, EmptyListsAreDropped) {
  std::vector<TermsetTuples> input = {{0b01, {}}, {0b10, {TupleId(0, 0)}}};
  auto out = AsMap(TsInter(std::move(input)));
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.contains(0b10));
}

TEST(TsInterTest, SingleEntryIsIdentity) {
  std::vector<TermsetTuples> input = {{0b1, {TupleId(0, 0), TupleId(0, 2)}}};
  auto out = AsMap(TsInter(std::move(input)));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0b1].size(), 2u);
}

// Property: TSInter assigns each tuple to exactly the termset of all the
// keywords whose input lists contain it. Verified against a direct
// per-tuple computation over randomized inputs.
class TsInterProperty : public ::testing::TestWithParam<int> {};

TEST_P(TsInterProperty, PartitionSemantics) {
  const int seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed));
  const int num_keywords = 2 + static_cast<int>(rng.Uniform(0, 3));  // 2-5
  const int num_tuples = 40;

  // For each tuple pick a random keyword subset (possibly empty).
  std::vector<Termset> tuple_mask(num_tuples);
  for (int t = 0; t < num_tuples; ++t) {
    tuple_mask[t] =
        static_cast<Termset>(rng.Uniform(0, (1u << num_keywords) - 1));
  }
  std::vector<TermsetTuples> input(num_keywords);
  for (int k = 0; k < num_keywords; ++k) {
    input[k].termset = Termset{1} << k;
    for (int t = 0; t < num_tuples; ++t) {
      if ((tuple_mask[t] >> k) & 1) {
        input[k].tuples.emplace_back(0, static_cast<uint64_t>(t));
      }
    }
  }
  auto out = AsMap(TsInter(std::move(input)));

  // Expected: group tuples by their mask.
  std::map<Termset, std::vector<TupleId>> expected;
  for (int t = 0; t < num_tuples; ++t) {
    if (tuple_mask[t] != 0) {
      expected[tuple_mask[t]].emplace_back(0, static_cast<uint64_t>(t));
    }
  }
  EXPECT_EQ(out, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TsInterProperty, ::testing::Range(0, 25));

class TsFindTest : public ::testing::Test {
 protected:
  TsFindTest()
      : db_(testing::MakeMiniImdb()), index_(TermIndex::Build(db_)) {}
  Database db_;
  TermIndex index_;
};

TEST_F(TsFindTest, FindMemMatchesPaperExample) {
  auto q = KeywordQuery::Parse("denzel washington gangster");
  ASSERT_TRUE(q.ok());
  std::vector<TupleSet> sets = TupleSetFinder::FindMem(index_, *q);
  EXPECT_EQ(sets.size(), 10u);
  // Exact-containment semantics: every tuple-set is non-empty, and no
  // tuple appears in two tuple-sets.
  std::set<uint64_t> seen;
  for (const TupleSet& ts : sets) {
    EXPECT_FALSE(ts.tuples.empty());
    EXPECT_NE(ts.termset, 0u);
    for (const TupleId& id : ts.tuples) {
      EXPECT_TRUE(seen.insert(id.packed()).second)
          << "tuple in two tuple-sets";
    }
  }
}

TEST_F(TsFindTest, ScanAndMemAgree) {
  for (const char* text :
       {"denzel", "washington gangster", "denzel washington gangster",
        "gangster boss", "mary", "russell crowe"}) {
    auto q = KeywordQuery::Parse(text);
    ASSERT_TRUE(q.ok());
    EXPECT_EQ(TupleSetFinder::FindScan(db_, *q),
              TupleSetFinder::FindMem(index_, *q))
        << text;
  }
}

TEST_F(TsFindTest, UnknownKeywordYieldsNoTupleSets) {
  auto q = KeywordQuery::Parse("qqqqq");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(TupleSetFinder::FindMem(index_, *q).empty());
}

TEST_F(TsFindTest, PartialUnknownKeywordStillFindsOthers) {
  auto q = KeywordQuery::Parse("gangster qqqqq");
  ASSERT_TRUE(q.ok());
  std::vector<TupleSet> sets = TupleSetFinder::FindMem(index_, *q);
  // {gangster} tuple-sets exist in 4 relations; {qqqqq} in none.
  EXPECT_EQ(sets.size(), 4u);
}

TEST_F(TsFindTest, TupleSetsAreSortedDeterministically) {
  auto q = KeywordQuery::Parse("denzel washington gangster");
  ASSERT_TRUE(q.ok());
  std::vector<TupleSet> sets = TupleSetFinder::FindMem(index_, *q);
  for (size_t i = 1; i < sets.size(); ++i) {
    EXPECT_TRUE(sets[i - 1] < sets[i] ||
                !(sets[i] < sets[i - 1]));  // non-decreasing
  }
}

}  // namespace
}  // namespace matcn
