// Query match generation: paper Algorithm 1 vs the cover-product variant.

#include "core/qmgen.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "core/minimal_cover.h"

namespace matcn {
namespace {

TupleSet Ts(RelationId rel, Termset termset) {
  TupleSet ts;
  ts.relation = rel;
  ts.termset = termset;
  ts.tuples = {TupleId(rel, 0)};
  return ts;
}

TEST(QmGenTest, SingleKeywordSingleRelation) {
  auto q = KeywordQuery::Parse("gangster");
  ASSERT_TRUE(q.ok());
  std::vector<TupleSet> sets = {Ts(0, 0b1)};
  auto matches = GenerateMatches(*q, sets);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0], (QueryMatch{0}));
}

TEST(QmGenTest, Example3Counts) {
  auto q2 = KeywordQuery::Parse("denzel washington");
  ASSERT_TRUE(q2.ok());
  // R(dw) = {PER(3), CAST(2)}; R(d) = {PER, CAST, CHAR(0)}; R(w) = {PER}.
  std::vector<TupleSet> sets = {Ts(3, 0b11), Ts(2, 0b11), Ts(3, 0b01),
                                Ts(2, 0b01), Ts(0, 0b01), Ts(3, 0b10)};
  auto matches = GenerateMatches(*q2, sets);
  EXPECT_EQ(matches.size(), 5u);  // 2 + 3x1 (paper Example 3)
}

TEST(QmGenTest, NaiveAndFastAgreeOnPaperExample) {
  auto q = KeywordQuery::Parse("denzel washington");
  ASSERT_TRUE(q.ok());
  std::vector<TupleSet> sets = {Ts(3, 0b11), Ts(2, 0b11), Ts(3, 0b01),
                                Ts(2, 0b01), Ts(0, 0b01), Ts(3, 0b10)};
  EXPECT_EQ(GenerateMatchesNaive(*q, sets), GenerateMatches(*q, sets));
}

TEST(QmGenTest, NoMatchesWhenKeywordUncovered) {
  auto q = KeywordQuery::Parse("a1 b2");
  ASSERT_TRUE(q.ok());
  std::vector<TupleSet> sets = {Ts(0, 0b01)};  // b2 occurs nowhere
  EXPECT_TRUE(GenerateMatches(*q, sets).empty());
  EXPECT_TRUE(GenerateMatchesNaive(*q, sets).empty());
}

TEST(QmGenTest, MatchesHaveDistinctTermsets) {
  auto q = KeywordQuery::Parse("a1 b2");
  ASSERT_TRUE(q.ok());
  // Same termset {a1} in two relations can never pair up as one match.
  std::vector<TupleSet> sets = {Ts(0, 0b01), Ts(1, 0b01), Ts(2, 0b10)};
  auto matches = GenerateMatches(*q, sets);
  for (const QueryMatch& m : matches) {
    std::set<Termset> termsets;
    for (int i : m) termsets.insert(sets[i].termset);
    EXPECT_EQ(termsets.size(), m.size());
  }
  EXPECT_EQ(matches.size(), 2u);  // {0,2} and {1,2}
}

TEST(QmGenTest, MatchTermsetsFormMinimalCovers) {
  auto q = KeywordQuery::Parse("a1 b2 c3");
  ASSERT_TRUE(q.ok());
  std::vector<TupleSet> sets = {Ts(0, 0b001), Ts(1, 0b010), Ts(2, 0b100),
                                Ts(3, 0b011), Ts(4, 0b110), Ts(0, 0b111)};
  for (const QueryMatch& m : GenerateMatches(*q, sets)) {
    std::vector<Termset> termsets;
    for (int i : m) termsets.push_back(sets[i].termset);
    EXPECT_TRUE(IsMinimalCover(termsets, q->FullTermset()));
  }
}

// Property sweep: random tuple-set configurations; the naive paper
// algorithm and the optimized one must produce identical match sets.
class QmGenEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(QmGenEquivalence, NaiveEqualsFast) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const int num_keywords = 1 + static_cast<int>(rng.Uniform(0, 2));  // 1-3
  const Termset full = static_cast<Termset>((1u << num_keywords) - 1);
  std::vector<std::string> kws;
  for (int k = 0; k < num_keywords; ++k) {
    kws.push_back("kw" + std::to_string(k));
  }
  auto q = KeywordQuery::FromKeywords(kws);
  ASSERT_TRUE(q.ok());

  // Up to 8 tuple-sets over up to 4 relations with random termsets;
  // (relation, termset) pairs must be unique, as TSFind guarantees.
  std::set<std::pair<RelationId, Termset>> used;
  std::vector<TupleSet> sets;
  const int n = static_cast<int>(rng.Uniform(0, 8));
  for (int i = 0; i < n; ++i) {
    const RelationId rel = static_cast<RelationId>(rng.Uniform(0, 3));
    const Termset t = static_cast<Termset>(rng.Uniform(1, full));
    if (used.insert({rel, t}).second) sets.push_back(Ts(rel, t));
  }
  std::sort(sets.begin(), sets.end());
  EXPECT_EQ(GenerateMatchesNaive(*q, sets), GenerateMatches(*q, sets));
}

INSTANTIATE_TEST_SUITE_P(Seeds, QmGenEquivalence, ::testing::Range(0, 40));

}  // namespace
}  // namespace matcn
