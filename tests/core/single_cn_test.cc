// SingleCN (Algorithm 3): shortest sound CN per query match.

#include "core/single_cn.h"

#include <gtest/gtest.h>

#include "core/tsfind.h"
#include "fixtures/imdb_fixture.h"
#include "indexing/term_index.h"

namespace matcn {
namespace {

class SingleCnTest : public ::testing::Test {
 protected:
  SingleCnTest()
      : db_(testing::MakeMiniImdb()),
        schema_graph_(SchemaGraph::Build(db_.schema())),
        index_(TermIndex::Build(db_)) {}

  /// Finds the tuple-set index with the given relation name and termset.
  int TsIndex(const std::vector<TupleSet>& sets, const std::string& rel,
              Termset termset) {
    const RelationId id = *db_.schema().RelationIdByName(rel);
    for (size_t i = 0; i < sets.size(); ++i) {
      if (sets[i].relation == id && sets[i].termset == termset) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  Database db_;
  SchemaGraph schema_graph_;
  TermIndex index_;
};

TEST_F(SingleCnTest, DirectlyAdjacentMatch) {
  auto q = KeywordQuery::Parse("denzel washington gangster");
  ASSERT_TRUE(q.ok());
  std::vector<TupleSet> sets = TupleSetFinder::FindMem(index_, *q);
  TupleSetGraph g(&schema_graph_, &sets);
  // M = {CAST^{d,g}, PER^{d,w}}? No: use MOV^{g} and CAST^{d,w}: adjacent.
  const int mov_g = TsIndex(sets, "MOV", 0b100);
  const int cast_dw = TsIndex(sets, "CAST", 0b011);
  ASSERT_GE(mov_g, 0);
  ASSERT_GE(cast_dw, 0);
  MatchGraph mg(&g, {g.NonFreeNode(mov_g), g.NonFreeNode(cast_dw)});
  auto cn = SingleCn(mg);
  ASSERT_TRUE(cn.has_value());
  EXPECT_EQ(cn->size(), 2u);  // direct MOV-CAST edge, no free tuple-set
  EXPECT_EQ(cn->num_non_free(), 2);
}

TEST_F(SingleCnTest, MatchNeedingOneFreeConnector) {
  auto q = KeywordQuery::Parse("denzel washington gangster");
  ASSERT_TRUE(q.ok());
  std::vector<TupleSet> sets = TupleSetFinder::FindMem(index_, *q);
  TupleSetGraph g(&schema_graph_, &sets);
  // Example 5: M3 = {MOV^{g}, PER^{d,w}} -> MOV - CAST{} - PER.
  const int mov_g = TsIndex(sets, "MOV", 0b100);
  const int per_dw = TsIndex(sets, "PER", 0b011);
  ASSERT_GE(mov_g, 0);
  ASSERT_GE(per_dw, 0);
  MatchGraph mg(&g, {g.NonFreeNode(mov_g), g.NonFreeNode(per_dw)});
  auto cn = SingleCn(mg);
  ASSERT_TRUE(cn.has_value());
  EXPECT_EQ(cn->size(), 3u);
  int free_cast = 0;
  const RelationId cast = *db_.schema().RelationIdByName("CAST");
  for (const CnNode& n : cn->nodes()) {
    if (n.relation == cast && n.is_free()) ++free_cast;
  }
  EXPECT_EQ(free_cast, 1);
}

TEST_F(SingleCnTest, SingletonMatchIsItsOwnCn) {
  auto q = KeywordQuery::Parse("gangster");
  ASSERT_TRUE(q.ok());
  std::vector<TupleSet> sets = TupleSetFinder::FindMem(index_, *q);
  TupleSetGraph g(&schema_graph_, &sets);
  MatchGraph mg(&g, {g.NonFreeNode(0)});
  auto cn = SingleCn(mg);
  ASSERT_TRUE(cn.has_value());
  EXPECT_EQ(cn->size(), 1u);
}

TEST_F(SingleCnTest, TmaxOneBlocksMultiNodeCn) {
  auto q = KeywordQuery::Parse("denzel washington gangster");
  ASSERT_TRUE(q.ok());
  std::vector<TupleSet> sets = TupleSetFinder::FindMem(index_, *q);
  TupleSetGraph g(&schema_graph_, &sets);
  const int mov_g = TsIndex(sets, "MOV", 0b100);
  const int per_dw = TsIndex(sets, "PER", 0b011);
  MatchGraph mg(&g, {g.NonFreeNode(mov_g), g.NonFreeNode(per_dw)});
  SingleCnOptions opts;
  opts.t_max = 2;  // the needed CN has 3 tuple-sets
  EXPECT_FALSE(SingleCn(mg, opts).has_value());
}

TEST_F(SingleCnTest, EmptyMatchYieldsNothing) {
  auto q = KeywordQuery::Parse("gangster");
  ASSERT_TRUE(q.ok());
  std::vector<TupleSet> sets = TupleSetFinder::FindMem(index_, *q);
  TupleSetGraph g(&schema_graph_, &sets);
  MatchGraph mg(&g, {});
  EXPECT_FALSE(SingleCn(mg).has_value());
}

TEST_F(SingleCnTest, DisconnectedRelationsYieldNothing) {
  // Two isolated relations: no path, no CN.
  Database db;
  ASSERT_TRUE(db.CreateRelation(
                    RelationSchema("A", {{"id", ValueType::kInt, true, false},
                                         {"t", ValueType::kText, false,
                                          true}}))
                  .ok());
  ASSERT_TRUE(db.CreateRelation(
                    RelationSchema("B", {{"id", ValueType::kInt, true, false},
                                         {"t", ValueType::kText, false,
                                          true}}))
                  .ok());
  ASSERT_TRUE(db.Insert("A", {Value(int64_t{1}), Value("alpha")}).ok());
  ASSERT_TRUE(db.Insert("B", {Value(int64_t{1}), Value("beta")}).ok());
  SchemaGraph sg = SchemaGraph::Build(db.schema());
  TermIndex index = TermIndex::Build(db);
  auto q = KeywordQuery::Parse("alpha beta");
  ASSERT_TRUE(q.ok());
  std::vector<TupleSet> sets = TupleSetFinder::FindMem(index, *q);
  ASSERT_EQ(sets.size(), 2u);
  TupleSetGraph g(&sg, &sets);
  MatchGraph mg(&g, {g.NonFreeNode(0), g.NonFreeNode(1)});
  EXPECT_FALSE(SingleCn(mg).has_value());
}

TEST_F(SingleCnTest, ReturnedCnIsShortest) {
  // BFS guarantee: for every match the returned CN has minimum size among
  // all CNs containing that match. Check against the direct-edge cases.
  auto q = KeywordQuery::Parse("denzel gangster");
  ASSERT_TRUE(q.ok());
  std::vector<TupleSet> sets = TupleSetFinder::FindMem(index_, *q);
  TupleSetGraph g(&schema_graph_, &sets);
  for (size_t i = 0; i < sets.size(); ++i) {
    for (size_t j = i + 1; j < sets.size(); ++j) {
      if ((sets[i].termset | sets[j].termset) != q->FullTermset()) continue;
      if (sets[i].termset == sets[j].termset) continue;
      MatchGraph mg(&g, {g.NonFreeNode(static_cast<int>(i)),
                         g.NonFreeNode(static_cast<int>(j))});
      auto cn = SingleCn(mg);
      if (!cn.has_value()) continue;
      const bool adjacent =
          schema_graph_.HasEdge(sets[i].relation, sets[j].relation);
      if (adjacent) {
        EXPECT_EQ(cn->size(), 2u);
      } else {
        EXPECT_GE(cn->size(), 3u);
      }
      EXPECT_TRUE(cn->IsSound(schema_graph_));
    }
  }
}

}  // namespace
}  // namespace matcn
