#include "core/keyword_query.h"

#include <gtest/gtest.h>

namespace matcn {
namespace {

TEST(KeywordQueryTest, ParseLowercasesAndDedups) {
  auto q = KeywordQuery::Parse("Denzel WASHINGTON denzel");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->size(), 2u);
  EXPECT_EQ(q->keyword(0), "denzel");
  EXPECT_EQ(q->keyword(1), "washington");
}

TEST(KeywordQueryTest, ParsePunctuation) {
  auto q = KeywordQuery::Parse("south-east, africa!");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->keywords(),
            (std::vector<std::string>{"south", "east", "africa"}));
}

TEST(KeywordQueryTest, EmptyQueryFails) {
  EXPECT_FALSE(KeywordQuery::Parse("").ok());
  EXPECT_FALSE(KeywordQuery::Parse("  ,,, ").ok());
}

TEST(KeywordQueryTest, TooManyKeywordsFails) {
  std::vector<std::string> kws;
  for (int i = 0; i < 33; ++i) kws.push_back("kw" + std::to_string(i));
  EXPECT_FALSE(KeywordQuery::FromKeywords(kws).ok());
}

TEST(KeywordQueryTest, ExactlyMaxKeywordsSucceeds) {
  std::vector<std::string> kws;
  for (int i = 0; i < 32; ++i) kws.push_back("kw" + std::to_string(i));
  auto q = KeywordQuery::FromKeywords(kws);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->size(), 32u);
  EXPECT_EQ(q->FullTermset(), ~Termset{0});
}

TEST(KeywordQueryTest, FullTermsetHasOneBitPerKeyword) {
  auto q = KeywordQuery::Parse("a1 b2 c3");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->FullTermset(), 0b111u);
  EXPECT_EQ(TermsetSize(q->FullTermset()), 3);
}

TEST(KeywordQueryTest, TermsetToString) {
  auto q = KeywordQuery::Parse("denzel washington gangster");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->TermsetToString(0b011), "{denzel,washington}");
  EXPECT_EQ(q->TermsetToString(0b100), "{gangster}");
  EXPECT_EQ(q->TermsetToString(0), "{}");
}

TEST(KeywordQueryTest, KeywordIndex) {
  auto q = KeywordQuery::Parse("alpha beta");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->KeywordIndex("beta"), 1);
  EXPECT_EQ(q->KeywordIndex("gamma"), -1);
}

TEST(TermsetTest, SizeCountsBits) {
  EXPECT_EQ(TermsetSize(0), 0);
  EXPECT_EQ(TermsetSize(0b1011), 3);
}

}  // namespace
}  // namespace matcn
