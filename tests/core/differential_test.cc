// Differential test harness: seeded random schemas and tuple-set
// configurations drive both implementations of every stage that has two —
// optimized QMGen vs paper Algorithm 1 verbatim, and parallel MatchCN vs
// the sequential path — and assert the outputs are element- and
// order-identical. Each case is derived from a single integer seed, so a
// failure message names the exact reproducer.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/matcngen.h"
#include "core/qmgen.h"
#include "core/tsfind.h"
#include "fixtures/imdb_fixture.h"
#include "graph/schema_graph.h"
#include "indexing/term_index.h"
#include "service/thread_pool.h"
#include "simd/dispatch.h"
#include "storage/schema.h"

namespace matcn {
namespace {

// One generated case: a connected random schema plus a random non-free
// tuple-set configuration R_Q over a 2-4 keyword query.
struct GeneratedCase {
  DatabaseSchema schema;
  KeywordQuery query;
  std::vector<TupleSet> tuple_sets;
};

// Random connected schema: `num_relations` relations, a spanning tree of
// RICs (each relation i > 0 linked to a random earlier relation, with
// random FK direction) plus a few extra edges. FK columns are decided
// before construction because RelationSchema attributes are fixed at
// creation time.
DatabaseSchema MakeRandomSchema(Rng& rng, size_t num_relations) {
  struct Edge {
    size_t holder;
    size_t referenced;
  };
  std::vector<Edge> edges;
  for (size_t i = 1; i < num_relations; ++i) {
    const size_t other = rng.Index(i);
    if (rng.Bernoulli(0.5)) {
      edges.push_back({i, other});
    } else {
      edges.push_back({other, i});
    }
  }
  // Extra non-tree edges make cycles, so distinct matches can admit CNs
  // over genuinely different join paths.
  const size_t extras = static_cast<size_t>(rng.Uniform(0, 2));
  for (size_t e = 0; e < extras && num_relations >= 3; ++e) {
    const size_t a = rng.Index(num_relations);
    const size_t b = rng.Index(num_relations);
    if (a == b) continue;
    edges.push_back({a, b});
  }

  std::vector<size_t> fk_count(num_relations, 0);
  std::vector<std::vector<std::string>> fk_names(num_relations);
  for (Edge& edge : edges) {
    fk_names[edge.holder].push_back(
        "fk" + std::to_string(fk_count[edge.holder]++) + "_r" +
        std::to_string(edge.referenced));
  }

  DatabaseSchema schema;
  for (size_t r = 0; r < num_relations; ++r) {
    std::vector<Attribute> attributes;
    attributes.push_back({"id", ValueType::kInt, /*is_primary_key=*/true,
                          /*searchable=*/false});
    attributes.push_back({"text", ValueType::kText, false, true});
    for (const std::string& fk : fk_names[r]) {
      attributes.push_back({fk, ValueType::kInt, false, false});
    }
    auto added = schema.AddRelation(
        RelationSchema("R" + std::to_string(r), std::move(attributes)));
    EXPECT_TRUE(added.ok());
  }
  std::vector<size_t> fk_used(num_relations, 0);
  for (const Edge& edge : edges) {
    ForeignKey fk;
    fk.from_relation = "R" + std::to_string(edge.holder);
    fk.from_attribute = fk_names[edge.holder][fk_used[edge.holder]++];
    fk.to_relation = "R" + std::to_string(edge.referenced);
    fk.to_attribute = "id";
    EXPECT_TRUE(schema.AddForeignKey(fk).ok());
  }
  return schema;
}

// Random R_Q: walk (relation, termset) pairs in the deterministic TSFind
// order (by relation, then termset) and keep each with a density that
// leaves the naive QMGen's 2^|R_Q| enumeration tractable.
std::vector<TupleSet> MakeRandomTupleSets(Rng& rng, size_t num_relations,
                                          const KeywordQuery& query) {
  const Termset full = query.FullTermset();
  std::vector<TupleSet> tuple_sets;
  for (size_t r = 0; r < num_relations; ++r) {
    for (Termset t = 1; t <= full; ++t) {
      if (!rng.Bernoulli(0.28)) continue;
      TupleSet ts;
      ts.relation = static_cast<RelationId>(r);
      ts.termset = t;
      const uint64_t rows = rng.Uniform(1, 3);
      for (uint64_t row = 0; row < rows; ++row) {
        ts.tuples.emplace_back(ts.relation, row);
      }
      tuple_sets.push_back(std::move(ts));
      if (tuple_sets.size() >= 12) return tuple_sets;  // bound 2^|R_Q|
    }
  }
  return tuple_sets;
}

GeneratedCase MakeCase(uint64_t seed) {
  Rng rng(0x9E3779B97F4A7C15ull ^ (seed * 0x2545F4914F6CDD1Dull + seed));
  GeneratedCase c;
  const size_t num_relations = static_cast<size_t>(rng.Uniform(2, 8));
  c.schema = MakeRandomSchema(rng, num_relations);
  const size_t num_keywords = static_cast<size_t>(rng.Uniform(2, 4));
  std::vector<std::string> keywords;
  for (size_t k = 0; k < num_keywords; ++k) {
    keywords.push_back("k" + std::to_string(k));
  }
  auto query = KeywordQuery::FromKeywords(std::move(keywords));
  EXPECT_TRUE(query.ok());
  c.query = *query;
  c.tuple_sets = MakeRandomTupleSets(rng, num_relations, c.query);
  return c;
}

void ExpectIdenticalResults(const GenerationResult& a,
                            const GenerationResult& b, uint64_t seed) {
  ASSERT_EQ(a.matches, b.matches) << "seed " << seed;
  ASSERT_EQ(a.cns.size(), b.cns.size()) << "seed " << seed;
  for (size_t i = 0; i < a.cns.size(); ++i) {
    EXPECT_EQ(a.cns[i], b.cns[i]) << "seed " << seed << " cn " << i;
  }
  EXPECT_EQ(a.stats.truncated, b.stats.truncated) << "seed " << seed;
  EXPECT_EQ(a.stats.interrupted, b.stats.interrupted) << "seed " << seed;
}

// The seed ranges below must add up to >= 200 generated cases; the split
// into suites exists so a failure localizes the property that broke, not
// to shrink coverage.
constexpr uint64_t kQmgenCases = 240;
constexpr uint64_t kParallelCases = 240;
constexpr uint64_t kExecutorCases = 60;

// Optimized QMGen (minimal covers over distinct termsets, then relation
// product) must equal paper Algorithm 1 verbatim — same matches, same
// order.
TEST(DifferentialTest, QmgenFastEqualsNaive) {
  size_t nonempty = 0;
  for (uint64_t seed = 0; seed < kQmgenCases; ++seed) {
    const GeneratedCase c = MakeCase(seed);
    const std::vector<QueryMatch> naive =
        GenerateMatchesNaive(c.query, c.tuple_sets);
    const std::vector<QueryMatch> fast =
        GenerateMatches(c.query, c.tuple_sets);
    ASSERT_EQ(naive, fast) << "seed " << seed;
    if (!naive.empty()) ++nonempty;
  }
  // The generator parameters must keep a healthy share of cases where
  // matches exist at all, or the differential check is vacuous.
  EXPECT_GE(nonempty, kQmgenCases / 4);
}

// Parallel MatchCN (std::thread fallback path) must be element- and
// order-identical to the sequential path on every generated case.
TEST(DifferentialTest, ParallelMatchCnEqualsSequential) {
  size_t with_cns = 0;
  for (uint64_t seed = 0; seed < kParallelCases; ++seed) {
    const GeneratedCase c = MakeCase(seed);
    const SchemaGraph schema_graph = SchemaGraph::Build(c.schema);
    Rng rng(seed + 7);
    MatCnGenOptions options;
    options.t_max = static_cast<int>(rng.Uniform(3, 6));

    MatCnGen sequential(&schema_graph, options);
    options.num_threads = static_cast<unsigned>(rng.Uniform(2, 8));
    MatCnGen parallel(&schema_graph, options);

    const GenerationResult a =
        sequential.GenerateFromTupleSets(c.query, c.tuple_sets, 0);
    const GenerationResult b =
        parallel.GenerateFromTupleSets(c.query, c.tuple_sets, 0);
    ExpectIdenticalResults(a, b, seed);
    EXPECT_GE(b.stats.cn_workers, 1u) << "seed " << seed;
    EXPECT_GT(b.stats.cn_parallel_efficiency, 0.0) << "seed " << seed;
    EXPECT_LE(b.stats.cn_parallel_efficiency, 1.0) << "seed " << seed;
    if (!a.cns.empty()) ++with_cns;
  }
  EXPECT_GE(with_cns, kParallelCases / 4);
}

// Same property through the serving-layer wiring: helpers borrowed from a
// shared ThreadPool via the TaskExecutor seam instead of dedicated
// std::threads. A pool smaller than num_threads also exercises refused
// helpers (the caller then drains the whole match list itself).
TEST(DifferentialTest, ParallelMatchCnEqualsSequentialViaExecutor) {
  ThreadPool pool(3, /*max_queue=*/16);
  for (uint64_t seed = 0; seed < kExecutorCases; ++seed) {
    const GeneratedCase c = MakeCase(seed);
    const SchemaGraph schema_graph = SchemaGraph::Build(c.schema);
    MatCnGenOptions options;
    MatCnGen sequential(&schema_graph, options);
    options.num_threads = 8;  // > pool size: some helpers are refused
    options.executor = &pool;
    MatCnGen parallel(&schema_graph, options);

    const GenerationResult a =
        sequential.GenerateFromTupleSets(c.query, c.tuple_sets, 0);
    const GenerationResult b =
        parallel.GenerateFromTupleSets(c.query, c.tuple_sets, 0);
    ExpectIdenticalResults(a, b, seed);
  }
}

// max_matches truncation must bite identically on both paths: the same
// truncated match prefix, the same CNs, the same truncated flag.
TEST(DifferentialTest, TruncationIsPathIndependent) {
  for (uint64_t seed = 0; seed < 40; ++seed) {
    const GeneratedCase c = MakeCase(seed);
    const SchemaGraph schema_graph = SchemaGraph::Build(c.schema);
    MatCnGenOptions options;
    options.max_matches = 3;
    MatCnGen sequential(&schema_graph, options);
    options.num_threads = 4;
    MatCnGen parallel(&schema_graph, options);

    const GenerationResult a =
        sequential.GenerateFromTupleSets(c.query, c.tuple_sets, 0);
    const GenerationResult b =
        parallel.GenerateFromTupleSets(c.query, c.tuple_sets, 0);
    ASSERT_LE(a.matches.size(), 3u) << "seed " << seed;
    ExpectIdenticalResults(a, b, seed);
  }
}

// The SIMD posting kernels (varbyte block decode + intersection) feed
// TSFind; pinning the scalar fallback must leave every tuple-set — and
// therefore the whole downstream pipeline — byte-identical.
TEST(DifferentialTest, TsfindScalarEqualsSimd) {
  Database db = testing::MakeMiniImdb();
  const SchemaGraph schema_graph = SchemaGraph::Build(db.schema());
  const TermIndex index = TermIndex::Build(db);
  const std::vector<std::string> query_strings = {
      "denzel washington gangster", "denzel gangster", "washington",
      "denzel washington", "gangster film"};
  for (const std::string& qs : query_strings) {
    auto q = KeywordQuery::Parse(qs);
    ASSERT_TRUE(q.ok()) << qs;

    simd::ForceScalar(true);
    const std::vector<TupleSet> scalar_sets =
        TupleSetFinder::FindMem(index, *q);
    simd::ForceScalar(false);
    const std::vector<TupleSet> simd_sets = TupleSetFinder::FindMem(index, *q);
    ASSERT_EQ(scalar_sets, simd_sets) << qs;
    // The full-scan oracle keeps both honest about semantics, not just
    // mutual agreement.
    ASSERT_EQ(simd_sets, TupleSetFinder::FindScan(db, *q)) << qs;

    // ...and the CNs built on top match too.
    MatCnGen gen(&schema_graph, {});
    const GenerationResult a = gen.GenerateFromTupleSets(*q, scalar_sets, 0);
    const GenerationResult b = gen.GenerateFromTupleSets(*q, simd_sets, 0);
    ExpectIdenticalResults(a, b, 0);
  }
}

// BuildTupleSets sorts keyword lists rarest-first before intersecting;
// the result must not depend on the caller's list order (the proof is in
// the implementation comment — this is the executable version).
TEST(DifferentialTest, BuildTupleSetsIsInputOrderInvariant) {
  Database db = testing::MakeMiniImdb();
  const TermIndex index = TermIndex::Build(db);
  auto q = KeywordQuery::Parse("denzel washington gangster");
  ASSERT_TRUE(q.ok());

  std::vector<TermsetTuples> lists;
  for (size_t i = 0; i < q->size(); ++i) {
    TermsetTuples tt;
    tt.termset = Termset{1} << i;
    tt.tuples = index.TuplesFor(q->keyword(i));
    lists.push_back(std::move(tt));
  }

  const std::vector<TupleSet> reference =
      TupleSetFinder::BuildTupleSets(lists);
  EXPECT_FALSE(reference.empty());

  std::vector<size_t> order(lists.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  do {
    std::vector<TermsetTuples> permuted;
    for (size_t i : order) permuted.push_back(lists[i]);
    ASSERT_EQ(TupleSetFinder::BuildTupleSets(std::move(permuted)), reference);
  } while (std::next_permutation(order.begin(), order.end()));
}

}  // namespace
}  // namespace matcn
