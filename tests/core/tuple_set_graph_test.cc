// Tuple-set graph (Definition 9) and match graphs (Definition 10).

#include "core/tuple_set_graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/tsfind.h"
#include "fixtures/imdb_fixture.h"
#include "indexing/term_index.h"

namespace matcn {
namespace {

class TupleSetGraphTest : public ::testing::Test {
 protected:
  TupleSetGraphTest()
      : db_(testing::MakeMiniImdb()),
        schema_graph_(SchemaGraph::Build(db_.schema())),
        index_(TermIndex::Build(db_)) {
    auto q = KeywordQuery::Parse("denzel washington gangster");
    query_ = *q;
    tuple_sets_ = TupleSetFinder::FindMem(index_, query_);
  }

  Database db_;
  SchemaGraph schema_graph_;
  TermIndex index_;
  KeywordQuery query_;
  std::vector<TupleSet> tuple_sets_;
};

TEST_F(TupleSetGraphTest, OneFreeNodePerRelationPlusNonFree) {
  TupleSetGraph g(&schema_graph_, &tuple_sets_);
  EXPECT_EQ(g.num_nodes(),
            schema_graph_.num_relations() + tuple_sets_.size());
  for (RelationId r = 0; r < schema_graph_.num_relations(); ++r) {
    EXPECT_TRUE(g.IsFree(g.FreeNode(r)));
    EXPECT_EQ(g.node(g.FreeNode(r)).relation, r);
  }
  for (size_t i = 0; i < tuple_sets_.size(); ++i) {
    const int id = g.NonFreeNode(static_cast<int>(i));
    EXPECT_FALSE(g.IsFree(id));
    EXPECT_EQ(g.node(id).tuple_set_index, static_cast<int>(i));
    EXPECT_EQ(g.node(id).relation, tuple_sets_[i].relation);
    EXPECT_EQ(g.node(id).termset, tuple_sets_[i].termset);
  }
}

TEST_F(TupleSetGraphTest, AdjacencyMirrorsSchemaGraph) {
  TupleSetGraph g(&schema_graph_, &tuple_sets_);
  for (size_t u = 0; u < g.num_nodes(); ++u) {
    for (int v : g.Neighbors(static_cast<int>(u))) {
      EXPECT_TRUE(schema_graph_.HasEdge(g.node(static_cast<int>(u)).relation,
                                        g.node(v).relation));
      EXPECT_NE(static_cast<int>(u), v);
    }
  }
  // The paper's Example: CAST's free node is adjacent to every tuple-set
  // of the other four relations plus their free nodes — 11 non-CAST
  // tuple-set nodes exist? CAST{} adjacency = all nodes over MOV, PER,
  // CHAR, ROLE (free + non-free).
  const RelationId cast = *db_.schema().RelationIdByName("CAST");
  size_t expected = 0;
  for (size_t i = 0; i < g.num_nodes(); ++i) {
    const RelationId r = g.node(static_cast<int>(i)).relation;
    if (r != cast) ++expected;
  }
  EXPECT_EQ(g.Neighbors(g.FreeNode(cast)).size(), expected);
}

TEST_F(TupleSetGraphTest, SameRelationNodesAreNotAdjacent) {
  TupleSetGraph g(&schema_graph_, &tuple_sets_);
  for (size_t u = 0; u < g.num_nodes(); ++u) {
    for (int v : g.Neighbors(static_cast<int>(u))) {
      EXPECT_NE(g.node(static_cast<int>(u)).relation, g.node(v).relation);
    }
  }
}

TEST_F(TupleSetGraphTest, NodeLabelsAreUnique) {
  TupleSetGraph g(&schema_graph_, &tuple_sets_);
  std::set<std::string> labels;
  for (size_t i = 0; i < g.num_nodes(); ++i) {
    EXPECT_TRUE(labels.insert(g.NodeLabel(static_cast<int>(i))).second);
  }
}

TEST_F(TupleSetGraphTest, MatchGraphKeepsOnlyMatchAndFreeNodes) {
  TupleSetGraph g(&schema_graph_, &tuple_sets_);
  // Match = first two non-free nodes.
  std::vector<int> match = {g.NonFreeNode(0), g.NonFreeNode(1)};
  MatchGraph mg(&g, match);
  for (size_t i = 0; i < g.num_nodes(); ++i) {
    const int id = static_cast<int>(i);
    const bool expected = g.IsFree(id) || id == match[0] || id == match[1];
    EXPECT_EQ(mg.Allowed(id), expected);
  }
  // Filtered adjacency contains only allowed endpoints and is a subset of
  // the full adjacency.
  for (size_t u = 0; u < g.num_nodes(); ++u) {
    for (int v : mg.Neighbors(static_cast<int>(u))) {
      EXPECT_TRUE(mg.Allowed(v));
      const auto& full = g.Neighbors(static_cast<int>(u));
      EXPECT_NE(std::find(full.begin(), full.end(), v), full.end());
    }
  }
  // Disallowed nodes have no outgoing edges in the match graph.
  for (size_t u = 0; u < g.num_nodes(); ++u) {
    if (!mg.Allowed(static_cast<int>(u))) {
      EXPECT_TRUE(mg.Neighbors(static_cast<int>(u)).empty());
    }
  }
}

TEST_F(TupleSetGraphTest, MatchGraphNodeCountBoundFromPaper) {
  // Paper Example 4: with |Q| = 3, any match graph has at most
  // 3 non-free + (#relations) free nodes — for IMDb, at most 8.
  TupleSetGraph g(&schema_graph_, &tuple_sets_);
  std::vector<int> match = {g.NonFreeNode(0), g.NonFreeNode(1),
                            g.NonFreeNode(2)};
  MatchGraph mg(&g, match);
  size_t allowed = 0;
  for (size_t i = 0; i < g.num_nodes(); ++i) {
    if (mg.Allowed(static_cast<int>(i))) ++allowed;
  }
  EXPECT_EQ(allowed, schema_graph_.num_relations() + match.size());
}

}  // namespace
}  // namespace matcn
