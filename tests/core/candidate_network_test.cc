// CandidateNetwork structure, canonical forms and the soundness rule.

#include "core/candidate_network.h"

#include <gtest/gtest.h>

#include "fixtures/imdb_fixture.h"
#include "graph/schema_graph.h"

namespace matcn {
namespace {

class CnTest : public ::testing::Test {
 protected:
  CnTest()
      : db_(testing::MakeMiniImdb()),
        graph_(SchemaGraph::Build(db_.schema())) {}
  RelationId Id(const std::string& name) {
    return *db_.schema().RelationIdByName(name);
  }
  Database db_;
  SchemaGraph graph_;
};

TEST_F(CnTest, SingleNodeBasics) {
  CandidateNetwork cn =
      CandidateNetwork::SingleNode(CnNode{Id("MOV"), 0b1, 0});
  EXPECT_EQ(cn.size(), 1u);
  EXPECT_EQ(cn.num_non_free(), 1);
  EXPECT_EQ(cn.CoveredTermset(), 0b1u);
  EXPECT_EQ(cn.Leaves(), (std::vector<int>{0}));
  EXPECT_TRUE(cn.IsSound(graph_));
}

TEST_F(CnTest, ExtendBuildsTree) {
  CandidateNetwork cn =
      CandidateNetwork::SingleNode(CnNode{Id("MOV"), 0b100, 0})
          .Extend(0, CnNode{Id("CAST"), 0, -1})
          .Extend(1, CnNode{Id("PER"), 0b011, 1});
  EXPECT_EQ(cn.size(), 3u);
  EXPECT_EQ(cn.num_non_free(), 2);
  EXPECT_EQ(cn.CoveredTermset(), 0b111u);
  EXPECT_EQ(cn.parent(2), 1);
  EXPECT_EQ(cn.Leaves(), (std::vector<int>{0, 2}));
}

TEST_F(CnTest, SoundnessRejectsFkFanIn) {
  // PER <- CAST -> PER: CAST holds a single FK to PER, so one CAST tuple
  // cannot join two distinct PER tuples (Definition 7).
  CandidateNetwork bad =
      CandidateNetwork::SingleNode(CnNode{Id("PER"), 0b01, 0})
          .Extend(0, CnNode{Id("CAST"), 0, -1})
          .Extend(1, CnNode{Id("PER"), 0b10, 1});
  EXPECT_FALSE(bad.IsSound(graph_));
  EXPECT_FALSE(bad.IsSoundAround(graph_, 1));
  EXPECT_TRUE(bad.IsSoundAround(graph_, 0));
}

TEST_F(CnTest, SoundnessAllowsReferencedFanIn) {
  // CAST -> MOV <- CAST: two cast entries of the same movie is meaningful
  // (many CAST tuples may reference one MOV tuple).
  CandidateNetwork good =
      CandidateNetwork::SingleNode(CnNode{Id("CAST"), 0b01, 0})
          .Extend(0, CnNode{Id("MOV"), 0, -1})
          .Extend(1, CnNode{Id("CAST"), 0b10, 1});
  EXPECT_TRUE(good.IsSound(graph_));
}

TEST_F(CnTest, SoundnessWithFreeDuplicates) {
  // PER{} <- CAST{k} -> PER{}: still unsound, free or not.
  CandidateNetwork bad =
      CandidateNetwork::SingleNode(CnNode{Id("PER"), 0, -1})
          .Extend(0, CnNode{Id("CAST"), 0b1, 0})
          .Extend(1, CnNode{Id("PER"), 0, -1});
  EXPECT_FALSE(bad.IsSound(graph_));
}

TEST_F(CnTest, CanonicalFormIsIsomorphismInvariant) {
  // Same CN grown in two different orders.
  CandidateNetwork a =
      CandidateNetwork::SingleNode(CnNode{Id("MOV"), 0b100, 0})
          .Extend(0, CnNode{Id("CAST"), 0, -1})
          .Extend(1, CnNode{Id("PER"), 0b011, 1});
  CandidateNetwork b =
      CandidateNetwork::SingleNode(CnNode{Id("PER"), 0b011, 1})
          .Extend(0, CnNode{Id("CAST"), 0, -1})
          .Extend(1, CnNode{Id("MOV"), 0b100, 0});
  EXPECT_EQ(a.CanonicalForm(), b.CanonicalForm());
}

TEST_F(CnTest, CanonicalFormDistinguishesTermsets) {
  CandidateNetwork a =
      CandidateNetwork::SingleNode(CnNode{Id("MOV"), 0b1, 0});
  CandidateNetwork b =
      CandidateNetwork::SingleNode(CnNode{Id("MOV"), 0b10, 0});
  EXPECT_NE(a.CanonicalForm(), b.CanonicalForm());
}

TEST_F(CnTest, ToStringRendersTupleSets) {
  auto q = KeywordQuery::Parse("denzel washington gangster");
  ASSERT_TRUE(q.ok());
  CandidateNetwork cn =
      CandidateNetwork::SingleNode(
          CnNode{Id("MOV"), static_cast<Termset>(
                                1u << q->KeywordIndex("gangster")),
                 0})
          .Extend(0, CnNode{Id("CAST"), 0, -1});
  const std::string s = cn.ToString(db_.schema(), *q);
  EXPECT_NE(s.find("MOV^{gangster}"), std::string::npos);
  EXPECT_NE(s.find("CAST^{}"), std::string::npos);
}

}  // namespace
}  // namespace matcn
