// CN -> SQL rendering details.

#include "core/cn_to_sql.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "fixtures/imdb_fixture.h"

namespace matcn {
namespace {

class CnToSqlTest : public ::testing::Test {
 protected:
  CnToSqlTest() : db_(testing::MakeMiniImdb()) {
    auto q = KeywordQuery::Parse("denzel washington gangster");
    query_ = *q;
    g_ = query_.KeywordIndex("gangster");
    d_ = query_.KeywordIndex("denzel");
    w_ = query_.KeywordIndex("washington");
  }
  RelationId Id(const std::string& name) {
    return *db_.schema().RelationIdByName(name);
  }
  Database db_;
  KeywordQuery query_;
  int g_ = 0, d_ = 0, w_ = 0;
};

TEST_F(CnToSqlTest, PaperExpressionOne) {
  // MOV^{g} ⋈ CAST^{} ⋈ PER^{d,w} — the paper's Expression (1).
  CandidateNetwork cn =
      CandidateNetwork::SingleNode(
          CnNode{Id("MOV"), static_cast<Termset>(1u << g_), 0})
          .Extend(0, CnNode{Id("CAST"), 0, -1})
          .Extend(1, CnNode{Id("PER"),
                            static_cast<Termset>((1u << d_) | (1u << w_)),
                            1});
  const std::string sql = CandidateNetworkToSql(cn, db_.schema(), query_);
  // Join predicates follow the FK direction (CAST holds both FKs).
  EXPECT_NE(sql.find("t1.mid = t0.id"), std::string::npos) << sql;
  EXPECT_NE(sql.find("t1.pid = t2.id"), std::string::npos) << sql;
  // Containment for the node's own termset...
  EXPECT_NE(sql.find("t0.title ILIKE '%gangster%'"), std::string::npos);
  EXPECT_NE(sql.find("t2.name ILIKE '%denzel%'"), std::string::npos);
  EXPECT_NE(sql.find("t2.name ILIKE '%washington%'"), std::string::npos);
  // ...and exclusion of the other query keywords (Definition 4).
  EXPECT_NE(sql.find("NOT t0.title ILIKE '%denzel%'"), std::string::npos);
  EXPECT_NE(sql.find("NOT t2.name ILIKE '%gangster%'"), std::string::npos);
  // Free tuple-sets carry no keyword predicates.
  EXPECT_EQ(sql.find("t1.note ILIKE"), std::string::npos);
}

TEST_F(CnToSqlTest, SingleNodeCnHasNoJoin) {
  CandidateNetwork cn = CandidateNetwork::SingleNode(
      CnNode{Id("MOV"), static_cast<Termset>(1u << g_), 0});
  const std::string sql = CandidateNetworkToSql(cn, db_.schema(), query_);
  EXPECT_EQ(sql.find(" = "), std::string::npos);
  EXPECT_NE(sql.find("FROM MOV t0"), std::string::npos);
}

TEST_F(CnToSqlTest, MultiTextAttributesAreOrJoined) {
  // MOV has one searchable text attribute, CAST has one; use a relation
  // with several: build a tiny schema with two text columns.
  Database db;
  ASSERT_TRUE(db.CreateRelation(
                    RelationSchema("R", {{"id", ValueType::kInt, true, false},
                                         {"a", ValueType::kText, false, true},
                                         {"b", ValueType::kText, false,
                                          true}}))
                  .ok());
  auto q = KeywordQuery::Parse("word");
  CandidateNetwork cn =
      CandidateNetwork::SingleNode(CnNode{0, 0b1, 0});
  const std::string sql = CandidateNetworkToSql(cn, db.schema(), *q);
  EXPECT_NE(sql.find("(t0.a ILIKE '%word%' ESCAPE '\\' OR "
                     "t0.b ILIKE '%word%' ESCAPE '\\')"),
            std::string::npos)
      << sql;
}

TEST_F(CnToSqlTest, NoSearchableTextRendersFalse) {
  Database db;
  ASSERT_TRUE(db.CreateRelation(RelationSchema(
                                    "R", {{"id", ValueType::kInt, true,
                                           false}}))
                  .ok());
  auto q = KeywordQuery::Parse("word");
  CandidateNetwork cn = CandidateNetwork::SingleNode(CnNode{0, 0b1, 0});
  const std::string sql = CandidateNetworkToSql(cn, db.schema(), *q);
  EXPECT_NE(sql.find("FALSE"), std::string::npos);
}

TEST_F(CnToSqlTest, SingleQuotesInKeywordAreDoubled) {
  // A quote in a keyword must not terminate the pattern literal —
  // "o'brien"-style names are ordinary IMDb data, and an unescaped quote
  // is a textbook injection vector.
  auto q = KeywordQuery::FromKeywords({"o'brien"});
  ASSERT_TRUE(q.ok());
  CandidateNetwork cn = CandidateNetwork::SingleNode(
      CnNode{Id("PER"), 0b1, 0});
  const std::string sql = CandidateNetworkToSql(cn, db_.schema(), *q);
  EXPECT_NE(sql.find("ILIKE '%o''brien%'"), std::string::npos) << sql;
  // No stray single quote anywhere: quotes appear only doubled or as the
  // pattern/ESCAPE literal delimiters, so the quote count stays even.
  EXPECT_EQ(std::count(sql.begin(), sql.end(), '\'') % 2, 0) << sql;
  EXPECT_EQ(sql.find("'%o'brien%'"), std::string::npos) << sql;
}

TEST_F(CnToSqlTest, InjectionAttemptStaysInsideTheLiteral) {
  auto q = KeywordQuery::FromKeywords({"x' or '1'='1"});
  ASSERT_TRUE(q.ok());
  CandidateNetwork cn = CandidateNetwork::SingleNode(
      CnNode{Id("PER"), 0b1, 0});
  const std::string sql = CandidateNetworkToSql(cn, db_.schema(), *q);
  EXPECT_NE(sql.find("'%x'' or ''1''=''1%'"), std::string::npos) << sql;
  EXPECT_EQ(std::count(sql.begin(), sql.end(), '\'') % 2, 0) << sql;
}

TEST_F(CnToSqlTest, LikeMetacharactersAreEscaped) {
  // % and _ match anything in LIKE patterns; a literal search for them
  // must backslash-escape, and the predicate must carry ESCAPE '\' so the
  // DBMS honors the backslash.
  auto q = KeywordQuery::FromKeywords({"100%", "a_b", "c\\d"});
  ASSERT_TRUE(q.ok());
  CandidateNetwork cn = CandidateNetwork::SingleNode(
      CnNode{Id("MOV"), 0b111, 0});
  const std::string sql = CandidateNetworkToSql(cn, db_.schema(), *q);
  EXPECT_NE(sql.find("ILIKE '%100\\%%' ESCAPE '\\'"), std::string::npos)
      << sql;
  EXPECT_NE(sql.find("ILIKE '%a\\_b%' ESCAPE '\\'"), std::string::npos)
      << sql;
  EXPECT_NE(sql.find("ILIKE '%c\\\\d%' ESCAPE '\\'"), std::string::npos)
      << sql;
}

TEST_F(CnToSqlTest, EmptyTermsetProducesValidSql) {
  // A lone free node has no keyword predicates and no joins; the SQL must
  // not end in a dangling "WHERE ;".
  CandidateNetwork cn =
      CandidateNetwork::SingleNode(CnNode{Id("MOV"), 0, -1});
  const std::string sql = CandidateNetworkToSql(cn, db_.schema(), query_);
  EXPECT_EQ(sql.find("WHERE"), std::string::npos) << sql;
  EXPECT_NE(sql.find("FROM MOV t0;"), std::string::npos) << sql;
}

TEST_F(CnToSqlTest, AliasesAreSequential) {
  CandidateNetwork cn =
      CandidateNetwork::SingleNode(
          CnNode{Id("MOV"), static_cast<Termset>(1u << g_), 0})
          .Extend(0, CnNode{Id("CAST"), 0, -1})
          .Extend(1, CnNode{Id("PER"),
                            static_cast<Termset>((1u << d_) | (1u << w_)),
                            1});
  const std::string sql = CandidateNetworkToSql(cn, db_.schema(), query_);
  EXPECT_NE(sql.find("MOV t0"), std::string::npos);
  EXPECT_NE(sql.find("CAST t1"), std::string::npos);
  EXPECT_NE(sql.find("PER t2"), std::string::npos);
  EXPECT_NE(sql.find("SELECT t0.*, t1.*, t2.*"), std::string::npos);
}

}  // namespace
}  // namespace matcn
