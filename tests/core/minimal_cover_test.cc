#include "core/minimal_cover.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace matcn {
namespace {

TEST(IsMinimalCoverTest, BasicCases) {
  // Q = {a, b, c} = 0b111.
  EXPECT_TRUE(IsMinimalCover({0b001, 0b010, 0b100}, 0b111));
  EXPECT_TRUE(IsMinimalCover({0b011, 0b100}, 0b111));
  EXPECT_TRUE(IsMinimalCover({0b111}, 0b111));
  EXPECT_TRUE(IsMinimalCover({0b011, 0b101}, 0b111));  // overlap is fine
}

TEST(IsMinimalCoverTest, NonTotalRejected) {
  EXPECT_FALSE(IsMinimalCover({0b001, 0b010}, 0b111));
  EXPECT_FALSE(IsMinimalCover({}, 0b111));
}

TEST(IsMinimalCoverTest, RedundantMemberRejected) {
  // {a} is covered by {a,b}.
  EXPECT_FALSE(IsMinimalCover({0b001, 0b011, 0b100}, 0b111));
  // Duplicates are redundant by definition.
  EXPECT_FALSE(IsMinimalCover({0b011, 0b011, 0b100}, 0b111));
  // Full set plus anything.
  EXPECT_FALSE(IsMinimalCover({0b111, 0b001}, 0b111));
}

TEST(IsMinimalCoverTest, TermsetOutsideQueryRejected) {
  EXPECT_FALSE(IsMinimalCover({0b1001}, 0b0111));
  EXPECT_FALSE(IsMinimalCover({0b000, 0b111}, 0b111));  // empty termset
}

TEST(EnumerateMinimalCoversTest, PaperExampleHasEightCovers) {
  // Q = {d, w, g}; all 7 non-empty termsets available. The paper counts
  // 8 minimal covers for a 3-keyword query.
  std::vector<Termset> all = {0b001, 0b010, 0b100, 0b011,
                              0b101, 0b110, 0b111};
  auto covers = EnumerateMinimalCovers(all, 0b111);
  EXPECT_EQ(covers.size(), 8u);
  for (const auto& cover : covers) {
    EXPECT_TRUE(IsMinimalCover(cover, 0b111));
  }
}

TEST(EnumerateMinimalCoversTest, RestrictedAvailability) {
  // Only {d,w} and {g} available: a single cover.
  auto covers = EnumerateMinimalCovers({0b011, 0b100}, 0b111);
  ASSERT_EQ(covers.size(), 1u);
  EXPECT_EQ(covers[0], (std::vector<Termset>{0b011, 0b100}));
}

TEST(EnumerateMinimalCoversTest, UncoverableQueryYieldsNothing) {
  EXPECT_TRUE(EnumerateMinimalCovers({0b001, 0b010}, 0b111).empty());
  EXPECT_TRUE(EnumerateMinimalCovers({}, 0b1).empty());
}

TEST(EnumerateMinimalCoversTest, IgnoresForeignAndEmptyTermsets) {
  auto covers = EnumerateMinimalCovers({0, 0b1000, 0b11}, 0b11);
  ASSERT_EQ(covers.size(), 1u);
  EXPECT_EQ(covers[0], (std::vector<Termset>{0b11}));
}

TEST(EnumerateMinimalCoversTest, DeduplicatesAvailableTermsets) {
  auto covers = EnumerateMinimalCovers({0b01, 0b01, 0b10}, 0b11);
  EXPECT_EQ(covers.size(), 1u);
}

TEST(EnumerateMinimalCoversTest, CoversAreUniqueAndSorted) {
  std::vector<Termset> all;
  for (Termset t = 1; t < 16; ++t) all.push_back(t);
  auto covers = EnumerateMinimalCovers(all, 0b1111);
  auto copy = covers;
  std::sort(copy.begin(), copy.end());
  copy.erase(std::unique(copy.begin(), copy.end()), copy.end());
  EXPECT_EQ(copy.size(), covers.size());
  EXPECT_EQ(copy, covers);  // already sorted
}

// Property sweep: for queries of size 1..5 with all termsets available,
// every enumerated cover is minimal, every cover has at most |Q| members
// (Hearne & Wagner), and brute force agrees.
class MinimalCoverSweep : public ::testing::TestWithParam<int> {};

TEST_P(MinimalCoverSweep, MatchesBruteForce) {
  const int n = GetParam();
  const Termset full = static_cast<Termset>((1u << n) - 1);
  std::vector<Termset> all;
  for (Termset t = 1; t <= full; ++t) all.push_back(t);
  auto covers = EnumerateMinimalCovers(all, full);

  for (const auto& cover : covers) {
    EXPECT_LE(cover.size(), static_cast<size_t>(n));
    EXPECT_TRUE(IsMinimalCover(cover, full));
  }

  // Brute force over subsets of `all` of size <= n (feasible for n <= 4).
  if (n <= 4) {
    size_t brute = 0;
    const size_t m = all.size();
    for (uint64_t mask = 1; mask < (uint64_t{1} << m); ++mask) {
      std::vector<Termset> subset;
      for (size_t i = 0; i < m; ++i) {
        if ((mask >> i) & 1) subset.push_back(all[i]);
      }
      if (subset.size() <= static_cast<size_t>(n) &&
          IsMinimalCover(subset, full)) {
        ++brute;
      }
    }
    EXPECT_EQ(covers.size(), brute);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MinimalCoverSweep,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace matcn
