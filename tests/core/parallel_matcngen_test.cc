// Parallel per-match CN construction must be byte-identical to the
// sequential run.

#include <gtest/gtest.h>

#include "core/matcngen.h"
#include "datasets/generators.h"
#include "datasets/workload.h"
#include "fixtures/imdb_fixture.h"
#include "graph/schema_graph.h"

namespace matcn {
namespace {

TEST(ParallelMatCnGenTest, MatchesSequentialOnFixture) {
  Database db = testing::MakeMiniImdb();
  SchemaGraph schema_graph = SchemaGraph::Build(db.schema());
  TermIndex index = TermIndex::Build(db);
  auto query = KeywordQuery::Parse("denzel washington gangster");
  ASSERT_TRUE(query.ok());

  MatCnGen sequential(&schema_graph);
  MatCnGenOptions parallel_options;
  parallel_options.num_threads = 4;
  MatCnGen parallel(&schema_graph, parallel_options);

  GenerationResult a = sequential.Generate(*query, index);
  GenerationResult b = parallel.Generate(*query, index);
  EXPECT_EQ(a.matches, b.matches);
  ASSERT_EQ(a.cns.size(), b.cns.size());
  for (size_t i = 0; i < a.cns.size(); ++i) {
    EXPECT_EQ(a.cns[i], b.cns[i]) << i;
  }
}

class ParallelSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParallelSweep, MatchesSequentialOnGeneratedWorkload) {
  Database db = MakeMondial(43, 0.05);
  SchemaGraph schema_graph = SchemaGraph::Build(db.schema());
  TermIndex index = TermIndex::Build(db);
  WorkloadGenerator wgen(&db, &schema_graph, &index);
  std::vector<KeywordQuery> queries = wgen.RandomQueries(6, 3, 11);

  MatCnGen sequential(&schema_graph);
  MatCnGenOptions options;
  options.num_threads = GetParam();
  MatCnGen parallel(&schema_graph, options);
  for (const KeywordQuery& q : queries) {
    GenerationResult a = sequential.Generate(q, index);
    GenerationResult b = parallel.Generate(q, index);
    ASSERT_EQ(a.cns.size(), b.cns.size());
    for (size_t i = 0; i < a.cns.size(); ++i) {
      EXPECT_EQ(a.cns[i].CanonicalForm(), b.cns[i].CanonicalForm());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelSweep,
                         ::testing::Values(2u, 3u, 8u));

}  // namespace
}  // namespace matcn
