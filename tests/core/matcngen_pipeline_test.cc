// End-to-end validation of the MatCNGen pipeline against the concrete
// numbers the paper reports for its running example (Examples 2-5).

#include "core/matcngen.h"

#include <gtest/gtest.h>

#include <set>

#include "baseline/cngen.h"
#include "core/cn_to_sql.h"
#include "fixtures/imdb_fixture.h"
#include "graph/schema_graph.h"
#include "indexing/term_index.h"
#include "storage/disk.h"

namespace matcn {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  PipelineTest()
      : db_(testing::MakeMiniImdb()),
        schema_graph_(SchemaGraph::Build(db_.schema())),
        index_(TermIndex::Build(db_)) {}

  Database db_;
  SchemaGraph schema_graph_;
  TermIndex index_;
};

TEST_F(PipelineTest, Example3TwoKeywordQuery) {
  // Q' = {denzel, washington}: |R_Q'| = 6 and 5 query matches.
  auto query = KeywordQuery::Parse("denzel washington");
  ASSERT_TRUE(query.ok());
  MatCnGen gen(&schema_graph_);
  GenerationResult result = gen.Generate(*query, index_);
  EXPECT_EQ(result.tuple_sets.size(), 6u);
  EXPECT_EQ(result.matches.size(), 5u);
  // Every match admits a CN in this schema.
  EXPECT_EQ(result.cns.size(), 5u);
}

TEST_F(PipelineTest, Example2ThreeKeywordQuery) {
  // Q = {denzel, washington, gangster}: |R_Q| = 10 and 19 query matches.
  auto query = KeywordQuery::Parse("denzel washington gangster");
  ASSERT_TRUE(query.ok());
  MatCnGen gen(&schema_graph_);
  GenerationResult result = gen.Generate(*query, index_);
  EXPECT_EQ(result.tuple_sets.size(), 10u);
  EXPECT_EQ(result.matches.size(), 19u);
  EXPECT_EQ(result.cns.size(), result.matches.size());
}

TEST_F(PipelineTest, Example5SingleCnForMatchM3) {
  // Match M3 = {MOV^{g}, PER^{d,w}} must yield exactly
  // MOV^{g} ⋈ CAST^{} ⋈ PER^{d,w}.
  auto query = KeywordQuery::Parse("denzel washington gangster");
  ASSERT_TRUE(query.ok());
  MatCnGen gen(&schema_graph_);
  GenerationResult result = gen.Generate(*query, index_);

  const RelationId mov = *db_.schema().RelationIdByName("MOV");
  const RelationId per = *db_.schema().RelationIdByName("PER");
  const RelationId cast = *db_.schema().RelationIdByName("CAST");
  const Termset g_mask = Termset{1} << query->KeywordIndex("gangster");
  const Termset dw_mask =
      (Termset{1} << query->KeywordIndex("denzel")) |
      (Termset{1} << query->KeywordIndex("washington"));

  bool found = false;
  for (const CandidateNetwork& cn : result.cns) {
    if (cn.size() != 3) continue;
    int movs = 0, pers = 0, casts = 0;
    for (const CnNode& n : cn.nodes()) {
      if (n.relation == mov && n.termset == g_mask) ++movs;
      if (n.relation == per && n.termset == dw_mask) ++pers;
      if (n.relation == cast && n.is_free()) ++casts;
    }
    if (movs == 1 && pers == 1 && casts == 1) {
      found = true;
      EXPECT_TRUE(cn.IsSound(schema_graph_));
    }
  }
  EXPECT_TRUE(found) << "expected CN MOV^{g} - CAST^{} - PER^{d,w}";
}

TEST_F(PipelineTest, GeneratedCnsAreSoundMinimalAndDistinct) {
  auto query = KeywordQuery::Parse("denzel washington gangster");
  ASSERT_TRUE(query.ok());
  MatCnGen gen(&schema_graph_);
  GenerationResult result = gen.Generate(*query, index_);
  std::set<std::string> canon;
  for (const CandidateNetwork& cn : result.cns) {
    EXPECT_TRUE(cn.IsSound(schema_graph_));
    EXPECT_EQ(cn.CoveredTermset(), query->FullTermset());
    // Minimality: every leaf is non-free.
    for (int leaf : cn.Leaves()) {
      EXPECT_FALSE(cn.node(leaf).is_free());
    }
    EXPECT_TRUE(canon.insert(cn.CanonicalForm()).second)
        << "duplicate CN generated";
  }
}

TEST_F(PipelineTest, MatCnGenNeverGeneratesMoreCnsThanCnGen) {
  // Figure 6's headline: the match-based set is a subset-sized compact set.
  auto query = KeywordQuery::Parse("denzel washington gangster");
  ASSERT_TRUE(query.ok());
  MatCnGen gen(&schema_graph_);
  GenerationResult mat = gen.Generate(*query, index_);

  std::vector<TupleSet> tuple_sets =
      TupleSetFinder::FindMem(index_, *query);
  TupleSetGraph ts_graph(&schema_graph_, &tuple_sets);
  CnGenOptions options;
  options.t_max = 5;
  CnGenResult base = CnGen(*query, ts_graph, options);
  ASSERT_FALSE(base.failed);
  EXPECT_GE(base.cns.size(), mat.cns.size());
}

TEST_F(PipelineTest, EveryMatCnGenCnIsAlsoFoundByCnGen) {
  auto query = KeywordQuery::Parse("denzel washington");
  ASSERT_TRUE(query.ok());
  MatCnGen gen(&schema_graph_);
  GenerationResult mat = gen.Generate(*query, index_);

  std::vector<TupleSet> tuple_sets =
      TupleSetFinder::FindMem(index_, *query);
  TupleSetGraph ts_graph(&schema_graph_, &tuple_sets);
  CnGenOptions options;
  options.t_max = 6;
  CnGenResult base = CnGen(*query, ts_graph, options);
  ASSERT_FALSE(base.failed);

  std::set<std::string> baseline_canon;
  for (const CandidateNetwork& cn : base.cns) {
    baseline_canon.insert(cn.CanonicalForm());
  }
  for (const CandidateNetwork& cn : mat.cns) {
    EXPECT_TRUE(baseline_canon.contains(cn.CanonicalForm()))
        << "MatCNGen CN missing from exhaustive baseline";
  }
}

TEST_F(PipelineTest, DiskAndMemoryVariantsAgree) {
  const std::string dir = ::testing::TempDir() + "/matcn_imdb_fixture";
  ASSERT_TRUE(DiskStorage::Save(db_, dir).ok());
  auto query = KeywordQuery::Parse("denzel washington gangster");
  ASSERT_TRUE(query.ok());

  MatCnGen gen(&schema_graph_);
  GenerationResult mem = gen.Generate(*query, index_);
  Result<GenerationResult> disk =
      gen.GenerateDisk(*query, dir, db_.schema());
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  EXPECT_EQ(mem.tuple_sets, disk->tuple_sets);
  EXPECT_EQ(mem.matches, disk->matches);
  ASSERT_EQ(mem.cns.size(), disk->cns.size());
  for (size_t i = 0; i < mem.cns.size(); ++i) {
    EXPECT_EQ(mem.cns[i].CanonicalForm(), disk->cns[i].CanonicalForm());
  }
}

TEST_F(PipelineTest, CnToSqlEmitsJoinAndKeywordPredicates) {
  auto query = KeywordQuery::Parse("denzel washington gangster");
  ASSERT_TRUE(query.ok());
  MatCnGen gen(&schema_graph_);
  GenerationResult result = gen.Generate(*query, index_);
  ASSERT_FALSE(result.cns.empty());
  bool saw_join = false;
  for (const CandidateNetwork& cn : result.cns) {
    std::string sql = CandidateNetworkToSql(cn, db_.schema(), *query);
    EXPECT_NE(sql.find("SELECT"), std::string::npos);
    EXPECT_NE(sql.find("ILIKE"), std::string::npos);
    if (cn.size() > 1) {
      EXPECT_NE(sql.find(" = "), std::string::npos);
      saw_join = true;
    }
  }
  EXPECT_TRUE(saw_join);
}

}  // namespace
}  // namespace matcn
