// Shard-equivalence differential suite: 200+ seeded keyword queries on
// imdb-derived data, answered by a coordinator scattering over N in
// {1, 2, 4} local shard workers (real TSFIND over loopback TCP), must be
// element- and order-identical to the single-process live service — CN
// stream, tuple-set and match counts, and status codes alike. This pins
// the paper's R_Q partition invariant end to end: disjoint relation
// ownership + k-way merge == unsharded BuildTupleSets.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/keyword_query.h"
#include "datasets/generators.h"
#include "graph/schema_graph.h"
#include "indexing/term_index.h"
#include "liveindex/concurrent_term_index.h"
#include "service/query_service.h"
#include "shard/coordinator.h"
#include "shard/local_cluster.h"
#include "shard/shard_map.h"
#include "storage/database.h"

namespace matcn::shard {
namespace {

constexpr size_t kNumQueries = 220;

Database MakeDataset() { return MakeImdb(42, 0.05); }

// One query's comparable outcome. cache_hit and latency are deployment
// details and deliberately absent.
struct Outcome {
  StatusCode code = StatusCode::kOk;
  bool degraded = false;
  size_t num_tuple_sets = 0;
  size_t num_matches = 0;
  std::vector<std::string> cns;  // rendered, in stream order

  bool operator==(const Outcome& o) const {
    return code == o.code && degraded == o.degraded &&
           num_tuple_sets == o.num_tuple_sets &&
           num_matches == o.num_matches && cns == o.cns;
  }
};

// Seeded workload: 1-3 keywords drawn from the offline vocabulary, the
// same list for every deployment shape.
std::vector<KeywordQuery> MakeQueries(const Database& db) {
  const TermIndex index = TermIndex::Build(db);
  const std::vector<std::string> terms = index.AllTerms();
  EXPECT_GT(terms.size(), 10u);
  Rng rng(7);
  std::vector<KeywordQuery> queries;
  while (queries.size() < kNumQueries) {
    const size_t n = rng.Uniform(1, 3);
    std::vector<std::string> keywords;
    for (size_t i = 0; i < n; ++i) {
      keywords.push_back(terms[rng.Index(terms.size())]);
    }
    Result<KeywordQuery> query =
        KeywordQuery::FromKeywords(std::move(keywords));
    if (query.ok()) queries.push_back(*std::move(query));
  }
  return queries;
}

Outcome RunOne(QueryService* service, const DatabaseSchema& schema,
               const KeywordQuery& query) {
  Result<QueryResponse> response = service->Submit(query).get();
  Outcome outcome;
  if (!response.ok()) {
    outcome.code = response.status().code();
    return outcome;
  }
  outcome.degraded = response->degraded;
  outcome.num_tuple_sets = response->result->tuple_sets.size();
  outcome.num_matches = response->result->matches.size();
  for (const CandidateNetwork& cn : response->result->cns) {
    outcome.cns.push_back(cn.ToString(schema, response->query));
  }
  return outcome;
}

class ShardDifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeDataset();
    schema_graph_ = SchemaGraph::Build(db_.schema());
    queries_ = MakeQueries(db_);
  }

  std::vector<Outcome> RunAll(QueryService* service) {
    std::vector<Outcome> outcomes;
    outcomes.reserve(queries_.size());
    for (const KeywordQuery& query : queries_) {
      outcomes.push_back(RunOne(service, db_.schema(), query));
    }
    return outcomes;
  }

  // The unsharded reference: the live backend every matcn_server runs.
  std::vector<Outcome> ReferenceOutcomes() {
    liveindex::ConcurrentTermIndex live(TermIndex::Build(db_));
    QueryServiceOptions options;
    options.num_threads = 2;
    QueryService service(&schema_graph_, &live, options);
    return RunAll(&service);
  }

  Database db_;
  SchemaGraph schema_graph_;
  std::vector<KeywordQuery> queries_;
};

TEST_F(ShardDifferentialTest, CoordinatorMatchesSingleProcessForN124) {
  const std::vector<Outcome> expected = ReferenceOutcomes();
  size_t answered = 0;
  for (const Outcome& outcome : expected) {
    if (outcome.code == StatusCode::kOk && !outcome.cns.empty()) ++answered;
  }
  ASSERT_GT(answered, 20u) << "workload too sparse to be meaningful";

  for (uint32_t num_shards : {1u, 2u, 4u}) {
    SCOPED_TRACE(std::to_string(num_shards) + " shards");
    ShardMapOptions map_options;
    map_options.num_shards = num_shards;
    const ShardMap map = ShardMap::Build(db_.schema(), map_options);

    LocalShardClusterOptions cluster_options;
    cluster_options.service.num_threads = 2;
    LocalShardCluster cluster(MakeDataset, &map, cluster_options);
    ASSERT_TRUE(cluster.Start().ok());
    Coordinator coordinator(&map, cluster.Endpoints());
    ASSERT_TRUE(coordinator.Connect().ok());

    QueryServiceOptions service_options;
    service_options.num_threads = 2;
    QueryService service(&schema_graph_, &coordinator, service_options);
    const std::vector<Outcome> actual = RunAll(&service);

    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < actual.size(); ++i) {
      ASSERT_EQ(actual[i], expected[i])
          << "query " << i << " (" << queries_[i].ToString() << "): got "
          << actual[i].cns.size() << " CNs / code "
          << static_cast<int>(actual[i].code) << ", want "
          << expected[i].cns.size() << " CNs / code "
          << static_cast<int>(expected[i].code);
      EXPECT_FALSE(actual[i].degraded);
    }

    const ServiceStatsSnapshot stats = service.Stats();
    EXPECT_EQ(stats.shards_total, num_shards);
    EXPECT_EQ(stats.shards_healthy, num_shards);
    EXPECT_GT(stats.shard_scatters, 0u);
    EXPECT_EQ(stats.shard_scatter_errors, 0u);
    EXPECT_EQ(stats.shard_degraded_batches, 0u);

    coordinator.Shutdown();
    cluster.Stop();
  }
}

}  // namespace
}  // namespace matcn::shard
