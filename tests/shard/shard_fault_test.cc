// Fault-injection suite for the sharded deployment: killing or stalling
// a shard mid-query must yield typed *degraded* results (never wrong
// ones, never lost callbacks), and the coordinator must recover on its
// own once the shard returns — heartbeat keepers reconnect without any
// coordinator restart.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/keyword_query.h"
#include "fixtures/imdb_fixture.h"
#include "graph/schema_graph.h"
#include "service/query_service.h"
#include "shard/coordinator.h"
#include "shard/local_cluster.h"
#include "shard/shard_map.h"
#include "storage/database.h"

namespace matcn::shard {
namespace {

constexpr uint32_t kNumShards = 3;

KeywordQuery MakeQuery(const std::vector<std::string>& keywords) {
  Result<KeywordQuery> query = KeywordQuery::FromKeywords(keywords);
  EXPECT_TRUE(query.ok());
  return *query;
}

std::vector<std::string> RenderCns(const QueryResponse& response,
                                   const DatabaseSchema& schema) {
  std::vector<std::string> out;
  for (const CandidateNetwork& cn : response.result->cns) {
    out.push_back(cn.ToString(schema, response.query));
  }
  return out;
}

class ShardFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = testing::MakeMiniImdb();
    schema_graph_ = SchemaGraph::Build(db_.schema());
    ShardMapOptions map_options;
    map_options.num_shards = kNumShards;
    map_ = std::make_unique<ShardMap>(
        ShardMap::Build(db_.schema(), map_options));
  }

  // Fast heartbeats so unhealthy/recovered transitions land within test
  // patience instead of the serving defaults.
  CoordinatorOptions FastCoordinator() {
    CoordinatorOptions options;
    options.scatter_timeout_ms = 2'000;
    options.channel.heartbeat_interval_ms = 50;
    options.channel.heartbeat_timeout_ms = 300;
    return options;
  }

  void StartCluster(LocalShardClusterOptions cluster_options = {}) {
    cluster_options.service.num_threads = 2;
    cluster_ = std::make_unique<LocalShardCluster>(
        [] { return testing::MakeMiniImdb(); }, map_.get(),
        cluster_options);
    ASSERT_TRUE(cluster_->Start().ok());
    coordinator_ = std::make_unique<Coordinator>(
        map_.get(), cluster_->Endpoints(), FastCoordinator());
    ASSERT_TRUE(coordinator_->Connect().ok());
    QueryServiceOptions service_options;
    service_options.num_threads = 4;
    service_options.cache_bytes = 0;  // every submit really scatters
    service_ = std::make_unique<QueryService>(
        &schema_graph_, coordinator_.get(), service_options);
  }

  void TearDown() override {
    service_.reset();
    if (coordinator_ != nullptr) coordinator_->Shutdown();
    if (cluster_ != nullptr) cluster_->Stop();
  }

  bool WaitForHealthy(size_t want, int64_t timeout_ms) {
    const auto give_up = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < give_up) {
      if (coordinator_->healthy_shards() == want) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return coordinator_->healthy_shards() == want;
  }

  Database db_;
  SchemaGraph schema_graph_;
  std::unique_ptr<ShardMap> map_;
  std::unique_ptr<LocalShardCluster> cluster_;
  std::unique_ptr<Coordinator> coordinator_;
  std::unique_ptr<QueryService> service_;
};

TEST_F(ShardFaultTest, DeadShardYieldsTypedDegradedResults) {
  StartCluster();
  const KeywordQuery query =
      MakeQuery({"denzel", "washington", "gangster"});

  Result<QueryResponse> before = service_->Submit(query).get();
  ASSERT_TRUE(before.ok());
  EXPECT_FALSE(before->degraded);
  const std::vector<std::string> full_cns = RenderCns(*before, db_.schema());
  ASSERT_FALSE(full_cns.empty());

  const uint32_t victim = map_->OwnerOf(0);
  ASSERT_TRUE(cluster_->StopShard(victim).ok());

  // The very next scatter may still be racing the disconnect; within a
  // few submits the channel has failed and results turn degraded.
  bool saw_degraded = false;
  for (int attempt = 0; attempt < 50 && !saw_degraded; ++attempt) {
    Result<QueryResponse> response = service_->Submit(query).get();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    if (response->degraded) {
      saw_degraded = true;
      // Typed: the reason names the shard, and the remaining shards'
      // data still produced a (subset) answer, never garbage.
      EXPECT_NE(response->degraded_reason.find("shard"), std::string::npos)
          << response->degraded_reason;
      const std::vector<std::string> partial =
          RenderCns(*response, db_.schema());
      for (const std::string& cn : partial) {
        EXPECT_NE(std::find(full_cns.begin(), full_cns.end(), cn),
                  full_cns.end())
            << "degraded stream invented CN " << cn;
      }
    }
  }
  EXPECT_TRUE(saw_degraded);
  EXPECT_LT(coordinator_->healthy_shards(), kNumShards);
  EXPECT_GT(service_->Stats().shard_degraded_batches, 0u);
}

TEST_F(ShardFaultTest, SixteenClientStressSurvivesKillAndRestart) {
  StartCluster();
  constexpr size_t kClients = 16;
  constexpr size_t kPerClient = 40;
  const std::vector<KeywordQuery> queries = {
      MakeQuery({"denzel"}),
      MakeQuery({"gangster"}),
      MakeQuery({"denzel", "washington"}),
      MakeQuery({"washington", "gangster"}),
  };

  std::atomic<size_t> resolved{0};
  std::atomic<size_t> ok{0};
  std::atomic<size_t> degraded{0};
  std::atomic<size_t> unexpected{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t i = 0; i < kPerClient; ++i) {
        Result<QueryResponse> response =
            service_->Submit(queries[(c + i) % queries.size()]).get();
        resolved.fetch_add(1);
        if (response.ok()) {
          ok.fetch_add(1);
          if (response->degraded) degraded.fetch_add(1);
        } else {
          // Under fault injection the only acceptable failures are
          // typed backpressure/timeout codes, never internal errors.
          const StatusCode code = response.status().code();
          if (code != StatusCode::kResourceExhausted &&
              code != StatusCode::kDeadlineExceeded &&
              code != StatusCode::kIOError) {
            unexpected.fetch_add(1);
          }
        }
      }
    });
  }

  // Kill one shard mid-flight, let the degraded window breathe, then
  // restart it while clients keep hammering.
  const uint32_t victim = map_->OwnerOf(0);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(cluster_->StopShard(victim).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  ASSERT_TRUE(cluster_->RestartShard(victim).ok());

  for (std::thread& t : clients) t.join();

  // The no-lost-callbacks contract: every submission resolved exactly
  // once, and nothing failed with an untyped error.
  EXPECT_EQ(resolved.load(), kClients * kPerClient);
  EXPECT_EQ(unexpected.load(), 0u);
  EXPECT_GT(ok.load(), 0u);

  // Recovery: keepers re-adopt the restarted shard and results go clean.
  ASSERT_TRUE(WaitForHealthy(kNumShards, 10'000));
  Result<QueryResponse> after =
      service_->Submit(MakeQuery({"denzel", "washington"})).get();
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->degraded);
  EXPECT_GT(service_->Stats().shard_reconnects, 0u);
}

TEST_F(ShardFaultTest, StalledShardTimesOutDegradedNotWrong) {
  // Stall one shard's workers (pre-execute hook) well past the scatter
  // timeout: the coordinator must give up on it, mark the batch
  // degraded, and keep serving from the healthy shards — the
  // stalled-not-dead failure mode a kill test cannot cover.
  const uint32_t victim = map_->OwnerOf(0);
  LocalShardClusterOptions cluster_options;
  cluster_options.pre_execute_hook_factory =
      [victim](uint32_t shard) -> std::function<void()> {
    if (shard != victim) return {};
    return [] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1'500));
    };
  };
  StartCluster(cluster_options);

  CoordinatorOptions slow_tolerant = FastCoordinator();
  slow_tolerant.scatter_timeout_ms = 250;
  // Swap in a coordinator with a short scatter budget (heartbeats stay
  // healthy — the event loop answers them, only the workers stall).
  service_.reset();
  coordinator_->Shutdown();
  coordinator_ = std::make_unique<Coordinator>(
      map_.get(), cluster_->Endpoints(), slow_tolerant);
  ASSERT_TRUE(coordinator_->Connect().ok());
  QueryServiceOptions service_options;
  service_options.num_threads = 2;
  service_options.cache_bytes = 0;
  service_ = std::make_unique<QueryService>(
      &schema_graph_, coordinator_.get(), service_options);

  Result<QueryResponse> response =
      service_->Submit(MakeQuery({"denzel", "washington", "gangster"}))
          .get();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->degraded);
  EXPECT_NE(response->degraded_reason.find("timed out"), std::string::npos)
      << response->degraded_reason;
  // The stalled shard still acks heartbeats: stalled != unhealthy.
  EXPECT_EQ(coordinator_->healthy_shards(), kNumShards);
}

}  // namespace
}  // namespace matcn::shard
