// ShardMap unit tests: ring determinism, the disjoint-ownership
// invariant the coordinator merge relies on, the serialize/parse round
// trip, and the validation guards `--shard-map` runs before serving.

#include "shard/shard_map.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "fixtures/imdb_fixture.h"
#include "storage/database.h"

namespace matcn::shard {
namespace {

class ShardMapTest : public ::testing::Test {
 protected:
  void SetUp() override { db_ = testing::MakeMiniImdb(); }
  Database db_;
};

TEST_F(ShardMapTest, BuildIsDeterministic) {
  ShardMapOptions options;
  options.num_shards = 3;
  const ShardMap a = ShardMap::Build(db_.schema(), options);
  const ShardMap b = ShardMap::Build(db_.schema(), options);
  EXPECT_EQ(a.Serialize(), b.Serialize());
  for (RelationId r = 0; r < db_.schema().num_relations(); ++r) {
    EXPECT_EQ(a.OwnerOf(r), b.OwnerOf(r));
  }
}

TEST_F(ShardMapTest, EveryRelationHasExactlyOneOwner) {
  for (uint32_t num_shards : {1u, 2u, 3u, 4u, 7u}) {
    ShardMapOptions options;
    options.num_shards = num_shards;
    const ShardMap map = ShardMap::Build(db_.schema(), options);
    EXPECT_EQ(map.num_relations(), db_.schema().num_relations());
    std::set<RelationId> seen;
    for (uint32_t s = 0; s < num_shards; ++s) {
      for (const RelationId r : map.RelationsOf(s)) {
        EXPECT_EQ(map.OwnerOf(r), s);
        EXPECT_TRUE(seen.insert(r).second) << "relation " << r
                                           << " owned twice";
      }
    }
    EXPECT_EQ(seen.size(), db_.schema().num_relations());
  }
}

TEST_F(ShardMapTest, RelationMasksPartitionTheSchema) {
  ShardMapOptions options;
  options.num_shards = 4;
  const ShardMap map = ShardMap::Build(db_.schema(), options);
  std::vector<int> covered(db_.schema().num_relations(), 0);
  for (uint32_t s = 0; s < options.num_shards; ++s) {
    const std::vector<uint8_t> mask = map.RelationMask(s);
    ASSERT_EQ(mask.size(), db_.schema().num_relations());
    for (size_t r = 0; r < mask.size(); ++r) covered[r] += mask[r];
  }
  for (size_t r = 0; r < covered.size(); ++r) {
    EXPECT_EQ(covered[r], 1) << "relation " << r;
  }
}

TEST_F(ShardMapTest, SingleShardOwnsEverything) {
  const ShardMap map = ShardMap::Build(db_.schema(), {});
  EXPECT_EQ(map.num_shards(), 1u);
  EXPECT_EQ(map.RelationsOf(0).size(), db_.schema().num_relations());
}

TEST_F(ShardMapTest, SerializeParseRoundTrips) {
  ShardMapOptions options;
  options.num_shards = 3;
  options.seed = 17;
  options.vnodes_per_shard = 32;
  const ShardMap map = ShardMap::Build(db_.schema(), options);
  const std::string text = map.Serialize();
  Result<ShardMap> parsed = ShardMap::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Serialize(), text);
  EXPECT_EQ(parsed->num_shards(), 3u);
  for (RelationId r = 0; r < db_.schema().num_relations(); ++r) {
    EXPECT_EQ(parsed->OwnerOf(r), map.OwnerOf(r));
  }
  EXPECT_TRUE(parsed->Validate(db_.schema()).ok());
}

TEST_F(ShardMapTest, ParseRejectsMalformedInput) {
  EXPECT_FALSE(ShardMap::Parse("").ok());
  EXPECT_FALSE(ShardMap::Parse("not-a-shard-map v1\nshards 2\n").ok());
  const ShardMap map = ShardMap::Build(db_.schema(), {});
  // Owner out of range (map has 1 shard, relation claims shard 5).
  // Search from the first "relation " line so the replacement hits an
  // owner column, not the "seed 0" header.
  std::string text = map.Serialize();
  const size_t at = text.find(" 0\n", text.find("relation "));
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 3, " 5\n");
  EXPECT_FALSE(ShardMap::Parse(text).ok());
  // Duplicate relation line.
  std::string dup = map.Serialize();
  const size_t rel = dup.find("relation ");
  const size_t end = dup.find('\n', rel);
  dup += dup.substr(rel, end - rel + 1);
  EXPECT_FALSE(ShardMap::Parse(dup).ok());
}

TEST_F(ShardMapTest, ValidateRejectsSchemaMismatch) {
  const ShardMap map = ShardMap::Build(db_.schema(), {});
  DatabaseSchema other;
  ASSERT_TRUE(other.AddRelation(RelationSchema("SOMETHING_ELSE", {})).ok());
  EXPECT_FALSE(map.Validate(other).ok());
  EXPECT_TRUE(map.Validate(db_.schema()).ok());
}

TEST_F(ShardMapTest, UnknownRelationFallsBackToTheRing) {
  ShardMapOptions options;
  options.num_shards = 4;
  const ShardMap map = ShardMap::Build(db_.schema(), options);
  const uint32_t owner = map.OwnerByName("RELATION_CREATED_LATER");
  EXPECT_LT(owner, 4u);
  EXPECT_EQ(owner, map.RingOwner("RELATION_CREATED_LATER"));
  // Recorded assignments win over the ring for known relations.
  for (RelationId r = 0; r < db_.schema().num_relations(); ++r) {
    EXPECT_EQ(map.OwnerByName(map.relation_name(r)), map.OwnerOf(r));
  }
}

TEST_F(ShardMapTest, SeedsShuffleButStayValid) {
  ShardMapOptions a;
  a.num_shards = 4;
  a.seed = 1;
  ShardMapOptions b = a;
  b.seed = 2;
  const ShardMap ma = ShardMap::Build(db_.schema(), a);
  const ShardMap mb = ShardMap::Build(db_.schema(), b);
  // Different seeds need not differ in placement (small schema), but
  // both must remain complete partitions.
  EXPECT_TRUE(ma.Validate(db_.schema()).ok());
  EXPECT_TRUE(mb.Validate(db_.schema()).ok());
}

}  // namespace
}  // namespace matcn::shard
