// K-way tuple-set merge tests: the coordinator's merge must reproduce
// the single-process BuildTupleSets stream byte-for-byte when streams
// partition by relation (the ShardMap deployment), and union-coalesce
// overlapping keys when they do not.

#include "shard/merge.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/keyword_query.h"
#include "core/tsfind.h"
#include "fixtures/imdb_fixture.h"
#include "indexing/term_index.h"
#include "shard/shard_map.h"
#include "storage/database.h"

namespace matcn::shard {
namespace {

KeywordQuery MakeQuery(const std::vector<std::string>& keywords) {
  Result<KeywordQuery> query = KeywordQuery::FromKeywords(keywords);
  EXPECT_TRUE(query.ok());
  return *query;
}

// Splits by owner like a shard deployment would: per-shard indexes built
// with the map's relation masks, each answering only its relations.
std::vector<std::vector<TupleSet>> ShardStreams(const Database& db,
                                                const ShardMap& map,
                                                const KeywordQuery& query) {
  std::vector<std::vector<TupleSet>> streams;
  for (uint32_t s = 0; s < map.num_shards(); ++s) {
    TermIndexOptions options;
    options.relation_mask = map.RelationMask(s);
    const TermIndex index = TermIndex::Build(db, options);
    streams.push_back(TupleSetFinder::FindMem(index, query));
  }
  return streams;
}

class ShardMergeTest : public ::testing::Test {
 protected:
  void SetUp() override { db_ = testing::MakeMiniImdb(); }
  Database db_;
};

TEST_F(ShardMergeTest, PartitionedStreamsMergeToSingleProcessOrder) {
  const KeywordQuery query =
      MakeQuery({"denzel", "washington", "gangster"});
  const std::vector<TupleSet> expected =
      TupleSetFinder::FindMem(TermIndex::Build(db_), query);
  ASSERT_FALSE(expected.empty());

  for (uint32_t num_shards : {1u, 2u, 3u, 5u}) {
    ShardMapOptions options;
    options.num_shards = num_shards;
    const ShardMap map = ShardMap::Build(db_.schema(), options);
    MergeStats stats;
    const std::vector<TupleSet> merged =
        MergeShardTupleSets(ShardStreams(db_, map, query), &stats);
    // Element- and order-identical, tuples included (operator== covers
    // relation, termset, and the full tuple vector).
    EXPECT_EQ(merged, expected) << num_shards << " shards";
    // streams counts contributing (non-empty) streams: shards owning no
    // matching relation drop out before the heap.
    EXPECT_LE(stats.streams, num_shards);
    EXPECT_GT(stats.streams, 0u);
    EXPECT_EQ(stats.output_sets, expected.size());
    EXPECT_EQ(stats.coalesced, 0u) << "disjoint ownership cannot coalesce";
  }
}

TEST_F(ShardMergeTest, EmptyAndMissingStreamsAreHarmless) {
  EXPECT_TRUE(MergeShardTupleSets({}).empty());
  EXPECT_TRUE(MergeShardTupleSets({{}, {}, {}}).empty());

  const KeywordQuery query = MakeQuery({"denzel"});
  const std::vector<TupleSet> expected =
      TupleSetFinder::FindMem(TermIndex::Build(db_), query);
  std::vector<std::vector<TupleSet>> streams;
  streams.push_back(expected);
  streams.push_back({});  // a shard with no matching relations
  EXPECT_EQ(MergeShardTupleSets(std::move(streams)), expected);
}

TEST_F(ShardMergeTest, OverlappingKeysUnionCoalesce) {
  // Two streams claiming the same (relation, termset) — not produced by
  // a well-formed ShardMap, but the merge must stay correct (e.g. during
  // a future map migration): tuple lists union, duplicates drop.
  TupleSet a;
  a.relation = 1;
  a.termset = 0b1;
  a.tuples = {TupleId(1, 0), TupleId(1, 2), TupleId(1, 5)};
  TupleSet b = a;
  b.tuples = {TupleId(1, 2), TupleId(1, 3)};
  TupleSet other;
  other.relation = 0;
  other.termset = 0b1;
  other.tuples = {TupleId(0, 7)};

  MergeStats stats;
  const std::vector<TupleSet> merged =
      MergeShardTupleSets({{a}, {other, b}}, &stats);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].relation, 0u);
  EXPECT_EQ(merged[1].relation, 1u);
  const std::vector<TupleId> expected_union = {TupleId(1, 0), TupleId(1, 2),
                                               TupleId(1, 3), TupleId(1, 5)};
  EXPECT_EQ(merged[1].tuples, expected_union);
  EXPECT_EQ(stats.input_sets, 3u);
  EXPECT_EQ(stats.output_sets, 2u);
  EXPECT_EQ(stats.coalesced, 1u);
}

TEST_F(ShardMergeTest, ManyQueriesStayIdenticalAcrossShardCounts) {
  // A quick sweep over the fixture's vocabulary cross-checking the
  // partition invariant on more shapes than the running example.
  const std::vector<std::vector<std::string>> queries = {
      {"denzel"},           {"washington"},
      {"gangster"},         {"denzel", "washington"},
      {"denzel", "gangster"}, {"washington", "gangster"},
      {"american", "gangster"}, {"denzel", "american"},
  };
  const TermIndex full = TermIndex::Build(db_);
  ShardMapOptions options;
  options.num_shards = 3;
  const ShardMap map = ShardMap::Build(db_.schema(), options);
  for (const auto& keywords : queries) {
    const KeywordQuery query = MakeQuery(keywords);
    EXPECT_EQ(MergeShardTupleSets(ShardStreams(db_, map, query)),
              TupleSetFinder::FindMem(full, query))
        << query.ToString();
  }
}

}  // namespace
}  // namespace matcn::shard
