// Live-insert routing over the sharded deployment: the ShardInsertRouter
// must forward each INSERT to the relation's owning shard (yielding the
// same TupleId the unsharded writer would assign), make the new terms
// searchable through the coordinator, and invalidate the coordinator's
// result cache *selectively* — only entries whose termset the insert
// touched. The racing-readers test runs the router against concurrent
// coordinator queries, which is the TSAN surface for the insert path.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/keyword_query.h"
#include "fixtures/imdb_fixture.h"
#include "graph/schema_graph.h"
#include "service/query_service.h"
#include "shard/coordinator.h"
#include "shard/local_cluster.h"
#include "shard/shard_map.h"
#include "storage/database.h"

namespace matcn::shard {
namespace {

constexpr uint32_t kNumShards = 3;

KeywordQuery MakeQuery(const std::vector<std::string>& keywords) {
  Result<KeywordQuery> query = KeywordQuery::FromKeywords(keywords);
  EXPECT_TRUE(query.ok());
  return *query;
}

class ShardInsertRoutingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = testing::MakeMiniImdb();
    schema_graph_ = SchemaGraph::Build(db_.schema());
    ShardMapOptions map_options;
    map_options.num_shards = kNumShards;
    map_ = std::make_unique<ShardMap>(
        ShardMap::Build(db_.schema(), map_options));
    LocalShardClusterOptions cluster_options;
    cluster_options.service.num_threads = 2;
    cluster_ = std::make_unique<LocalShardCluster>(
        [] { return testing::MakeMiniImdb(); }, map_.get(),
        cluster_options);
    ASSERT_TRUE(cluster_->Start().ok());
    coordinator_ =
        std::make_unique<Coordinator>(map_.get(), cluster_->Endpoints());
    ASSERT_TRUE(coordinator_->Connect().ok());
    QueryServiceOptions service_options;
    service_options.num_threads = 2;
    service_ = std::make_unique<QueryService>(
        &schema_graph_, coordinator_.get(), service_options);
    router_ = std::make_unique<ShardInsertRouter>(
        map_.get(), &db_.schema(), coordinator_.get());
    router_->set_invalidation_hook(
        [this](const std::vector<std::string>& terms) {
          service_->InvalidateTerms(terms);
        });
    per_ = *db_.schema().RelationIdByName("PER");
  }

  void TearDown() override {
    service_.reset();
    router_.reset();
    if (coordinator_ != nullptr) coordinator_->Shutdown();
    if (cluster_ != nullptr) cluster_->Stop();
  }

  Tuple MakePerson(int64_t id, const std::string& name) {
    Tuple tuple;
    tuple.push_back(Value(id));
    tuple.push_back(Value(name));
    return tuple;
  }

  Database db_;
  SchemaGraph schema_graph_;
  std::unique_ptr<ShardMap> map_;
  std::unique_ptr<LocalShardCluster> cluster_;
  std::unique_ptr<Coordinator> coordinator_;
  std::unique_ptr<QueryService> service_;
  std::unique_ptr<ShardInsertRouter> router_;
  RelationId per_ = 0;
};

TEST_F(ShardInsertRoutingTest, InsertLandsOnOwningShardWithGlobalId) {
  const uint64_t expected_row = db_.relation(per_).num_tuples();
  Result<liveindex::InsertOutcome> outcome =
      router_->Insert(per_, MakePerson(9001, "Routed Newperson"));
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  // Globally-consistent id: same relation/row the unsharded writer
  // would have assigned, because only the owner appends.
  EXPECT_EQ(outcome->id.relation(), per_);
  EXPECT_EQ(outcome->id.row(), expected_row);
  EXPECT_GE(outcome->version, 1u);

  // Exactly the owning shard advanced its index version.
  const uint32_t owner = map_->OwnerOf(per_);
  for (uint32_t s = 0; s < kNumShards; ++s) {
    const uint64_t version = cluster_->service(s)->Stats().index_version;
    EXPECT_EQ(version, s == owner ? 1u : 0u) << "shard " << s;
  }
  EXPECT_EQ(service_->Stats().shard_inserts_routed, 1u);

  // And the new term answers through the coordinator.
  Result<QueryResponse> response =
      service_->Submit(MakeQuery({"newperson"})).get();
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response->degraded);
  EXPECT_FALSE(response->result->tuple_sets.empty());
}

TEST_F(ShardInsertRoutingTest, InsertRejectsBadArityAndUnknownRelation) {
  Tuple short_tuple;
  short_tuple.push_back(Value(int64_t{1}));
  EXPECT_FALSE(router_->Insert(per_, std::move(short_tuple)).ok());
  EXPECT_FALSE(
      router_
          ->Insert(static_cast<RelationId>(db_.schema().num_relations()),
                   MakePerson(1, "Nobody"))
          .ok());
}

TEST_F(ShardInsertRoutingTest, CacheInvalidationIsSelectiveByTermset) {
  const KeywordQuery touched = MakeQuery({"denzel"});
  const KeywordQuery disjoint = MakeQuery({"gangster"});
  // Prime both cache entries.
  ASSERT_TRUE(service_->Submit(touched).get().ok());
  ASSERT_TRUE(service_->Submit(disjoint).get().ok());
  ASSERT_TRUE(service_->Submit(touched).get()->cache_hit);
  ASSERT_TRUE(service_->Submit(disjoint).get()->cache_hit);

  // The insert's name tokenizes to {denzel, again}: it must evict the
  // "denzel" entry and leave "gangster" hitting.
  ASSERT_TRUE(
      router_->Insert(per_, MakePerson(9002, "Denzel Again")).ok());
  Result<QueryResponse> touched_after = service_->Submit(touched).get();
  ASSERT_TRUE(touched_after.ok());
  EXPECT_FALSE(touched_after->cache_hit) << "touched entry survived";
  // The recomputed answer reflects the insert.
  Result<QueryResponse> disjoint_after = service_->Submit(disjoint).get();
  ASSERT_TRUE(disjoint_after.ok());
  EXPECT_TRUE(disjoint_after->cache_hit) << "disjoint entry was evicted";
}

TEST_F(ShardInsertRoutingTest, RacingReadersSeeConsistentStates) {
  // TSAN surface: 4 reader threads querying through the coordinator
  // while the main thread routes 50 inserts. Readers must only ever see
  // clean (non-degraded, non-error) results; the final state must
  // contain every insert.
  constexpr int kInserts = 50;
  constexpr int kReaders = 4;
  std::atomic<bool> stop{false};
  std::atomic<size_t> reads{0};
  std::atomic<size_t> bad{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      const KeywordQuery query = r % 2 == 0
                                     ? MakeQuery({"racer"})
                                     : MakeQuery({"denzel", "washington"});
      while (!stop.load()) {
        Result<QueryResponse> response = service_->Submit(query).get();
        reads.fetch_add(1);
        if (!response.ok() || response->degraded) bad.fetch_add(1);
      }
    });
  }

  uint64_t last_version = 0;
  for (int i = 0; i < kInserts; ++i) {
    Result<liveindex::InsertOutcome> outcome = router_->Insert(
        per_, MakePerson(10'000 + i, "Racer Number" + std::to_string(i)));
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_GT(outcome->version, last_version);
    last_version = outcome->version;
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();

  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(bad.load(), 0u);

  // All inserts visible: "racer" appears in every inserted name.
  Result<QueryResponse> final_read =
      service_->Submit(MakeQuery({"racer"})).get();
  ASSERT_TRUE(final_read.ok());
  ASSERT_FALSE(final_read->result->tuple_sets.empty());
  size_t total = 0;
  for (const TupleSet& ts : final_read->result->tuple_sets) {
    total += ts.tuples.size();
  }
  EXPECT_EQ(total, static_cast<size_t>(kInserts));
}

}  // namespace
}  // namespace matcn::shard
