// Property sweep: on sampled workloads over every synthetic dataset, all
// optimized top-k evaluators must return score-identical rankings to the
// exhaustive NaiveRanker.

#include <gtest/gtest.h>

#include <memory>

#include "core/matcngen.h"
#include "datasets/generators.h"
#include "datasets/workload.h"
#include "eval/hybrid_ranker.h"
#include "eval/naive_ranker.h"
#include "eval/pipelined_ranker.h"
#include "eval/skyline_ranker.h"
#include "eval/sparse_ranker.h"
#include "graph/schema_graph.h"

namespace matcn {
namespace {

struct Case {
  const char* name;
  Database (*make)(uint64_t, double);
  uint64_t seed;
};

class RankerEquivalence : public ::testing::TestWithParam<Case> {};

TEST_P(RankerEquivalence, OptimizedRankersMatchNaive) {
  const Case& c = GetParam();
  Database db = c.make(c.seed, 0.05);
  SchemaGraph schema_graph = SchemaGraph::Build(db.schema());
  TermIndex index = TermIndex::Build(db);
  WorkloadGenerator wgen(&db, &schema_graph, &index);

  WorkloadOptions workload_options;
  workload_options.num_queries = 5;
  workload_options.seed = 77;
  const std::vector<WorkloadQuery> queries = wgen.Generate(workload_options);
  ASSERT_FALSE(queries.empty());

  MatCnGen gen(&schema_graph);
  for (const WorkloadQuery& wq : queries) {
    GenerationResult result = gen.Generate(wq.query, index);
    EvalContext context{&db,       &schema_graph,      &index,
                        &wq.query, &result.tuple_sets, &result.cns};
    RankerOptions options;
    options.top_k = 8;

    NaiveRanker naive;
    const std::vector<Jnt> reference = naive.TopK(context, options);

    std::vector<std::unique_ptr<Ranker>> rankers;
    rankers.push_back(std::make_unique<SparseRanker>());
    rankers.push_back(std::make_unique<GlobalPipelinedRanker>());
    rankers.push_back(std::make_unique<SkylineSweepRanker>());
    rankers.push_back(std::make_unique<HybridRanker>());
    for (const auto& ranker : rankers) {
      const std::vector<Jnt> got = ranker->TopK(context, options);
      ASSERT_EQ(got.size(), reference.size())
          << c.name << "/" << wq.id << " " << ranker->name();
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_NEAR(got[i].score, reference[i].score, 1e-9)
            << c.name << "/" << wq.id << " " << ranker->name() << " rank "
            << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, RankerEquivalence,
    ::testing::Values(Case{"IMDb", MakeImdb, 42},
                      Case{"Mondial", MakeMondial, 43},
                      Case{"Wikipedia", MakeWikipedia, 44},
                      Case{"DBLP", MakeDblp, 45},
                      Case{"TPCH", MakeTpch, 46}),
    [](const ::testing::TestParamInfo<Case>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace matcn
