// CN evaluation algorithms: scoring and top-k equivalence properties.

#include <gtest/gtest.h>

#include <memory>

#include "core/matcngen.h"
#include "eval/hybrid_ranker.h"
#include "eval/naive_ranker.h"
#include "eval/pipelined_ranker.h"
#include "eval/scorer.h"
#include "eval/skyline_ranker.h"
#include "eval/sparse_ranker.h"
#include "fixtures/imdb_fixture.h"
#include "indexing/term_index.h"

namespace matcn {
namespace {

class RankersTest : public ::testing::Test {
 protected:
  RankersTest()
      : db_(testing::MakeMiniImdb()),
        schema_graph_(SchemaGraph::Build(db_.schema())),
        index_(TermIndex::Build(db_)) {}

  /// Generates CNs with MatCNGen and builds the evaluation context.
  void Prepare(const std::string& text) {
    auto q = KeywordQuery::Parse(text);
    ASSERT_TRUE(q.ok());
    query_ = *q;
    MatCnGen gen(&schema_graph_);
    gen_result_ = gen.Generate(query_, index_);
    context_.db = &db_;
    context_.schema_graph = &schema_graph_;
    context_.index = &index_;
    context_.query = &query_;
    context_.tuple_sets = &gen_result_.tuple_sets;
    context_.cns = &gen_result_.cns;
  }

  Database db_;
  SchemaGraph schema_graph_;
  TermIndex index_;
  KeywordQuery query_;
  GenerationResult gen_result_;
  EvalContext context_;
};

TEST_F(RankersTest, ScorerRewardsKeywordTuples) {
  Prepare("denzel washington gangster");
  Scorer scorer(&db_, &index_, &query_);
  const RelationId per = *db_.schema().RelationIdByName("PER");
  // "Denzel Washington" (2 keywords) outscores "Denzel Smith" (1) and
  // "Russell Crowe" (0).
  EXPECT_GT(scorer.TupleScore(TupleId(per, 0)),
            scorer.TupleScore(TupleId(per, 1)));
  EXPECT_GT(scorer.TupleScore(TupleId(per, 1)), 0.0);
  EXPECT_EQ(scorer.TupleScore(TupleId(per, 3)), 0.0);
}

TEST_F(RankersTest, ScorerNormalizesBySize) {
  Prepare("denzel washington gangster");
  Scorer scorer(&db_, &index_, &query_);
  const RelationId per = *db_.schema().RelationIdByName("PER");
  Jnt small;
  small.tuples = {TupleId(per, 0)};
  Jnt padded = small;
  padded.tuples.push_back(TupleId(per, 3));  // zero-score tuple
  EXPECT_GT(scorer.JntScore(small), scorer.JntScore(padded));
}

TEST_F(RankersTest, ScorerIdfPrefersRareKeywords) {
  Prepare("denzel mary");  // denzel df=5, mary df=1
  Scorer scorer(&db_, &index_, &query_);
  const RelationId per = *db_.schema().RelationIdByName("PER");
  // "Mary Washington" (rare keyword) vs "Denzel Smith" (frequent keyword).
  EXPECT_GT(scorer.TupleScore(TupleId(per, 2)),
            scorer.TupleScore(TupleId(per, 1)));
}

TEST_F(RankersTest, AllRankersAgreeWithNaive) {
  for (const char* text :
       {"gangster", "denzel washington", "denzel washington gangster",
        "denzel gangster", "mary washington"}) {
    Prepare(text);
    NaiveRanker naive;
    RankerOptions options;
    options.top_k = 10;
    std::vector<Jnt> reference = naive.TopK(context_, options);

    std::vector<std::unique_ptr<Ranker>> rankers;
    rankers.push_back(std::make_unique<SparseRanker>());
    rankers.push_back(std::make_unique<GlobalPipelinedRanker>());
    rankers.push_back(std::make_unique<SkylineSweepRanker>());
    rankers.push_back(std::make_unique<HybridRanker>());
    for (const auto& ranker : rankers) {
      std::vector<Jnt> got = ranker->TopK(context_, options);
      ASSERT_EQ(got.size(), reference.size())
          << ranker->name() << " on \"" << text << "\"";
      for (size_t i = 0; i < got.size(); ++i) {
        // Scores must match exactly; keys may differ only within ties.
        EXPECT_DOUBLE_EQ(got[i].score, reference[i].score)
            << ranker->name() << " rank " << i << " on \"" << text << "\"";
      }
    }
  }
}

TEST_F(RankersTest, TopKTruncates) {
  Prepare("gangster");
  NaiveRanker naive;
  RankerOptions all;
  all.top_k = 1000;
  const size_t total = naive.TopK(context_, all).size();
  ASSERT_GT(total, 1u);
  RankerOptions one;
  one.top_k = 1;
  EXPECT_EQ(naive.TopK(context_, one).size(), 1u);
  SkylineSweepRanker skyline;
  EXPECT_EQ(skyline.TopK(context_, one).size(), 1u);
}

TEST_F(RankersTest, ResultsSortedByScore) {
  Prepare("denzel washington gangster");
  for (Ranker* ranker :
       std::initializer_list<Ranker*>{new NaiveRanker, new SparseRanker,
                                      new SkylineSweepRanker}) {
    std::unique_ptr<Ranker> owned(ranker);
    std::vector<Jnt> results = owned->TopK(context_, {});
    for (size_t i = 1; i < results.size(); ++i) {
      EXPECT_GE(results[i - 1].score, results[i].score) << owned->name();
    }
  }
}

TEST_F(RankersTest, BestAnswerIsTheIntendedEntityPair) {
  Prepare("denzel washington gangster");
  NaiveRanker naive;
  std::vector<Jnt> results = naive.TopK(context_, {});
  ASSERT_FALSE(results.empty());
  // The best answer in this instance is "American Gangster" joined with
  // the cast entry whose note holds "denzel washington" (the PER route is
  // blocked: its only connector tuple contains query keywords and thus
  // cannot serve as a free tuple-set member).
  // The cast entry joins either "American Gangster" (MOV row 0) or
  // "Gangster Boss" (CHAR row 0) — both gangster tuples score equally, so
  // either pair may rank first.
  const RelationId mov = *db_.schema().RelationIdByName("MOV");
  const RelationId chr = *db_.schema().RelationIdByName("CHAR");
  const RelationId cast = *db_.schema().RelationIdByName("CAST");
  ASSERT_EQ(results[0].tuples.size(), 2u);
  bool has_gangster_entity = false, has_cast = false;
  for (const TupleId& id : results[0].tuples) {
    if (id == TupleId(mov, 0) || id == TupleId(chr, 0)) {
      has_gangster_entity = true;
    }
    if (id == TupleId(cast, 0)) has_cast = true;
  }
  EXPECT_TRUE(has_gangster_entity);
  EXPECT_TRUE(has_cast);
}

TEST_F(RankersTest, HybridEstimateGrowsWithCandidates) {
  Prepare("gangster");
  const double small = HybridRanker::EstimateResults(context_);
  Prepare("denzel washington gangster");
  const double large = HybridRanker::EstimateResults(context_);
  EXPECT_GT(small, 0.0);
  EXPECT_GT(large, 0.0);
}

TEST_F(RankersTest, EmptyCnSetYieldsNoResults) {
  Prepare("zzznothing");
  for (Ranker* ranker : std::initializer_list<Ranker*>{
           new NaiveRanker, new SparseRanker, new GlobalPipelinedRanker,
           new SkylineSweepRanker, new HybridRanker}) {
    std::unique_ptr<Ranker> owned(ranker);
    EXPECT_TRUE(owned->TopK(context_, {}).empty()) << owned->name();
  }
}

TEST_F(RankersTest, CnScoreBoundIsAnUpperBound) {
  Prepare("denzel washington gangster");
  Scorer scorer(&db_, &index_, &query_);
  NaiveRanker naive;
  RankerOptions options;
  options.top_k = 1000;
  std::vector<Jnt> all = naive.TopK(context_, options);
  for (const Jnt& jnt : all) {
    const double bound = CnScoreBound((*context_.cns)[jnt.cn_index],
                                      *context_.tuple_sets, scorer);
    EXPECT_LE(jnt.score, bound + 1e-9);
  }
}

}  // namespace
}  // namespace matcn
