// CN-level ranking (CNRank-style) and KwS-F-style budgeted evaluation.

#include <gtest/gtest.h>

#include "core/matcngen.h"
#include "eval/budgeted_ranker.h"
#include "eval/cn_ranker.h"
#include "eval/naive_ranker.h"
#include "fixtures/imdb_fixture.h"
#include "indexing/term_index.h"

namespace matcn {
namespace {

class ExtensionsTest : public ::testing::Test {
 protected:
  ExtensionsTest()
      : db_(testing::MakeMiniImdb()),
        schema_graph_(SchemaGraph::Build(db_.schema())),
        index_(TermIndex::Build(db_)) {}

  void Prepare(const std::string& text) {
    auto q = KeywordQuery::Parse(text);
    ASSERT_TRUE(q.ok());
    query_ = *q;
    MatCnGen gen(&schema_graph_);
    result_ = gen.Generate(query_, index_);
    context_.db = &db_;
    context_.schema_graph = &schema_graph_;
    context_.index = &index_;
    context_.query = &query_;
    context_.tuple_sets = &result_.tuple_sets;
    context_.cns = &result_.cns;
  }

  Database db_;
  SchemaGraph schema_graph_;
  TermIndex index_;
  KeywordQuery query_;
  GenerationResult result_;
  EvalContext context_;
};

TEST_F(ExtensionsTest, CnScoresAreNonNegativeAndSizeDamped) {
  Prepare("denzel washington gangster");
  Scorer scorer(&db_, &index_, &query_);
  for (const CandidateNetwork& cn : result_.cns) {
    EXPECT_GE(CandidateNetworkScore(cn, result_.tuple_sets, scorer), 0.0);
  }
  // A CN extended with a free connector scores lower than its 2-node
  // variant over the same tuple-sets (size damping).
  CandidateNetwork two = result_.cns[0];
  if (two.size() >= 2) {
    const double base =
        CandidateNetworkScore(two, result_.tuple_sets, scorer);
    CandidateNetwork padded =
        two.Extend(0, CnNode{db_.schema().RelationIdByName("CAST").value(),
                             0, -1});
    EXPECT_LT(CandidateNetworkScore(padded, result_.tuple_sets, scorer),
              base);
  }
}

TEST_F(ExtensionsTest, RankOrdersAllCnsDeterministically) {
  Prepare("denzel washington gangster");
  Scorer scorer(&db_, &index_, &query_);
  std::vector<size_t> order =
      RankCandidateNetworks(result_.cns, result_.tuple_sets, scorer);
  ASSERT_EQ(order.size(), result_.cns.size());
  std::vector<size_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
  // Scores along the order are non-increasing.
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(CandidateNetworkScore(result_.cns[order[i - 1]],
                                    result_.tuple_sets, scorer),
              CandidateNetworkScore(result_.cns[order[i]],
                                    result_.tuple_sets, scorer));
  }
}

TEST_F(ExtensionsTest, UnboundedBudgetMatchesNaive) {
  Prepare("denzel washington gangster");
  NaiveRanker naive;
  RankerOptions options;
  options.top_k = 10;
  std::vector<Jnt> reference = naive.TopK(context_, options);
  BudgetedRanker budgeted(/*deadline_ms=*/0);
  BudgetedResult result = budgeted.TopK(context_, options);
  EXPECT_FALSE(result.deadline_hit);
  EXPECT_TRUE(result.query_forms.empty());
  EXPECT_EQ(result.evaluated_cns.size(), result_.cns.size());
  ASSERT_EQ(result.answers.size(), reference.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    EXPECT_DOUBLE_EQ(result.answers[i].score, reference[i].score);
  }
}

TEST_F(ExtensionsTest, TinyBudgetEmitsQueryForms) {
  Prepare("denzel washington gangster");
  ASSERT_GT(result_.cns.size(), 1u);
  // A negative-epsilon deadline: the first CN is always evaluated (the
  // check happens before each CN), the rest become SQL query forms.
  BudgetedRanker budgeted(/*deadline_ms=*/1e-9);
  RankerOptions options;
  BudgetedResult result = budgeted.TopK(context_, options);
  EXPECT_TRUE(result.deadline_hit);
  EXPECT_GE(result.evaluated_cns.size(), 1u);
  EXPECT_EQ(result.evaluated_cns.size() + result.query_forms.size(),
            result_.cns.size());
  for (const std::string& sql : result.query_forms) {
    EXPECT_NE(sql.find("SELECT"), std::string::npos);
  }
}

TEST_F(ExtensionsTest, BudgetedEvaluatesBestCnsFirst) {
  Prepare("denzel washington gangster");
  Scorer scorer(&db_, &index_, &query_);
  std::vector<size_t> order =
      RankCandidateNetworks(result_.cns, result_.tuple_sets, scorer);
  BudgetedRanker budgeted(1e-9);
  BudgetedResult result = budgeted.TopK(context_, {});
  ASSERT_FALSE(result.evaluated_cns.empty());
  // The evaluated prefix must follow the CNRank order.
  for (size_t i = 0; i < result.evaluated_cns.size(); ++i) {
    EXPECT_EQ(result.evaluated_cns[i], order[i]);
  }
}

}  // namespace
}  // namespace matcn
