// CnSweeper: the per-CN skyline iterator behind Skyline-Sweeping.

#include "eval/cn_sweeper.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>
#include <set>

#include "core/matcngen.h"
#include "fixtures/imdb_fixture.h"
#include "indexing/term_index.h"

namespace matcn {
namespace {

class CnSweeperTest : public ::testing::Test {
 protected:
  CnSweeperTest()
      : db_(testing::MakeMiniImdb()),
        schema_graph_(SchemaGraph::Build(db_.schema())),
        index_(TermIndex::Build(db_)) {}

  void Prepare(const std::string& text) {
    auto q = KeywordQuery::Parse(text);
    ASSERT_TRUE(q.ok());
    query_ = *q;
    MatCnGen gen(&schema_graph_);
    result_ = gen.Generate(query_, index_);
    scorer_ = std::make_unique<Scorer>(&db_, &index_, &query_);
  }

  Database db_;
  SchemaGraph schema_graph_;
  TermIndex index_;
  KeywordQuery query_;
  GenerationResult result_;
  std::unique_ptr<Scorer> scorer_;
};

TEST_F(CnSweeperTest, BoundsAreNonIncreasing) {
  Prepare("denzel washington gangster");
  for (const CandidateNetwork& cn : result_.cns) {
    CnSweeper sweeper(&cn, &result_.tuple_sets, scorer_.get());
    double prev = std::numeric_limits<double>::infinity();
    while (!sweeper.Exhausted()) {
      const double bound = sweeper.NextBound();
      EXPECT_LE(bound, prev + 1e-12);
      CnSweeper::Combination combo = sweeper.Pop();
      EXPECT_DOUBLE_EQ(combo.score, bound);
      prev = bound;
    }
  }
}

TEST_F(CnSweeperTest, EnumeratesEveryCombinationExactlyOnce) {
  Prepare("denzel gangster");
  for (const CandidateNetwork& cn : result_.cns) {
    size_t expected = 1;
    for (const CnNode& node : cn.nodes()) {
      if (!node.is_free()) {
        expected *= result_.tuple_sets[node.tuple_set_index].tuples.size();
      }
    }
    CnSweeper sweeper(&cn, &result_.tuple_sets, scorer_.get());
    std::set<std::string> seen;
    size_t count = 0;
    while (!sweeper.Exhausted()) {
      CnSweeper::Combination combo = sweeper.Pop();
      std::string key;
      for (const auto& [node, id] : combo.fixed) {
        key += std::to_string(node) + ":" + std::to_string(id.packed()) +
               ";";
      }
      EXPECT_TRUE(seen.insert(key).second) << "duplicate combination";
      ++count;
    }
    EXPECT_EQ(count, expected);
  }
}

TEST_F(CnSweeperTest, CombinationPinsEveryNonFreeNode) {
  Prepare("denzel washington gangster");
  for (const CandidateNetwork& cn : result_.cns) {
    CnSweeper sweeper(&cn, &result_.tuple_sets, scorer_.get());
    if (sweeper.Exhausted()) continue;
    CnSweeper::Combination combo = sweeper.Pop();
    size_t non_free = 0;
    for (const CnNode& node : cn.nodes()) {
      if (!node.is_free()) ++non_free;
    }
    EXPECT_EQ(combo.fixed.size(), non_free);
    // Pinned tuples belong to their node's tuple-set.
    for (const auto& [node, id] : combo.fixed) {
      const TupleSet& ts =
          result_.tuple_sets[cn.node(node).tuple_set_index];
      EXPECT_NE(std::find(ts.tuples.begin(), ts.tuples.end(), id),
                ts.tuples.end());
    }
  }
}

TEST_F(CnSweeperTest, FirstCombinationUsesTopTuples) {
  Prepare("denzel washington gangster");
  const CandidateNetwork& cn = result_.cns[0];
  CnSweeper sweeper(&cn, &result_.tuple_sets, scorer_.get());
  ASSERT_FALSE(sweeper.Exhausted());
  CnSweeper::Combination best = sweeper.Pop();
  // Its score is the CN's upper bound: max tuple score per node.
  double expected = 0.0;
  for (const CnNode& node : cn.nodes()) {
    if (node.is_free()) continue;
    expected +=
        scorer_->MaxTupleScore(result_.tuple_sets[node.tuple_set_index]);
  }
  expected /= static_cast<double>(cn.size());
  EXPECT_DOUBLE_EQ(best.score, expected);
}

}  // namespace
}  // namespace matcn
