// Size-normalization variants of the IR scorer.

#include <gtest/gtest.h>

#include <cmath>

#include "eval/scorer.h"
#include "fixtures/imdb_fixture.h"
#include "indexing/term_index.h"

namespace matcn {
namespace {

class ScoringOptionsTest : public ::testing::Test {
 protected:
  ScoringOptionsTest()
      : db_(testing::MakeMiniImdb()), index_(TermIndex::Build(db_)) {
    auto q = KeywordQuery::Parse("denzel washington gangster");
    query_ = *q;
    per_ = *db_.schema().RelationIdByName("PER");
    mov_ = *db_.schema().RelationIdByName("MOV");
  }

  Scorer Make(SizeNormalization n) {
    ScorerOptions options;
    options.normalization = n;
    return Scorer(&db_, &index_, &query_, options);
  }

  Jnt Pair() {
    Jnt j;
    j.tuples = {TupleId(per_, 0), TupleId(mov_, 0)};
    return j;
  }

  Database db_;
  TermIndex index_;
  KeywordQuery query_;
  RelationId per_ = 0, mov_ = 0;
};

TEST_F(ScoringOptionsTest, NormalizationOrdering) {
  // For any multi-tuple JNT: none >= sqrt >= linear, strictly when the
  // sum is positive and size > 1.
  const Jnt pair = Pair();
  const double linear = Make(SizeNormalization::kLinear).JntScore(pair);
  const double soft = Make(SizeNormalization::kSqrt).JntScore(pair);
  const double none = Make(SizeNormalization::kNone).JntScore(pair);
  EXPECT_GT(none, soft);
  EXPECT_GT(soft, linear);
  EXPECT_GT(linear, 0.0);
  EXPECT_DOUBLE_EQ(none, linear * 2.0);
  EXPECT_NEAR(soft, linear * std::sqrt(2.0), 1e-12);
}

TEST_F(ScoringOptionsTest, SingleTupleUnaffected) {
  Jnt single;
  single.tuples = {TupleId(per_, 0)};
  const double linear = Make(SizeNormalization::kLinear).JntScore(single);
  const double soft = Make(SizeNormalization::kSqrt).JntScore(single);
  const double none = Make(SizeNormalization::kNone).JntScore(single);
  EXPECT_DOUBLE_EQ(linear, soft);
  EXPECT_DOUBLE_EQ(linear, none);
}

TEST_F(ScoringOptionsTest, NoneFavorsBiggerTrees) {
  // Under kNone, padding a JNT with a scoring tuple raises its score;
  // under kLinear it can drop below the compact version — the pathology
  // size normalization exists to prevent.
  Jnt pair = Pair();
  Jnt triple = pair;
  triple.tuples.push_back(TupleId(per_, 1));  // "Denzel Smith", scores > 0
  Scorer none = Make(SizeNormalization::kNone);
  Scorer linear = Make(SizeNormalization::kLinear);
  EXPECT_GT(none.JntScore(triple), none.JntScore(pair));
  EXPECT_LT(linear.JntScore(triple), linear.JntScore(pair));
}

TEST_F(ScoringOptionsTest, TupleScoresIndependentOfNormalization) {
  const double a =
      Make(SizeNormalization::kLinear).TupleScore(TupleId(per_, 0));
  const double b =
      Make(SizeNormalization::kNone).TupleScore(TupleId(per_, 0));
  EXPECT_DOUBLE_EQ(a, b);
}

}  // namespace
}  // namespace matcn
