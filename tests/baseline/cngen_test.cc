// CNGen (DISCOVER baseline): exhaustiveness, validity, failure emulation.

#include "baseline/cngen.h"

#include <gtest/gtest.h>

#include <set>

#include "core/minimal_cover.h"
#include "core/tsfind.h"
#include "fixtures/imdb_fixture.h"
#include "indexing/term_index.h"

namespace matcn {
namespace {

class CnGenTest : public ::testing::Test {
 protected:
  CnGenTest()
      : db_(testing::MakeMiniImdb()),
        schema_graph_(SchemaGraph::Build(db_.schema())),
        index_(TermIndex::Build(db_)) {}

  CnGenResult Run(const std::string& text, int t_max,
                  std::vector<TupleSet>* sets_out = nullptr) {
    auto q = KeywordQuery::Parse(text);
    EXPECT_TRUE(q.ok());
    std::vector<TupleSet> sets = TupleSetFinder::FindMem(index_, *q);
    TupleSetGraph g(&schema_graph_, &sets);
    CnGenOptions options;
    options.t_max = t_max;
    CnGenResult result = CnGen(*q, g, options);
    query_ = *q;
    if (sets_out != nullptr) *sets_out = std::move(sets);
    return result;
  }

  Database db_;
  SchemaGraph schema_graph_;
  TermIndex index_;
  KeywordQuery query_;
};

TEST_F(CnGenTest, AllCnsAreValid) {
  CnGenResult result = Run("denzel washington gangster", 5);
  ASSERT_FALSE(result.failed);
  ASSERT_FALSE(result.cns.empty());
  for (const CandidateNetwork& cn : result.cns) {
    EXPECT_TRUE(cn.IsSound(schema_graph_));
    EXPECT_EQ(cn.CoveredTermset(), query_.FullTermset());
    for (int leaf : cn.Leaves()) EXPECT_FALSE(cn.node(leaf).is_free());
    std::vector<Termset> termsets;
    for (const CnNode& n : cn.nodes()) {
      if (!n.is_free()) termsets.push_back(n.termset);
    }
    EXPECT_TRUE(IsMinimalCover(termsets, query_.FullTermset()));
  }
}

TEST_F(CnGenTest, NoDuplicateCns) {
  CnGenResult result = Run("denzel washington gangster", 5);
  std::set<std::string> canon;
  for (const CandidateNetwork& cn : result.cns) {
    EXPECT_TRUE(canon.insert(cn.CanonicalForm()).second);
  }
}

TEST_F(CnGenTest, RespectsTmax) {
  CnGenResult result = Run("denzel washington gangster", 3);
  for (const CandidateNetwork& cn : result.cns) {
    EXPECT_LE(cn.size(), 3u);
  }
}

TEST_F(CnGenTest, LargerTmaxFindsSuperset) {
  CnGenResult small = Run("denzel washington", 3);
  CnGenResult large = Run("denzel washington", 5);
  ASSERT_FALSE(small.failed);
  ASSERT_FALSE(large.failed);
  std::set<std::string> large_canon;
  for (const CandidateNetwork& cn : large.cns) {
    large_canon.insert(cn.CanonicalForm());
  }
  for (const CandidateNetwork& cn : small.cns) {
    EXPECT_TRUE(large_canon.contains(cn.CanonicalForm()));
  }
  EXPECT_GE(large.cns.size(), small.cns.size());
}

TEST_F(CnGenTest, SingleKeyword) {
  CnGenResult result = Run("gangster", 3);
  ASSERT_FALSE(result.failed);
  // One single-node CN per relation holding the keyword alone (4), and no
  // multi-node CN can be minimal for a single keyword.
  EXPECT_EQ(result.cns.size(), 4u);
  for (const CandidateNetwork& cn : result.cns) EXPECT_EQ(cn.size(), 1u);
}

TEST_F(CnGenTest, BudgetExhaustionSetsFailed) {
  auto q = KeywordQuery::Parse("denzel washington gangster");
  ASSERT_TRUE(q.ok());
  std::vector<TupleSet> sets = TupleSetFinder::FindMem(index_, *q);
  TupleSetGraph g(&schema_graph_, &sets);
  CnGenOptions options;
  options.t_max = 6;
  options.max_partial_trees = 10;  // absurdly small budget
  CnGenResult result = CnGen(*q, g, options);
  EXPECT_TRUE(result.failed);
}

TEST_F(CnGenTest, UncoverableQueryGeneratesNothing) {
  CnGenResult result = Run("gangster zzzznope", 4);
  ASSERT_FALSE(result.failed);
  EXPECT_TRUE(result.cns.empty());
}

}  // namespace
}  // namespace matcn
