#include "metrics/latency_histogram.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace matcn {
namespace {

TEST(LatencyHistogramTest, EmptyHistogramReportsZeros) {
  LatencyHistogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.QuantileMicros(0.5), 0);
  EXPECT_EQ(h.MaxMicros(), 0);
  EXPECT_EQ(h.MeanMicros(), 0.0);
}

TEST(LatencyHistogramTest, SmallValuesAreExact) {
  // Values 0..15 land in dedicated unit-width buckets.
  LatencyHistogram h;
  for (int64_t v = 0; v <= 15; ++v) h.Record(v);
  EXPECT_EQ(h.Count(), 16u);
  EXPECT_EQ(h.QuantileMicros(0.0), 0);
  EXPECT_EQ(h.QuantileMicros(1.0), 15);
  EXPECT_EQ(h.MaxMicros(), 15);
  EXPECT_DOUBLE_EQ(h.MeanMicros(), 7.5);
}

TEST(LatencyHistogramTest, QuantilesOfUniformRamp) {
  LatencyHistogram h;
  for (int64_t v = 1; v <= 1000; ++v) h.Record(v);
  // Log-bucketing with 16 sub-buckets guarantees <= 6.25% relative error.
  const int64_t p50 = h.QuantileMicros(0.50);
  const int64_t p95 = h.QuantileMicros(0.95);
  const int64_t p99 = h.QuantileMicros(0.99);
  EXPECT_NEAR(p50, 500, 500 * 0.0625 + 1);
  EXPECT_NEAR(p95, 950, 950 * 0.0625 + 1);
  EXPECT_NEAR(p99, 990, 990 * 0.0625 + 1);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_EQ(h.MaxMicros(), 1000);
}

TEST(LatencyHistogramTest, NegativeAndHugeValuesClampInsteadOfCrashing) {
  LatencyHistogram h;
  h.Record(-5);
  h.Record(int64_t{1} << 60);
  EXPECT_EQ(h.Count(), 2u);
  EXPECT_EQ(h.QuantileMicros(0.0), 0);
  EXPECT_GT(h.QuantileMicros(1.0), 0);
}

TEST(LatencyHistogramTest, MergeAddsBucketsCountsAndMax) {
  LatencyHistogram a, b;
  for (int i = 0; i < 100; ++i) a.Record(10);
  for (int i = 0; i < 100; ++i) b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 200u);
  EXPECT_EQ(a.QuantileMicros(0.25), 10);
  EXPECT_GE(a.QuantileMicros(0.99), 900);
  EXPECT_EQ(a.MaxMicros(), 1000);
}

TEST(LatencyHistogramTest, ResetZeroesEverything) {
  LatencyHistogram h;
  for (int i = 0; i < 50; ++i) h.Record(123);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.QuantileMicros(0.99), 0);
  EXPECT_EQ(h.MaxMicros(), 0);
}

TEST(LatencyHistogramTest, ConcurrentRecordLosesNothing) {
  LatencyHistogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) h.Record((t + 1) * 100);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.Count(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(h.MaxMicros(), kThreads * 100);
}

TEST(LatencyHistogramTest, FormatMicrosPicksSensibleUnits) {
  EXPECT_EQ(LatencyHistogram::FormatMicros(42), "42us");
  EXPECT_NE(LatencyHistogram::FormatMicros(2'500).find("ms"),
            std::string::npos);
  EXPECT_NE(LatencyHistogram::FormatMicros(3'000'000).find("s"),
            std::string::npos);
}

TEST(LatencyHistogramTest, SummaryMentionsEveryHeadline) {
  LatencyHistogram h;
  for (int i = 0; i < 10; ++i) h.Record(500);
  const std::string s = h.Summary();
  EXPECT_NE(s.find("n=10"), std::string::npos) << s;
  EXPECT_NE(s.find("p50="), std::string::npos) << s;
  EXPECT_NE(s.find("p95="), std::string::npos) << s;
  EXPECT_NE(s.find("p99="), std::string::npos) << s;
  EXPECT_NE(s.find("max="), std::string::npos) << s;
}

TEST(LatencyHistogramTest, SnapshotBucketsIsCumulativeWithFixedLayout) {
  LatencyHistogram h;
  const HistogramSnapshot empty = h.SnapshotBuckets();
  ASSERT_FALSE(empty.buckets.empty());
  EXPECT_EQ(empty.count, 0u);

  for (int i = 0; i < 100; ++i) h.Record(10);
  for (int i = 0; i < 50; ++i) h.Record(100'000);
  const HistogramSnapshot snap = h.SnapshotBuckets();

  // Fixed layout: the bucket schema never depends on what was recorded
  // (scrape-to-scrape stability is what rate() over _bucket needs).
  ASSERT_EQ(snap.buckets.size(), empty.buckets.size());
  for (size_t i = 0; i < snap.buckets.size(); ++i) {
    EXPECT_EQ(snap.buckets[i].first, empty.buckets[i].first) << i;
  }

  // Edges ascend, counts are cumulative, and the last bucket carries
  // everything — the +Inf == _count invariant the exporter relies on.
  for (size_t i = 1; i < snap.buckets.size(); ++i) {
    EXPECT_GT(snap.buckets[i].first, snap.buckets[i - 1].first);
    EXPECT_GE(snap.buckets[i].second, snap.buckets[i - 1].second);
  }
  EXPECT_EQ(snap.buckets.back().second, snap.count);
  EXPECT_EQ(snap.count, 150u);
  EXPECT_EQ(snap.sum_micros, 100u * 10 + 50u * 100'000);
  EXPECT_EQ(snap.max_micros, 100'000);

  // All 100 fast samples sit at or below the 10us edge; none of the slow
  // ones do.
  for (const auto& [edge, cumulative] : snap.buckets) {
    if (edge >= 10 && edge < 100'000) EXPECT_EQ(cumulative, 100u) << edge;
  }
}

TEST(LatencyHistogramTest, SnapshotBucketsUnderConcurrentRecordStaysSane) {
  LatencyHistogram h;
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&h] {
      for (int i = 0; i < 5000; ++i) h.Record(i % 1000);
    });
  }
  // Snapshots taken mid-flight must keep the cumulative invariant (the
  // documented contract: approximate totals, never inconsistent shape).
  for (int i = 0; i < 20; ++i) {
    const HistogramSnapshot snap = h.SnapshotBuckets();
    for (size_t j = 1; j < snap.buckets.size(); ++j) {
      ASSERT_GE(snap.buckets[j].second, snap.buckets[j - 1].second);
    }
    ASSERT_EQ(snap.buckets.back().second, snap.count);
  }
  for (std::thread& t : writers) t.join();
  EXPECT_EQ(h.SnapshotBuckets().count, 4u * 5000u);
}

}  // namespace
}  // namespace matcn
