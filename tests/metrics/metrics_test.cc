#include "metrics/metrics.h"

#include <gtest/gtest.h>

#include "metrics/stage_stats.h"

namespace matcn {
namespace {

Jnt J(uint64_t row) {
  Jnt j;
  j.tuples = {TupleId(0, row)};
  return j;
}

GoldenStandard Golden(std::initializer_list<uint64_t> rows) {
  GoldenStandard g;
  for (uint64_t row : rows) g.insert(JntKey(J(row)));
  return g;
}

TEST(AveragePrecisionTest, PerfectRanking) {
  std::vector<Jnt> ranking = {J(1), J(2)};
  EXPECT_DOUBLE_EQ(AveragePrecision(ranking, Golden({1, 2})), 1.0);
}

TEST(AveragePrecisionTest, SingleRelevantAtRankTwo) {
  std::vector<Jnt> ranking = {J(9), J(1)};
  // AP = P(2)*1/|R| = (1/2)/1.
  EXPECT_DOUBLE_EQ(AveragePrecision(ranking, Golden({1})), 0.5);
}

TEST(AveragePrecisionTest, MixedRanking) {
  // Relevant at positions 1 and 3: AP = (1/1 + 2/3)/2.
  std::vector<Jnt> ranking = {J(1), J(8), J(2)};
  EXPECT_NEAR(AveragePrecision(ranking, Golden({1, 2})), (1.0 + 2.0 / 3) / 2,
              1e-12);
}

TEST(AveragePrecisionTest, MissingRelevantLowersScore) {
  std::vector<Jnt> ranking = {J(1)};
  // Only 1 of 2 relevant found: AP = (1/1)/2.
  EXPECT_DOUBLE_EQ(AveragePrecision(ranking, Golden({1, 2})), 0.5);
}

TEST(AveragePrecisionTest, CutoffIgnoresLateHits) {
  std::vector<Jnt> ranking = {J(8), J(9), J(1)};
  EXPECT_DOUBLE_EQ(AveragePrecision(ranking, Golden({1}), /*n=*/2), 0.0);
}

TEST(AveragePrecisionTest, EmptyGoldenIsZero) {
  EXPECT_DOUBLE_EQ(AveragePrecision({J(1)}, {}), 0.0);
}

TEST(AveragePrecisionTest, EmptyRankingIsZero) {
  EXPECT_DOUBLE_EQ(AveragePrecision({}, Golden({1})), 0.0);
}

TEST(ReciprocalRankTest, FirstSecondAndMissing) {
  EXPECT_DOUBLE_EQ(ReciprocalRank({J(1), J(2)}, Golden({1})), 1.0);
  EXPECT_DOUBLE_EQ(ReciprocalRank({J(2), J(1)}, Golden({1})), 0.5);
  EXPECT_DOUBLE_EQ(ReciprocalRank({J(2), J(3)}, Golden({1})), 0.0);
}

TEST(PrecisionAtKTest, Basics) {
  std::vector<Jnt> ranking = {J(1), J(9), J(2), J(8)};
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranking, Golden({1, 2}), 1), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranking, Golden({1, 2}), 4), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranking, Golden({1, 2}), 0), 0.0);
}

TEST(PrecisionAtKTest, KBeyondRankingLength) {
  EXPECT_DOUBLE_EQ(PrecisionAtK({J(1)}, Golden({1}), 10), 0.1);
}

TEST(MeanTest, Basics) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(StageStatsTest, EmptySnapshotIsZero) {
  StageStats stats;
  const StageStatsSnapshot s = stats.Snapshot();
  EXPECT_EQ(s.runs, 0u);
  EXPECT_DOUBLE_EQ(s.cn_parallel_efficiency, 0.0);
  EXPECT_DOUBLE_EQ(s.cn_workers_mean, 0.0);
}

TEST(StageStatsTest, SnapshotMeansMatchRecordedValues) {
  StageStats stats;
  stats.Record(/*ts_ms=*/1.0, /*match_ms=*/2.0, /*cn_ms=*/4.0,
               /*cn_parallel_efficiency=*/0.5, /*cn_workers=*/1);
  stats.Record(/*ts_ms=*/3.0, /*match_ms=*/4.0, /*cn_ms=*/8.0,
               /*cn_parallel_efficiency=*/1.0, /*cn_workers=*/7);
  const StageStatsSnapshot s = stats.Snapshot();
  EXPECT_EQ(s.runs, 2u);
  EXPECT_NEAR(s.ts_ms_mean, 2.0, 1e-3);
  EXPECT_NEAR(s.match_ms_mean, 3.0, 1e-3);
  EXPECT_NEAR(s.cn_ms_mean, 6.0, 1e-3);
  // The ratio must come back on its recorded [0, 1] scale — this is the
  // regression test for the snapshot dividing out only half of the
  // fixed-point scaling and reporting 750 instead of 0.75.
  EXPECT_NEAR(s.cn_parallel_efficiency, 0.75, 1e-3);
  EXPECT_NEAR(s.cn_workers_mean, 4.0, 1e-9);
}

TEST(StageStatsTest, EfficiencyStaysInUnitRangeInToString) {
  StageStats stats;
  stats.Record(0.1, 0.1, 5.0, 0.94258, 4);
  const StageStatsSnapshot s = stats.Snapshot();
  EXPECT_GT(s.cn_parallel_efficiency, 0.0);
  EXPECT_LE(s.cn_parallel_efficiency, 1.0);
  EXPECT_NE(s.ToString().find("cn_eff=0.94"), std::string::npos);
}

}  // namespace
}  // namespace matcn
