#include "metrics/metrics.h"

#include <gtest/gtest.h>

namespace matcn {
namespace {

Jnt J(uint64_t row) {
  Jnt j;
  j.tuples = {TupleId(0, row)};
  return j;
}

GoldenStandard Golden(std::initializer_list<uint64_t> rows) {
  GoldenStandard g;
  for (uint64_t row : rows) g.insert(JntKey(J(row)));
  return g;
}

TEST(AveragePrecisionTest, PerfectRanking) {
  std::vector<Jnt> ranking = {J(1), J(2)};
  EXPECT_DOUBLE_EQ(AveragePrecision(ranking, Golden({1, 2})), 1.0);
}

TEST(AveragePrecisionTest, SingleRelevantAtRankTwo) {
  std::vector<Jnt> ranking = {J(9), J(1)};
  // AP = P(2)*1/|R| = (1/2)/1.
  EXPECT_DOUBLE_EQ(AveragePrecision(ranking, Golden({1})), 0.5);
}

TEST(AveragePrecisionTest, MixedRanking) {
  // Relevant at positions 1 and 3: AP = (1/1 + 2/3)/2.
  std::vector<Jnt> ranking = {J(1), J(8), J(2)};
  EXPECT_NEAR(AveragePrecision(ranking, Golden({1, 2})), (1.0 + 2.0 / 3) / 2,
              1e-12);
}

TEST(AveragePrecisionTest, MissingRelevantLowersScore) {
  std::vector<Jnt> ranking = {J(1)};
  // Only 1 of 2 relevant found: AP = (1/1)/2.
  EXPECT_DOUBLE_EQ(AveragePrecision(ranking, Golden({1, 2})), 0.5);
}

TEST(AveragePrecisionTest, CutoffIgnoresLateHits) {
  std::vector<Jnt> ranking = {J(8), J(9), J(1)};
  EXPECT_DOUBLE_EQ(AveragePrecision(ranking, Golden({1}), /*n=*/2), 0.0);
}

TEST(AveragePrecisionTest, EmptyGoldenIsZero) {
  EXPECT_DOUBLE_EQ(AveragePrecision({J(1)}, {}), 0.0);
}

TEST(AveragePrecisionTest, EmptyRankingIsZero) {
  EXPECT_DOUBLE_EQ(AveragePrecision({}, Golden({1})), 0.0);
}

TEST(ReciprocalRankTest, FirstSecondAndMissing) {
  EXPECT_DOUBLE_EQ(ReciprocalRank({J(1), J(2)}, Golden({1})), 1.0);
  EXPECT_DOUBLE_EQ(ReciprocalRank({J(2), J(1)}, Golden({1})), 0.5);
  EXPECT_DOUBLE_EQ(ReciprocalRank({J(2), J(3)}, Golden({1})), 0.0);
}

TEST(PrecisionAtKTest, Basics) {
  std::vector<Jnt> ranking = {J(1), J(9), J(2), J(8)};
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranking, Golden({1, 2}), 1), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranking, Golden({1, 2}), 4), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranking, Golden({1, 2}), 0), 0.0);
}

TEST(PrecisionAtKTest, KBeyondRankingLength) {
  EXPECT_DOUBLE_EQ(PrecisionAtK({J(1)}, Golden({1}), 10), 0.1);
}

TEST(MeanTest, Basics) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
}

}  // namespace
}  // namespace matcn
