// Differential test for online index maintenance: Build(db_full) must be
// indistinguishable from Build(db_prefix) + streamed ApplyInsert — same
// lookups, same document frequencies, same posting memory — for both the
// legacy TermIndex and the live ConcurrentTermIndex.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "fixtures/imdb_fixture.h"
#include "indexing/term_index.h"
#include "liveindex/concurrent_term_index.h"

namespace matcn::liveindex {
namespace {

// The streamed suffix mixes new terms, existing terms, repeated tokens,
// stopwords, and multiple relations.
std::vector<std::pair<std::string, Tuple>> SuffixTuples() {
  std::vector<std::pair<std::string, Tuple>> suffix;
  suffix.emplace_back("PER",
                      Tuple{Value(int64_t{5}), Value("Viola Davis")});
  suffix.emplace_back("PER",
                      Tuple{Value(int64_t{6}), Value("Denzel Whitaker")});
  suffix.emplace_back(
      "MOV", Tuple{Value(int64_t{4}), Value("gangster gangster gangster"),
                   Value(int64_t{2020})});
  suffix.emplace_back("MOV", Tuple{Value(int64_t{5}),
                                   Value("The Equalizer"),
                                   Value(int64_t{2014})});
  suffix.emplace_back("ROLE",
                      Tuple{Value(int64_t{3}), Value("the nameless one")});
  suffix.emplace_back("CHAR",
                      Tuple{Value(int64_t{4}), Value("Gangster Denzel")});
  return suffix;
}

TEST(LiveIndexDifferentialTest, LegacyStreamedEqualsRebuild) {
  Database db = testing::MakeMiniImdb();
  TermIndex incremental = TermIndex::Build(db);
  for (auto& [relation, tuple] : SuffixTuples()) {
    const RelationId r = *db.schema().RelationIdByName(relation);
    ASSERT_TRUE(db.Insert(r, std::move(tuple)).ok());
    incremental.ApplyInsert(db, TupleId(r, db.relation(r).num_tuples() - 1));
  }
  const TermIndex rebuilt = TermIndex::Build(db);

  ASSERT_EQ(incremental.AllTerms(), rebuilt.AllTerms());
  for (const std::string& term : rebuilt.AllTerms()) {
    EXPECT_EQ(incremental.TuplesFor(term), rebuilt.TuplesFor(term)) << term;
    EXPECT_EQ(incremental.DocumentFrequency(term),
              rebuilt.DocumentFrequency(term))
        << term;
  }
  EXPECT_EQ(incremental.total_tuples(), rebuilt.total_tuples());
  EXPECT_EQ(incremental.PostingMemoryBytes(), rebuilt.PostingMemoryBytes());
}

TEST(LiveIndexDifferentialTest, LegacyCompressedStreamedEqualsRebuild) {
  TermIndexOptions options;
  options.compress_postings = true;
  Database db = testing::MakeMiniImdb();
  TermIndex incremental = TermIndex::Build(db, options);
  for (auto& [relation, tuple] : SuffixTuples()) {
    const RelationId r = *db.schema().RelationIdByName(relation);
    ASSERT_TRUE(db.Insert(r, std::move(tuple)).ok());
    incremental.ApplyInsert(db, TupleId(r, db.relation(r).num_tuples() - 1));
  }
  const TermIndex rebuilt = TermIndex::Build(db, options);
  ASSERT_EQ(incremental.AllTerms(), rebuilt.AllTerms());
  for (const std::string& term : rebuilt.AllTerms()) {
    EXPECT_EQ(incremental.TuplesFor(term), rebuilt.TuplesFor(term)) << term;
  }
  EXPECT_EQ(incremental.PostingMemoryBytes(), rebuilt.PostingMemoryBytes());
}

TEST(LiveIndexDifferentialTest, ConcurrentStreamedEqualsRebuild) {
  // Seed both live indexes with the same TermIndexOptions the live layer
  // uses for compaction, so posting memory is comparable byte-for-byte.
  LiveIndexOptions options;

  Database db = testing::MakeMiniImdb();
  ConcurrentTermIndex streamed(TermIndex::Build(db, options.index), options);
  for (auto& [relation, tuple] : SuffixTuples()) {
    const RelationId r = *db.schema().RelationIdByName(relation);
    ASSERT_TRUE(db.Insert(r, std::move(tuple)).ok());
    streamed.ApplyInsert(db, TupleId(r, db.relation(r).num_tuples() - 1));
  }
  ConcurrentTermIndex rebuilt(TermIndex::Build(db, options.index), options);

  // Logical equality holds before compaction (delta still unfolded)...
  ASSERT_EQ(streamed.AllTerms(), rebuilt.AllTerms());
  ASSERT_EQ(streamed.num_terms(), rebuilt.num_terms());
  EXPECT_EQ(streamed.total_tuples(), rebuilt.total_tuples());
  {
    const IndexSnapshot s = streamed.Snapshot();
    const IndexSnapshot r = rebuilt.Snapshot();
    for (const std::string& term : rebuilt.AllTerms()) {
      EXPECT_EQ(s.TuplesFor(term), r.TuplesFor(term)) << term;
      EXPECT_EQ(s.DocumentFrequency(term), r.DocumentFrequency(term))
          << term;
    }
  }

  // ...and after folding every delta the physical representation matches
  // the from-scratch build too.
  for (const std::string& term : streamed.AllTerms()) {
    streamed.CompactTerm(term);
  }
  EXPECT_EQ(streamed.delta_bytes(), 0u);
  EXPECT_EQ(streamed.PostingMemoryBytes(), rebuilt.PostingMemoryBytes());
  {
    const IndexSnapshot s = streamed.Snapshot();
    const IndexSnapshot r = rebuilt.Snapshot();
    for (const std::string& term : rebuilt.AllTerms()) {
      EXPECT_EQ(s.TuplesFor(term), r.TuplesFor(term)) << term;
      EXPECT_EQ(s.DocumentFrequency(term), r.DocumentFrequency(term))
          << term;
    }
  }
  streamed.DrainGarbage();
}

TEST(LiveIndexDifferentialTest, ConcurrentFromEmptyEqualsRebuild) {
  // Stream the entire database into an empty live index; compare against
  // one seeded from the full offline build.
  LiveIndexOptions options;
  const Database db = testing::MakeMiniImdb();
  ConcurrentTermIndex streamed(options);
  for (RelationId r = 0; r < db.num_relations(); ++r) {
    for (size_t row = 0; row < db.relation(r).num_tuples(); ++row) {
      streamed.ApplyInsert(db, TupleId(r, row));
    }
  }
  ConcurrentTermIndex rebuilt(TermIndex::Build(db, options.index), options);
  ASSERT_EQ(streamed.AllTerms(), rebuilt.AllTerms());
  EXPECT_EQ(streamed.total_tuples(), rebuilt.total_tuples());
  const IndexSnapshot s = streamed.Snapshot();
  const IndexSnapshot r = rebuilt.Snapshot();
  for (const std::string& term : rebuilt.AllTerms()) {
    EXPECT_EQ(s.TuplesFor(term), r.TuplesFor(term)) << term;
    EXPECT_EQ(s.DocumentFrequency(term), r.DocumentFrequency(term)) << term;
  }
  for (const std::string& term : streamed.AllTerms()) {
    streamed.CompactTerm(term);
  }
  EXPECT_EQ(streamed.PostingMemoryBytes(), rebuilt.PostingMemoryBytes());
}

}  // namespace
}  // namespace matcn::liveindex
