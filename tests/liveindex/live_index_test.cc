// ConcurrentTermIndex + IndexWriter unit tests: seed parity, online
// visibility, COW/compaction behavior, and counters.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "fixtures/imdb_fixture.h"
#include "indexing/term_index.h"
#include "liveindex/concurrent_term_index.h"
#include "liveindex/index_writer.h"

namespace matcn::liveindex {
namespace {

LiveIndexOptions InlineOptions(size_t compact_threshold = 64) {
  LiveIndexOptions options;
  options.compact_threshold = compact_threshold;
  return options;
}

IndexWriterOptions InlineWriter() {
  IndexWriterOptions options;
  options.background_compaction = false;
  return options;
}

class LiveIndexTest : public ::testing::Test {
 protected:
  LiveIndexTest() : db_(testing::MakeMiniImdb()) {}

  TupleId Append(const std::string& relation, Tuple tuple) {
    const RelationId r = *db_.schema().RelationIdByName(relation);
    EXPECT_TRUE(db_.Insert(r, std::move(tuple)).ok());
    return TupleId(r, db_.relation(r).num_tuples() - 1);
  }

  Database db_;
};

TEST_F(LiveIndexTest, SeededIndexMatchesOfflineIndex) {
  const TermIndex seed = TermIndex::Build(db_);
  ConcurrentTermIndex live(seed);
  EXPECT_EQ(live.num_terms(), seed.num_terms());
  EXPECT_EQ(live.total_tuples(), seed.total_tuples());
  EXPECT_EQ(live.AllTerms(), seed.AllTerms());
  const IndexSnapshot snapshot = live.Snapshot();
  for (const std::string& term : seed.AllTerms()) {
    EXPECT_EQ(snapshot.TuplesFor(term), seed.TuplesFor(term)) << term;
    EXPECT_EQ(snapshot.DocumentFrequency(term), seed.DocumentFrequency(term))
        << term;
  }
  EXPECT_TRUE(snapshot.TuplesFor("no-such-term").empty());
  EXPECT_EQ(snapshot.DocumentFrequency("no-such-term"), 0u);
}

TEST_F(LiveIndexTest, ApplyInsertMakesNewTermVisibleAndBumpsVersion) {
  ConcurrentTermIndex live(TermIndex::Build(db_));
  const uint64_t v0 = live.version();
  const TupleId added =
      Append("PER", {Value(int64_t{5}), Value("Viola Davis")});
  const std::vector<std::string> touched = live.ApplyInsert(db_, added);
  EXPECT_EQ(live.version(), v0 + 1);
  EXPECT_EQ(touched.size(), 2u);  // "viola", "davis"
  const IndexSnapshot snapshot = live.Snapshot();
  EXPECT_EQ(snapshot.TuplesFor("viola"), std::vector<TupleId>{added});
  EXPECT_EQ(snapshot.DocumentFrequency("viola"), 1u);
}

TEST_F(LiveIndexTest, SnapshotTakenBeforeInsertStaysReadable) {
  ConcurrentTermIndex live(TermIndex::Build(db_));
  const IndexSnapshot before = live.Snapshot();
  const uint64_t version_before = before.version();
  const TupleId added =
      Append("PER", {Value(int64_t{5}), Value("Denzel Whitaker")});
  live.ApplyInsert(db_, added);
  // The old snapshot stays memory-safe (its epoch pins retired entries);
  // version() is a floor, so reads may reflect the newer state.
  const std::vector<TupleId> tuples = before.TuplesFor("denzel");
  EXPECT_GE(tuples.size(), 3u);
  EXPECT_EQ(before.version(), version_before);
}

TEST_F(LiveIndexTest, RepeatedTokenBumpsDocFreqOnce) {
  ConcurrentTermIndex live(TermIndex::Build(db_));
  const uint64_t df_before = live.Snapshot().DocumentFrequency("gangster");
  const TupleId added =
      Append("MOV", {Value(int64_t{4}),
                     Value("gangster gangster gangster"),
                     Value(int64_t{2020})});
  live.ApplyInsert(db_, added);
  EXPECT_EQ(live.Snapshot().DocumentFrequency("gangster"), df_before + 1);
}

TEST_F(LiveIndexTest, StopwordsAreSkipped) {
  ConcurrentTermIndex live(TermIndex::Build(db_));
  const TupleId added =
      Append("PER", {Value(int64_t{5}), Value("the nameless one")});
  const std::vector<std::string> touched = live.ApplyInsert(db_, added);
  for (const std::string& term : touched) EXPECT_NE(term, "the");
  EXPECT_EQ(live.Snapshot().DocumentFrequency("the"), 0u);
  EXPECT_EQ(live.Snapshot().DocumentFrequency("nameless"), 1u);
}

TEST_F(LiveIndexTest, CompactTermFoldsDeltaWithoutChangingReads) {
  ConcurrentTermIndex live(TermIndex::Build(db_), InlineOptions());
  const TupleId a = Append("PER", {Value(int64_t{5}), Value("Denzel One")});
  const TupleId b = Append("PER", {Value(int64_t{6}), Value("Denzel Two")});
  live.ApplyInsert(db_, a);
  live.ApplyInsert(db_, b);
  const std::vector<TupleId> before = live.Snapshot().TuplesFor("denzel");
  const uint64_t df = live.Snapshot().DocumentFrequency("denzel");
  EXPECT_GT(live.delta_bytes(), 0u);

  EXPECT_TRUE(live.CompactTerm("denzel"));
  EXPECT_EQ(live.compactions(), 1u);
  EXPECT_EQ(live.Snapshot().TuplesFor("denzel"), before);
  EXPECT_EQ(live.Snapshot().DocumentFrequency("denzel"), df);
  // Nothing left to fold.
  EXPECT_FALSE(live.CompactTerm("denzel"));
  EXPECT_FALSE(live.CompactTerm("no-such-term"));
  live.DrainGarbage();
}

TEST_F(LiveIndexTest, CrossingCompactThresholdQueuesCandidate) {
  ConcurrentTermIndex live(TermIndex::Build(db_),
                           InlineOptions(/*compact_threshold=*/2));
  live.ApplyInsert(db_, Append("PER", {Value(int64_t{5}), Value("Zed A")}));
  EXPECT_TRUE(live.TakeCompactionCandidates().empty());
  live.ApplyInsert(db_, Append("PER", {Value(int64_t{6}), Value("Zed B")}));
  const std::vector<std::string> candidates = live.TakeCompactionCandidates();
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0], "zed");
  // Drained: a second take is empty.
  EXPECT_TRUE(live.TakeCompactionCandidates().empty());
}

TEST_F(LiveIndexTest, GrowthKeepsAllTermsReachable) {
  // Start from an empty index with tiny shards so table growth happens
  // many times, exercising table swap + EBR retirement.
  LiveIndexOptions options;
  options.num_shards = 2;
  ConcurrentTermIndex live(options);
  Database db;  // fresh db so ids line up with what we insert
  ASSERT_TRUE(db.CreateRelation(
                    RelationSchema("T", {{"id", ValueType::kInt, true, false},
                                         {"text", ValueType::kText, false,
                                          true}}))
                  .ok());
  for (int64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        db.Insert("T", {Value(i), Value("uniqterm" + std::to_string(i))})
            .ok());
    live.ApplyInsert(db, TupleId(0, static_cast<uint64_t>(i)));
  }
  EXPECT_EQ(live.num_terms(), 200u);
  const IndexSnapshot snapshot = live.Snapshot();
  for (int64_t i = 0; i < 200; ++i) {
    const std::string term = "uniqterm" + std::to_string(i);
    EXPECT_EQ(snapshot.DocumentFrequency(term), 1u) << term;
  }
  live.DrainGarbage();
}

TEST_F(LiveIndexTest, WriterInsertReturnsVersionAndId) {
  ConcurrentTermIndex live(TermIndex::Build(db_));
  IndexWriter writer(&db_, &live, InlineWriter());
  const uint64_t v0 = writer.version();
  Result<IndexWriter::InsertOutcome> outcome = writer.Insert(
      *db_.schema().RelationIdByName("PER"),
      {Value(int64_t{5}), Value("Viola Davis")});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->version, v0 + 1);
  EXPECT_EQ(outcome->id.relation(), *db_.schema().RelationIdByName("PER"));
  EXPECT_EQ(outcome->id.row(), db_.relation(outcome->id.relation())
                                       .num_tuples() -
                                   1);
  EXPECT_EQ(live.Snapshot().TuplesFor("viola"),
            std::vector<TupleId>{outcome->id});
}

TEST_F(LiveIndexTest, WriterInvalidationHookSeesTouchedTerms) {
  ConcurrentTermIndex live(TermIndex::Build(db_));
  IndexWriter writer(&db_, &live, InlineWriter());
  std::vector<std::string> seen;
  writer.set_invalidation_hook(
      [&seen](const std::vector<std::string>& terms) {
        seen.insert(seen.end(), terms.begin(), terms.end());
      });
  ASSERT_TRUE(writer
                  .Insert(*db_.schema().RelationIdByName("PER"),
                          {Value(int64_t{5}), Value("Viola Davis")})
                  .ok());
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_NE(std::find(seen.begin(), seen.end(), "viola"), seen.end());
  EXPECT_NE(std::find(seen.begin(), seen.end(), "davis"), seen.end());
}

TEST_F(LiveIndexTest, WriterBatchBumpsVersionPerTupleOneHookCall) {
  ConcurrentTermIndex live(TermIndex::Build(db_));
  IndexWriter writer(&db_, &live, InlineWriter());
  int hook_calls = 0;
  writer.set_invalidation_hook(
      [&hook_calls](const std::vector<std::string>&) { ++hook_calls; });
  const uint64_t v0 = writer.version();
  std::vector<Tuple> batch;
  batch.push_back({Value(int64_t{5}), Value("Viola Davis")});
  batch.push_back({Value(int64_t{6}), Value("Forest Whitaker")});
  TupleId last;
  Result<uint64_t> version = writer.InsertBatch(
      *db_.schema().RelationIdByName("PER"), std::move(batch), &last);
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(*version, v0 + 2);
  EXPECT_EQ(hook_calls, 1);
  EXPECT_EQ(last.row(), db_.relation(last.relation()).num_tuples() - 1);
}

TEST_F(LiveIndexTest, BackgroundCompactionFoldsAfterFlush) {
  ConcurrentTermIndex live(TermIndex::Build(db_),
                           InlineOptions(/*compact_threshold=*/2));
  IndexWriter writer(&db_, &live);  // background compaction on
  const RelationId per = *db_.schema().RelationIdByName("PER");
  for (int64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        writer.Insert(per, {Value(100 + i), Value("Freshterm Person")}).ok());
  }
  writer.Flush();
  EXPECT_GE(live.compactions(), 1u);
  EXPECT_EQ(live.Snapshot().DocumentFrequency("freshterm"), 4u);
}

}  // namespace
}  // namespace matcn::liveindex
