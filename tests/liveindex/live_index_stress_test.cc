// Concurrency stress for the live index: many readers running TuplesFor /
// DocumentFrequency while a single writer streams inserts and compaction
// folds deltas. Run under TSAN in CI; the assertions here also verify the
// core correctness claim — an epoch-pinned read observed at version V is
// identical to a from-scratch offline rebuild of the first V inserts.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "fixtures/imdb_fixture.h"
#include "indexing/term_index.h"
#include "liveindex/concurrent_term_index.h"
#include "liveindex/index_writer.h"

namespace matcn::liveindex {
namespace {

// A deterministic stream of PER tuples: person i gets one fresh term and
// one of 8 shared "hot" terms, so inserts both create nodes and extend
// existing COW entries.
Tuple StreamTuple(int64_t i) {
  return {Value(int64_t{1000} + i),
          Value("fresh" + std::to_string(i) + " hot" + std::to_string(i % 8))};
}

TEST(LiveIndexStressTest, ReadersNeverBlockWhileWriterStreams) {
  Database db = testing::MakeMiniImdb();
  LiveIndexOptions options;
  options.compact_threshold = 4;  // force frequent compaction
  options.num_shards = 4;         // force table growth + shard contention
  ConcurrentTermIndex live(TermIndex::Build(db, options.index), options);
  IndexWriter writer(&db, &live);  // background compaction thread on

  constexpr int kInserts = 300;
  constexpr int kReaders = 4;
  const RelationId per = *db.schema().RelationIdByName("PER");

  std::atomic<bool> done{false};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&live, &done, &reads, t] {
      uint64_t local = 0;
      uint64_t last_version = 0;
      while (!done.load(std::memory_order_acquire)) {
        const IndexSnapshot snapshot = live.Snapshot();
        // Versions are monotone across snapshots.
        EXPECT_GE(snapshot.version(), last_version);
        last_version = snapshot.version();
        // Hot terms accumulate monotonically; every id must be unique and
        // sorted (the TuplesFor contract) no matter what the writer and
        // compactor are doing.
        const std::string hot = "hot" + std::to_string(t % 8);
        const std::vector<TupleId> ids = snapshot.TuplesFor(hot);
        for (size_t k = 1; k < ids.size(); ++k) {
          EXPECT_TRUE(ids[k - 1] < ids[k]);
        }
        // df is read after the posting list and the term only grows, so
        // it can never be smaller.
        EXPECT_GE(snapshot.DocumentFrequency(hot), ids.size());
        // Seed terms never disappear.
        EXPECT_GE(snapshot.TuplesFor("denzel").size(), 3u);
        ++local;
      }
      reads.fetch_add(local);
    });
  }

  for (int64_t i = 0; i < kInserts; ++i) {
    ASSERT_TRUE(writer.Insert(per, StreamTuple(i)).ok());
  }
  writer.Flush();
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(live.version(), static_cast<uint64_t>(kInserts));
  EXPECT_GE(live.compactions(), 1u);

  // Final state equals an offline rebuild of the same database.
  const TermIndex rebuilt = TermIndex::Build(db, options.index);
  const IndexSnapshot snapshot = live.Snapshot();
  ASSERT_EQ(live.AllTerms(), rebuilt.AllTerms());
  for (const std::string& term : rebuilt.AllTerms()) {
    EXPECT_EQ(snapshot.TuplesFor(term), rebuilt.TuplesFor(term)) << term;
    EXPECT_EQ(snapshot.DocumentFrequency(term),
              rebuilt.DocumentFrequency(term))
        << term;
  }
}

TEST(LiveIndexStressTest, EpochPinnedReadsMatchRebuildAtSameVersion) {
  // Reader thread repeatedly pins a snapshot and records (version,
  // df(hot0)) pairs; afterwards each recorded pair must match a
  // from-scratch rebuild of exactly that prefix. df("hot0") at version V
  // is the count of stream indexes i < V with i % 8 == 0, plus the seed's
  // zero occurrences — fully determined by V, so any mismatch means a
  // torn or stale-beyond-floor read.
  Database db = testing::MakeMiniImdb();
  LiveIndexOptions options;
  options.compact_threshold = 3;
  ConcurrentTermIndex live(TermIndex::Build(db, options.index), options);
  IndexWriter writer(&db, &live);

  constexpr int kInserts = 200;
  const RelationId per = *db.schema().RelationIdByName("PER");

  std::atomic<bool> done{false};
  struct Observation {
    uint64_t version;
    uint64_t df_hot0;
    size_t tuples_hot0;
  };
  std::vector<Observation> observations;
  std::thread reader([&live, &done, &observations] {
    while (!done.load(std::memory_order_acquire)) {
      const IndexSnapshot snapshot = live.Snapshot();
      // Reads through the snapshot reflect at least snapshot.version()
      // (pin-time floor) and at most the final quiesced state.
      const uint64_t floor_version = snapshot.version();
      const uint64_t df = snapshot.DocumentFrequency("hot0");
      const size_t n = snapshot.TuplesFor("hot0").size();
      observations.push_back({floor_version, df, n});
    }
  });

  for (int64_t i = 0; i < kInserts; ++i) {
    ASSERT_TRUE(writer.Insert(per, StreamTuple(i)).ok());
  }
  writer.Flush();
  done.store(true, std::memory_order_release);
  reader.join();

  // df("hot0") after V inserts = ceil(V / 8) (stream indexes 0, 8, 16...).
  auto expected_at = [](uint64_t version) {
    return (version + 7) / 8;
  };
  for (const Observation& o : observations) {
    // TuplesFor ran after DocumentFrequency; the term only grows, so the
    // later read can only be >= the earlier one.
    EXPECT_GE(o.tuples_hot0, o.df_hot0);
    // Each read reflects at least the pinned version (floor semantics)
    // and at most the final state.
    EXPECT_GE(o.df_hot0, expected_at(o.version));
    EXPECT_LE(o.tuples_hot0, expected_at(kInserts));
  }

  // Spot-check exact prefix equality: rebuild the first V tuples from
  // scratch and compare against the live index observed at its quiesced
  // final version.
  const TermIndex rebuilt = TermIndex::Build(db, options.index);
  const IndexSnapshot snapshot = live.Snapshot();
  EXPECT_EQ(snapshot.version(), static_cast<uint64_t>(kInserts));
  for (const std::string& term : rebuilt.AllTerms()) {
    EXPECT_EQ(snapshot.TuplesFor(term), rebuilt.TuplesFor(term)) << term;
  }
}

TEST(LiveIndexStressTest, ConcurrentReadersDuringExplicitCompaction) {
  // Tight loop alternating insert and compaction on the same hot term
  // while readers hammer it — maximizes COW publish/retire churn.
  Database db = testing::MakeMiniImdb();
  LiveIndexOptions options;
  options.compact_threshold = 1000;  // manual compaction only
  ConcurrentTermIndex live(TermIndex::Build(db, options.index), options);

  constexpr int kRounds = 100;
  const RelationId per = *db.schema().RelationIdByName("PER");

  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&live, &done] {
      while (!done.load(std::memory_order_acquire)) {
        const IndexSnapshot snapshot = live.Snapshot();
        const std::vector<TupleId> ids = snapshot.TuplesFor("churn");
        EXPECT_GE(snapshot.DocumentFrequency("churn"), ids.size());
        for (size_t k = 1; k < ids.size(); ++k) {
          EXPECT_TRUE(ids[k - 1] < ids[k]);
        }
      }
    });
  }

  for (int64_t i = 0; i < kRounds; ++i) {
    ASSERT_TRUE(
        db.Insert(per, {Value(int64_t{2000} + i), Value("churn")}).ok());
    live.ApplyInsert(db, TupleId(per, db.relation(per).num_tuples() - 1));
    if (i % 2 == 1) live.CompactTerm("churn");
    live.epoch_manager().BumpEpoch();
    live.epoch_manager().Collect();
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(live.Snapshot().DocumentFrequency("churn"),
            static_cast<uint64_t>(kRounds));
  live.DrainGarbage();
}

}  // namespace
}  // namespace matcn::liveindex
