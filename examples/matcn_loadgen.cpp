// Saturation load harness for the network serving stack: a deterministic
// workload engine (Zipfian keyword popularity sampled from the catalog's
// term index, mixed query shapes, a configurable read/insert ratio that
// drives the live-index INSERT path, multi-tenant interleaving) feeds N
// connections through net::Client in open-loop (Poisson/uniform arrival
// at a target QPS) or closed-loop mode, sweeps QPS until the server
// saturates, and writes the BENCH_serve.json trajectory future PRs must
// not regress.
//
// Latency is coordinated-omission-safe: every sample is measured from
// the operation's *intended* start per the arrival schedule, so a
// stalled server eats the stall in every sample scheduled inside it.
// Same-seed reruns produce byte-identical operation streams (each phase
// reports its stream fingerprint as `ops_hash`); latencies of course
// differ run to run.
//
//   $ ./matcn_loadgen [dataset] [scale] [flags]
//
// Flags:
//   --connect H:P       drive an external matcn_server (it must serve the
//                       same generator dataset; dataset flags choose the
//                       catalog queries are sampled from)
//   --connections N     client connections = worker threads  (default 8)
//   --arrival K         poisson|uniform|closed              (default poisson)
//   --qps-list L        comma-separated offered-QPS phases; empty = auto
//                       geometric sweep to the saturation knee
//   --qps-start N       auto-sweep starting QPS              (default 64)
//   --qps-factor F      auto-sweep growth factor             (default 2)
//   --max-phases N      auto-sweep phase cap                 (default 8)
//   --duration-s F      measured seconds per phase           (default 5)
//   --warmup-s F        excluded warmup seconds per phase    (default 1)
//   --requests N        ops per phase in closed mode         (default 2000)
//   --read-fraction F   query fraction; rest are INSERTs     (default 0.95)
//   --theta F           Zipfian skew in [0,1)                (default 0.99)
//   --no-scramble       align popularity rank with document-frequency rank
//   --min-keywords N / --max-keywords N   query shape        (default 1 / 3)
//   --value-fraction F / --schema-fraction F   term-class mix (0.7 / 0.1;
//                       the remainder are mixed-intent queries)
//   --tenants N         interleaved tenant catalogs          (default 1)
//   --insert-relation R INSERT target; empty = auto-pick     (default "")
//   --seed N            workload seed                        (default 11)
//   --deadline-ms/--tmax/--max-cns   per-request query params (0 = server)
//   --threads/--cn-threads/--queue/--cache-mb/--io-ms/--compact-threshold
//                       in-process server knobs (ignored with --connect)
//   --shards N          in-process sharded deployment: N shard workers
//                       behind a scatter/gather coordinator (0 = unsharded;
//                       ignored with --connect)
//   --knee-fraction F   saturated when achieved < F * offered (default 0.95)
//   --knee-reject F     saturated when reject rate > F        (default 0.05)
//   --pin-cpus LIST     pin worker i to LIST[i % n] (e.g. "0,2,4")
//   --out PATH          trajectory file            (default BENCH_serve.json)
//   --smoke             short two-phase open-loop run with inserts; exits
//                       nonzero unless the emitted JSON validates and at
//                       least one query completed
//
// The process always exits nonzero if the emitted BENCH_serve.json fails
// schema validation or no phase completed a single query.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include "bench/load_util.h"
#include "common/flags.h"
#include "common/strings.h"
#include "common/timer.h"
#include "graph/schema_graph.h"
#include "indexing/term_index.h"
#include "liveindex/concurrent_term_index.h"
#include "liveindex/index_writer.h"
#include "net/client.h"
#include "net/server.h"
#include "service/query_service.h"
#include "shard/coordinator.h"
#include "shard/local_cluster.h"
#include "shard/shard_map.h"
#include "workload/arrival.h"
#include "workload/recorder.h"
#include "workload/serve_report.h"
#include "workload/sweep.h"
#include "workload/workload_engine.h"

using namespace matcn;

namespace {

struct LoadgenConfig {
  unsigned connections = 8;
  workload::ArrivalKind arrival = workload::ArrivalKind::kOpenPoisson;
  double duration_s = 5;
  double warmup_s = 1;
  size_t closed_requests = 2000;
  uint32_t deadline_ms = 0;
  uint16_t t_max = 0;
  uint32_t max_cns = 0;
  double knee_fraction = 0.95;
  double knee_reject = 0.05;
  std::vector<int> pin_cpus;
};

void MaybePin(unsigned worker, const std::vector<int>& cpus) {
#ifdef __linux__
  if (cpus.empty()) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpus[worker % cpus.size()], &set);
  pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)worker;
  (void)cpus;
#endif
}

uint64_t FetchIndexVersion(const std::string& host, uint16_t port) {
  Result<net::Client> client = net::Client::Connect(host, port);
  if (!client.ok()) return 0;
  Result<net::StatsPayload> stats = client->Stats();
  return stats.ok() ? stats->index_version : 0;
}

/// Runs one phase: `ops` are dealt round-robin across `connections`
/// workers, paced by `offsets` (all-zero = closed loop). Returns false
/// only if no worker managed to connect.
bool RunPhase(const std::string& host, uint16_t port,
              const LoadgenConfig& config, const std::vector<workload::Op>& ops,
              const std::vector<int64_t>& offsets, const Stopwatch& clock,
              workload::LoadRecorder* recorder, double* wall_seconds,
              double* schedule_seconds) {
  const bool open_loop = config.arrival != workload::ArrivalKind::kClosed;
  const unsigned W = config.connections;

  // Connect everyone before the schedule starts ticking.
  std::vector<net::Client> clients;
  clients.reserve(W);
  for (unsigned w = 0; w < W; ++w) {
    Result<net::Client> client = net::Client::Connect(host, port);
    if (!client.ok()) {
      std::cerr << "connect failed: " << client.status().ToString() << "\n";
      if (clients.empty() && w + 1 == W) return false;
      break;
    }
    clients.push_back(std::move(client).value());
  }
  if (clients.empty()) return false;
  const unsigned workers = static_cast<unsigned>(clients.size());

  // Schedule epoch: a small runway so every worker is in position when
  // the first arrival is due.
  const int64_t t0_us = clock.ElapsedMicros() + 20'000;
  recorder->SetMeasureStartUs(
      t0_us + static_cast<int64_t>(config.warmup_s * 1e6));

  std::atomic<uint64_t> hard_disconnects{0};
  auto worker_loop = [&](unsigned w, net::Client client) {
    MaybePin(w, config.pin_cpus);
    net::Client::QueryParams params;
    params.deadline_ms = config.deadline_ms;
    params.t_max = config.t_max;
    params.max_cns = config.max_cns;
    int64_t closed_anchor = t0_us;
    for (size_t j = w; j < ops.size(); j += workers) {
      int64_t intended;
      if (open_loop) {
        // Open loop: the op is due at its scheduled instant whether or
        // not this connection is free — falling behind shows up as
        // queueing latency, never as omitted samples.
        intended = t0_us + offsets[j];
        const int64_t now = clock.ElapsedMicros();
        if (now < intended) {
          std::this_thread::sleep_for(
              std::chrono::microseconds(intended - now));
        }
      } else {
        // Closed loop: intended = the instant this connection became
        // free (completion of its previous op, including any reconnect
        // cost), so generator overhead never hides in the gaps.
        intended = std::max(closed_anchor, clock.ElapsedMicros());
      }
      const workload::Op& op = ops[j];
      if (op.kind == workload::Op::Kind::kQuery) {
        Result<net::Client::QueryResult> response =
            client.Query(op.keywords, params);
        const int64_t end = clock.ElapsedMicros();
        if (response.ok()) {
          recorder->RecordQuery(workload::OpOutcome::kOk, intended, end,
                                response->cache_hit, response->degraded);
        } else {
          recorder->RecordQuery(
              bench::ClassifyFailure(response.status().code()), intended,
              end, false, false);
        }
      } else {
        std::vector<net::WireValue> values;
        values.reserve(op.values.size());
        for (const workload::OpValue& v : op.values) {
          net::WireValue wv;
          wv.tag = v.is_int ? 0 : 1;
          wv.int_value = v.int_value;
          wv.text_value = v.text;
          values.push_back(std::move(wv));
        }
        Result<net::InsertResult> inserted =
            client.Insert(op.relation, std::move(values));
        const int64_t end = clock.ElapsedMicros();
        recorder->RecordInsert(inserted.ok(), intended, end);
      }
      closed_anchor = clock.ElapsedMicros();
      if (!client.connected()) {
        Result<net::Client> again = net::Client::Connect(host, port);
        if (!again.ok()) {
          hard_disconnects.fetch_add(1);
          return;
        }
        client = std::move(again).value();
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    threads.emplace_back(worker_loop, w, std::move(clients[w]));
  }
  for (std::thread& t : threads) t.join();
  if (hard_disconnects.load() > 0) {
    std::cerr << "warning: " << hard_disconnects.load()
              << " workers lost their connection and could not reconnect\n";
  }
  // Two windows. Wall: measure start to the last completion — the
  // denominator for achieved throughput, so a server that falls behind
  // schedule (drain overrun) shows reduced achieved QPS. Schedule: the
  // realized arrival span — the denominator for the *offered* rate a
  // Poisson draw actually produced, which can differ from the nominal
  // target by several percent; comparing achieved against the realized
  // rate keeps schedule variance from tripping the knee spuriously.
  const int64_t wall_end = clock.ElapsedMicros();
  const int64_t schedule_end =
      open_loop && !offsets.empty() ? t0_us + offsets.back() : wall_end;
  *wall_seconds = std::max(
      1e-6,
      static_cast<double>(wall_end - recorder->measure_start_us()) / 1e6);
  *schedule_seconds = std::max(
      1e-6, static_cast<double>(schedule_end - recorder->measure_start_us()) /
                1e6);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags(argc, argv);
  std::string dataset = flags.positional().empty()
                            ? "imdb"
                            : ToLower(flags.positional()[0]);
  double scale = flags.positional().size() > 1
                     ? std::atof(flags.positional()[1].c_str())
                     : 0.1;
  const bool smoke = flags.Has("smoke");
  if (smoke && flags.positional().empty()) scale = 0.05;

  const std::string connect = flags.GetString("connect", "");
  LoadgenConfig config;
  config.connections = static_cast<unsigned>(
      flags.GetInt("connections", smoke ? 2 : 8));
  const std::string arrival_name = flags.GetString("arrival", "poisson");
  if (!workload::ParseArrivalKind(arrival_name, &config.arrival)) {
    std::cerr << "bad --arrival '" << arrival_name
              << "' (poisson|uniform|closed)\n";
    return 2;
  }
  std::string qps_list = flags.GetString("qps-list", smoke ? "150,300" : "");
  const double qps_start = flags.GetDouble("qps-start", 64);
  const double qps_factor = flags.GetDouble("qps-factor", 2.0);
  const size_t max_phases =
      static_cast<size_t>(flags.GetInt("max-phases", 8));
  config.duration_s = flags.GetDouble("duration-s", smoke ? 0.8 : 5.0);
  config.warmup_s = flags.GetDouble("warmup-s", smoke ? 0.2 : 1.0);
  config.closed_requests =
      static_cast<size_t>(flags.GetInt("requests", 2000));
  config.deadline_ms =
      static_cast<uint32_t>(flags.GetInt("deadline-ms", 0));
  config.t_max = static_cast<uint16_t>(flags.GetInt("tmax", 0));
  config.max_cns = static_cast<uint32_t>(flags.GetInt("max-cns", 0));
  config.knee_fraction = flags.GetDouble("knee-fraction", 0.95);
  config.knee_reject = flags.GetDouble("knee-reject", 0.05);
  for (const std::string& part :
       Split(flags.GetString("pin-cpus", ""), ",")) {
    const std::string cpu = std::string(Trim(part));
    if (!cpu.empty()) config.pin_cpus.push_back(std::atoi(cpu.c_str()));
  }

  workload::WorkloadSpec spec;
  spec.read_fraction = flags.GetDouble("read-fraction", 0.95);
  spec.zipf_theta = flags.GetDouble("theta", 0.99);
  spec.scramble = !flags.Has("no-scramble");
  spec.min_keywords = static_cast<size_t>(flags.GetInt("min-keywords", 1));
  spec.max_keywords = static_cast<size_t>(flags.GetInt("max-keywords", 3));
  spec.value_fraction = flags.GetDouble("value-fraction", 0.7);
  spec.schema_fraction = flags.GetDouble("schema-fraction", 0.1);
  spec.tenants = static_cast<uint32_t>(flags.GetInt("tenants", 1));
  spec.insert_relation = flags.GetString("insert-relation", "");
  spec.seed = static_cast<uint64_t>(flags.GetInt("seed", 11));

  const unsigned server_threads =
      static_cast<unsigned>(flags.GetInt("threads", smoke ? 2 : 0));
  const unsigned cn_threads =
      static_cast<unsigned>(flags.GetInt("cn-threads", 1));
  const size_t queue = static_cast<size_t>(flags.GetInt("queue", 256));
  const size_t cache_bytes =
      static_cast<size_t>(flags.GetInt("cache-mb", 64)) << 20;
  const int64_t io_ms = flags.GetInt("io-ms", 0);
  const int64_t compact_threshold = flags.GetInt("compact-threshold", 64);
  const int64_t num_shards = flags.GetInt("shards", 0);
  const std::string out_path = flags.GetString("out", "BENCH_serve.json");

  for (const std::string& error : flags.errors()) {
    std::cerr << "flag error: " << error << "\n";
    return 2;
  }
  for (const std::string& unknown : flags.UnknownFlags()) {
    std::cerr << "unknown flag --" << unknown << "\n";
    return 2;
  }

  // Workload catalog. In --connect mode the target must serve the same
  // generator dataset so sampled terms resolve to real postings.
  bool dataset_ok = false;
  Database db = bench::MakeNamedDataset(dataset, scale, &dataset_ok);
  if (!dataset_ok) {
    std::cerr << "unknown dataset: " << dataset << " ("
              << bench::DatasetNames() << ")\n";
    return 2;
  }
  const SchemaGraph schema_graph = SchemaGraph::Build(db.schema());
  TermIndex offline_index = TermIndex::Build(db);
  Result<workload::WorkloadEngine> probe =
      workload::WorkloadEngine::Build(db.schema(), offline_index, spec);
  if (!probe.ok()) {
    std::cerr << "workload spec rejected: " << probe.status().ToString()
              << "\n";
    return 2;
  }

  // Target server: external or the full in-process live-index stack
  // (ConcurrentTermIndex + IndexWriter, same wiring as matcn_server) so
  // the insert fraction exercises the real online-update path.
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::unique_ptr<liveindex::ConcurrentTermIndex> live_index;
  std::unique_ptr<liveindex::IndexWriter> writer;
  // Sharded deployment pieces; declared before service/server so
  // destruction runs server -> service -> router -> coordinator ->
  // cluster (provider outlives service, sink outlives server).
  std::unique_ptr<shard::ShardMap> shard_map;
  std::unique_ptr<shard::LocalShardCluster> cluster;
  std::unique_ptr<shard::Coordinator> coordinator;
  std::unique_ptr<shard::ShardInsertRouter> router;
  std::unique_ptr<QueryService> service;
  std::unique_ptr<net::Server> server;
  if (!connect.empty()) {
    const std::vector<std::string> parts = Split(connect, ":");
    if (parts.size() != 2) {
      std::cerr << "--connect wants host:port, got " << connect << "\n";
      return 2;
    }
    host = parts[0];
    port = static_cast<uint16_t>(std::atoi(parts[1].c_str()));
  } else if (num_shards > 0) {
    // Sharded in-process deployment: N shard workers behind a
    // coordinator, same object graph as `matcn_server --shards N`, so
    // the sweep measures the scatter/gather path end to end.
    shard::ShardMapOptions map_options;
    map_options.num_shards = static_cast<uint32_t>(num_shards);
    shard_map = std::make_unique<shard::ShardMap>(
        shard::ShardMap::Build(db.schema(), map_options));
    shard::LocalShardClusterOptions cluster_options;
    cluster_options.service.num_threads = server_threads;
    cluster_options.service.gen.num_threads = cn_threads;
    cluster_options.service.max_queue = queue;
    cluster_options.service.cache_bytes = cache_bytes;
    cluster_options.live.compact_threshold =
        static_cast<size_t>(std::max<int64_t>(1, compact_threshold));
    if (io_ms > 0) {
      cluster_options.pre_execute_hook_factory = [io_ms](uint32_t) {
        return [io_ms] {
          std::this_thread::sleep_for(std::chrono::milliseconds(io_ms));
        };
      };
    }
    cluster = std::make_unique<shard::LocalShardCluster>(
        [dataset, scale] {
          bool ok = false;
          return bench::MakeNamedDataset(dataset, scale, &ok);
        },
        shard_map.get(), cluster_options);
    if (Status started = cluster->Start(); !started.ok()) {
      std::cerr << "shard cluster start failed: " << started.ToString()
                << "\n";
      return 1;
    }
    coordinator = std::make_unique<shard::Coordinator>(shard_map.get(),
                                                       cluster->Endpoints());
    if (Status connected = coordinator->Connect(); !connected.ok()) {
      std::cerr << "coordinator connect failed: " << connected.ToString()
                << "\n";
      return 1;
    }
    QueryServiceOptions service_options;
    service_options.num_threads = server_threads;
    service_options.gen.num_threads = cn_threads;
    service_options.max_queue = queue;
    service_options.cache_bytes = cache_bytes;
    service = std::make_unique<QueryService>(&schema_graph,
                                             coordinator.get(),
                                             service_options);
    router = std::make_unique<shard::ShardInsertRouter>(
        shard_map.get(), &db.schema(), coordinator.get());
    router->set_invalidation_hook(
        [svc = service.get()](const std::vector<std::string>& terms) {
          svc->InvalidateTerms(terms);
        });
    net::ServerOptions server_options;
    server_options.port = 0;
    server = std::make_unique<net::Server>(service.get(), &db.schema(),
                                           router.get(), server_options);
    if (Status started = server->Start(); !started.ok()) {
      std::cerr << "in-process server start failed: " << started.ToString()
                << "\n";
      return 1;
    }
    port = server->port();
  } else {
    liveindex::LiveIndexOptions live_options;
    live_options.compact_threshold =
        static_cast<size_t>(std::max<int64_t>(1, compact_threshold));
    live_index = std::make_unique<liveindex::ConcurrentTermIndex>(
        offline_index, live_options);
    writer = std::make_unique<liveindex::IndexWriter>(&db, live_index.get());
    QueryServiceOptions service_options;
    service_options.num_threads = server_threads;
    service_options.gen.num_threads = cn_threads;
    service_options.max_queue = queue;
    service_options.cache_bytes = cache_bytes;
    if (io_ms > 0) {
      service_options.pre_execute_hook = [io_ms] {
        std::this_thread::sleep_for(std::chrono::milliseconds(io_ms));
      };
    }
    service = std::make_unique<QueryService>(&schema_graph, live_index.get(),
                                             service_options);
    service->ConnectWriter(writer.get());
    net::ServerOptions server_options;
    server_options.port = 0;
    server = std::make_unique<net::Server>(service.get(), &db.schema(),
                                           writer.get(), server_options);
    if (Status started = server->Start(); !started.ok()) {
      std::cerr << "in-process server start failed: " << started.ToString()
                << "\n";
      return 1;
    }
    port = server->port();
  }

  // Phase plan: explicit QPS list, or geometric auto sweep to the knee.
  std::vector<double> phase_qps;
  const bool open_loop = config.arrival != workload::ArrivalKind::kClosed;
  if (open_loop) {
    if (!qps_list.empty()) {
      for (const std::string& part : Split(qps_list, ",")) {
        const double q = std::atof(std::string(Trim(part)).c_str());
        if (q > 0) phase_qps.push_back(q);
      }
    } else {
      double q = qps_start;
      for (size_t i = 0; i < max_phases; ++i, q *= qps_factor) {
        phase_qps.push_back(q);
      }
    }
    if (phase_qps.empty()) {
      std::cerr << "empty --qps-list\n";
      return 2;
    }
  } else {
    phase_qps.push_back(0);  // one unpaced closed-loop phase
  }
  const bool auto_sweep = open_loop && qps_list.empty();

  workload::ServeBenchReport report;
  report.dataset = dataset;
  report.scale = scale;
  report.seed = spec.seed;
  report.connections = config.connections;
  report.server_threads =
      service != nullptr ? service->Stats().num_threads : server_threads;
  report.read_fraction = spec.read_fraction;
  report.zipf_theta = spec.zipf_theta;
  report.scramble = spec.scramble;
  report.tenants = spec.tenants;

  std::cout << "matcn_loadgen — " << (connect.empty() ? "in-process " : "")
            << (cluster != nullptr
                    ? std::to_string(cluster->num_shards()) + "-shard "
                    : "")
            << "server at " << host << ":" << port << ", " << dataset
            << " scale " << scale << ", "
            << workload::ArrivalKindName(config.arrival) << " arrival, "
            << config.connections << " connections, read fraction "
            << spec.read_fraction << ", theta " << spec.zipf_theta
            << (spec.scramble ? " (scrambled)" : "") << ", " << spec.tenants
            << " tenant(s)\n";

  const Stopwatch clock;
  for (size_t phase_index = 0; phase_index < phase_qps.size();
       ++phase_index) {
    const double offered = phase_qps[phase_index];
    const size_t op_count =
        open_loop ? static_cast<size_t>(std::ceil(
                        offered * (config.warmup_s + config.duration_s)))
                  : config.closed_requests;
    if (op_count == 0) continue;

    // Each phase re-derives its engine from (seed, phase_index) so the
    // stream a phase emits depends only on the flags, never on how long
    // earlier phases took — same-seed reruns are byte-identical even
    // when the auto sweep stops at a different knee.
    // The catalog is always the *initial* offline index — sampling from
    // the live (mutating) index would make the stream depend on how many
    // inserts earlier phases landed.
    workload::WorkloadSpec phase_spec = spec;
    phase_spec.seed = spec.seed + 1000 * (phase_index + 1);
    Result<workload::WorkloadEngine> engine = workload::WorkloadEngine::Build(
        db.schema(), offline_index, phase_spec);
    if (!engine.ok()) {
      std::cerr << "engine build failed: " << engine.status().ToString()
                << "\n";
      return 1;
    }
    const std::vector<workload::Op> ops = engine->Generate(op_count);
    const std::vector<int64_t> offsets = workload::ArrivalOffsetsUs(
        config.arrival, offered, op_count, phase_spec.seed);

    workload::PhaseResult phase;
    phase.offered_qps = offered;
    phase.arrival = workload::ArrivalKindName(config.arrival);
    phase.ops_hash = workload::HashOps(ops);
    phase.index_version_start = FetchIndexVersion(host, port);

    workload::LoadRecorder recorder;
    double measured_seconds = 0;
    double schedule_seconds = 0;
    if (!RunPhase(host, port, config, ops, offsets, clock, &recorder,
                  &measured_seconds, &schedule_seconds)) {
      std::cerr << "phase " << phase_index << " could not connect\n";
      return 1;
    }
    phase.index_version_end = FetchIndexVersion(host, port);

    const workload::LoadSnapshot snap = recorder.Snapshot();
    phase.duration_s = measured_seconds;
    phase.completed = snap.ok;
    phase.rejected = snap.rejected;
    phase.deadline = snap.deadline;
    phase.errors = snap.errors;
    phase.achieved_qps =
        static_cast<double>(snap.ok + snap.inserts_ok) / measured_seconds;
    phase.p50_ms = snap.p50_ms;
    phase.p95_ms = snap.p95_ms;
    phase.p99_ms = snap.p99_ms;
    phase.p999_ms = snap.p999_ms;
    phase.max_ms = snap.max_ms;
    phase.cache_hit_rate =
        snap.ok > 0 ? static_cast<double>(snap.cache_hits) /
                          static_cast<double>(snap.ok)
                    : 0;
    phase.degraded_fraction =
        snap.ok > 0 ? static_cast<double>(snap.degraded) /
                          static_cast<double>(snap.ok)
                    : 0;
    phase.inserts = snap.inserts_ok;
    phase.insert_qps =
        static_cast<double>(snap.inserts_ok) / measured_seconds;
    phase.insert_p99_ms = snap.insert_p99_ms;
    // Knee criterion: achieved (wall clock, drain overrun included)
    // against the rate the realized schedule actually offered — the
    // Poisson draw can run several percent off the nominal target, and
    // judging against the nominal rate would saturate phases the server
    // handled fine. EvaluateKnee keeps every input in the same measured
    // window and never saturates on degenerate or closed-loop phases.
    const workload::KneeVerdict knee = workload::EvaluateKnee(
        workload::KneeInputs{.open_loop = open_loop,
                             .issued = snap.issued(),
                             .completed_ok = snap.ok + snap.inserts_ok,
                             .queries = snap.queries(),
                             .rejected = snap.rejected,
                             .wall_seconds = measured_seconds,
                             .schedule_seconds = schedule_seconds},
        workload::KneeConfig{.knee_fraction = config.knee_fraction,
                             .knee_reject = config.knee_reject});
    phase.reject_rate = knee.reject_rate;
    phase.saturated = knee.saturated;
    if (open_loop && !phase.saturated) {
      report.saturation_qps = std::max(report.saturation_qps, offered);
    }

    std::cout << "\nphase " << phase_index << ": offered "
              << (open_loop ? std::to_string(static_cast<uint64_t>(offered))
                            : std::string("closed-loop"))
              << " qps, achieved "
              << static_cast<uint64_t>(phase.achieved_qps) << " qps"
              << (phase.saturated ? "  ** saturated **" : "") << "\n";
    bench::PrintLoadReport(std::cout, snap, measured_seconds);
    if (phase.index_version_end != phase.index_version_start) {
      std::cout << "  index       v" << phase.index_version_start << " -> v"
                << phase.index_version_end << "\n";
    }

    report.phases.push_back(phase);
    // Auto sweep: the first saturated phase is the knee; record it and
    // stop pushing.
    if (auto_sweep && phase.saturated) break;
  }

  if (server != nullptr) {
    server->Shutdown();
    std::cout << "\nservice: " << service->Stats().ToString() << "\n";
  }
  if (coordinator != nullptr) coordinator->Shutdown();
  if (cluster != nullptr) cluster->Stop();

  const std::string json = report.ToJson();
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << json;
  out.close();
  std::string error;
  if (!workload::ValidateBenchServeJson(json, &error)) {
    std::cerr << "emitted " << out_path
              << " fails schema validation: " << error << "\n";
    return 1;
  }
  std::cout << "\nwrote " << out_path << " (" << report.phases.size()
            << " phases, saturation knee "
            << static_cast<uint64_t>(report.saturation_qps) << " qps)\n";
  return 0;
}
