// Closed-loop load generator for the network serving stack: N client
// threads, each with its own net::Client connection, replay a workload
// over loopback (against an in-process server by default, or any
// --connect host:port) and report throughput plus client-observed
// latency percentiles from a shared coordinated-omission-safe recorder.
//
//   $ ./matcn_net_bench [dataset] [scale] [flags]
//
// Flags:
//   --connect H:P    target an external matcn_server instead of spawning
//                    an in-process one (dataset flags then ignored)
//   --clients N      concurrent client connections          (default 8)
//   --requests N     total requests (count mode)            (default 2000)
//   --duration-s F   run for F seconds instead of a count   (default off)
//   --warmup-s F     excluded warmup (duration mode only)   (default 0)
//   --unique N       distinct queries in the workload       (default 64)
//   --keywords N     keywords per generated query           (default 2)
//   --threads N      in-process server workers; 0 = hw      (default 0)
//   --cn-threads N   in-process per-query MatchCN workers   (default 1)
//   --queue N        in-process admission queue bound       (default 256)
//   --cache-mb N     in-process result-cache budget         (default 64)
//   --deadline-ms N  per-request deadline; 0 = none         (default 0)
//   --tmax N         per-request CN size bound; 0 = server  (default 0)
//   --max-cns N      cap CN records per response; 0 = all   (default 0)
//   --io-ms N        in-process modeled per-miss latency    (default 2)
//   --seed N         workload seed                          (default 11)
//
// Responses are counted by outcome — ok / cache-hit / degraded /
// rejected (RESOURCE_EXHAUSTED backpressure) / deadline-exceeded / hard
// error — so a saturated server is visible as rejections, not as a
// generic failure count.
//
// Latency is recorded from each request's *intended* start: the instant
// its connection became free to send (the completion of the previous
// request, including any reconnect that followed it), not the instant
// the request bytes finally went out. Reconnects and generator overhead
// therefore show up in the latency distribution instead of being
// silently omitted. Open-loop arrival at a target QPS lives in
// matcn_loadgen; this driver stays the simple closed-loop probe.

#include <algorithm>
#include <atomic>
#include <iostream>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "bench/load_util.h"
#include "common/flags.h"
#include "common/strings.h"
#include "common/timer.h"
#include "datasets/workload.h"
#include "graph/schema_graph.h"
#include "indexing/term_index.h"
#include "net/client.h"
#include "net/server.h"
#include "service/query_service.h"
#include "workload/recorder.h"

using namespace matcn;

int main(int argc, char** argv) {
  FlagSet flags(argc, argv);
  const std::string dataset = flags.positional().empty()
                                  ? "imdb"
                                  : ToLower(flags.positional()[0]);
  const double scale = flags.positional().size() > 1
                           ? std::atof(flags.positional()[1].c_str())
                           : 0.1;
  const std::string connect = flags.GetString("connect", "");
  const unsigned clients = static_cast<unsigned>(flags.GetInt("clients", 8));
  const bench::RunWindow window = bench::ParseRunWindow(flags, 2000);
  const size_t unique = static_cast<size_t>(flags.GetInt("unique", 64));
  const size_t keywords = static_cast<size_t>(flags.GetInt("keywords", 2));
  const unsigned server_threads =
      static_cast<unsigned>(flags.GetInt("threads", 0));
  const unsigned cn_threads =
      static_cast<unsigned>(flags.GetInt("cn-threads", 1));
  const size_t queue = static_cast<size_t>(flags.GetInt("queue", 256));
  const size_t cache_bytes =
      static_cast<size_t>(flags.GetInt("cache-mb", 64)) << 20;
  const int64_t deadline_ms = flags.GetInt("deadline-ms", 0);
  const uint16_t t_max = static_cast<uint16_t>(flags.GetInt("tmax", 0));
  const uint32_t max_cns =
      static_cast<uint32_t>(flags.GetInt("max-cns", 0));
  const int64_t io_ms = flags.GetInt("io-ms", 2);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 11));
  for (const std::string& error : flags.errors()) {
    std::cerr << "flag error: " << error << "\n";
    return 2;
  }
  for (const std::string& unknown : flags.UnknownFlags()) {
    std::cerr << "unknown flag --" << unknown << "\n";
    return 2;
  }

  // Workload (also used in --connect mode: the target serves the same
  // generator datasets, so seeded queries still hit real terms).
  bool dataset_ok = false;
  Database db = bench::MakeNamedDataset(dataset, scale, &dataset_ok);
  if (!dataset_ok) {
    std::cerr << "unknown dataset: " << dataset << " ("
              << bench::DatasetNames() << ")\n";
    return 2;
  }
  const SchemaGraph schema_graph = SchemaGraph::Build(db.schema());
  const TermIndex index = TermIndex::Build(db);
  WorkloadGenerator wgen(&db, &schema_graph, &index);
  const std::vector<KeywordQuery> queries =
      wgen.RandomQueries(unique, keywords, seed);
  if (queries.empty()) {
    std::cerr << "workload generator produced no queries\n";
    return 1;
  }

  // Target: external server, or an in-process one on an ephemeral port.
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::unique_ptr<QueryService> service;
  std::unique_ptr<net::Server> server;
  if (!connect.empty()) {
    const std::vector<std::string> parts = Split(connect, ":");
    if (parts.size() != 2) {
      std::cerr << "--connect wants host:port, got " << connect << "\n";
      return 2;
    }
    host = parts[0];
    port = static_cast<uint16_t>(std::atoi(parts[1].c_str()));
  } else {
    QueryServiceOptions service_options;
    service_options.num_threads = server_threads;
    service_options.gen.num_threads = cn_threads;
    service_options.max_queue = queue;
    service_options.cache_bytes = cache_bytes;
    if (io_ms > 0) {
      service_options.pre_execute_hook = [io_ms] {
        std::this_thread::sleep_for(std::chrono::milliseconds(io_ms));
      };
    }
    service = std::make_unique<QueryService>(&schema_graph, &index,
                                             service_options);
    net::ServerOptions server_options;
    server_options.port = 0;
    server = std::make_unique<net::Server>(service.get(), &db.schema(),
                                           server_options);
    if (Status started = server->Start(); !started.ok()) {
      std::cerr << "in-process server start failed: " << started.ToString()
                << "\n";
      return 1;
    }
    port = server->port();
  }

  workload::LoadRecorder recorder;
  std::atomic<size_t> next{0};
  const Stopwatch clock;
  if (window.duration_based()) {
    recorder.SetMeasureStartUs(window.warmup_us());
  }

  auto client_loop = [&]() {
    Result<net::Client> client = net::Client::Connect(host, port);
    if (!client.ok()) {
      std::cerr << "connect failed: " << client.status().ToString() << "\n";
      recorder.RecordQuery(workload::OpOutcome::kError, clock.ElapsedMicros(),
                           clock.ElapsedMicros(), false, false);
      return;
    }
    net::Client::QueryParams params;
    params.deadline_ms = static_cast<uint32_t>(deadline_ms);
    params.t_max = t_max;
    params.max_cns = max_cns;
    // Intended start of the first request = loop entry; afterwards the
    // completion of the previous one (coordinated-omission anchor).
    int64_t intended = clock.ElapsedMicros();
    while (true) {
      const size_t i = next.fetch_add(1);
      if (window.duration_based()) {
        if (clock.ElapsedMicros() >= window.end_us()) break;
      } else if (i >= window.requests) {
        break;
      }
      const KeywordQuery& q = queries[i % queries.size()];
      Result<net::Client::QueryResult> response =
          client->Query(q.keywords(), params);
      const int64_t end = clock.ElapsedMicros();
      if (response.ok()) {
        recorder.RecordQuery(workload::OpOutcome::kOk, intended, end,
                             response->cache_hit, response->degraded);
      } else {
        recorder.RecordQuery(
            bench::ClassifyFailure(response.status().code()), intended, end,
            false, false);
      }
      if (!client->connected()) {
        // Typed rejections keep the connection; anything that dropped it
        // needs a reconnect before the next request — charged to the
        // next request's latency via its intended-start stamp.
        Result<net::Client> again = net::Client::Connect(host, port);
        if (!again.ok()) return;
        *client = std::move(again).value();
      }
      intended = clock.ElapsedMicros();
    }
  };

  std::cout << "matcn_net_bench — " << (connect.empty() ? "in-process " : "")
            << "server at " << host << ":" << port << ", " << queries.size()
            << " unique queries, ";
  if (window.duration_based()) {
    std::cout << window.duration_s << " s window (+" << window.warmup_s
              << " s warmup), ";
  } else {
    std::cout << window.requests << " requests, ";
  }
  std::cout << clients << " clients\n";

  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (unsigned c = 0; c < clients; ++c) threads.emplace_back(client_loop);
  for (std::thread& t : threads) t.join();
  const double measured_seconds =
      std::max(1e-6, static_cast<double>(clock.ElapsedMicros() -
                                         recorder.measure_start_us()) /
                         1e6);

  std::cout << "\n";
  bench::PrintLoadReport(std::cout, recorder.Snapshot(), measured_seconds);

  if (server != nullptr) {
    server->Shutdown();
    std::cout << "\nserver net: " << server->NetStats().ToString()
              << "\nservice:    " << service->Stats().ToString() << "\n";
  }
  return 0;
}
