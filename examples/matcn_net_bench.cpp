// Closed-loop load generator for the network serving stack: N client
// threads, each with its own net::Client connection, replay a workload
// over loopback (against an in-process server by default, or any
// --connect host:port) and report throughput plus client-observed
// latency percentiles from a shared LatencyHistogram.
//
//   $ ./matcn_net_bench [dataset] [scale] [flags]
//
// Flags:
//   --connect H:P    target an external matcn_server instead of spawning
//                    an in-process one (dataset flags then ignored)
//   --clients N      concurrent client connections          (default 8)
//   --requests N     total requests                         (default 2000)
//   --unique N       distinct queries in the workload       (default 64)
//   --keywords N     keywords per generated query           (default 2)
//   --threads N      in-process server workers; 0 = hw      (default 0)
//   --cn-threads N   in-process per-query MatchCN workers   (default 1)
//   --queue N        in-process admission queue bound       (default 256)
//   --cache-mb N     in-process result-cache budget         (default 64)
//   --deadline-ms N  per-request deadline; 0 = none         (default 0)
//   --tmax N         per-request CN size bound; 0 = server  (default 0)
//   --max-cns N      cap CN records per response; 0 = all   (default 0)
//   --io-ms N        in-process modeled per-miss latency    (default 2)
//   --seed N         workload seed                          (default 11)
//
// Responses are counted by outcome — ok / cache-hit / degraded /
// rejected (RESOURCE_EXHAUSTED backpressure) / deadline-exceeded / hard
// error — so a saturated server is visible as rejections, not as a
// generic failure count.

#include <atomic>
#include <iostream>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/strings.h"
#include "common/timer.h"
#include "datasets/generators.h"
#include "datasets/workload.h"
#include "graph/schema_graph.h"
#include "indexing/term_index.h"
#include "metrics/latency_histogram.h"
#include "net/client.h"
#include "net/server.h"
#include "service/query_service.h"

using namespace matcn;

namespace {

Database MakeDataset(const std::string& name, double scale, bool* ok) {
  *ok = true;
  if (name == "imdb") return MakeImdb(42, scale);
  if (name == "mondial") return MakeMondial(43, scale);
  if (name == "wikipedia") return MakeWikipedia(44, scale);
  if (name == "dblp") return MakeDblp(45, scale);
  if (name == "tpch" || name == "tpc-h") return MakeTpch(46, scale);
  *ok = false;
  return Database{};
}

struct Outcomes {
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> degraded{0};
  std::atomic<uint64_t> rejected{0};
  std::atomic<uint64_t> deadline{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> cns{0};
};

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags(argc, argv);
  const std::string dataset = flags.positional().empty()
                                  ? "imdb"
                                  : ToLower(flags.positional()[0]);
  const double scale = flags.positional().size() > 1
                           ? std::atof(flags.positional()[1].c_str())
                           : 0.1;
  const std::string connect = flags.GetString("connect", "");
  const unsigned clients = static_cast<unsigned>(flags.GetInt("clients", 8));
  const size_t requests = static_cast<size_t>(flags.GetInt("requests", 2000));
  const size_t unique = static_cast<size_t>(flags.GetInt("unique", 64));
  const size_t keywords = static_cast<size_t>(flags.GetInt("keywords", 2));
  const unsigned server_threads =
      static_cast<unsigned>(flags.GetInt("threads", 0));
  const unsigned cn_threads =
      static_cast<unsigned>(flags.GetInt("cn-threads", 1));
  const size_t queue = static_cast<size_t>(flags.GetInt("queue", 256));
  const size_t cache_bytes =
      static_cast<size_t>(flags.GetInt("cache-mb", 64)) << 20;
  const int64_t deadline_ms = flags.GetInt("deadline-ms", 0);
  const uint16_t t_max = static_cast<uint16_t>(flags.GetInt("tmax", 0));
  const uint32_t max_cns =
      static_cast<uint32_t>(flags.GetInt("max-cns", 0));
  const int64_t io_ms = flags.GetInt("io-ms", 2);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 11));
  for (const std::string& error : flags.errors()) {
    std::cerr << "flag error: " << error << "\n";
    return 2;
  }
  for (const std::string& unknown : flags.UnknownFlags()) {
    std::cerr << "unknown flag --" << unknown << "\n";
    return 2;
  }

  // Workload (also used in --connect mode: the target serves the same
  // generator datasets, so seeded queries still hit real terms).
  bool dataset_ok = false;
  Database db = MakeDataset(dataset, scale, &dataset_ok);
  if (!dataset_ok) {
    std::cerr << "unknown dataset: " << dataset
              << " (imdb|mondial|wikipedia|dblp|tpch)\n";
    return 2;
  }
  const SchemaGraph schema_graph = SchemaGraph::Build(db.schema());
  const TermIndex index = TermIndex::Build(db);
  WorkloadGenerator wgen(&db, &schema_graph, &index);
  const std::vector<KeywordQuery> queries =
      wgen.RandomQueries(unique, keywords, seed);
  if (queries.empty()) {
    std::cerr << "workload generator produced no queries\n";
    return 1;
  }

  // Target: external server, or an in-process one on an ephemeral port.
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::unique_ptr<QueryService> service;
  std::unique_ptr<net::Server> server;
  if (!connect.empty()) {
    const std::vector<std::string> parts = Split(connect, ":");
    if (parts.size() != 2) {
      std::cerr << "--connect wants host:port, got " << connect << "\n";
      return 2;
    }
    host = parts[0];
    port = static_cast<uint16_t>(std::atoi(parts[1].c_str()));
  } else {
    QueryServiceOptions service_options;
    service_options.num_threads = server_threads;
    service_options.gen.num_threads = cn_threads;
    service_options.max_queue = queue;
    service_options.cache_bytes = cache_bytes;
    if (io_ms > 0) {
      service_options.pre_execute_hook = [io_ms] {
        std::this_thread::sleep_for(std::chrono::milliseconds(io_ms));
      };
    }
    service = std::make_unique<QueryService>(&schema_graph, &index,
                                             service_options);
    net::ServerOptions server_options;
    server_options.port = 0;
    server = std::make_unique<net::Server>(service.get(), &db.schema(),
                                           server_options);
    if (Status started = server->Start(); !started.ok()) {
      std::cerr << "in-process server start failed: " << started.ToString()
                << "\n";
      return 1;
    }
    port = server->port();
  }

  Outcomes outcomes;
  LatencyHistogram latency;
  std::atomic<size_t> next{0};

  auto client_loop = [&]() {
    Result<net::Client> client = net::Client::Connect(host, port);
    if (!client.ok()) {
      std::cerr << "connect failed: " << client.status().ToString() << "\n";
      outcomes.errors.fetch_add(1);
      return;
    }
    net::Client::QueryParams params;
    params.deadline_ms = static_cast<uint32_t>(deadline_ms);
    params.t_max = t_max;
    params.max_cns = max_cns;
    while (true) {
      const size_t i = next.fetch_add(1);
      if (i >= requests) break;
      const KeywordQuery& q = queries[i % queries.size()];
      Stopwatch watch;
      Result<net::Client::QueryResult> response =
          client->Query(q.keywords(), params);
      latency.Record(static_cast<int64_t>(watch.ElapsedSeconds() * 1e6));
      if (response.ok()) {
        outcomes.ok.fetch_add(1);
        outcomes.cns.fetch_add(response->cns.size());
        if (response->cache_hit) outcomes.cache_hits.fetch_add(1);
        if (response->degraded) outcomes.degraded.fetch_add(1);
        continue;
      }
      switch (response.status().code()) {
        case StatusCode::kResourceExhausted:
          outcomes.rejected.fetch_add(1);
          break;
        case StatusCode::kDeadlineExceeded:
          outcomes.deadline.fetch_add(1);
          break;
        default:
          outcomes.errors.fetch_add(1);
          break;
      }
      if (!client->connected()) {
        // Typed rejections keep the connection; anything that dropped it
        // needs a reconnect before the next request.
        Result<net::Client> again = net::Client::Connect(host, port);
        if (!again.ok()) return;
        *client = std::move(again).value();
      }
    }
  };

  std::cout << "matcn_net_bench — " << (connect.empty() ? "in-process " : "")
            << "server at " << host << ":" << port << ", " << queries.size()
            << " unique queries, " << requests << " requests, " << clients
            << " clients\n";

  Stopwatch watch;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (unsigned c = 0; c < clients; ++c) threads.emplace_back(client_loop);
  for (std::thread& t : threads) t.join();
  const double seconds = watch.ElapsedSeconds();

  const double qps =
      seconds > 0 ? static_cast<double>(requests) / seconds : 0;
  std::cout << "\n  time        " << seconds << " s\n  throughput  "
            << static_cast<uint64_t>(qps) << " qps\n  latency     "
            << latency.Summary() << "\n  ok          "
            << outcomes.ok.load() << " (" << outcomes.cache_hits.load()
            << " cache hits, " << outcomes.degraded.load()
            << " degraded, " << outcomes.cns.load()
            << " CN records)\n  rejected    " << outcomes.rejected.load()
            << " (RESOURCE_EXHAUSTED backpressure)\n  deadline    "
            << outcomes.deadline.load()
            << " (DEADLINE_EXCEEDED)\n  errors      "
            << outcomes.errors.load() << "\n";

  if (server != nullptr) {
    server->Shutdown();
    std::cout << "\nserver net: " << server->NetStats().ToString()
              << "\nservice:    " << service->Stats().ToString() << "\n";
  }
  return 0;
}
