// Administration CLI: materialize a synthetic dataset to an on-disk
// database directory, inspect it, and run disk-based keyword queries
// against it — exercising the persistence layer and the disk-based
// MatCNGen variant end-to-end.
//
//   $ ./matcn_ctl build <dataset> <dir> [scale]   # write relation files
//   $ ./matcn_ctl info <dir>                      # catalog statistics
//   $ ./matcn_ctl query <dir> <keywords...>       # disk-based pipeline

#include <iostream>

#include "common/strings.h"
#include "common/timer.h"
#include "core/matcngen.h"
#include "datasets/generators.h"
#include "graph/schema_graph.h"
#include "storage/disk.h"

using namespace matcn;

namespace {

int Usage() {
  std::cerr << "usage:\n"
               "  matcn_ctl build <imdb|mondial|wikipedia|dblp|tpch> <dir> "
               "[scale]\n"
               "  matcn_ctl info <dir>\n"
               "  matcn_ctl query <dir> <keywords...>\n";
  return 2;
}

int Build(const std::string& name, const std::string& dir, double scale) {
  Database db;
  if (name == "imdb") {
    db = MakeImdb(42, scale);
  } else if (name == "mondial") {
    db = MakeMondial(43, scale);
  } else if (name == "wikipedia") {
    db = MakeWikipedia(44, scale);
  } else if (name == "dblp") {
    db = MakeDblp(45, scale);
  } else if (name == "tpch") {
    db = MakeTpch(46, scale);
  } else {
    return Usage();
  }
  Stopwatch watch;
  Status saved = DiskStorage::Save(db, dir);
  if (!saved.ok()) {
    std::cerr << "save failed: " << saved.ToString() << "\n";
    return 1;
  }
  std::cout << "wrote " << db.num_relations() << " relations, "
            << db.TotalTuples() << " tuples to " << dir << " ("
            << watch.ElapsedMillis() << " ms)\n";
  return 0;
}

int Info(const std::string& dir) {
  Result<Database> db = DiskStorage::Load(dir);
  if (!db.ok()) {
    std::cerr << "load failed: " << db.status().ToString() << "\n";
    return 1;
  }
  std::cout << "catalog: " << db->num_relations() << " relations, "
            << db->schema().foreign_keys().size() << " RICs, "
            << db->TotalTuples() << " tuples, ~"
            << db->ApproximateSizeBytes() / 1024 << " KiB payload\n";
  for (RelationId r = 0; r < db->num_relations(); ++r) {
    std::cout << "  " << db->relation(r).schema().name() << ": "
              << db->relation(r).num_tuples() << " rows\n";
  }
  return 0;
}

int Query(const std::string& dir, const std::string& text) {
  // Only the catalog is needed in memory; tuple-set finding streams the
  // relation files from disk (the paper's disk-based variant).
  Result<Database> db = DiskStorage::Load(dir);
  if (!db.ok()) {
    std::cerr << "load failed: " << db.status().ToString() << "\n";
    return 1;
  }
  Result<KeywordQuery> query = KeywordQuery::Parse(text);
  if (!query.ok()) {
    std::cerr << "bad query: " << query.status().ToString() << "\n";
    return 1;
  }
  const SchemaGraph schema_graph = SchemaGraph::Build(db->schema());
  MatCnGen generator(&schema_graph);
  Result<GenerationResult> result =
      generator.GenerateDisk(*query, dir, db->schema());
  if (!result.ok()) {
    std::cerr << "query failed: " << result.status().ToString() << "\n";
    return 1;
  }
  std::cout << result->tuple_sets.size() << " tuple-sets, "
            << result->matches.size() << " matches, " << result->cns.size()
            << " CNs (TS " << result->stats.ts_millis << " ms on disk, CN "
            << result->stats.cn_millis << " ms):\n";
  for (const CandidateNetwork& cn : result->cns) {
    std::cout << "  " << cn.ToString(db->schema(), *query) << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string command = argv[1];
  if (command == "build" && argc >= 4) {
    return Build(ToLower(argv[2]), argv[3],
                 argc > 4 ? std::atof(argv[4]) : 0.1);
  }
  if (command == "info") return Info(argv[2]);
  if (command == "query" && argc >= 4) {
    std::string text;
    for (int i = 3; i < argc; ++i) {
      if (i > 3) text += " ";
      text += argv[i];
    }
    return Query(argv[2], text);
  }
  return Usage();
}
