// Administration CLI: materialize a synthetic dataset to an on-disk
// database directory, inspect it, and run disk-based keyword queries
// against it — exercising the persistence layer and the disk-based
// MatCNGen variant end-to-end. Queries route through the serving layer
// (QueryService, disk backend), so they honor deadlines and admission
// control like any other entry point.
//
//   $ ./matcn_ctl build <dataset> <dir> [scale]   # write relation files
//   $ ./matcn_ctl info <dir>                      # catalog statistics
//   $ ./matcn_ctl query <dir> <keywords...>       # disk-based pipeline
//   $ ./matcn_ctl trace <dir> <keywords...>       # query + span waterfall
//   $ ./matcn_ctl insert <dir> <relation> <v...>  # append + reindex + save
//
// Query flags:
//   --threads N      service worker threads        (default: cores)
//   --cn-threads N   per-query MatchCN workers     (default 1)
//   --tmax N         CN size bound T_max           (default 10)
//   --cache-mb N     result-cache budget in MiB    (default 16)
//   --deadline-ms N  per-query deadline; 0 = none  (default 0)

#include <iostream>
#include <optional>

#include "common/flags.h"
#include "common/strings.h"
#include "common/timer.h"
#include "core/matcngen.h"
#include "datasets/generators.h"
#include "graph/schema_graph.h"
#include "indexing/term_index.h"
#include "liveindex/concurrent_term_index.h"
#include "liveindex/index_writer.h"
#include "obs/trace.h"
#include "service/query_service.h"
#include "storage/disk.h"

using namespace matcn;

namespace {

int Usage() {
  std::cerr << "usage:\n"
               "  matcn_ctl build <imdb|mondial|wikipedia|dblp|tpch> <dir> "
               "[scale]\n"
               "  matcn_ctl info <dir>\n"
               "  matcn_ctl query <dir> <keywords...> [--threads N] "
               "[--cn-threads N] [--tmax N] [--cache-mb N] "
               "[--deadline-ms N]\n"
               "  matcn_ctl trace <dir> <keywords...>  (query flags apply; "
               "prints the per-stage span waterfall)\n"
               "  matcn_ctl insert <dir> <relation> <value...>  "
               "(one value per attribute, in schema order)\n";
  return 2;
}

int Build(const std::string& name, const std::string& dir, double scale) {
  Database db;
  if (name == "imdb") {
    db = MakeImdb(42, scale);
  } else if (name == "mondial") {
    db = MakeMondial(43, scale);
  } else if (name == "wikipedia") {
    db = MakeWikipedia(44, scale);
  } else if (name == "dblp") {
    db = MakeDblp(45, scale);
  } else if (name == "tpch") {
    db = MakeTpch(46, scale);
  } else {
    return Usage();
  }
  Stopwatch watch;
  Status saved = DiskStorage::Save(db, dir);
  if (!saved.ok()) {
    std::cerr << "save failed: " << saved.ToString() << "\n";
    return 1;
  }
  std::cout << "wrote " << db.num_relations() << " relations, "
            << db.TotalTuples() << " tuples to " << dir << " ("
            << watch.ElapsedMillis() << " ms)\n";
  return 0;
}

int Info(const std::string& dir) {
  Result<Database> db = DiskStorage::Load(dir);
  if (!db.ok()) {
    std::cerr << "load failed: " << db.status().ToString() << "\n";
    return 1;
  }
  std::cout << "catalog: " << db->num_relations() << " relations, "
            << db->schema().foreign_keys().size() << " RICs, "
            << db->TotalTuples() << " tuples, ~"
            << db->ApproximateSizeBytes() / 1024 << " KiB payload\n";
  for (RelationId r = 0; r < db->num_relations(); ++r) {
    std::cout << "  " << db->relation(r).schema().name() << ": "
              << db->relation(r).num_tuples() << " rows\n";
  }
  return 0;
}

int Query(const std::string& dir, const std::string& text,
          const QueryServiceOptions& service_options, bool trace) {
  // Only the catalog is needed in memory; tuple-set finding streams the
  // relation files from disk (the paper's disk-based variant).
  Result<Database> db = DiskStorage::Load(dir);
  if (!db.ok()) {
    std::cerr << "load failed: " << db.status().ToString() << "\n";
    return 1;
  }
  Result<KeywordQuery> query = KeywordQuery::Parse(text);
  if (!query.ok()) {
    std::cerr << "bad query: " << query.status().ToString() << "\n";
    return 1;
  }
  const SchemaGraph schema_graph = SchemaGraph::Build(db->schema());
  QueryService service(&schema_graph, dir, &db->schema(), service_options);
  QueryRequestOptions request_options;
  request_options.trace = trace;
  Result<QueryResponse> response = service.Query(*query, request_options);
  if (!response.ok()) {
    std::cerr << "query failed: " << response.status().ToString() << "\n";
    return 1;
  }
  const GenerationResult& result = *response->result;
  std::cout << result.tuple_sets.size() << " tuple-sets, "
            << result.matches.size() << " matches, " << result.cns.size()
            << " CNs (TS " << result.stats.ts_millis << " ms on disk, CN "
            << result.stats.cn_millis << " ms, service "
            << response->latency_ms << " ms)";
  if (response->degraded) {
    std::cout << " [degraded: " << response->degraded_reason << "]";
  }
  std::cout << ":\n";
  for (const CandidateNetwork& cn : result.cns) {
    std::cout << "  " << cn.ToString(db->schema(), response->query) << "\n";
  }
  if (trace && response->trace != nullptr) {
    std::cout << "\nspan waterfall:\n"
              << obs::RenderWaterfall(response->trace->Snapshot());
  }
  return 0;
}

// Appends one tuple to an on-disk database: load, route the append
// through the live-index writer (so the update path matches the server's),
// then persist the grown relation back to `dir`.
int Insert(const std::string& dir, const std::string& rel_name,
           const std::vector<std::string>& fields) {
  Result<Database> db = DiskStorage::Load(dir);
  if (!db.ok()) {
    std::cerr << "load failed: " << db.status().ToString() << "\n";
    return 1;
  }
  const std::optional<RelationId> rel =
      db->schema().RelationIdByName(rel_name);
  if (!rel.has_value()) {
    std::cerr << "unknown relation '" << rel_name << "'\n";
    return 1;
  }
  const RelationSchema& rs = db->relation(*rel).schema();
  if (fields.size() != rs.num_attributes()) {
    std::cerr << rs.name() << " has " << rs.num_attributes()
              << " attributes, got " << fields.size() << " values\n";
    return 1;
  }
  Tuple tuple;
  tuple.reserve(fields.size());
  for (size_t a = 0; a < fields.size(); ++a) {
    if (rs.attribute(a).type == ValueType::kInt) {
      tuple.emplace_back(static_cast<int64_t>(std::atoll(fields[a].c_str())));
    } else {
      tuple.emplace_back(std::string(fields[a]));
    }
  }
  liveindex::ConcurrentTermIndex live_index(TermIndex::Build(*db));
  liveindex::IndexWriter writer(&*db, &live_index);
  Result<liveindex::IndexWriter::InsertOutcome> outcome =
      writer.Insert(*rel, std::move(tuple));
  if (!outcome.ok()) {
    std::cerr << "insert failed: " << outcome.status().ToString() << "\n";
    return 1;
  }
  Status saved = DiskStorage::Save(*db, dir);
  if (!saved.ok()) {
    std::cerr << "save failed: " << saved.ToString() << "\n";
    return 1;
  }
  std::cout << "inserted " << rs.name() << " row " << outcome->id.row()
            << " (index version " << outcome->version << "), saved to " << dir
            << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags(argc, argv);
  const std::vector<std::string>& args = flags.positional();
  if (args.size() < 2) return Usage();
  const std::string command = args[0];

  QueryServiceOptions service_options;
  service_options.num_threads =
      static_cast<unsigned>(flags.GetInt("threads", 0));
  service_options.gen.num_threads =
      static_cast<unsigned>(flags.GetInt("cn-threads", 1));
  service_options.gen.t_max = static_cast<int>(flags.GetInt("tmax", 10));
  service_options.cache_bytes =
      static_cast<size_t>(flags.GetInt("cache-mb", 16)) << 20;
  service_options.default_deadline_ms = flags.GetInt("deadline-ms", 0);
  for (const std::string& unknown : flags.UnknownFlags()) {
    std::cerr << "unknown flag --" << unknown << "\n";
    return Usage();
  }

  if (command == "build" && args.size() >= 3) {
    return Build(ToLower(args[1]), args[2],
                 args.size() > 3 ? std::atof(args[3].c_str()) : 0.1);
  }
  if (command == "info") return Info(args[1]);
  if ((command == "query" || command == "trace") && args.size() >= 3) {
    std::string text;
    for (size_t i = 2; i < args.size(); ++i) {
      if (i > 2) text += " ";
      text += args[i];
    }
    return Query(args[1], text, service_options, command == "trace");
  }
  if (command == "insert" && args.size() >= 3) {
    return Insert(args[1], args[2],
                  std::vector<std::string>(args.begin() + 3, args.end()));
  }
  return Usage();
}
