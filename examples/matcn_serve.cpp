// Closed-loop multi-threaded load generator for the serving layer: spins
// up a QueryService per worker-thread configuration, replays a
// repeated-query workload from N concurrent clients, and reports
// throughput, cache hit/miss counts and latency percentiles straight from
// ServiceStats.
//
//   $ ./matcn_serve [dataset] [scale] [flags]
//
// Flags:
//   --threads LIST   comma-separated worker-pool sizes to sweep (def "1,8")
//   --cn-threads N   per-query MatchCN workers               (default 1)
//   --clients N      concurrent closed-loop client threads   (default 8)
//   --requests N     requests per configuration              (default 2000)
//   --unique N       distinct queries in the workload        (default 64)
//   --keywords N     keywords per generated query            (default 2)
//   --cache-mb N     result-cache budget in MiB; 0 disables  (default 64)
//   --deadline-ms N  per-query deadline; 0 = none            (default 0)
//   --tmax N         CN size bound T_max                     (default 5)
//   --io-ms N        modeled per-miss backend latency        (default 2)
//   --seed N         workload seed                           (default 11)
//
// The per-miss `--io-ms` sleep stands in for the I/O a DBMS-backed
// deployment pays in TSFind (the paper's per-query SQL ILIKE probes);
// the synthetic in-memory datasets are otherwise too small to show the
// serving layer overlapping anything. Cache hits skip the pipeline and
// therefore the modeled I/O — that is the point of the cache.

#include <atomic>
#include <iostream>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "datasets/generators.h"
#include "datasets/workload.h"
#include "graph/schema_graph.h"
#include "indexing/term_index.h"
#include "service/query_service.h"

using namespace matcn;

namespace {

Database MakeDataset(const std::string& name, double scale, bool* ok) {
  *ok = true;
  if (name == "imdb") return MakeImdb(42, scale);
  if (name == "mondial") return MakeMondial(43, scale);
  if (name == "wikipedia") return MakeWikipedia(44, scale);
  if (name == "dblp") return MakeDblp(45, scale);
  if (name == "tpch" || name == "tpc-h") return MakeTpch(46, scale);
  *ok = false;
  return Database{};
}

struct RunResult {
  unsigned threads = 0;
  double seconds = 0;
  double qps = 0;
  uint64_t rejected = 0;  // admission control (kResourceExhausted)
  uint64_t errors = 0;    // everything else non-OK
  ServiceStatsSnapshot stats;
};

RunResult RunConfig(const SchemaGraph* schema_graph, const TermIndex* index,
                    const std::vector<KeywordQuery>& queries,
                    unsigned worker_threads, unsigned cn_threads,
                    unsigned clients, size_t requests, size_t cache_bytes,
                    int64_t deadline_ms, int t_max, int64_t io_ms) {
  QueryServiceOptions options;
  options.num_threads = worker_threads;
  options.max_queue = 4096;  // sized so the sweep measures latency, not drops
  options.cache_bytes = cache_bytes;
  options.default_deadline_ms = deadline_ms;
  options.gen.t_max = t_max;
  options.gen.num_threads = cn_threads;
  if (io_ms > 0) {
    options.pre_execute_hook = [io_ms] {
      std::this_thread::sleep_for(std::chrono::milliseconds(io_ms));
    };
  }
  QueryService service(schema_graph, index, options);

  std::atomic<size_t> next{0};
  std::atomic<uint64_t> rejected{0};
  std::atomic<uint64_t> errors{0};
  auto client = [&]() {
    while (true) {
      const size_t i = next.fetch_add(1);
      if (i >= requests) break;
      // Cycling through the unique queries gives every one of them
      // `requests / unique` repetitions — the repeated-query pattern an
      // interactive deployment sees.
      const KeywordQuery& q = queries[i % queries.size()];
      Result<QueryResponse> response = service.Query(q);
      if (response.ok()) continue;
      // Admission-control rejections are expected backpressure under
      // overload, not breakage — count them apart from hard errors.
      // Deadline expiry already shows up in the Timeout column (service
      // stats), so it is not an error either.
      switch (response.status().code()) {
        case StatusCode::kResourceExhausted:
          rejected.fetch_add(1, std::memory_order_relaxed);
          break;
        case StatusCode::kDeadlineExceeded:
          break;
        default:
          errors.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };

  Stopwatch watch;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (unsigned c = 0; c < clients; ++c) threads.emplace_back(client);
  for (std::thread& t : threads) t.join();

  RunResult run;
  run.threads = worker_threads;
  run.seconds = watch.ElapsedSeconds();
  run.qps = run.seconds > 0 ? static_cast<double>(requests) / run.seconds : 0;
  run.stats = service.Stats();
  run.rejected = rejected.load();
  run.errors = errors.load();
  if (run.errors > 0) {
    std::cerr << "warning: " << run.errors
              << " requests returned a hard error status\n";
  }
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags(argc, argv);
  const std::string dataset = flags.positional().empty()
                                  ? "imdb"
                                  : ToLower(flags.positional()[0]);
  const double scale = flags.positional().size() > 1
                           ? std::atof(flags.positional()[1].c_str())
                           : 0.1;
  const std::string thread_list = flags.GetString("threads", "1,8");
  const unsigned cn_threads =
      static_cast<unsigned>(flags.GetInt("cn-threads", 1));
  const unsigned clients =
      static_cast<unsigned>(flags.GetInt("clients", 8));
  const size_t requests = static_cast<size_t>(flags.GetInt("requests", 2000));
  const size_t unique = static_cast<size_t>(flags.GetInt("unique", 64));
  const size_t keywords = static_cast<size_t>(flags.GetInt("keywords", 2));
  const size_t cache_bytes =
      static_cast<size_t>(flags.GetInt("cache-mb", 64)) << 20;
  const int64_t deadline_ms = flags.GetInt("deadline-ms", 0);
  const int t_max = static_cast<int>(flags.GetInt("tmax", 5));
  const int64_t io_ms = flags.GetInt("io-ms", 2);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 11));
  for (const std::string& error : flags.errors()) {
    std::cerr << "flag error: " << error << "\n";
    return 2;
  }
  for (const std::string& unknown : flags.UnknownFlags()) {
    std::cerr << "unknown flag --" << unknown << "\n";
    return 2;
  }

  bool dataset_ok = false;
  Database db = MakeDataset(dataset, scale, &dataset_ok);
  if (!dataset_ok) {
    std::cerr << "unknown dataset: " << dataset
              << " (imdb|mondial|wikipedia|dblp|tpch)\n";
    return 2;
  }
  const SchemaGraph schema_graph = SchemaGraph::Build(db.schema());
  const TermIndex index = TermIndex::Build(db);
  WorkloadGenerator wgen(&db, &schema_graph, &index);
  const std::vector<KeywordQuery> queries =
      wgen.RandomQueries(unique, keywords, seed);
  if (queries.empty()) {
    std::cerr << "workload generator produced no queries\n";
    return 1;
  }

  std::cout << "matcn_serve — " << dataset << " (" << db.TotalTuples()
            << " tuples), " << queries.size() << " unique queries, "
            << requests << " requests, " << clients
            << " clients, modeled miss I/O " << io_ms << " ms\n\n";

  std::vector<RunResult> runs;
  TablePrinter table({"Workers", "Time s", "QPS", "Hits", "Misses", "p50 ms",
                      "p95 ms", "p99 ms", "Timeout", "Degraded", "Rejected",
                      "Errors"});
  for (const std::string& part : Split(thread_list, ",")) {
    const int workers = std::atoi(std::string(Trim(part)).c_str());
    if (workers <= 0) continue;
    RunResult run = RunConfig(&schema_graph, &index, queries,
                              static_cast<unsigned>(workers), cn_threads,
                              clients, requests, cache_bytes, deadline_ms,
                              t_max, io_ms);
    table.AddRow({std::to_string(run.threads),
                  TablePrinter::Num(run.seconds, 3),
                  TablePrinter::Num(run.qps, 0),
                  std::to_string(run.stats.cache_hits),
                  std::to_string(run.stats.cache_misses),
                  TablePrinter::Num(run.stats.p50_ms, 3),
                  TablePrinter::Num(run.stats.p95_ms, 3),
                  TablePrinter::Num(run.stats.p99_ms, 3),
                  std::to_string(run.stats.timed_out),
                  std::to_string(run.stats.degraded),
                  std::to_string(run.rejected),
                  std::to_string(run.errors)});
    runs.push_back(std::move(run));
  }
  table.Print(std::cout);

  if (runs.size() >= 2) {
    const RunResult& base = runs.front();
    for (size_t i = 1; i < runs.size(); ++i) {
      const double speedup = base.qps > 0 ? runs[i].qps / base.qps : 0;
      std::cout << "\nspeedup(" << runs[i].threads << " workers vs "
                << base.threads << ") = " << TablePrinter::Num(speedup, 2)
                << "x";
    }
    std::cout << "\n";
  }
  std::cout << "\nfinal stats (" << runs.back().threads
            << " workers): " << runs.back().stats.ToString() << "\n";
  return 0;
}
