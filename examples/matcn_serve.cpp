// Closed-loop multi-threaded load generator for the serving layer: spins
// up a QueryService per worker-thread configuration, replays a
// repeated-query workload from N concurrent clients, and reports
// throughput, cache hit/miss counts, and client-observed latency
// percentiles recorded from each request's intended start.
//
//   $ ./matcn_serve [dataset] [scale] [flags]
//
// Flags:
//   --threads LIST   comma-separated worker-pool sizes to sweep (def "1,8")
//   --cn-threads N   per-query MatchCN workers               (default 1)
//   --clients N      concurrent closed-loop client threads   (default 8)
//   --requests N     requests per configuration              (default 2000)
//   --duration-s F   run each config for F seconds instead   (default off)
//   --warmup-s F     excluded warmup (duration mode only)    (default 0)
//   --unique N       distinct queries in the workload        (default 64)
//   --keywords N     keywords per generated query            (default 2)
//   --cache-mb N     result-cache budget in MiB; 0 disables  (default 64)
//   --deadline-ms N  per-query deadline; 0 = none            (default 0)
//   --tmax N         CN size bound T_max                     (default 5)
//   --arena-kb N     initial per-worker SingleCn arena chunk (default 64)
//   --io-ms N        modeled per-miss backend latency        (default 2)
//   --seed N         workload seed                           (default 11)
//
// The per-miss `--io-ms` sleep stands in for the I/O a DBMS-backed
// deployment pays in TSFind (the paper's per-query SQL ILIKE probes);
// the synthetic in-memory datasets are otherwise too small to show the
// serving layer overlapping anything. Cache hits skip the pipeline and
// therefore the modeled I/O — that is the point of the cache.
//
// Latency columns come from a client-side workload::LoadRecorder, not
// ServiceStats: each sample is stamped from the instant the client
// thread became free to send (coordinated-omission-safe closed loop),
// so queue wait ahead of admission is included. ServiceStats percentiles
// (service-internal, post-admission) are still printed at the end.

#include <algorithm>
#include <atomic>
#include <iostream>
#include <thread>
#include <vector>

#include "bench/load_util.h"
#include "common/flags.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "datasets/workload.h"
#include "graph/schema_graph.h"
#include "indexing/term_index.h"
#include "service/query_service.h"
#include "workload/recorder.h"

using namespace matcn;

namespace {

struct RunResult {
  unsigned threads = 0;
  double seconds = 0;  // measured window (excludes warmup)
  double qps = 0;
  workload::LoadSnapshot load;
  ServiceStatsSnapshot stats;
};

RunResult RunConfig(const SchemaGraph* schema_graph, const TermIndex* index,
                    const std::vector<KeywordQuery>& queries,
                    unsigned worker_threads, unsigned cn_threads,
                    unsigned clients, const bench::RunWindow& window,
                    size_t cache_bytes, int64_t deadline_ms, int t_max,
                    int64_t io_ms, size_t arena_kb) {
  QueryServiceOptions options;
  options.num_threads = worker_threads;
  options.max_queue = 4096;  // sized so the sweep measures latency, not drops
  options.cache_bytes = cache_bytes;
  options.default_deadline_ms = deadline_ms;
  options.gen.t_max = t_max;
  options.gen.num_threads = cn_threads;
  options.gen.arena_chunk_kb = arena_kb;
  if (io_ms > 0) {
    options.pre_execute_hook = [io_ms] {
      std::this_thread::sleep_for(std::chrono::milliseconds(io_ms));
    };
  }
  QueryService service(schema_graph, index, options);

  workload::LoadRecorder recorder;
  std::atomic<size_t> next{0};
  const Stopwatch clock;
  if (window.duration_based()) {
    recorder.SetMeasureStartUs(window.warmup_us());
  }
  auto client = [&]() {
    // Closed-loop coordinated-omission anchor: each request's intended
    // start is the instant this thread became free to send it.
    int64_t intended = clock.ElapsedMicros();
    while (true) {
      const size_t i = next.fetch_add(1);
      if (window.duration_based()) {
        if (clock.ElapsedMicros() >= window.end_us()) break;
      } else if (i >= window.requests) {
        break;
      }
      // Cycling through the unique queries gives every one of them
      // `requests / unique` repetitions — the repeated-query pattern an
      // interactive deployment sees.
      const KeywordQuery& q = queries[i % queries.size()];
      Result<QueryResponse> response = service.Query(q);
      const int64_t end = clock.ElapsedMicros();
      if (response.ok()) {
        recorder.RecordQuery(workload::OpOutcome::kOk, intended, end,
                             response->cache_hit, response->degraded);
      } else {
        recorder.RecordQuery(bench::ClassifyFailure(response.status().code()),
                             intended, end, false, false);
      }
      intended = end;
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (unsigned c = 0; c < clients; ++c) threads.emplace_back(client);
  for (std::thread& t : threads) t.join();

  RunResult run;
  run.threads = worker_threads;
  run.seconds = std::max(
      1e-6, static_cast<double>(clock.ElapsedMicros() -
                                recorder.measure_start_us()) /
                1e6);
  run.load = recorder.Snapshot();
  run.qps = static_cast<double>(run.load.queries()) / run.seconds;
  run.stats = service.Stats();
  if (run.load.errors > 0) {
    std::cerr << "warning: " << run.load.errors
              << " requests returned a hard error status\n";
  }
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags(argc, argv);
  const std::string dataset = flags.positional().empty()
                                  ? "imdb"
                                  : ToLower(flags.positional()[0]);
  const double scale = flags.positional().size() > 1
                           ? std::atof(flags.positional()[1].c_str())
                           : 0.1;
  const std::string thread_list = flags.GetString("threads", "1,8");
  const unsigned cn_threads =
      static_cast<unsigned>(flags.GetInt("cn-threads", 1));
  const unsigned clients =
      static_cast<unsigned>(flags.GetInt("clients", 8));
  const bench::RunWindow window = bench::ParseRunWindow(flags, 2000);
  const size_t unique = static_cast<size_t>(flags.GetInt("unique", 64));
  const size_t keywords = static_cast<size_t>(flags.GetInt("keywords", 2));
  const size_t cache_bytes =
      static_cast<size_t>(flags.GetInt("cache-mb", 64)) << 20;
  const int64_t deadline_ms = flags.GetInt("deadline-ms", 0);
  const int t_max = static_cast<int>(flags.GetInt("tmax", 5));
  const size_t arena_kb = static_cast<size_t>(
      std::max<int64_t>(1, flags.GetInt("arena-kb", 64)));
  const int64_t io_ms = flags.GetInt("io-ms", 2);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 11));
  for (const std::string& error : flags.errors()) {
    std::cerr << "flag error: " << error << "\n";
    return 2;
  }
  for (const std::string& unknown : flags.UnknownFlags()) {
    std::cerr << "unknown flag --" << unknown << "\n";
    return 2;
  }

  bool dataset_ok = false;
  Database db = bench::MakeNamedDataset(dataset, scale, &dataset_ok);
  if (!dataset_ok) {
    std::cerr << "unknown dataset: " << dataset << " ("
              << bench::DatasetNames() << ")\n";
    return 2;
  }
  const SchemaGraph schema_graph = SchemaGraph::Build(db.schema());
  const TermIndex index = TermIndex::Build(db);
  WorkloadGenerator wgen(&db, &schema_graph, &index);
  const std::vector<KeywordQuery> queries =
      wgen.RandomQueries(unique, keywords, seed);
  if (queries.empty()) {
    std::cerr << "workload generator produced no queries\n";
    return 1;
  }

  std::cout << "matcn_serve — " << dataset << " (" << db.TotalTuples()
            << " tuples), " << queries.size() << " unique queries, ";
  if (window.duration_based()) {
    std::cout << window.duration_s << " s window (+" << window.warmup_s
              << " s warmup) per config, ";
  } else {
    std::cout << window.requests << " requests per config, ";
  }
  std::cout << clients << " clients, modeled miss I/O " << io_ms << " ms\n\n";

  std::vector<RunResult> runs;
  TablePrinter table({"Workers", "Time s", "QPS", "Hits", "Misses", "p50 ms",
                      "p95 ms", "p99 ms", "p99.9", "Timeout", "Degraded",
                      "Rejected", "Errors"});
  for (const std::string& part : Split(thread_list, ",")) {
    const int workers = std::atoi(std::string(Trim(part)).c_str());
    if (workers <= 0) continue;
    RunResult run = RunConfig(&schema_graph, &index, queries,
                              static_cast<unsigned>(workers), cn_threads,
                              clients, window, cache_bytes, deadline_ms,
                              t_max, io_ms, arena_kb);
    table.AddRow({std::to_string(run.threads),
                  TablePrinter::Num(run.seconds, 3),
                  TablePrinter::Num(run.qps, 0),
                  std::to_string(run.stats.cache_hits),
                  std::to_string(run.stats.cache_misses),
                  TablePrinter::Num(run.load.p50_ms, 3),
                  TablePrinter::Num(run.load.p95_ms, 3),
                  TablePrinter::Num(run.load.p99_ms, 3),
                  TablePrinter::Num(run.load.p999_ms, 3),
                  std::to_string(run.load.deadline),
                  std::to_string(run.load.degraded),
                  std::to_string(run.load.rejected),
                  std::to_string(run.load.errors)});
    runs.push_back(std::move(run));
  }
  table.Print(std::cout);
  std::cout << "(latency columns are client-observed, from intended start)\n";

  if (runs.size() >= 2) {
    const RunResult& base = runs.front();
    for (size_t i = 1; i < runs.size(); ++i) {
      const double speedup = base.qps > 0 ? runs[i].qps / base.qps : 0;
      std::cout << "\nspeedup(" << runs[i].threads << " workers vs "
                << base.threads << ") = " << TablePrinter::Num(speedup, 2)
                << "x";
    }
    std::cout << "\n";
  }
  std::cout << "\nfinal stats (" << runs.back().threads
            << " workers): " << runs.back().stats.ToString() << "\n";
  return 0;
}
