// Shard-cluster operator tool: generate shard-map files and probe
// running shard workers.
//
//   $ ./matcn_shardctl map DATASET [SCALE] --shards N [flags]
//       Assigns DATASET's relations to N shards on the consistent-hash
//       ring and prints the map file (serve it with
//       `matcn_server DATASET SCALE --shard-map FILE`).
//       --seed S    ring hash seed                        (default 0)
//       --vnodes V  virtual nodes per shard               (default 64)
//       --out FILE  write the map there instead of stdout
//
//   $ ./matcn_shardctl health HOST:PORT [HOST:PORT ...]
//       Sends one v5 HEARTBEAT frame to each endpoint and prints the
//       ack (shard id, index version, queries in flight, RTT). Exits
//       nonzero if any endpoint fails to ack — a draining shard
//       answers kUnavailable, a dead one refuses the connection.
//
//   $ ./matcn_shardctl stats HOST:PORT [HOST:PORT ...]
//       STATS request per endpoint; prints the per-shard service and
//       network counters side by side.

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/strings.h"
#include "datasets/generators.h"
#include "net/client.h"
#include "net/socket.h"
#include "net/wire.h"
#include "shard/shard_map.h"
#include "storage/database.h"

using namespace matcn;

namespace {

Database MakeDataset(const std::string& name, double scale, bool* ok) {
  *ok = true;
  if (name == "imdb") return MakeImdb(42, scale);
  if (name == "mondial") return MakeMondial(43, scale);
  if (name == "wikipedia") return MakeWikipedia(44, scale);
  if (name == "dblp") return MakeDblp(45, scale);
  if (name == "tpch" || name == "tpc-h") return MakeTpch(46, scale);
  *ok = false;
  return Database{};
}

bool ParseEndpoint(const std::string& arg, std::string* host,
                   uint16_t* port) {
  const std::vector<std::string> parts = Split(arg, ":");
  if (parts.size() != 2) return false;
  *host = parts[0];
  *port = static_cast<uint16_t>(std::atoi(parts[1].c_str()));
  return *port != 0;
}

int RunMap(const FlagSet& flags) {
  const std::string dataset = flags.positional().size() > 1
                                  ? ToLower(flags.positional()[1])
                                  : "imdb";
  const double scale = flags.positional().size() > 2
                           ? std::atof(flags.positional()[2].c_str())
                           : 0.1;
  shard::ShardMapOptions options;
  options.num_shards = static_cast<uint32_t>(flags.GetInt("shards", 2));
  options.vnodes_per_shard =
      static_cast<uint32_t>(flags.GetInt("vnodes", 64));
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 0));
  if (options.num_shards == 0) {
    std::cerr << "--shards must be >= 1\n";
    return 2;
  }
  bool ok = false;
  Database db = MakeDataset(dataset, scale, &ok);
  if (!ok) {
    std::cerr << "unknown dataset: " << dataset
              << " (imdb|mondial|wikipedia|dblp|tpch)\n";
    return 2;
  }
  const shard::ShardMap map = shard::ShardMap::Build(db.schema(), options);
  const std::string text = map.Serialize();
  const std::string out_path = flags.GetString("out", "");
  if (out_path.empty()) {
    std::cout << text;
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot write " << out_path << "\n";
      return 1;
    }
    out << text;
    std::cout << "wrote " << out_path << " (" << map.num_relations()
              << " relations over " << map.num_shards() << " shards)\n";
  }
  // Occupancy summary on stderr so the map itself stays pipeable.
  for (uint32_t s = 0; s < map.num_shards(); ++s) {
    std::cerr << "shard " << s << ":";
    for (const RelationId r : map.RelationsOf(s)) {
      std::cerr << " " << map.relation_name(r);
    }
    std::cerr << "\n";
  }
  return 0;
}

// One raw HEARTBEAT round-trip. net::Client has no heartbeat call — the
// probe is a coordinator-internal frame — so speak the wire directly.
Result<net::HeartbeatAck> ProbeHeartbeat(const std::string& host,
                                         uint16_t port, int64_t* rtt_us) {
  Result<net::ScopedFd> fd = net::ConnectTcp(host, port, 3'000);
  MATCN_RETURN_IF_ERROR(fd.status());
  MATCN_RETURN_IF_ERROR(net::SetIoTimeout(fd->get(), 3'000));
  const auto start = std::chrono::steady_clock::now();
  net::Heartbeat probe;
  probe.send_us = 1;  // opaque; echoed back, not interpreted
  net::WireWriter writer;
  net::Encode(probe, &writer);
  std::string frame;
  net::AppendFrame(&frame, net::FrameType::kHeartbeat, /*request_id=*/1,
                   writer.buffer());
  MATCN_RETURN_IF_ERROR(net::WriteAll(fd->get(), frame));
  std::string header_bytes;
  MATCN_RETURN_IF_ERROR(
      net::ReadExactly(fd->get(), net::kFrameHeaderBytes, &header_bytes));
  net::FrameHeader header;
  if (net::ParseFrameHeader(header_bytes, &header) != net::HeaderParse::kOk) {
    return Status::IOError("bad frame header");
  }
  std::string payload;
  MATCN_RETURN_IF_ERROR(
      net::ReadExactly(fd->get(), header.payload_len, &payload));
  *rtt_us = std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count();
  if (header.type == net::FrameType::kError) {
    net::ErrorPayload error;
    if (!net::Decode(payload, &error)) {
      return Status::IOError("undecodable ERROR frame");
    }
    return net::WireCodeToStatus(error.code, error.message);
  }
  if (header.type != net::FrameType::kHeartbeatAck) {
    return Status::IOError("unexpected frame type");
  }
  net::HeartbeatAck ack;
  if (!net::Decode(payload, &ack)) {
    return Status::IOError("undecodable HEARTBEAT_ACK");
  }
  return ack;
}

int RunHealth(const FlagSet& flags) {
  if (flags.positional().size() < 2) {
    std::cerr << "usage: matcn_shardctl health HOST:PORT [HOST:PORT ...]\n";
    return 2;
  }
  int failures = 0;
  for (size_t i = 1; i < flags.positional().size(); ++i) {
    const std::string& endpoint = flags.positional()[i];
    std::string host;
    uint16_t port = 0;
    if (!ParseEndpoint(endpoint, &host, &port)) {
      std::cerr << endpoint << ": want HOST:PORT\n";
      ++failures;
      continue;
    }
    int64_t rtt_us = 0;
    Result<net::HeartbeatAck> ack = ProbeHeartbeat(host, port, &rtt_us);
    if (!ack.ok()) {
      std::cout << endpoint << ": DOWN (" << ack.status().ToString()
                << ")\n";
      ++failures;
      continue;
    }
    std::cout << endpoint << ": shard " << ack->shard_id << " healthy, index v"
              << ack->index_version << ", " << ack->queries_in_flight
              << " in flight, rtt " << rtt_us << " us\n";
  }
  return failures == 0 ? 0 : 1;
}

int RunStats(const FlagSet& flags) {
  if (flags.positional().size() < 2) {
    std::cerr << "usage: matcn_shardctl stats HOST:PORT [HOST:PORT ...]\n";
    return 2;
  }
  int failures = 0;
  for (size_t i = 1; i < flags.positional().size(); ++i) {
    const std::string& endpoint = flags.positional()[i];
    std::string host;
    uint16_t port = 0;
    if (!ParseEndpoint(endpoint, &host, &port)) {
      std::cerr << endpoint << ": want HOST:PORT\n";
      ++failures;
      continue;
    }
    auto client = net::Client::Connect(host, port);
    if (!client.ok()) {
      std::cout << endpoint << ": DOWN (" << client.status().ToString()
                << ")\n";
      ++failures;
      continue;
    }
    Result<net::StatsPayload> stats = client->Stats();
    if (!stats.ok()) {
      std::cout << endpoint << ": stats failed ("
                << stats.status().ToString() << ")\n";
      ++failures;
      continue;
    }
    std::cout << endpoint << ": completed=" << stats->completed
              << " rejected=" << stats->rejected
              << " degraded=" << stats->degraded
              << " in_flight=" << stats->queries_in_flight
              << " index_version=" << stats->index_version
              << " p99_us=" << stats->p99_us;
    if (stats->shards_total > 0) {
      std::cout << " | coordinator: shards=" << stats->shards_healthy << "/"
                << stats->shards_total
                << " scatters=" << stats->shard_scatters
                << " scatter_errors=" << stats->shard_scatter_errors
                << " degraded_batches=" << stats->shard_degraded_batches
                << " heartbeats=" << stats->shard_heartbeats
                << " reconnects=" << stats->shard_reconnects
                << " inserts_routed=" << stats->shard_inserts_routed;
    }
    std::cout << "\n";
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags(argc, argv);
  if (flags.positional().empty()) {
    std::cerr << "usage: matcn_shardctl map|health|stats ...\n";
    return 2;
  }
  for (const std::string& error : flags.errors()) {
    std::cerr << "flag error: " << error << "\n";
    return 2;
  }
  const std::string command = ToLower(flags.positional()[0]);
  if (command == "map") return RunMap(flags);
  if (command == "health") return RunHealth(flags);
  if (command == "stats") return RunStats(flags);
  std::cerr << "unknown command '" << command << "' (map|health|stats)\n";
  return 2;
}
