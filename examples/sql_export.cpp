// Exports the candidate networks of a keyword query as SQL, the form an
// R-KwS system hands to its RDBMS — here over the Mondial-style dataset
// with its 28-relation schema.
//
//   $ ./sql_export "lisbon economy" [max_cns]

#include <iostream>

#include "core/cn_to_sql.h"
#include "core/matcngen.h"
#include "datasets/generators.h"
#include "graph/schema_graph.h"
#include "indexing/term_index.h"

using namespace matcn;

int main(int argc, char** argv) {
  const std::string text = argc > 1 ? argv[1] : "lisbon economy";
  const size_t max_cns = argc > 2 ? std::atoi(argv[2]) : 4;

  Database db = MakeMondial(/*seed=*/43, /*scale=*/0.2);
  const SchemaGraph schema_graph = SchemaGraph::Build(db.schema());
  const TermIndex index = TermIndex::Build(db);

  Result<KeywordQuery> query = KeywordQuery::Parse(text);
  if (!query.ok()) {
    std::cerr << "bad query: " << query.status().ToString() << "\n";
    return 1;
  }

  MatCnGen generator(&schema_graph);
  GenerationResult result = generator.Generate(*query, index);
  std::cout << "-- Query " << query->ToString() << " over Mondial ("
            << db.num_relations() << " relations, "
            << db.schema().foreign_keys().size() << " RICs)\n"
            << "-- " << result.matches.size() << " query matches, "
            << result.cns.size() << " candidate networks\n";
  if (result.cns.empty()) {
    std::cout << "-- no candidate network: some keyword does not occur in "
                 "the database\n";
    return 0;
  }
  for (size_t i = 0; i < result.cns.size() && i < max_cns; ++i) {
    std::cout << "\n-- CN " << (i + 1) << ": "
              << result.cns[i].ToString(db.schema(), *query) << "\n"
              << CandidateNetworkToSql(result.cns[i], db.schema(), *query)
              << "\n";
  }
  if (result.cns.size() > max_cns) {
    std::cout << "\n-- (" << (result.cns.size() - max_cns)
              << " more CNs suppressed; pass a larger max_cns)\n";
  }
  return 0;
}
