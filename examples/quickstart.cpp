// Quickstart: build a small movie database, run the full MatCNGen
// pipeline on the paper's running example query, and print the candidate
// networks, their SQL, and the ranked answers.
//
//   $ ./quickstart [keyword query]          (default: the paper's query)

#include <iostream>

#include "core/cn_to_sql.h"
#include "core/matcngen.h"
#include "eval/skyline_ranker.h"
#include "graph/schema_graph.h"
#include "indexing/term_index.h"
#include "storage/database.h"

using namespace matcn;

namespace {

/// A miniature IMDb-style database (paper Figure 3's schema).
Database BuildMovieDatabase() {
  Database db;
  auto mk = [&](const char* name, std::vector<Attribute> attrs) {
    auto r = db.CreateRelation(RelationSchema(name, std::move(attrs)));
    if (!r.ok()) std::abort();
  };
  auto pk = [](const char* n) {
    return Attribute{n, ValueType::kInt, true, false};
  };
  auto fk = [](const char* n) {
    return Attribute{n, ValueType::kInt, false, false};
  };
  auto text = [](const char* n) {
    return Attribute{n, ValueType::kText, false, true};
  };

  mk("PER", {pk("id"), text("name")});
  mk("MOV", {pk("id"), text("title")});
  mk("CHAR", {pk("id"), text("name")});
  mk("ROLE", {pk("id"), text("name")});
  mk("CAST", {pk("id"), fk("mid"), fk("pid"), fk("chid"), fk("rid"),
              text("note")});
  for (const auto& [from, attr, to] :
       std::vector<std::tuple<const char*, const char*, const char*>>{
           {"CAST", "mid", "MOV"},
           {"CAST", "pid", "PER"},
           {"CAST", "chid", "CHAR"},
           {"CAST", "rid", "ROLE"}}) {
    if (!db.AddForeignKey({from, attr, to, "id"}).ok()) std::abort();
  }

  auto ins = [&](const char* rel, Tuple t) {
    if (!db.Insert(rel, std::move(t)).ok()) std::abort();
  };
  ins("PER", {Value(int64_t{1}), Value("Denzel Washington")});
  ins("PER", {Value(int64_t{2}), Value("Russell Crowe")});
  ins("PER", {Value(int64_t{3}), Value("Ridley Scott")});
  ins("MOV", {Value(int64_t{1}), Value("American Gangster")});
  ins("MOV", {Value(int64_t{2}), Value("Gladiator")});
  ins("CHAR", {Value(int64_t{1}), Value("Frank Lucas")});
  ins("CHAR", {Value(int64_t{2}), Value("Richie Roberts")});
  ins("CHAR", {Value(int64_t{3}), Value("Maximus")});
  ins("ROLE", {Value(int64_t{1}), Value("actor")});
  ins("ROLE", {Value(int64_t{2}), Value("director")});
  ins("CAST", {Value(int64_t{1}), Value(int64_t{1}), Value(int64_t{1}),
               Value(int64_t{1}), Value(int64_t{1}), Value("lead")});
  ins("CAST", {Value(int64_t{2}), Value(int64_t{1}), Value(int64_t{2}),
               Value(int64_t{2}), Value(int64_t{1}), Value("lead")});
  ins("CAST", {Value(int64_t{3}), Value(int64_t{1}), Value(int64_t{3}),
               Value(int64_t{1}), Value(int64_t{2}), Value("")});
  ins("CAST", {Value(int64_t{4}), Value(int64_t{2}), Value(int64_t{2}),
               Value(int64_t{3}), Value(int64_t{1}), Value("")});
  return db;
}

std::string RenderTuple(const Database& db, TupleId id) {
  const Relation& rel = db.relation(id.relation());
  std::string out = rel.schema().name() + "(";
  const Tuple& tuple = rel.tuple(id.row());
  for (size_t a = 0; a < tuple.size(); ++a) {
    if (a > 0) out += ", ";
    out += tuple[a].ToString();
  }
  return out + ")";
}

}  // namespace

int main(int argc, char** argv) {
  std::string text = "denzel washington gangster";
  if (argc > 1) {
    text.clear();
    for (int i = 1; i < argc; ++i) {
      if (i > 1) text += " ";
      text += argv[i];
    }
  }

  Database db = BuildMovieDatabase();
  const SchemaGraph schema_graph = SchemaGraph::Build(db.schema());
  const TermIndex index = TermIndex::Build(db);

  Result<KeywordQuery> query = KeywordQuery::Parse(text);
  if (!query.ok()) {
    std::cerr << "bad query: " << query.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Query: " << query->ToString() << "\n\n";

  // Step 1-3: tuple-sets, query matches, candidate networks.
  MatCnGen generator(&schema_graph);
  GenerationResult result = generator.Generate(*query, index);
  std::cout << result.tuple_sets.size() << " tuple-sets, "
            << result.matches.size() << " query matches, "
            << result.cns.size() << " candidate networks:\n";
  for (const CandidateNetwork& cn : result.cns) {
    std::cout << "  " << cn.ToString(db.schema(), *query) << "\n";
  }

  if (!result.cns.empty()) {
    std::cout << "\nSQL for the first CN:\n"
              << CandidateNetworkToSql(result.cns[0], db.schema(), *query)
              << "\n";
  }

  // Step 4: evaluate with Skyline-Sweeping and print the answers.
  EvalContext context;
  context.db = &db;
  context.schema_graph = &schema_graph;
  context.index = &index;
  context.query = &*query;
  context.tuple_sets = &result.tuple_sets;
  context.cns = &result.cns;
  RankerOptions options;
  options.top_k = 10;
  SkylineSweepRanker ranker;
  std::vector<Jnt> answers = ranker.TopK(context, options);

  std::cout << "\nTop answers:\n";
  for (size_t i = 0; i < answers.size(); ++i) {
    std::cout << "  #" << (i + 1) << " (score "
              << static_cast<int>(answers[i].score * 100) / 100.0 << "): ";
    for (size_t t = 0; t < answers[i].tuples.size(); ++t) {
      if (t > 0) std::cout << "  ⋈  ";
      std::cout << RenderTuple(db, answers[i].tuples[t]);
    }
    std::cout << "\n";
  }
  return 0;
}
