// Keyword search over the synthetic IMDb dataset: end-to-end demo of the
// memory-based MatCNGen pipeline plus top-k evaluation, with per-phase
// timing — the workload the paper's introduction motivates.
//
//   $ ./movie_search "denzel washington gangster" [top_k]

#include <iostream>

#include "common/timer.h"
#include "core/matcngen.h"
#include "datasets/generators.h"
#include "eval/hybrid_ranker.h"
#include "graph/schema_graph.h"
#include "indexing/term_index.h"

using namespace matcn;

namespace {

std::string RenderTuple(const Database& db, TupleId id) {
  const Relation& rel = db.relation(id.relation());
  const RelationSchema& schema = rel.schema();
  std::string out = schema.name() + "[";
  const Tuple& tuple = rel.tuple(id.row());
  bool first = true;
  for (size_t a = 0; a < tuple.size(); ++a) {
    if (schema.attribute(a).type != ValueType::kText) continue;
    if (tuple[a].AsText().empty()) continue;
    if (!first) out += " | ";
    out += tuple[a].AsText();
    first = false;
  }
  return out + "]";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string text =
      argc > 1 ? argv[1] : "denzel washington gangster";
  const size_t top_k = argc > 2 ? std::atoi(argv[2]) : 5;

  std::cout << "Building synthetic IMDb...\n";
  Stopwatch build_watch;
  Database db = MakeImdb(/*seed=*/42, /*scale=*/0.3);
  const SchemaGraph schema_graph = SchemaGraph::Build(db.schema());
  std::cout << "  " << db.TotalTuples() << " tuples in "
            << db.num_relations() << " relations ("
            << build_watch.ElapsedMillis() << " ms)\n";

  Stopwatch index_watch;
  const TermIndex index = TermIndex::Build(db);
  std::cout << "  Term Index: " << index.num_terms() << " terms ("
            << index_watch.ElapsedMillis() << " ms, one-off preprocessing)\n";

  Result<KeywordQuery> query = KeywordQuery::Parse(text);
  if (!query.ok()) {
    std::cerr << "bad query: " << query.status().ToString() << "\n";
    return 1;
  }

  MatCnGen generator(&schema_graph);
  GenerationResult result = generator.Generate(*query, index);
  std::cout << "\nQuery " << query->ToString() << ": "
            << result.tuple_sets.size() << " tuple-sets -> "
            << result.matches.size() << " matches -> " << result.cns.size()
            << " CNs\n  (TS " << result.stats.ts_millis << " ms, QMGen "
            << result.stats.match_millis << " ms, MatchCN "
            << result.stats.cn_millis << " ms)\n";

  EvalContext context;
  context.db = &db;
  context.schema_graph = &schema_graph;
  context.index = &index;
  context.query = &*query;
  context.tuple_sets = &result.tuple_sets;
  context.cns = &result.cns;
  RankerOptions options;
  options.top_k = top_k;

  Stopwatch eval_watch;
  HybridRanker ranker;
  std::vector<Jnt> answers = ranker.TopK(context, options);
  std::cout << "\nTop-" << top_k << " answers ("
            << eval_watch.ElapsedMillis() << " ms, Hybrid evaluator):\n";
  if (answers.empty()) std::cout << "  (no results)\n";
  for (size_t i = 0; i < answers.size(); ++i) {
    std::cout << "  #" << (i + 1) << "  ";
    for (size_t t = 0; t < answers[i].tuples.size(); ++t) {
      if (t > 0) std::cout << " -- ";
      std::cout << RenderTuple(db, answers[i].tuples[t]);
    }
    std::cout << "\n";
  }
  return 0;
}
