// Demonstrates the paper's scalability headline (Figure 11): as keyword
// count grows, CNGen's exhaustive expansion explodes while MatCNGen keeps
// generating CNs in milliseconds.
//
//   $ ./scalability_demo [max_keywords]

#include <iostream>

#include "baseline/cngen.h"
#include "common/timer.h"
#include "core/matcngen.h"
#include "datasets/generators.h"
#include "datasets/workload.h"
#include "graph/schema_graph.h"
#include "indexing/term_index.h"

using namespace matcn;

int main(int argc, char** argv) {
  const size_t max_k = argc > 1 ? std::atoi(argv[1]) : 8;

  Database db = MakeDblp(/*seed=*/45, /*scale=*/0.15);
  const SchemaGraph schema_graph = SchemaGraph::Build(db.schema());
  const TermIndex index = TermIndex::Build(db);
  WorkloadGenerator wgen(&db, &schema_graph, &index);

  MatCnGenOptions options;
  options.t_max = 5;
  options.max_matches = 2000;
  MatCnGen gen(&schema_graph, options);

  std::cout << "DBLP-style dataset, " << db.TotalTuples()
            << " tuples. 5 random queries per K.\n\n"
            << "K  MatCNGen(ms)  CNGen(ms)   CNGen status\n";
  for (size_t k = 1; k <= max_k; ++k) {
    std::vector<KeywordQuery> queries = wgen.RandomQueries(5, k, 123 + k);
    double mat_ms = 0, base_ms = 0;
    size_t failures = 0;
    for (const KeywordQuery& q : queries) {
      Stopwatch watch;
      GenerationResult mat = gen.Generate(q, index);
      mat_ms += watch.ElapsedMillis();

      TupleSetGraph ts_graph(&schema_graph, &mat.tuple_sets);
      CnGenOptions base_options;
      base_options.t_max = 5;
      base_options.max_partial_trees = 100'000;
      watch.Reset();
      CnGenResult base = CnGen(q, ts_graph, base_options);
      base_ms += watch.ElapsedMillis();
      if (base.failed) ++failures;
    }
    const double n = static_cast<double>(queries.size());
    std::cout << k << "  " << mat_ms / n << "  \t" << base_ms / n << "  \t";
    if (failures == queries.size()) {
      std::cout << "FAILED on every query (budget exhausted)";
    } else if (failures > 0) {
      std::cout << failures << "/" << queries.size() << " failed";
    } else {
      std::cout << "ok";
    }
    std::cout << "\n";
  }
  std::cout << "\nThe budget failure emulates the memory-exhaustion "
               "crashes the paper reports for CNGen\nbeyond 7 keywords; "
               "MatCNGen completes every query.\n";
  return 0;
}
