// Interactive keyword-search shell over the synthetic datasets — the kind
// of front-end an R-KwS deployment would expose. Reads commands from
// stdin; designed to also work non-interactively (pipe a script in).
// Queries are routed through the serving layer (QueryService), so
// repeated queries hit the result cache and every query honors the
// configured deadline.
//
//   $ ./matcn_shell [dataset] [scale] [flags]     (default: imdb 0.2)
//
// Flags:
//   --threads N      worker threads in the query service (default: cores)
//   --cn-threads N   per-query MatchCN workers           (default 1)
//   --tmax N         CN size bound T_max                 (default 10)
//   --arena-kb N     per-worker SingleCn arena chunk KiB (default 64)
//   --cache-mb N     result-cache budget in MiB; 0 off   (default 64)
//   --deadline-ms N  per-query deadline; 0 = none        (default 0)
//   --compact-threshold N  live-index delta entries per term before
//                    compaction folds them               (default 64)
//
// Commands:
//   <keywords...>        run a keyword query, print top answers
//   .cns <keywords...>   show the generated candidate networks only
//   .sql <keywords...>   print the CNs as SQL
//   .matches <keywords>  show tuple-sets and query matches
//   .trace <keywords>    run the query and print its span waterfall
//   .insert REL v1|v2|…  append a tuple; new terms are searchable at once
//   .schema              print relations and foreign keys
//   .stats               dataset / index / service statistics
//   .topk N              set the answer count (default 5)
//   .quit

#include <algorithm>
#include <iostream>
#include <optional>
#include <sstream>

#include "common/flags.h"
#include "common/strings.h"
#include "core/cn_to_sql.h"
#include "core/matcngen.h"
#include "datasets/generators.h"
#include "eval/skyline_ranker.h"
#include "graph/schema_graph.h"
#include "indexing/term_index.h"
#include "liveindex/concurrent_term_index.h"
#include "liveindex/index_writer.h"
#include "obs/trace.h"
#include "service/query_service.h"

using namespace matcn;

namespace {

std::string RenderTuple(const Database& db, TupleId id) {
  const Relation& rel = db.relation(id.relation());
  const RelationSchema& schema = rel.schema();
  std::string out = schema.name() + "[";
  bool first = true;
  const Tuple& tuple = rel.tuple(id.row());
  for (size_t a = 0; a < tuple.size(); ++a) {
    if (schema.attribute(a).type != ValueType::kText) continue;
    if (tuple[a].AsText().empty()) continue;
    if (!first) out += " | ";
    out += tuple[a].AsText();
    first = false;
  }
  return out + "]";
}

struct Shell {
  Database db;
  SchemaGraph schema_graph;
  // Dual index: the live ConcurrentTermIndex serves queries (and absorbs
  // .insert), while the legacy TermIndex is kept in lockstep because
  // EvalContext's ranking statistics read it.
  TermIndex index;
  std::unique_ptr<liveindex::ConcurrentTermIndex> live_index;
  std::unique_ptr<liveindex::IndexWriter> writer;
  std::unique_ptr<QueryService> service;
  size_t top_k = 5;

  Result<QueryResponse> Generate(const std::string& text,
                                 bool trace = false) {
    Result<KeywordQuery> query = KeywordQuery::Parse(text);
    if (!query.ok()) return query.status();
    QueryRequestOptions request_options;
    request_options.trace = trace;
    return service->Query(*query, request_options);
  }

  /// Degraded or cached answers are called out so the user can tell a
  /// complete result from a truncated one.
  static void PrintResponseNote(const QueryResponse& response) {
    if (response.degraded) {
      std::cout << "note: degraded answer — " << response.degraded_reason
                << "\n";
    }
  }

  void RunQuery(const std::string& text) {
    Result<QueryResponse> gen = Generate(text);
    if (!gen.ok()) {
      std::cout << "error: " << gen.status().ToString() << "\n";
      return;
    }
    PrintResponseNote(*gen);
    // Evaluate against the service's normalized query — cached results
    // are keyed to its keyword order.
    EvalContext context{&db,          &schema_graph,
                        &index,       &gen->query,
                        &gen->result->tuple_sets, &gen->result->cns};
    RankerOptions options;
    options.top_k = top_k;
    SkylineSweepRanker ranker;
    std::vector<Jnt> answers = ranker.TopK(context, options);
    std::cout << gen->result->cns.size() << " CNs, top " << answers.size()
              << " answers" << (gen->cache_hit ? " (cached CNs)" : "")
              << ":\n";
    for (size_t i = 0; i < answers.size(); ++i) {
      std::cout << "  #" << (i + 1) << "  ";
      for (size_t t = 0; t < answers[i].tuples.size(); ++t) {
        if (t > 0) std::cout << " -- ";
        std::cout << RenderTuple(db, answers[i].tuples[t]);
      }
      std::cout << "\n";
    }
  }

  void ShowCns(const std::string& text, bool as_sql) {
    Result<QueryResponse> gen = Generate(text);
    if (!gen.ok()) {
      std::cout << "error: " << gen.status().ToString() << "\n";
      return;
    }
    PrintResponseNote(*gen);
    for (const CandidateNetwork& cn : gen->result->cns) {
      if (as_sql) {
        std::cout << CandidateNetworkToSql(cn, db.schema(), gen->query)
                  << "\n\n";
      } else {
        std::cout << "  " << cn.ToString(db.schema(), gen->query) << "\n";
      }
    }
  }

  void ShowMatches(const std::string& text) {
    Result<QueryResponse> gen = Generate(text);
    if (!gen.ok()) {
      std::cout << "error: " << gen.status().ToString() << "\n";
      return;
    }
    PrintResponseNote(*gen);
    const GenerationResult& result = *gen->result;
    std::cout << "tuple-sets (R_Q):\n";
    for (const TupleSet& ts : result.tuple_sets) {
      std::cout << "  " << TupleSetName(ts, db.schema(), gen->query) << "  ("
                << ts.tuples.size() << " tuples)\n";
    }
    std::cout << "query matches (M_Q):\n";
    for (const QueryMatch& match : result.matches) {
      std::cout << "  {";
      for (size_t i = 0; i < match.size(); ++i) {
        if (i > 0) std::cout << ", ";
        std::cout << TupleSetName(result.tuple_sets[match[i]], db.schema(),
                                  gen->query);
      }
      std::cout << "}\n";
    }
  }

  // `.trace <keywords>` — run the query traced and show where the time
  // went: admission wait, cache lookup, TSFind, QMGen, MatchCN workers.
  void ShowTrace(const std::string& text) {
    Result<QueryResponse> gen = Generate(text, /*trace=*/true);
    if (!gen.ok()) {
      std::cout << "error: " << gen.status().ToString() << "\n";
      return;
    }
    PrintResponseNote(*gen);
    std::cout << gen->result->cns.size() << " CNs in " << gen->latency_ms
              << " ms" << (gen->cache_hit ? " (cache hit)" : "") << "\n";
    if (gen->trace == nullptr) {
      std::cout << "  (no trace captured)\n";
      return;
    }
    std::cout << obs::RenderWaterfall(gen->trace->Snapshot());
  }

  // `.insert REL v1|v2|...` — appends through the IndexWriter (database +
  // live index + selective cache invalidation), then replays the tuple
  // into the legacy TermIndex so ranking statistics stay consistent.
  void DoInsert(const std::string& text) {
    std::istringstream in(text);
    std::string rel_name;
    in >> rel_name;
    std::string rest;
    std::getline(in, rest);
    const std::optional<RelationId> rel =
        db.schema().RelationIdByName(rel_name);
    if (!rel.has_value()) {
      std::cout << "error: unknown relation '" << rel_name << "'\n";
      return;
    }
    // Split on '|' preserving empty fields (Split() would drop them).
    std::vector<std::string> fields;
    std::string field;
    std::istringstream values(std::string(Trim(rest)));
    while (std::getline(values, field, '|')) {
      fields.push_back(std::string(Trim(field)));
    }
    const RelationSchema& rs = db.relation(*rel).schema();
    if (fields.size() != rs.num_attributes()) {
      std::cout << "error: " << rs.name() << " has " << rs.num_attributes()
                << " attributes, got " << fields.size()
                << " values (separate with '|')\n";
      return;
    }
    Tuple tuple;
    tuple.reserve(fields.size());
    for (size_t a = 0; a < fields.size(); ++a) {
      if (rs.attribute(a).type == ValueType::kInt) {
        tuple.emplace_back(
            static_cast<int64_t>(std::atoll(fields[a].c_str())));
      } else {
        tuple.emplace_back(std::move(fields[a]));
      }
    }
    Result<liveindex::IndexWriter::InsertOutcome> outcome =
        writer->Insert(*rel, std::move(tuple));
    if (!outcome.ok()) {
      std::cout << "error: " << outcome.status().ToString() << "\n";
      return;
    }
    index.ApplyInsert(db, outcome->id);
    std::cout << "  inserted " << rs.name() << " row " << outcome->id.row()
              << " — index version " << outcome->version << "\n";
  }

  void ShowSchema() const {
    for (RelationId r = 0; r < db.num_relations(); ++r) {
      const RelationSchema& rs = db.relation(r).schema();
      std::cout << "  " << rs.name() << "(";
      for (size_t a = 0; a < rs.num_attributes(); ++a) {
        if (a > 0) std::cout << ", ";
        std::cout << rs.attribute(a).name;
      }
      std::cout << ")  [" << db.relation(r).num_tuples() << " rows]\n";
    }
    for (const ForeignKey& fk : db.schema().foreign_keys()) {
      std::cout << "  " << fk.from_relation << "." << fk.from_attribute
                << " -> " << fk.to_relation << "." << fk.to_attribute
                << "\n";
    }
  }

  void ShowStats() const {
    std::cout << "  relations: " << db.num_relations() << "\n  tuples: "
              << db.TotalTuples() << "\n  RICs: "
              << db.schema().foreign_keys().size() << "\n  indexed terms: "
              << index.num_terms() << "\n  posting bytes: "
              << index.PostingMemoryBytes() << "\n  live index: version "
              << live_index->version() << ", delta bytes "
              << live_index->delta_bytes() << ", compactions "
              << live_index->compactions() << "\n  service: "
              << service->Stats().ToString() << "\n";
  }
};

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags(argc, argv);
  const std::string name = flags.positional().empty()
                               ? "imdb"
                               : ToLower(flags.positional()[0]);
  const double scale = flags.positional().size() > 1
                           ? std::atof(flags.positional()[1].c_str())
                           : 0.2;

  QueryServiceOptions service_options;
  service_options.num_threads =
      static_cast<unsigned>(flags.GetInt("threads", 0));
  service_options.gen.num_threads =
      static_cast<unsigned>(flags.GetInt("cn-threads", 1));
  service_options.gen.t_max = static_cast<int>(flags.GetInt("tmax", 10));
  service_options.gen.arena_chunk_kb = static_cast<size_t>(
      std::max<int64_t>(1, flags.GetInt("arena-kb", 64)));
  service_options.cache_bytes =
      static_cast<size_t>(flags.GetInt("cache-mb", 64)) << 20;
  service_options.default_deadline_ms = flags.GetInt("deadline-ms", 0);
  const int64_t compact_threshold = flags.GetInt("compact-threshold", 64);
  for (const std::string& unknown : flags.UnknownFlags()) {
    std::cerr << "unknown flag --" << unknown
              << " (have --threads --cn-threads --tmax --arena-kb "
                 "--cache-mb --deadline-ms --compact-threshold)\n";
    return 2;
  }

  Shell shell;
  if (name == "imdb") {
    shell.db = MakeImdb(42, scale);
  } else if (name == "mondial") {
    shell.db = MakeMondial(43, scale);
  } else if (name == "wikipedia") {
    shell.db = MakeWikipedia(44, scale);
  } else if (name == "dblp") {
    shell.db = MakeDblp(45, scale);
  } else if (name == "tpch" || name == "tpc-h") {
    shell.db = MakeTpch(46, scale);
  } else {
    std::cerr << "unknown dataset: " << name
              << " (imdb|mondial|wikipedia|dblp|tpch)\n";
    return 1;
  }
  shell.schema_graph = SchemaGraph::Build(shell.db.schema());
  shell.index = TermIndex::Build(shell.db);
  liveindex::LiveIndexOptions live_options;
  live_options.compact_threshold =
      static_cast<size_t>(std::max<int64_t>(1, compact_threshold));
  shell.live_index = std::make_unique<liveindex::ConcurrentTermIndex>(
      shell.index, live_options);
  shell.writer = std::make_unique<liveindex::IndexWriter>(
      &shell.db, shell.live_index.get());
  shell.service = std::make_unique<QueryService>(&shell.schema_graph,
                                                 shell.live_index.get(),
                                                 service_options);
  shell.service->ConnectWriter(shell.writer.get());

  std::cout << "matcn shell — dataset " << name << " ("
            << shell.db.TotalTuples()
            << " tuples). Type keywords, or .help.\n";
  std::string line;
  while (std::cout << "matcn> " << std::flush, std::getline(std::cin, line)) {
    const std::string trimmed(Trim(line));
    if (trimmed.empty()) continue;
    if (trimmed == ".quit" || trimmed == ".exit") break;
    if (trimmed == ".help") {
      std::cout << "  <keywords> | .cns <kw> | .sql <kw> | .matches <kw> | "
                   ".trace <kw> | .insert REL v1|v2|... | .schema | .stats | "
                   ".topk N | .quit\n";
      continue;
    }
    if (trimmed == ".schema") {
      shell.ShowSchema();
      continue;
    }
    if (trimmed == ".stats") {
      shell.ShowStats();
      continue;
    }
    if (trimmed.rfind(".topk ", 0) == 0) {
      shell.top_k = std::max(1, std::atoi(trimmed.c_str() + 6));
      std::cout << "  top_k = " << shell.top_k << "\n";
      continue;
    }
    if (trimmed.rfind(".cns ", 0) == 0) {
      shell.ShowCns(trimmed.substr(5), /*as_sql=*/false);
      continue;
    }
    if (trimmed.rfind(".sql ", 0) == 0) {
      shell.ShowCns(trimmed.substr(5), /*as_sql=*/true);
      continue;
    }
    if (trimmed.rfind(".matches ", 0) == 0) {
      shell.ShowMatches(trimmed.substr(9));
      continue;
    }
    if (trimmed.rfind(".trace ", 0) == 0) {
      shell.ShowTrace(trimmed.substr(7));
      continue;
    }
    if (trimmed.rfind(".insert ", 0) == 0) {
      shell.DoInsert(trimmed.substr(8));
      continue;
    }
    if (trimmed[0] == '.') {
      std::cout << "unknown command (try .help)\n";
      continue;
    }
    shell.RunQuery(trimmed);
  }
  return 0;
}
