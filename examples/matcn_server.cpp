// Long-running MatCN network server: builds an in-memory dataset, wraps
// it in a QueryService, and serves the binary wire protocol over TCP
// until SIGTERM/SIGINT triggers a graceful drain (stop accepting, finish
// or cancel in-flight queries within --drain-ms, then exit).
//
//   $ ./matcn_server [dataset] [scale] [flags]
//
// Flags:
//   --port N          listen port; 0 = ephemeral          (default 7433)
//   --host ADDR       bind address                (default "127.0.0.1")
//   --threads N       QueryService workers; 0 = hw        (default 0)
//   --cn-threads N    per-query MatchCN workers           (default 1)
//   --queue N         admission-control queue bound       (default 256)
//   --cache-mb N      result-cache budget; 0 disables     (default 64)
//   --deadline-ms N   default per-query deadline; 0 none  (default 0)
//   --tmax N          default CN size bound T_max         (default 5)
//   --arena-kb N      initial per-worker SingleCn arena chunk (default 64)
//   --idle-ms N       per-connection idle timeout         (default 60000)
//   --drain-ms N      graceful-drain budget on SIGTERM    (default 5000)
//   --max-frame-kb N  request frame size limit            (default 1024)
//   --io-ms N         modeled per-miss backend latency    (default 0)
//   --compact-threshold N  live-index delta entries per term before
//                     background compaction folds them    (default 64)
//   --metrics-port N  Prometheus /metrics admin port; 0 = ephemeral,
//                     -1 disables                         (default -1)
//   --trace-sample-rate F  head-sample this fraction of queries for
//                     server-side tracing                 (default 0)
//   --slow-query-ms N queries slower than this log their span
//                     breakdown at WARN; 0 disables       (default 0)
//   --log-level S     debug|info|warn|error|off           (default info)
//   --log-json        structured logs as JSON instead of logfmt
//   --shards N        sharded deployment: N in-process shard workers
//                     (consistent-hash relation partition) behind a
//                     scatter/gather coordinator; 0 = unsharded (default 0)
//   --shard-map FILE  serve with an explicit shard-map file (see
//                     matcn_shardctl map) instead of hashing the schema
//   --smoke           start, self-query (incl. traced) + self-insert +
//                     metrics scrape via net::Client, drain, exit
//
// Query it with net::Client (see README "Network server" quickstart) or
// drive load with matcn_net_bench.

#include <algorithm>
#include <csignal>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <thread>

#include <sys/socket.h>

#include "common/flags.h"
#include "common/strings.h"
#include "simd/dispatch.h"
#include "obs/log.h"
#include "obs/prometheus.h"
#include "obs/trace.h"
#include "datasets/generators.h"
#include "graph/schema_graph.h"
#include "indexing/term_index.h"
#include "liveindex/concurrent_term_index.h"
#include "liveindex/index_writer.h"
#include "net/client.h"
#include "net/server.h"
#include "service/query_service.h"
#include "shard/coordinator.h"
#include "shard/local_cluster.h"
#include "shard/shard_map.h"

using namespace matcn;

namespace {

net::Server* g_server = nullptr;

// Only async-signal-safe work here: NotifyShutdown is a flag store plus
// an eventfd write.
void HandleSignal(int /*signum*/) {
  if (g_server != nullptr) g_server->NotifyShutdown();
}

Database MakeDataset(const std::string& name, double scale, bool* ok) {
  *ok = true;
  if (name == "imdb") return MakeImdb(42, scale);
  if (name == "mondial") return MakeMondial(43, scale);
  if (name == "wikipedia") return MakeWikipedia(44, scale);
  if (name == "dblp") return MakeDblp(45, scale);
  if (name == "tpch" || name == "tpc-h") return MakeTpch(46, scale);
  *ok = false;
  return Database{};
}

// Minimal HTTP/1.0 GET against the admin endpoint: one request, read to
// EOF (the server sends Connection: close).
Result<std::string> HttpGet(uint16_t port, const std::string& path) {
  Result<net::ScopedFd> fd = net::ConnectTcp("127.0.0.1", port, 5'000);
  MATCN_RETURN_IF_ERROR(fd.status());
  const std::string request =
      "GET " + path + " HTTP/1.0\r\nHost: localhost\r\n\r\n";
  MATCN_RETURN_IF_ERROR(net::WriteAll(fd->get(), request));
  std::string out;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd->get(), buf, sizeof(buf), 0);
    if (n > 0) {
      out.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) return out;
    if (errno == EINTR) continue;
    return Status::IOError("metrics recv failed");
  }
}

int RunSmokeMetrics(uint16_t metrics_port) {
  Result<std::string> page = HttpGet(metrics_port, "/metrics");
  if (!page.ok()) {
    std::cerr << "smoke: metrics scrape failed: " << page.status().ToString()
              << "\n";
    return 1;
  }
  if (page->find("200 OK") == std::string::npos) {
    std::cerr << "smoke: metrics endpoint did not answer 200\n";
    return 1;
  }
  const size_t body_at = page->find("\r\n\r\n");
  const std::string body =
      body_at == std::string::npos ? std::string() : page->substr(body_at + 4);
  if (const std::string error = obs::ValidateExposition(body);
      !error.empty()) {
    std::cerr << "smoke: malformed exposition: " << error << "\n";
    return 1;
  }
  for (const char* required :
       {"matcn_service_latency_seconds_bucket", "matcn_service_index_version",
        "matcn_service_completed", "matcn_server_connections_accepted"}) {
    if (body.find(required) == std::string::npos) {
      std::cerr << "smoke: metrics page is missing " << required << "\n";
      return 1;
    }
  }
  std::cout << "smoke: metrics page valid (" << body.size() << " bytes)\n";
  return 0;
}

int RunSmoke(uint16_t port) {
  auto client = net::Client::Connect("127.0.0.1", port);
  if (!client.ok()) {
    std::cerr << "smoke: connect failed: " << client.status().ToString()
              << "\n";
    return 1;
  }
  if (Status ping = client->Ping(); !ping.ok()) {
    std::cerr << "smoke: ping failed: " << ping.ToString() << "\n";
    return 1;
  }
  net::Client::QueryParams params;
  params.include_sql = true;
  auto result = client->Query({"denzel", "gangster"}, params);
  if (!result.ok()) {
    std::cerr << "smoke: query failed: " << result.status().ToString()
              << "\n";
    return 1;
  }
  std::cout << "smoke: query returned " << result->cns.size() << "/"
            << result->cns_total << " CNs in " << result->server_latency_us
            << " us\n";
  auto stats = client->Stats();
  if (!stats.ok()) {
    std::cerr << "smoke: stats failed: " << stats.status().ToString() << "\n";
    return 1;
  }
  std::cout << "smoke: server completed " << stats->completed
            << " queries, " << stats->connections_accepted
            << " connections\n";
  // Online update: append a PER tuple over the wire, then confirm the
  // index version advanced and the new term answers.
  std::vector<net::WireValue> values(2);
  values[0].tag = 0;
  values[0].int_value = 999'999;
  values[1].tag = 1;
  values[1].text_value = "Smoke Testperson";
  auto inserted = client->Insert("PER", std::move(values));
  if (!inserted.ok()) {
    std::cerr << "smoke: insert failed: " << inserted.status().ToString()
              << "\n";
    return 1;
  }
  std::cout << "smoke: insert acknowledged at index version "
            << inserted->index_version << " (relation " << inserted->relation
            << ", row " << inserted->row << ")\n";
  auto requery = client->Query({"testperson"});
  if (!requery.ok()) {
    std::cerr << "smoke: post-insert query failed: "
              << requery.status().ToString() << "\n";
    return 1;
  }
  if (requery->num_tuple_sets == 0) {
    std::cerr << "smoke: inserted term not searchable\n";
    return 1;
  }
  std::cout << "smoke: inserted term searchable (" << requery->num_tuple_sets
            << " tuple-sets)\n";
  // v4: ask for the span breakdown and print the waterfall — the same
  // view `matcn_ctl trace` gives operators.
  net::Client::QueryParams trace_params;
  trace_params.trace = true;
  // Fresh keywords so the trace shows the full pipeline, not a cache hit.
  auto traced = client->Query({"washington", "gangster"}, trace_params);
  if (!traced.ok()) {
    std::cerr << "smoke: traced query failed: " << traced.status().ToString()
              << "\n";
    return 1;
  }
  if (!traced->trace.has_value() || traced->trace->spans.empty()) {
    std::cerr << "smoke: traced query returned no TRACE frame\n";
    return 1;
  }
  std::cout << "smoke: traced query ("
            << traced->trace->spans.size() << " spans, total "
            << traced->trace->total_us << " us):\n"
            << obs::RenderWaterfall(net::ToTraceSnapshot(*traced->trace));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags(argc, argv);
  const std::string dataset = flags.positional().empty()
                                  ? "imdb"
                                  : ToLower(flags.positional()[0]);
  const double scale = flags.positional().size() > 1
                           ? std::atof(flags.positional()[1].c_str())
                           : 0.1;
  net::ServerOptions server_options;
  server_options.host = flags.GetString("host", "127.0.0.1");
  server_options.port = static_cast<uint16_t>(flags.GetInt("port", 7433));
  server_options.idle_timeout_ms = flags.GetInt("idle-ms", 60'000);
  server_options.drain_deadline_ms = flags.GetInt("drain-ms", 5'000);
  server_options.max_frame_bytes =
      static_cast<size_t>(flags.GetInt("max-frame-kb", 1024)) << 10;
  server_options.metrics_port =
      static_cast<int>(flags.GetInt("metrics-port", -1));

  QueryServiceOptions service_options;
  service_options.num_threads =
      static_cast<unsigned>(flags.GetInt("threads", 0));
  service_options.gen.num_threads =
      static_cast<unsigned>(flags.GetInt("cn-threads", 1));
  service_options.max_queue = static_cast<size_t>(flags.GetInt("queue", 256));
  service_options.cache_bytes =
      static_cast<size_t>(flags.GetInt("cache-mb", 64)) << 20;
  service_options.default_deadline_ms = flags.GetInt("deadline-ms", 0);
  service_options.gen.t_max = static_cast<int>(flags.GetInt("tmax", 5));
  service_options.gen.arena_chunk_kb = static_cast<size_t>(
      std::max<int64_t>(1, flags.GetInt("arena-kb", 64)));
  service_options.trace_sample_rate =
      flags.GetDouble("trace-sample-rate", 0.0);
  service_options.slow_query_ms = flags.GetInt("slow-query-ms", 0);
  const std::string log_level_name = flags.GetString("log-level", "info");
  obs::LogLevel log_level = obs::LogLevel::kInfo;
  if (!obs::ParseLogLevel(log_level_name, &log_level)) {
    std::cerr << "bad --log-level '" << log_level_name
              << "' (debug|info|warn|error|off)\n";
    return 2;
  }
  obs::Logger::Global().set_min_level(log_level);
  obs::Logger::Global().set_json(flags.Has("log-json"));
  const int64_t compact_threshold = flags.GetInt("compact-threshold", 64);
  const int64_t io_ms = flags.GetInt("io-ms", 0);
  const int64_t num_shards = flags.GetInt("shards", 0);
  const std::string shard_map_path = flags.GetString("shard-map", "");
  const bool sharded = num_shards > 0 || !shard_map_path.empty();
  // Unsharded: the modeled backend latency runs in this process's
  // workers. Sharded: it belongs on the shard workers (installed below
  // via the cluster's hook factory), not on the coordinator.
  if (io_ms > 0 && !sharded) {
    service_options.pre_execute_hook = [io_ms] {
      std::this_thread::sleep_for(std::chrono::milliseconds(io_ms));
    };
  }
  const bool smoke = flags.Has("smoke");

  for (const std::string& error : flags.errors()) {
    std::cerr << "flag error: " << error << "\n";
    return 2;
  }
  for (const std::string& unknown : flags.UnknownFlags()) {
    std::cerr << "unknown flag --" << unknown << "\n";
    return 2;
  }

  bool dataset_ok = false;
  Database db = MakeDataset(dataset, scale, &dataset_ok);
  if (!dataset_ok) {
    std::cerr << "unknown dataset: " << dataset
              << " (imdb|mondial|wikipedia|dblp|tpch)\n";
    return 2;
  }
  const SchemaGraph schema_graph = SchemaGraph::Build(db.schema());
  // One of two serving stacks behind the same net::Server:
  //  - unsharded: the live stack (ConcurrentTermIndex + IndexWriter);
  //  - sharded: N in-process shard workers behind a Coordinator, the
  //    coordinator service delegating its tuple-set stage to the scatter
  //    and the insert path routing to the owning shard.
  // Declaration order matters: destruction runs server -> router ->
  // service -> coordinator -> cluster, so the provider outlives the
  // service and the insert sink outlives the server.
  std::unique_ptr<liveindex::ConcurrentTermIndex> live_index;
  std::unique_ptr<liveindex::IndexWriter> writer;
  std::unique_ptr<shard::ShardMap> shard_map;
  std::unique_ptr<shard::LocalShardCluster> cluster;
  std::unique_ptr<shard::Coordinator> coordinator;
  std::unique_ptr<QueryService> service;
  std::unique_ptr<shard::ShardInsertRouter> router;
  liveindex::InsertSink* sink = nullptr;
  if (sharded) {
    if (!shard_map_path.empty()) {
      std::ifstream in(shard_map_path);
      if (!in) {
        std::cerr << "cannot read --shard-map " << shard_map_path << "\n";
        return 2;
      }
      std::ostringstream text;
      text << in.rdbuf();
      Result<shard::ShardMap> parsed = shard::ShardMap::Parse(text.str());
      if (!parsed.ok()) {
        std::cerr << "bad --shard-map: " << parsed.status().ToString()
                  << "\n";
        return 2;
      }
      if (num_shards > 0 &&
          parsed->num_shards() != static_cast<uint32_t>(num_shards)) {
        std::cerr << "--shards " << num_shards << " disagrees with map ("
                  << parsed->num_shards() << " shards)\n";
        return 2;
      }
      if (Status valid = parsed->Validate(db.schema()); !valid.ok()) {
        std::cerr << "--shard-map does not cover " << dataset << ": "
                  << valid.ToString() << "\n";
        return 2;
      }
      shard_map =
          std::make_unique<shard::ShardMap>(*std::move(parsed));
    } else {
      shard::ShardMapOptions map_options;
      map_options.num_shards = static_cast<uint32_t>(num_shards);
      shard_map = std::make_unique<shard::ShardMap>(
          shard::ShardMap::Build(db.schema(), map_options));
    }
    shard::LocalShardClusterOptions cluster_options;
    cluster_options.service = service_options;
    cluster_options.live.compact_threshold =
        static_cast<size_t>(std::max<int64_t>(1, compact_threshold));
    cluster_options.server.host = server_options.host;
    cluster_options.server.max_frame_bytes = server_options.max_frame_bytes;
    if (io_ms > 0) {
      cluster_options.pre_execute_hook_factory = [io_ms](uint32_t) {
        return [io_ms] {
          std::this_thread::sleep_for(std::chrono::milliseconds(io_ms));
        };
      };
    }
    cluster = std::make_unique<shard::LocalShardCluster>(
        [dataset, scale] {
          bool ok = false;
          return MakeDataset(dataset, scale, &ok);
        },
        shard_map.get(), cluster_options);
    if (Status started = cluster->Start(); !started.ok()) {
      std::cerr << "shard cluster start failed: " << started.ToString()
                << "\n";
      return 1;
    }
    coordinator = std::make_unique<shard::Coordinator>(shard_map.get(),
                                                       cluster->Endpoints());
    if (Status connected = coordinator->Connect(); !connected.ok()) {
      std::cerr << "coordinator connect failed: " << connected.ToString()
                << "\n";
      return 1;
    }
    service = std::make_unique<QueryService>(&schema_graph,
                                             coordinator.get(),
                                             service_options);
    router = std::make_unique<shard::ShardInsertRouter>(
        shard_map.get(), &db.schema(), coordinator.get());
    router->set_invalidation_hook(
        [svc = service.get()](const std::vector<std::string>& terms) {
          svc->InvalidateTerms(terms);
        });
    sink = router.get();
  } else {
    // Live serving stack: offline build seeds the concurrent index, the
    // writer owns all subsequent mutation, and the service invalidates
    // only the cache entries an insert actually touches.
    liveindex::LiveIndexOptions live_options;
    live_options.compact_threshold =
        static_cast<size_t>(std::max<int64_t>(1, compact_threshold));
    live_index = std::make_unique<liveindex::ConcurrentTermIndex>(
        TermIndex::Build(db), live_options);
    writer = std::make_unique<liveindex::IndexWriter>(&db, live_index.get());
    service = std::make_unique<QueryService>(&schema_graph, live_index.get(),
                                             service_options);
    service->ConnectWriter(writer.get());
    sink = writer.get();
  }

  // --smoke binds ephemeral ports so parallel CI runs never collide.
  if (smoke) {
    server_options.port = 0;
    server_options.metrics_port = 0;
  }
  net::Server server(service.get(), &db.schema(), sink, server_options);
  g_server = &server;
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);

  if (Status started = server.Start(); !started.ok()) {
    std::cerr << "server start failed: " << started.ToString() << "\n";
    return 1;
  }
  std::cout << "matcn_server listening on " << server_options.host << ":"
            << server.port() << " — " << dataset << " (" << db.TotalTuples()
            << " tuples), " << service->Stats().num_threads
            << " workers, T_max=" << service_options.gen.t_max
            << ", simd=" << simd::LevelName(simd::ActiveLevel());
  if (cluster != nullptr) {
    std::cout << ", " << cluster->num_shards() << " shards (ports";
    for (const shard::ShardEndpoint& ep : cluster->Endpoints()) {
      std::cout << " " << ep.port;
    }
    std::cout << ")";
  }
  std::cout << "\nsend SIGTERM for graceful drain\n";

  if (server.metrics_port() != 0) {
    std::cout << "metrics on http://" << server_options.host << ":"
              << server.metrics_port() << "/metrics\n";
  }

  int exit_code = 0;
  if (smoke) {
    exit_code = RunSmoke(server.port());
    if (exit_code == 0) exit_code = RunSmokeMetrics(server.metrics_port());
    server.NotifyShutdown();
  }
  server.Wait();
  g_server = nullptr;

  std::cout << "drained. net: " << server.NetStats().ToString()
            << "\nservice: " << service->Stats().ToString() << "\n";
  if (coordinator != nullptr) coordinator->Shutdown();
  if (cluster != nullptr) cluster->Stop();
  return exit_code;
}
