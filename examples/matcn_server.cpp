// Long-running MatCN network server: builds an in-memory dataset, wraps
// it in a QueryService, and serves the binary wire protocol over TCP
// until SIGTERM/SIGINT triggers a graceful drain (stop accepting, finish
// or cancel in-flight queries within --drain-ms, then exit).
//
//   $ ./matcn_server [dataset] [scale] [flags]
//
// Flags:
//   --port N          listen port; 0 = ephemeral          (default 7433)
//   --host ADDR       bind address                (default "127.0.0.1")
//   --threads N       QueryService workers; 0 = hw        (default 0)
//   --cn-threads N    per-query MatchCN workers           (default 1)
//   --queue N         admission-control queue bound       (default 256)
//   --cache-mb N      result-cache budget; 0 disables     (default 64)
//   --deadline-ms N   default per-query deadline; 0 none  (default 0)
//   --tmax N          default CN size bound T_max         (default 5)
//   --idle-ms N       per-connection idle timeout         (default 60000)
//   --drain-ms N      graceful-drain budget on SIGTERM    (default 5000)
//   --max-frame-kb N  request frame size limit            (default 1024)
//   --io-ms N         modeled per-miss backend latency    (default 0)
//   --compact-threshold N  live-index delta entries per term before
//                     background compaction folds them    (default 64)
//   --smoke           start, self-query + self-insert via net::Client,
//                     drain, exit
//
// Query it with net::Client (see README "Network server" quickstart) or
// drive load with matcn_net_bench.

#include <algorithm>
#include <csignal>
#include <iostream>
#include <thread>

#include "common/flags.h"
#include "common/strings.h"
#include "datasets/generators.h"
#include "graph/schema_graph.h"
#include "indexing/term_index.h"
#include "liveindex/concurrent_term_index.h"
#include "liveindex/index_writer.h"
#include "net/client.h"
#include "net/server.h"
#include "service/query_service.h"

using namespace matcn;

namespace {

net::Server* g_server = nullptr;

// Only async-signal-safe work here: NotifyShutdown is a flag store plus
// an eventfd write.
void HandleSignal(int /*signum*/) {
  if (g_server != nullptr) g_server->NotifyShutdown();
}

Database MakeDataset(const std::string& name, double scale, bool* ok) {
  *ok = true;
  if (name == "imdb") return MakeImdb(42, scale);
  if (name == "mondial") return MakeMondial(43, scale);
  if (name == "wikipedia") return MakeWikipedia(44, scale);
  if (name == "dblp") return MakeDblp(45, scale);
  if (name == "tpch" || name == "tpc-h") return MakeTpch(46, scale);
  *ok = false;
  return Database{};
}

int RunSmoke(uint16_t port) {
  auto client = net::Client::Connect("127.0.0.1", port);
  if (!client.ok()) {
    std::cerr << "smoke: connect failed: " << client.status().ToString()
              << "\n";
    return 1;
  }
  if (Status ping = client->Ping(); !ping.ok()) {
    std::cerr << "smoke: ping failed: " << ping.ToString() << "\n";
    return 1;
  }
  net::Client::QueryParams params;
  params.include_sql = true;
  auto result = client->Query({"denzel", "gangster"}, params);
  if (!result.ok()) {
    std::cerr << "smoke: query failed: " << result.status().ToString()
              << "\n";
    return 1;
  }
  std::cout << "smoke: query returned " << result->cns.size() << "/"
            << result->cns_total << " CNs in " << result->server_latency_us
            << " us\n";
  auto stats = client->Stats();
  if (!stats.ok()) {
    std::cerr << "smoke: stats failed: " << stats.status().ToString() << "\n";
    return 1;
  }
  std::cout << "smoke: server completed " << stats->completed
            << " queries, " << stats->connections_accepted
            << " connections\n";
  // Online update: append a PER tuple over the wire, then confirm the
  // index version advanced and the new term answers.
  std::vector<net::WireValue> values(2);
  values[0].tag = 0;
  values[0].int_value = 999'999;
  values[1].tag = 1;
  values[1].text_value = "Smoke Testperson";
  auto inserted = client->Insert("PER", std::move(values));
  if (!inserted.ok()) {
    std::cerr << "smoke: insert failed: " << inserted.status().ToString()
              << "\n";
    return 1;
  }
  std::cout << "smoke: insert acknowledged at index version "
            << inserted->index_version << " (relation " << inserted->relation
            << ", row " << inserted->row << ")\n";
  auto requery = client->Query({"testperson"});
  if (!requery.ok()) {
    std::cerr << "smoke: post-insert query failed: "
              << requery.status().ToString() << "\n";
    return 1;
  }
  if (requery->num_tuple_sets == 0) {
    std::cerr << "smoke: inserted term not searchable\n";
    return 1;
  }
  std::cout << "smoke: inserted term searchable (" << requery->num_tuple_sets
            << " tuple-sets)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags(argc, argv);
  const std::string dataset = flags.positional().empty()
                                  ? "imdb"
                                  : ToLower(flags.positional()[0]);
  const double scale = flags.positional().size() > 1
                           ? std::atof(flags.positional()[1].c_str())
                           : 0.1;
  net::ServerOptions server_options;
  server_options.host = flags.GetString("host", "127.0.0.1");
  server_options.port = static_cast<uint16_t>(flags.GetInt("port", 7433));
  server_options.idle_timeout_ms = flags.GetInt("idle-ms", 60'000);
  server_options.drain_deadline_ms = flags.GetInt("drain-ms", 5'000);
  server_options.max_frame_bytes =
      static_cast<size_t>(flags.GetInt("max-frame-kb", 1024)) << 10;

  QueryServiceOptions service_options;
  service_options.num_threads =
      static_cast<unsigned>(flags.GetInt("threads", 0));
  service_options.gen.num_threads =
      static_cast<unsigned>(flags.GetInt("cn-threads", 1));
  service_options.max_queue = static_cast<size_t>(flags.GetInt("queue", 256));
  service_options.cache_bytes =
      static_cast<size_t>(flags.GetInt("cache-mb", 64)) << 20;
  service_options.default_deadline_ms = flags.GetInt("deadline-ms", 0);
  service_options.gen.t_max = static_cast<int>(flags.GetInt("tmax", 5));
  const int64_t compact_threshold = flags.GetInt("compact-threshold", 64);
  const int64_t io_ms = flags.GetInt("io-ms", 0);
  if (io_ms > 0) {
    service_options.pre_execute_hook = [io_ms] {
      std::this_thread::sleep_for(std::chrono::milliseconds(io_ms));
    };
  }
  const bool smoke = flags.Has("smoke");

  for (const std::string& error : flags.errors()) {
    std::cerr << "flag error: " << error << "\n";
    return 2;
  }
  for (const std::string& unknown : flags.UnknownFlags()) {
    std::cerr << "unknown flag --" << unknown << "\n";
    return 2;
  }

  bool dataset_ok = false;
  Database db = MakeDataset(dataset, scale, &dataset_ok);
  if (!dataset_ok) {
    std::cerr << "unknown dataset: " << dataset
              << " (imdb|mondial|wikipedia|dblp|tpch)\n";
    return 2;
  }
  const SchemaGraph schema_graph = SchemaGraph::Build(db.schema());
  // Live serving stack: offline build seeds the concurrent index, the
  // writer owns all subsequent mutation, and the service invalidates only
  // the cache entries an insert actually touches.
  liveindex::LiveIndexOptions live_options;
  live_options.compact_threshold =
      static_cast<size_t>(std::max<int64_t>(1, compact_threshold));
  liveindex::ConcurrentTermIndex live_index(TermIndex::Build(db),
                                            live_options);
  liveindex::IndexWriter writer(&db, &live_index);
  QueryService service(&schema_graph, &live_index, service_options);
  service.ConnectWriter(&writer);

  // --smoke binds an ephemeral port so parallel CI runs never collide.
  if (smoke) server_options.port = 0;
  net::Server server(&service, &db.schema(), &writer, server_options);
  g_server = &server;
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);

  if (Status started = server.Start(); !started.ok()) {
    std::cerr << "server start failed: " << started.ToString() << "\n";
    return 1;
  }
  std::cout << "matcn_server listening on " << server_options.host << ":"
            << server.port() << " — " << dataset << " (" << db.TotalTuples()
            << " tuples), " << service.Stats().num_threads
            << " workers, T_max=" << service_options.gen.t_max
            << "\nsend SIGTERM for graceful drain\n";

  int exit_code = 0;
  if (smoke) {
    exit_code = RunSmoke(server.port());
    server.NotifyShutdown();
  }
  server.Wait();
  g_server = nullptr;

  std::cout << "drained. net: " << server.NetStats().ToString()
            << "\nservice: " << service.Stats().ToString() << "\n";
  return exit_code;
}
