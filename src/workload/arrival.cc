#include "workload/arrival.h"

#include <cassert>
#include <cmath>

namespace matcn::workload {

bool ParseArrivalKind(const std::string& name, ArrivalKind* out) {
  if (name == "closed") {
    *out = ArrivalKind::kClosed;
    return true;
  }
  if (name == "poisson") {
    *out = ArrivalKind::kOpenPoisson;
    return true;
  }
  if (name == "uniform") {
    *out = ArrivalKind::kOpenUniform;
    return true;
  }
  return false;
}

const char* ArrivalKindName(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kClosed:
      return "closed";
    case ArrivalKind::kOpenPoisson:
      return "poisson";
    case ArrivalKind::kOpenUniform:
      return "uniform";
  }
  return "unknown";
}

std::vector<int64_t> ArrivalOffsetsUs(ArrivalKind kind, double target_qps,
                                      size_t count, uint64_t seed) {
  std::vector<int64_t> offsets(count, 0);
  if (kind == ArrivalKind::kClosed || count == 0) return offsets;
  assert(target_qps > 0);
  const double mean_gap_us = 1e6 / target_qps;
  if (kind == ArrivalKind::kOpenUniform) {
    for (size_t i = 0; i < count; ++i) {
      offsets[i] = static_cast<int64_t>(static_cast<double>(i) * mean_gap_us);
    }
    return offsets;
  }
  // Poisson process: i.i.d. exponential gaps. 1 - NextDouble() is in
  // (0, 1], so the log argument never hits zero.
  Rng64 rng(seed ^ 0x5851f42d4c957f2dull);
  double t = 0;
  for (size_t i = 0; i < count; ++i) {
    offsets[i] = static_cast<int64_t>(t);
    t += -std::log(1.0 - rng.NextDouble()) * mean_gap_us;
  }
  return offsets;
}

}  // namespace matcn::workload
