#include "workload/workload_engine.h"

#include <algorithm>
#include <cctype>
#include <set>
#include <utility>

namespace matcn::workload {

std::string SerializeOp(const Op& op) {
  std::string out;
  if (op.kind == Op::Kind::kQuery) {
    out += "Q t=";
    out += std::to_string(op.tenant);
    out += " kw=";
    for (size_t i = 0; i < op.keywords.size(); ++i) {
      if (i > 0) out += ',';
      out += op.keywords[i];
    }
    return out;
  }
  out += "I t=";
  out += std::to_string(op.tenant);
  out += " rel=";
  out += op.relation;
  out += " vals=";
  for (size_t i = 0; i < op.values.size(); ++i) {
    if (i > 0) out += '|';
    const OpValue& v = op.values[i];
    if (v.is_int) {
      out += "i:";
      out += std::to_string(v.int_value);
    } else {
      out += "t:";
      out += v.text;
    }
  }
  return out;
}

uint64_t HashOps(const std::vector<Op>& ops) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (const Op& op : ops) {
    const std::string line = SerializeOp(op);
    for (const char c : line) {
      hash ^= static_cast<unsigned char>(c);
      hash *= 0x100000001b3ull;
    }
    hash ^= '\n';
    hash *= 0x100000001b3ull;
  }
  return hash;
}

Result<WorkloadEngine> WorkloadEngine::Build(const DatabaseSchema& schema,
                                             const TermIndex& index,
                                             WorkloadSpec spec) {
  if (spec.zipf_theta < 0 || spec.zipf_theta >= 1) {
    return Status::InvalidArgument(
        "zipf_theta must be in [0, 1) (YCSB-style sampler)");
  }
  if (spec.read_fraction < 0 || spec.read_fraction > 1) {
    return Status::InvalidArgument("read_fraction must be in [0, 1]");
  }
  if (spec.value_fraction < 0 || spec.schema_fraction < 0 ||
      spec.value_fraction + spec.schema_fraction > 1.0 + 1e-9) {
    return Status::InvalidArgument(
        "value_fraction + schema_fraction must not exceed 1");
  }
  if (spec.tenants == 0) {
    return Status::InvalidArgument("tenants must be >= 1");
  }
  if (spec.min_keywords == 0 || spec.min_keywords > spec.max_keywords) {
    return Status::InvalidArgument(
        "need 1 <= min_keywords <= max_keywords");
  }

  // Popularity order: descending document frequency, term text as the
  // deterministic tiebreak. AllTerms() is sorted, so the sort is stable
  // across runs and platforms.
  std::vector<std::string> terms = index.AllTerms();
  if (terms.empty()) {
    return Status::InvalidArgument("term index has no terms to sample");
  }
  std::vector<std::pair<uint64_t, std::string>> by_df;
  by_df.reserve(terms.size());
  for (std::string& t : terms) {
    const uint64_t df = index.DocumentFrequency(t);
    by_df.emplace_back(df, std::move(t));
  }
  std::sort(by_df.begin(), by_df.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });

  // Deal the popularity-ordered catalog round-robin across tenants so
  // each tenant's working set is disjoint but similarly skewed.
  std::vector<std::vector<std::string>> tenant_terms(spec.tenants);
  for (size_t i = 0; i < by_df.size(); ++i) {
    std::vector<std::string>& bucket = tenant_terms[i % spec.tenants];
    if (spec.max_catalog_terms > 0 &&
        bucket.size() >= spec.max_catalog_terms) {
      continue;
    }
    bucket.push_back(std::move(by_df[i].second));
  }
  for (uint32_t t = 0; t < spec.tenants; ++t) {
    if (tenant_terms[t].empty()) {
      return Status::InvalidArgument(
          "catalog too small for the requested tenant count");
    }
  }

  // Schema-element pool: relation and attribute names, lowercased and
  // deduplicated — the vocabulary of schema-reference queries.
  std::set<std::string> schema_pool;
  auto lower = [](std::string s) {
    for (char& c : s) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    return s;
  };
  for (size_t r = 0; r < schema.num_relations(); ++r) {
    const RelationSchema& rel = schema.relation(static_cast<RelationId>(r));
    schema_pool.insert(lower(rel.name()));
    for (const Attribute& attr : rel.attributes()) {
      schema_pool.insert(lower(attr.name));
    }
  }
  std::vector<std::string> schema_terms(schema_pool.begin(),
                                        schema_pool.end());
  if (schema_terms.empty()) {
    return Status::InvalidArgument("schema has no nameable elements");
  }

  // INSERT target: explicit, or the first relation carrying both an
  // integer attribute (the synthetic unique id) and a searchable text
  // attribute (so inserts actually reach the term index).
  std::string insert_relation = spec.insert_relation;
  if (insert_relation.empty() && spec.read_fraction < 1.0) {
    for (size_t r = 0; r < schema.num_relations(); ++r) {
      const RelationSchema& rel = schema.relation(static_cast<RelationId>(r));
      bool has_int = false;
      bool has_text = false;
      for (const Attribute& attr : rel.attributes()) {
        if (attr.type == ValueType::kInt) has_int = true;
        if (attr.type == ValueType::kText && attr.searchable) has_text = true;
      }
      if (has_int && has_text) {
        insert_relation = rel.name();
        break;
      }
    }
    if (insert_relation.empty()) {
      return Status::InvalidArgument(
          "no relation suitable for synthesized inserts "
          "(need an int attribute and a searchable text attribute)");
    }
  }
  std::vector<Attribute> insert_attributes;
  if (!insert_relation.empty()) {
    const auto id = schema.RelationIdByName(insert_relation);
    if (!id.has_value()) {
      return Status::NotFound("insert relation '" + insert_relation +
                              "' not in schema");
    }
    insert_attributes = schema.relation(*id).attributes();
  }

  return WorkloadEngine(std::move(spec), std::move(tenant_terms),
                        std::move(schema_terms), std::move(insert_relation),
                        std::move(insert_attributes));
}

WorkloadEngine::WorkloadEngine(WorkloadSpec spec,
                               std::vector<std::vector<std::string>> terms,
                               std::vector<std::string> schema_terms,
                               std::string insert_relation,
                               std::vector<Attribute> insert_attributes)
    : spec_(std::move(spec)),
      rng_(spec_.seed * 0x9e3779b97f4a7c15ull + 0x2545f4914f6cdd1dull),
      tenant_terms_(std::move(terms)),
      tenant_inserts_(spec_.tenants, 0),
      schema_terms_(std::move(schema_terms)),
      insert_relation_(std::move(insert_relation)),
      insert_attributes_(std::move(insert_attributes)) {
  tenant_zipf_.reserve(spec_.tenants);
  for (uint32_t t = 0; t < spec_.tenants; ++t) {
    tenant_zipf_.emplace_back(tenant_terms_[t].size(), spec_.zipf_theta,
                              spec_.scramble);
  }
}

std::string WorkloadEngine::SampleValueTerm(uint32_t tenant) {
  return tenant_terms_[tenant][tenant_zipf_[tenant].Sample(rng_)];
}

void WorkloadEngine::FillQuery(Op* op) {
  const uint32_t tenant = op->tenant;
  size_t k = spec_.min_keywords +
             static_cast<size_t>(rng_.NextBounded(
                 spec_.max_keywords - spec_.min_keywords + 1));
  k = std::min(k, tenant_terms_[tenant].size() + schema_terms_.size());

  TermClass cls;
  const double u = rng_.NextDouble();
  if (u < spec_.value_fraction) {
    cls = TermClass::kValue;
  } else if (u < spec_.value_fraction + spec_.schema_fraction) {
    cls = TermClass::kSchema;
  } else {
    cls = TermClass::kMixed;
  }
  // A one-keyword "mixed" query cannot mix; it degrades to a value term.
  if (cls == TermClass::kMixed && k < 2) cls = TermClass::kValue;

  std::set<std::string> seen;
  op->keywords.clear();
  auto push_distinct = [&](std::string term) {
    if (seen.insert(term).second) op->keywords.push_back(std::move(term));
  };

  // Bounded rejection sampling for distinct terms; under heavy skew (or a
  // tiny catalog) duplicates are common, so after the retry budget the
  // fallback walks popularity ranks in order — still deterministic.
  const size_t budget = 8 * k + 16;
  size_t attempts = 0;
  auto sample_value_distinct = [&]() {
    while (op->keywords.size() < k && attempts++ < budget) {
      push_distinct(SampleValueTerm(tenant));
    }
    for (size_t rank = 0;
         op->keywords.size() < k && rank < tenant_terms_[tenant].size();
         ++rank) {
      push_distinct(tenant_terms_[tenant][rank]);
    }
  };
  auto sample_schema_distinct = [&](size_t want) {
    while (op->keywords.size() < want && attempts++ < budget) {
      push_distinct(schema_terms_[rng_.NextBounded(schema_terms_.size())]);
    }
    for (size_t i = 0; op->keywords.size() < want && i < schema_terms_.size();
         ++i) {
      push_distinct(schema_terms_[i]);
    }
  };

  switch (cls) {
    case TermClass::kValue:
      sample_value_distinct();
      break;
    case TermClass::kSchema:
      sample_schema_distinct(k);
      break;
    case TermClass::kMixed: {
      // At least one schema term; the rest are value terms, so mixed
      // queries stay answerable (value terms anchor the tuple sets).
      sample_schema_distinct(1);
      sample_value_distinct();
      break;
    }
  }
}

void WorkloadEngine::FillInsert(Op* op) {
  const uint32_t tenant = op->tenant;
  op->relation = insert_relation_;
  const uint64_t n = tenant_inserts_[tenant]++;
  // Unique synthetic key space, disjoint from generator data (which uses
  // small dense ids) and between tenants.
  const int64_t unique_id =
      1'000'000'000 + static_cast<int64_t>(tenant) * 10'000'000 +
      static_cast<int64_t>(n);
  // Fresh tuples reference a hot term so inserts collide with the read
  // working set: that is what drives selective cache invalidation and
  // delta-postings growth on the live index under load.
  const std::string hot = SampleValueTerm(tenant);
  bool tagged = false;
  op->values.clear();
  op->values.reserve(insert_attributes_.size());
  for (const Attribute& attr : insert_attributes_) {
    OpValue v;
    if (attr.type == ValueType::kInt) {
      v.is_int = true;
      v.int_value = unique_id;
    } else {
      // First text attribute carries a unique never-seen token plus the
      // hot term; later text attributes just repeat the hot term.
      v.text = tagged ? hot
                      : "ld" + std::to_string(tenant) + "x" +
                            std::to_string(n) + " " + hot;
      tagged = true;
    }
    op->values.push_back(std::move(v));
  }
}

Op WorkloadEngine::Next() {
  Op op;
  op.seq = next_seq_++;
  op.tenant = static_cast<uint32_t>(rng_.NextBounded(spec_.tenants));
  const bool read =
      insert_relation_.empty() || rng_.Bernoulli(spec_.read_fraction);
  if (read) {
    op.kind = Op::Kind::kQuery;
    FillQuery(&op);
  } else {
    op.kind = Op::Kind::kInsert;
    FillInsert(&op);
  }
  return op;
}

std::vector<Op> WorkloadEngine::Generate(size_t count) {
  std::vector<Op> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) out.push_back(Next());
  return out;
}

}  // namespace matcn::workload
