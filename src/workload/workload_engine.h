#ifndef MATCN_WORKLOAD_WORKLOAD_ENGINE_H_
#define MATCN_WORKLOAD_WORKLOAD_ENGINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "indexing/term_index.h"
#include "storage/schema.h"
#include "workload/zipf.h"

namespace matcn::workload {

/// Which pool a query's keywords are drawn from, modeling the mixed
/// intent of real keyword workloads (value terms, schema-element
/// references, and queries combining both — cf. the schema-reference
/// query study in PAPERS.md).
enum class TermClass : uint8_t { kValue = 0, kSchema = 1, kMixed = 2 };

/// One typed attribute value of a synthesized INSERT (mirrors ValueType /
/// net::WireValue without depending on the net layer).
struct OpValue {
  bool is_int = false;
  int64_t int_value = 0;
  std::string text;
};

/// One operation of the workload stream.
struct Op {
  enum class Kind : uint8_t { kQuery = 0, kInsert = 1 };
  Kind kind = Kind::kQuery;
  uint32_t tenant = 0;
  uint64_t seq = 0;  // position in the stream, assigned by the engine
  // kQuery:
  std::vector<std::string> keywords;
  // kInsert:
  std::string relation;
  std::vector<OpValue> values;
};

/// Canonical one-line rendering of an op. Two runs produce *the same
/// operation stream* iff their serialized forms are byte-identical; the
/// determinism tests and the per-phase `ops_hash` in BENCH_serve.json
/// are both built on this.
std::string SerializeOp(const Op& op);

/// FNV-1a over the serialized ops — the stream fingerprint reported per
/// phase so same-seed reruns are mechanically comparable.
uint64_t HashOps(const std::vector<Op>& ops);

struct WorkloadSpec {
  /// Zipfian skew of keyword popularity, in [0, 1). 0 = uniform; the
  /// YCSB default 0.99 concentrates roughly half the draws on the
  /// hottest ~1% of terms.
  double zipf_theta = 0.99;
  /// Scramble popularity ranks through FNV so hot terms are spread over
  /// the catalog instead of clustering at the head (YCSB
  /// ScrambledZipfian). Unscrambled, rank 0 is the highest-df term —
  /// useful when popularity should follow document frequency.
  bool scramble = true;
  /// Fraction of operations that are queries; the rest are INSERTs of
  /// freshly synthesized tuples (the live-index write path).
  double read_fraction = 0.95;
  /// Keywords per query, drawn uniformly from [min, max] (clamped to the
  /// catalog size).
  size_t min_keywords = 1;
  size_t max_keywords = 3;
  /// Query-class mix; the remainder (1 - value - schema) is kMixed.
  double value_fraction = 0.7;
  double schema_fraction = 0.1;
  /// Interleave this many tenant catalogs. The value-term catalog is
  /// dealt round-robin (in popularity order) across tenants, so every
  /// tenant sees a similar popularity profile over a disjoint working
  /// set; each tenant gets its own Zipfian stream and insert-id space.
  uint32_t tenants = 1;
  /// Relation INSERTs target; empty auto-picks the first relation with
  /// an integer attribute and a searchable text attribute.
  std::string insert_relation;
  /// Keep only the `max_catalog_terms` highest-df terms per catalog
  /// (0 = all). Bounds memory for huge indexes.
  size_t max_catalog_terms = 0;
  uint64_t seed = 1;
};

/// Deterministic, seedable generator of mixed keyword-query / insert
/// operation streams in the mold of YCSB's workload generators, sampling
/// keyword popularity from a live catalog's term index. One WorkloadSpec
/// + seed names exactly one operation stream: Next() draws from a
/// SplitMix64 stream and never consults the clock, so two engines with
/// the same spec emit byte-identical ops (see SerializeOp).
class WorkloadEngine {
 public:
  /// Validates the spec and snapshots the term catalog from `index`
  /// (ordered by descending document frequency, lexicographic tiebreak)
  /// and the schema-term pool from `schema`. Neither is retained —
  /// the engine is self-contained after Build.
  static Result<WorkloadEngine> Build(const DatabaseSchema& schema,
                                      const TermIndex& index,
                                      WorkloadSpec spec);

  /// The next operation of the stream. Not thread-safe; pre-generate
  /// with Generate() when many workers consume one stream.
  Op Next();

  /// The next `count` operations.
  std::vector<Op> Generate(size_t count);

  const WorkloadSpec& spec() const { return spec_; }
  size_t num_value_terms(uint32_t tenant) const {
    return tenant_terms_[tenant].size();
  }
  size_t num_schema_terms() const { return schema_terms_.size(); }
  /// The value term at popularity rank `rank` of `tenant`'s catalog.
  const std::string& ValueTerm(uint32_t tenant, size_t rank) const {
    return tenant_terms_[tenant][rank];
  }

 private:
  struct Tenant {
    std::vector<std::string> terms;  // popularity (df) order
    uint64_t inserts = 0;            // per-tenant insert-id counter
  };

  WorkloadEngine(WorkloadSpec spec, std::vector<std::vector<std::string>> terms,
                 std::vector<std::string> schema_terms,
                 std::string insert_relation,
                 std::vector<Attribute> insert_attributes);

  std::string SampleValueTerm(uint32_t tenant);
  void FillQuery(Op* op);
  void FillInsert(Op* op);

  WorkloadSpec spec_;
  Rng64 rng_;
  uint64_t next_seq_ = 0;
  std::vector<std::vector<std::string>> tenant_terms_;
  std::vector<uint64_t> tenant_inserts_;
  std::vector<ZipfianGenerator> tenant_zipf_;
  std::vector<std::string> schema_terms_;
  std::string insert_relation_;
  std::vector<Attribute> insert_attributes_;
};

}  // namespace matcn::workload

#endif  // MATCN_WORKLOAD_WORKLOAD_ENGINE_H_
