#ifndef MATCN_WORKLOAD_RECORDER_H_
#define MATCN_WORKLOAD_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "metrics/latency_histogram.h"

namespace matcn::workload {

/// How one operation came back, as seen by the client.
enum class OpOutcome : uint8_t {
  kOk = 0,        // answered (cache_hit/degraded qualify separately)
  kRejected,      // RESOURCE_EXHAUSTED admission backpressure
  kDeadline,      // DEADLINE_EXCEEDED
  kError,         // anything else non-OK
};

/// Point-in-time copy of a LoadRecorder, safe to pass around.
struct LoadSnapshot {
  // Queries (measured window only).
  uint64_t ok = 0;
  uint64_t cache_hits = 0;
  uint64_t degraded = 0;
  uint64_t rejected = 0;
  uint64_t deadline = 0;
  uint64_t errors = 0;
  // Inserts (measured window only).
  uint64_t inserts_ok = 0;
  uint64_t insert_errors = 0;
  // Ops excluded because their intended start fell in the warmup.
  uint64_t warmup_skipped = 0;
  // Query latency percentiles (ms), intended-start based.
  double mean_ms = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double p999_ms = 0;
  double max_ms = 0;
  // Insert latency (ms).
  double insert_p50_ms = 0;
  double insert_p99_ms = 0;

  uint64_t issued() const {
    return ok + rejected + deadline + errors + inserts_ok + insert_errors;
  }
  uint64_t queries() const { return ok + rejected + deadline + errors; }

  std::string ToString() const;
};

/// Concurrent, coordinated-omission-safe latency recorder for load
/// drivers. Every sample is stamped with the operation's *intended*
/// start — the instant the arrival schedule said it was due (open loop)
/// or the instant the connection became free to send it (closed loop) —
/// never the instant a backed-up client finally wrote the bytes. A
/// server that stalls for a second therefore eats that second in every
/// sample scheduled inside it, instead of silently omitting the wait
/// (Tene's "coordinated omission").
///
/// Record paths are lock-free (relaxed atomics + LatencyHistogram);
/// many worker threads record while a reporter snapshots.
class LoadRecorder {
 public:
  /// Samples whose intended start is earlier than `us` (absolute,
  /// steady-clock microseconds) are counted as warmup and excluded from
  /// every statistic. Default 0 = record everything.
  void SetMeasureStartUs(int64_t us) {
    measure_start_us_.store(us, std::memory_order_relaxed);
  }
  int64_t measure_start_us() const {
    return measure_start_us_.load(std::memory_order_relaxed);
  }

  /// Records one query. `intended_start_us`/`end_us` are absolute
  /// steady-clock micros; latency = end - intended start.
  void RecordQuery(OpOutcome outcome, int64_t intended_start_us,
                   int64_t end_us, bool cache_hit, bool degraded);

  /// Records one insert.
  void RecordInsert(bool ok, int64_t intended_start_us, int64_t end_us);

  LoadSnapshot Snapshot() const;

  const LatencyHistogram& query_histogram() const { return query_latency_; }

 private:
  bool InWarmup(int64_t intended_start_us) {
    if (intended_start_us >=
        measure_start_us_.load(std::memory_order_relaxed)) {
      return false;
    }
    warmup_skipped_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  std::atomic<int64_t> measure_start_us_{0};
  std::atomic<uint64_t> ok_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> degraded_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> deadline_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> inserts_ok_{0};
  std::atomic<uint64_t> insert_errors_{0};
  std::atomic<uint64_t> warmup_skipped_{0};
  LatencyHistogram query_latency_;
  LatencyHistogram insert_latency_;
};

}  // namespace matcn::workload

#endif  // MATCN_WORKLOAD_RECORDER_H_
