#ifndef MATCN_WORKLOAD_ZIPF_H_
#define MATCN_WORKLOAD_ZIPF_H_

#include <cstddef>
#include <cstdint>

namespace matcn::workload {

/// Deterministic 64-bit generator (SplitMix64). The workload engine uses
/// this instead of matcn::Rng because std::*_distribution mappings are
/// implementation-defined: two builds against different standard
/// libraries would disagree on the sampled stream, and the whole point of
/// the engine is that a seed names one exact operation stream everywhere.
class Rng64 {
 public:
  explicit Rng64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1) with 53 bits of mantissa.
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, n). Requires n > 0. Uses the unbiased
  /// fixed-point multiply (bias < 2^-64, irrelevant at catalog sizes).
  uint64_t NextBounded(uint64_t n) {
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * n) >> 64);
  }

  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

/// FNV-1a 64-bit hash of an integer key — YCSB's item scrambler.
uint64_t FnvHash64(uint64_t value);

/// Constant-time Zipfian rank sampler over [0, n), YCSB-style (Gray et
/// al., "Quickly Generating Billion-Record Synthetic Databases"): rank r
/// is drawn with probability proportional to 1/(r+1)^theta. The zeta
/// normalizer is computed once at construction (O(n)); every Sample() is
/// O(1) — no CDF binary search, so a load generator can sample millions
/// of times per second.
///
/// theta must be in [0, 1): 0 degrades to uniform, values approaching 1
/// are increasingly head-heavy (YCSB's default 0.99 sends ~half the
/// traffic to the hottest ~1% of items).
///
/// With `scramble`, the sampled rank is mapped through FNV-1a mod n, so
/// popularity is Zipfian but the *hot items* are spread over the whole id
/// space instead of clustering at the low ids — decorrelating popularity
/// rank from item id exactly like YCSB's ScrambledZipfianGenerator.
/// Sampling stays deterministic per seed stream.
class ZipfianGenerator {
 public:
  /// Requires n > 0 and 0 <= theta < 1.
  ZipfianGenerator(size_t n, double theta, bool scramble = false);

  /// Returns an item in [0, n) drawn from `rng`.
  size_t Sample(Rng64& rng) const;

  /// Probability of the item with popularity rank r (before scrambling);
  /// exposed for the chi-square generator tests.
  double RankProbability(size_t rank) const;

  /// The item id popularity rank r maps to (identity unless scrambled).
  size_t ItemForRank(size_t rank) const;

  size_t size() const { return n_; }
  double theta() const { return theta_; }
  bool scrambled() const { return scramble_; }

 private:
  size_t n_;
  double theta_;
  bool scramble_;
  double zetan_ = 0;   // zeta(n, theta)
  double zeta2_ = 0;   // zeta(2, theta)
  double alpha_ = 0;   // 1 / (1 - theta)
  double eta_ = 0;
};

}  // namespace matcn::workload

#endif  // MATCN_WORKLOAD_ZIPF_H_
