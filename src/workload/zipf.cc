#include "workload/zipf.h"

#include <cassert>
#include <cmath>

namespace matcn::workload {

uint64_t FnvHash64(uint64_t value) {
  uint64_t hash = 0xcbf29ce484222325ull;  // FNV offset basis
  for (int i = 0; i < 8; ++i) {
    hash ^= value & 0xff;
    hash *= 0x100000001b3ull;  // FNV prime
    value >>= 8;
  }
  return hash;
}

namespace {

double Zeta(size_t n, double theta) {
  double sum = 0;
  for (size_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

}  // namespace

ZipfianGenerator::ZipfianGenerator(size_t n, double theta, bool scramble)
    : n_(n), theta_(theta), scramble_(scramble) {
  assert(n > 0);
  assert(theta >= 0 && theta < 1);
  zetan_ = Zeta(n_, theta_);
  zeta2_ = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2_ / zetan_);
}

size_t ZipfianGenerator::Sample(Rng64& rng) const {
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  size_t rank;
  if (uz < 1.0) {
    rank = 0;
  } else if (uz < 1.0 + std::pow(0.5, theta_)) {
    rank = 1;
  } else {
    rank = static_cast<size_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    if (rank >= n_) rank = n_ - 1;  // floating-point edge at u -> 1
  }
  return ItemForRank(rank);
}

double ZipfianGenerator::RankProbability(size_t rank) const {
  return 1.0 / std::pow(static_cast<double>(rank + 1), theta_) / zetan_;
}

size_t ZipfianGenerator::ItemForRank(size_t rank) const {
  if (!scramble_) return rank;
  return static_cast<size_t>(FnvHash64(static_cast<uint64_t>(rank)) %
                             static_cast<uint64_t>(n_));
}

}  // namespace matcn::workload
