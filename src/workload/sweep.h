#ifndef MATCN_WORKLOAD_SWEEP_H_
#define MATCN_WORKLOAD_SWEEP_H_

#include <cstdint>

namespace matcn::workload {

/// Everything the saturation-knee decision consumes, all drawn from the
/// SAME measured window (post-warmup): counts from one LoadSnapshot and
/// the two window lengths RunPhase measured. Keeping the inputs in one
/// struct is the point — the predicate cannot accidentally mix a
/// full-phase span with post-warmup counts the way the old inline
/// criterion in matcn_loadgen could.
struct KneeInputs {
  /// Open-loop phases saturate; a closed-loop phase never does (there is
  /// no offered rate to fall short of).
  bool open_loop = false;
  /// Ops whose intended start fell in the measured window, whatever
  /// their outcome (LoadSnapshot::issued()).
  uint64_t issued = 0;
  /// Ops answered OK in the window: queries + inserts
  /// (LoadSnapshot ok + inserts_ok).
  uint64_t completed_ok = 0;
  /// Query ops in the window (LoadSnapshot::queries()) — the admission
  ///-control population the reject rate is over.
  uint64_t queries = 0;
  /// Admission rejections (RESOURCE_EXHAUSTED) in the window.
  uint64_t rejected = 0;
  /// Measure start -> last completion, seconds. Denominator of the
  /// achieved rate, so drain overrun lowers it.
  double wall_seconds = 0;
  /// Measure start -> last *scheduled* arrival, seconds: the span the
  /// realized (Poisson-drawn) schedule actually covered, which can run
  /// several percent off the nominal target.
  double schedule_seconds = 0;
};

struct KneeConfig {
  /// Saturated when achieved < knee_fraction * realized offered.
  double knee_fraction = 0.95;
  /// Saturated when the admission reject rate exceeds this.
  double knee_reject = 0.05;
};

struct KneeVerdict {
  bool saturated = false;
  double achieved_qps = 0;
  double realized_offered_qps = 0;
  double reject_rate = 0;
};

/// The auto-sweep termination predicate: one phase's verdict, computed
/// from one consistent window. Guarantees the inline version lacked:
///
///  - Both rates use the same op population (completed_ok is a subset of
///    issued) and windows clamped to each other: the schedule span is
///    capped at the wall span, so a miscomputed or stale schedule end
///    can never understate the offered rate and hide saturation.
///  - Degenerate phases (nothing issued, empty or non-positive windows)
///    are never saturated — a sweep cannot terminate on a phase that
///    measured nothing.
///  - Closed-loop phases are never saturated, whatever the counts.
KneeVerdict EvaluateKnee(const KneeInputs& inputs, const KneeConfig& config);

}  // namespace matcn::workload

#endif  // MATCN_WORKLOAD_SWEEP_H_
