#include "workload/serve_report.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <utility>

namespace matcn::workload {

namespace {

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void Field(std::string* out, const char* indent, const char* key,
           const std::string& value, bool last = false) {
  *out += indent;
  *out += '"';
  *out += key;
  *out += "\": ";
  *out += value;
  *out += last ? "\n" : ",\n";
}

std::string Quoted(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

// ----------------------- minimal JSON parser ---------------------------
// Just enough JSON (RFC 8259 minus \uXXXX escapes, which nothing here
// emits) to validate the file we write without pulling a dependency in.

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;
};

class JsonParser {
 public:
  JsonParser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool Parse(JsonValue* out) {
    SkipSpace();
    if (!ParseValue(out)) return false;
    SkipSpace();
    if (pos_ != text_.size()) return Fail("trailing bytes after document");
    return true;
  }

 private:
  bool Fail(const std::string& what) {
    if (error_->empty()) {
      *error_ = what + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Literal(const char* word, size_t len) {
    if (text_.compare(pos_, len, word) != 0) return Fail("bad literal");
    pos_ += len;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->str);
      case 't':
        out->type = JsonValue::Type::kBool;
        out->boolean = true;
        return Literal("true", 4);
      case 'f':
        out->type = JsonValue::Type::kBool;
        out->boolean = false;
        return Literal("false", 5);
      case 'n':
        out->type = JsonValue::Type::kNull;
        return Literal("null", 4);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseString(std::string* out) {
    if (text_[pos_] != '"') return Fail("expected string");
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          default:
            return Fail("unsupported string escape");
        }
        continue;
      }
      *out += c;
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected a value");
    char* end = nullptr;
    const std::string token = text_.substr(start, pos_ - start);
    out->number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Fail("malformed number");
    out->type = JsonValue::Type::kNumber;
    return true;
  }

  bool ParseArray(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue element;
      SkipSpace();
      if (!ParseValue(&element)) return false;
      out->array.push_back(std::move(element));
      SkipSpace();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      const char c = text_[pos_++];
      if (c == ']') return true;
      if (c != ',') return Fail("expected ',' or ']' in array");
    }
  }

  bool ParseObject(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      if (!ParseString(&key)) return false;
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_++] != ':') {
        return Fail("expected ':' after key");
      }
      SkipSpace();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace(std::move(key), std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      const char c = text_[pos_++];
      if (c == '}') return true;
      if (c != ',') return Fail("expected ',' or '}' in object");
    }
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
};

bool RequireNumber(const JsonValue& object, const char* key,
                   const std::string& where, std::string* error,
                   double* out = nullptr) {
  const auto it = object.object.find(key);
  if (it == object.object.end()) {
    *error = where + " is missing required field \"" + key + "\"";
    return false;
  }
  if (it->second.type != JsonValue::Type::kNumber) {
    *error = where + " field \"" + key + "\" is not a number";
    return false;
  }
  if (out != nullptr) *out = it->second.number;
  return true;
}

bool RequireString(const JsonValue& object, const char* key,
                   const std::string& where, std::string* error) {
  const auto it = object.object.find(key);
  if (it == object.object.end()) {
    *error = where + " is missing required field \"" + key + "\"";
    return false;
  }
  if (it->second.type != JsonValue::Type::kString) {
    *error = where + " field \"" + key + "\" is not a string";
    return false;
  }
  return true;
}

}  // namespace

std::string ServeBenchReport::ToJson() const {
  std::string out = "{\n";
  Field(&out, "  ", "bench", Quoted("serve"));
  Field(&out, "  ", "dataset", Quoted(dataset));
  Field(&out, "  ", "scale", Num(scale));
  Field(&out, "  ", "seed", std::to_string(seed));
  Field(&out, "  ", "connections", std::to_string(connections));
  Field(&out, "  ", "server_threads", std::to_string(server_threads));
  Field(&out, "  ", "read_fraction", Num(read_fraction));
  Field(&out, "  ", "zipf_theta", Num(zipf_theta));
  Field(&out, "  ", "scramble", scramble ? "true" : "false");
  Field(&out, "  ", "tenants", std::to_string(tenants));
  Field(&out, "  ", "saturation_qps", Num(saturation_qps));
  out += "  \"phases\": [\n";
  for (size_t i = 0; i < phases.size(); ++i) {
    const PhaseResult& p = phases[i];
    out += "    {\n";
    Field(&out, "      ", "offered_qps", Num(p.offered_qps));
    Field(&out, "      ", "achieved_qps", Num(p.achieved_qps));
    Field(&out, "      ", "duration_s", Num(p.duration_s));
    Field(&out, "      ", "arrival", Quoted(p.arrival));
    Field(&out, "      ", "completed", std::to_string(p.completed));
    Field(&out, "      ", "rejected", std::to_string(p.rejected));
    Field(&out, "      ", "deadline", std::to_string(p.deadline));
    Field(&out, "      ", "errors", std::to_string(p.errors));
    Field(&out, "      ", "p50_ms", Num(p.p50_ms));
    Field(&out, "      ", "p95_ms", Num(p.p95_ms));
    Field(&out, "      ", "p99_ms", Num(p.p99_ms));
    Field(&out, "      ", "p999_ms", Num(p.p999_ms));
    Field(&out, "      ", "max_ms", Num(p.max_ms));
    Field(&out, "      ", "cache_hit_rate", Num(p.cache_hit_rate));
    Field(&out, "      ", "degraded_fraction", Num(p.degraded_fraction));
    Field(&out, "      ", "reject_rate", Num(p.reject_rate));
    Field(&out, "      ", "inserts", std::to_string(p.inserts));
    Field(&out, "      ", "insert_qps", Num(p.insert_qps));
    Field(&out, "      ", "insert_p99_ms", Num(p.insert_p99_ms));
    Field(&out, "      ", "index_version_start",
          std::to_string(p.index_version_start));
    Field(&out, "      ", "index_version_end",
          std::to_string(p.index_version_end));
    Field(&out, "      ", "ops_hash", std::to_string(p.ops_hash));
    Field(&out, "      ", "saturated", p.saturated ? "true" : "false",
          /*last=*/true);
    out += i + 1 == phases.size() ? "    }\n" : "    },\n";
  }
  out += "  ]\n}\n";
  return out;
}

bool ValidateBenchServeJson(const std::string& json, std::string* error) {
  error->clear();
  JsonValue root;
  JsonParser parser(json, error);
  if (!parser.Parse(&root)) return false;
  if (root.type != JsonValue::Type::kObject) {
    *error = "top level is not an object";
    return false;
  }
  const auto bench = root.object.find("bench");
  if (bench == root.object.end() ||
      bench->second.type != JsonValue::Type::kString ||
      bench->second.str != "serve") {
    *error = "\"bench\" field missing or not \"serve\"";
    return false;
  }
  if (!RequireString(root, "dataset", "top level", error)) return false;
  for (const char* key :
       {"scale", "seed", "connections", "server_threads", "read_fraction",
        "zipf_theta", "tenants", "saturation_qps"}) {
    if (!RequireNumber(root, key, "top level", error)) return false;
  }
  const auto phases = root.object.find("phases");
  if (phases == root.object.end() ||
      phases->second.type != JsonValue::Type::kArray) {
    *error = "\"phases\" missing or not an array";
    return false;
  }
  if (phases->second.array.empty()) {
    *error = "\"phases\" is empty";
    return false;
  }
  double total_completed = 0;
  for (size_t i = 0; i < phases->second.array.size(); ++i) {
    const JsonValue& phase = phases->second.array[i];
    const std::string where = "phase " + std::to_string(i);
    if (phase.type != JsonValue::Type::kObject) {
      *error = where + " is not an object";
      return false;
    }
    if (!RequireString(phase, "arrival", where, error)) return false;
    double completed = 0;
    if (!RequireNumber(phase, "completed", where, error, &completed)) {
      return false;
    }
    total_completed += completed;
    for (const char* key :
         {"offered_qps", "achieved_qps", "duration_s", "rejected",
          "deadline", "errors", "p50_ms", "p95_ms", "p99_ms", "p999_ms",
          "max_ms", "cache_hit_rate", "degraded_fraction", "reject_rate",
          "inserts", "insert_qps", "insert_p99_ms", "index_version_start",
          "index_version_end", "ops_hash"}) {
      if (!RequireNumber(phase, key, where, error)) return false;
    }
  }
  if (total_completed <= 0) {
    *error = "no phase completed any queries";
    return false;
  }
  return true;
}

}  // namespace matcn::workload
