#ifndef MATCN_WORKLOAD_ARRIVAL_H_
#define MATCN_WORKLOAD_ARRIVAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "workload/zipf.h"

namespace matcn::workload {

/// How a load phase injects its operations.
///
///   kClosed:      classic closed loop — each connection issues its next
///                 op as soon as the previous response lands. Throughput
///                 self-limits to the server's capacity, which is exactly
///                 why closed loops hide overload (coordinated omission).
///   kOpenPoisson: open loop with exponential inter-arrival times at a
///                 target rate — the memoryless arrival process real
///                 user traffic approximates. Ops are due at their
///                 scheduled instant whether or not the server kept up.
///   kOpenUniform: open loop with fixed inter-arrival spacing — a
///                 metronome; useful for pinning down queueing effects
///                 without arrival burstiness.
enum class ArrivalKind : uint8_t { kClosed = 0, kOpenPoisson = 1,
                                   kOpenUniform = 2 };

/// Parses "closed" / "poisson" / "uniform"; returns false on anything
/// else.
bool ParseArrivalKind(const std::string& name, ArrivalKind* out);
const char* ArrivalKindName(ArrivalKind kind);

/// Deterministic intended-start offsets (microseconds from phase start)
/// for `count` operations at `target_qps`:
///   kClosed      -> all zero (no schedule; issue when the loop is free)
///   kOpenUniform -> i / qps
///   kOpenPoisson -> cumulative exponential gaps with mean 1/qps, seeded
/// Offsets are nondecreasing. target_qps must be > 0 for the open kinds.
///
/// The returned schedule is the coordinated-omission anchor: latency must
/// be measured from these *intended* starts, not from the instant a
/// stalled connection finally got around to sending (see LoadRecorder).
std::vector<int64_t> ArrivalOffsetsUs(ArrivalKind kind, double target_qps,
                                      size_t count, uint64_t seed);

}  // namespace matcn::workload

#endif  // MATCN_WORKLOAD_ARRIVAL_H_
