#include "workload/sweep.h"

#include <algorithm>

namespace matcn::workload {

KneeVerdict EvaluateKnee(const KneeInputs& inputs, const KneeConfig& config) {
  KneeVerdict verdict;
  if (inputs.queries > 0) {
    verdict.reject_rate = static_cast<double>(inputs.rejected) /
                          static_cast<double>(inputs.queries);
  }
  if (inputs.wall_seconds > 0) {
    verdict.achieved_qps =
        static_cast<double>(inputs.completed_ok) / inputs.wall_seconds;
  }
  // The realized schedule ends at or before the last completion; a span
  // beyond the wall window would dilute the offered rate, so clamp.
  const double schedule_seconds =
      std::min(inputs.schedule_seconds, inputs.wall_seconds);
  if (schedule_seconds > 0) {
    verdict.realized_offered_qps =
        static_cast<double>(inputs.issued) / schedule_seconds;
  }
  if (!inputs.open_loop || inputs.issued == 0 || inputs.wall_seconds <= 0 ||
      schedule_seconds <= 0) {
    return verdict;  // nothing measured: never terminate the sweep on it
  }
  verdict.saturated =
      verdict.achieved_qps <
          config.knee_fraction * verdict.realized_offered_qps ||
      verdict.reject_rate > config.knee_reject;
  return verdict;
}

}  // namespace matcn::workload
