#include "workload/recorder.h"

#include <algorithm>

namespace matcn::workload {

std::string LoadSnapshot::ToString() const {
  std::string out = "ok=" + std::to_string(ok) + " (hits=" +
                    std::to_string(cache_hits) + " degraded=" +
                    std::to_string(degraded) + ") rejected=" +
                    std::to_string(rejected) + " deadline=" +
                    std::to_string(deadline) + " errors=" +
                    std::to_string(errors);
  if (inserts_ok + insert_errors > 0) {
    out += " inserts=" + std::to_string(inserts_ok) + "/" +
           std::to_string(inserts_ok + insert_errors);
  }
  out += " p50=" + LatencyHistogram::FormatMicros(
                       static_cast<int64_t>(p50_ms * 1000)) +
         " p99=" + LatencyHistogram::FormatMicros(
                       static_cast<int64_t>(p99_ms * 1000));
  return out;
}

void LoadRecorder::RecordQuery(OpOutcome outcome, int64_t intended_start_us,
                               int64_t end_us, bool cache_hit,
                               bool degraded) {
  if (InWarmup(intended_start_us)) return;
  switch (outcome) {
    case OpOutcome::kOk:
      ok_.fetch_add(1, std::memory_order_relaxed);
      if (cache_hit) cache_hits_.fetch_add(1, std::memory_order_relaxed);
      if (degraded) degraded_.fetch_add(1, std::memory_order_relaxed);
      break;
    case OpOutcome::kRejected:
      rejected_.fetch_add(1, std::memory_order_relaxed);
      break;
    case OpOutcome::kDeadline:
      deadline_.fetch_add(1, std::memory_order_relaxed);
      break;
    case OpOutcome::kError:
      errors_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  // Rejections and timeouts still count toward latency: the user waited
  // that long for a non-answer, and under overload they dominate.
  query_latency_.Record(std::max<int64_t>(0, end_us - intended_start_us));
}

void LoadRecorder::RecordInsert(bool ok, int64_t intended_start_us,
                                int64_t end_us) {
  if (InWarmup(intended_start_us)) return;
  if (ok) {
    inserts_ok_.fetch_add(1, std::memory_order_relaxed);
  } else {
    insert_errors_.fetch_add(1, std::memory_order_relaxed);
  }
  insert_latency_.Record(std::max<int64_t>(0, end_us - intended_start_us));
}

LoadSnapshot LoadRecorder::Snapshot() const {
  LoadSnapshot snap;
  snap.ok = ok_.load(std::memory_order_relaxed);
  snap.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  snap.degraded = degraded_.load(std::memory_order_relaxed);
  snap.rejected = rejected_.load(std::memory_order_relaxed);
  snap.deadline = deadline_.load(std::memory_order_relaxed);
  snap.errors = errors_.load(std::memory_order_relaxed);
  snap.inserts_ok = inserts_ok_.load(std::memory_order_relaxed);
  snap.insert_errors = insert_errors_.load(std::memory_order_relaxed);
  snap.warmup_skipped = warmup_skipped_.load(std::memory_order_relaxed);
  snap.mean_ms = query_latency_.MeanMicros() / 1000.0;
  snap.p50_ms =
      static_cast<double>(query_latency_.QuantileMicros(0.5)) / 1000.0;
  snap.p95_ms =
      static_cast<double>(query_latency_.QuantileMicros(0.95)) / 1000.0;
  snap.p99_ms =
      static_cast<double>(query_latency_.QuantileMicros(0.99)) / 1000.0;
  snap.p999_ms =
      static_cast<double>(query_latency_.QuantileMicros(0.999)) / 1000.0;
  snap.max_ms = static_cast<double>(query_latency_.MaxMicros()) / 1000.0;
  snap.insert_p50_ms =
      static_cast<double>(insert_latency_.QuantileMicros(0.5)) / 1000.0;
  snap.insert_p99_ms =
      static_cast<double>(insert_latency_.QuantileMicros(0.99)) / 1000.0;
  return snap;
}

}  // namespace matcn::workload
