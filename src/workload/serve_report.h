#ifndef MATCN_WORKLOAD_SERVE_REPORT_H_
#define MATCN_WORKLOAD_SERVE_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace matcn::workload {

/// One load phase of a saturation sweep, as written to BENCH_serve.json.
struct PhaseResult {
  double offered_qps = 0;   // target arrival rate (0 for closed loop)
  double achieved_qps = 0;  // completed ops / measured seconds
  double duration_s = 0;    // measured window (warmup excluded)
  std::string arrival;      // "closed" | "poisson" | "uniform"
  uint64_t completed = 0;   // answered queries in the window
  uint64_t rejected = 0;
  uint64_t deadline = 0;
  uint64_t errors = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double p999_ms = 0;
  double max_ms = 0;
  double cache_hit_rate = 0;     // hits / answered
  double degraded_fraction = 0;  // degraded / answered
  double reject_rate = 0;        // rejected / issued queries
  uint64_t inserts = 0;
  double insert_qps = 0;
  double insert_p99_ms = 0;
  uint64_t index_version_start = 0;
  uint64_t index_version_end = 0;  // drift = end - start
  /// FNV fingerprint of this phase's serialized op stream (HashOps);
  /// same-seed reruns must reproduce it bit-for-bit.
  uint64_t ops_hash = 0;
  bool saturated = false;  // this phase tripped the knee criterion
};

/// The serving-performance trajectory file emitted by matcn_loadgen.
/// Future PRs regress against these numbers; the schema is validated by
/// ValidateBenchServeJson (and by the CI smoke job).
struct ServeBenchReport {
  std::string dataset;
  double scale = 0;
  uint64_t seed = 0;
  unsigned connections = 0;
  unsigned server_threads = 0;
  double read_fraction = 0;
  double zipf_theta = 0;
  bool scramble = true;
  uint32_t tenants = 1;
  /// Highest offered QPS the server sustained (achieved >= 95% of
  /// offered with reject rate under the knee threshold); 0 when every
  /// phase saturated.
  double saturation_qps = 0;
  std::vector<PhaseResult> phases;

  std::string ToJson() const;
};

/// Validates that `json` is syntactically well-formed JSON and carries
/// the BENCH_serve schema: the header fields above, a non-empty
/// "phases" array whose entries each have the numeric fields of
/// PhaseResult, and at least one completed query across all phases.
/// Returns true on success; otherwise fills `error` with the first
/// problem found.
bool ValidateBenchServeJson(const std::string& json, std::string* error);

}  // namespace matcn::workload

#endif  // MATCN_WORKLOAD_SERVE_REPORT_H_
