#include "liveindex/concurrent_term_index.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <unordered_map>
#include <utility>

#include "indexing/stopwords.h"
#include "indexing/tokenizer.h"

namespace matcn::liveindex {
namespace {

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

constexpr size_t kInitialTableCapacity = 16;

}  // namespace

// ---------------------------------------------------------------------------
// Table

ConcurrentTermIndex::Table::Table(size_t cap)
    : capacity(cap), slots(new std::atomic<Node*>[cap]()) {}

// ---------------------------------------------------------------------------
// Construction / destruction

ConcurrentTermIndex::ConcurrentTermIndex(LiveIndexOptions options)
    : options_(options) {
  const size_t n = RoundUpPow2(std::max<size_t>(1, options_.num_shards));
  shard_mask_ = n - 1;
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->table.store(new Table(kInitialTableCapacity),
                       std::memory_order_relaxed);
    shards_.push_back(std::move(shard));
  }
}

ConcurrentTermIndex::ConcurrentTermIndex(const TermIndex& seed,
                                         LiveIndexOptions options)
    : ConcurrentTermIndex(options) {
  // Single-threaded construction: go through the writer path so table
  // growth and accounting behave exactly as during live operation.
  for (const std::string& term : seed.AllTerms()) {
    const std::vector<AttributeOccurrence>* list = seed.Lookup(term);
    const uint64_t hash = HashTerm(term);
    Shard& shard = ShardFor(hash);
    std::lock_guard<std::mutex> lock(shard.write_mu);
    Node* node = FindOrCreateNode(shard, term, hash);
    auto* entry = new TermEntry();
    entry->base =
        std::make_shared<const std::vector<AttributeOccurrence>>(*list);
    entry->doc_freq = seed.DocumentFrequency(term);
    PublishEntry(shard, node, entry);
  }
  total_tuples_.store(seed.total_tuples(), std::memory_order_release);
  DrainGarbage();
}

ConcurrentTermIndex::~ConcurrentTermIndex() {
  for (auto& shard : shards_) {
    const Table* table = shard->table.load(std::memory_order_relaxed);
    for (size_t i = 0; i < table->capacity; ++i) {
      Node* node = table->slots[i].load(std::memory_order_relaxed);
      if (node == nullptr) continue;
      delete node->entry.load(std::memory_order_relaxed);
      delete node;
    }
    delete table;
  }
  // epoch_'s destructor frees anything still retired (old tables/entries).
}

// ---------------------------------------------------------------------------
// Hashing / sharding

uint64_t ConcurrentTermIndex::HashTerm(const std::string& term) {
  // FNV-1a: deterministic across runs (unlike std::hash) and well-mixed
  // in both the shard-selection and probe bits.
  uint64_t h = 14695981039346656037ull;
  for (unsigned char c : term) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

ConcurrentTermIndex::Shard& ConcurrentTermIndex::ShardFor(
    uint64_t hash) const {
  // High bits pick the shard, low bits drive the probe sequence, so the
  // two stay independent.
  return *shards_[(hash >> 32) & shard_mask_];
}

// ---------------------------------------------------------------------------
// Reader path

const ConcurrentTermIndex::Node* ConcurrentTermIndex::FindNode(
    const std::string& term) const {
  const uint64_t hash = HashTerm(term);
  const Shard& shard = const_cast<ConcurrentTermIndex*>(this)->ShardFor(hash);
  while (true) {
    // Optimistic read: snapshot the shard seqlock, probe, validate. Every
    // pointer followed is an atomic load into EBR-protected memory, so a
    // torn probe is merely retried, never unsafe.
    const uint64_t s1 = shard.seq.load(std::memory_order_acquire);
    if (s1 & 1) continue;  // writer mid-publish
    const Table* table = shard.table.load(std::memory_order_acquire);
    const Node* found = nullptr;
    const size_t mask = table->capacity - 1;
    for (size_t i = 0; i <= mask; ++i) {
      Node* node =
          table->slots[(hash + i) & mask].load(std::memory_order_acquire);
      if (node == nullptr) break;  // open addressing: absence proven
      if (node->hash == hash && node->term == term) {
        found = node;
        break;
      }
    }
    const uint64_t s2 = shard.seq.load(std::memory_order_acquire);
    if (s1 == s2) return found;
  }
}

// ---------------------------------------------------------------------------
// Writer path (shard write_mu held by caller)

ConcurrentTermIndex::Node* ConcurrentTermIndex::FindOrCreateNode(
    Shard& shard, const std::string& term, uint64_t hash) {
  const Table* table = shard.table.load(std::memory_order_relaxed);

  // Grow at 3/4 load so probes always terminate at a null slot.
  if ((shard.size + 1) * 4 >= table->capacity * 3) {
    auto* grown = new Table(table->capacity * 2);
    const size_t mask = grown->capacity - 1;
    for (size_t i = 0; i < table->capacity; ++i) {
      Node* node = table->slots[i].load(std::memory_order_relaxed);
      if (node == nullptr) continue;
      size_t j = node->hash & mask;
      while (grown->slots[j].load(std::memory_order_relaxed) != nullptr) {
        j = (j + 1) & mask;
      }
      grown->slots[j].store(node, std::memory_order_relaxed);
    }
    const uint64_t s = shard.seq.load(std::memory_order_relaxed);
    shard.seq.store(s + 1, std::memory_order_release);
    shard.table.store(grown, std::memory_order_release);
    shard.seq.store(s + 2, std::memory_order_release);
    epoch_.RetireObject(table);
    table = grown;
  }

  const size_t mask = table->capacity - 1;
  size_t i = hash & mask;
  while (true) {
    Node* node = table->slots[i].load(std::memory_order_relaxed);
    if (node == nullptr) break;
    if (node->hash == hash && node->term == term) return node;
    i = (i + 1) & mask;
  }

  // New term: publish the node with an empty entry; the caller swings in
  // the real payload via PublishEntry. The release store makes the whole
  // node (immutable term/hash + entry) visible atomically.
  auto* entry = new TermEntry();
  auto* node = new Node(term, hash, entry);
  table->slots[i].store(node, std::memory_order_release);
  ++shard.size;
  num_terms_.fetch_add(1, std::memory_order_release);
  return node;
}

void ConcurrentTermIndex::PublishEntry(Shard& shard, Node* node,
                                       const TermEntry* entry) {
  const uint64_t s = shard.seq.load(std::memory_order_relaxed);
  shard.seq.store(s + 1, std::memory_order_release);
  const TermEntry* old =
      node->entry.exchange(entry, std::memory_order_acq_rel);
  shard.seq.store(s + 2, std::memory_order_release);

  const size_t old_bytes = old != nullptr ? old->DeltaBytes() : 0;
  const size_t new_bytes = entry->DeltaBytes();
  if (new_bytes >= old_bytes) {
    delta_bytes_.fetch_add(new_bytes - old_bytes, std::memory_order_relaxed);
  } else {
    delta_bytes_.fetch_sub(old_bytes - new_bytes, std::memory_order_relaxed);
  }
  if (old != nullptr) epoch_.RetireObject(old);
}

// ---------------------------------------------------------------------------
// Mutation (externally serialized)

std::vector<std::string> ConcurrentTermIndex::ApplyInsert(const Database& db,
                                                          TupleId id) {
  const Relation& rel = db.relation(id.relation());
  const RelationSchema& schema = rel.schema();
  const Tuple& tuple = rel.tuple(id.row());

  // Same accumulation discipline as the fixed TermIndex::ApplyInsert: one
  // pass over the tokens, one COW publish per touched term.
  std::unordered_map<std::string, std::unordered_map<uint32_t, uint64_t>>
      occurrences;
  for (uint32_t a = 0; a < schema.num_attributes(); ++a) {
    const Attribute& attr = schema.attribute(a);
    if (attr.type != ValueType::kText || !attr.searchable) continue;
    for (const std::string& token : Tokenizer::Tokenize(tuple[a].AsText())) {
      if (options_.index.skip_stopwords && IsStopword(token)) continue;
      ++occurrences[token][a];
    }
  }

  std::vector<std::string> touched;
  touched.reserve(occurrences.size());
  for (const auto& [term, attrs] : occurrences) {
    const uint64_t hash = HashTerm(term);
    Shard& shard = ShardFor(hash);
    std::lock_guard<std::mutex> lock(shard.write_mu);
    Node* node = FindOrCreateNode(shard, term, hash);
    const TermEntry* old = node->entry.load(std::memory_order_relaxed);
    auto* next = new TermEntry(*old);  // shares the base, copies the delta
    for (const auto& [a, count] : attrs) {
      next->delta.push_back(DeltaPosting{id.relation(), a, id, count});
    }
    ++next->doc_freq;  // one new tuple for this term, whatever the attrs
    const bool wants_compaction =
        next->delta.size() >= options_.compact_threshold;
    PublishEntry(shard, node, next);
    if (wants_compaction) {
      std::lock_guard<std::mutex> qlock(compact_mu_);
      compaction_candidates_.push_back(term);
    }
    touched.push_back(term);
  }

  total_tuples_.fetch_add(1, std::memory_order_release);
  version_.fetch_add(1, std::memory_order_release);
  epoch_.BumpEpoch();
  return touched;
}

bool ConcurrentTermIndex::CompactTerm(const std::string& term) {
  const uint64_t hash = HashTerm(term);
  Shard& shard = ShardFor(hash);
  std::lock_guard<std::mutex> lock(shard.write_mu);

  // Probe directly: the writer owns the shard, no seqlock dance needed.
  const Table* table = shard.table.load(std::memory_order_relaxed);
  const size_t mask = table->capacity - 1;
  Node* node = nullptr;
  for (size_t i = 0; i <= mask; ++i) {
    Node* candidate =
        table->slots[(hash + i) & mask].load(std::memory_order_relaxed);
    if (candidate == nullptr) break;
    if (candidate->hash == hash && candidate->term == term) {
      node = candidate;
      break;
    }
  }
  if (node == nullptr) return false;
  const TermEntry* old = node->entry.load(std::memory_order_relaxed);
  if (old->delta.empty()) return false;

  // Fold base + delta into fresh per-(relation, attribute) lists. std::map
  // keeps the deterministic ordering the offline index uses.
  struct Accum {
    uint64_t frequency = 0;
    std::vector<TupleId> ids;
  };
  std::map<std::pair<RelationId, uint32_t>, Accum> accum;
  if (old->base != nullptr) {
    for (const AttributeOccurrence& occ : *old->base) {
      Accum& acc = accum[{occ.relation, occ.attribute}];
      acc.frequency = occ.frequency;
      occ.tuples.DecodeInto(&acc.ids);
    }
  }
  for (const DeltaPosting& dp : old->delta) {
    Accum& acc = accum[{dp.relation, dp.attribute}];
    acc.frequency += dp.frequency;
    acc.ids.push_back(dp.tuple);
  }

  auto folded = std::make_shared<std::vector<AttributeOccurrence>>();
  folded->reserve(accum.size());
  for (auto& [key, acc] : accum) {
    std::sort(acc.ids.begin(), acc.ids.end());
    acc.ids.erase(std::unique(acc.ids.begin(), acc.ids.end()),
                  acc.ids.end());
    AttributeOccurrence occ;
    occ.relation = key.first;
    occ.attribute = key.second;
    occ.frequency = acc.frequency;
    occ.tuples = PostingList::Build(std::move(acc.ids),
                                    options_.index.compress_postings);
    folded->push_back(std::move(occ));
  }

  auto* next = new TermEntry();
  next->base = std::move(folded);
  next->doc_freq = old->doc_freq;
  PublishEntry(shard, node, next);
  compactions_.fetch_add(1, std::memory_order_relaxed);
  epoch_.BumpEpoch();
  return true;
}

std::vector<std::string> ConcurrentTermIndex::TakeCompactionCandidates() {
  std::lock_guard<std::mutex> lock(compact_mu_);
  std::vector<std::string> out = std::move(compaction_candidates_);
  compaction_candidates_.clear();
  return out;
}

// ---------------------------------------------------------------------------
// Snapshot reads

IndexSnapshot ConcurrentTermIndex::Snapshot() const {
  EpochManager::Guard guard = epoch_.Pin();
  // Read the version after pinning: everything published before this
  // version is then guaranteed visible through the pinned pointers.
  const uint64_t version = version_.load(std::memory_order_acquire);
  const uint64_t total = total_tuples_.load(std::memory_order_acquire);
  return IndexSnapshot(this, std::move(guard), version, total);
}

std::vector<TupleId> IndexSnapshot::TuplesFor(const std::string& term) const {
  PostingScratch scratch;
  std::vector<TupleId> out;
  TuplesForInto(term, &scratch, &out);
  return out;
}

void IndexSnapshot::TuplesForInto(const std::string& term,
                                  PostingScratch* scratch,
                                  std::vector<TupleId>* out) const {
  const ConcurrentTermIndex::Node* node = index_->FindNode(term);
  if (node == nullptr) {
    out->clear();
    return;
  }
  const TermEntry* entry = node->entry.load(std::memory_order_acquire);
  scratch->BeginRound();
  if (entry->base != nullptr) {
    // Base postings share the SIMD block-decode kernels with the offline
    // index; each decode lands in a pooled run buffer.
    for (const AttributeOccurrence& occ : *entry->base) {
      occ.tuples.DecodeInto(scratch->AcquireRun());
    }
  }
  if (!entry->delta.empty()) {
    std::vector<TupleId>* fresh = scratch->AcquireRun();
    fresh->clear();
    fresh->reserve(entry->delta.size());
    for (const DeltaPosting& dp : entry->delta) fresh->push_back(dp.tuple);
    std::sort(fresh->begin(), fresh->end());
    fresh->erase(std::unique(fresh->begin(), fresh->end()), fresh->end());
  }
  MergeSortedUniqueInto(scratch, out);
}

uint64_t IndexSnapshot::DocumentFrequency(const std::string& term) const {
  const ConcurrentTermIndex::Node* node = index_->FindNode(term);
  if (node == nullptr) return 0;
  return node->entry.load(std::memory_order_acquire)->doc_freq;
}

// ---------------------------------------------------------------------------
// Whole-index walks (debug / test / bench)

std::vector<std::string> ConcurrentTermIndex::AllTerms() const {
  std::vector<std::string> terms;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->write_mu);
    const Table* table = shard->table.load(std::memory_order_relaxed);
    for (size_t i = 0; i < table->capacity; ++i) {
      const Node* node = table->slots[i].load(std::memory_order_relaxed);
      if (node != nullptr) terms.push_back(node->term);
    }
  }
  std::sort(terms.begin(), terms.end());
  return terms;
}

size_t ConcurrentTermIndex::PostingMemoryBytes() const {
  size_t bytes = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->write_mu);
    const Table* table = shard->table.load(std::memory_order_relaxed);
    for (size_t i = 0; i < table->capacity; ++i) {
      const Node* node = table->slots[i].load(std::memory_order_relaxed);
      if (node == nullptr) continue;
      const TermEntry* entry = node->entry.load(std::memory_order_relaxed);
      if (entry->base != nullptr) {
        for (const AttributeOccurrence& occ : *entry->base) {
          bytes += occ.tuples.MemoryBytes();
        }
      }
      bytes += entry->DeltaBytes();
    }
  }
  return bytes;
}

void ConcurrentTermIndex::DrainGarbage() {
  // Two epoch bumps age out the newest garbage; keep collecting until the
  // retire list is empty (readers may hold pins, so cap the attempts).
  for (int i = 0; i < 8 && epoch_.retired_count() > 0; ++i) {
    epoch_.BumpEpoch();
    epoch_.Collect();
  }
}

}  // namespace matcn::liveindex
