#include "liveindex/index_writer.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "obs/log.h"

namespace matcn::liveindex {

IndexWriter::IndexWriter(Database* db, ConcurrentTermIndex* index,
                         IndexWriterOptions options)
    : db_(db), index_(index), options_(options) {
  if (options_.background_compaction) {
    compactor_ = std::thread([this] { CompactionLoop(); });
  }
}

IndexWriter::~IndexWriter() {
  if (compactor_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(compact_mu_);
      stop_ = true;
    }
    compact_cv_.notify_all();
    compactor_.join();
  }
}

Result<IndexWriter::InsertOutcome> IndexWriter::Insert(RelationId relation,
                                                       Tuple tuple) {
  std::vector<Tuple> batch;
  batch.push_back(std::move(tuple));
  TupleId last;
  Result<uint64_t> version = InsertBatch(relation, std::move(batch), &last);
  if (!version.ok()) return version.status();
  return InsertOutcome{*version, last};
}

Result<uint64_t> IndexWriter::InsertBatch(RelationId relation,
                                          std::vector<Tuple> tuples,
                                          TupleId* last_id) {
  if (tuples.empty()) return index_->version();

  std::vector<std::string> touched_union;
  uint64_t version = 0;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    std::unordered_set<std::string> seen;
    for (Tuple& tuple : tuples) {
      MATCN_RETURN_IF_ERROR(db_->Insert(relation, std::move(tuple)));
      const TupleId id(relation,
                       db_->relation(relation).num_tuples() - 1);
      if (last_id != nullptr) *last_id = id;
      for (std::string& term : index_->ApplyInsert(*db_, id)) {
        if (seen.insert(term).second) {
          touched_union.push_back(std::move(term));
        }
      }
    }
    version = index_->version();
    EnqueueCompactions(index_->TakeCompactionCandidates());
    // Opportunistic garbage collection: the insert already bumped the
    // epoch, so anything two generations old frees here.
    index_->epoch_manager().Collect();
  }

  if (!touched_union.empty()) {
    std::function<void(const std::vector<std::string>&)> hook;
    {
      std::lock_guard<std::mutex> lock(hook_mu_);
      hook = hook_;
    }
    if (hook) hook(touched_union);
  }
  return version;
}

void IndexWriter::set_invalidation_hook(
    std::function<void(const std::vector<std::string>&)> hook) {
  std::lock_guard<std::mutex> lock(hook_mu_);
  hook_ = std::move(hook);
}

void IndexWriter::EnqueueCompactions(std::vector<std::string> terms) {
  if (terms.empty()) return;
  if (!options_.background_compaction) {
    // Inline mode: fold immediately (deterministic for tests). write_mu_
    // is held by the caller; CompactTerm only takes shard locks.
    for (const std::string& term : terms) index_->CompactTerm(term);
    index_->epoch_manager().Collect();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(compact_mu_);
    for (std::string& term : terms) {
      compact_queue_.push_back(std::move(term));
    }
  }
  compact_cv_.notify_one();
}

void IndexWriter::CompactionLoop() {
  std::unique_lock<std::mutex> lock(compact_mu_);
  while (true) {
    compact_cv_.wait(lock,
                     [this] { return stop_ || !compact_queue_.empty(); });
    if (stop_ && compact_queue_.empty()) return;
    const std::string term = std::move(compact_queue_.front());
    compact_queue_.pop_front();
    compacting_ = true;
    lock.unlock();
    {
      // The EBR safety argument requires a single serialized mutator
      // (epoch.h): an unserialized compactor could retire an entry at an
      // epoch stamped concurrently with the insert thread's bump, letting
      // Collect free it while a reader pinned at a later epoch still
      // holds the old pointer. Taking write_mu_ here makes insert,
      // compaction, retire and bump one totally ordered stream.
      std::lock_guard<std::mutex> write_lock(write_mu_);
      index_->CompactTerm(term);
      index_->epoch_manager().Collect();
      MATCN_LOG(Debug)
          .Field("term", term)
          .Field("index_version", index_->version())
          << "background compaction folded term";
    }
    lock.lock();
    compacting_ = false;
    if (compact_queue_.empty()) idle_cv_.notify_all();
  }
}

void IndexWriter::Flush() {
  if (!options_.background_compaction) return;
  std::unique_lock<std::mutex> lock(compact_mu_);
  idle_cv_.wait(lock,
                [this] { return compact_queue_.empty() && !compacting_; });
}

}  // namespace matcn::liveindex
