#ifndef MATCN_LIVEINDEX_INDEX_WRITER_H_
#define MATCN_LIVEINDEX_INDEX_WRITER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "liveindex/concurrent_term_index.h"
#include "liveindex/insert_sink.h"
#include "storage/database.h"
#include "storage/tuple_id.h"

namespace matcn::liveindex {

struct IndexWriterOptions {
  /// Run compaction on a background thread. Disable for deterministic
  /// tests — compaction then happens inline at the end of each insert.
  bool background_compaction = true;
};

/// The single mutation entry point for a ConcurrentTermIndex: serializes
/// database appends + index updates, drives compaction (inline or on a
/// background thread), opportunistically collects epoch garbage, and
/// notifies an invalidation hook with the touched terms so the service
/// layer can evict only the affected cache entries.
///
/// The Database is append-only and not thread-safe for writes; routing
/// every insert through this class is what makes concurrent readers safe.
/// `write_mu_` is also what upholds the EBR single-mutator requirement
/// (see EpochManager::Retire): inserts AND background compaction both
/// mutate the index and retire/bump epochs, so the compaction thread
/// takes the same mutex — never mutate the index around this class.
class IndexWriter : public InsertSink {
 public:
  /// `db` and `index` must outlive the writer. `db` must not be mutated
  /// by anyone else while the writer is alive.
  IndexWriter(Database* db, ConcurrentTermIndex* index,
              IndexWriterOptions options = {});
  ~IndexWriter() override;

  IndexWriter(const IndexWriter&) = delete;
  IndexWriter& operator=(const IndexWriter&) = delete;

  /// Kept as a nested alias — callers predating the InsertSink seam
  /// spell this IndexWriter::InsertOutcome.
  using InsertOutcome = liveindex::InsertOutcome;

  /// Appends `tuple` to `relation`, indexes it, and returns the new index
  /// version plus the assigned tuple id. Thread-safe; inserts are
  /// serialized in call order.
  Result<InsertOutcome> Insert(RelationId relation, Tuple tuple) override;

  /// Batched variant: one version bump per tuple, one invalidation
  /// callback for the union of touched terms. `last_id`, if non-null,
  /// receives the id of the last tuple appended.
  Result<uint64_t> InsertBatch(RelationId relation, std::vector<Tuple> tuples,
                               TupleId* last_id = nullptr);

  /// Called after each insert (outside the write lock) with the distinct
  /// terms it touched. The service layer hooks selective cache
  /// invalidation here.
  void set_invalidation_hook(
      std::function<void(const std::vector<std::string>&)> hook);

  /// Blocks until all queued compaction work has run (no-op inline mode).
  void Flush();

  uint64_t version() const { return index_->version(); }

 private:
  void CompactionLoop();
  void EnqueueCompactions(std::vector<std::string> terms);

  Database* db_;
  ConcurrentTermIndex* index_;
  IndexWriterOptions options_;

  std::mutex write_mu_;  // serializes db append + index update

  std::mutex hook_mu_;
  std::function<void(const std::vector<std::string>&)> hook_;

  // Background compaction queue.
  std::mutex compact_mu_;
  std::condition_variable compact_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::string> compact_queue_;
  bool compacting_ = false;
  bool stop_ = false;
  std::thread compactor_;
};

}  // namespace matcn::liveindex

#endif  // MATCN_LIVEINDEX_INDEX_WRITER_H_
