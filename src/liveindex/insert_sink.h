#ifndef MATCN_LIVEINDEX_INSERT_SINK_H_
#define MATCN_LIVEINDEX_INSERT_SINK_H_

#include <cstdint>

#include "common/status.h"
#include "storage/database.h"
#include "storage/tuple_id.h"

namespace matcn::liveindex {

/// Result of routing one insert: the index version that reflects it and
/// the globally-consistent id the owning writer assigned.
struct InsertOutcome {
  uint64_t version = 0;  // index version after this insert
  TupleId id;            // the appended tuple's id
};

/// Where a server routes protocol INSERTs. Two implementations: the
/// local IndexWriter (unsharded serving — append + index in process) and
/// the coordinator's ShardInsertRouter (forward to the owning shard over
/// the wire, then fan the cache invalidation out locally). The seam is
/// what lets net::Server stay byte-identical across both deployments.
class InsertSink {
 public:
  virtual ~InsertSink() = default;

  /// Appends `tuple` to `relation` wherever that relation lives and
  /// indexes it. Thread-safe; implementations serialize as needed.
  virtual Result<InsertOutcome> Insert(RelationId relation, Tuple tuple) = 0;
};

}  // namespace matcn::liveindex

#endif  // MATCN_LIVEINDEX_INSERT_SINK_H_
