#ifndef MATCN_LIVEINDEX_CONCURRENT_TERM_INDEX_H_
#define MATCN_LIVEINDEX_CONCURRENT_TERM_INDEX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/epoch.h"
#include "indexing/term_index.h"
#include "storage/database.h"
#include "storage/tuple_id.h"

namespace matcn::liveindex {

class ConcurrentTermIndex;

struct LiveIndexOptions {
  /// Tokenization/compression options shared with the offline TermIndex.
  /// The varbyte base postings make compression the natural default here.
  TermIndexOptions index{
      .skip_stopwords = true, .compress_postings = true, .relation_mask = {}};
  /// Number of term-map shards (rounded up to a power of two). Writers
  /// lock one shard; readers never lock.
  size_t num_shards = 16;
  /// Delta entries per term before the term is queued for compaction
  /// (folding the delta into a fresh varbyte base).
  size_t compact_threshold = 64;
};

/// One uncompacted posting: a tuple/attribute hit appended since the
/// term's base was last folded.
struct DeltaPosting {
  RelationId relation = 0;
  uint32_t attribute = 0;
  TupleId tuple;
  uint64_t frequency = 0;  // occurrences of the term in this attribute
};

/// Immutable per-term payload. Writers never mutate a published TermEntry;
/// they copy, extend, publish the copy, and retire the old one through the
/// epoch manager. The varbyte base is shared across copy-on-write
/// generations (folded only by compaction), so the per-insert copy cost is
/// the small delta vector, bounded by LiveIndexOptions::compact_threshold.
struct TermEntry {
  std::shared_ptr<const std::vector<AttributeOccurrence>> base;
  std::vector<DeltaPosting> delta;
  uint64_t doc_freq = 0;

  size_t DeltaBytes() const { return delta.size() * sizeof(DeltaPosting); }
};

/// An epoch-pinned, non-blocking view of the index. Holding a snapshot
/// guarantees every pointer the reads traverse stays alive (memory
/// safety), not that the index is frozen: a concurrent insert committed
/// after the pin may be visible. version() is therefore a floor — reads
/// reflect at least that index version. Per-term reads are individually
/// atomic (seqlock-validated against the term's shard).
class IndexSnapshot {
 public:
  IndexSnapshot(IndexSnapshot&&) = default;
  IndexSnapshot& operator=(IndexSnapshot&&) = default;

  /// Sorted unique ids of tuples containing `term` (base ∪ delta).
  std::vector<TupleId> TuplesFor(const std::string& term) const;

  /// Scratch-backed variant for the query hot path: base postings decode
  /// through the SIMD kernels into pooled run buffers, the delta is
  /// sorted in one more pooled run, and the merge lands in `*out`
  /// (overwritten, capacity reused).
  void TuplesForInto(const std::string& term, PostingScratch* scratch,
                     std::vector<TupleId>* out) const;

  /// Distinct tuples containing `term`.
  uint64_t DocumentFrequency(const std::string& term) const;

  /// Index version at pin time (floor for what the reads reflect).
  uint64_t version() const { return version_; }

  uint64_t total_tuples() const { return total_tuples_; }

 private:
  friend class ConcurrentTermIndex;
  IndexSnapshot(const ConcurrentTermIndex* index, EpochManager::Guard guard,
                uint64_t version, uint64_t total_tuples)
      : index_(index),
        guard_(std::move(guard)),
        version_(version),
        total_tuples_(total_tuples) {}

  const ConcurrentTermIndex* index_;
  EpochManager::Guard guard_;
  uint64_t version_;
  uint64_t total_tuples_;
};

/// A term index whose readers never block: a sharded open-addressing term
/// map read under optimistic lock coupling (per-shard seqlock versions —
/// readers validate, writers lock only their shard), with epoch-based
/// reclamation covering every node/table/entry a reader might still hold,
/// and copy-on-write postings (immutable varbyte base + bounded delta).
///
/// All mutation must be externally serialized (see IndexWriter); reads may
/// come from any number of threads concurrently with the single writer.
class ConcurrentTermIndex {
 public:
  /// Builds from an offline index (typically TermIndex::Build output).
  ConcurrentTermIndex(const TermIndex& seed, LiveIndexOptions options = {});
  explicit ConcurrentTermIndex(LiveIndexOptions options = {});
  ~ConcurrentTermIndex();

  ConcurrentTermIndex(const ConcurrentTermIndex&) = delete;
  ConcurrentTermIndex& operator=(const ConcurrentTermIndex&) = delete;

  /// Pins the current epoch and returns a read view. Cheap; take one per
  /// query.
  IndexSnapshot Snapshot() const;

  /// Indexes one newly appended tuple, bumping the index version. Returns
  /// the distinct terms the tuple touched (for selective cache
  /// invalidation). Writer-serialized (call via IndexWriter).
  std::vector<std::string> ApplyInsert(const Database& db, TupleId id);

  /// Folds `term`'s delta into a fresh varbyte base. Writer-serialized.
  /// Returns false if the term had nothing to fold.
  bool CompactTerm(const std::string& term);

  /// Terms whose delta has crossed compact_threshold since the last call.
  std::vector<std::string> TakeCompactionCandidates();

  /// Monotonically increasing version, bumped once per ApplyInsert.
  uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  uint64_t total_tuples() const {
    return total_tuples_.load(std::memory_order_acquire);
  }
  size_t num_terms() const {
    return num_terms_.load(std::memory_order_acquire);
  }
  uint64_t compactions() const {
    return compactions_.load(std::memory_order_relaxed);
  }
  size_t delta_bytes() const {
    return delta_bytes_.load(std::memory_order_relaxed);
  }

  /// All indexed terms, sorted. Takes every shard's write lock — debug /
  /// test / bench use, not the serving path.
  std::vector<std::string> AllTerms() const;

  /// Posting payload bytes (bases + deltas), write-locked like AllTerms.
  size_t PostingMemoryBytes() const;

  /// Drains epoch garbage until nothing collectable remains (test hook;
  /// IndexWriter calls Collect opportunistically instead).
  void DrainGarbage();

  EpochManager& epoch_manager() const { return epoch_; }

  const LiveIndexOptions& options() const { return options_; }

 private:
  friend class IndexSnapshot;

  // One slot of a shard's open-addressing table. `term`/`hash` are
  // immutable after publication; `entry` swings atomically between COW
  // TermEntry generations. Nodes are only ever added (no term deletion),
  // so readers can trust a non-null slot forever (EBR keeps it alive).
  struct Node {
    Node(std::string t, uint64_t h, const TermEntry* e)
        : term(std::move(t)), hash(h), entry(e) {}
    const std::string term;
    const uint64_t hash;
    std::atomic<const TermEntry*> entry;
  };

  // A fixed-capacity power-of-two open-addressing table. Slots transition
  // null → non-null exactly once; growth publishes a new table and
  // retires the old one (nodes are carried over, never copied).
  struct Table {
    explicit Table(size_t cap);
    const size_t capacity;  // power of two
    std::unique_ptr<std::atomic<Node*>[]> slots;
  };

  struct alignas(64) Shard {
    // Seqlock: odd while a writer is publishing; readers retry on change.
    std::atomic<uint64_t> seq{0};
    std::atomic<const Table*> table;
    size_t size = 0;  // writer-only
    std::mutex write_mu;
  };

  static uint64_t HashTerm(const std::string& term);
  Shard& ShardFor(uint64_t hash) const;

  // Reader-side: find the node for `term`, nullptr if absent. Caller must
  // hold an epoch guard.
  const Node* FindNode(const std::string& term) const;

  // Writer-side (shard write_mu held): find-or-create the node for
  // `term`, growing the table if needed.
  Node* FindOrCreateNode(Shard& shard, const std::string& term,
                         uint64_t hash);

  // Writer-side helper: publish `entry` as `node`'s payload under the
  // shard seqlock, retiring the previous entry.
  void PublishEntry(Shard& shard, Node* node, const TermEntry* entry);

  LiveIndexOptions options_;
  size_t shard_mask_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable EpochManager epoch_;

  std::atomic<uint64_t> version_{0};
  std::atomic<uint64_t> total_tuples_{0};
  std::atomic<size_t> num_terms_{0};
  std::atomic<uint64_t> compactions_{0};
  std::atomic<size_t> delta_bytes_{0};

  // Writer-only compaction queue (ApplyInsert appends, Take... drains).
  std::mutex compact_mu_;
  std::vector<std::string> compaction_candidates_;
};

}  // namespace matcn::liveindex

#endif  // MATCN_LIVEINDEX_CONCURRENT_TERM_INDEX_H_
