#include "net/server.h"

#include <errno.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string_view>
#include <utility>
#include <vector>

#include "core/cn_to_sql.h"
#include "obs/log.h"
#include "obs/prometheus.h"
#include "obs/trace.h"

namespace matcn::net {

namespace {

void Bump(std::atomic<uint64_t>* c) {
  c->fetch_add(1, std::memory_order_relaxed);
}

void Drop(std::atomic<uint64_t>* c) {
  c->fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace

std::string ServerStatsSnapshot::ToString() const {
  // Rendered from the field-visitor, so the string tracks
  // MATCN_SERVER_STATS_FIELDS with no second list to maintain.
  std::string out;
  VisitFields([&out](const char* name, uint64_t value, obs::MetricKind,
                     const char*) {
    if (!out.empty()) out += ' ';
    out += name;
    out += '=';
    out += std::to_string(value);
  });
  return out;
}

Server::Server(QueryService* service, const DatabaseSchema* schema,
               ServerOptions options)
    : Server(service, schema, nullptr, std::move(options)) {}

Server::Server(QueryService* service, const DatabaseSchema* schema,
               liveindex::InsertSink* writer, ServerOptions options)
    : service_(service), schema_(schema), writer_(writer),
      options_(std::move(options)),
      loop_guard_(std::make_shared<LoopGuard>()) {}

Server::~Server() {
  Shutdown();
  // Detach in-flight completion callbacks from the loop before it dies:
  // they may still fire on QueryService workers after this destructor.
  {
    std::lock_guard<std::mutex> lock(loop_guard_->mu);
    loop_guard_->loop = nullptr;
  }
  loop_.reset();
}

Status Server::Start() {
  if (started_.exchange(true)) {
    return Status::AlreadyExists("server already started");
  }
  loop_ = std::make_unique<EventLoop>();
  if (!loop_->ok()) return Status::IOError("epoll/eventfd setup failed");
  {
    std::lock_guard<std::mutex> lock(loop_guard_->mu);
    loop_guard_->loop = loop_.get();
  }
  Result<ScopedFd> listener = ListenTcp(options_.host, options_.port,
                                        options_.listen_backlog, &port_);
  MATCN_RETURN_IF_ERROR(listener.status());
  listen_fd_ = std::move(listener).value();
  MATCN_RETURN_IF_ERROR(SetNonBlocking(listen_fd_.get()));
  MATCN_RETURN_IF_ERROR(
      loop_->AddFd(listen_fd_.get(), EPOLLIN,
                   [this](uint32_t events) { HandleAccept(events); }));
  // The drain trigger: NotifyShutdown() flips the flag and pokes the
  // eventfd from any context (including a signal handler).
  loop_->SetWakeupCallback([this] {
    if (shutdown_requested_.load(std::memory_order_acquire)) BeginDrain();
  });
  if (options_.metrics_port >= 0) {
    Result<ScopedFd> admin =
        ListenTcp(options_.host, static_cast<uint16_t>(options_.metrics_port),
                  options_.listen_backlog, &metrics_port_);
    MATCN_RETURN_IF_ERROR(admin.status());
    metrics_listen_fd_ = std::move(admin).value();
    MATCN_RETURN_IF_ERROR(SetNonBlocking(metrics_listen_fd_.get()));
    MATCN_RETURN_IF_ERROR(
        loop_->AddFd(metrics_listen_fd_.get(), EPOLLIN,
                     [this](uint32_t events) { HandleMetricsAccept(events); }));
  }
  // The sweep also reaps stale metrics scrapes, so it must run whenever
  // the admin endpoint is up even if the wire idle timeout is disabled.
  if (options_.idle_timeout_ms > 0 || metrics_listen_fd_.valid()) {
    ArmSweepTimer();
  }
  if (writer_ != nullptr) {
    insert_worker_ = std::thread([this] { InsertWorkerLoop(); });
  }
  loop_thread_ = std::thread([this] { RunLoop(); });
  MATCN_LOG(Info)
      .Field("host", options_.host)
      .Field("port", port_)
      .Field("metrics_port", metrics_port_)
      .Field("protocol", static_cast<uint32_t>(kProtocolVersion))
      .Field("writer", writer_ != nullptr ? 1 : 0)
      << "server listening";
  return Status::OK();
}

void Server::ArmSweepTimer() {
  // Tick at half the tightest enabled timeout, capped at 1s so an idle
  // server wakes at most once a second.
  int64_t period = 1000;
  if (options_.idle_timeout_ms > 0) {
    period = std::min(period, options_.idle_timeout_ms / 2);
  }
  if (metrics_listen_fd_.valid() && options_.metrics_idle_timeout_ms > 0) {
    period = std::min(period, options_.metrics_idle_timeout_ms / 2);
  }
  period = std::max<int64_t>(1, period);
  sweep_timer_ = loop_->RunAfter(period, [this] {
    SweepIdleConnections();
    if (!draining_) ArmSweepTimer();
  });
}

void Server::RunLoop() { loop_->Run(); }

void Server::NotifyShutdown() {
  shutdown_requested_.store(true, std::memory_order_release);
  if (loop_ != nullptr) loop_->Wakeup();
}

void Server::Wait() {
  std::lock_guard<std::mutex> lock(join_mu_);
  if (joined_.load() || !loop_thread_.joinable()) return;
  loop_thread_.join();
  joined_.store(true);
}

void Server::Shutdown() {
  if (!started_.load()) return;
  NotifyShutdown();
  Wait();
  StopInsertWorker();
}

void Server::StopInsertWorker() {
  if (!insert_worker_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(insert_mu_);
    insert_stop_ = true;
  }
  insert_cv_.notify_all();
  insert_worker_.join();
}

void Server::HandleAccept(uint32_t /*events*/) {
  while (true) {
    const int fd = ::accept4(listen_fd_.get(), nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      return;  // transient accept errors: try again on the next EPOLLIN
    }
    ScopedFd client(fd);
    if (draining_) continue;  // closing the fd is the refusal
    if (connections_.size() >= options_.max_connections) {
      // Refuse politely: one GOING_AWAY frame, best effort, then close.
      WireWriter w;
      w.Str("connection limit reached (" +
            std::to_string(options_.max_connections) + ")");
      std::string frame;
      AppendFrame(&frame, FrameType::kGoingAway, 0, w.buffer());
      (void)::send(client.get(), frame.data(), frame.size(), MSG_NOSIGNAL);
      Bump(&stats_.connections_refused);
      continue;
    }
    const uint64_t id = next_connection_id_++;
    Connection::Callbacks callbacks;
    callbacks.on_frame = [this](Connection* c, const FrameHeader& h,
                                std::string_view p) { OnFrame(c, h, p); };
    callbacks.on_protocol_error = [this](Connection* c, WireCode code,
                                         const std::string& msg) {
      OnProtocolError(c, code, msg);
    };
    callbacks.on_closed = [this](Connection* c) { OnConnectionClosed(c); };
    auto conn = std::make_unique<Connection>(loop_.get(), std::move(client),
                                             id, options_.max_frame_bytes,
                                             std::move(callbacks));
    if (!conn->Register().ok()) continue;
    connections_.emplace(id, std::move(conn));
    Bump(&stats_.connections_accepted);
    Bump(&stats_.connections_active);
  }
}

void Server::SendFrame(Connection* conn, FrameType type, uint64_t request_id,
                       const std::string& payload) {
  std::string frame;
  AppendFrame(&frame, type, request_id, payload);
  Bump(&stats_.frames_sent);
  stats_.bytes_sent.fetch_add(frame.size(), std::memory_order_relaxed);
  conn->Send(frame);
}

void Server::SendError(Connection* conn, uint64_t request_id, WireCode code,
                       const std::string& message) {
  WireWriter w;
  Encode(ErrorPayload{code, message}, &w);
  SendFrame(conn, FrameType::kError, request_id, w.buffer());
}

void Server::SendGoingAway(Connection* conn, const std::string& reason) {
  WireWriter w;
  w.Str(reason);
  SendFrame(conn, FrameType::kGoingAway, 0, w.buffer());
}

void Server::OnProtocolError(Connection* conn, WireCode code,
                             const std::string& message) {
  Bump(&stats_.protocol_errors);
  MATCN_LOG(Warn)
      .Field("connection", conn->id())
      .Field("code", static_cast<uint64_t>(code))
      .Field("error", message)
      << "protocol error; closing connection";
  SendError(conn, 0, code, message);
  conn->CloseAfterFlush();
}

void Server::OnConnectionClosed(Connection* conn) {
  Drop(&stats_.connections_active);
  // Orphaned in-flight queries: cancel their pipelines; the completion
  // callback finds the connection gone and drops the response.
  if (conn->in_flight > 0) {
    for (auto& [pid, pending] : pending_) {
      if (pending.connection_id == conn->id() && pending.cancel != nullptr) {
        pending.cancel->Cancel();
      }
    }
    for (auto& [pid, pending] : pending_tsfinds_) {
      if (pending.connection_id == conn->id() && pending.cancel != nullptr) {
        pending.cancel->Cancel();
      }
    }
  }
  const uint64_t id = conn->id();
  // Deferred destruction: Close() can be reached from deep inside the
  // connection's own read loop.
  loop_->PostTask([this, id] {
    connections_.erase(id);
    FinishDrainIfIdle();
  });
}

void Server::OnFrame(Connection* conn, const FrameHeader& header,
                     std::string_view payload) {
  Bump(&stats_.frames_received);
  stats_.bytes_received.fetch_add(kFrameHeaderBytes + payload.size(),
                                  std::memory_order_relaxed);
  switch (header.type) {
    case FrameType::kQuery:
      if (draining_) {
        SendError(conn, header.request_id, WireCode::kUnavailable,
                  "server is draining; no new queries accepted");
        return;
      }
      HandleQuery(conn, header.request_id, payload);
      return;
    case FrameType::kStats:
      HandleStats(conn, header.request_id);
      return;
    case FrameType::kInsert:
      if (draining_) {
        SendError(conn, header.request_id, WireCode::kUnavailable,
                  "server is draining; no new inserts accepted");
        return;
      }
      HandleInsert(conn, header.request_id, payload);
      return;
    case FrameType::kTsFind:
      if (draining_) {
        SendError(conn, header.request_id, WireCode::kUnavailable,
                  "server is draining; no new scatters accepted");
        return;
      }
      HandleTsFind(conn, header.request_id, payload);
      return;
    case FrameType::kHeartbeat:
      if (draining_) {
        // A draining shard must read as unhealthy so the coordinator
        // stops scattering to it before the listener disappears.
        SendError(conn, header.request_id, WireCode::kUnavailable,
                  "server is draining");
        return;
      }
      HandleHeartbeat(conn, header.request_id, payload);
      return;
    case FrameType::kPing:
      SendFrame(conn, FrameType::kPong, header.request_id, std::string());
      return;
    default:
      Bump(&stats_.protocol_errors);
      SendError(conn, header.request_id, WireCode::kProtocolError,
                "unexpected frame type " +
                    std::to_string(static_cast<int>(header.type)));
      return;
  }
}

void Server::HandleQuery(Connection* conn, uint64_t request_id,
                         std::string_view payload) {
  QueryRequest request;
  if (!Decode(payload, &request)) {
    Bump(&stats_.protocol_errors);
    SendError(conn, request_id, WireCode::kProtocolError,
              "malformed QUERY payload");
    conn->CloseAfterFlush();
    return;
  }
  Result<KeywordQuery> query = KeywordQuery::FromKeywords(request.keywords);
  if (!query.ok()) {
    SendError(conn, request_id, StatusToWireCode(query.status()),
              query.status().message());
    return;
  }

  Deadline deadline = Deadline::Infinite();
  if (request.deadline_ms > 0) {
    deadline = Deadline::AfterMillis(request.deadline_ms);
  } else if (service_->options().default_deadline_ms > 0) {
    deadline = Deadline::AfterMillis(service_->options().default_deadline_ms);
  }
  QueryRequestOptions request_options;
  request_options.t_max = request.t_max;
  request_options.trace = request.trace;

  const uint64_t pid = next_pending_id_++;
  PendingQuery pending;
  pending.connection_id = conn->id();
  pending.request_id = request_id;
  pending.max_cns = request.max_cns;
  pending.include_sql = request.include_sql;
  pending.trace = request.trace;
  pending_.emplace(pid, std::move(pending));
  ++conn->in_flight;
  Bump(&stats_.queries_received);
  Bump(&stats_.queries_in_flight);

  // The completion callback runs on a QueryService worker (or, for cache
  // hits and rejects, synchronously right here on the loop thread). It
  // only touches the loop through the guard, so a worker finishing after
  // server teardown is harmless.
  std::shared_ptr<LoopGuard> guard = loop_guard_;
  Server* self = this;
  std::shared_ptr<CancelToken> cancel = service_->SubmitAsync(
      *query, deadline, request_options,
      [self, guard, pid](Result<QueryResponse> response) {
        std::lock_guard<std::mutex> lock(guard->mu);
        if (guard->loop == nullptr) return;
        guard->loop->PostTask(
            [self, pid, response = std::move(response)]() mutable {
              self->OnQueryDone(pid, std::move(response));
            });
      });
  auto it = pending_.find(pid);
  if (it != pending_.end()) it->second.cancel = std::move(cancel);
}

void Server::OnQueryDone(uint64_t pending_id,
                         Result<QueryResponse> response) {
  auto pending_it = pending_.find(pending_id);
  if (pending_it == pending_.end()) return;  // force-drained
  const PendingQuery pending = std::move(pending_it->second);
  pending_.erase(pending_it);
  Drop(&stats_.queries_in_flight);

  auto conn_it = connections_.find(pending.connection_id);
  if (conn_it == connections_.end() || conn_it->second->closed()) {
    FinishDrainIfIdle();
    return;  // client went away; response undeliverable
  }
  Connection* conn = conn_it->second.get();
  --conn->in_flight;
  conn->last_activity = std::chrono::steady_clock::now();

  if (!response.ok()) {
    SendError(conn, pending.request_id, StatusToWireCode(response.status()),
              response.status().message());
  } else {
    const QueryResponse& qr = *response;
    const GenerationResult& result = *qr.result;
    std::string frames;

    // Server-side spans hang off the request root so the waterfall shows
    // render + flush time next to the pipeline stages.
    obs::Trace* trace = qr.trace.get();
    const uint32_t sql_span =
        trace != nullptr ? trace->BeginSpan("sql_emit", qr.trace_root) : 0;

    ResultHeader header;
    header.cache_hit = qr.cache_hit;
    header.degraded = qr.degraded;
    header.degraded_reason = qr.degraded_reason;
    header.num_tuple_sets = static_cast<uint32_t>(result.tuple_sets.size());
    header.num_matches = static_cast<uint32_t>(result.matches.size());
    header.num_cns = static_cast<uint32_t>(result.cns.size());
    {
      WireWriter w;
      Encode(header, &w);
      AppendFrame(&frames, FrameType::kResultHeader, pending.request_id,
                  w.buffer());
      Bump(&stats_.frames_sent);
    }

    const size_t limit =
        pending.max_cns == 0
            ? result.cns.size()
            : std::min<size_t>(pending.max_cns, result.cns.size());
    for (size_t i = 0; i < limit; ++i) {
      const CandidateNetwork& cn = result.cns[i];
      CnRecord record;
      record.index = static_cast<uint32_t>(i);
      record.num_nodes = static_cast<uint16_t>(cn.size());
      record.num_non_free = static_cast<uint16_t>(cn.num_non_free());
      // Render against the *normalized* query the service executed —
      // cached results are keyed to its keyword order.
      record.text = cn.ToString(*schema_, qr.query);
      if (pending.include_sql) {
        record.sql = CandidateNetworkToSql(cn, *schema_, qr.query);
      }
      WireWriter w;
      Encode(record, &w);
      AppendFrame(&frames, FrameType::kCnRecord, pending.request_id,
                  w.buffer());
      Bump(&stats_.frames_sent);
    }

    if (trace != nullptr) trace->EndSpan(sql_span, limit);

    ResultTrailer trailer;
    trailer.server_latency_us = static_cast<uint64_t>(qr.latency_ms * 1000.0);
    trailer.cns_sent = static_cast<uint32_t>(limit);
    trailer.cns_total = static_cast<uint32_t>(result.cns.size());
    {
      WireWriter w;
      Encode(trailer, &w);
      AppendFrame(&frames, FrameType::kResultTrailer, pending.request_id,
                  w.buffer());
      Bump(&stats_.frames_sent);
    }
    // The TRACE frame (wire v4) rides after the trailer, only when the
    // client asked — sampled/slow-log traces stay server-side. Snapshot
    // *after* the wire_flush span ends so the breakdown includes it.
    const uint32_t flush_span =
        trace != nullptr ? trace->BeginSpan("wire_flush", qr.trace_root) : 0;
    stats_.bytes_sent.fetch_add(frames.size(), std::memory_order_relaxed);
    conn->Send(frames);
    if (trace != nullptr) trace->EndSpan(flush_span, frames.size());

    if (pending.trace && trace != nullptr) {
      const obs::TraceSnapshot snap = trace->Snapshot();
      TracePayload tp;
      tp.total_us = snap.total_us;
      tp.dropped = snap.dropped;
      tp.spans.reserve(snap.spans.size());
      for (const obs::SpanView& s : snap.spans) {
        WireSpan ws;
        ws.name = std::string(s.name);
        ws.id = s.id;
        ws.parent = s.parent;
        ws.start_us = static_cast<uint64_t>(s.start_us);
        ws.duration_us = static_cast<uint64_t>(s.duration_us);
        ws.value = s.value;
        tp.spans.push_back(std::move(ws));
      }
      WireWriter w;
      Encode(tp, &w);
      SendFrame(conn, FrameType::kTrace, pending.request_id, w.buffer());
    }
  }

  if (draining_ && conn->in_flight == 0 && !conn->closed()) {
    SendGoingAway(conn, "server shutting down");
    conn->CloseAfterFlush();
  }
  FinishDrainIfIdle();
}

void Server::HandleInsert(Connection* conn, uint64_t request_id,
                          std::string_view payload) {
  if (writer_ == nullptr) {
    SendError(conn, request_id, WireCode::kUnimplemented,
              "server has no live index; INSERT unsupported");
    return;
  }
  InsertRequest request;
  if (!Decode(payload, &request)) {
    Bump(&stats_.protocol_errors);
    SendError(conn, request_id, WireCode::kProtocolError,
              "malformed INSERT payload");
    conn->CloseAfterFlush();
    return;
  }
  const std::optional<RelationId> relation =
      schema_->RelationIdByName(request.relation);
  if (!relation.has_value()) {
    SendError(conn, request_id, WireCode::kNotFound,
              "unknown relation '" + request.relation + "'");
    return;
  }
  Tuple tuple;
  tuple.reserve(request.values.size());
  for (WireValue& value : request.values) {
    if (value.tag == 0) {
      tuple.emplace_back(value.int_value);
    } else if (value.tag == 1) {
      tuple.emplace_back(std::move(value.text_value));
    } else {
      SendError(conn, request_id, WireCode::kInvalidArgument,
                "unknown value tag " + std::to_string(value.tag));
      return;
    }
  }
  // Decode and validation stay on the loop thread (cheap, and malformed
  // frames fail in wire order); the index mutation and its invalidation
  // hook — which walks every cache shard under lock — run on the
  // dedicated insert worker, so a hot write stream or a large result
  // cache never stalls queries, pings and accepts for the other
  // connections. The single FIFO worker keeps wire-order = insert-order,
  // and the reply is only sent after the hook ran: an acknowledged
  // insert implies the stale cache entries are already gone.
  const uint64_t pid = next_pending_id_++;
  pending_inserts_.emplace(pid, PendingInsert{conn->id(), request_id});
  ++conn->in_flight;
  {
    std::lock_guard<std::mutex> lock(insert_mu_);
    insert_queue_.push_back(InsertJob{pid, *relation, std::move(tuple)});
  }
  insert_cv_.notify_one();
}

void Server::InsertWorkerLoop() {
  std::unique_lock<std::mutex> lock(insert_mu_);
  while (true) {
    insert_cv_.wait(lock,
                    [this] { return insert_stop_ || !insert_queue_.empty(); });
    // Jobs still queued at stop were never acknowledged (the loop is
    // already gone), so dropping them is safe — the client sees the
    // connection close, not a lost ack.
    if (insert_stop_) return;
    InsertJob job = std::move(insert_queue_.front());
    insert_queue_.pop_front();
    lock.unlock();
    Result<liveindex::IndexWriter::InsertOutcome> outcome =
        writer_->Insert(job.relation, std::move(job.tuple));
    {
      std::lock_guard<std::mutex> guard_lock(loop_guard_->mu);
      if (loop_guard_->loop != nullptr) {
        loop_guard_->loop->PostTask(
            [this, pid = job.pending_id,
             outcome = std::move(outcome)]() mutable {
              OnInsertDone(pid, std::move(outcome));
            });
      }
    }
    lock.lock();
  }
}

void Server::OnInsertDone(
    uint64_t pending_id,
    Result<liveindex::IndexWriter::InsertOutcome> outcome) {
  auto pending_it = pending_inserts_.find(pending_id);
  if (pending_it == pending_inserts_.end()) return;  // force-drained
  const PendingInsert pending = pending_it->second;
  pending_inserts_.erase(pending_it);

  auto conn_it = connections_.find(pending.connection_id);
  if (conn_it == connections_.end() || conn_it->second->closed()) {
    FinishDrainIfIdle();
    return;  // client went away; reply undeliverable
  }
  Connection* conn = conn_it->second.get();
  --conn->in_flight;
  conn->last_activity = std::chrono::steady_clock::now();

  if (!outcome.ok()) {
    SendError(conn, pending.request_id, StatusToWireCode(outcome.status()),
              outcome.status().message());
  } else {
    InsertResult result;
    result.index_version = outcome->version;
    result.relation = outcome->id.relation();
    result.row = outcome->id.row();
    WireWriter w;
    Encode(result, &w);
    SendFrame(conn, FrameType::kInsertResult, pending.request_id, w.buffer());
  }

  if (draining_ && conn->in_flight == 0 && !conn->closed()) {
    SendGoingAway(conn, "server shutting down");
    conn->CloseAfterFlush();
  }
  FinishDrainIfIdle();
}

void Server::HandleTsFind(Connection* conn, uint64_t request_id,
                          std::string_view payload) {
  TsFindRequest request;
  if (!Decode(payload, &request)) {
    Bump(&stats_.protocol_errors);
    SendError(conn, request_id, WireCode::kProtocolError,
              "malformed TSFIND payload");
    conn->CloseAfterFlush();
    return;
  }
  Result<KeywordQuery> query = KeywordQuery::FromKeywords(request.keywords);
  if (!query.ok()) {
    SendError(conn, request_id, StatusToWireCode(query.status()),
              query.status().message());
    return;
  }
  Deadline deadline = Deadline::Infinite();
  if (request.deadline_ms > 0) {
    deadline = Deadline::AfterMillis(request.deadline_ms);
  } else if (service_->options().default_deadline_ms > 0) {
    deadline = Deadline::AfterMillis(service_->options().default_deadline_ms);
  }
  const uint64_t pid = next_pending_id_++;
  pending_tsfinds_.emplace(pid, PendingTsFind{conn->id(), request_id, nullptr});
  ++conn->in_flight;
  Bump(&stats_.queries_received);
  Bump(&stats_.queries_in_flight);
  std::shared_ptr<LoopGuard> guard = loop_guard_;
  Server* self = this;
  std::shared_ptr<CancelToken> cancel = service_->SubmitTsFindAsync(
      *query, deadline, [self, guard, pid](Result<TupleSetBatch> batch) {
        std::lock_guard<std::mutex> lock(guard->mu);
        if (guard->loop == nullptr) return;
        guard->loop->PostTask([self, pid, batch = std::move(batch)]() mutable {
          self->OnTsFindDone(pid, std::move(batch));
        });
      });
  auto it = pending_tsfinds_.find(pid);
  if (it != pending_tsfinds_.end()) it->second.cancel = std::move(cancel);
}

void Server::OnTsFindDone(uint64_t pending_id, Result<TupleSetBatch> batch) {
  auto pending_it = pending_tsfinds_.find(pending_id);
  if (pending_it == pending_tsfinds_.end()) return;  // force-drained
  const PendingTsFind pending = std::move(pending_it->second);
  pending_tsfinds_.erase(pending_it);
  Drop(&stats_.queries_in_flight);

  auto conn_it = connections_.find(pending.connection_id);
  if (conn_it == connections_.end() || conn_it->second->closed()) {
    FinishDrainIfIdle();
    return;  // coordinator went away; batch undeliverable
  }
  Connection* conn = conn_it->second.get();
  --conn->in_flight;
  conn->last_activity = std::chrono::steady_clock::now();

  if (!batch.ok()) {
    SendError(conn, pending.request_id, StatusToWireCode(batch.status()),
              batch.status().message());
  } else {
    TsFindResult result;
    result.index_version = (*batch).index_version;
    result.ts_micros = static_cast<uint64_t>((*batch).ts_millis * 1000.0);
    result.degraded = (*batch).degraded;
    result.degraded_reason = (*batch).degraded_reason;
    result.tuple_sets.reserve((*batch).tuple_sets.size());
    for (const TupleSet& ts : (*batch).tuple_sets) {
      WireTupleSet wts;
      wts.relation = ts.relation;
      wts.termset = ts.termset;
      wts.tuples.reserve(ts.tuples.size());
      for (const TupleId& id : ts.tuples) wts.tuples.push_back(id.packed());
      result.tuple_sets.push_back(std::move(wts));
    }
    WireWriter w;
    Encode(result, &w);
    SendFrame(conn, FrameType::kTsFindResult, pending.request_id, w.buffer());
  }

  if (draining_ && conn->in_flight == 0 && !conn->closed()) {
    SendGoingAway(conn, "server shutting down");
    conn->CloseAfterFlush();
  }
  FinishDrainIfIdle();
}

void Server::HandleHeartbeat(Connection* conn, uint64_t request_id,
                             std::string_view payload) {
  Heartbeat hb;
  if (!Decode(payload, &hb)) {
    Bump(&stats_.protocol_errors);
    SendError(conn, request_id, WireCode::kProtocolError,
              "malformed HEARTBEAT payload");
    conn->CloseAfterFlush();
    return;
  }
  // Answered inline on the loop thread, never queued behind queries: a
  // saturated-but-live shard still acks, so load alone cannot trip the
  // coordinator's failure detector.
  HeartbeatAck ack;
  ack.send_us = hb.send_us;
  ack.index_version = service_->Stats().index_version;
  ack.queries_in_flight =
      static_cast<uint32_t>(stats_.queries_in_flight.load(
          std::memory_order_relaxed));
  ack.shard_id = options_.shard_id;
  WireWriter w;
  Encode(ack, &w);
  SendFrame(conn, FrameType::kHeartbeatAck, request_id, w.buffer());
}

void Server::HandleStats(Connection* conn, uint64_t request_id) {
  const ServiceStatsSnapshot service = service_->Stats();
  const ServerStatsSnapshot netstats = stats_.Snapshot();
  StatsPayload payload;
  payload.submitted = service.submitted;
  payload.completed = service.completed;
  payload.rejected = service.rejected;
  payload.timed_out = service.timed_out;
  payload.degraded = service.degraded;
  payload.failed = service.failed;
  payload.cache_hits = service.cache_hits;
  payload.cache_misses = service.cache_misses;
  payload.queue_depth = service.queue_depth;
  payload.mean_us = static_cast<uint64_t>(service.mean_ms * 1000.0);
  payload.p50_us = static_cast<uint64_t>(service.p50_ms * 1000.0);
  payload.p95_us = static_cast<uint64_t>(service.p95_ms * 1000.0);
  payload.p99_us = static_cast<uint64_t>(service.p99_ms * 1000.0);
  payload.connections_accepted = netstats.connections_accepted;
  payload.connections_active = netstats.connections_active;
  payload.frames_received = netstats.frames_received;
  payload.frames_sent = netstats.frames_sent;
  payload.bytes_received = netstats.bytes_received;
  payload.bytes_sent = netstats.bytes_sent;
  payload.idle_closed = netstats.idle_closed;
  payload.protocol_errors = netstats.protocol_errors;
  payload.queries_in_flight = netstats.queries_in_flight;
  payload.ts_us_mean = static_cast<uint64_t>(service.stages.ts_ms_mean * 1000.0);
  payload.match_us_mean =
      static_cast<uint64_t>(service.stages.match_ms_mean * 1000.0);
  payload.cn_us_mean =
      static_cast<uint64_t>(service.stages.cn_ms_mean * 1000.0);
  payload.cn_eff_permille = static_cast<uint64_t>(
      service.stages.cn_parallel_efficiency * 1000.0);
  payload.cn_workers_x10 =
      static_cast<uint64_t>(service.stages.cn_workers_mean * 10.0);
  payload.index_version = service.index_version;
  payload.index_delta_bytes = service.index_delta_bytes;
  payload.index_compactions = service.index_compactions;
  payload.cache_invalidations = service.cache_invalidations;
  payload.shards_total = service.shards_total;
  payload.shards_healthy = service.shards_healthy;
  payload.shard_scatters = service.shard_scatters;
  payload.shard_scatter_errors = service.shard_scatter_errors;
  payload.shard_degraded_batches = service.shard_degraded_batches;
  payload.shard_merge_us_mean = service.shard_merge_us_mean;
  payload.shard_heartbeats = service.shard_heartbeats;
  payload.shard_reconnects = service.shard_reconnects;
  payload.shard_inserts_routed = service.shard_inserts_routed;
  WireWriter w;
  Encode(payload, &w);
  SendFrame(conn, FrameType::kStatsResult, request_id, w.buffer());
}

void Server::HandleMetricsAccept(uint32_t /*events*/) {
  while (true) {
    const int fd = ::accept4(metrics_listen_fd_.get(), nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error: next EPOLLIN retries
    ScopedFd client(fd);
    // Scrapers are few and short-lived; a small hard cap keeps a stuck
    // scraper from pinning fds without any sweep machinery.
    if (draining_ || metrics_conns_.size() >= 64) continue;
    Status added = loop_->AddFd(
        fd, EPOLLIN, [this, fd](uint32_t events) { OnMetricsEvent(fd, events); });
    if (!added.ok()) continue;
    MetricsConn mc;
    mc.fd = std::move(client);
    mc.last_activity = std::chrono::steady_clock::now();
    metrics_conns_.emplace(fd, std::move(mc));
  }
}

void Server::OnMetricsEvent(int fd, uint32_t events) {
  auto it = metrics_conns_.find(fd);
  if (it == metrics_conns_.end()) return;
  MetricsConn& mc = it->second;
  // Any socket event counts as liveness; a scraper that sends nothing
  // generates none and ages out via SweepIdleConnections.
  mc.last_activity = std::chrono::steady_clock::now();
  if ((events & (EPOLLERR | EPOLLHUP)) != 0 && !mc.responding) {
    CloseMetricsConn(fd);
    return;
  }
  if (!mc.responding) {
    char buf[1024];
    while (true) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n > 0) {
        mc.in.append(buf, static_cast<size_t>(n));
        if (mc.in.size() > 8192) {  // no legitimate scrape request is this big
          CloseMetricsConn(fd);
          return;
        }
        continue;
      }
      if (n == 0) {  // EOF before a full request line
        CloseMetricsConn(fd);
        return;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseMetricsConn(fd);
      return;
    }
    const size_t header_end = mc.in.find("\r\n\r\n");
    if (header_end == std::string::npos) return;  // need more bytes
    // "METHOD SP PATH SP VERSION" — the one line we care about.
    const std::string_view line =
        std::string_view(mc.in).substr(0, mc.in.find("\r\n"));
    const size_t sp1 = line.find(' ');
    const size_t sp2 = sp1 == std::string_view::npos
                           ? std::string_view::npos
                           : line.find(' ', sp1 + 1);
    const std::string_view method =
        sp1 == std::string_view::npos ? std::string_view() : line.substr(0, sp1);
    const std::string_view path =
        sp2 == std::string_view::npos ? std::string_view()
                                      : line.substr(sp1 + 1, sp2 - sp1 - 1);
    std::string status_line;
    std::string body;
    if (method != "GET") {
      status_line = "HTTP/1.0 405 Method Not Allowed";
      body = "only GET is supported\n";
    } else if (path == "/metrics") {
      status_line = "HTTP/1.0 200 OK";
      body = RenderMetricsText();
    } else {
      status_line = "HTTP/1.0 404 Not Found";
      body = "try /metrics\n";
    }
    mc.out = status_line +
             "\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8"
             "\r\nContent-Length: " +
             std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" +
             body;
    mc.responding = true;
    loop_->UpdateFd(fd, EPOLLOUT);
  }
  while (mc.sent < mc.out.size()) {
    const ssize_t n = ::send(fd, mc.out.data() + mc.sent,
                             mc.out.size() - mc.sent, MSG_NOSIGNAL);
    if (n > 0) {
      mc.sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    CloseMetricsConn(fd);
    return;
  }
  CloseMetricsConn(fd);  // Connection: close — one scrape per connection
}

void Server::CloseMetricsConn(int fd) {
  auto it = metrics_conns_.find(fd);
  if (it == metrics_conns_.end()) return;
  loop_->RemoveFd(fd);
  metrics_conns_.erase(it);  // ScopedFd closes
}

void Server::CloseAllMetricsConns() {
  for (auto& [fd, mc] : metrics_conns_) loop_->RemoveFd(fd);
  metrics_conns_.clear();
}

std::string Server::RenderMetricsText() const {
  const ServiceStatsSnapshot service = service_->Stats();
  const ServerStatsSnapshot netstats = stats_.Snapshot();
  obs::PrometheusWriter w;
  w.Gauge("matcn_protocol_version", "Wire protocol version served",
          static_cast<double>(kProtocolVersion));
  service.VisitFields([&w](const char* name, auto value, obs::MetricKind kind,
                           const char* help) {
    const std::string metric = std::string("matcn_service_") + name;
    if (kind == obs::MetricKind::kCounter) {
      w.Counter(metric, help, static_cast<double>(value));
    } else {
      w.Gauge(metric, help, static_cast<double>(value));
    }
  });
  netstats.VisitFields([&w](const char* name, uint64_t value,
                            obs::MetricKind kind, const char* help) {
    const std::string metric = std::string("matcn_server_") + name;
    if (kind == obs::MetricKind::kCounter) {
      w.Counter(metric, help, static_cast<double>(value));
    } else {
      w.Gauge(metric, help, static_cast<double>(value));
    }
  });
  const HistogramSnapshot& h = service.latency_histogram;
  w.Histogram("matcn_service_latency_seconds",
              "End-to-end query latency distribution",
              obs::CoarsenBucketsToSeconds(h.buckets, 32), h.count,
              static_cast<double>(h.sum_micros) / 1e6);
  return w.Release();
}

void Server::SweepIdleConnections() {
  if (draining_) return;
  const auto now = std::chrono::steady_clock::now();
  // A scrape is one short request/response exchange; anything parked this
  // long is a stuck or silent scraper holding one of the capped slots.
  if (options_.metrics_idle_timeout_ms > 0) {
    const auto scrape_limit =
        std::chrono::milliseconds(options_.metrics_idle_timeout_ms);
    std::vector<int> stale_scrapes;
    for (const auto& [fd, mc] : metrics_conns_) {
      if (now - mc.last_activity >= scrape_limit) stale_scrapes.push_back(fd);
    }
    for (int fd : stale_scrapes) CloseMetricsConn(fd);
  }
  if (options_.idle_timeout_ms <= 0) return;
  const auto limit = std::chrono::milliseconds(options_.idle_timeout_ms);
  for (auto& [id, conn] : connections_) {
    if (conn->closed() || conn->in_flight > 0) continue;
    if (now - conn->last_activity >= limit) {
      Bump(&stats_.idle_closed);
      SendGoingAway(conn.get(), "idle timeout");
      conn->CloseAfterFlush();
    }
  }
}

void Server::BeginDrain() {
  if (draining_) return;
  draining_ = true;
  MATCN_LOG(Info)
      .Field("in_flight", pending_.size() + pending_inserts_.size())
      .Field("connections", connections_.size())
      .Field("deadline_ms", options_.drain_deadline_ms)
      << "drain started";
  // Stop accepting: unregister and close the listen socket so the OS
  // refuses new connections immediately.
  if (listen_fd_.valid()) {
    loop_->RemoveFd(listen_fd_.get());
    listen_fd_.Reset();
  }
  // Scrapes are point-in-time reads with no in-flight state worth
  // waiting for: drop the admin endpoint wholesale.
  if (metrics_listen_fd_.valid()) {
    loop_->RemoveFd(metrics_listen_fd_.get());
    metrics_listen_fd_.Reset();
  }
  CloseAllMetricsConns();
  if (sweep_timer_ != 0) loop_->CancelTimer(sweep_timer_);
  // Idle connections can go now; busy ones get their responses first.
  for (auto& [id, conn] : connections_) {
    if (!conn->closed() && conn->in_flight == 0) {
      SendGoingAway(conn.get(), "server shutting down");
      conn->CloseAfterFlush();
    }
  }
  drain_timer_ = loop_->RunAfter(options_.drain_deadline_ms,
                                 [this] { ForceFinishDrain(); });
  FinishDrainIfIdle();
}

void Server::FinishDrainIfIdle() {
  if (!draining_ || drain_done_) return;
  if (!pending_.empty() || !pending_inserts_.empty() ||
      !pending_tsfinds_.empty()) {
    return;
  }
  for (const auto& [id, conn] : connections_) {
    if (!conn->closed()) return;  // still flushing a response
  }
  drain_done_ = true;
  if (drain_timer_ != 0) loop_->CancelTimer(drain_timer_);
  loop_->Stop();
}

void Server::ForceFinishDrain() {
  if (drain_done_) return;
  // Drain deadline expired: cancel whatever is still running and hang up.
  // Cancelled pipelines stop at their next cooperative check; their
  // responses are dropped (the connections are gone).
  MATCN_LOG(Warn)
      .Field("cancelled_queries", pending_.size())
      .Field("dropped_inserts", pending_inserts_.size())
      << "drain deadline expired; forcing shutdown";
  for (auto& [pid, pending] : pending_) {
    if (pending.cancel != nullptr) pending.cancel->Cancel();
    Bump(&stats_.drain_cancelled);
    Drop(&stats_.queries_in_flight);
  }
  pending_.clear();
  for (auto& [pid, pending] : pending_tsfinds_) {
    if (pending.cancel != nullptr) pending.cancel->Cancel();
    Bump(&stats_.drain_cancelled);
    Drop(&stats_.queries_in_flight);
  }
  pending_tsfinds_.clear();
  // In-flight inserts cannot be cancelled (the index mutation must stay
  // atomic); their replies are simply dropped with the connections.
  pending_inserts_.clear();
  for (auto& [id, conn] : connections_) {
    if (!conn->closed()) conn->Close();
  }
  drain_done_ = true;
  loop_->Stop();
}

}  // namespace matcn::net
