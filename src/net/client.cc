#include "net/client.h"

namespace matcn::net {

Result<Client> Client::Connect(const std::string& host, uint16_t port,
                               ClientOptions options) {
  Result<ScopedFd> fd = ConnectTcp(host, port, options.timeout_ms);
  MATCN_RETURN_IF_ERROR(fd.status());
  MATCN_RETURN_IF_ERROR(SetIoTimeout(fd->get(), options.timeout_ms));
  Client client(std::move(fd).value());
  client.options_ = options;
  return client;
}

Status Client::SendRequest(FrameType type, const std::string& payload) {
  if (!fd_.valid()) return Status::IOError("client not connected");
  std::string frame;
  AppendFrame(&frame, type, next_request_id_, payload);
  Status status = WriteAll(fd_.get(), frame);
  if (!status.ok()) fd_.Reset();
  return status;
}

Status Client::ReadFrame(FrameHeader* header, std::string* payload) {
  while (true) {
    std::string raw;
    Status status = ReadExactly(fd_.get(), kFrameHeaderBytes, &raw);
    if (!status.ok()) {
      fd_.Reset();
      return status.code() == StatusCode::kNotFound
                 ? Status::IOError("server closed the connection")
                 : status;
    }
    const HeaderParse parse = ParseFrameHeader(raw, header);
    if (parse != HeaderParse::kOk) {
      fd_.Reset();
      return Status::IOError(parse == HeaderParse::kBadMagic
                                 ? "bad frame magic from server"
                                 : "unsupported protocol version");
    }
    if (header->payload_len > options_.max_frame_bytes) {
      fd_.Reset();
      return Status::IOError("server frame exceeds client frame limit");
    }
    payload->clear();
    status = ReadExactly(fd_.get(), header->payload_len, payload);
    if (!status.ok()) {
      fd_.Reset();
      return status;
    }
    if (header->type == FrameType::kGoingAway) {
      // Unsolicited: the server is draining or dropped us (idle timeout).
      // Surface the reason; subsequent calls need a reconnect.
      WireReader r(*payload);
      std::string reason;
      r.Str(&reason);
      fd_.Reset();
      return Status::ResourceExhausted(
          "server closing connection: " +
          (reason.empty() ? std::string("(no reason)") : reason));
    }
    // Request id 0 on an ERROR frame means connection-scoped (oversized
    // frame, malformed input): it applies to whatever is outstanding, and
    // the server hangs up after it.
    if (header->request_id != next_request_id_ &&
        !(header->type == FrameType::kError && header->request_id == 0)) {
      continue;  // stale frame from an aborted earlier exchange
    }
    return Status::OK();
  }
}

Result<Client::QueryResult> Client::Query(
    const std::vector<std::string>& keywords) {
  return Query(keywords, QueryParams());
}

Result<Client::QueryResult> Client::Query(
    const std::vector<std::string>& keywords, const QueryParams& params) {
  ++next_request_id_;
  QueryRequest request;
  request.deadline_ms = params.deadline_ms;
  request.t_max = params.t_max;
  request.max_cns = params.max_cns;
  request.include_sql = params.include_sql;
  request.trace = params.trace;
  request.keywords = keywords;
  WireWriter w;
  Encode(request, &w);
  MATCN_RETURN_IF_ERROR(SendRequest(FrameType::kQuery, w.buffer()));

  QueryResult result;
  bool saw_header = false;
  while (true) {
    FrameHeader header;
    std::string payload;
    MATCN_RETURN_IF_ERROR(ReadFrame(&header, &payload));
    switch (header.type) {
      case FrameType::kError: {
        ErrorPayload error;
        if (!Decode(payload, &error)) {
          fd_.Reset();
          return Status::IOError("malformed ERROR frame");
        }
        return WireCodeToStatus(error.code, error.message);
      }
      case FrameType::kResultHeader: {
        ResultHeader rh;
        if (!Decode(payload, &rh)) {
          fd_.Reset();
          return Status::IOError("malformed RESULT_HEADER frame");
        }
        result.cache_hit = rh.cache_hit;
        result.degraded = rh.degraded;
        result.degraded_reason = rh.degraded_reason;
        result.num_tuple_sets = rh.num_tuple_sets;
        result.num_matches = rh.num_matches;
        result.cns_total = rh.num_cns;
        result.cns.reserve(rh.num_cns);
        saw_header = true;
        break;
      }
      case FrameType::kCnRecord: {
        CnRecord record;
        if (!saw_header || !Decode(payload, &record)) {
          fd_.Reset();
          return Status::IOError("malformed CN_RECORD frame");
        }
        result.cns.push_back(std::move(record));
        break;
      }
      case FrameType::kResultTrailer: {
        ResultTrailer trailer;
        if (!saw_header || !Decode(payload, &trailer)) {
          fd_.Reset();
          return Status::IOError("malformed RESULT_TRAILER frame");
        }
        result.server_latency_us = trailer.server_latency_us;
        result.cns_total = trailer.cns_total;
        if (result.cns.size() != trailer.cns_sent) {
          fd_.Reset();
          return Status::IOError(
              "trailer reports " + std::to_string(trailer.cns_sent) +
              " CN records, received " + std::to_string(result.cns.size()));
        }
        if (!params.trace) return result;
        // v4: one more frame — the span breakdown — follows the trailer.
        MATCN_RETURN_IF_ERROR(ReadFrame(&header, &payload));
        if (header.type != FrameType::kTrace) {
          fd_.Reset();
          return Status::IOError("expected TRACE frame after trailer");
        }
        TracePayload tp;
        if (!Decode(payload, &tp)) {
          fd_.Reset();
          return Status::IOError("malformed TRACE frame");
        }
        result.trace = std::move(tp);
        return result;
      }
      default:
        fd_.Reset();
        return Status::IOError("unexpected frame type in query response");
    }
  }
}

Result<StatsPayload> Client::Stats() {
  ++next_request_id_;
  MATCN_RETURN_IF_ERROR(SendRequest(FrameType::kStats, std::string()));
  FrameHeader header;
  std::string payload;
  MATCN_RETURN_IF_ERROR(ReadFrame(&header, &payload));
  if (header.type == FrameType::kError) {
    ErrorPayload error;
    if (!Decode(payload, &error)) return Status::IOError("malformed ERROR");
    return WireCodeToStatus(error.code, error.message);
  }
  if (header.type != FrameType::kStatsResult) {
    fd_.Reset();
    return Status::IOError("unexpected frame type in stats response");
  }
  StatsPayload stats;
  if (!Decode(payload, &stats)) {
    fd_.Reset();
    return Status::IOError("malformed STATS_RESULT frame");
  }
  return stats;
}

Result<InsertResult> Client::Insert(const std::string& relation,
                                    std::vector<WireValue> values) {
  ++next_request_id_;
  InsertRequest request;
  request.relation = relation;
  request.values = std::move(values);
  WireWriter w;
  Encode(request, &w);
  MATCN_RETURN_IF_ERROR(SendRequest(FrameType::kInsert, w.buffer()));
  FrameHeader header;
  std::string payload;
  MATCN_RETURN_IF_ERROR(ReadFrame(&header, &payload));
  if (header.type == FrameType::kError) {
    ErrorPayload error;
    if (!Decode(payload, &error)) return Status::IOError("malformed ERROR");
    return WireCodeToStatus(error.code, error.message);
  }
  if (header.type != FrameType::kInsertResult) {
    fd_.Reset();
    return Status::IOError("unexpected frame type in insert response");
  }
  InsertResult result;
  if (!Decode(payload, &result)) {
    fd_.Reset();
    return Status::IOError("malformed INSERT_RESULT frame");
  }
  return result;
}

Status Client::Ping() {
  ++next_request_id_;
  MATCN_RETURN_IF_ERROR(SendRequest(FrameType::kPing, std::string()));
  FrameHeader header;
  std::string payload;
  MATCN_RETURN_IF_ERROR(ReadFrame(&header, &payload));
  if (header.type != FrameType::kPong) {
    fd_.Reset();
    return Status::IOError("unexpected frame type in ping response");
  }
  return Status::OK();
}

}  // namespace matcn::net
