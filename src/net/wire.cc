#include "net/wire.h"

namespace matcn::net {

WireCode StatusToWireCode(const Status& status) {
  // StatusCode 0..9 and WireCode 0..9 are the same enumeration by
  // construction (see wire.h); the cast is the mapping.
  return static_cast<WireCode>(static_cast<uint16_t>(status.code()));
}

Status WireCodeToStatus(WireCode code, std::string message) {
  switch (code) {
    case WireCode::kOk:
      return Status::OK();
    case WireCode::kUnavailable:
      return Status::ResourceExhausted(std::move(message));
    case WireCode::kFrameTooLarge:
    case WireCode::kProtocolError:
      return Status::InvalidArgument(std::move(message));
    default:
      if (static_cast<uint16_t>(code) <=
          static_cast<uint16_t>(WireCode::kUnimplemented)) {
        return Status(static_cast<StatusCode>(code), std::move(message));
      }
      return Status::Internal(std::move(message));
  }
}

const char* WireCodeName(WireCode code) {
  switch (code) {
    case WireCode::kOk: return "OK";
    case WireCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case WireCode::kNotFound: return "NOT_FOUND";
    case WireCode::kAlreadyExists: return "ALREADY_EXISTS";
    case WireCode::kOutOfRange: return "OUT_OF_RANGE";
    case WireCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case WireCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case WireCode::kInternal: return "INTERNAL";
    case WireCode::kIOError: return "IO_ERROR";
    case WireCode::kUnimplemented: return "UNIMPLEMENTED";
    case WireCode::kUnavailable: return "UNAVAILABLE";
    case WireCode::kFrameTooLarge: return "FRAME_TOO_LARGE";
    case WireCode::kProtocolError: return "PROTOCOL_ERROR";
  }
  return "UNKNOWN";
}

HeaderParse ParseFrameHeader(std::string_view data, FrameHeader* out) {
  if (data.size() < kFrameHeaderBytes) return HeaderParse::kNeedMore;
  const auto* p = reinterpret_cast<const uint8_t*>(data.data());
  if (p[4] != kMagic0 || p[5] != kMagic1) return HeaderParse::kBadMagic;
  if (p[6] != kProtocolVersion) return HeaderParse::kBadVersion;
  uint32_t len;
  std::memcpy(&len, p, sizeof(len));
  uint64_t request_id;
  std::memcpy(&request_id, p + 8, sizeof(request_id));
  out->payload_len = len;
  out->version = p[6];
  out->type = static_cast<FrameType>(p[7]);
  out->request_id = request_id;
  return HeaderParse::kOk;
}

void AppendFrame(std::string* out, FrameType type, uint64_t request_id,
                 std::string_view payload) {
  char header[kFrameHeaderBytes];
  const uint32_t len = static_cast<uint32_t>(payload.size());
  std::memcpy(header, &len, sizeof(len));
  header[4] = static_cast<char>(kMagic0);
  header[5] = static_cast<char>(kMagic1);
  header[6] = static_cast<char>(kProtocolVersion);
  header[7] = static_cast<char>(type);
  std::memcpy(header + 8, &request_id, sizeof(request_id));
  out->append(header, kFrameHeaderBytes);
  out->append(payload.data(), payload.size());
}

void WireWriter::AppendLe(const void* v, size_t n) {
  // The build targets little-endian Linux; a big-endian port would
  // byte-swap here.
  buf_.append(static_cast<const char*>(v), n);
}

bool WireReader::Take(void* out, size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  std::memcpy(out, data_.data() + pos_, n);
  pos_ += n;
  return true;
}

bool WireReader::U8(uint8_t* v) { return Take(v, sizeof(*v)); }
bool WireReader::U16(uint16_t* v) { return Take(v, sizeof(*v)); }
bool WireReader::U32(uint32_t* v) { return Take(v, sizeof(*v)); }
bool WireReader::U64(uint64_t* v) { return Take(v, sizeof(*v)); }

bool WireReader::Str(std::string* v) {
  uint32_t len;
  if (!U32(&len)) return false;
  if (data_.size() - pos_ < len) {
    ok_ = false;
    return false;
  }
  v->assign(data_.data() + pos_, len);
  pos_ += len;
  return true;
}

void Encode(const QueryRequest& v, WireWriter* w) {
  w->U32(v.deadline_ms);
  w->U16(v.t_max);
  w->U32(v.max_cns);
  w->U8(v.include_sql ? 1 : 0);
  w->U8(v.trace ? 1 : 0);  // v4
  w->U16(static_cast<uint16_t>(v.keywords.size()));
  for (const std::string& kw : v.keywords) w->Str(kw);
}

bool Decode(std::string_view payload, QueryRequest* v) {
  WireReader r(payload);
  uint8_t include_sql = 0;
  uint8_t trace = 0;
  uint16_t n = 0;
  r.U32(&v->deadline_ms);
  r.U16(&v->t_max);
  r.U32(&v->max_cns);
  r.U8(&include_sql);
  r.U8(&trace);
  r.U16(&n);
  v->include_sql = include_sql != 0;
  v->trace = trace != 0;
  v->keywords.clear();
  for (uint16_t i = 0; r.ok() && i < n; ++i) {
    std::string kw;
    if (r.Str(&kw)) v->keywords.push_back(std::move(kw));
  }
  return r.AtEnd();
}

void Encode(const ResultHeader& v, WireWriter* w) {
  w->U8(v.cache_hit ? 1 : 0);
  w->U8(v.degraded ? 1 : 0);
  w->Str(v.degraded_reason);
  w->U32(v.num_tuple_sets);
  w->U32(v.num_matches);
  w->U32(v.num_cns);
}

bool Decode(std::string_view payload, ResultHeader* v) {
  WireReader r(payload);
  uint8_t cache_hit = 0, degraded = 0;
  r.U8(&cache_hit);
  r.U8(&degraded);
  r.Str(&v->degraded_reason);
  r.U32(&v->num_tuple_sets);
  r.U32(&v->num_matches);
  r.U32(&v->num_cns);
  v->cache_hit = cache_hit != 0;
  v->degraded = degraded != 0;
  return r.AtEnd();
}

void Encode(const CnRecord& v, WireWriter* w) {
  w->U32(v.index);
  w->U16(v.num_nodes);
  w->U16(v.num_non_free);
  w->Str(v.text);
  w->Str(v.sql);
}

bool Decode(std::string_view payload, CnRecord* v) {
  WireReader r(payload);
  r.U32(&v->index);
  r.U16(&v->num_nodes);
  r.U16(&v->num_non_free);
  r.Str(&v->text);
  r.Str(&v->sql);
  return r.AtEnd();
}

void Encode(const ResultTrailer& v, WireWriter* w) {
  w->U64(v.server_latency_us);
  w->U32(v.cns_sent);
  w->U32(v.cns_total);
}

bool Decode(std::string_view payload, ResultTrailer* v) {
  WireReader r(payload);
  r.U64(&v->server_latency_us);
  r.U32(&v->cns_sent);
  r.U32(&v->cns_total);
  return r.AtEnd();
}

void Encode(const ErrorPayload& v, WireWriter* w) {
  w->U16(static_cast<uint16_t>(v.code));
  w->Str(v.message);
}

bool Decode(std::string_view payload, ErrorPayload* v) {
  WireReader r(payload);
  uint16_t code = 0;
  r.U16(&code);
  r.Str(&v->message);
  v->code = static_cast<WireCode>(code);
  return r.AtEnd();
}

void Encode(const StatsPayload& v, WireWriter* w) {
#define MATCN_STATS_ENC(field) w->U64(v.field);
  MATCN_STATS_PAYLOAD_FIELDS(MATCN_STATS_ENC)
#undef MATCN_STATS_ENC
}

bool Decode(std::string_view payload, StatsPayload* v) {
  WireReader r(payload);
#define MATCN_STATS_DEC(field) r.U64(&v->field);
  MATCN_STATS_PAYLOAD_FIELDS(MATCN_STATS_DEC)
#undef MATCN_STATS_DEC
  return r.AtEnd();
}

void Encode(const InsertRequest& v, WireWriter* w) {
  w->Str(v.relation);
  w->U16(static_cast<uint16_t>(v.values.size()));
  for (const WireValue& value : v.values) {
    w->U8(value.tag);
    if (value.tag == 0) {
      w->U64(static_cast<uint64_t>(value.int_value));
    } else {
      w->Str(value.text_value);
    }
  }
}

bool Decode(std::string_view payload, InsertRequest* v) {
  WireReader r(payload);
  uint16_t n = 0;
  r.Str(&v->relation);
  r.U16(&n);
  v->values.clear();
  for (uint16_t i = 0; r.ok() && i < n; ++i) {
    WireValue value;
    if (!r.U8(&value.tag)) break;
    if (value.tag == 0) {
      uint64_t bits = 0;
      if (!r.U64(&bits)) break;
      value.int_value = static_cast<int64_t>(bits);
    } else {
      if (!r.Str(&value.text_value)) break;
    }
    v->values.push_back(std::move(value));
  }
  return r.AtEnd() && v->values.size() == n;
}

void Encode(const InsertResult& v, WireWriter* w) {
  w->U64(v.index_version);
  w->U32(v.relation);
  w->U64(v.row);
}

bool Decode(std::string_view payload, InsertResult* v) {
  WireReader r(payload);
  r.U64(&v->index_version);
  r.U32(&v->relation);
  r.U64(&v->row);
  return r.AtEnd();
}

void Encode(const TracePayload& v, WireWriter* w) {
  w->U64(v.total_us);
  w->U32(v.dropped);
  w->U16(static_cast<uint16_t>(v.spans.size()));
  for (const WireSpan& span : v.spans) {
    w->Str(span.name);
    w->U32(span.id);
    w->U32(span.parent);
    w->U64(span.start_us);
    w->U64(span.duration_us);
    w->U64(span.value);
  }
}

bool Decode(std::string_view payload, TracePayload* v) {
  WireReader r(payload);
  uint16_t n = 0;
  r.U64(&v->total_us);
  r.U32(&v->dropped);
  r.U16(&n);
  v->spans.clear();
  for (uint16_t i = 0; r.ok() && i < n; ++i) {
    WireSpan span;
    r.Str(&span.name);
    r.U32(&span.id);
    r.U32(&span.parent);
    r.U64(&span.start_us);
    r.U64(&span.duration_us);
    if (!r.U64(&span.value)) break;
    v->spans.push_back(std::move(span));
  }
  return r.AtEnd() && v->spans.size() == n;
}

void Encode(const TsFindRequest& v, WireWriter* w) {
  w->U32(v.deadline_ms);
  w->U16(static_cast<uint16_t>(v.keywords.size()));
  for (const std::string& kw : v.keywords) w->Str(kw);
}

bool Decode(std::string_view payload, TsFindRequest* v) {
  WireReader r(payload);
  uint16_t n = 0;
  r.U32(&v->deadline_ms);
  r.U16(&n);
  v->keywords.clear();
  for (uint16_t i = 0; r.ok() && i < n; ++i) {
    std::string kw;
    if (r.Str(&kw)) v->keywords.push_back(std::move(kw));
  }
  return r.AtEnd() && v->keywords.size() == n;
}

void Encode(const TsFindResult& v, WireWriter* w) {
  w->U64(v.index_version);
  w->U64(v.ts_micros);
  w->U8(v.degraded ? 1 : 0);
  w->Str(v.degraded_reason);
  w->U32(static_cast<uint32_t>(v.tuple_sets.size()));
  for (const WireTupleSet& ts : v.tuple_sets) {
    w->U32(ts.relation);
    w->U64(ts.termset);
    w->U32(static_cast<uint32_t>(ts.tuples.size()));
    for (uint64_t id : ts.tuples) w->U64(id);
  }
}

bool Decode(std::string_view payload, TsFindResult* v) {
  WireReader r(payload);
  uint8_t degraded = 0;
  uint32_t n = 0;
  r.U64(&v->index_version);
  r.U64(&v->ts_micros);
  r.U8(&degraded);
  r.Str(&v->degraded_reason);
  r.U32(&n);
  v->degraded = degraded != 0;
  v->tuple_sets.clear();
  for (uint32_t i = 0; r.ok() && i < n; ++i) {
    WireTupleSet ts;
    uint32_t m = 0;
    r.U32(&ts.relation);
    r.U64(&ts.termset);
    if (!r.U32(&m)) break;
    // Guard the reserve against a hostile length: each tuple costs 8
    // payload bytes, so a count the payload cannot hold is a lie.
    if (static_cast<uint64_t>(m) * 8 > payload.size()) return false;
    ts.tuples.reserve(m);
    for (uint32_t j = 0; j < m; ++j) {
      uint64_t id = 0;
      if (!r.U64(&id)) break;
      ts.tuples.push_back(id);
    }
    if (ts.tuples.size() != m) break;
    v->tuple_sets.push_back(std::move(ts));
  }
  return r.AtEnd() && v->tuple_sets.size() == n;
}

void Encode(const Heartbeat& v, WireWriter* w) { w->U64(v.send_us); }

bool Decode(std::string_view payload, Heartbeat* v) {
  WireReader r(payload);
  r.U64(&v->send_us);
  return r.AtEnd();
}

void Encode(const HeartbeatAck& v, WireWriter* w) {
  w->U64(v.send_us);
  w->U64(v.index_version);
  w->U32(v.queries_in_flight);
  w->U32(v.shard_id);
}

bool Decode(std::string_view payload, HeartbeatAck* v) {
  WireReader r(payload);
  r.U64(&v->send_us);
  r.U64(&v->index_version);
  r.U32(&v->queries_in_flight);
  r.U32(&v->shard_id);
  return r.AtEnd();
}

obs::TraceSnapshot ToTraceSnapshot(const TracePayload& payload) {
  obs::TraceSnapshot snapshot;
  snapshot.total_us = static_cast<int64_t>(payload.total_us);
  snapshot.dropped = payload.dropped;
  snapshot.spans.reserve(payload.spans.size());
  for (const WireSpan& span : payload.spans) {
    obs::SpanView view;
    view.name = span.name;
    view.id = span.id;
    view.parent = span.parent;
    view.start_us = static_cast<int64_t>(span.start_us);
    view.duration_us = static_cast<int64_t>(span.duration_us);
    view.value = span.value;
    snapshot.spans.push_back(std::move(view));
  }
  return snapshot;
}

}  // namespace matcn::net
