#include "net/connection.h"

#include <errno.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

namespace matcn::net {

namespace {
constexpr size_t kReadChunk = 64 * 1024;
}  // namespace

Connection::Connection(EventLoop* loop, ScopedFd fd, uint64_t id,
                       size_t max_frame_bytes, Callbacks callbacks)
    : last_activity(std::chrono::steady_clock::now()), loop_(loop),
      fd_(std::move(fd)), id_(id), max_frame_bytes_(max_frame_bytes),
      callbacks_(std::move(callbacks)) {}

Connection::~Connection() {
  if (!closed_ && fd_.valid()) loop_->RemoveFd(fd_.get());
}

Status Connection::Register() {
  MATCN_RETURN_IF_ERROR(SetNonBlocking(fd_.get()));
  (void)SetNoDelay(fd_.get());  // best-effort; loopback tests don't care
  return loop_->AddFd(fd_.get(), EPOLLIN,
                      [this](uint32_t events) { OnEvents(events); });
}

void Connection::OnEvents(uint32_t events) {
  if (closed_) return;
  if (events & (EPOLLHUP | EPOLLERR)) {
    Close();
    return;
  }
  if (events & EPOLLOUT) HandleWritable();
  if (closed_) return;
  if (events & EPOLLIN) HandleReadable();
}

void Connection::HandleReadable() {
  while (true) {
    const size_t old_size = read_buf_.size();
    read_buf_.resize(old_size + kReadChunk);
    const ssize_t n =
        ::recv(fd_.get(), read_buf_.data() + old_size, kReadChunk, 0);
    if (n < 0) {
      read_buf_.resize(old_size);
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      Close();
      return;
    }
    if (n == 0) {  // peer closed
      read_buf_.resize(old_size);
      Close();
      return;
    }
    read_buf_.resize(old_size + static_cast<size_t>(n));
    bytes_received_ += static_cast<uint64_t>(n);
    last_activity = std::chrono::steady_clock::now();
    if (!DrainReadBuffer()) return;
    if (static_cast<size_t>(n) < kReadChunk) break;
  }
}

bool Connection::DrainReadBuffer() {
  size_t consumed = 0;
  while (true) {
    FrameHeader header;
    const HeaderParse parse = ParseFrameHeader(
        std::string_view(read_buf_).substr(consumed), &header);
    if (parse == HeaderParse::kNeedMore) break;
    if (parse != HeaderParse::kOk) {
      callbacks_.on_protocol_error(this, WireCode::kProtocolError,
                                   parse == HeaderParse::kBadMagic
                                       ? "bad frame magic"
                                       : "unsupported protocol version");
      return !closed_;
    }
    if (header.payload_len > max_frame_bytes_) {
      callbacks_.on_protocol_error(
          this, WireCode::kFrameTooLarge,
          "frame payload of " + std::to_string(header.payload_len) +
              " bytes exceeds the " + std::to_string(max_frame_bytes_) +
              "-byte limit");
      return !closed_;
    }
    if (read_buf_.size() - consumed < kFrameHeaderBytes + header.payload_len) {
      break;  // wait for the rest of the payload
    }
    ++frames_received_;
    const std::string_view payload(
        read_buf_.data() + consumed + kFrameHeaderBytes, header.payload_len);
    callbacks_.on_frame(this, header, payload);
    if (closed_) return false;
    consumed += kFrameHeaderBytes + header.payload_len;
  }
  if (consumed > 0) read_buf_.erase(0, consumed);
  return !closed_;
}

void Connection::Send(std::string_view bytes) {
  if (closed_) return;
  // Fast path: nothing queued, try the socket directly.
  if (write_buf_.empty()) {
    size_t written = 0;
    while (written < bytes.size()) {
      const ssize_t n = ::send(fd_.get(), bytes.data() + written,
                               bytes.size() - written, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        Close();
        return;
      }
      written += static_cast<size_t>(n);
    }
    bytes_sent_ += written;
    bytes.remove_prefix(written);
    if (bytes.empty()) {
      if (close_after_flush_) Close();
      return;
    }
  }
  write_buf_.append(bytes.data(), bytes.size());
  if (!want_write_) {
    want_write_ = true;
    UpdateInterest();
  }
}

void Connection::HandleWritable() {
  while (write_offset_ < write_buf_.size()) {
    const ssize_t n =
        ::send(fd_.get(), write_buf_.data() + write_offset_,
               write_buf_.size() - write_offset_, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      Close();
      return;
    }
    write_offset_ += static_cast<size_t>(n);
    bytes_sent_ += static_cast<uint64_t>(n);
  }
  write_buf_.clear();
  write_offset_ = 0;
  if (close_after_flush_) {
    Close();
    return;
  }
  if (want_write_) {
    want_write_ = false;
    UpdateInterest();
  }
}

void Connection::UpdateInterest() {
  (void)loop_->UpdateFd(fd_.get(),
                        want_write_ ? (EPOLLIN | EPOLLOUT) : EPOLLIN);
}

void Connection::CloseAfterFlush() {
  if (closed_) return;
  if (write_buf_.empty()) {
    Close();
    return;
  }
  close_after_flush_ = true;
}

void Connection::Close() {
  if (closed_) return;
  closed_ = true;
  loop_->RemoveFd(fd_.get());
  fd_.Reset();
  // on_closed must defer actual destruction (the server PostTasks the
  // delete): Close() can be reached from inside HandleReadable's parse
  // loop, which still touches members after this returns.
  callbacks_.on_closed(this);
}

}  // namespace matcn::net
