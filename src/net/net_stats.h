#ifndef MATCN_NET_NET_STATS_H_
#define MATCN_NET_NET_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace matcn::net {

/// Point-in-time view of the server's network-layer counters (the
/// QueryService keeps its own ServiceStats; a STATS request merges both).
struct ServerStatsSnapshot {
  uint64_t connections_accepted = 0;
  uint64_t connections_active = 0;
  uint64_t connections_refused = 0;  // over max_connections
  uint64_t frames_received = 0;
  uint64_t frames_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t bytes_sent = 0;
  uint64_t idle_closed = 0;
  uint64_t protocol_errors = 0;
  uint64_t queries_received = 0;
  uint64_t queries_in_flight = 0;
  uint64_t drain_cancelled = 0;  // in-flight queries cancelled by drain

  std::string ToString() const;
};

/// Relaxed-atomic counter block; mutated from the loop thread and from
/// query-completion callbacks, read from any thread.
struct ServerStats {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> connections_active{0};
  std::atomic<uint64_t> connections_refused{0};
  std::atomic<uint64_t> frames_received{0};
  std::atomic<uint64_t> frames_sent{0};
  std::atomic<uint64_t> bytes_received{0};
  std::atomic<uint64_t> bytes_sent{0};
  std::atomic<uint64_t> idle_closed{0};
  std::atomic<uint64_t> protocol_errors{0};
  std::atomic<uint64_t> queries_received{0};
  std::atomic<uint64_t> queries_in_flight{0};
  std::atomic<uint64_t> drain_cancelled{0};

  ServerStatsSnapshot Snapshot() const {
    ServerStatsSnapshot s;
    s.connections_accepted = connections_accepted.load(std::memory_order_relaxed);
    s.connections_active = connections_active.load(std::memory_order_relaxed);
    s.connections_refused = connections_refused.load(std::memory_order_relaxed);
    s.frames_received = frames_received.load(std::memory_order_relaxed);
    s.frames_sent = frames_sent.load(std::memory_order_relaxed);
    s.bytes_received = bytes_received.load(std::memory_order_relaxed);
    s.bytes_sent = bytes_sent.load(std::memory_order_relaxed);
    s.idle_closed = idle_closed.load(std::memory_order_relaxed);
    s.protocol_errors = protocol_errors.load(std::memory_order_relaxed);
    s.queries_received = queries_received.load(std::memory_order_relaxed);
    s.queries_in_flight = queries_in_flight.load(std::memory_order_relaxed);
    s.drain_cancelled = drain_cancelled.load(std::memory_order_relaxed);
    return s;
  }
};

}  // namespace matcn::net

#endif  // MATCN_NET_NET_STATS_H_
