#ifndef MATCN_NET_NET_STATS_H_
#define MATCN_NET_NET_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/prometheus.h"

namespace matcn::net {

/// Authoritative field list for ServerStatsSnapshot — ToString, the
/// STATS frame and the Prometheus exporter all render through
/// VisitFields. V(kind, field, help)
#define MATCN_SERVER_STATS_FIELDS(V)                                          \
  V(kCounter, connections_accepted, "TCP connections accepted")               \
  V(kGauge, connections_active, "Currently open connections")                 \
  V(kCounter, connections_refused,                                            \
    "Connections refused over max_connections")                               \
  V(kCounter, frames_received, "Wire frames received")                        \
  V(kCounter, frames_sent, "Wire frames sent")                                \
  V(kCounter, bytes_received, "Wire payload bytes received")                  \
  V(kCounter, bytes_sent, "Wire payload bytes sent")                          \
  V(kCounter, idle_closed, "Connections closed by the idle sweep")            \
  V(kCounter, protocol_errors, "Protocol errors (bad frames, bad state)")     \
  V(kCounter, queries_received, "QUERY frames received")                      \
  V(kGauge, queries_in_flight, "Queries currently executing")                 \
  V(kCounter, drain_cancelled, "In-flight queries cancelled by drain")

/// Point-in-time view of the server's network-layer counters (the
/// QueryService keeps its own ServiceStats; a STATS request merges both).
struct ServerStatsSnapshot {
  uint64_t connections_accepted = 0;
  uint64_t connections_active = 0;
  uint64_t connections_refused = 0;  // over max_connections
  uint64_t frames_received = 0;
  uint64_t frames_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t bytes_sent = 0;
  uint64_t idle_closed = 0;
  uint64_t protocol_errors = 0;
  uint64_t queries_received = 0;
  uint64_t queries_in_flight = 0;
  uint64_t drain_cancelled = 0;  // in-flight queries cancelled by drain

  /// Calls visit(name, value, kind, help) once per field, in
  /// declaration order.
  template <typename V>
  void VisitFields(V&& visit) const {
#define MATCN_SERVER_STATS_VISIT(kind, field, help) \
  visit(#field, field, obs::MetricKind::kind, help);
    MATCN_SERVER_STATS_FIELDS(MATCN_SERVER_STATS_VISIT)
#undef MATCN_SERVER_STATS_VISIT
  }

  std::string ToString() const;
};

/// Relaxed-atomic counter block; mutated from the loop thread and from
/// query-completion callbacks, read from any thread.
struct ServerStats {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> connections_active{0};
  std::atomic<uint64_t> connections_refused{0};
  std::atomic<uint64_t> frames_received{0};
  std::atomic<uint64_t> frames_sent{0};
  std::atomic<uint64_t> bytes_received{0};
  std::atomic<uint64_t> bytes_sent{0};
  std::atomic<uint64_t> idle_closed{0};
  std::atomic<uint64_t> protocol_errors{0};
  std::atomic<uint64_t> queries_received{0};
  std::atomic<uint64_t> queries_in_flight{0};
  std::atomic<uint64_t> drain_cancelled{0};

  ServerStatsSnapshot Snapshot() const {
    ServerStatsSnapshot s;
    s.connections_accepted = connections_accepted.load(std::memory_order_relaxed);
    s.connections_active = connections_active.load(std::memory_order_relaxed);
    s.connections_refused = connections_refused.load(std::memory_order_relaxed);
    s.frames_received = frames_received.load(std::memory_order_relaxed);
    s.frames_sent = frames_sent.load(std::memory_order_relaxed);
    s.bytes_received = bytes_received.load(std::memory_order_relaxed);
    s.bytes_sent = bytes_sent.load(std::memory_order_relaxed);
    s.idle_closed = idle_closed.load(std::memory_order_relaxed);
    s.protocol_errors = protocol_errors.load(std::memory_order_relaxed);
    s.queries_received = queries_received.load(std::memory_order_relaxed);
    s.queries_in_flight = queries_in_flight.load(std::memory_order_relaxed);
    s.drain_cancelled = drain_cancelled.load(std::memory_order_relaxed);
    return s;
  }
};

}  // namespace matcn::net

#endif  // MATCN_NET_NET_STATS_H_
