#ifndef MATCN_NET_SERVER_H_
#define MATCN_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "net/connection.h"
#include "net/event_loop.h"
#include "net/net_stats.h"
#include "net/socket.h"
#include "liveindex/index_writer.h"
#include "liveindex/insert_sink.h"
#include "net/wire.h"
#include "service/query_service.h"
#include "storage/schema.h"

namespace matcn::net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back with port() after Start().
  uint16_t port = 0;
  /// Largest accepted request payload; oversized frames get a
  /// FRAME_TOO_LARGE error and the connection is closed (slow/abusive
  /// clients cannot make the server buffer unbounded input).
  size_t max_frame_bytes = size_t{1} << 20;
  /// Connections with no traffic and no in-flight query for this long are
  /// closed (GOING_AWAY "idle timeout"); 0 disables the sweep.
  int64_t idle_timeout_ms = 60'000;
  /// Graceful-drain budget: after Shutdown()/NotifyShutdown() the server
  /// stops accepting, lets in-flight queries finish for this long, then
  /// cancels the stragglers via their CancelTokens and closes.
  int64_t drain_deadline_ms = 5'000;
  /// Metrics scrapes parked without socket activity for this long are
  /// closed by the idle sweep, so silent scrapers cannot pin all the
  /// admin-connection slots and starve /metrics. A scrape is one short
  /// request/response exchange, so the default is deliberately tight.
  int64_t metrics_idle_timeout_ms = 10'000;
  /// Accepted connections beyond this are refused with GOING_AWAY.
  size_t max_connections = 1024;
  int listen_backlog = 128;
  /// Admin port serving `GET /metrics` (Prometheus text format) off the
  /// same event loop, bound to `host`. -1 disables; 0 picks an ephemeral
  /// port (read it back with metrics_port() after Start()).
  int metrics_port = -1;
  /// Identity reported in HEARTBEAT_ACK frames (wire v5). Coordinators
  /// use it to detect a shard map/deployment mismatch; 0 for unsharded
  /// servers and the coordinator itself.
  uint32_t shard_id = 0;
};

/// The network front end: an epoll event loop (one dedicated thread)
/// accepting TCP connections that speak the MatCN wire protocol, bridged
/// to a QueryService. Admission-control rejections and deadline expiry
/// surface as typed ERROR frames (RESOURCE_EXHAUSTED, DEADLINE_EXCEEDED)
/// rather than dropped connections, so clients can back off; results
/// stream as CN_RECORD frames between a RESULT_HEADER and a
/// RESULT_TRAILER.
///
/// The service and schema are borrowed and must outlive the server. The
/// schema is whatever the service generates against — CN text/SQL
/// rendering needs it.
class Server {
 public:
  Server(QueryService* service, const DatabaseSchema* schema,
         ServerOptions options = {});

  /// Serving + online updates: `writer` (borrowed, may be null) handles
  /// protocol-v3 INSERT frames — a local IndexWriter on an unsharded
  /// server, a shard::ShardInsertRouter on a coordinator. Without a
  /// sink, INSERT gets an UNIMPLEMENTED error.
  Server(QueryService* service, const DatabaseSchema* schema,
         liveindex::InsertSink* writer, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the loop thread. Call once.
  Status Start();

  /// Bound port (valid after a successful Start()).
  uint16_t port() const { return port_; }

  /// Bound metrics/admin port (valid after Start() when
  /// options.metrics_port >= 0; 0 when the endpoint is disabled).
  uint16_t metrics_port() const { return metrics_port_; }

  /// The Prometheus exposition page `GET /metrics` serves, rendered on
  /// demand from the service + network stats snapshots. Public so tests
  /// and the --smoke path can validate the exposition without a socket.
  std::string RenderMetricsText() const;

  /// Async-signal-safe shutdown trigger: usable directly inside a SIGTERM
  /// handler. The loop notices the flag, begins the graceful drain, and
  /// Wait()/Shutdown() observe completion.
  void NotifyShutdown();

  /// Blocks until the drain finishes and the loop thread exits.
  void Wait();

  /// NotifyShutdown() + Wait(). Idempotent; also run by the destructor.
  void Shutdown();

  ServerStatsSnapshot NetStats() const { return stats_.Snapshot(); }

 private:
  // Callbacks shared with in-flight query completions: completions may
  // outlive the Server teardown path, so they only touch the loop through
  // this guard.
  struct LoopGuard {
    std::mutex mu;
    EventLoop* loop = nullptr;  // null once the server is gone
  };

  struct PendingQuery {
    uint64_t connection_id = 0;
    uint64_t request_id = 0;
    uint32_t max_cns = 0;
    bool include_sql = false;
    /// Client asked for a TRACE frame after the trailer (wire v4).
    bool trace = false;
    std::shared_ptr<CancelToken> cancel;
  };

  /// One in-flight scrape of the metrics endpoint: tiny HTTP/1.0
  /// request/response handled inline on the loop thread.
  struct MetricsConn {
    ScopedFd fd;
    std::string in;     // request bytes until the blank line
    std::string out;    // full response once rendered
    size_t sent = 0;    // bytes of `out` already written
    bool responding = false;
    // Stamped on accept and on every socket event; the idle sweep closes
    // scrapes parked past metrics_idle_timeout_ms so silent connections
    // cannot pin all 64 slots and starve /metrics.
    std::chrono::steady_clock::time_point last_activity;
  };

  /// An INSERT awaiting its worker-side execution; the reply is posted
  /// back to the loop thread keyed by pending id, like queries.
  struct PendingInsert {
    uint64_t connection_id = 0;
    uint64_t request_id = 0;
  };

  /// A TSFIND (wire v5) awaiting its tuple-set stage on a service worker.
  struct PendingTsFind {
    uint64_t connection_id = 0;
    uint64_t request_id = 0;
    std::shared_ptr<CancelToken> cancel;
  };

  /// A decoded, validated INSERT handed to the insert worker.
  struct InsertJob {
    uint64_t pending_id = 0;
    RelationId relation = 0;
    Tuple tuple;
  };

  void RunLoop();
  void HandleAccept(uint32_t events);
  void OnFrame(Connection* conn, const FrameHeader& header,
               std::string_view payload);
  void OnProtocolError(Connection* conn, WireCode code,
                       const std::string& message);
  void OnConnectionClosed(Connection* conn);

  void HandleQuery(Connection* conn, uint64_t request_id,
                   std::string_view payload);
  void HandleStats(Connection* conn, uint64_t request_id);
  void HandleInsert(Connection* conn, uint64_t request_id,
                    std::string_view payload);
  void HandleTsFind(Connection* conn, uint64_t request_id,
                    std::string_view payload);
  void HandleHeartbeat(Connection* conn, uint64_t request_id,
                       std::string_view payload);
  void OnQueryDone(uint64_t pending_id, Result<QueryResponse> response);
  void OnTsFindDone(uint64_t pending_id, Result<TupleSetBatch> batch);
  void OnInsertDone(uint64_t pending_id,
                    Result<liveindex::InsertOutcome> outcome);
  void InsertWorkerLoop();
  void StopInsertWorker();

  void SendError(Connection* conn, uint64_t request_id, WireCode code,
                 const std::string& message);
  void SendGoingAway(Connection* conn, const std::string& reason);
  void SendFrame(Connection* conn, FrameType type, uint64_t request_id,
                 const std::string& payload);

  void HandleMetricsAccept(uint32_t events);
  void OnMetricsEvent(int fd, uint32_t events);
  void CloseMetricsConn(int fd);
  void CloseAllMetricsConns();

  void SweepIdleConnections();
  void ArmSweepTimer();
  void BeginDrain();
  void FinishDrainIfIdle();
  void ForceFinishDrain();

  QueryService* service_;
  const DatabaseSchema* schema_;
  liveindex::InsertSink* writer_ = nullptr;  // null = read-only server
  ServerOptions options_;
  uint16_t port_ = 0;

  std::unique_ptr<EventLoop> loop_;
  std::shared_ptr<LoopGuard> loop_guard_;
  std::thread loop_thread_;
  ScopedFd listen_fd_;

  // Metrics/admin endpoint (optional). Scrape connections live outside
  // connections_: they speak HTTP, have no wire-protocol state, and are
  // closed wholesale on drain rather than waited for.
  ScopedFd metrics_listen_fd_;
  uint16_t metrics_port_ = 0;
  std::unordered_map<int, MetricsConn> metrics_conns_;

  uint64_t next_connection_id_ = 1;
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> connections_;

  uint64_t next_pending_id_ = 1;
  std::unordered_map<uint64_t, PendingQuery> pending_;
  std::unordered_map<uint64_t, PendingInsert> pending_inserts_;
  std::unordered_map<uint64_t, PendingTsFind> pending_tsfinds_;

  // Dedicated insert worker (spawned only when writer_ != nullptr): runs
  // IndexWriter::Insert plus its invalidation hook off the loop thread —
  // the hook walks every cache shard, so with a large result cache it
  // would otherwise stall queries, pings and accepts on every insert.
  // A single FIFO worker preserves wire-order = insert-order.
  std::mutex insert_mu_;
  std::condition_variable insert_cv_;
  std::deque<InsertJob> insert_queue_;
  bool insert_stop_ = false;
  std::thread insert_worker_;

  std::atomic<bool> shutdown_requested_{false};
  bool draining_ = false;
  bool drain_done_ = false;
  uint64_t drain_timer_ = 0;
  uint64_t sweep_timer_ = 0;

  ServerStats stats_;
  std::atomic<bool> started_{false};
  std::atomic<bool> joined_{false};
  std::mutex join_mu_;
};

}  // namespace matcn::net

#endif  // MATCN_NET_SERVER_H_
