#ifndef MATCN_NET_CONNECTION_H_
#define MATCN_NET_CONNECTION_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "net/event_loop.h"
#include "net/socket.h"
#include "net/wire.h"

namespace matcn::net {

/// One accepted client connection, owned by the server's event loop
/// thread (no locking anywhere in this class). Handles the mechanics —
/// non-blocking reads, incremental frame parsing with a max-frame-size
/// guard, buffered writes with EPOLLOUT backpressure — and hands complete
/// frames to the server through `on_frame`.
///
/// Closing discipline: Close() tears down immediately; CloseAfterFlush()
/// lets the write buffer drain first (used for "send error, then hang
/// up" and for graceful drain). Either way `on_closed` fires exactly
/// once, after which the server must drop its pointer.
class Connection {
 public:
  struct Callbacks {
    /// A complete, size-checked frame. Payload view is only valid for the
    /// duration of the call.
    std::function<void(Connection*, const FrameHeader&, std::string_view)>
        on_frame;
    /// Malformed input (bad magic/version, oversized frame). The server
    /// decides what to send; the connection closes after flushing.
    std::function<void(Connection*, WireCode, const std::string&)>
        on_protocol_error;
    std::function<void(Connection*)> on_closed;
  };

  Connection(EventLoop* loop, ScopedFd fd, uint64_t id,
             size_t max_frame_bytes, Callbacks callbacks);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Registers with the loop; call once after construction.
  Status Register();

  uint64_t id() const { return id_; }
  bool closed() const { return closed_; }

  /// Queues `bytes` (one or more whole frames) for writing, flushing as
  /// much as the socket accepts now.
  void Send(std::string_view bytes);

  void Close();
  void CloseAfterFlush();

  /// Requests (queries) currently executing in the service for this
  /// connection; maintained by the server, used by drain and idle sweeps.
  int in_flight = 0;

  std::chrono::steady_clock::time_point last_activity;

  uint64_t bytes_received() const { return bytes_received_; }
  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t frames_received() const { return frames_received_; }

 private:
  void OnEvents(uint32_t events);
  void HandleReadable();
  void HandleWritable();
  /// Parses as many complete frames as the buffer holds. Returns false
  /// when the connection got closed during parsing.
  bool DrainReadBuffer();
  void UpdateInterest();

  EventLoop* loop_;
  ScopedFd fd_;
  const uint64_t id_;
  const size_t max_frame_bytes_;
  Callbacks callbacks_;

  std::string read_buf_;
  std::string write_buf_;
  size_t write_offset_ = 0;
  bool want_write_ = false;
  bool close_after_flush_ = false;
  bool closed_ = false;

  uint64_t bytes_received_ = 0;
  uint64_t bytes_sent_ = 0;
  uint64_t frames_received_ = 0;
};

}  // namespace matcn::net

#endif  // MATCN_NET_CONNECTION_H_
