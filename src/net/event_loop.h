#ifndef MATCN_NET_EVENT_LOOP_H_
#define MATCN_NET_EVENT_LOOP_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "net/socket.h"

namespace matcn::net {

/// Single-threaded epoll reactor. One thread calls Run(); fd callbacks and
/// timer callbacks execute on that thread, so per-connection state needs
/// no locking. Other threads interact only through the thread-safe
/// entry points PostTask(), Stop() and Wakeup() — each wakes the loop via
/// an eventfd, and Wakeup()'s underlying write is async-signal-safe, which
/// is what lets a SIGTERM handler trigger a graceful drain.
class EventLoop {
 public:
  using FdCallback = std::function<void(uint32_t epoll_events)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// False when epoll/eventfd creation failed in the constructor.
  bool ok() const { return epoll_fd_.valid() && wake_fd_.valid(); }

  /// Runs until Stop(). Must be called from exactly one thread; that
  /// thread becomes the loop thread.
  void Run();

  /// Thread-safe: makes Run() return after finishing the current round of
  /// callbacks and pending tasks.
  void Stop();

  /// Registers `fd` for `events` (EPOLLIN etc.). Loop thread only (call
  /// before Run() or from a callback).
  Status AddFd(int fd, uint32_t events, FdCallback callback);
  Status UpdateFd(int fd, uint32_t events);
  /// Unregisters `fd`. Safe to call from inside its own callback; the
  /// loop skips dispatch to fds removed mid-round.
  void RemoveFd(int fd);

  /// Thread-safe: enqueues `task` to run on the loop thread. Tasks posted
  /// after Stop() are dropped on destruction without running.
  void PostTask(std::function<void()> task);

  /// Runs `fn` once, `delay_ms` from now, on the loop thread. Thread-safe.
  /// Returns an id for CancelTimer.
  uint64_t RunAfter(int64_t delay_ms, std::function<void()> fn);
  void CancelTimer(uint64_t id);

  /// Async-signal-safe nudge: wakes the loop without queueing anything.
  /// Pair with a flag the loop inspects (see Server's drain path).
  void Wakeup();

  /// Runs on the loop thread after every wakeup (and spuriously after any
  /// PostTask/RunAfter, which also wake the loop). Set before Run().
  void SetWakeupCallback(std::function<void()> fn) {
    wakeup_callback_ = std::move(fn);
  }

  bool InLoopThread() const {
    return std::this_thread::get_id() == loop_thread_;
  }

 private:
  using Clock = std::chrono::steady_clock;
  struct Timer {
    Clock::time_point at;
    uint64_t id;
    bool operator>(const Timer& o) const {
      return at != o.at ? at > o.at : id > o.id;
    }
  };

  void DrainWakeFd();
  void RunPendingTasks();
  void RunDueTimers();
  int NextTimeoutMillis();

  ScopedFd epoll_fd_;
  ScopedFd wake_fd_;
  std::atomic<bool> stop_{false};
  std::thread::id loop_thread_{};
  std::function<void()> wakeup_callback_;

  std::unordered_map<int, FdCallback> fd_callbacks_;
  uint64_t dispatch_round_ = 0;
  std::vector<int> removed_this_round_;

  std::mutex mu_;  // guards tasks_ and timers
  std::vector<std::function<void()>> tasks_;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>>
      timer_heap_;
  std::unordered_map<uint64_t, std::function<void()>> timer_fns_;
  uint64_t next_timer_id_ = 1;
};

}  // namespace matcn::net

#endif  // MATCN_NET_EVENT_LOOP_H_
