#ifndef MATCN_NET_SOCKET_H_
#define MATCN_NET_SOCKET_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "common/status.h"

namespace matcn::net {

/// Owning file-descriptor handle: closes on destruction, move-only.
class ScopedFd {
 public:
  ScopedFd() = default;
  explicit ScopedFd(int fd) : fd_(fd) {}
  ~ScopedFd() { Reset(); }

  ScopedFd(ScopedFd&& other) noexcept : fd_(other.Release()) {}
  ScopedFd& operator=(ScopedFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.Release();
    }
    return *this;
  }
  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  int Release() { return std::exchange(fd_, -1); }
  void Reset();  // closes if valid

 private:
  int fd_ = -1;
};

Status SetNonBlocking(int fd);
Status SetNoDelay(int fd);
/// Sets both SO_RCVTIMEO and SO_SNDTIMEO; 0 clears them.
Status SetIoTimeout(int fd, int64_t timeout_ms);

/// Creates a listening TCP socket bound to `host:port` (port 0 picks an
/// ephemeral port). On success `*bound_port` holds the actual port.
Result<ScopedFd> ListenTcp(const std::string& host, uint16_t port,
                           int backlog, uint16_t* bound_port);

/// Blocking TCP connect with a timeout.
Result<ScopedFd> ConnectTcp(const std::string& host, uint16_t port,
                            int64_t timeout_ms);

/// Blocking write of the whole buffer (retries on EINTR / short writes).
Status WriteAll(int fd, std::string_view data);

/// Blocking read of exactly `n` bytes into `out` (appended). Returns
/// IOError on timeout or error, NotFound on clean EOF at a frame boundary
/// (out left untouched when EOF hits before any byte).
Status ReadExactly(int fd, size_t n, std::string* out);

}  // namespace matcn::net

#endif  // MATCN_NET_SOCKET_H_
