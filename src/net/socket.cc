#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cstring>

namespace matcn::net {

namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

Result<sockaddr_in> MakeAddr(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string h = host.empty() || host == "localhost" ? "127.0.0.1"
                                                            : host;
  if (inet_pton(AF_INET, h.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

void ScopedFd::Reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError(Errno("fcntl(O_NONBLOCK)"));
  }
  return Status::OK();
}

Status SetNoDelay(int fd) {
  const int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) < 0) {
    return Status::IOError(Errno("setsockopt(TCP_NODELAY)"));
  }
  return Status::OK();
}

Status SetIoTimeout(int fd, int64_t timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) < 0 ||
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) < 0) {
    return Status::IOError(Errno("setsockopt(SO_RCVTIMEO/SO_SNDTIMEO)"));
  }
  return Status::OK();
}

Result<ScopedFd> ListenTcp(const std::string& host, uint16_t port,
                           int backlog, uint16_t* bound_port) {
  Result<sockaddr_in> addr = MakeAddr(host, port);
  MATCN_RETURN_IF_ERROR(addr.status());
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return Status::IOError(Errno("socket"));
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&*addr),
             sizeof(*addr)) < 0) {
    return Status::IOError(Errno("bind " + host + ":" +
                                 std::to_string(port)));
  }
  if (::listen(fd.get(), backlog) < 0) {
    return Status::IOError(Errno("listen"));
  }
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&actual), &len) <
        0) {
      return Status::IOError(Errno("getsockname"));
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return fd;
}

Result<ScopedFd> ConnectTcp(const std::string& host, uint16_t port,
                            int64_t timeout_ms) {
  Result<sockaddr_in> addr = MakeAddr(host, port);
  MATCN_RETURN_IF_ERROR(addr.status());
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return Status::IOError(Errno("socket"));
  // Connect with a timeout: non-blocking connect + poll, then back to
  // blocking mode for the caller's synchronous reads/writes.
  MATCN_RETURN_IF_ERROR(SetNonBlocking(fd.get()));
  int rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&*addr),
                     sizeof(*addr));
  if (rc < 0 && errno != EINPROGRESS) {
    return Status::IOError(Errno("connect " + host + ":" +
                                 std::to_string(port)));
  }
  if (rc < 0) {
    pollfd pfd{fd.get(), POLLOUT, 0};
    rc = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
    if (rc == 0) {
      return Status::DeadlineExceeded("connect timed out after " +
                                      std::to_string(timeout_ms) + " ms");
    }
    if (rc < 0) return Status::IOError(Errno("poll(connect)"));
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) < 0 ||
        err != 0) {
      errno = err != 0 ? err : errno;
      return Status::IOError(Errno("connect " + host + ":" +
                                   std::to_string(port)));
    }
  }
  const int flags = ::fcntl(fd.get(), F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd.get(), F_SETFL, flags & ~O_NONBLOCK);
  MATCN_RETURN_IF_ERROR(SetNoDelay(fd.get()));
  return fd;
}

Status WriteAll(int fd, std::string_view data) {
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + written, data.size() - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(Errno("send"));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status ReadExactly(int fd, size_t n, std::string* out) {
  const size_t start = out->size();
  out->resize(start + n);
  size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, out->data() + start + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      out->resize(start + got);
      return Status::IOError(Errno("recv"));
    }
    if (r == 0) {
      out->resize(start + got);
      return got == 0 ? Status::NotFound("connection closed by peer")
                      : Status::IOError("connection closed mid-frame");
    }
    got += static_cast<size_t>(r);
  }
  return Status::OK();
}

}  // namespace matcn::net
