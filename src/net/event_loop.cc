#include "net/event_loop.h"

#include <errno.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <utility>

namespace matcn::net {

namespace {
constexpr int kMaxEventsPerWait = 64;
}  // namespace

EventLoop::EventLoop()
    : epoll_fd_(::epoll_create1(EPOLL_CLOEXEC)),
      wake_fd_(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)) {
  if (!ok()) return;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_.get();
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, wake_fd_.get(), &ev);
}

EventLoop::~EventLoop() = default;

void EventLoop::Wakeup() {
  // write(2) on an eventfd is async-signal-safe; this is the only loop
  // entry point a signal handler may call.
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t n =
      ::write(wake_fd_.get(), &one, sizeof(one));
}

void EventLoop::Stop() {
  stop_.store(true, std::memory_order_release);
  Wakeup();
}

void EventLoop::PostTask(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
  }
  Wakeup();
}

uint64_t EventLoop::RunAfter(int64_t delay_ms, std::function<void()> fn) {
  uint64_t id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_timer_id_++;
    timer_fns_[id] = std::move(fn);
    timer_heap_.push(
        Timer{Clock::now() + std::chrono::milliseconds(delay_ms), id});
  }
  Wakeup();
  return id;
}

void EventLoop::CancelTimer(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  timer_fns_.erase(id);  // heap entry becomes a no-op when it pops
}

Status EventLoop::AddFd(int fd, uint32_t events, FdCallback callback) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, fd, &ev) < 0) {
    return Status::IOError("epoll_ctl(ADD): " +
                           std::string(std::strerror(errno)));
  }
  fd_callbacks_[fd] = std::move(callback);
  return Status::OK();
}

Status EventLoop::UpdateFd(int fd, uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, fd, &ev) < 0) {
    return Status::IOError("epoll_ctl(MOD): " +
                           std::string(std::strerror(errno)));
  }
  return Status::OK();
}

void EventLoop::RemoveFd(int fd) {
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr);
  fd_callbacks_.erase(fd);
  removed_this_round_.push_back(fd);
}

void EventLoop::DrainWakeFd() {
  uint64_t value;
  while (::read(wake_fd_.get(), &value, sizeof(value)) > 0) {
  }
}

void EventLoop::RunPendingTasks() {
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks.swap(tasks_);
  }
  for (std::function<void()>& task : tasks) task();
}

void EventLoop::RunDueTimers() {
  while (true) {
    std::function<void()> fn;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (timer_heap_.empty() || timer_heap_.top().at > Clock::now()) return;
      const uint64_t id = timer_heap_.top().id;
      timer_heap_.pop();
      auto it = timer_fns_.find(id);
      if (it == timer_fns_.end()) continue;  // cancelled
      fn = std::move(it->second);
      timer_fns_.erase(it);
    }
    fn();
  }
}

int EventLoop::NextTimeoutMillis() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!tasks_.empty()) return 0;
  if (timer_heap_.empty()) return -1;
  const auto delta = std::chrono::duration_cast<std::chrono::milliseconds>(
                         timer_heap_.top().at - Clock::now())
                         .count();
  return static_cast<int>(std::clamp<int64_t>(delta, 0, 60'000));
}

void EventLoop::Run() {
  loop_thread_ = std::this_thread::get_id();
  epoll_event events[kMaxEventsPerWait];
  while (!stop_.load(std::memory_order_acquire)) {
    const int n =
        ::epoll_wait(epoll_fd_.get(), events, kMaxEventsPerWait,
                     NextTimeoutMillis());
    if (n < 0 && errno != EINTR) break;
    removed_this_round_.clear();
    for (int i = 0; i < std::max(n, 0); ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_.get()) {
        DrainWakeFd();
        if (wakeup_callback_) wakeup_callback_();
        continue;
      }
      // A callback earlier in this round may have closed this fd; its
      // registration is gone, so skip stale events.
      if (std::find(removed_this_round_.begin(), removed_this_round_.end(),
                    fd) != removed_this_round_.end()) {
        continue;
      }
      auto it = fd_callbacks_.find(fd);
      if (it == fd_callbacks_.end()) continue;
      // Copy: the callback may RemoveFd(fd) and invalidate the iterator.
      FdCallback cb = it->second;
      cb(events[i].events);
    }
    RunDueTimers();
    RunPendingTasks();
  }
  // One final drain so tasks posted concurrently with Stop() (e.g. query
  // completions that only enqueue writes) cannot be lost silently.
  RunPendingTasks();
}

}  // namespace matcn::net
