#ifndef MATCN_NET_WIRE_H_
#define MATCN_NET_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "obs/trace.h"

namespace matcn::net {

/// ---------------------------------------------------------------------
/// MatCN wire protocol, version 1.
///
/// Every frame, in both directions, is a fixed 16-byte header followed by
/// a type-specific payload. All integers are little-endian; strings are a
/// u32 byte length followed by raw bytes (no terminator).
///
///   offset  size  field
///        0     4  payload length (bytes after the header)
///        4     1  magic 'M'
///        5     1  magic 'C'
///        6     1  protocol version (kProtocolVersion)
///        7     1  frame type (FrameType)
///        8     8  request id (client-chosen, echoed in every response)
///
/// One QUERY request yields RESULT_HEADER, zero or more CN_RECORD frames,
/// and a RESULT_TRAILER — or a single ERROR frame. STATS yields
/// STATS_RESULT, PING yields PONG. GOING_AWAY is unsolicited
/// (request id 0): the server is draining or dropping the connection.
/// ---------------------------------------------------------------------

inline constexpr uint8_t kMagic0 = 'M';
inline constexpr uint8_t kMagic1 = 'C';
/// v2 extends STATS_RESULT with per-stage pipeline timings and the
/// MatchCN parallelism gauges. v3 adds the INSERT request (online index
/// maintenance: append a tuple, get the new index version back) and
/// extends STATS_RESULT with the live-index gauges. v4 adds the QUERY
/// `trace` flag and the TRACE response frame: a traced query's normal
/// response stream is followed (after RESULT_TRAILER) by one TRACE
/// frame carrying the request's span breakdown. v5 adds the sharding
/// frames: TSFIND (coordinator -> shard, run only the tuple-set stage
/// and return the per-shard tuple sets) answered by TSFIND_RESULT, and
/// HEARTBEAT (health probe, answered inline by HEARTBEAT_ACK without
/// touching the service queue). v5 also extends STATS_RESULT with the
/// coordinator's per-shard aggregates. Requests multiplex freely: a
/// client may have many TSFIND/HEARTBEAT requests outstanding on one
/// connection, demuxing responses by request id. Frames are otherwise
/// identical; both ends reject mismatched versions at the header.
inline constexpr uint8_t kProtocolVersion = 5;
inline constexpr size_t kFrameHeaderBytes = 16;

enum class FrameType : uint8_t {
  // Requests (client -> server).
  kQuery = 1,
  kStats = 2,
  kPing = 3,
  kInsert = 4,     // v3+
  kTsFind = 5,     // v5+: shard-local tuple-set stage
  kHeartbeat = 6,  // v5+: health probe, answered on the event loop
  // Responses (server -> client).
  kResultHeader = 64,
  kCnRecord = 65,
  kResultTrailer = 66,
  kError = 67,
  kStatsResult = 68,
  kPong = 69,
  kGoingAway = 70,
  kInsertResult = 71,   // v3+
  kTrace = 72,          // v4+: span breakdown, follows RESULT_TRAILER
  kTsFindResult = 73,   // v5+
  kHeartbeatAck = 74,   // v5+
};

/// Wire-stable error codes. Values 0..9 mirror StatusCode exactly (the
/// in-process enum order is frozen by this mapping); 100+ are
/// protocol-level failures that have no Status equivalent.
enum class WireCode : uint16_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kResourceExhausted = 5,
  kDeadlineExceeded = 6,
  kInternal = 7,
  kIOError = 8,
  kUnimplemented = 9,
  kUnavailable = 100,   // server draining / connection refused
  kFrameTooLarge = 101,
  kProtocolError = 102,
};

WireCode StatusToWireCode(const Status& status);
/// Protocol-only codes (kUnavailable and up) map onto the closest Status.
Status WireCodeToStatus(WireCode code, std::string message);
const char* WireCodeName(WireCode code);

struct FrameHeader {
  uint32_t payload_len = 0;
  uint8_t version = kProtocolVersion;
  FrameType type = FrameType::kPing;
  uint64_t request_id = 0;
};

enum class HeaderParse { kOk, kNeedMore, kBadMagic, kBadVersion };

/// Parses a frame header from the front of `data`. On kOk the caller owns
/// validating payload_len against its frame-size limit before buffering.
HeaderParse ParseFrameHeader(std::string_view data, FrameHeader* out);

/// Appends header + payload to `out` (the only frame-assembly entry point,
/// so the header layout lives in one place).
void AppendFrame(std::string* out, FrameType type, uint64_t request_id,
                 std::string_view payload);

/// Little-endian payload serializer. Append-only; Take() hands the buffer
/// off without copying.
class WireWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U16(uint16_t v) { AppendLe(&v, sizeof(v)); }
  void U32(uint32_t v) { AppendLe(&v, sizeof(v)); }
  void U64(uint64_t v) { AppendLe(&v, sizeof(v)); }
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    buf_.append(s.data(), s.size());
  }

  const std::string& buffer() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  void AppendLe(const void* v, size_t n);
  std::string buf_;
};

/// Bounds-checked little-endian payload reader. Every accessor returns
/// false (and poisons the reader) on underflow, so decoders can parse
/// first and check `ok()` once at the end.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  bool U8(uint8_t* v);
  bool U16(uint16_t* v);
  bool U32(uint32_t* v);
  bool U64(uint64_t* v);
  bool Str(std::string* v);

  bool ok() const { return ok_; }
  /// True when the payload was consumed exactly (trailing garbage is a
  /// protocol error for fixed-shape payloads).
  bool AtEnd() const { return ok_ && pos_ == data_.size(); }

 private:
  bool Take(void* out, size_t n);
  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// --------------------------- payloads ---------------------------------

struct QueryRequest {
  uint32_t deadline_ms = 0;  // 0 = server default
  uint16_t t_max = 0;        // 0 = server default
  uint32_t max_cns = 0;      // cap on streamed CN_RECORD frames; 0 = all
  bool include_sql = false;  // also render each CN as SQL
  /// v4: request a TRACE frame after the trailer with the stage-span
  /// breakdown of this query.
  bool trace = false;
  std::vector<std::string> keywords;
};

struct ResultHeader {
  bool cache_hit = false;
  bool degraded = false;
  std::string degraded_reason;
  uint32_t num_tuple_sets = 0;
  uint32_t num_matches = 0;
  uint32_t num_cns = 0;  // total generated (may exceed streamed count)
};

struct CnRecord {
  uint32_t index = 0;  // position in the generation result
  uint16_t num_nodes = 0;
  uint16_t num_non_free = 0;
  std::string text;  // rendered "MOV^{g} ⋈ CAST^{} ⋈ ..." form
  std::string sql;   // empty unless include_sql was requested
};

struct ResultTrailer {
  uint64_t server_latency_us = 0;
  uint32_t cns_sent = 0;
  uint32_t cns_total = 0;
};

struct ErrorPayload {
  WireCode code = WireCode::kInternal;
  std::string message;
};

/// One typed attribute value of an INSERT request. Tag 0 = int (i64 in
/// `int_value`), tag 1 = text (`text_value`) — mirroring ValueType.
struct WireValue {
  uint8_t tag = 0;
  int64_t int_value = 0;
  std::string text_value;
};

/// v3 INSERT: append one tuple to `relation` and index it online. Values
/// must match the relation's schema arity and types; the server replies
/// with INSERT_RESULT (or ERROR — kUnimplemented when it has no live
/// index, kNotFound for an unknown relation, kInvalidArgument otherwise).
struct InsertRequest {
  std::string relation;
  std::vector<WireValue> values;
};

struct InsertResult {
  /// Index version after this insert; queries answered at >= this version
  /// see the new tuple.
  uint64_t index_version = 0;
  uint32_t relation = 0;  // resolved RelationId
  uint64_t row = 0;       // row index within the relation
};

/// One span of a TRACE frame; mirrors obs::SpanView (net does not
/// include obs headers in the public wire surface — the payload is just
/// data).
struct WireSpan {
  std::string name;
  uint32_t id = 0;
  uint32_t parent = 0;  // 0 = root-level
  uint64_t start_us = 0;
  uint64_t duration_us = 0;
  uint64_t value = 0;
};

/// v4 TRACE response: the span breakdown of one traced query. Sent with
/// the query's request id immediately after its RESULT_TRAILER, so the
/// wire_flush span can cover the main result send.
struct TracePayload {
  uint64_t total_us = 0;  // full request duration at emit time
  uint32_t dropped = 0;   // spans lost to the fixed per-request buffer
  std::vector<WireSpan> spans;
};

/// v5 TSFIND: run only the tuple-set stage of the pipeline against this
/// shard's owned relations and return the tuple sets. Keywords arrive
/// already normalized by the coordinator; shard-side normalization is
/// idempotent so a raw client can also issue one directly.
struct TsFindRequest {
  uint32_t deadline_ms = 0;  // 0 = server default
  std::vector<std::string> keywords;
};

/// One tuple set of a TSFIND_RESULT: the shard-local posting for
/// (relation, termset). TupleIds are globally consistent because shards
/// partition by relation — the owning shard assigns the same packed
/// relation/row ids the unsharded process would.
struct WireTupleSet {
  uint32_t relation = 0;
  uint64_t termset = 0;
  std::vector<uint64_t> tuples;  // packed TupleIds, ascending
};

/// v5 TSFIND_RESULT: the shard's tuple sets, sorted by (relation,
/// termset) exactly as TupleSetFinder::BuildTupleSets emits them, so
/// the coordinator's k-way merge reproduces single-process order.
struct TsFindResult {
  uint64_t index_version = 0;
  uint64_t ts_micros = 0;   // shard-side tuple-set stage wall time
  bool degraded = false;    // stage gave partial results (deadline)
  std::string degraded_reason;
  std::vector<WireTupleSet> tuple_sets;
};

/// v5 HEARTBEAT: coordinator health probe. `send_us` is an opaque
/// timestamp echoed back so the coordinator can measure RTT without
/// trusting shard clocks.
struct Heartbeat {
  uint64_t send_us = 0;
};

/// v5 HEARTBEAT_ACK: answered directly on the server's event loop (never
/// queued behind queries), so a live-but-saturated shard still acks.
struct HeartbeatAck {
  uint64_t send_us = 0;  // echoed from the probe
  uint64_t index_version = 0;
  uint32_t queries_in_flight = 0;
  uint32_t shard_id = 0;
};

/// The wire field list of StatsPayload, in frame order. Encode and
/// Decode are generated from this single list, so they cannot drift
/// from each other; extending STATS means appending here and to the
/// struct below.
#define MATCN_STATS_PAYLOAD_FIELDS(X) \
  X(submitted)                        \
  X(completed)                        \
  X(rejected)                         \
  X(timed_out)                        \
  X(degraded)                         \
  X(failed)                           \
  X(cache_hits)                       \
  X(cache_misses)                     \
  X(queue_depth)                      \
  X(mean_us)                          \
  X(p50_us)                           \
  X(p95_us)                           \
  X(p99_us)                           \
  X(connections_accepted)             \
  X(connections_active)               \
  X(frames_received)                  \
  X(frames_sent)                      \
  X(bytes_received)                   \
  X(bytes_sent)                       \
  X(idle_closed)                      \
  X(protocol_errors)                  \
  X(queries_in_flight)                \
  X(ts_us_mean)                       \
  X(match_us_mean)                    \
  X(cn_us_mean)                       \
  X(cn_eff_permille)                  \
  X(cn_workers_x10)                   \
  X(index_version)                    \
  X(index_delta_bytes)                \
  X(index_compactions)                \
  X(cache_invalidations)              \
  X(shards_total)                     \
  X(shards_healthy)                   \
  X(shard_scatters)                   \
  X(shard_scatter_errors)             \
  X(shard_degraded_batches)           \
  X(shard_merge_us_mean)              \
  X(shard_heartbeats)                 \
  X(shard_reconnects)                 \
  X(shard_inserts_routed)

/// Server-side counters returned by a STATS request: the QueryService
/// snapshot plus the network layer's own counters.
struct StatsPayload {
  // QueryService.
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t rejected = 0;
  uint64_t timed_out = 0;
  uint64_t degraded = 0;
  uint64_t failed = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t queue_depth = 0;
  uint64_t mean_us = 0;
  uint64_t p50_us = 0;
  uint64_t p95_us = 0;
  uint64_t p99_us = 0;
  // Network layer.
  uint64_t connections_accepted = 0;
  uint64_t connections_active = 0;
  uint64_t frames_received = 0;
  uint64_t frames_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t bytes_sent = 0;
  uint64_t idle_closed = 0;
  uint64_t protocol_errors = 0;
  uint64_t queries_in_flight = 0;
  // Pipeline stage means over executed (non-cached) queries, v2+.
  uint64_t ts_us_mean = 0;
  uint64_t match_us_mean = 0;
  uint64_t cn_us_mean = 0;
  /// Mean MatchCN parallel efficiency in permille (1000 = every
  /// participating worker fully busy); see GenerationStats.
  uint64_t cn_eff_permille = 0;
  uint64_t cn_workers_x10 = 0;  // mean workers per query, fixed-point x10
  // Live-index gauges, v3+ (all zero without a live index).
  uint64_t index_version = 0;
  uint64_t index_delta_bytes = 0;
  uint64_t index_compactions = 0;
  uint64_t cache_invalidations = 0;
  // Coordinator shard aggregates, v5+ (all zero on an unsharded server).
  uint64_t shards_total = 0;
  uint64_t shards_healthy = 0;
  uint64_t shard_scatters = 0;
  uint64_t shard_scatter_errors = 0;
  uint64_t shard_degraded_batches = 0;
  uint64_t shard_merge_us_mean = 0;
  uint64_t shard_heartbeats = 0;
  uint64_t shard_reconnects = 0;
  uint64_t shard_inserts_routed = 0;
};

void Encode(const QueryRequest& v, WireWriter* w);
void Encode(const ResultHeader& v, WireWriter* w);
void Encode(const CnRecord& v, WireWriter* w);
void Encode(const ResultTrailer& v, WireWriter* w);
void Encode(const ErrorPayload& v, WireWriter* w);
void Encode(const StatsPayload& v, WireWriter* w);
void Encode(const InsertRequest& v, WireWriter* w);
void Encode(const InsertResult& v, WireWriter* w);
void Encode(const TracePayload& v, WireWriter* w);
void Encode(const TsFindRequest& v, WireWriter* w);
void Encode(const TsFindResult& v, WireWriter* w);
void Encode(const Heartbeat& v, WireWriter* w);
void Encode(const HeartbeatAck& v, WireWriter* w);

bool Decode(std::string_view payload, QueryRequest* v);
bool Decode(std::string_view payload, ResultHeader* v);
bool Decode(std::string_view payload, CnRecord* v);
bool Decode(std::string_view payload, ResultTrailer* v);
bool Decode(std::string_view payload, ErrorPayload* v);
bool Decode(std::string_view payload, StatsPayload* v);
bool Decode(std::string_view payload, InsertRequest* v);
bool Decode(std::string_view payload, InsertResult* v);
bool Decode(std::string_view payload, TracePayload* v);
bool Decode(std::string_view payload, TsFindRequest* v);
bool Decode(std::string_view payload, TsFindResult* v);
bool Decode(std::string_view payload, Heartbeat* v);
bool Decode(std::string_view payload, HeartbeatAck* v);

/// Rehydrates a decoded TRACE frame into the snapshot form the obs
/// renderers (RenderWaterfall/RenderCompact) consume, so clients can
/// print the same waterfall the server's slow-query log shows.
obs::TraceSnapshot ToTraceSnapshot(const TracePayload& payload);

}  // namespace matcn::net

#endif  // MATCN_NET_WIRE_H_
