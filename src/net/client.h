#ifndef MATCN_NET_CLIENT_H_
#define MATCN_NET_CLIENT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/socket.h"
#include "net/wire.h"

namespace matcn::net {

struct ClientOptions {
  /// Connect + per-call socket I/O timeout.
  int64_t timeout_ms = 30'000;
  /// Largest response payload the client will buffer.
  size_t max_frame_bytes = size_t{4} << 20;
};

/// Synchronous client for the MatCN wire protocol: one TCP connection,
/// one outstanding request at a time (submit N clients for concurrency —
/// the server multiplexes fine). Not thread-safe; use one Client per
/// thread.
///
/// Server-side failures come back as typed statuses: an overloaded
/// server yields kResourceExhausted, an expired deadline
/// kDeadlineExceeded — callers can tell backpressure from breakage.
class Client {
 public:
  struct QueryParams {
    uint32_t deadline_ms = 0;  // 0 = server default
    uint16_t t_max = 0;        // 0 = server default
    uint32_t max_cns = 0;      // cap streamed CN records; 0 = all
    bool include_sql = false;
    /// v4: ask the server to trace this request and append a TRACE frame
    /// (the per-stage span breakdown) after the trailer.
    bool trace = false;
  };

  struct QueryResult {
    bool cache_hit = false;
    bool degraded = false;
    std::string degraded_reason;
    uint32_t num_tuple_sets = 0;
    uint32_t num_matches = 0;
    std::vector<CnRecord> cns;  // at most max_cns of cns_total
    uint32_t cns_total = 0;
    uint64_t server_latency_us = 0;
    /// Present iff QueryParams::trace was set and the server replied with
    /// a TRACE frame.
    std::optional<TracePayload> trace;
  };

  static Result<Client> Connect(const std::string& host, uint16_t port,
                                ClientOptions options = {});

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// Sends one QUERY and reads frames until the trailer (or a typed
  /// error). `keywords` are sent verbatim; the server normalizes.
  Result<QueryResult> Query(const std::vector<std::string>& keywords,
                            const QueryParams& params);
  Result<QueryResult> Query(const std::vector<std::string>& keywords);

  /// v3: appends one tuple to `relation` on the server and returns the
  /// new index version + assigned location. Values map onto the
  /// relation's schema in order; use WireValue tag 0 for ints, 1 for
  /// text. Servers without a live index answer kUnimplemented.
  Result<InsertResult> Insert(const std::string& relation,
                              std::vector<WireValue> values);

  /// Server + service counters.
  Result<StatsPayload> Stats();

  Status Ping();

  /// True while the connection has not hit an I/O error. After a failed
  /// call the connection state is undefined; reconnect.
  bool connected() const { return fd_.valid(); }

 private:
  explicit Client(ScopedFd fd) : fd_(std::move(fd)) {}

  Status SendRequest(FrameType type, const std::string& payload);
  /// Reads one frame; rejects GOING_AWAY (turned into kResourceExhausted)
  /// and anything oversized.
  Status ReadFrame(FrameHeader* header, std::string* payload);

  ScopedFd fd_;
  ClientOptions options_;
  uint64_t next_request_id_ = 1;
};

}  // namespace matcn::net

#endif  // MATCN_NET_CLIENT_H_
