#ifndef MATCN_SERVICE_SHARDED_LRU_CACHE_H_
#define MATCN_SERVICE_SHARDED_LRU_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace matcn {

/// Aggregate cache counters, read without locking any shard.
struct CacheCounters {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  /// Entries removed by EraseIf (selective invalidation), not LRU pressure.
  uint64_t erased = 0;
  size_t entries = 0;
  size_t cost_bytes = 0;
};

/// A byte-budgeted LRU cache sharded by key hash: each shard owns an
/// independent mutex, recency list and map, so concurrent lookups of
/// different keys rarely contend. Values are immutable and shared —
/// `Get` hands out a `shared_ptr<const V>` that stays valid after the
/// entry is evicted.
///
/// The byte budget is split evenly across shards and each shard evicts
/// from its own LRU tail, so a hot shard cannot starve the others (the
/// usual trade-off: a pathological key skew underuses the cold shards).
template <typename V>
class ShardedLruCache {
 public:
  /// `capacity_bytes` == 0 disables the cache (Get always misses, Put is
  /// a no-op). `num_shards` is clamped to >= 1 and rounded up to a power
  /// of two.
  explicit ShardedLruCache(size_t capacity_bytes, size_t num_shards = 8)
      : capacity_bytes_(capacity_bytes) {
    size_t shards = 1;
    while (shards < num_shards) shards <<= 1;
    shard_mask_ = shards - 1;
    shards_.reserve(shards);
    for (size_t i = 0; i < shards; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
    per_shard_capacity_ = capacity_bytes / shards;
  }

  std::shared_ptr<const V> Get(const std::string& key) {
    if (capacity_bytes_ == 0) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    // Move to front = most recently used.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second->value;
  }

  /// Inserts or replaces `key`. `cost_bytes` is the caller's estimate of
  /// the value's footprint; entries whose cost exceeds a whole shard's
  /// budget are not cached at all.
  void Put(const std::string& key, std::shared_ptr<const V> value,
           size_t cost_bytes) {
    PutIf(key, std::move(value), cost_bytes, nullptr);
  }

  /// Conditional Put: `validate` runs under the shard mutex and the
  /// insertion only happens if it returns true. This is the atomic
  /// check-and-insert that a bare "load a sequence, then Put" cannot
  /// provide: because EraseIf holds the same shard mutex, a validate that
  /// checks an invalidation sequence either observes the bump (and skips
  /// the insert) or completes the insert before EraseIf scans the shard
  /// (which then erases it). Returns true if the entry was inserted.
  bool PutIf(const std::string& key, std::shared_ptr<const V> value,
             size_t cost_bytes, const std::function<bool()>& validate) {
    if (capacity_bytes_ == 0) return false;
    const size_t cost = cost_bytes + key.size() + kPerEntryOverhead;
    if (cost > per_shard_capacity_) return false;
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    if (validate && !validate()) return false;
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      shard.cost -= it->second->cost;
      shard.lru.erase(it->second);
      shard.map.erase(it);
      entries_.fetch_sub(1, std::memory_order_relaxed);
    }
    shard.lru.push_front(Entry{key, std::move(value), cost});
    shard.map[key] = shard.lru.begin();
    shard.cost += cost;
    entries_.fetch_add(1, std::memory_order_relaxed);
    insertions_.fetch_add(1, std::memory_order_relaxed);
    while (shard.cost > per_shard_capacity_ && shard.lru.size() > 1) {
      const Entry& victim = shard.lru.back();
      shard.cost -= victim.cost;
      shard.map.erase(victim.key);
      shard.lru.pop_back();
      entries_.fetch_sub(1, std::memory_order_relaxed);
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    return true;
  }

  /// Removes every entry whose key satisfies `pred`; returns the number
  /// removed. Walks all shards under their locks — meant for selective
  /// invalidation on writes, which are rare relative to lookups.
  size_t EraseIf(const std::function<bool(const std::string&)>& pred) {
    size_t removed = 0;
    for (const std::unique_ptr<Shard>& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      for (auto it = shard->lru.begin(); it != shard->lru.end();) {
        if (!pred(it->key)) {
          ++it;
          continue;
        }
        shard->cost -= it->cost;
        shard->map.erase(it->key);
        it = shard->lru.erase(it);
        ++removed;
      }
    }
    entries_.fetch_sub(removed, std::memory_order_relaxed);
    erased_.fetch_add(removed, std::memory_order_relaxed);
    return removed;
  }

  void Clear() {
    for (const std::unique_ptr<Shard>& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      entries_.fetch_sub(shard->map.size(), std::memory_order_relaxed);
      shard->map.clear();
      shard->lru.clear();
      shard->cost = 0;
    }
  }

  CacheCounters Counters() const {
    CacheCounters c;
    c.hits = hits_.load(std::memory_order_relaxed);
    c.misses = misses_.load(std::memory_order_relaxed);
    c.insertions = insertions_.load(std::memory_order_relaxed);
    c.evictions = evictions_.load(std::memory_order_relaxed);
    c.erased = erased_.load(std::memory_order_relaxed);
    c.entries = entries_.load(std::memory_order_relaxed);
    for (const std::unique_ptr<Shard>& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      c.cost_bytes += shard->cost;
    }
    return c;
  }

  size_t num_shards() const { return shards_.size(); }
  size_t capacity_bytes() const { return capacity_bytes_; }

 private:
  static constexpr size_t kPerEntryOverhead = 64;  // list/map node estimate

  struct Entry {
    std::string key;
    std::shared_ptr<const V> value;
    size_t cost = 0;
  };

  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<std::string, typename std::list<Entry>::iterator> map;
    size_t cost = 0;
  };

  Shard& ShardFor(const std::string& key) {
    return *shards_[std::hash<std::string>{}(key) & shard_mask_];
  }

  size_t capacity_bytes_;
  size_t per_shard_capacity_ = 0;
  size_t shard_mask_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> erased_{0};
  std::atomic<size_t> entries_{0};
};

}  // namespace matcn

#endif  // MATCN_SERVICE_SHARDED_LRU_CACHE_H_
