#ifndef MATCN_SERVICE_TUPLE_SET_PROVIDER_H_
#define MATCN_SERVICE_TUPLE_SET_PROVIDER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "core/keyword_query.h"
#include "core/tuple_set.h"
#include "obs/trace.h"
#include "service/service_stats.h"

namespace matcn {

/// The output of one tuple-set stage run by a TupleSetProvider: the set
/// R_Q sorted by (relation, termset) — the exact order
/// TupleSetFinder::BuildTupleSets emits — plus the metadata QueryService
/// forwards into the response.
struct TupleSetBatch {
  std::vector<TupleSet> tuple_sets;
  /// Stage wall time in milliseconds, reported into StageStats as the
  /// pipeline's ts stage.
  double ts_millis = 0;
  /// Index-version floor this batch reflects (minimum across shards for
  /// a scatter). Zero when the backend is static.
  uint64_t index_version = 0;
  /// The batch is usable but incomplete — e.g. a shard died mid-scatter
  /// and its relations are missing. Degraded batches produce degraded
  /// (and therefore uncached) responses.
  bool degraded = false;
  std::string degraded_reason;
};

/// Pluggable tuple-set stage: QueryService's fourth backend. The
/// coordinator implements this to scatter TSFIND across shards and merge
/// the per-shard batches; everything downstream (QMGen, MatchCN,
/// admission, deadlines, caching, tracing) is the provider-agnostic
/// machinery QueryService already runs.
///
/// FindTupleSets runs on a service worker thread and may block; it must
/// honor `deadline` by returning either a degraded batch (partial data,
/// still correct for what it covers) or a Status error (no usable data).
class TupleSetProvider {
 public:
  virtual ~TupleSetProvider() = default;

  /// `normalized` is the service-normalized query (keywords sorted,
  /// stopwords dropped). `trace` may be null; when set, implementations
  /// should parent their stage spans under `parent_span`.
  virtual Result<TupleSetBatch> FindTupleSets(
      const KeywordQuery& normalized, Deadline deadline,
      const std::shared_ptr<obs::Trace>& trace, uint32_t parent_span) = 0;

  /// Layers provider-owned gauges (shard health, scatter counters) into a
  /// service stats snapshot; called under QueryService::Stats().
  virtual void FillStats(ServiceStatsSnapshot* snapshot) const {
    (void)snapshot;
  }
};

}  // namespace matcn

#endif  // MATCN_SERVICE_TUPLE_SET_PROVIDER_H_
