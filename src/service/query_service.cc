#include "service/query_service.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "core/tsfind.h"
#include "indexing/stopwords.h"
#include "obs/log.h"

namespace matcn {

namespace {

unsigned ResolveThreads(unsigned requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 4;
}

double MillisSince(Deadline::Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             Deadline::Clock::now() - start)
      .count();
}

}  // namespace

QueryService::QueryService(const SchemaGraph* schema_graph,
                           const TermIndex* index,
                           QueryServiceOptions options)
    : schema_graph_(schema_graph), index_(index),
      options_(std::move(options)) {
  sampler_ = std::make_unique<obs::TraceSampler>(options_.trace_sample_rate,
                                                 options_.trace_sample_seed);
  cache_ = std::make_unique<ResultCache>(options_.cache_bytes,
                                         options_.cache_shards);
  pool_ = std::make_unique<ThreadPool>(ResolveThreads(options_.num_threads),
                                       options_.max_queue);
}

QueryService::QueryService(const SchemaGraph* schema_graph, std::string dir,
                           const DatabaseSchema* disk_schema,
                           QueryServiceOptions options)
    : schema_graph_(schema_graph), disk_dir_(std::move(dir)),
      disk_schema_(disk_schema), options_(std::move(options)) {
  // The disk pipeline scans relation files, which do contain stopwords;
  // dropping them would change answers, so normalization keeps them.
  options_.drop_stopwords = false;
  sampler_ = std::make_unique<obs::TraceSampler>(options_.trace_sample_rate,
                                                 options_.trace_sample_seed);
  cache_ = std::make_unique<ResultCache>(options_.cache_bytes,
                                         options_.cache_shards);
  pool_ = std::make_unique<ThreadPool>(ResolveThreads(options_.num_threads),
                                       options_.max_queue);
}

QueryService::QueryService(const SchemaGraph* schema_graph,
                           const liveindex::ConcurrentTermIndex* live_index,
                           QueryServiceOptions options)
    : schema_graph_(schema_graph), live_index_(live_index),
      options_(std::move(options)) {
  sampler_ = std::make_unique<obs::TraceSampler>(options_.trace_sample_rate,
                                                 options_.trace_sample_seed);
  cache_ = std::make_unique<ResultCache>(options_.cache_bytes,
                                         options_.cache_shards);
  pool_ = std::make_unique<ThreadPool>(ResolveThreads(options_.num_threads),
                                       options_.max_queue);
}

QueryService::QueryService(const SchemaGraph* schema_graph,
                           TupleSetProvider* provider,
                           QueryServiceOptions options)
    : schema_graph_(schema_graph), provider_(provider),
      options_(std::move(options)) {
  sampler_ = std::make_unique<obs::TraceSampler>(options_.trace_sample_rate,
                                                 options_.trace_sample_seed);
  cache_ = std::make_unique<ResultCache>(options_.cache_bytes,
                                         options_.cache_shards);
  pool_ = std::make_unique<ThreadPool>(ResolveThreads(options_.num_threads),
                                       options_.max_queue);
}

QueryService::~QueryService() = default;

bool QueryService::CacheKeyTouchesTerms(
    const std::string& key, const std::vector<std::string>& terms) {
  // Keys look like "kw1\x1fkw2\x1f...|t=..;m=..;q=.": scan only the
  // keyword section, matching whole unit-separated keywords.
  size_t end = key.rfind("|t=");
  if (end == std::string::npos) end = key.size();
  size_t start = 0;
  while (start < end) {
    size_t sep = key.find('\x1f', start);
    if (sep == std::string::npos || sep > end) sep = end;
    for (const std::string& term : terms) {
      if (sep - start == term.size() &&
          key.compare(start, term.size(), term) == 0) {
        return true;
      }
    }
    start = sep + 1;
  }
  return false;
}

size_t QueryService::InvalidateTerms(const std::vector<std::string>& terms) {
  if (terms.empty()) return 0;
  // Fence first: any Execute that captured the old sequence must not Put
  // after this, even though its entry is about to be erased.
  invalidation_seq_.fetch_add(1, std::memory_order_acq_rel);
  if (options_.cache_bytes == 0) return 0;
  return cache_->EraseIf([&terms](const std::string& key) {
    return CacheKeyTouchesTerms(key, terms);
  });
}

void QueryService::ConnectWriter(liveindex::IndexWriter* writer) {
  writer->set_invalidation_hook(
      [this](const std::vector<std::string>& terms) {
        InvalidateTerms(terms);
      });
}

KeywordQuery QueryService::Normalize(const KeywordQuery& query) const {
  std::vector<std::string> keywords;
  keywords.reserve(query.size());
  if (options_.drop_stopwords) {
    for (const std::string& kw : query.keywords()) {
      if (!IsStopword(kw)) keywords.push_back(kw);
    }
  }
  // All-stopword queries keep their keywords: returning "no keywords"
  // would turn a well-formed (if unanswerable) query into a parse error.
  if (keywords.empty()) keywords = query.keywords();
  std::sort(keywords.begin(), keywords.end());
  Result<KeywordQuery> normalized = KeywordQuery::FromKeywords(keywords);
  // FromKeywords only fails on empty/oversized input; both are impossible
  // here because `query` was already a valid KeywordQuery.
  return normalized.ok() ? *normalized : query;
}

std::string QueryService::CacheKey(const KeywordQuery& normalized_query,
                                   const MatCnGenOptions& gen) {
  std::string key;
  for (const std::string& kw : normalized_query.keywords()) {
    key += kw;
    key += '\x1f';
  }
  key += "|t=" + std::to_string(gen.t_max);
  key += ";m=" + std::to_string(gen.max_matches);
  key += ";q=";
  key += gen.naive_qmgen ? '1' : '0';
  return key;
}

size_t QueryService::ApproximateResultBytes(const GenerationResult& result) {
  size_t bytes = sizeof(GenerationResult);
  for (const TupleSet& ts : result.tuple_sets) {
    bytes += sizeof(TupleSet) + ts.tuples.size() * sizeof(TupleId);
  }
  for (const QueryMatch& match : result.matches) {
    bytes += sizeof(QueryMatch) + match.size() * sizeof(int);
  }
  for (const CandidateNetwork& cn : result.cns) {
    // nodes_ + parents_ per node, plus the object headers.
    bytes += 64 + cn.size() * (sizeof(CnNode) + sizeof(int));
  }
  return bytes;
}

std::future<Result<QueryResponse>> QueryService::Submit(
    const KeywordQuery& query) {
  return Submit(query, options_.default_deadline_ms > 0
                           ? Deadline::AfterMillis(options_.default_deadline_ms)
                           : Deadline::Infinite());
}

std::future<Result<QueryResponse>> QueryService::Submit(
    const KeywordQuery& query, Deadline deadline) {
  return Submit(query, deadline, QueryRequestOptions{});
}

std::future<Result<QueryResponse>> QueryService::Submit(
    const KeywordQuery& query, Deadline deadline,
    QueryRequestOptions request_options) {
  auto promise = std::make_shared<std::promise<Result<QueryResponse>>>();
  std::future<Result<QueryResponse>> future = promise->get_future();
  SubmitAsync(query, deadline, request_options,
              [promise](Result<QueryResponse> response) {
                promise->set_value(std::move(response));
              });
  return future;
}

std::shared_ptr<CancelToken> QueryService::SubmitAsync(
    const KeywordQuery& query, Deadline deadline,
    QueryRequestOptions request_options, ResponseCallback done) {
  const Deadline::Clock::time_point submitted_at = Deadline::Clock::now();
  stats_.RecordSubmitted();
  auto cancel = std::make_shared<CancelToken>(deadline);

  // Trace decision, made at the head of the request. The sampler always
  // consumes one sequence number per submission so the sampled-set stays
  // a pure function of (seed, submission index) regardless of what other
  // requests ask for. An armed slow-query log traces everything — the
  // outlier's breakdown must already exist by the time it turns out slow.
  const bool sampled = sampler_->Sample();
  TraceContext tc;
  if (request_options.trace || sampled || options_.slow_query_ms > 0) {
    tc.trace = std::make_shared<obs::Trace>();
    tc.root_span = tc.trace->BeginSpan("request");
  }

  // 1. Admission-time deadline check: an already-expired deadline never
  //    reaches the pipeline (or even the cache).
  if (deadline.Expired()) {
    stats_.RecordTimedOut();
    done(Status::DeadlineExceeded("deadline expired before execution"));
    return cancel;
  }

  MatCnGenOptions gen = options_.gen;
  if (request_options.t_max > 0) gen.t_max = request_options.t_max;

  KeywordQuery normalized = Normalize(query);
  std::string key = CacheKey(normalized, gen);

  // 2. Cache lookup on the caller thread: hits cost no worker and no
  //    queue slot.
  if (options_.cache_bytes > 0) {
    const uint32_t lookup_span =
        tc.trace ? tc.trace->BeginSpan("cache_lookup", tc.root_span) : 0;
    std::shared_ptr<const GenerationResult> hit = cache_->Get(key);
    if (tc.trace) tc.trace->EndSpan(lookup_span, hit != nullptr ? 1 : 0);
    if (hit) {
      QueryResponse response;
      response.query = std::move(normalized);
      response.result = std::move(hit);
      response.cache_hit = true;
      response.latency_ms = MillisSince(submitted_at);
      stats_.RecordCompleted();
      stats_.RecordLatencyMicros(
          static_cast<int64_t>(response.latency_ms * 1000.0));
      FinishTrace(&tc, &response);
      done(std::move(response));
      return cancel;
    }
  }

  // 3. Admission control: bounded queue, reject instead of backlog. The
  //    callback rides in a shared_ptr so a rejected submission (which
  //    destroys the task, and with it anything moved inside) can still
  //    deliver the ResourceExhausted.
  if (tc.trace) {
    // Opened here, closed on the worker at the top of Execute — the one
    // deliberately cross-thread span (queue wait time).
    tc.admission_span = tc.trace->BeginSpan("admission_wait", tc.root_span);
  }
  auto done_ptr = std::make_shared<ResponseCallback>(std::move(done));
  const bool admitted = pool_->TrySubmit(
      [this, normalized = std::move(normalized), key = std::move(key), gen,
       cancel, submitted_at, tc, done_ptr]() mutable {
        Execute(std::move(normalized), std::move(key), gen, std::move(cancel),
                submitted_at, std::move(tc), std::move(*done_ptr));
      });
  if (!admitted) {
    stats_.RecordRejected();
    (*done_ptr)(Status::ResourceExhausted(
        "admission queue full (" + std::to_string(options_.max_queue) +
        " waiting); retry later"));
  }
  return cancel;
}

void QueryService::Execute(
    KeywordQuery normalized, std::string cache_key, MatCnGenOptions gen,
    std::shared_ptr<CancelToken> cancel,
    Deadline::Clock::time_point submitted_at, TraceContext tc,
    ResponseCallback done) {
  if (tc.trace) tc.trace->EndSpan(tc.admission_span);
  if (options_.pre_execute_hook) options_.pre_execute_hook();

  // The query may have waited in the queue past its deadline (or been
  // cancelled by a draining front end).
  if (cancel->Expired()) {
    stats_.RecordTimedOut();
    done(Status::DeadlineExceeded(
        cancel->CancelRequested() ? "query cancelled while queued"
                                  : "deadline expired while queued"));
    return;
  }

  gen.cancel = cancel.get();
  gen.trace = tc.trace;
  gen.trace_parent = tc.root_span;
  // Intra-query MatchCN helpers share the service's own pool (idle
  // workers steal per-match work from this query) instead of spawning
  // threads per query.
  if (gen.num_threads > 1) gen.executor = pool_.get();
  MatCnGen generator(schema_graph_, gen);

  GenerationResult result;
  uint64_t index_version = 0;
  bool batch_degraded = false;
  std::string batch_degraded_reason;
  // Captured before the snapshot: if an insert invalidates between here
  // and the cache Put below, the sequence moves and the Put is skipped.
  const uint64_t inval_seq =
      invalidation_seq_.load(std::memory_order_acquire);
  if (provider_ != nullptr || live_index_ != nullptr) {
    // Staged backends: the tuple-set stage comes from the provider (a
    // coordinator scattering TSFIND across shards) or from the local
    // epoch-pinned live index, then the shared QMGen + MatchCN pipeline
    // runs globally over the batch. A degraded batch (missing shard)
    // makes the whole response degraded — and therefore uncached.
    Result<TupleSetBatch> batch =
        provider_ != nullptr
            ? provider_->FindTupleSets(normalized, cancel->deadline(),
                                       tc.trace, tc.root_span)
            : LocalTupleSets(normalized, tc.trace, tc.root_span);
    if (!batch.ok()) {
      stats_.RecordFailed();
      done(batch.status());
      return;
    }
    index_version = (*batch).index_version;
    batch_degraded = (*batch).degraded;
    batch_degraded_reason = std::move((*batch).degraded_reason);
    const double ts_millis = (*batch).ts_millis;
    result = generator.GenerateFromTupleSets(
        normalized, std::move((*batch).tuple_sets), ts_millis);
  } else if (index_ != nullptr) {
    result = generator.Generate(normalized, *index_);
  } else {
    Result<GenerationResult> disk =
        generator.GenerateDisk(normalized, disk_dir_, *disk_schema_);
    if (!disk.ok()) {
      stats_.RecordFailed();
      done(disk.status());
      return;
    }
    result = std::move(disk).value();
  }

  QueryResponse response;
  response.query = std::move(normalized);
  if (batch_degraded) {
    response.degraded = true;
    response.degraded_reason = std::move(batch_degraded_reason);
  } else if (result.stats.interrupted) {
    response.degraded = true;
    response.degraded_reason = "deadline expired mid-generation; result is partial";
  } else if (result.stats.truncated) {
    response.degraded = true;
    response.degraded_reason = "match enumeration truncated at max_matches=" +
                               std::to_string(gen.max_matches);
  }
  stats_.RecordStages(result.stats.ts_millis, result.stats.match_millis,
                      result.stats.cn_millis,
                      result.stats.cn_parallel_efficiency,
                      result.stats.cn_workers);
  stats_.RecordArenaPeak(result.stats.arena_bytes_peak);
  response.index_version = index_version;
  auto shared = std::make_shared<const GenerationResult>(std::move(result));
  response.result = shared;
  // Only complete answers are cached: a degraded result served from cache
  // would pin the degradation past the deadline that caused it. A result
  // raced by an invalidation is not cached either — it may predate the
  // insert that just evicted its key. The sequence re-check runs under
  // the shard mutex (PutIf), which closes the check-then-act window: an
  // InvalidateTerms that bumped the sequence before we lock the shard is
  // observed here (its EraseIf takes the same mutex, so the bump is
  // visible once we hold it); one that bumps after we insert will still
  // scan this shard and erase the entry.
  if (!response.degraded && options_.cache_bytes > 0) {
    cache_->PutIf(cache_key, shared, ApproximateResultBytes(*shared),
                  [this, inval_seq] {
                    return invalidation_seq_.load(
                               std::memory_order_acquire) == inval_seq;
                  });
  }
  response.latency_ms = MillisSince(submitted_at);
  stats_.RecordCompleted();
  if (response.degraded) stats_.RecordDegraded();
  stats_.RecordLatencyMicros(
      static_cast<int64_t>(response.latency_ms * 1000.0));
  FinishTrace(&tc, &response);
  done(std::move(response));
}

Result<TupleSetBatch> QueryService::LocalTupleSets(
    const KeywordQuery& normalized, const std::shared_ptr<obs::Trace>& trace,
    uint32_t parent_span) {
  TupleSetBatch batch;
  const Deadline::Clock::time_point ts_started = Deadline::Clock::now();
  if (live_index_ != nullptr) {
    // Live backend: per-keyword lists from an epoch-pinned snapshot.
    // Readers never block the writer; the snapshot guarantees memory
    // safety, and its version is the floor this batch reflects.
    const uint32_t pin_span =
        trace ? trace->BeginSpan("snapshot_pin", parent_span) : 0;
    const liveindex::IndexSnapshot snapshot = live_index_->Snapshot();
    if (trace) trace->EndSpan(pin_span, snapshot.version());
    batch.index_version = snapshot.version();
    const uint32_t ts_span =
        trace ? trace->BeginSpan("tsfind", parent_span) : 0;
    // Per-worker posting scratch: repeated queries on one pool thread
    // reuse the same decode/merge buffers instead of allocating per term.
    thread_local PostingScratch tls_posting_scratch;
    std::vector<TermsetTuples> keyword_lists;
    keyword_lists.reserve(normalized.size());
    for (size_t i = 0; i < normalized.size(); ++i) {
      TermsetTuples tt;
      tt.termset = Termset{1} << i;
      snapshot.TuplesForInto(normalized.keyword(i), &tls_posting_scratch,
                             &tt.tuples);
      keyword_lists.push_back(std::move(tt));
    }
    batch.tuple_sets =
        TupleSetFinder::BuildTupleSets(std::move(keyword_lists));
    if (trace) trace->EndSpan(ts_span, batch.tuple_sets.size());
  } else if (index_ != nullptr) {
    const uint32_t ts_span =
        trace ? trace->BeginSpan("tsfind", parent_span) : 0;
    batch.tuple_sets = TupleSetFinder::FindMem(*index_, normalized);
    if (trace) trace->EndSpan(ts_span, batch.tuple_sets.size());
  } else {
    return Status::Unimplemented(
        "tuple-set stage requires a live or memory backend");
  }
  batch.ts_millis = MillisSince(ts_started);
  return batch;
}

std::shared_ptr<CancelToken> QueryService::SubmitTsFindAsync(
    const KeywordQuery& query, Deadline deadline, TsFindCallback done) {
  stats_.RecordSubmitted();
  auto cancel = std::make_shared<CancelToken>(deadline);
  if (deadline.Expired()) {
    stats_.RecordTimedOut();
    done(Status::DeadlineExceeded("deadline expired before execution"));
    return cancel;
  }
  // Coordinator normalization is idempotent under shard normalization
  // (sorted stays sorted, stopwords stay dropped), so a shard answers the
  // same batch whether the keywords arrive raw or pre-normalized.
  KeywordQuery normalized = Normalize(query);
  auto done_ptr = std::make_shared<TsFindCallback>(std::move(done));
  const bool admitted = pool_->TrySubmit(
      [this, normalized = std::move(normalized), cancel, done_ptr]() mutable {
        if (options_.pre_execute_hook) options_.pre_execute_hook();
        if (cancel->Expired()) {
          stats_.RecordTimedOut();
          (*done_ptr)(Status::DeadlineExceeded(
              cancel->CancelRequested() ? "tsfind cancelled while queued"
                                        : "deadline expired while queued"));
          return;
        }
        Result<TupleSetBatch> batch = LocalTupleSets(normalized, nullptr, 0);
        if (!batch.ok()) {
          stats_.RecordFailed();
          (*done_ptr)(batch.status());
          return;
        }
        stats_.RecordCompleted();
        (*done_ptr)(std::move(batch));
      });
  if (!admitted) {
    stats_.RecordRejected();
    (*done_ptr)(Status::ResourceExhausted(
        "admission queue full (" + std::to_string(options_.max_queue) +
        " waiting); retry later"));
  }
  return cancel;
}

void QueryService::FinishTrace(TraceContext* tc, QueryResponse* response) {
  if (!tc->trace) return;
  tc->trace->EndSpan(tc->root_span);
  response->trace = tc->trace;
  response->trace_root = tc->root_span;
  if (options_.slow_query_ms > 0 &&
      response->latency_ms >= static_cast<double>(options_.slow_query_ms)) {
    std::string keywords;
    for (const std::string& kw : response->query.keywords()) {
      if (!keywords.empty()) keywords += ' ';
      keywords += kw;
    }
    // Straggling MatchCN helpers may still be running; Snapshot clamps
    // their open spans rather than waiting.
    MATCN_LOG(Warn)
        .Field("query", keywords)
        .Field("latency_ms", response->latency_ms)
        .Field("cache_hit", response->cache_hit ? 1 : 0)
        .Field("degraded", response->degraded ? 1 : 0)
        .Field("spans", obs::RenderCompact(tc->trace->Snapshot()))
        << "slow query";
  }
}

Result<QueryResponse> QueryService::Query(const KeywordQuery& query) {
  return Submit(query).get();
}

Result<QueryResponse> QueryService::Query(const KeywordQuery& query,
                                          Deadline deadline) {
  return Submit(query, deadline).get();
}

Result<QueryResponse> QueryService::Query(
    const KeywordQuery& query, QueryRequestOptions request_options) {
  return Submit(query,
                options_.default_deadline_ms > 0
                    ? Deadline::AfterMillis(options_.default_deadline_ms)
                    : Deadline::Infinite(),
                request_options)
      .get();
}

ServiceStatsSnapshot QueryService::Stats() const {
  ServiceStatsSnapshot s = stats_.Snapshot();
  const CacheCounters cache = cache_->Counters();
  s.cache_hits = cache.hits;
  s.cache_misses = cache.misses;
  s.cache_entries = cache.entries;
  s.cache_bytes = cache.cost_bytes;
  s.cache_evictions = cache.evictions;
  s.cache_invalidations = cache.erased;
  s.queue_depth = pool_->QueueDepth();
  s.num_threads = pool_->num_threads();
  if (live_index_ != nullptr) {
    s.index_version = live_index_->version();
    s.index_delta_bytes = live_index_->delta_bytes();
    s.index_compactions = live_index_->compactions();
  }
  if (provider_ != nullptr) provider_->FillStats(&s);
  return s;
}

}  // namespace matcn
