#ifndef MATCN_SERVICE_THREAD_POOL_H_
#define MATCN_SERVICE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/executor.h"

namespace matcn {

/// Fixed-size worker pool with a bounded submission queue. Submission is
/// non-blocking: `TrySubmit` either enqueues the task or returns false
/// when the queue is at capacity (admission control — the caller turns
/// that into a reject `Status` instead of building an unbounded backlog).
/// The destructor stops accepting work, drains tasks already admitted,
/// and joins the workers.
///
/// Besides the query queue the pool runs a second, smaller *subtask* lane
/// (the TaskExecutor interface): intra-query helper tasks spawned by an
/// in-flight query so idle workers can steal part of its per-match CN
/// work. Subtasks are drained ahead of queued queries — finishing the
/// query already holding a worker beats starting a new one — and they are
/// bounded separately so helper fan-out never eats admission-control
/// slots.
class ThreadPool : public TaskExecutor {
 public:
  /// `num_threads` is clamped to >= 1. `max_queue` bounds the number of
  /// tasks waiting (not counting the ones currently executing).
  ThreadPool(unsigned num_threads, size_t max_queue);
  ~ThreadPool() override;

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` unless the queue is full or the pool is shutting
  /// down; returns whether the task was admitted.
  bool TrySubmit(std::function<void()> task);

  /// TaskExecutor: enqueues an intra-query helper onto the subtask lane
  /// (bounded at 4 tasks per worker). Helpers must tolerate running
  /// arbitrarily late or never — see TaskExecutor.
  bool TrySpawn(std::function<void()> fn) override;

  unsigned concurrency() const override { return num_threads(); }

  unsigned num_threads() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Tasks admitted but not yet picked up by a worker.
  size_t QueueDepth() const;

  /// Helper subtasks admitted but not yet picked up.
  size_t SubtaskDepth() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::deque<std::function<void()>> subtasks_;
  size_t max_queue_;
  size_t max_subtasks_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace matcn

#endif  // MATCN_SERVICE_THREAD_POOL_H_
