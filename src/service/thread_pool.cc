#include "service/thread_pool.h"

#include <algorithm>
#include <utility>

namespace matcn {

ThreadPool::ThreadPool(unsigned num_threads, size_t max_queue)
    : max_queue_(max_queue) {
  num_threads = std::max(1u, num_threads);
  max_subtasks_ = size_t{4} * num_threads;
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool ThreadPool::TrySubmit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ || queue_.size() >= max_queue_) return false;
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return true;
}

bool ThreadPool::TrySpawn(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ || subtasks_.size() >= max_subtasks_) return false;
    subtasks_.push_back(std::move(fn));
  }
  cv_.notify_one();
  return true;
}

size_t ThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

size_t ThreadPool::SubtaskDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return subtasks_.size();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] {
        return stopping_ || !queue_.empty() || !subtasks_.empty();
      });
      // Drain admitted tasks before exiting so every submitted promise is
      // fulfilled even during shutdown. Subtasks first: they speed up a
      // query that is already executing on another worker.
      if (!subtasks_.empty()) {
        task = std::move(subtasks_.front());
        subtasks_.pop_front();
      } else if (!queue_.empty()) {
        task = std::move(queue_.front());
        queue_.pop_front();
      } else {
        return;
      }
    }
    task();
  }
}

}  // namespace matcn
