#ifndef MATCN_SERVICE_SERVICE_STATS_H_
#define MATCN_SERVICE_SERVICE_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "metrics/latency_histogram.h"
#include "metrics/stage_stats.h"
#include "obs/prometheus.h"
#include "service/sharded_lru_cache.h"

namespace matcn {

/// The single authoritative scalar-field list for ServiceStatsSnapshot.
/// Everything that renders these fields — ToString, the STATS wire
/// payload, the Prometheus exporter — iterates this list through
/// VisitFields, so adding a counter here is the whole change (plus the
/// member below, which the compiler enforces).
/// V(kind, field, help)
#define MATCN_SERVICE_STATS_FIELDS(V)                                         \
  V(kCounter, submitted, "Queries submitted (every Submit/Query call)")       \
  V(kCounter, completed, "Queries whose pipeline ran to an answer")           \
  V(kCounter, rejected, "Queries rejected by admission control")              \
  V(kCounter, timed_out, "Queries whose deadline expired before running")     \
  V(kCounter, degraded, "Answered but truncated or interrupted queries")      \
  V(kCounter, failed, "Queries failing with a non-deadline error")            \
  V(kCounter, cache_hits, "Result-cache hits")                                \
  V(kCounter, cache_misses, "Result-cache misses")                            \
  V(kGauge, cache_entries, "Result-cache resident entries")                   \
  V(kGauge, cache_bytes, "Result-cache resident bytes")                       \
  V(kCounter, cache_evictions, "Result-cache capacity evictions")             \
  V(kCounter, cache_invalidations,                                            \
    "Cache entries removed by selective term invalidation")                   \
  V(kGauge, queue_depth, "Admission-queue depth")                             \
  V(kGauge, num_threads, "Query worker threads")                              \
  V(kGauge, index_version, "Live index version (0 for static backends)")      \
  V(kGauge, index_delta_bytes, "Live index delta-postings bytes")             \
  V(kCounter, index_compactions, "Live index background compactions")         \
  V(kGauge, arena_bytes_peak,                                                 \
    "Largest per-worker SingleCn arena high-water in bytes")                  \
  V(kGauge, simd_dispatch_level,                                              \
    "Active SIMD kernel tier (0=scalar, 1=sse4.2, 2=avx2)")                   \
  V(kGauge, shards_total, "Shards in the coordinator's map (0 unsharded)")    \
  V(kGauge, shards_healthy, "Shards currently passing heartbeats")            \
  V(kCounter, shard_scatters, "TSFIND scatters issued (one per miss query)")  \
  V(kCounter, shard_scatter_errors,                                           \
    "Per-shard TSFIND failures (timeout, disconnect, wire error)")            \
  V(kCounter, shard_degraded_batches,                                         \
    "Scatters answered degraded because >=1 shard was missing")               \
  V(kGauge, shard_merge_us_mean, "Mean coordinator k-way merge time (us)")    \
  V(kCounter, shard_heartbeats, "Heartbeat acks received across shards")      \
  V(kCounter, shard_reconnects, "Shard channel reconnect attempts")           \
  V(kCounter, shard_inserts_routed, "INSERTs routed to an owning shard")      \
  V(kGauge, mean_ms, "Mean service latency in milliseconds")                  \
  V(kGauge, p50_ms, "p50 service latency in milliseconds")                    \
  V(kGauge, p95_ms, "p95 service latency in milliseconds")                    \
  V(kGauge, p99_ms, "p99 service latency in milliseconds")                    \
  V(kGauge, max_ms, "Max service latency in milliseconds")

/// Point-in-time view of a QueryService's counters, safe to copy around.
/// All counts are since service construction.
struct ServiceStatsSnapshot {
  uint64_t submitted = 0;    // every Submit/Query call
  uint64_t completed = 0;    // pipeline ran to an answer (incl. degraded)
  uint64_t rejected = 0;     // admission control turned the query away
  uint64_t timed_out = 0;    // deadline expired before the pipeline ran
  uint64_t degraded = 0;     // answered, but truncated or interrupted
  uint64_t failed = 0;       // pipeline returned a non-deadline error
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  size_t cache_entries = 0;
  size_t cache_bytes = 0;
  uint64_t cache_evictions = 0;
  /// Cache entries removed by selective invalidation (live backend).
  uint64_t cache_invalidations = 0;
  size_t queue_depth = 0;
  unsigned num_threads = 0;
  // Live-index gauges; all zero for the static backends.
  uint64_t index_version = 0;
  size_t index_delta_bytes = 0;
  uint64_t index_compactions = 0;
  /// Hot-path memory/kernel gauges: largest SingleCn arena high-water any
  /// worker reported, and the CPU-dispatch tier the posting kernels run at
  /// (simd::Level numeric value; constant per process unless forced).
  size_t arena_bytes_peak = 0;
  int simd_dispatch_level = 0;
  // Coordinator shard aggregates; all zero on an unsharded service. A
  // sharded service's TupleSetProvider fills them in FillStats.
  uint64_t shards_total = 0;
  uint64_t shards_healthy = 0;
  uint64_t shard_scatters = 0;
  uint64_t shard_scatter_errors = 0;
  uint64_t shard_degraded_batches = 0;
  uint64_t shard_merge_us_mean = 0;
  uint64_t shard_heartbeats = 0;
  uint64_t shard_reconnects = 0;
  uint64_t shard_inserts_routed = 0;
  // End-to-end service latency (submit to response), cache hits included.
  double mean_ms = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;
  // Per-stage pipeline timing means (executed queries only — cache hits
  // never reach the pipeline), including the MatchCN parallelism gauges.
  StageStatsSnapshot stages;
  // Full cumulative latency distribution (same histogram the quantiles
  // above are computed from); the Prometheus exporter emits it as
  // _bucket series.
  HistogramSnapshot latency_histogram;

  /// Calls visit(name, value, kind, help) once per scalar field, in
  /// declaration order. `value` keeps its native arithmetic type.
  template <typename V>
  void VisitFields(V&& visit) const {
#define MATCN_SERVICE_STATS_VISIT(kind, field, help) \
  visit(#field, field, obs::MetricKind::kind, help);
    MATCN_SERVICE_STATS_FIELDS(MATCN_SERVICE_STATS_VISIT)
#undef MATCN_SERVICE_STATS_VISIT
  }

  std::string ToString() const;
};

/// Concurrent counter block shared by the service's submit path and its
/// workers; every mutation is a relaxed atomic, so recording never blocks
/// a query.
class ServiceStats {
 public:
  void RecordSubmitted() { Bump(&submitted_); }
  void RecordCompleted() { Bump(&completed_); }
  void RecordRejected() { Bump(&rejected_); }
  void RecordTimedOut() { Bump(&timed_out_); }
  void RecordDegraded() { Bump(&degraded_); }
  void RecordFailed() { Bump(&failed_); }
  void RecordLatencyMicros(int64_t micros) { latency_.Record(micros); }
  void RecordStages(double ts_ms, double match_ms, double cn_ms,
                    double cn_parallel_efficiency, unsigned cn_workers) {
    stages_.Record(ts_ms, match_ms, cn_ms, cn_parallel_efficiency,
                   cn_workers);
  }
  /// Running max of per-worker SingleCn arena high-water bytes.
  void RecordArenaPeak(size_t bytes) {
    size_t prev = arena_bytes_peak_.load(std::memory_order_relaxed);
    while (prev < bytes &&
           !arena_bytes_peak_.compare_exchange_weak(
               prev, bytes, std::memory_order_relaxed)) {
    }
  }

  /// Fills the counter and latency fields; the caller layers in cache and
  /// queue gauges it owns.
  ServiceStatsSnapshot Snapshot() const;

 private:
  static void Bump(std::atomic<uint64_t>* c) {
    c->fetch_add(1, std::memory_order_relaxed);
  }

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> timed_out_{0};
  std::atomic<uint64_t> degraded_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<size_t> arena_bytes_peak_{0};
  LatencyHistogram latency_;
  StageStats stages_;
};

}  // namespace matcn

#endif  // MATCN_SERVICE_SERVICE_STATS_H_
