#ifndef MATCN_SERVICE_SERVICE_STATS_H_
#define MATCN_SERVICE_SERVICE_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "metrics/latency_histogram.h"
#include "metrics/stage_stats.h"
#include "service/sharded_lru_cache.h"

namespace matcn {

/// Point-in-time view of a QueryService's counters, safe to copy around.
/// All counts are since service construction.
struct ServiceStatsSnapshot {
  uint64_t submitted = 0;    // every Submit/Query call
  uint64_t completed = 0;    // pipeline ran to an answer (incl. degraded)
  uint64_t rejected = 0;     // admission control turned the query away
  uint64_t timed_out = 0;    // deadline expired before the pipeline ran
  uint64_t degraded = 0;     // answered, but truncated or interrupted
  uint64_t failed = 0;       // pipeline returned a non-deadline error
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  size_t cache_entries = 0;
  size_t cache_bytes = 0;
  uint64_t cache_evictions = 0;
  /// Cache entries removed by selective invalidation (live backend).
  uint64_t cache_invalidations = 0;
  size_t queue_depth = 0;
  unsigned num_threads = 0;
  // Live-index gauges; all zero for the static backends.
  uint64_t index_version = 0;
  size_t index_delta_bytes = 0;
  uint64_t index_compactions = 0;
  // End-to-end service latency (submit to response), cache hits included.
  double mean_ms = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;
  // Per-stage pipeline timing means (executed queries only — cache hits
  // never reach the pipeline), including the MatchCN parallelism gauges.
  StageStatsSnapshot stages;

  std::string ToString() const;
};

/// Concurrent counter block shared by the service's submit path and its
/// workers; every mutation is a relaxed atomic, so recording never blocks
/// a query.
class ServiceStats {
 public:
  void RecordSubmitted() { Bump(&submitted_); }
  void RecordCompleted() { Bump(&completed_); }
  void RecordRejected() { Bump(&rejected_); }
  void RecordTimedOut() { Bump(&timed_out_); }
  void RecordDegraded() { Bump(&degraded_); }
  void RecordFailed() { Bump(&failed_); }
  void RecordLatencyMicros(int64_t micros) { latency_.Record(micros); }
  void RecordStages(double ts_ms, double match_ms, double cn_ms,
                    double cn_parallel_efficiency, unsigned cn_workers) {
    stages_.Record(ts_ms, match_ms, cn_ms, cn_parallel_efficiency,
                   cn_workers);
  }

  /// Fills the counter and latency fields; the caller layers in cache and
  /// queue gauges it owns.
  ServiceStatsSnapshot Snapshot() const;

 private:
  static void Bump(std::atomic<uint64_t>* c) {
    c->fetch_add(1, std::memory_order_relaxed);
  }

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> timed_out_{0};
  std::atomic<uint64_t> degraded_{0};
  std::atomic<uint64_t> failed_{0};
  LatencyHistogram latency_;
  StageStats stages_;
};

}  // namespace matcn

#endif  // MATCN_SERVICE_SERVICE_STATS_H_
