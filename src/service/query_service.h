#ifndef MATCN_SERVICE_QUERY_SERVICE_H_
#define MATCN_SERVICE_QUERY_SERVICE_H_

#include <atomic>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "core/matcngen.h"
#include "liveindex/concurrent_term_index.h"
#include "liveindex/index_writer.h"
#include "obs/trace.h"
#include "service/service_stats.h"
#include "service/sharded_lru_cache.h"
#include "service/thread_pool.h"
#include "service/tuple_set_provider.h"

namespace matcn {

struct QueryServiceOptions {
  /// Worker threads executing generation pipelines; 0 = one per hardware
  /// thread.
  unsigned num_threads = 0;
  /// Admission control: queries submitted while this many are already
  /// waiting are rejected with ResourceExhausted instead of queued.
  size_t max_queue = 256;
  /// Result-cache budget; 0 disables caching.
  size_t cache_bytes = size_t{64} << 20;
  /// Cache shard count (rounded up to a power of two).
  size_t cache_shards = 16;
  /// Deadline applied when Submit is called without one; 0 = none.
  int64_t default_deadline_ms = 0;
  /// Drop stopword keywords during query normalization. Keep this in sync
  /// with how the term index was built: with the default index
  /// (skip_stopwords = true) a stopword keyword can never be matched, so
  /// dropping it changes no answers but lets "the godfather" share a
  /// cache entry (and a non-empty result) with "godfather".
  bool drop_stopwords = true;
  /// Pipeline configuration shared by all queries. `gen.num_threads` is
  /// per-query MatchCN parallelism (the `--cn-threads` knob): when > 1
  /// the service hands its own worker pool down as the helper executor,
  /// so a multi-match query fans its per-match CN searches out across
  /// idle workers while output stays identical to the sequential run.
  /// Leave at 1 to dedicate the pool to inter-query parallelism.
  MatCnGenOptions gen;
  /// Instrumentation seam: runs on the worker thread at the start of
  /// every pipeline execution (cache hits never reach it), before the
  /// queued-too-long deadline check. Tests use it to hold workers busy
  /// deterministically; the matcn_serve load generator uses it to model
  /// the backend I/O latency a DBMS-backed deployment would pay per miss.
  std::function<void()> pre_execute_hook;
  /// Head-based trace sampling: this fraction of submissions (decided
  /// up front, deterministically from `trace_sample_seed` and the
  /// submission sequence number) get a full stage-span trace even
  /// without asking. 0 disables sampling; explicit per-request trace
  /// flags always win.
  double trace_sample_rate = 0;
  uint64_t trace_sample_seed = 0;
  /// Always-on slow-query log: any query slower than this emits its full
  /// span breakdown at Warn level (every query carries a trace when this
  /// is enabled, so the outlier's breakdown exists when needed).
  /// 0 disables.
  int64_t slow_query_ms = 0;
};

/// One answered query. `query` is the *normalized* query the service
/// executed (stopwords dropped, keywords sorted); render termsets and
/// build EvalContexts against it, not the submitted text, because cached
/// results are keyed to the normalized keyword order.
struct QueryResponse {
  KeywordQuery query;
  std::shared_ptr<const GenerationResult> result;
  bool cache_hit = false;
  /// The answer is usable but incomplete: match enumeration was truncated
  /// (max_matches) or the deadline expired mid-generation. Degraded
  /// results are never cached, so a retry with a larger budget recomputes.
  bool degraded = false;
  std::string degraded_reason;
  /// Service-side latency, submission to response.
  double latency_ms = 0;
  /// Live backend only: the index version this answer reflects (a floor —
  /// the epoch-pinned snapshot may also see later concurrent inserts).
  /// Zero-initialized and meaningless for the static backends.
  uint64_t index_version = 0;
  /// Stage-span trace; null unless this request was traced (explicit
  /// request, head sampling, or the slow-query log being armed). Shared
  /// because straggling MatchCN helpers may still close their spans
  /// after the response is delivered — snapshot it, don't assume quiet.
  std::shared_ptr<obs::Trace> trace;
  /// Span id of the request root; lets a caller (e.g. the network
  /// server) parent its own post-processing spans under the request.
  uint32_t trace_root = 0;
};

/// Per-request overrides of the service-wide generation options. Fields
/// left at 0 fall back to the service defaults. Overrides participate in
/// the cache key, so a query answered under `t_max = 3` never serves a
/// request asking for `t_max = 8`.
struct QueryRequestOptions {
  int t_max = 0;
  /// Attach a stage-span trace to the response (QueryResponse::trace)
  /// regardless of the sampling rate. Does not participate in the cache
  /// key — traced and untraced requests share cache entries, and a
  /// cache hit still yields a (short) trace.
  bool trace = false;
};

/// The serving layer: a QueryService owns a worker pool plus a sharded
/// LRU result cache and turns the synchronous MatCNGen library into a
/// concurrent engine with bounded admission and per-query deadlines.
///
/// Lifecycle of one submission:
///   1. already-expired deadline  -> DeadlineExceeded, pipeline never runs
///   2. normalize + cache lookup  -> hit returns on the caller thread
///   3. admission control         -> ResourceExhausted when the queue is full
///   4. worker runs TSFind/QMGen/MatchCN under a CancelToken; on mid-run
///      expiry the partial result is returned marked `degraded`
///   5. complete results are cached by normalized query signature
class QueryService {
 public:
  /// Memory-backed service: tuple-sets from `index` (TSFind_Mem). All
  /// borrowed pointers must outlive the service.
  QueryService(const SchemaGraph* schema_graph, const TermIndex* index,
               QueryServiceOptions options = {});

  /// Disk-backed service: tuple-sets from relation scans under `dir`
  /// (TSFind). Stopword dropping defaults off for this backend — disk
  /// scans do find stopwords.
  QueryService(const SchemaGraph* schema_graph, std::string dir,
               const DatabaseSchema* disk_schema,
               QueryServiceOptions options = {});

  /// Live-backed service: tuple-sets from an online-maintained
  /// ConcurrentTermIndex. Each query runs against an epoch-pinned
  /// snapshot, so readers never block the writer (or vice versa).
  QueryService(const SchemaGraph* schema_graph,
               const liveindex::ConcurrentTermIndex* live_index,
               QueryServiceOptions options = {});

  /// Provider-backed (coordinator-mode) service: the tuple-set stage is
  /// delegated to `provider` (e.g. a shard::Coordinator scattering TSFIND
  /// across shard workers), and QMGen/MatchCN run globally over the
  /// merged batch. Admission, deadlines, caching, degraded propagation
  /// and tracing are shared with the local backends. The provider must
  /// outlive the service.
  QueryService(const SchemaGraph* schema_graph, TupleSetProvider* provider,
               QueryServiceOptions options = {});

  /// Drains admitted work, then joins the workers. Futures returned by
  /// Submit are all fulfilled before the destructor returns.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Completion callback for SubmitAsync. Runs exactly once, on whichever
  /// thread resolves the query: the caller thread for cache hits,
  /// admission rejects and pre-run deadline expiry, a worker thread
  /// otherwise. Callbacks must not block for long — they hold a worker.
  using ResponseCallback = std::function<void(Result<QueryResponse>)>;

  /// Callback-based submission — the primitive the network front end
  /// builds on (an event loop cannot block on futures). The returned
  /// CancelToken is shared with the executing pipeline: `Cancel()` makes
  /// a queued query resolve DeadlineExceeded without running and an
  /// in-flight one stop at its next cancellation point with a `degraded`
  /// partial response. Outcomes mirror Submit:
  ///   DeadlineExceeded  - deadline expired (or cancelled) before running
  ///   ResourceExhausted - admission queue full
  ///   InvalidArgument / IOError - query or backend errors
  std::shared_ptr<CancelToken> SubmitAsync(const KeywordQuery& query,
                                           Deadline deadline,
                                           QueryRequestOptions request_options,
                                           ResponseCallback done);

  /// Completion callback for SubmitTsFindAsync.
  using TsFindCallback = std::function<void(Result<TupleSetBatch>)>;

  /// Shard-serving entry point: runs only the tuple-set stage (normalize
  /// + TSFind + TSInter + grouping) against this service's local backend
  /// and returns the batch — QMGen/MatchCN never run. Shares the worker
  /// pool and admission queue with full queries, so a saturated shard
  /// rejects TSFINDs with ResourceExhausted exactly like queries. The
  /// pre_execute_hook runs for these too (tests stall shards through it).
  /// Supported on the live and memory backends; disk and provider
  /// backends answer Unimplemented.
  std::shared_ptr<CancelToken> SubmitTsFindAsync(const KeywordQuery& query,
                                                 Deadline deadline,
                                                 TsFindCallback done);

  /// Asynchronous submission with an explicit deadline. The future is
  /// fulfilled with either a QueryResponse or a Status (same outcomes as
  /// SubmitAsync).
  std::future<Result<QueryResponse>> Submit(const KeywordQuery& query,
                                            Deadline deadline);

  /// Submission under the service's default deadline.
  std::future<Result<QueryResponse>> Submit(const KeywordQuery& query);

  /// Submission with per-request overrides (t_max, trace).
  std::future<Result<QueryResponse>> Submit(
      const KeywordQuery& query, Deadline deadline,
      QueryRequestOptions request_options);

  /// Synchronous convenience: Submit + wait.
  Result<QueryResponse> Query(const KeywordQuery& query);
  Result<QueryResponse> Query(const KeywordQuery& query, Deadline deadline);
  /// Synchronous submission with per-request overrides under the default
  /// deadline — the `.trace` / `matcn_ctl trace` entry point.
  Result<QueryResponse> Query(const KeywordQuery& query,
                              QueryRequestOptions request_options);

  /// Selective cache invalidation: evicts only cached results whose
  /// normalized termset signature intersects `terms` — disjoint entries
  /// survive and keep hitting. Also fences in-flight queries: a result
  /// computed against a pre-invalidation snapshot is not cached after
  /// this returns. Returns the number of entries evicted.
  size_t InvalidateTerms(const std::vector<std::string>& terms);

  /// Wires an IndexWriter's invalidation hook to InvalidateTerms — call
  /// once at setup so inserts evict the affected cache entries
  /// automatically. The writer must not outlive the service.
  void ConnectWriter(liveindex::IndexWriter* writer);

  /// Counters, cache gauges, queue depth and latency percentiles.
  ServiceStatsSnapshot Stats() const;

  const QueryServiceOptions& options() const { return options_; }

  /// The query actually executed for `query`: stopwords dropped (when
  /// enabled and at least one keyword survives) and keywords sorted, so
  /// every keyword permutation of the same set shares one signature.
  KeywordQuery Normalize(const KeywordQuery& query) const;

  /// Cache key: normalized keywords joined with unit separators plus the
  /// generation options that affect output (t_max, max_matches,
  /// naive_qmgen). Worker-thread count is excluded — it never changes the
  /// result.
  static std::string CacheKey(const KeywordQuery& normalized_query,
                              const MatCnGenOptions& gen);

  /// Rough heap footprint of a result, used as its cache cost.
  static size_t ApproximateResultBytes(const GenerationResult& result);

  /// True if the cache key's keyword section (the part before the "|t="
  /// options suffix) contains any of `terms`. Exposed for testing the
  /// invalidation predicate directly.
  static bool CacheKeyTouchesTerms(const std::string& key,
                                   const std::vector<std::string>& terms);

 private:
  using ResultCache = ShardedLruCache<GenerationResult>;

  /// Per-execution trace context: null `trace` = untraced (zero span
  /// work anywhere downstream). `admission_span` is opened by
  /// SubmitAsync just before the queue handoff and closed at the top of
  /// Execute — the cross-thread pair the span slots' atomics exist for.
  struct TraceContext {
    std::shared_ptr<obs::Trace> trace;
    uint32_t root_span = 0;
    uint32_t admission_span = 0;
  };

  void Execute(KeywordQuery normalized, std::string cache_key,
               MatCnGenOptions gen, std::shared_ptr<CancelToken> cancel,
               Deadline::Clock::time_point submitted_at, TraceContext tc,
               ResponseCallback done);

  /// The tuple-set stage against this service's local backend (live or
  /// memory), shared by Execute and SubmitTsFindAsync. Fills
  /// `ts_millis`/`index_version`; trace spans parent under `parent_span`
  /// when `trace` is set.
  Result<TupleSetBatch> LocalTupleSets(const KeywordQuery& normalized,
                                       const std::shared_ptr<obs::Trace>& trace,
                                       uint32_t parent_span);

  /// Ends the root span, attaches the trace to the response, and emits
  /// the slow-query log line when the response crossed slow_query_ms.
  void FinishTrace(TraceContext* tc, QueryResponse* response);

  const SchemaGraph* schema_graph_;
  const TermIndex* index_ = nullptr;      // memory backend
  std::string disk_dir_;                  // disk backend
  const DatabaseSchema* disk_schema_ = nullptr;
  const liveindex::ConcurrentTermIndex* live_index_ = nullptr;  // live backend
  TupleSetProvider* provider_ = nullptr;  // coordinator backend
  QueryServiceOptions options_;
  ServiceStats stats_;
  /// Consumes one sequence number per submission whether or not it
  /// samples, so the sampled-set is a pure function of (seed, submission
  /// index) — the property the determinism test pins down.
  std::unique_ptr<obs::TraceSampler> sampler_;
  std::unique_ptr<ResultCache> cache_;
  /// Bumped by every InvalidateTerms call (before its EraseIf). Execute
  /// captures it before snapshotting the live index and re-validates it
  /// *inside* the cache shard lock (PutIf) when storing the result —
  /// otherwise an in-flight query could re-cache a stale result in the
  /// window between a bare sequence check and the insertion, right after
  /// its entry was invalidated.
  std::atomic<uint64_t> invalidation_seq_{0};
  // Declared last: workers touch the members above, so the pool must be
  // drained and joined before anything else is destroyed.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace matcn

#endif  // MATCN_SERVICE_QUERY_SERVICE_H_
