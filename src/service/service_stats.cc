#include "service/service_stats.h"

#include <cstdio>

namespace matcn {

ServiceStatsSnapshot ServiceStats::Snapshot() const {
  ServiceStatsSnapshot s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.timed_out = timed_out_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.mean_ms = latency_.MeanMicros() / 1000.0;
  s.p50_ms = static_cast<double>(latency_.QuantileMicros(0.50)) / 1000.0;
  s.p95_ms = static_cast<double>(latency_.QuantileMicros(0.95)) / 1000.0;
  s.p99_ms = static_cast<double>(latency_.QuantileMicros(0.99)) / 1000.0;
  s.max_ms = static_cast<double>(latency_.MaxMicros()) / 1000.0;
  s.stages = stages_.Snapshot();
  return s;
}

std::string ServiceStatsSnapshot::ToString() const {
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "submitted=%llu completed=%llu rejected=%llu timed_out=%llu "
      "degraded=%llu failed=%llu cache[hits=%llu misses=%llu entries=%zu "
      "bytes=%zu evictions=%llu invalidations=%llu] queue_depth=%zu "
      "threads=%u index[version=%llu delta_bytes=%zu compactions=%llu] "
      "latency[mean=%.2fms p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms]",
      static_cast<unsigned long long>(submitted),
      static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(rejected),
      static_cast<unsigned long long>(timed_out),
      static_cast<unsigned long long>(degraded),
      static_cast<unsigned long long>(failed),
      static_cast<unsigned long long>(cache_hits),
      static_cast<unsigned long long>(cache_misses), cache_entries,
      cache_bytes, static_cast<unsigned long long>(cache_evictions),
      static_cast<unsigned long long>(cache_invalidations), queue_depth,
      num_threads, static_cast<unsigned long long>(index_version),
      index_delta_bytes, static_cast<unsigned long long>(index_compactions),
      mean_ms, p50_ms, p95_ms, p99_ms, max_ms);
  return std::string(buf) + " " + stages.ToString();
}

}  // namespace matcn
