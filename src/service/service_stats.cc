#include "service/service_stats.h"

#include <cstdio>
#include <type_traits>

#include "simd/dispatch.h"

namespace matcn {

ServiceStatsSnapshot ServiceStats::Snapshot() const {
  ServiceStatsSnapshot s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.timed_out = timed_out_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.arena_bytes_peak = arena_bytes_peak_.load(std::memory_order_relaxed);
  s.simd_dispatch_level = static_cast<int>(simd::ActiveLevel());
  s.mean_ms = latency_.MeanMicros() / 1000.0;
  s.p50_ms = static_cast<double>(latency_.QuantileMicros(0.50)) / 1000.0;
  s.p95_ms = static_cast<double>(latency_.QuantileMicros(0.95)) / 1000.0;
  s.p99_ms = static_cast<double>(latency_.QuantileMicros(0.99)) / 1000.0;
  s.max_ms = static_cast<double>(latency_.MaxMicros()) / 1000.0;
  s.stages = stages_.Snapshot();
  s.latency_histogram = latency_.SnapshotBuckets();
  return s;
}

std::string ServiceStatsSnapshot::ToString() const {
  // Rendered from the field-visitor, so the string tracks
  // MATCN_SERVICE_STATS_FIELDS with no second list to maintain.
  std::string out;
  VisitFields([&out](const char* name, auto value, obs::MetricKind,
                     const char*) {
    if (!out.empty()) out += ' ';
    out += name;
    out += '=';
    char buf[40];
    if constexpr (std::is_floating_point_v<decltype(value)>) {
      std::snprintf(buf, sizeof(buf), "%.2f", value);
    } else {
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(value));
    }
    out += buf;
  });
  out += ' ';
  out += stages.ToString();
  return out;
}

}  // namespace matcn
