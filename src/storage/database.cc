#include "storage/database.h"

namespace matcn {

Result<RelationId> Database::CreateRelation(RelationSchema schema) {
  RelationSchema copy = schema;
  Result<RelationId> id = schema_.AddRelation(std::move(schema));
  if (!id.ok()) return id.status();
  relations_.push_back(std::make_unique<Relation>(std::move(copy)));
  return *id;
}

Status Database::AddForeignKey(ForeignKey fk) {
  return schema_.AddForeignKey(std::move(fk));
}

Status Database::Insert(const std::string& relation, Tuple tuple) {
  Result<RelationId> id = RelationIdByName(relation);
  if (!id.ok()) return id.status();
  return Insert(*id, std::move(tuple));
}

Status Database::Insert(RelationId id, Tuple tuple) {
  if (id >= relations_.size()) {
    return Status::OutOfRange("relation id out of range: " +
                              std::to_string(id));
  }
  return relations_[id]->Append(std::move(tuple));
}

Result<RelationId> Database::RelationIdByName(const std::string& name) const {
  std::optional<RelationId> id = schema_.RelationIdByName(name);
  if (!id.has_value()) {
    return Status::NotFound("relation not found: " + name);
  }
  return *id;
}

uint64_t Database::TotalTuples() const {
  uint64_t total = 0;
  for (const auto& rel : relations_) total += rel->num_tuples();
  return total;
}

uint64_t Database::ApproximateSizeBytes() const {
  uint64_t total = 0;
  for (const auto& rel : relations_) {
    for (const Tuple& row : rel->rows()) {
      for (const Value& v : row) {
        total += v.is_int() ? 8 : v.AsText().size();
      }
    }
  }
  return total;
}

}  // namespace matcn
