#ifndef MATCN_STORAGE_VALUE_H_
#define MATCN_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace matcn {

/// Attribute types supported by the storage engine. Keyword search only
/// needs text payloads plus integer/text join keys, so the type system is
/// deliberately small.
enum class ValueType : uint8_t {
  kInt = 0,
  kText = 1,
};

/// A single attribute value: either a 64-bit integer or a UTF-8 string.
/// Values compare and hash by (type, payload); NULL is represented by the
/// engine as an empty text / zero int per-schema convention and never needs
/// tri-valued logic here (CN joins are FK equi-joins over non-null keys).
class Value {
 public:
  Value() : data_(int64_t{0}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}

  ValueType type() const {
    return std::holds_alternative<int64_t>(data_) ? ValueType::kInt
                                                  : ValueType::kText;
  }

  bool is_int() const { return type() == ValueType::kInt; }
  bool is_text() const { return type() == ValueType::kText; }

  /// Requires is_int().
  int64_t AsInt() const { return std::get<int64_t>(data_); }
  /// Requires is_text().
  const std::string& AsText() const { return std::get<std::string>(data_); }

  /// Debug/display rendering; ints render in decimal.
  std::string ToString() const {
    return is_int() ? std::to_string(AsInt()) : AsText();
  }

  bool operator==(const Value& other) const { return data_ == other.data_; }
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const { return data_ < other.data_; }

  size_t Hash() const {
    if (is_int()) return std::hash<int64_t>()(AsInt()) * 0x9e3779b97f4a7c15u;
    return std::hash<std::string>()(AsText());
  }

 private:
  std::variant<int64_t, std::string> data_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace matcn

#endif  // MATCN_STORAGE_VALUE_H_
