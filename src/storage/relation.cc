#include "storage/relation.h"

namespace matcn {

Status Relation::Append(Tuple tuple) {
  if (tuple.size() != schema_.num_attributes()) {
    return Status::InvalidArgument(
        "arity mismatch inserting into " + schema_.name() + ": got " +
        std::to_string(tuple.size()) + ", want " +
        std::to_string(schema_.num_attributes()));
  }
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (tuple[i].type() != schema_.attribute(i).type) {
      return Status::InvalidArgument("type mismatch for " + schema_.name() +
                                     "." + schema_.attribute(i).name);
    }
  }
  rows_.push_back(std::move(tuple));
  return Status::OK();
}

}  // namespace matcn
