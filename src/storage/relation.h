#ifndef MATCN_STORAGE_RELATION_H_
#define MATCN_STORAGE_RELATION_H_

#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace matcn {

/// A tuple is a row of values positionally aligned with the relation's
/// attribute list.
using Tuple = std::vector<Value>;

/// Row-store for a single relation. Rows are append-only (the paper's
/// workload is read-only after load; updates are discussed as future work).
/// The relation owns an immutable copy of its schema, so it stays valid
/// regardless of catalog growth.
class Relation {
 public:
  explicit Relation(RelationSchema schema) : schema_(std::move(schema)) {}

  const RelationSchema& schema() const { return schema_; }

  /// Appends a row. Fails if arity or any value type mismatches the schema.
  Status Append(Tuple tuple);

  size_t num_tuples() const { return rows_.size(); }
  const Tuple& tuple(uint64_t row) const { return rows_[row]; }
  const std::vector<Tuple>& rows() const { return rows_; }

 private:
  const RelationSchema schema_;
  std::vector<Tuple> rows_;
};

}  // namespace matcn

#endif  // MATCN_STORAGE_RELATION_H_
