#ifndef MATCN_STORAGE_TUPLE_ID_H_
#define MATCN_STORAGE_TUPLE_ID_H_

#include <cstdint>
#include <functional>
#include <string>

namespace matcn {

/// Identifies a relation within a Database by creation order.
using RelationId = uint32_t;

/// Globally unique tuple identifier: relation id in the top 24 bits, row
/// index in the low 40 bits. Posting lists, TSInter and golden standards
/// all operate on sorted TupleId vectors, so the packed form keeps them
/// cache-friendly and trivially comparable.
class TupleId {
 public:
  TupleId() : packed_(0) {}
  TupleId(RelationId relation, uint64_t row)
      : packed_((static_cast<uint64_t>(relation) << kRowBits) | row) {}

  /// Reconstructs an id from its packed() form (e.g. after varbyte decode).
  static TupleId FromPacked(uint64_t packed) {
    TupleId id;
    id.packed_ = packed;
    return id;
  }

  RelationId relation() const {
    return static_cast<RelationId>(packed_ >> kRowBits);
  }
  uint64_t row() const { return packed_ & ((uint64_t{1} << kRowBits) - 1); }
  uint64_t packed() const { return packed_; }

  std::string ToString() const {
    return "t(" + std::to_string(relation()) + "," + std::to_string(row()) +
           ")";
  }

  bool operator==(const TupleId& o) const { return packed_ == o.packed_; }
  bool operator!=(const TupleId& o) const { return packed_ != o.packed_; }
  bool operator<(const TupleId& o) const { return packed_ < o.packed_; }

 private:
  static constexpr int kRowBits = 40;
  uint64_t packed_;
};

struct TupleIdHash {
  size_t operator()(const TupleId& id) const {
    return std::hash<uint64_t>()(id.packed());
  }
};

}  // namespace matcn

#endif  // MATCN_STORAGE_TUPLE_ID_H_
