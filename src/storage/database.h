#ifndef MATCN_STORAGE_DATABASE_H_
#define MATCN_STORAGE_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/relation.h"
#include "storage/schema.h"
#include "storage/tuple_id.h"

namespace matcn {

/// An in-memory relational database instance: a schema plus one Relation
/// per schema entry. This plays the role PostgreSQL plays in the paper —
/// it stores the data, answers keyword containment scans, and evaluates
/// the FK equi-joins that CN evaluation needs.
class Database {
 public:
  Database() = default;

  // Move-only: relations hold pointers into the schema.
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates an empty relation with the given schema.
  Result<RelationId> CreateRelation(RelationSchema schema);

  /// Declares a referential integrity constraint.
  Status AddForeignKey(ForeignKey fk);

  /// Appends a tuple to the named relation.
  Status Insert(const std::string& relation, Tuple tuple);
  Status Insert(RelationId id, Tuple tuple);

  const DatabaseSchema& schema() const { return schema_; }
  size_t num_relations() const { return relations_.size(); }
  const Relation& relation(RelationId id) const { return *relations_[id]; }
  Result<RelationId> RelationIdByName(const std::string& name) const;

  /// Fetches a tuple by global id. Requires the id to be in range.
  const Tuple& tuple(TupleId id) const {
    return relations_[id.relation()]->tuple(id.row());
  }

  /// Total number of tuples across all relations (Table 2 statistic).
  uint64_t TotalTuples() const;

  /// Approximate payload size in bytes: sum of text lengths plus 8 bytes
  /// per int value (Table 2 "Size" statistic).
  uint64_t ApproximateSizeBytes() const;

 private:
  DatabaseSchema schema_;
  // unique_ptr keeps Relation's schema pointer stable across moves.
  std::vector<std::unique_ptr<Relation>> relations_;
};

}  // namespace matcn

#endif  // MATCN_STORAGE_DATABASE_H_
