#ifndef MATCN_STORAGE_SCHEMA_H_
#define MATCN_STORAGE_SCHEMA_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/tuple_id.h"
#include "storage/value.h"

namespace matcn {

/// One column of a relation.
struct Attribute {
  std::string name;
  ValueType type = ValueType::kText;
  /// Primary-key attributes are excluded from keyword indexing (they are
  /// join keys, not searchable text).
  bool is_primary_key = false;
  /// Text attributes marked searchable participate in the Term Index and in
  /// disk-based keyword scans. Int attributes are never searchable.
  bool searchable = true;
};

/// Schema of a single relation.
class RelationSchema {
 public:
  RelationSchema() = default;
  RelationSchema(std::string name, std::vector<Attribute> attributes)
      : name_(std::move(name)), attributes_(std::move(attributes)) {}

  const std::string& name() const { return name_; }
  const std::vector<Attribute>& attributes() const { return attributes_; }
  size_t num_attributes() const { return attributes_.size(); }
  const Attribute& attribute(size_t i) const { return attributes_[i]; }

  /// Returns the index of the attribute named `name`, or nullopt.
  std::optional<size_t> AttributeIndex(const std::string& name) const;

 private:
  std::string name_;
  std::vector<Attribute> attributes_;
};

/// A referential integrity constraint: `from_relation.from_attribute`
/// references `to_relation.to_attribute` (the referenced side is expected
/// to be a key). In schema-graph terms this is a directed edge
/// from -> to where *from holds the foreign key*.
struct ForeignKey {
  std::string from_relation;
  std::string from_attribute;
  std::string to_relation;
  std::string to_attribute;

  bool operator==(const ForeignKey& o) const {
    return from_relation == o.from_relation &&
           from_attribute == o.from_attribute &&
           to_relation == o.to_relation && to_attribute == o.to_attribute;
  }
};

/// Whole-database schema: an ordered list of relation schemas plus the
/// referential integrity constraints among them. Relation ids are indexes
/// into the creation order.
class DatabaseSchema {
 public:
  /// Adds a relation; fails with AlreadyExists on duplicate names.
  Result<RelationId> AddRelation(RelationSchema schema);

  /// Adds a RIC; validates that both endpoints and attributes exist and
  /// that the attribute types match.
  Status AddForeignKey(ForeignKey fk);

  size_t num_relations() const { return relations_.size(); }
  const RelationSchema& relation(RelationId id) const {
    return relations_[id];
  }
  std::optional<RelationId> RelationIdByName(const std::string& name) const;

  const std::vector<ForeignKey>& foreign_keys() const {
    return foreign_keys_;
  }

 private:
  std::vector<RelationSchema> relations_;
  std::vector<ForeignKey> foreign_keys_;
};

}  // namespace matcn

#endif  // MATCN_STORAGE_SCHEMA_H_
