#include "storage/disk.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace matcn {
namespace {

constexpr char kCatalogFile[] = "catalog.meta";
constexpr uint32_t kFormatVersion = 1;

void WriteU32(std::ostream& os, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  os.write(buf, 4);
}

void WriteU64(std::ostream& os, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  os.write(buf, 8);
}

bool ReadU32(std::istream& is, uint32_t* v) {
  unsigned char buf[4];
  if (!is.read(reinterpret_cast<char*>(buf), 4)) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) *v |= static_cast<uint32_t>(buf[i]) << (8 * i);
  return true;
}

bool ReadU64(std::istream& is, uint64_t* v) {
  unsigned char buf[8];
  if (!is.read(reinterpret_cast<char*>(buf), 8)) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) *v |= static_cast<uint64_t>(buf[i]) << (8 * i);
  return true;
}

Status WriteRelationFile(const Relation& rel, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return Status::IOError("cannot open for write: " + path);
  WriteU32(os, kFormatVersion);
  WriteU64(os, rel.num_tuples());
  for (const Tuple& row : rel.rows()) {
    for (const Value& v : row) {
      if (v.is_int()) {
        WriteU64(os, static_cast<uint64_t>(v.AsInt()));
      } else {
        WriteU32(os, static_cast<uint32_t>(v.AsText().size()));
        os.write(v.AsText().data(),
                 static_cast<std::streamsize>(v.AsText().size()));
      }
    }
  }
  if (!os) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace

std::string DiskStorage::RelationFilePath(const std::string& dir,
                                          const std::string& relation_name) {
  return dir + "/" + relation_name + ".rel";
}

Status DiskStorage::Save(const Database& db, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::IOError("cannot create directory: " + dir);

  // Catalog: a line-oriented text format that round-trips the schema.
  std::ofstream cat(dir + "/" + kCatalogFile, std::ios::trunc);
  if (!cat) return Status::IOError("cannot write catalog in " + dir);
  cat << "matcn-catalog v1\n";
  cat << "relations " << db.num_relations() << "\n";
  for (RelationId r = 0; r < db.num_relations(); ++r) {
    const RelationSchema& rs = db.relation(r).schema();
    cat << "relation " << rs.name() << " " << rs.num_attributes() << "\n";
    for (const Attribute& a : rs.attributes()) {
      cat << "  attr " << a.name << " "
          << (a.type == ValueType::kInt ? "int" : "text") << " "
          << (a.is_primary_key ? 1 : 0) << " " << (a.searchable ? 1 : 0)
          << "\n";
    }
  }
  cat << "fks " << db.schema().foreign_keys().size() << "\n";
  for (const ForeignKey& fk : db.schema().foreign_keys()) {
    cat << "fk " << fk.from_relation << " " << fk.from_attribute << " "
        << fk.to_relation << " " << fk.to_attribute << "\n";
  }
  if (!cat) return Status::IOError("catalog write failed in " + dir);
  cat.close();

  for (RelationId r = 0; r < db.num_relations(); ++r) {
    const Relation& rel = db.relation(r);
    MATCN_RETURN_IF_ERROR(
        WriteRelationFile(rel, RelationFilePath(dir, rel.schema().name())));
  }
  return Status::OK();
}

Result<Database> DiskStorage::Load(const std::string& dir) {
  std::ifstream cat(dir + "/" + kCatalogFile);
  if (!cat) return Status::IOError("cannot open catalog in " + dir);
  std::string line;
  if (!std::getline(cat, line) || line != "matcn-catalog v1") {
    return Status::IOError("bad catalog header in " + dir);
  }

  Database db;
  size_t num_relations = 0;
  {
    std::string kw;
    cat >> kw >> num_relations;
    if (kw != "relations") return Status::IOError("bad catalog: " + dir);
  }
  for (size_t r = 0; r < num_relations; ++r) {
    std::string kw, name;
    size_t num_attrs = 0;
    cat >> kw >> name >> num_attrs;
    if (kw != "relation") return Status::IOError("bad catalog: " + dir);
    std::vector<Attribute> attrs;
    for (size_t a = 0; a < num_attrs; ++a) {
      std::string akw, aname, atype;
      int pk = 0, searchable = 0;
      cat >> akw >> aname >> atype >> pk >> searchable;
      if (akw != "attr") return Status::IOError("bad catalog: " + dir);
      attrs.push_back(Attribute{
          aname, atype == "int" ? ValueType::kInt : ValueType::kText,
          pk != 0, searchable != 0});
    }
    Result<RelationId> id =
        db.CreateRelation(RelationSchema(name, std::move(attrs)));
    if (!id.ok()) return id.status();
  }
  size_t num_fks = 0;
  {
    std::string kw;
    cat >> kw >> num_fks;
    if (kw != "fks") return Status::IOError("bad catalog: " + dir);
  }
  for (size_t f = 0; f < num_fks; ++f) {
    std::string kw;
    ForeignKey fk;
    cat >> kw >> fk.from_relation >> fk.from_attribute >> fk.to_relation >>
        fk.to_attribute;
    if (kw != "fk") return Status::IOError("bad catalog: " + dir);
    MATCN_RETURN_IF_ERROR(db.AddForeignKey(std::move(fk)));
  }

  for (RelationId r = 0; r < db.num_relations(); ++r) {
    const RelationSchema& rs = db.relation(r).schema();
    const std::string path = RelationFilePath(dir, rs.name());
    std::ifstream is(path, std::ios::binary);
    if (!is) return Status::IOError("cannot open relation file: " + path);
    uint32_t version = 0;
    uint64_t rows = 0;
    if (!ReadU32(is, &version) || version != kFormatVersion ||
        !ReadU64(is, &rows)) {
      return Status::IOError("bad relation file header: " + path);
    }
    for (uint64_t i = 0; i < rows; ++i) {
      Tuple row;
      row.reserve(rs.num_attributes());
      for (const Attribute& a : rs.attributes()) {
        if (a.type == ValueType::kInt) {
          uint64_t v = 0;
          if (!ReadU64(is, &v)) {
            return Status::IOError("truncated relation file: " + path);
          }
          row.emplace_back(static_cast<int64_t>(v));
        } else {
          uint32_t len = 0;
          if (!ReadU32(is, &len)) {
            return Status::IOError("truncated relation file: " + path);
          }
          std::string text(len, '\0');
          if (len > 0 &&
              !is.read(text.data(), static_cast<std::streamsize>(len))) {
            return Status::IOError("truncated relation file: " + path);
          }
          row.emplace_back(std::move(text));
        }
      }
      MATCN_RETURN_IF_ERROR(db.Insert(r, std::move(row)));
    }
  }
  return db;
}

Result<std::vector<uint64_t>> DiskStorage::ScanForKeyword(
    const std::string& dir, const RelationSchema& schema,
    const std::string& keyword) {
  const std::string path = RelationFilePath(dir, schema.name());
  std::ifstream is(path, std::ios::binary);
  if (!is) return Status::IOError("cannot open relation file: " + path);
  uint32_t version = 0;
  uint64_t rows = 0;
  if (!ReadU32(is, &version) || version != kFormatVersion ||
      !ReadU64(is, &rows)) {
    return Status::IOError("bad relation file header: " + path);
  }
  std::vector<uint64_t> hits;
  std::string text;
  for (uint64_t row = 0; row < rows; ++row) {
    bool hit = false;
    for (const Attribute& a : schema.attributes()) {
      if (a.type == ValueType::kInt) {
        uint64_t v = 0;
        if (!ReadU64(is, &v)) {
          return Status::IOError("truncated relation file: " + path);
        }
        continue;
      }
      uint32_t len = 0;
      if (!ReadU32(is, &len)) {
        return Status::IOError("truncated relation file: " + path);
      }
      text.resize(len);
      if (len > 0 &&
          !is.read(text.data(), static_cast<std::streamsize>(len))) {
        return Status::IOError("truncated relation file: " + path);
      }
      if (!hit && a.searchable &&
          ContainsWordCaseInsensitive(text, keyword)) {
        hit = true;
      }
    }
    if (hit) hits.push_back(row);
  }
  return hits;
}

}  // namespace matcn
