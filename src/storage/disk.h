#ifndef MATCN_STORAGE_DISK_H_
#define MATCN_STORAGE_DISK_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/database.h"

namespace matcn {

/// On-disk persistence for Database instances. The layout is one directory
/// containing a text catalog file (`catalog.meta`) plus one binary data
/// file per relation (`<name>.rel`). The format is a simple row-major
/// stream: ints are 8-byte little-endian, texts are a 4-byte length plus
/// bytes. Sequential scans of these files are what the paper's *disk-based*
/// MatCNGen variant performs per query.
class DiskStorage {
 public:
  /// Writes `db` under `dir`, creating the directory if needed and
  /// replacing any previous contents of the catalog/relation files.
  static Status Save(const Database& db, const std::string& dir);

  /// Loads a database previously written by Save().
  static Result<Database> Load(const std::string& dir);

  /// Sequentially scans the binary file of `relation_name` under `dir` and
  /// returns the row indexes whose searchable text attributes contain
  /// `keyword` as a whole token (case-insensitive). This performs real file
  /// I/O and never materializes the relation in memory — it is the scan
  /// primitive behind disk-based TSFind.
  static Result<std::vector<uint64_t>> ScanForKeyword(
      const std::string& dir, const RelationSchema& schema,
      const std::string& keyword);

  static std::string RelationFilePath(const std::string& dir,
                                      const std::string& relation_name);
};

}  // namespace matcn

#endif  // MATCN_STORAGE_DISK_H_
