#include "storage/schema.h"

namespace matcn {

std::optional<size_t> RelationSchema::AttributeIndex(
    const std::string& name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return std::nullopt;
}

Result<RelationId> DatabaseSchema::AddRelation(RelationSchema schema) {
  if (schema.name().empty()) {
    return Status::InvalidArgument("relation name must be non-empty");
  }
  if (RelationIdByName(schema.name()).has_value()) {
    return Status::AlreadyExists("relation already exists: " + schema.name());
  }
  relations_.push_back(std::move(schema));
  return static_cast<RelationId>(relations_.size() - 1);
}

Status DatabaseSchema::AddForeignKey(ForeignKey fk) {
  auto from = RelationIdByName(fk.from_relation);
  if (!from.has_value()) {
    return Status::NotFound("FK source relation not found: " +
                            fk.from_relation);
  }
  auto to = RelationIdByName(fk.to_relation);
  if (!to.has_value()) {
    return Status::NotFound("FK target relation not found: " +
                            fk.to_relation);
  }
  auto from_attr = relations_[*from].AttributeIndex(fk.from_attribute);
  if (!from_attr.has_value()) {
    return Status::NotFound("FK source attribute not found: " +
                            fk.from_relation + "." + fk.from_attribute);
  }
  auto to_attr = relations_[*to].AttributeIndex(fk.to_attribute);
  if (!to_attr.has_value()) {
    return Status::NotFound("FK target attribute not found: " +
                            fk.to_relation + "." + fk.to_attribute);
  }
  if (relations_[*from].attribute(*from_attr).type !=
      relations_[*to].attribute(*to_attr).type) {
    return Status::InvalidArgument("FK attribute type mismatch: " +
                                   fk.from_relation + "." +
                                   fk.from_attribute + " vs " +
                                   fk.to_relation + "." + fk.to_attribute);
  }
  foreign_keys_.push_back(std::move(fk));
  return Status::OK();
}

std::optional<RelationId> DatabaseSchema::RelationIdByName(
    const std::string& name) const {
  for (size_t i = 0; i < relations_.size(); ++i) {
    if (relations_[i].name() == name) return static_cast<RelationId>(i);
  }
  return std::nullopt;
}

}  // namespace matcn
