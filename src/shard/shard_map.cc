#include "shard/shard_map.h"

#include <algorithm>
#include <sstream>

namespace matcn::shard {
namespace {

/// FNV-1a over `s`, seeded. Placement-only hash: stability across builds
/// matters (serialized maps pin assignments anyway), cryptography does not.
uint64_t Fnv64(std::string_view s, uint64_t seed) {
  uint64_t h = 14695981039346656037ull ^ seed;
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

void ShardMap::BuildRing() {
  ring_.clear();
  ring_.reserve(static_cast<size_t>(num_shards_) * vnodes_per_shard_);
  for (uint32_t s = 0; s < num_shards_; ++s) {
    for (uint32_t v = 0; v < vnodes_per_shard_; ++v) {
      std::string point =
          "shard-" + std::to_string(s) + "-vnode-" + std::to_string(v);
      ring_.emplace_back(Fnv64(point, seed_), s);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

uint32_t ShardMap::RingOwner(const std::string& name) const {
  if (ring_.empty()) return 0;
  const uint64_t h = Fnv64(name, seed_);
  // Successor vnode clockwise from the relation's point, wrapping.
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), std::make_pair(h, uint32_t{0}),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

ShardMap ShardMap::Build(const DatabaseSchema& schema,
                         ShardMapOptions options) {
  ShardMap map;
  map.num_shards_ = options.num_shards == 0 ? 1 : options.num_shards;
  map.vnodes_per_shard_ =
      options.vnodes_per_shard == 0 ? 1 : options.vnodes_per_shard;
  map.seed_ = options.seed;
  map.BuildRing();
  map.names_.reserve(schema.num_relations());
  map.owners_.reserve(schema.num_relations());
  for (RelationId r = 0; r < schema.num_relations(); ++r) {
    const std::string& name = schema.relation(r).name();
    const uint32_t owner = map.RingOwner(name);
    map.names_.push_back(name);
    map.owners_.push_back(owner);
    map.owner_by_name_[name] = owner;
  }
  return map;
}

std::string ShardMap::Serialize() const {
  std::ostringstream out;
  out << "matcn-shard-map v1\n";
  out << "shards " << num_shards_ << "\n";
  out << "vnodes " << vnodes_per_shard_ << "\n";
  out << "seed " << seed_ << "\n";
  for (size_t r = 0; r < names_.size(); ++r) {
    out << "relation " << names_[r] << " " << owners_[r] << "\n";
  }
  return out.str();
}

Result<ShardMap> ShardMap::Parse(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "matcn-shard-map v1") {
    return Status::InvalidArgument(
        "shard map: missing 'matcn-shard-map v1' header");
  }
  ShardMap map;
  bool have_shards = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string kind;
    fields >> kind;
    if (kind == "shards") {
      if (!(fields >> map.num_shards_) || map.num_shards_ == 0) {
        return Status::InvalidArgument("shard map: bad shards line");
      }
      have_shards = true;
    } else if (kind == "vnodes") {
      if (!(fields >> map.vnodes_per_shard_) || map.vnodes_per_shard_ == 0) {
        return Status::InvalidArgument("shard map: bad vnodes line");
      }
    } else if (kind == "seed") {
      if (!(fields >> map.seed_)) {
        return Status::InvalidArgument("shard map: bad seed line");
      }
    } else if (kind == "relation") {
      std::string name;
      uint32_t owner = 0;
      if (!(fields >> name >> owner)) {
        return Status::InvalidArgument("shard map: bad relation line: " +
                                       line);
      }
      if (!have_shards || owner >= map.num_shards_) {
        return Status::InvalidArgument("shard map: owner " +
                                       std::to_string(owner) +
                                       " out of range for " + name);
      }
      if (map.owner_by_name_.count(name) != 0) {
        return Status::InvalidArgument("shard map: duplicate relation " +
                                       name);
      }
      map.names_.push_back(name);
      map.owners_.push_back(owner);
      map.owner_by_name_[name] = owner;
    } else {
      return Status::InvalidArgument("shard map: unknown line: " + line);
    }
  }
  if (!have_shards) {
    return Status::InvalidArgument("shard map: missing shards line");
  }
  map.BuildRing();
  return map;
}

Status ShardMap::Validate(const DatabaseSchema& schema) const {
  if (schema.num_relations() != names_.size()) {
    return Status::InvalidArgument(
        "shard map covers " + std::to_string(names_.size()) +
        " relations, schema has " + std::to_string(schema.num_relations()));
  }
  for (RelationId r = 0; r < schema.num_relations(); ++r) {
    if (schema.relation(r).name() != names_[r]) {
      return Status::InvalidArgument(
          "shard map relation " + std::to_string(r) + " is '" + names_[r] +
          "', schema has '" + schema.relation(r).name() + "'");
    }
  }
  return Status::OK();
}

uint32_t ShardMap::OwnerByName(const std::string& name) const {
  auto it = owner_by_name_.find(name);
  if (it != owner_by_name_.end()) return it->second;
  return RingOwner(name);
}

std::vector<RelationId> ShardMap::RelationsOf(uint32_t shard) const {
  std::vector<RelationId> out;
  for (RelationId r = 0; r < owners_.size(); ++r) {
    if (owners_[r] == shard) out.push_back(r);
  }
  return out;
}

std::vector<uint8_t> ShardMap::RelationMask(uint32_t shard) const {
  std::vector<uint8_t> mask(owners_.size(), 0);
  for (RelationId r = 0; r < owners_.size(); ++r) {
    if (owners_[r] == shard) mask[r] = 1;
  }
  return mask;
}

}  // namespace matcn::shard
