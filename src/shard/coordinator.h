#ifndef MATCN_SHARD_COORDINATOR_H_
#define MATCN_SHARD_COORDINATOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "core/keyword_query.h"
#include "liveindex/insert_sink.h"
#include "service/tuple_set_provider.h"
#include "shard/channel.h"
#include "shard/merge.h"
#include "shard/shard_map.h"
#include "storage/schema.h"

namespace matcn::shard {

struct ShardEndpoint {
  uint32_t shard_id = 0;
  std::string host;
  uint16_t port = 0;
};

struct CoordinatorOptions {
  /// Cap on one scatter's wait, applied when the query deadline is
  /// infinite or farther out than this.
  int64_t scatter_timeout_ms = 10'000;
  ShardChannelOptions channel;
};

/// The scatter/gather tuple-set stage: QueryService's provider backend
/// for a sharded deployment. FindTupleSets fans TSFIND out to every
/// healthy shard over the multiplexed channels, waits under the query
/// deadline, k-way merges the per-shard streams (MergeShardTupleSets),
/// and reports the result as one TupleSetBatch — QMGen/MatchCN then run
/// globally in the coordinator's QueryService, and results stream through
/// the existing admission/deadline/degraded machinery untouched.
///
/// Degraded-shard contract: a shard that is down, unhealthy, times out,
/// or answers with an error contributes nothing; the batch is marked
/// degraded with a reason naming the shards, so responses built from it
/// are degraded-not-wrong (correct CNs for the data that was reachable)
/// and never cached. Only when *no* shard responds does the stage fail
/// outright with IOError.
class Coordinator : public TupleSetProvider {
 public:
  Coordinator(const ShardMap* map, std::vector<ShardEndpoint> endpoints,
              CoordinatorOptions options = {});
  ~Coordinator() override;

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Connects every shard channel. Per-shard failures are not fatal —
  /// the keepers keep retrying — but are reported (first failure) so
  /// operators see a cold start with dead shards.
  Status Connect();

  /// Fails in-flight scatters and closes the channels.
  void Shutdown();

  Result<TupleSetBatch> FindTupleSets(
      const KeywordQuery& normalized, Deadline deadline,
      const std::shared_ptr<obs::Trace>& trace, uint32_t parent_span) override;

  void FillStats(ServiceStatsSnapshot* snapshot) const override;

  size_t num_shards() const { return channels_.size(); }
  size_t healthy_shards() const;

  /// Channel for `shard_id`, or nullptr. The insert router forwards
  /// through these.
  ShardChannel* channel(uint32_t shard_id) const;

  const ShardMap* map() const { return map_; }

  /// Bumped by ShardInsertRouter; surfaces as shard_inserts_routed.
  void RecordInsertRouted() {
    inserts_routed_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  const ShardMap* map_;
  CoordinatorOptions options_;
  std::vector<std::unique_ptr<ShardChannel>> channels_;

  std::atomic<uint64_t> scatters_{0};
  std::atomic<uint64_t> scatter_errors_{0};
  std::atomic<uint64_t> degraded_batches_{0};
  std::atomic<uint64_t> merge_us_total_{0};
  std::atomic<uint64_t> merges_{0};
  std::atomic<uint64_t> inserts_routed_{0};
};

/// The coordinator's INSERT sink: routes each insert to the shard owning
/// the target relation (ShardMap), forwards it over that shard's channel,
/// and — because the owner is the only shard indexing the relation —
/// gets back the same TupleId/row the unsharded server would assign.
/// After a successful forward the invalidation hook runs with the terms
/// the tuple's searchable text contributes, so the coordinator's result
/// cache evicts exactly the touched entries (wired to
/// QueryService::InvalidateTerms, same contract as IndexWriter's hook).
class ShardInsertRouter : public liveindex::InsertSink {
 public:
  /// `schema` is the global schema (relation names + searchable flags).
  ShardInsertRouter(const ShardMap* map, const DatabaseSchema* schema,
                    Coordinator* coordinator, int64_t timeout_ms = 10'000);

  Result<liveindex::InsertOutcome> Insert(RelationId relation,
                                          Tuple tuple) override;

  /// Same shape as IndexWriter::set_invalidation_hook. Called after each
  /// routed insert with the distinct terms it touched.
  void set_invalidation_hook(
      std::function<void(const std::vector<std::string>&)> hook) {
    hook_ = std::move(hook);
  }

 private:
  const ShardMap* map_;
  const DatabaseSchema* schema_;
  Coordinator* coordinator_;
  int64_t timeout_ms_;
  std::function<void(const std::vector<std::string>&)> hook_;
};

}  // namespace matcn::shard

#endif  // MATCN_SHARD_COORDINATOR_H_
