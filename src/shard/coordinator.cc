#include "shard/coordinator.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <limits>
#include <mutex>

#include "indexing/tokenizer.h"
#include "storage/tuple_id.h"

namespace matcn::shard {
namespace {

/// BeginSpan keeps the pointer, so span names must have static storage.
const char* ShardSpanName(size_t shard) {
  static const char* kNames[] = {
      "shard_0",  "shard_1",  "shard_2",  "shard_3", "shard_4",  "shard_5",
      "shard_6",  "shard_7",  "shard_8",  "shard_9", "shard_10", "shard_11",
      "shard_12", "shard_13", "shard_14", "shard_15"};
  return shard < 16 ? kNames[shard] : "shard_n";
}

std::vector<TupleSet> ToTupleSets(std::vector<net::WireTupleSet> wire) {
  std::vector<TupleSet> out;
  out.reserve(wire.size());
  for (net::WireTupleSet& w : wire) {
    TupleSet ts;
    ts.relation = w.relation;
    ts.termset = w.termset;
    ts.tuples.reserve(w.tuples.size());
    for (uint64_t packed : w.tuples) {
      ts.tuples.push_back(TupleId::FromPacked(packed));
    }
    out.push_back(std::move(ts));
  }
  return out;
}

}  // namespace

Coordinator::Coordinator(const ShardMap* map,
                         std::vector<ShardEndpoint> endpoints,
                         CoordinatorOptions options)
    : map_(map), options_(options) {
  channels_.reserve(endpoints.size());
  for (const ShardEndpoint& ep : endpoints) {
    channels_.push_back(std::make_unique<ShardChannel>(
        ep.shard_id, ep.host, ep.port, options_.channel));
  }
}

Coordinator::~Coordinator() { Shutdown(); }

Status Coordinator::Connect() {
  Status first;
  for (auto& channel : channels_) {
    const Status status = channel->Connect();
    if (!status.ok() && first.ok()) first = status;
  }
  return first;
}

void Coordinator::Shutdown() {
  for (auto& channel : channels_) channel->Shutdown();
}

size_t Coordinator::healthy_shards() const {
  size_t n = 0;
  for (const auto& channel : channels_) {
    if (channel->healthy()) ++n;
  }
  return n;
}

ShardChannel* Coordinator::channel(uint32_t shard_id) const {
  for (const auto& channel : channels_) {
    if (channel->shard_id() == shard_id) return channel.get();
  }
  return nullptr;
}

Result<TupleSetBatch> Coordinator::FindTupleSets(
    const KeywordQuery& normalized, Deadline deadline,
    const std::shared_ptr<obs::Trace>& trace, uint32_t parent_span) {
  const auto started = Deadline::Clock::now();
  scatters_.fetch_add(1, std::memory_order_relaxed);

  int64_t wait_ms = options_.scatter_timeout_ms;
  if (!deadline.IsInfinite()) {
    const int64_t remaining = deadline.RemainingMillis();
    if (remaining <= 0) {
      return Status::DeadlineExceeded("deadline expired before scatter");
    }
    wait_ms = std::min(wait_ms, remaining);
  }

  net::TsFindRequest request;
  request.deadline_ms = static_cast<uint32_t>(wait_ms);
  request.keywords = normalized.keywords();

  struct Slot {
    bool done = false;
    uint32_t span = 0;
    Result<net::TsFindResult> result = Status::Internal("pending");
  };
  /// Shared with the channel callbacks, which may outlive this frame
  /// when a shard answers after the wait gave up on it.
  struct Scatter {
    std::mutex mu;
    std::condition_variable cv;
    size_t outstanding = 0;
    std::vector<Slot> slots;
    std::shared_ptr<obs::Trace> trace;
  };
  auto scatter = std::make_shared<Scatter>();
  scatter->slots.resize(channels_.size());
  scatter->trace = trace;

  const uint32_t scatter_span =
      trace ? trace->BeginSpan("scatter", parent_span) : 0;

  for (size_t i = 0; i < channels_.size(); ++i) {
    {
      std::lock_guard<std::mutex> lock(scatter->mu);
      ++scatter->outstanding;
      if (trace) {
        scatter->slots[i].span =
            trace->BeginSpan(ShardSpanName(channels_[i]->shard_id()),
                             scatter_span);
      }
    }
    // May complete inline (unhealthy shard) — the callback only touches
    // the shared scatter state.
    channels_[i]->TsFindAsync(
        request, [scatter, i](Result<net::TsFindResult> result) {
          std::lock_guard<std::mutex> lock(scatter->mu);
          Slot& slot = scatter->slots[i];
          if (slot.done) return;  // defensive: exactly-once upstream
          slot.result = std::move(result);
          slot.done = true;
          if (scatter->trace) scatter->trace->EndSpan(slot.span);
          --scatter->outstanding;
          scatter->cv.notify_all();
        });
  }

  std::vector<std::vector<TupleSet>> streams;
  std::string degraded_reason;
  bool degraded = false;
  size_t failed = 0;
  size_t responded = 0;
  uint64_t min_version = std::numeric_limits<uint64_t>::max();
  {
    std::unique_lock<std::mutex> lock(scatter->mu);
    scatter->cv.wait_for(lock, std::chrono::milliseconds(wait_ms),
                         [&] { return scatter->outstanding == 0; });
    for (size_t i = 0; i < scatter->slots.size(); ++i) {
      Slot& slot = scatter->slots[i];
      const uint32_t shard = channels_[i]->shard_id();
      if (!slot.done) {
        // Still in flight past the wait: its span stays open until the
        // late callback closes it; the batch proceeds without it.
        degraded = true;
        ++failed;
        if (!degraded_reason.empty()) degraded_reason += "; ";
        degraded_reason += "shard " + std::to_string(shard) + " timed out";
        continue;
      }
      if (!slot.result.ok()) {
        degraded = true;
        ++failed;
        if (!degraded_reason.empty()) degraded_reason += "; ";
        degraded_reason += "shard " + std::to_string(shard) + ": " +
                           slot.result.status().message();
        continue;
      }
      ++responded;
      net::TsFindResult& result = *slot.result;
      if (result.degraded) {
        degraded = true;
        if (!degraded_reason.empty()) degraded_reason += "; ";
        degraded_reason += "shard " + std::to_string(shard) + " degraded";
        if (!result.degraded_reason.empty()) {
          degraded_reason += ": " + result.degraded_reason;
        }
      }
      min_version = std::min(min_version, result.index_version);
      streams.push_back(ToTupleSets(std::move(result.tuple_sets)));
    }
  }
  scatter_errors_.fetch_add(failed, std::memory_order_relaxed);
  if (trace) trace->EndSpan(scatter_span);

  if (responded == 0) {
    return Status::IOError(
        degraded_reason.empty() ? "scatter reached no shard"
                                : "scatter reached no shard: " +
                                      degraded_reason);
  }

  const uint32_t merge_span =
      trace ? trace->BeginSpan("merge", parent_span) : 0;
  const auto merge_started = Deadline::Clock::now();
  MergeStats merge_stats;
  TupleSetBatch batch;
  batch.tuple_sets = MergeShardTupleSets(std::move(streams), &merge_stats);
  const auto merge_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          Deadline::Clock::now() - merge_started)
          .count();
  if (trace) trace->EndSpan(merge_span, merge_stats.output_sets);
  merge_us_total_.fetch_add(static_cast<uint64_t>(merge_us),
                            std::memory_order_relaxed);
  merges_.fetch_add(1, std::memory_order_relaxed);

  batch.index_version =
      min_version == std::numeric_limits<uint64_t>::max() ? 0 : min_version;
  batch.degraded = degraded;
  batch.degraded_reason = std::move(degraded_reason);
  batch.ts_millis =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          Deadline::Clock::now() - started)
          .count();
  if (degraded) degraded_batches_.fetch_add(1, std::memory_order_relaxed);
  return batch;
}

void Coordinator::FillStats(ServiceStatsSnapshot* snapshot) const {
  snapshot->shards_total = channels_.size();
  snapshot->shards_healthy = healthy_shards();
  snapshot->shard_scatters = scatters_.load(std::memory_order_relaxed);
  snapshot->shard_scatter_errors =
      scatter_errors_.load(std::memory_order_relaxed);
  snapshot->shard_degraded_batches =
      degraded_batches_.load(std::memory_order_relaxed);
  const uint64_t merges = merges_.load(std::memory_order_relaxed);
  snapshot->shard_merge_us_mean =
      merges == 0 ? 0
                  : merge_us_total_.load(std::memory_order_relaxed) / merges;
  uint64_t heartbeats = 0;
  uint64_t reconnects = 0;
  for (const auto& channel : channels_) {
    heartbeats += channel->heartbeats();
    reconnects += channel->reconnects();
  }
  snapshot->shard_heartbeats = heartbeats;
  snapshot->shard_reconnects = reconnects;
  snapshot->shard_inserts_routed =
      inserts_routed_.load(std::memory_order_relaxed);
}

ShardInsertRouter::ShardInsertRouter(const ShardMap* map,
                                     const DatabaseSchema* schema,
                                     Coordinator* coordinator,
                                     int64_t timeout_ms)
    : map_(map),
      schema_(schema),
      coordinator_(coordinator),
      timeout_ms_(timeout_ms) {}

Result<liveindex::InsertOutcome> ShardInsertRouter::Insert(RelationId relation,
                                                           Tuple tuple) {
  if (relation >= schema_->num_relations()) {
    return Status::NotFound("unknown relation id " + std::to_string(relation));
  }
  const RelationSchema& rel = schema_->relation(relation);
  if (tuple.size() != rel.num_attributes()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(tuple.size()) + " != schema arity " +
        std::to_string(rel.num_attributes()) + " for " + rel.name());
  }
  const uint32_t owner = relation < map_->num_relations()
                             ? map_->OwnerOf(relation)
                             : map_->OwnerByName(rel.name());
  ShardChannel* channel = coordinator_->channel(owner);
  if (channel == nullptr) {
    return Status::IOError("no channel for shard " + std::to_string(owner));
  }

  net::InsertRequest request;
  request.relation = rel.name();
  request.values.reserve(tuple.size());
  for (const Value& value : tuple) {
    net::WireValue wire;
    if (value.is_int()) {
      wire.tag = 0;
      wire.int_value = value.AsInt();
    } else {
      wire.tag = 1;
      wire.text_value = value.AsText();
    }
    request.values.push_back(std::move(wire));
  }

  Result<net::InsertResult> result = channel->Insert(request, timeout_ms_);
  if (!result.ok()) return result.status();
  coordinator_->RecordInsertRouted();

  // Invalidate by the terms the new tuple contributes — the same
  // (over-approximating is safe, missing is not) contract IndexWriter's
  // hook has. Tokenization here mirrors the shard-side indexing.
  if (hook_) {
    std::vector<std::string> terms;
    for (size_t a = 0; a < tuple.size(); ++a) {
      const Attribute& attr = rel.attribute(a);
      if (attr.type != ValueType::kText || !attr.searchable) continue;
      if (!tuple[a].is_text()) continue;
      for (std::string& token : Tokenizer::Tokenize(tuple[a].AsText())) {
        terms.push_back(std::move(token));
      }
    }
    std::sort(terms.begin(), terms.end());
    terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
    if (!terms.empty()) hook_(terms);
  }

  liveindex::InsertOutcome outcome;
  outcome.version = result->index_version;
  outcome.id = TupleId(result->relation, result->row);
  return outcome;
}

}  // namespace matcn::shard
