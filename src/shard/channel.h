#ifndef MATCN_SHARD_CHANNEL_H_
#define MATCN_SHARD_CHANNEL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/status.h"
#include "net/socket.h"
#include "net/wire.h"

namespace matcn::shard {

struct ShardChannelOptions {
  int64_t connect_timeout_ms = 5'000;
  /// Probe cadence of the keeper thread.
  int64_t heartbeat_interval_ms = 500;
  /// No HEARTBEAT_ACK for this long marks the shard unhealthy and forces
  /// a reconnect; the coordinator stops scattering to it until an ack
  /// arrives on the fresh connection.
  int64_t heartbeat_timeout_ms = 2'000;
  /// Largest response payload buffered (TSFIND_RESULT can be large).
  size_t max_frame_bytes = size_t{64} << 20;
};

/// One multiplexed wire-v5 connection to a shard worker. Unlike
/// net::Client (one outstanding request), a ShardChannel keeps many
/// requests in flight on a single TCP connection, demuxing responses by
/// request id on a dedicated reader thread. A keeper thread heartbeats
/// the shard, flips health on ack staleness, and reconnects — the
/// coordinator's recovery path after a shard restart.
///
/// Callback contract: every issued request's callback fires exactly once
/// — with the response, or with kUnavailable when the connection dies
/// or the channel shuts down. No lost callbacks, ever; the fault
/// injection test holds this under mid-query shard kills.
class ShardChannel {
 public:
  ShardChannel(uint32_t shard_id, std::string host, uint16_t port,
               ShardChannelOptions options = {});
  ~ShardChannel();

  ShardChannel(const ShardChannel&) = delete;
  ShardChannel& operator=(const ShardChannel&) = delete;

  /// Initial connect; spawns the reader and keeper threads. Call once.
  /// A failed initial connect still starts the keeper, which keeps
  /// retrying — a shard that comes up late is adopted automatically.
  Status Connect();

  /// Fails outstanding requests with kUnavailable and joins the threads.
  /// Idempotent; also run by the destructor.
  void Shutdown();

  uint32_t shard_id() const { return shard_id_; }

  /// Connected and the last HEARTBEAT_ACK is fresh. Scatters skip
  /// unhealthy channels instead of burning deadline on them.
  bool healthy() const;

  /// Async TSFIND. `done` runs on the reader thread (keep it cheap) or
  /// inline when the channel is unhealthy.
  void TsFindAsync(const net::TsFindRequest& request,
                   std::function<void(Result<net::TsFindResult>)> done);

  /// Synchronous INSERT forwarding (runs on the coordinator's insert
  /// worker; FIFO order there preserves wire order per relation).
  Result<net::InsertResult> Insert(const net::InsertRequest& request,
                                   int64_t timeout_ms);

  /// Synchronous STATS fetch (shardctl surface).
  Result<net::StatsPayload> Stats(int64_t timeout_ms);

  uint64_t heartbeats() const {
    return heartbeats_.load(std::memory_order_relaxed);
  }
  uint64_t reconnects() const {
    return reconnects_.load(std::memory_order_relaxed);
  }
  /// From the last HEARTBEAT_ACK (0 before the first one).
  uint64_t acked_index_version() const {
    return acked_index_version_.load(std::memory_order_relaxed);
  }
  uint32_t acked_in_flight() const {
    return acked_in_flight_.load(std::memory_order_relaxed);
  }

 private:
  struct RawResponse {
    net::FrameType type = net::FrameType::kPong;
    std::string payload;
  };
  using RawCallback = std::function<void(Result<RawResponse>)>;

  /// Registers `done` and writes one frame. Fails inline (after
  /// unregistering) when disconnected or the write errors.
  void SendRequest(net::FrameType type, const std::string& payload,
                   RawCallback done);
  /// Blocking request/response bridge over SendRequest.
  Result<RawResponse> Roundtrip(net::FrameType type,
                                const std::string& payload,
                                int64_t timeout_ms);

  void ReaderLoop();
  void KeeperLoop();
  void SendHeartbeat();
  /// Tears the connection down and fails every pending request with
  /// kUnavailable. Safe from any thread; callbacks run outside the lock.
  void FailConnection(const std::string& reason);
  Status TryConnect();

  const uint32_t shard_id_;
  const std::string host_;
  const uint16_t port_;
  const ShardChannelOptions options_;

  mutable std::mutex mu_;
  net::ScopedFd fd_;
  bool connected_ = false;
  uint64_t next_request_id_ = 1;
  std::unordered_map<uint64_t, RawCallback> pending_;
  /// Touched only by Connect()/the keeper (join-then-respawn) and
  /// Shutdown() after the keeper joined — never concurrently.
  std::thread reader_;

  std::condition_variable keeper_cv_;
  bool stop_ = false;

  std::thread keeper_;

  std::atomic<int64_t> last_ack_us_{0};  // steady-clock micros
  std::atomic<uint64_t> heartbeats_{0};
  std::atomic<uint64_t> reconnects_{0};
  std::atomic<uint64_t> acked_index_version_{0};
  std::atomic<uint32_t> acked_in_flight_{0};
  std::atomic<bool> shut_down_{false};
};

}  // namespace matcn::shard

#endif  // MATCN_SHARD_CHANNEL_H_
