#ifndef MATCN_SHARD_LOCAL_CLUSTER_H_
#define MATCN_SHARD_LOCAL_CLUSTER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "graph/schema_graph.h"
#include "liveindex/concurrent_term_index.h"
#include "liveindex/index_writer.h"
#include "net/server.h"
#include "service/query_service.h"
#include "shard/coordinator.h"
#include "shard/shard_map.h"
#include "storage/database.h"

namespace matcn::shard {

struct LocalShardClusterOptions {
  /// Per-shard QueryService configuration (worker counts, queue bounds).
  QueryServiceOptions service;
  /// Per-shard live-index configuration; the relation mask is filled in
  /// from the ShardMap, whatever this says.
  liveindex::LiveIndexOptions live;
  /// Per-shard server configuration. Leave `port` at 0 (each shard picks
  /// an ephemeral port, kept across restarts); `shard_id` is overwritten
  /// with the shard's id.
  net::ServerOptions server;
  /// Per-shard pre-execute hook factory: called once per shard at
  /// (re)start, the result installed as that shard's
  /// QueryServiceOptions::pre_execute_hook. Fault tests stall a single
  /// shard's workers through this.
  std::function<std::function<void()>(uint32_t shard)>
      pre_execute_hook_factory;
};

/// N in-process shard workers, one per ShardMap shard: each owns a full
/// Database copy (regenerated deterministically via the factory, so
/// TupleIds are globally consistent) but indexes and serves only the
/// relations it owns (TermIndexOptions::relation_mask), behind its own
/// live-backend QueryService and net::Server. This is the `--shards N`
/// deployment shape of matcn_server and the differential/fault tests'
/// cluster harness; a multi-process deployment runs the same per-shard
/// stack with the same map file.
///
/// StopShard kills a shard mid-query (short forced drain); RestartShard
/// rebuilds it from the factory on its original port. A rebuilt shard
/// reflects the factory's data — inserts routed to it before the kill are
/// lost, which is exactly the window the fault-injection test probes
/// (degraded-not-wrong, then recovery).
class LocalShardCluster {
 public:
  /// `factory` must deterministically regenerate the same Database on
  /// every call (Database is move-only, so shards cannot share one).
  LocalShardCluster(std::function<Database()> factory, const ShardMap* map,
                    LocalShardClusterOptions options = {});
  ~LocalShardCluster();

  LocalShardCluster(const LocalShardCluster&) = delete;
  LocalShardCluster& operator=(const LocalShardCluster&) = delete;

  /// Builds and starts every shard. Call once.
  Status Start();

  /// Stops every running shard. Idempotent; also run by the destructor.
  void Stop();

  /// Endpoints for Coordinator construction, in shard-id order.
  std::vector<ShardEndpoint> Endpoints() const;

  /// Abrupt stop: cancels in-flight work after a short drain and tears
  /// the shard down. Its port is remembered for RestartShard.
  Status StopShard(uint32_t shard);

  /// Rebuilds a stopped shard from the factory and rebinds its original
  /// port, so coordinator keepers reconnect without re-resolving.
  Status RestartShard(uint32_t shard);

  bool running(uint32_t shard) const { return shards_[shard].running; }
  uint16_t port(uint32_t shard) const { return shards_[shard].port; }
  net::Server* server(uint32_t shard) { return shards_[shard].server.get(); }
  QueryService* service(uint32_t shard) {
    return shards_[shard].service.get();
  }
  size_t num_shards() const { return shards_.size(); }

 private:
  struct ShardProcess {
    // Declaration order is teardown-safe in reverse: server first
    // (stops accepting + drains), then service (joins workers), then
    // writer/live/db.
    std::unique_ptr<Database> db;
    std::unique_ptr<SchemaGraph> graph;
    std::unique_ptr<liveindex::ConcurrentTermIndex> live;
    std::unique_ptr<liveindex::IndexWriter> writer;
    std::unique_ptr<QueryService> service;
    std::unique_ptr<net::Server> server;
    uint16_t port = 0;
    bool running = false;
  };

  Status StartShard(uint32_t shard, uint16_t port);
  void TearDownShard(ShardProcess* p);

  std::function<Database()> factory_;
  const ShardMap* map_;
  LocalShardClusterOptions options_;
  std::vector<ShardProcess> shards_;
};

}  // namespace matcn::shard

#endif  // MATCN_SHARD_LOCAL_CLUSTER_H_
