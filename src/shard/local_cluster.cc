#include "shard/local_cluster.h"

#include <utility>

#include "indexing/term_index.h"

namespace matcn::shard {

LocalShardCluster::LocalShardCluster(std::function<Database()> factory,
                                     const ShardMap* map,
                                     LocalShardClusterOptions options)
    : factory_(std::move(factory)), map_(map), options_(std::move(options)) {
  shards_.resize(map_->num_shards());
}

LocalShardCluster::~LocalShardCluster() { Stop(); }

Status LocalShardCluster::Start() {
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    const Status status = StartShard(s, options_.server.port);
    if (!status.ok()) {
      Stop();
      return status;
    }
  }
  return Status::OK();
}

Status LocalShardCluster::StartShard(uint32_t shard, uint16_t port) {
  ShardProcess& p = shards_[shard];
  p.db = std::make_unique<Database>(factory_());
  p.graph = std::make_unique<SchemaGraph>(SchemaGraph::Build(p.db->schema()));

  liveindex::LiveIndexOptions live = options_.live;
  live.index.relation_mask = map_->RelationMask(shard);
  p.live = std::make_unique<liveindex::ConcurrentTermIndex>(
      TermIndex::Build(*p.db, live.index), live);
  p.writer = std::make_unique<liveindex::IndexWriter>(p.db.get(), p.live.get());

  QueryServiceOptions service = options_.service;
  if (options_.pre_execute_hook_factory) {
    service.pre_execute_hook = options_.pre_execute_hook_factory(shard);
  }
  p.service =
      std::make_unique<QueryService>(p.graph.get(), p.live.get(), service);
  p.service->ConnectWriter(p.writer.get());

  net::ServerOptions server = options_.server;
  server.port = port;
  server.shard_id = shard;
  p.server = std::make_unique<net::Server>(p.service.get(), &p.db->schema(),
                                           p.writer.get(), server);
  const Status status = p.server->Start();
  if (!status.ok()) {
    TearDownShard(&p);
    return status;
  }
  p.port = p.server->port();
  p.running = true;
  return Status::OK();
}

void LocalShardCluster::TearDownShard(ShardProcess* p) {
  p->server.reset();  // drains (bounded) and closes the socket
  p->service.reset();
  p->writer.reset();
  p->live.reset();
  p->graph.reset();
  p->db.reset();
  p->running = false;
}

void LocalShardCluster::Stop() {
  for (ShardProcess& p : shards_) {
    if (p.running) TearDownShard(&p);
  }
}

std::vector<ShardEndpoint> LocalShardCluster::Endpoints() const {
  std::vector<ShardEndpoint> endpoints;
  endpoints.reserve(shards_.size());
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    endpoints.push_back(
        {s, options_.server.host, shards_[s].port});
  }
  return endpoints;
}

Status LocalShardCluster::StopShard(uint32_t shard) {
  if (shard >= shards_.size()) {
    return Status::OutOfRange("no shard " + std::to_string(shard));
  }
  ShardProcess& p = shards_[shard];
  if (!p.running) return Status::OK();
  TearDownShard(&p);  // keeps p.port for the restart
  return Status::OK();
}

Status LocalShardCluster::RestartShard(uint32_t shard) {
  if (shard >= shards_.size()) {
    return Status::OutOfRange("no shard " + std::to_string(shard));
  }
  ShardProcess& p = shards_[shard];
  if (p.running) return Status::OK();
  return StartShard(shard, p.port);
}

}  // namespace matcn::shard
