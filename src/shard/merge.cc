#include "shard/merge.h"

#include <algorithm>
#include <queue>
#include <utility>

namespace matcn::shard {
namespace {

/// Heap entry: the head of one stream. Ties on (relation, termset) break
/// by stream index so equal keys pop in a deterministic order.
struct Head {
  RelationId relation;
  Termset termset;
  size_t stream;
  size_t pos;
};

struct HeadGreater {
  bool operator()(const Head& a, const Head& b) const {
    if (a.relation != b.relation) return a.relation > b.relation;
    if (a.termset != b.termset) return a.termset > b.termset;
    return a.stream > b.stream;
  }
};

}  // namespace

std::vector<TupleSet> MergeShardTupleSets(
    std::vector<std::vector<TupleSet>> streams, MergeStats* stats) {
  MergeStats local;
  std::priority_queue<Head, std::vector<Head>, HeadGreater> heap;
  size_t total = 0;
  for (size_t s = 0; s < streams.size(); ++s) {
    if (streams[s].empty()) continue;
    ++local.streams;
    local.input_sets += streams[s].size();
    total += streams[s].size();
    heap.push({streams[s][0].relation, streams[s][0].termset, s, 0});
  }

  std::vector<TupleSet> out;
  out.reserve(total);
  while (!heap.empty()) {
    const Head head = heap.top();
    heap.pop();
    TupleSet& ts = streams[head.stream][head.pos];
    if (!out.empty() && out.back().relation == ts.relation &&
        out.back().termset == ts.termset) {
      // Two streams produced the same (relation, termset): union the
      // sorted unique lists so shared tuples count once.
      std::vector<TupleId> united;
      united.reserve(out.back().tuples.size() + ts.tuples.size());
      std::set_union(out.back().tuples.begin(), out.back().tuples.end(),
                     ts.tuples.begin(), ts.tuples.end(),
                     std::back_inserter(united));
      out.back().tuples = std::move(united);
      ++local.coalesced;
    } else {
      out.push_back(std::move(ts));
    }
    const size_t next = head.pos + 1;
    if (next < streams[head.stream].size()) {
      heap.push({streams[head.stream][next].relation,
                 streams[head.stream][next].termset, head.stream, next});
    }
  }
  local.output_sets = out.size();
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace matcn::shard
