#include "shard/channel.h"

#include <sys/socket.h>

#include <chrono>
#include <memory>
#include <utility>

namespace matcn::shard {
namespace {

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ShardChannel::ShardChannel(uint32_t shard_id, std::string host, uint16_t port,
                           ShardChannelOptions options)
    : shard_id_(shard_id),
      host_(std::move(host)),
      port_(port),
      options_(options) {}

ShardChannel::~ShardChannel() { Shutdown(); }

Status ShardChannel::Connect() {
  const Status status = TryConnect();
  // The keeper runs regardless: a shard that was down at startup is
  // adopted on its next heartbeat-interval retry.
  keeper_ = std::thread(&ShardChannel::KeeperLoop, this);
  return status;
}

Status ShardChannel::TryConnect() {
  // Only the initial Connect() and the keeper call this, never
  // concurrently, so joining the previous (exited or exiting) reader
  // outside the lock is safe — a joinable reader implies a failed
  // connection whose socket is already shut down.
  if (reader_.joinable()) reader_.join();
  Result<net::ScopedFd> fd =
      net::ConnectTcp(host_, port_, options_.connect_timeout_ms);
  if (!fd.ok()) return fd.status();
  std::lock_guard<std::mutex> lock(mu_);
  if (stop_) return Status::IOError("channel shut down");
  fd_ = std::move(*fd);  // closes the previous (joined-reader) socket
  connected_ = true;
  last_ack_us_.store(NowMicros(), std::memory_order_relaxed);
  reader_ = std::thread(&ShardChannel::ReaderLoop, this);
  return Status::OK();
}

void ShardChannel::Shutdown() {
  if (shut_down_.exchange(true)) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    // Unblock the reader's ReadExactly without closing (the fd is only
    // closed after the reader joined).
    if (fd_.valid()) ::shutdown(fd_.get(), SHUT_RDWR);
  }
  keeper_cv_.notify_all();
  if (keeper_.joinable()) keeper_.join();
  if (reader_.joinable()) reader_.join();
  FailConnection("channel shut down");
}

bool ShardChannel::healthy() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!connected_) return false;
  const int64_t age_us =
      NowMicros() - last_ack_us_.load(std::memory_order_relaxed);
  return age_us <= options_.heartbeat_timeout_ms * 1000;
}

void ShardChannel::FailConnection(const std::string& reason) {
  std::unordered_map<uint64_t, RawCallback> orphaned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (connected_) {
      connected_ = false;
      if (fd_.valid()) ::shutdown(fd_.get(), SHUT_RDWR);
    }
    orphaned.swap(pending_);
  }
  // Exactly-once: every registered callback fires, with kUnavailable when
  // its response can no longer arrive.
  for (auto& [id, done] : orphaned) {
    done(net::WireCodeToStatus(
        net::WireCode::kUnavailable,
        "shard " + std::to_string(shard_id_) + ": " + reason));
  }
  keeper_cv_.notify_all();  // wake the keeper for a prompt reconnect
}

void ShardChannel::SendRequest(net::FrameType type, const std::string& payload,
                               RawCallback done) {
  uint64_t id = 0;
  int fd = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!connected_) {
      fd = -1;
    } else {
      id = next_request_id_++;
      pending_[id] = std::move(done);
      fd = fd_.get();
    }
  }
  if (fd < 0) {
    done(net::WireCodeToStatus(
        net::WireCode::kUnavailable,
        "shard " + std::to_string(shard_id_) + " disconnected"));
    return;
  }
  std::string frame;
  net::AppendFrame(&frame, type, id, payload);
  // Write outside mu_ so a slow socket never blocks response dispatch.
  // A concurrent FailConnection may have already failed this request's
  // callback; the write then errors on the shut-down fd and the repeat
  // FailConnection finds nothing pending — still exactly-once.
  const Status write = net::WriteAll(fd, frame);
  if (!write.ok()) FailConnection("write: " + write.message());
}

void ShardChannel::ReaderLoop() {
  const int fd = fd_.get();  // stable until this reader is joined
  std::string buf;
  while (true) {
    buf.clear();
    Status read = net::ReadExactly(fd, net::kFrameHeaderBytes, &buf);
    if (!read.ok()) {
      FailConnection("connection lost");
      return;
    }
    net::FrameHeader header;
    if (net::ParseFrameHeader(buf, &header) != net::HeaderParse::kOk ||
        header.payload_len > options_.max_frame_bytes) {
      FailConnection("protocol error from shard");
      return;
    }
    buf.clear();
    if (header.payload_len > 0) {
      read = net::ReadExactly(fd, header.payload_len, &buf);
      if (!read.ok()) {
        FailConnection("connection lost mid-frame");
        return;
      }
    }
    if (header.type == net::FrameType::kGoingAway) continue;  // id 0
    RawCallback done;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = pending_.find(header.request_id);
      if (it == pending_.end()) continue;  // late response, already failed
      done = std::move(it->second);
      pending_.erase(it);
    }
    RawResponse response;
    response.type = header.type;
    response.payload = std::move(buf);
    done(std::move(response));
    buf = std::string();
  }
}

void ShardChannel::KeeperLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    keeper_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.heartbeat_interval_ms));
    if (stop_) break;
    const bool connected = connected_;
    lock.unlock();
    if (!connected) {
      if (TryConnect().ok()) {
        reconnects_.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      const int64_t age_us =
          NowMicros() - last_ack_us_.load(std::memory_order_relaxed);
      if (age_us > options_.heartbeat_timeout_ms * 1000) {
        // The shard stopped acking (stalled, partitioned, or drained):
        // declare it down and recycle the connection. Scatters skip it
        // until a fresh connection acks.
        FailConnection("heartbeat timeout");
      } else {
        SendHeartbeat();
      }
    }
    lock.lock();
  }
}

void ShardChannel::SendHeartbeat() {
  net::Heartbeat probe;
  probe.send_us = static_cast<uint64_t>(NowMicros());
  net::WireWriter w;
  net::Encode(probe, &w);
  SendRequest(net::FrameType::kHeartbeat, w.buffer(),
              [this](Result<RawResponse> raw) {
                if (!raw.ok() || raw->type != net::FrameType::kHeartbeatAck) {
                  return;  // no ack; staleness does the bookkeeping
                }
                net::HeartbeatAck ack;
                if (!net::Decode(raw->payload, &ack)) return;
                last_ack_us_.store(NowMicros(), std::memory_order_relaxed);
                acked_index_version_.store(ack.index_version,
                                           std::memory_order_relaxed);
                acked_in_flight_.store(ack.queries_in_flight,
                                       std::memory_order_relaxed);
                heartbeats_.fetch_add(1, std::memory_order_relaxed);
              });
}

void ShardChannel::TsFindAsync(
    const net::TsFindRequest& request,
    std::function<void(Result<net::TsFindResult>)> done) {
  if (!healthy()) {
    done(net::WireCodeToStatus(
        net::WireCode::kUnavailable,
        "shard " + std::to_string(shard_id_) + " unhealthy"));
    return;
  }
  net::WireWriter w;
  net::Encode(request, &w);
  const uint32_t shard = shard_id_;
  SendRequest(
      net::FrameType::kTsFind, w.buffer(),
      [shard, done = std::move(done)](Result<RawResponse> raw) {
        if (!raw.ok()) {
          done(raw.status());
          return;
        }
        if (raw->type == net::FrameType::kError) {
          net::ErrorPayload error;
          if (net::Decode(raw->payload, &error)) {
            done(net::WireCodeToStatus(error.code, std::move(error.message)));
          } else {
            done(Status::Internal("shard " + std::to_string(shard) +
                                  ": undecodable error frame"));
          }
          return;
        }
        net::TsFindResult result;
        if (raw->type != net::FrameType::kTsFindResult ||
            !net::Decode(raw->payload, &result)) {
          done(Status::Internal("shard " + std::to_string(shard) +
                                ": bad TSFIND_RESULT frame"));
          return;
        }
        done(std::move(result));
      });
}

Result<ShardChannel::RawResponse> ShardChannel::Roundtrip(
    net::FrameType type, const std::string& payload, int64_t timeout_ms) {
  struct SyncState {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Result<RawResponse> result = Status::Internal("unset");
  };
  auto state = std::make_shared<SyncState>();
  SendRequest(type, payload, [state](Result<RawResponse> raw) {
    std::lock_guard<std::mutex> lock(state->mu);
    state->result = std::move(raw);
    state->done = true;
    state->cv.notify_all();
  });
  std::unique_lock<std::mutex> lock(state->mu);
  if (!state->cv.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                          [&] { return state->done; })) {
    // The registered callback still fires (on response or connection
    // failure); it only touches the shared state, which outlives us.
    return Status::DeadlineExceeded("shard " + std::to_string(shard_id_) +
                                    ": no response within " +
                                    std::to_string(timeout_ms) + "ms");
  }
  return std::move(state->result);
}

Result<net::InsertResult> ShardChannel::Insert(
    const net::InsertRequest& request, int64_t timeout_ms) {
  net::WireWriter w;
  net::Encode(request, &w);
  Result<RawResponse> raw =
      Roundtrip(net::FrameType::kInsert, w.buffer(), timeout_ms);
  if (!raw.ok()) return raw.status();
  if (raw->type == net::FrameType::kError) {
    net::ErrorPayload error;
    if (net::Decode(raw->payload, &error)) {
      return net::WireCodeToStatus(error.code, std::move(error.message));
    }
    return Status::Internal("undecodable error frame");
  }
  net::InsertResult result;
  if (raw->type != net::FrameType::kInsertResult ||
      !net::Decode(raw->payload, &result)) {
    return Status::Internal("bad INSERT_RESULT frame");
  }
  return result;
}

Result<net::StatsPayload> ShardChannel::Stats(int64_t timeout_ms) {
  Result<RawResponse> raw =
      Roundtrip(net::FrameType::kStats, std::string(), timeout_ms);
  if (!raw.ok()) return raw.status();
  if (raw->type == net::FrameType::kError) {
    net::ErrorPayload error;
    if (net::Decode(raw->payload, &error)) {
      return net::WireCodeToStatus(error.code, std::move(error.message));
    }
    return Status::Internal("undecodable error frame");
  }
  net::StatsPayload stats;
  if (raw->type != net::FrameType::kStatsResult ||
      !net::Decode(raw->payload, &stats)) {
    return Status::Internal("bad STATS_RESULT frame");
  }
  return stats;
}

}  // namespace matcn::shard
