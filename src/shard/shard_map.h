#ifndef MATCN_SHARD_SHARD_MAP_H_
#define MATCN_SHARD_SHARD_MAP_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/schema.h"
#include "storage/tuple_id.h"

namespace matcn::shard {

struct ShardMapOptions {
  uint32_t num_shards = 1;
  /// Virtual nodes per shard on the consistent-hash ring. More vnodes
  /// smooth the relation distribution; the default is plenty for the
  /// handful-of-relations schemas keyword search runs over.
  uint32_t vnodes_per_shard = 64;
  /// Hash seed: folded into every ring point and relation hash, so two
  /// deployments can derive different placements from the same schema.
  uint64_t seed = 0;
};

/// The cluster's partition of relations onto shards. MatCN shards by
/// *relation*: each shard owns a subset of the schema's relations, builds
/// its term index over exactly those (TermIndexOptions::relation_mask),
/// and answers TSFIND for them. Because ownership is disjoint and TupleIds
/// embed the relation, the union of the shards' tuple sets is exactly the
/// unsharded set R_Q — the invariant the coordinator's merge and the
/// differential test lean on.
///
/// Placement comes from a consistent-hash ring (fnv64 vnode points), but
/// the map stores the *explicit* relation -> shard assignment and
/// serializes it in full: a coordinator loading a map file scatters by
/// the recorded owners, never by re-hashing, so ring-parameter drift
/// between builds cannot silently re-home a relation.
class ShardMap {
 public:
  /// Assigns every relation of `schema` an owner via the ring.
  static ShardMap Build(const DatabaseSchema& schema,
                        ShardMapOptions options = {});

  /// Parses the Serialize() text format ("matcn-shard-map v1" header,
  /// shards/vnodes/seed lines, one "relation NAME OWNER" line per
  /// relation in schema order). Fails with InvalidArgument on malformed
  /// input or an owner out of range.
  static Result<ShardMap> Parse(const std::string& text);

  /// Text form, stable and diffable; Parse() round-trips it.
  std::string Serialize() const;

  /// Checks that the map covers exactly the relations of `schema`, by
  /// name and in order — the guard `--shard-map` runs before serving.
  Status Validate(const DatabaseSchema& schema) const;

  uint32_t num_shards() const { return num_shards_; }
  size_t num_relations() const { return owners_.size(); }

  /// Owner of relation `r`. Relations beyond the map (e.g. created after
  /// the map was built) fall back to the ring by name via OwnerByName.
  uint32_t OwnerOf(RelationId r) const { return owners_[r]; }

  /// Owner of a relation by name: the recorded assignment when present,
  /// otherwise the ring point (deterministic fallback for relations the
  /// map has never seen).
  uint32_t OwnerByName(const std::string& name) const;

  const std::string& relation_name(RelationId r) const { return names_[r]; }

  /// Relations owned by `shard`, in id order.
  std::vector<RelationId> RelationsOf(uint32_t shard) const;

  /// The TermIndexOptions::relation_mask for `shard`: one byte per
  /// relation, 1 where the shard owns it.
  std::vector<uint8_t> RelationMask(uint32_t shard) const;

  /// The raw ring decision for `name` (exposed so tests can pin the
  /// fallback path without mutating a schema).
  uint32_t RingOwner(const std::string& name) const;

 private:
  ShardMap() = default;
  void BuildRing();

  uint32_t num_shards_ = 1;
  uint32_t vnodes_per_shard_ = 64;
  uint64_t seed_ = 0;
  /// Sorted (point, shard) vnode ring.
  std::vector<std::pair<uint64_t, uint32_t>> ring_;
  /// Explicit assignment, indexed by RelationId (schema order).
  std::vector<std::string> names_;
  std::vector<uint32_t> owners_;
  std::unordered_map<std::string, uint32_t> owner_by_name_;
};

}  // namespace matcn::shard

#endif  // MATCN_SHARD_SHARD_MAP_H_
