#ifndef MATCN_SHARD_MERGE_H_
#define MATCN_SHARD_MERGE_H_

#include <cstdint>
#include <vector>

#include "core/tuple_set.h"

namespace matcn::shard {

struct MergeStats {
  uint64_t streams = 0;      // non-empty input streams
  uint64_t input_sets = 0;   // tuple sets across all streams
  uint64_t output_sets = 0;  // tuple sets after the merge
  /// Duplicate (relation, termset) keys united across streams. Zero under
  /// relation partitioning (ownership is disjoint); non-zero would mean
  /// two shards claimed the same relation.
  uint64_t coalesced = 0;
};

/// K-way merges per-shard tuple-set streams into one globally ordered set
/// R_Q. Each input stream must be sorted by (relation, termset) — the
/// order TupleSetFinder::BuildTupleSets emits and TSFIND_RESULT preserves.
///
/// Streams with duplicate keys are handled by unioning their (sorted,
/// unique) tuple lists, so the merge is df-aware: a tuple counted by two
/// streams contributes once. With the relation-disjoint ownership the
/// ShardMap enforces this path never triggers, and the output is
/// byte-identical to running BuildTupleSets over the union of the
/// keyword lists — the single-process order the differential test pins.
std::vector<TupleSet> MergeShardTupleSets(
    std::vector<std::vector<TupleSet>> streams, MergeStats* stats = nullptr);

}  // namespace matcn::shard

#endif  // MATCN_SHARD_MERGE_H_
