#ifndef MATCN_EVAL_SKYLINE_RANKER_H_
#define MATCN_EVAL_SKYLINE_RANKER_H_

#include "eval/ranker.h"

namespace matcn {

/// Skyline-Sweeping, the top-k evaluation strategy of SPARK [18]: a single
/// global priority queue holds, for every CN, the best not-yet-verified
/// combination of non-free tuples (via CnSweeper). The best combination is
/// popped, verified by executing the CN with those tuples pinned (checking
/// it connects through free tuple-sets), and its successors are pushed.
/// Because a verified combination's JNT score equals its bound, answers
/// stream out in exact score order and the sweep stops at k results.
class SkylineSweepRanker : public Ranker {
 public:
  std::vector<Jnt> TopK(const EvalContext& context,
                        const RankerOptions& options) override;
  std::string name() const override { return "SkylineSweep"; }
};

}  // namespace matcn

#endif  // MATCN_EVAL_SKYLINE_RANKER_H_
