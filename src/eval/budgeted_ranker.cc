#include "eval/budgeted_ranker.h"

#include "common/timer.h"
#include "core/cn_to_sql.h"
#include "eval/cn_ranker.h"
#include "eval/scorer.h"
#include "exec/executor.h"

namespace matcn {

BudgetedResult BudgetedRanker::TopK(const EvalContext& context,
                                    const RankerOptions& options) const {
  BudgetedResult result;
  CnExecutor executor(context.db, context.schema_graph);
  executor.SetQueryContext(context.tuple_sets);
  Scorer scorer(context.db, context.index, context.query);

  const std::vector<size_t> order = RankCandidateNetworks(
      *context.cns, *context.tuple_sets, scorer);

  Stopwatch watch;
  size_t next = 0;
  for (; next < order.size(); ++next) {
    if (deadline_ms_ > 0 && watch.ElapsedMillis() > deadline_ms_) {
      result.deadline_hit = true;
      break;
    }
    const size_t c = order[next];
    for (Jnt& jnt : executor.Execute((*context.cns)[c], static_cast<int>(c),
                                     options.per_cn_limit)) {
      jnt.score = scorer.JntScore(jnt);
      result.answers.push_back(std::move(jnt));
    }
    result.evaluated_cns.push_back(c);
  }
  // Remaining CNs become query forms (SQL the user can run on demand).
  for (; next < order.size(); ++next) {
    result.query_forms.push_back(CandidateNetworkToSql(
        (*context.cns)[order[next]], context.db->schema(), *context.query));
  }
  SortJnts(&result.answers);
  if (result.answers.size() > options.top_k) {
    result.answers.resize(options.top_k);
  }
  return result;
}

}  // namespace matcn
