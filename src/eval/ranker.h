#ifndef MATCN_EVAL_RANKER_H_
#define MATCN_EVAL_RANKER_H_

#include <string>
#include <vector>

#include "core/candidate_network.h"
#include "core/keyword_query.h"
#include "core/tuple_set.h"
#include "exec/jnt.h"
#include "graph/schema_graph.h"
#include "indexing/term_index.h"
#include "storage/database.h"

namespace matcn {

/// Everything a CN evaluation algorithm needs for one query: the database,
/// its schema graph and term index, the parsed query, the tuple-sets R_Q,
/// and the candidate networks to evaluate (produced by either MatCNGen or
/// CNGen — the quality experiments feed both).
struct EvalContext {
  const Database* db = nullptr;
  const SchemaGraph* schema_graph = nullptr;
  const TermIndex* index = nullptr;
  const KeywordQuery* query = nullptr;
  const std::vector<TupleSet>* tuple_sets = nullptr;
  const std::vector<CandidateNetwork>* cns = nullptr;
};

struct RankerOptions {
  /// Number of answers to return (the paper evaluates MAP at n = 1000).
  size_t top_k = 1000;
  /// Cap on JNTs materialized per CN by the exhaustive strategies.
  size_t per_cn_limit = 200'000;
  /// Hybrid's switch-over: estimated result count above which it prefers
  /// the pipelined strategy over Sparse.
  double hybrid_threshold = 10'000.0;
};

/// Interface shared by all top-k CN evaluation algorithms. TopK returns
/// JNTs sorted by non-increasing score (ties broken deterministically by
/// JNT key).
class Ranker {
 public:
  virtual ~Ranker() = default;
  virtual std::vector<Jnt> TopK(const EvalContext& context,
                                const RankerOptions& options) = 0;
  virtual std::string name() const = 0;
};

/// Deterministic final ordering used by every ranker.
void SortJnts(std::vector<Jnt>* jnts);

}  // namespace matcn

#endif  // MATCN_EVAL_RANKER_H_
