#ifndef MATCN_EVAL_CN_RANKER_H_
#define MATCN_EVAL_CN_RANKER_H_

#include <vector>

#include "core/candidate_network.h"
#include "core/tuple_set.h"
#include "eval/scorer.h"

namespace matcn {

/// CN-level relevance estimation in the spirit of CNRank [de Oliveira et
/// al., ICDE 2015] — the authors' earlier work, cited by the paper as the
/// observation that "only a few CNs are useful for producing plausible
/// answers". Each CN is scored *before* any evaluation, so a system can
/// evaluate the most promising CNs first or prune the tail entirely
/// (KwS-F style):
///
///   score(C) = (Π_{non-free nodes} avg tuple score of the tuple-set)^(1/m)
///              / |C|
///
/// i.e. the geometric mean of the expected per-node relevance, damped by
/// the CN's size (longer join chains are less likely interpretations).
double CandidateNetworkScore(const CandidateNetwork& cn,
                             const std::vector<TupleSet>& tuple_sets,
                             const Scorer& scorer);

/// Returns CN indexes ordered by decreasing CandidateNetworkScore
/// (deterministic tie-break by index).
std::vector<size_t> RankCandidateNetworks(
    const std::vector<CandidateNetwork>& cns,
    const std::vector<TupleSet>& tuple_sets, const Scorer& scorer);

}  // namespace matcn

#endif  // MATCN_EVAL_CN_RANKER_H_
