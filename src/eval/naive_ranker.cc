#include "eval/naive_ranker.h"

#include "eval/scorer.h"
#include "exec/executor.h"

namespace matcn {

std::vector<Jnt> NaiveRanker::TopK(const EvalContext& context,
                                   const RankerOptions& options) {
  CnExecutor executor(context.db, context.schema_graph);
  executor.SetQueryContext(context.tuple_sets);
  Scorer scorer(context.db, context.index, context.query);

  std::vector<Jnt> all;
  for (size_t c = 0; c < context.cns->size(); ++c) {
    std::vector<Jnt> jnts = executor.Execute(
        (*context.cns)[c], static_cast<int>(c), options.per_cn_limit);
    for (Jnt& jnt : jnts) {
      jnt.score = scorer.JntScore(jnt);
      all.push_back(std::move(jnt));
    }
  }
  SortJnts(&all);
  if (all.size() > options.top_k) all.resize(options.top_k);
  return all;
}

}  // namespace matcn
